//! System-level randomized tests: random GEMM problems through the whole
//! simulator must match the CPU reference; simulation must be
//! deterministic. Shapes come from a deterministic xorshift64* generator
//! (no external crates).

use tcsim::cutlass::{run_gemm, GemmKernel, GemmPrecision, GemmProblem};
use tcsim::sim::{Gpu, GpuConfig};

// Deterministic shapes from the workspace's canonical PRNG (same
// xorshift64* recurrence the local copy used, so sequences are unchanged).
use tcsim_check::rng::XorShift64Star as Rng;

#[test]
fn random_shapes_verify_on_simulator() {
    let mut rng = Rng::new(0x5751);
    for _ in 0..8 {
        let p = GemmProblem {
            m: (1 + rng.below(3) as usize) * 16,
            n: (1 + rng.below(3) as usize) * 16,
            k: (1 + rng.below(4) as usize) * 16,
            precision: GemmPrecision::MixedF32,
        };
        let mut gpu = Gpu::new(GpuConfig::mini());
        let run = run_gemm(&mut gpu, p, GemmKernel::WmmaSimple, true);
        assert!(run.max_abs_err.expect("verified") < 0.01, "problem {p:?}");
    }
}

#[test]
fn simulation_is_deterministic() {
    let mut rng = Rng::new(0x5752);
    for _ in 0..4 {
        let p = GemmProblem::square((1 + rng.below(2) as usize) * 32);
        let a = run_gemm(
            &mut Gpu::new(GpuConfig::mini()),
            p,
            GemmKernel::WmmaShared,
            false,
        );
        let b = run_gemm(
            &mut Gpu::new(GpuConfig::mini()),
            p,
            GemmKernel::WmmaShared,
            false,
        );
        assert_eq!(a.stats.cycles, b.stats.cycles);
        assert_eq!(a.stats.instructions, b.stats.instructions);
    }
}

#[test]
fn instruction_count_scales_with_k() {
    // The k-loop trip count is architectural: instructions must grow
    // linearly in k for a fixed output size.
    let base = run_gemm(
        &mut Gpu::new(GpuConfig::mini()),
        GemmProblem {
            m: 32,
            n: 32,
            k: 16,
            precision: GemmPrecision::MixedF32,
        },
        GemmKernel::WmmaSimple,
        false,
    );
    let mut rng = Rng::new(0x5753);
    for _ in 0..5 {
        let k_tiles = 1 + rng.below(5) as usize;
        let run = run_gemm(
            &mut Gpu::new(GpuConfig::mini()),
            GemmProblem {
                m: 32,
                n: 32,
                k: 16 * k_tiles,
                precision: GemmPrecision::MixedF32,
            },
            GemmKernel::WmmaSimple,
            false,
        );
        assert!(run.stats.instructions >= base.stats.instructions);
        if k_tiles > 1 {
            assert!(run.stats.instructions > base.stats.instructions);
        }
    }
}
