//! Pipeline-path coverage through the full simulator: every functional
//! unit class, divergence, transcendental ops, FP64 pairs, predication,
//! and the PTX text route.

use tcsim::isa::{ptx, CmpOp, DataType, KernelBuilder, MemWidth, Operand, SpecialReg};
use tcsim::sim::{Gpu, GpuConfig, LaunchBuilder};

fn gpu() -> Gpu {
    Gpu::new(GpuConfig::mini())
}

#[test]
fn fp64_pipeline_computes_through_register_pairs() {
    let mut b = KernelBuilder::new("dfma");
    let out_p = b.param_u64("out");
    let base = b.reg_pair();
    b.ld_param(MemWidth::B64, base, out_p);
    let x = b.reg_pair();
    b.mov64(x, Operand::Imm(2.5f64.to_bits() as i64));
    let y = b.reg_pair();
    b.mov64(y, Operand::Imm(4.0f64.to_bits() as i64));
    let z = b.reg_pair();
    b.mov64(z, Operand::Imm(0.5f64.to_bits() as i64));
    let r = b.reg_pair();
    b.emit(
        tcsim::isa::Instr::new(tcsim::isa::Op::DFma)
            .with_dst(r)
            .with_srcs(vec![
                Operand::RegPair(x),
                Operand::RegPair(y),
                Operand::RegPair(z),
            ]),
    );
    b.st_global(MemWidth::B64, base, 0, r);
    b.exit();
    let k = b.build();

    let mut gpu = gpu();
    let out = gpu.alloc(8);
    let stats = LaunchBuilder::new(k)
        .grid(1u32)
        .block(32u32)
        .param_u64(out)
        .launch(&mut gpu);
    let bits = u64::from_le_bytes(gpu.memcpy_d2h(out, 8).try_into().expect("8 bytes"));
    assert_eq!(f64::from_bits(bits), 2.5 * 4.0 + 0.5);
    // FP64 unit was used.
    assert!(stats.sm.issued_by_unit[2] > 0);
}

#[test]
fn mufu_pipeline_computes_rcp_and_sqrt() {
    let mut b = KernelBuilder::new("mufu");
    let out_p = b.param_u64("out");
    let base = b.reg_pair();
    b.ld_param(MemWidth::B64, base, out_p);
    let x = b.reg();
    b.mov(x, Operand::fimm(16.0));
    let s = b.reg();
    b.emit(
        tcsim::isa::Instr::new(tcsim::isa::Op::FSqrt)
            .with_dst(s)
            .with_srcs(vec![Operand::Reg(x)]),
    );
    let r = b.reg();
    b.emit(
        tcsim::isa::Instr::new(tcsim::isa::Op::FRcp)
            .with_dst(r)
            .with_srcs(vec![Operand::Reg(s)]),
    );
    b.st_global(MemWidth::B32, base, 0, r);
    b.exit();
    let k = b.build();
    let mut gpu = gpu();
    let out = gpu.alloc(4);
    let stats = LaunchBuilder::new(k)
        .grid(1u32)
        .block(32u32)
        .param_u64(out)
        .launch(&mut gpu);
    assert_eq!(f32::from_bits(gpu.read_u32(out)), 0.25);
    assert!(stats.sm.issued_by_unit[3] >= 2, "MUFU used twice");
}

#[test]
fn divergent_branch_through_timing_simulator() {
    // Odd lanes store 2·lane, even lanes store 3·lane; reconverge; all add
    // 100. The timing pipeline must preserve SIMT-stack semantics.
    let mut b = KernelBuilder::new("diverge");
    let out_p = b.param_u64("out");
    let base = b.reg_pair();
    b.ld_param(MemWidth::B64, base, out_p);
    let lane = b.reg();
    b.mov(lane, Operand::Special(SpecialReg::LaneId));
    let bit = b.reg();
    b.and(bit, lane, Operand::Imm(1));
    let p = b.pred();
    b.setp(p, CmpOp::Ne, DataType::U32, bit, Operand::Imm(0));
    let v = b.reg();
    let odd = b.label();
    let merge = b.label();
    b.bra_div(p, true, odd, merge);
    b.imul(v, lane, Operand::Imm(3)); // even path
    b.bra(merge);
    b.place(odd);
    b.imul(v, lane, Operand::Imm(2)); // odd path
    b.place(merge);
    b.iadd(v, v, Operand::Imm(100));
    let addr = b.reg_pair();
    b.imad_wide(addr, lane, Operand::Imm(4), base);
    b.st_global(MemWidth::B32, addr, 0, v);
    b.exit();
    let k = b.build();

    let mut gpu = gpu();
    let out = gpu.alloc(32 * 4);
    LaunchBuilder::new(k)
        .grid(1u32)
        .block(32u32)
        .param_u64(out)
        .launch(&mut gpu);
    for lane in 0..32u32 {
        let want = if lane % 2 == 1 {
            lane * 2 + 100
        } else {
            lane * 3 + 100
        };
        assert_eq!(gpu.read_u32(out + 4 * lane as u64), want, "lane {lane}");
    }
}

#[test]
fn selp_and_predication_through_simulator() {
    let src = r#"
.kernel selp_test
.param out : u64
{
    ld.param.b64   r2, [out];
    mov.u32        r0, %laneid;
    setp.lt.s32    p0, r0, 16;
    selp           r1, p0, 111, 222;
    imad.wide      r4, r0, 4, r2;
    st.global.b32  [r4+0], r1;
    exit;
}
"#;
    let k = ptx::parse_kernel(src).expect("valid source");
    let mut gpu = gpu();
    let out = gpu.alloc(128);
    LaunchBuilder::new(k)
        .grid(1u32)
        .block(32u32)
        .param_u64(out)
        .launch(&mut gpu);
    assert_eq!(gpu.read_u32(out), 111);
    assert_eq!(gpu.read_u32(out + 4 * 20), 222);
}

#[test]
fn multi_warp_cta_with_2d_block() {
    // 2-D thread blocks map tid.x/tid.y correctly through the launch path.
    let mut b = KernelBuilder::new("grid2d");
    let out_p = b.param_u64("out");
    let base = b.reg_pair();
    b.ld_param(MemWidth::B64, base, out_p);
    let tx = b.reg();
    b.mov(tx, Operand::Special(SpecialReg::TidX));
    let ty = b.reg();
    b.mov(ty, Operand::Special(SpecialReg::TidY));
    let ntid = b.reg();
    b.mov(ntid, Operand::Special(SpecialReg::NTidX));
    let lin = b.reg();
    b.imad(lin, ty, Operand::Reg(ntid), Operand::Reg(tx));
    let v = b.reg();
    b.imad(v, ty, Operand::Imm(1000), Operand::Reg(tx));
    let addr = b.reg_pair();
    b.imad_wide(addr, lin, Operand::Imm(4), base);
    b.st_global(MemWidth::B32, addr, 0, v);
    b.exit();
    let k = b.build();

    let mut gpu = gpu();
    let out = gpu.alloc(8 * 16 * 4);
    LaunchBuilder::new(k)
        .grid(1u32)
        .block((8u32, 16u32))
        .param_u64(out)
        .launch(&mut gpu);
    for y in 0..16u32 {
        for x in 0..8u32 {
            assert_eq!(
                gpu.read_u32(out + 4 * (y * 8 + x) as u64),
                y * 1000 + x,
                "({x},{y})"
            );
        }
    }
}

#[test]
fn mixed_unit_kernel_overlaps_independent_work() {
    // Independent INT and FP32 chains: total cycles must be well below
    // the serialized sum of their latencies (the scoreboard only blocks
    // dependents).
    let mut b = KernelBuilder::new("overlap");
    let ints: Vec<_> = (0..8).map(|_| b.reg()).collect();
    let fps: Vec<_> = (0..8).map(|_| b.reg()).collect();
    for (i, &r) in ints.iter().enumerate() {
        b.mov(r, Operand::Imm(i as i64));
    }
    for &r in &fps {
        b.mov(r, Operand::fimm(1.5));
    }
    for &r in &ints {
        b.iadd(r, r, Operand::Imm(1));
    }
    for &r in &fps {
        b.fmul(r, r, Operand::fimm(2.0));
    }
    b.exit();
    let k = b.build();
    let mut gpu = gpu();
    let stats = LaunchBuilder::new(k)
        .grid(1u32)
        .block(32u32)
        .launch(&mut gpu);
    assert_eq!(stats.instructions, 33);
    // 33 instructions × ~2-cycle II, not × full latency.
    assert!(stats.cycles < 33 * 8, "cycles = {}", stats.cycles);
}

#[test]
fn global_atomics_build_an_exact_histogram() {
    // 8 CTAs × 64 threads increment one of 8 bins (tid % 8): every bin
    // must end at exactly 64 — lost updates would show immediately.
    let src = r#"
.kernel histogram
.param bins : u64
{
    ld.param.b64   r2, [bins];
    mov.u32        r0, %tid.x;
    and            r1, r0, 7;
    imad.wide      r4, r1, 4, r2;
    mov.u32        r6, 1;
    atom.global.add r7, [r4+0], r6;
    exit;
}
"#;
    let k = tcsim::isa::ptx::parse_kernel(src).expect("valid source");
    let mut gpu = gpu();
    let bins = gpu.alloc(8 * 4);
    LaunchBuilder::new(k)
        .grid(8u32)
        .block(64u32)
        .param_u64(bins)
        .launch(&mut gpu);
    for b in 0..8u32 {
        assert_eq!(gpu.read_u32(bins + 4 * b as u64), 64, "bin {b}");
    }
}

#[test]
fn shared_atomics_reduce_within_cta() {
    // Each CTA's threads atomically max their lane id into shared slot 0,
    // then thread 0 publishes it; every CTA must publish 31... using tid
    // values so max = threads-1.
    let mut b = KernelBuilder::new("blockmax");
    let out_p = b.param_u64("out");
    let base = b.reg_pair();
    b.ld_param(MemWidth::B64, base, out_p);
    b.shared_alloc(16);
    let tid = b.reg();
    b.mov(tid, Operand::Special(SpecialReg::TidX));
    let zero = b.reg();
    b.mov(zero, Operand::Imm(0));
    let old = b.reg();
    b.atom(
        tcsim::isa::MemSpace::Shared,
        tcsim::isa::AtomOp::Max,
        old,
        Operand::Reg(zero),
        0,
        tid,
    );
    b.bar();
    // Thread 0 stores shared[0] to out[ctaid].
    let p = b.pred();
    b.setp(p, CmpOp::Eq, DataType::U32, tid, Operand::Imm(0));
    let v = b.reg();
    b.ld_shared(MemWidth::B32, v, zero, 0);
    let cta = b.reg();
    b.mov(cta, Operand::Special(SpecialReg::CtaIdX));
    let addr = b.reg_pair();
    b.imad_wide(addr, cta, Operand::Imm(4), base);
    b.emit(
        tcsim::isa::Instr::new(tcsim::isa::Op::St {
            space: tcsim::isa::MemSpace::Global,
            width: MemWidth::B32,
        })
        .with_srcs(vec![
            Operand::RegPair(addr),
            Operand::Imm(0),
            Operand::Reg(v),
        ])
        .with_guard(tcsim::isa::PredReg(0), true),
    );
    b.exit();
    let k = b.build();

    let mut gpu = gpu();
    let out = gpu.alloc(4 * 4);
    LaunchBuilder::new(k)
        .grid(4u32)
        .block(96u32)
        .param_u64(out)
        .launch(&mut gpu);
    for c in 0..4u32 {
        assert_eq!(gpu.read_u32(out + 4 * c as u64), 95, "cta {c}");
    }
}

#[test]
fn atomic_exchange_returns_old_values() {
    // 32 lanes exchange their lane id into one slot; the returned old
    // values must form the chain 0 (initial), lane0, lane1, … lane30 —
    // i.e. lane i receives lane i−1's id (deterministic lane ordering).
    let mut b = KernelBuilder::new("exch");
    let out_p = b.param_u64("out");
    let slot_p = b.param_u64("slot");
    let base = b.reg_pair();
    b.ld_param(MemWidth::B64, base, out_p);
    let slot = b.reg_pair();
    b.ld_param(MemWidth::B64, slot, slot_p);
    let lane = b.reg();
    b.mov(lane, Operand::Special(SpecialReg::LaneId));
    let old = b.reg();
    b.atom(
        tcsim::isa::MemSpace::Global,
        tcsim::isa::AtomOp::Exch,
        old,
        Operand::RegPair(slot),
        0,
        lane,
    );
    let addr = b.reg_pair();
    b.imad_wide(addr, lane, Operand::Imm(4), base);
    b.st_global(MemWidth::B32, addr, 0, old);
    b.exit();
    let k = b.build();

    let mut gpu = gpu();
    let out = gpu.alloc(32 * 4);
    let slot = gpu.alloc(4);
    gpu.write_u32(slot, 999);
    LaunchBuilder::new(k)
        .grid(1u32)
        .block(32u32)
        .param_u64(out)
        .param_u64(slot)
        .launch(&mut gpu);
    assert_eq!(gpu.read_u32(out), 999, "lane 0 sees the initial value");
    for lane in 1..32u32 {
        assert_eq!(gpu.read_u32(out + 4 * lane as u64), lane - 1, "lane {lane}");
    }
    assert_eq!(gpu.read_u32(slot), 31, "slot holds the last lane's id");
}

#[test]
fn warp_shuffle_reduction_sums_lane_ids() {
    // Classic shfl.down butterfly sum: every lane ends with Σ 0..31 = 496
    // in lane 0 (and the tree's partial sums elsewhere); lane 0 stores it.
    let src = r#"
.kernel shfl_sum
.param out : u64
{
    ld.param.b64  r2, [out];
    mov.u32       r0, %laneid;
    mov.u32       r1, r0;
    shfl.down     r4, r1, 16;
    iadd          r1, r1, r4;
    shfl.down     r4, r1, 8;
    iadd          r1, r1, r4;
    shfl.down     r4, r1, 4;
    iadd          r1, r1, r4;
    shfl.down     r4, r1, 2;
    iadd          r1, r1, r4;
    shfl.down     r4, r1, 1;
    iadd          r1, r1, r4;
    setp.eq.s32   p0, r0, 0;
    @p0 st.global.b32 [r2+0], r1;
    exit;
}
"#;
    let k = ptx::parse_kernel(src).expect("valid source");
    let mut gpu = gpu();
    let out = gpu.alloc(4);
    LaunchBuilder::new(k)
        .grid(1u32)
        .block(32u32)
        .param_u64(out)
        .launch(&mut gpu);
    assert_eq!(gpu.read_u32(out), (0..32).sum::<u32>());
}

#[test]
fn shuffle_modes_select_expected_lanes() {
    use tcsim::isa::ShflMode;
    let mut b = KernelBuilder::new("modes");
    let out_p = b.param_u64("out");
    let base = b.reg_pair();
    b.ld_param(MemWidth::B64, base, out_p);
    let lane = b.reg();
    b.mov(lane, Operand::Special(SpecialReg::LaneId));
    let up = b.reg();
    b.shfl(ShflMode::Up, up, lane, Operand::Imm(1));
    let bfly = b.reg();
    b.shfl(ShflMode::Bfly, bfly, lane, Operand::Imm(3));
    let idx = b.reg();
    b.shfl(ShflMode::Idx, idx, lane, Operand::Imm(7));
    let sum = b.reg();
    b.imad(sum, up, Operand::Imm(10000), Operand::Reg(idx));
    b.imad(sum, bfly, Operand::Imm(100), Operand::Reg(sum));
    let addr = b.reg_pair();
    b.imad_wide(addr, lane, Operand::Imm(4), base);
    b.st_global(MemWidth::B32, addr, 0, sum);
    b.exit();
    let k = b.build();
    let mut gpu = gpu();
    let out = gpu.alloc(128);
    LaunchBuilder::new(k)
        .grid(1u32)
        .block(32u32)
        .param_u64(out)
        .launch(&mut gpu);
    for lane in 0..32u32 {
        let up = if lane == 0 { 0 } else { lane - 1 };
        let bfly = lane ^ 3;
        let idx = 7;
        assert_eq!(
            gpu.read_u32(out + 4 * lane as u64),
            up * 10000 + bfly * 100 + idx,
            "lane {lane}"
        );
    }
}
