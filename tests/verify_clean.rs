//! Every kernel the repository ships must pass the static analyzer with
//! zero diagnostics: the committed fuzz corpus, the CUTLASS-like GEMM
//! family (all epilogue variants), and every kernel tcsim-nn lowers.
//! A kernel that trips even a warning here either has a real defect or
//! exposes a verifier false positive — both block the PR.
//!
//! The performance lints (`tcsim_verify::perf`, i.e. `tcsim-lint
//! --perf`) are held to a different standard: shipped kernels DO carry
//! mild perf findings (unswizzled staging, strided corpus stores), so
//! those are pinned as goldens rather than asserted to zero — the gate
//! is that they never drift silently.

use std::path::Path;
use tcsim_check::corpus::{self, case_from_text};
use tcsim_check::gen::Arch;
use tcsim_cutlass::{
    cutlass_gemm_ep, hgemm, igemm_wmma, sgemm, wmma_shared_gemm_ep, wmma_simple_gemm_ep,
    CutlassConfig, Epilogue,
};
use tcsim_isa::Kernel;
use tcsim_nn::kernels::{
    add_kernel, bias_grid, bias_kernel, elems_grid, gelu_kernel, layernorm_kernel, maxpool_grid,
    maxpool_kernel, relu_grid, relu_kernel, rowred_grid, softmax_kernel,
};
use tcsim_nn::Tile;
use tcsim_verify::{check, LaunchGeometry};

/// Lints one kernel and formats any diagnostics for the failure report.
fn lint(name: &str, kernel: &Kernel, geom: &LaunchGeometry, failures: &mut Vec<String>) {
    for d in check(kernel, geom) {
        failures.push(format!("{name}: {d}"));
    }
}

#[test]
fn committed_corpus_is_verifier_clean() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut failures = Vec::new();
    let mut linted = 0usize;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/corpus must exist")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "case"))
        .collect();
    entries.sort();
    for path in entries {
        let text = std::fs::read_to_string(&path).unwrap();
        let case = case_from_text(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let mut geom = LaunchGeometry::new(case.grid_x, case.block_x);
        geom.gen = case.arch.tensor_gen();
        lint(
            &path.file_name().unwrap().to_string_lossy(),
            &case.kernel,
            &geom,
            &mut failures,
        );
        linted += 1;
    }
    assert!(linted > 0, "no .case files under tests/corpus");
    assert!(
        failures.is_empty(),
        "corpus kernels flagged:\n{}",
        failures.join("\n")
    );
}

#[test]
fn generated_corpus_seeds_are_verifier_clean() {
    // The same generator the fuzzer runs, across the kinds and
    // architectures: a small always-on slice of the 2000-iteration
    // campaigns in EXPERIMENTS.md.
    use tcsim_check::gen::{assemble, generate, GenConfig, KindSel};
    let mut failures = Vec::new();
    let pools = [
        (KindSel::Simt, None),
        (KindSel::Wmma, None),
        (KindSel::Wmma, Some(Arch::Ampere)),
        (KindSel::WmmaBf16, None),
        (KindSel::WmmaSparse, None),
    ];
    for (kind, arch) in pools {
        let cfg = GenConfig {
            max_ops: 24,
            kind,
            arch,
        };
        for seed in 0..50u64 {
            let p = generate(seed, &cfg);
            let k = assemble(&p);
            let mut geom = LaunchGeometry::new(p.grid_x, p.block_x);
            geom.gen = p.arch.tensor_gen();
            lint(
                &format!("gen {kind:?}/{arch:?} seed {seed}"),
                &k,
                &geom,
                &mut failures,
            );
        }
    }
    assert!(
        failures.is_empty(),
        "generated kernels flagged:\n{}",
        failures.join("\n")
    );
}

#[test]
fn cutlass_family_is_verifier_clean() {
    let mut failures = Vec::new();
    let eps = [
        Epilogue::None,
        Epilogue::Bias,
        Epilogue::Relu,
        Epilogue::BiasRelu,
    ];

    for ep in eps {
        for fp16 in [false, true] {
            // Epilogues are FP32-accumulate only.
            if fp16 && ep != Epilogue::None {
                continue;
            }
            lint(
                &format!("wmma_simple_gemm(fp16={fp16}, {ep:?})"),
                &wmma_simple_gemm_ep(fp16, ep),
                &LaunchGeometry::new((4u32, 4u32), 32u32),
                &mut failures,
            );
            lint(
                &format!("wmma_shared_gemm(fp16={fp16}, {ep:?})"),
                &wmma_shared_gemm_ep(fp16, ep),
                &LaunchGeometry::new((2u32, 2u32), 128u32),
                &mut failures,
            );
        }
        let cfg = CutlassConfig::default_64x64();
        lint(
            &format!("cutlass_gemm({ep:?})"),
            &cutlass_gemm_ep(cfg, ep),
            &LaunchGeometry::new((1u32, 1u32), cfg.threads() as u32),
            &mut failures,
        );
    }

    lint(
        "sgemm",
        &sgemm(),
        &LaunchGeometry::new((4u32, 4u32), (16u32, 16u32)),
        &mut failures,
    );
    lint(
        "hgemm",
        &hgemm(),
        &LaunchGeometry::new((2u32, 4u32), (16u32, 16u32)),
        &mut failures,
    );
    lint(
        "igemm_wmma",
        &igemm_wmma(),
        &LaunchGeometry::new((4u32, 4u32), 32u32).turing(),
        &mut failures,
    );

    assert!(
        failures.is_empty(),
        "cutlass kernels flagged:\n{}",
        failures.join("\n")
    );
}

#[test]
fn nn_lowered_kernels_are_verifier_clean() {
    let mut failures = Vec::new();

    // The GEMM tiles tcsim-nn lowers linear/conv layers onto, with every
    // fused epilogue.
    let eps = [
        Epilogue::None,
        Epilogue::Bias,
        Epilogue::Relu,
        Epilogue::BiasRelu,
    ];
    for tile in [Tile::Simple, Tile::Shared, Tile::Cutlass] {
        let (pm, pn) = (64usize, 64usize);
        for ep in eps {
            lint(
                &format!("{}({ep:?})", tile.name()),
                &tile.kernel(ep),
                &LaunchGeometry::new(tile.grid(pm, pn), tile.block()),
                &mut failures,
            );
        }
    }

    // The SIMT helper kernels.
    let (c, h, w, k) = (2usize, 8usize, 8usize, 2usize);
    lint(
        "maxpool",
        &maxpool_kernel(c, h, w, k),
        &LaunchGeometry::new(maxpool_grid(c, h, w, k), 32u32),
        &mut failures,
    );
    lint(
        "relu",
        &relu_kernel(256),
        &LaunchGeometry::new(relu_grid(256), 32u32),
        &mut failures,
    );
    for per_row in [false, true] {
        lint(
            &format!("bias(per_row={per_row})"),
            &bias_kernel(16, 16, per_row),
            &LaunchGeometry::new(bias_grid(16, 16), 32u32),
            &mut failures,
        );
    }

    // The transformer-block row-reduction and elementwise kernels
    // (warp-shuffle butterfly reductions, MUFU transcendentals). The
    // row-wise kernels run one warp-wide CTA per row; `cols` both above
    // and below the warp width exercises the strided accumulation loop
    // and the out-of-range clamp lanes.
    for cols in [16usize, 64] {
        let rows = 8usize;
        lint(
            &format!("softmax(c{cols})"),
            &softmax_kernel(cols, 0.25),
            &LaunchGeometry::new(rowred_grid(rows), 32u32),
            &mut failures,
        );
        lint(
            &format!("layernorm(c{cols})"),
            &layernorm_kernel(cols, 1e-5),
            &LaunchGeometry::new(rowred_grid(rows), 32u32),
            &mut failures,
        );
    }
    lint(
        "gelu",
        &gelu_kernel(256),
        &LaunchGeometry::new(elems_grid(256), 32u32),
        &mut failures,
    );
    lint(
        "add",
        &add_kernel(256),
        &LaunchGeometry::new(elems_grid(256), 32u32),
        &mut failures,
    );

    assert!(
        failures.is_empty(),
        "nn kernels flagged:\n{}",
        failures.join("\n")
    );
}

#[test]
fn corpus_header_is_the_lint_sniff_marker() {
    // tcsim-lint sniffs files by this header when the extension is
    // unusual; keep the constant in sync with the corpus writer.
    assert!(corpus::HEADER.starts_with("// tcsim-check case"));
}

/// Runs the performance lints and formats findings for the golden list.
fn perf_lint(name: &str, kernel: &Kernel, geom: &LaunchGeometry, found: &mut Vec<String>) {
    use tcsim_verify::perf::{check_perf, PerfLimits};
    for d in check_perf(kernel, geom, &PerfLimits::for_gen(geom.gen)) {
        found.push(format!("{name}: {} @{}", d.rule, d.index));
    }
}

#[test]
fn shipped_kernels_match_pinned_perf_goldens() {
    // The pinned baseline. These are real (if mild) findings, not false
    // positives: the generated SIMT corpus kernels index output stores
    // at a 32-byte lane stride (8 sectors where 4 would do), the shared
    // and CUTLASS GEMMs stage f16 tiles without a swizzle (2-way bank
    // conflicts on the column dimension), and the 64×64 CUTLASS tile's
    // register appetite caps residency on a single-CTA launch.
    let expected: Vec<&str> = vec![
        "seed_mma_sparse.case: global-uncoalesced @22",
        "seed_simt_a.case: global-uncoalesced @15",
        "seed_simt_a.case: global-uncoalesced @56",
        "seed_simt_a.case: global-uncoalesced @59",
        "seed_simt_a.case: global-uncoalesced @62",
        "seed_simt_a.case: global-uncoalesced @65",
        "seed_simt_a.case: global-uncoalesced @68",
        "seed_simt_a.case: global-uncoalesced @71",
        "seed_simt_b.case: global-uncoalesced @51",
        "seed_simt_b.case: global-uncoalesced @54",
        "seed_simt_b.case: global-uncoalesced @57",
        "seed_simt_b.case: global-uncoalesced @60",
        "seed_simt_b.case: global-uncoalesced @63",
        "seed_simt_b.case: global-uncoalesced @66",
        "seed_wmma_b.case: global-uncoalesced @15",
        "wmma_shared_gemm: shared-bank-conflict @43",
        "cutlass_gemm: low-occupancy @0",
        "cutlass_gemm: shared-bank-conflict @91",
        "cutlass_gemm: shared-bank-conflict @94",
        "cutlass_gemm: shared-bank-conflict @97",
        "cutlass_gemm: shared-bank-conflict @100",
        "cutlass_gemm: shared-bank-conflict @108",
        "cutlass_gemm: shared-bank-conflict @111",
        "cutlass_gemm: shared-bank-conflict @114",
        "cutlass_gemm: shared-bank-conflict @117",
    ];
    let mut found = Vec::new();

    // Committed corpus cases, under their recorded launch geometry.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/corpus must exist")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "case"))
        .collect();
    entries.sort();
    for path in entries {
        let text = std::fs::read_to_string(&path).unwrap();
        let case = case_from_text(&text).unwrap();
        let mut geom = LaunchGeometry::new(case.grid_x, case.block_x);
        geom.gen = case.arch.tensor_gen();
        perf_lint(
            &path.file_name().unwrap().to_string_lossy(),
            &case.kernel,
            &geom,
            &mut found,
        );
    }

    // The GEMM family under representative launch geometries.
    perf_lint(
        "wmma_simple_gemm",
        &wmma_simple_gemm_ep(false, Epilogue::None),
        &LaunchGeometry::new((4u32, 4u32), 32u32),
        &mut found,
    );
    perf_lint(
        "wmma_shared_gemm",
        &wmma_shared_gemm_ep(false, Epilogue::None),
        &LaunchGeometry::new((2u32, 2u32), 128u32),
        &mut found,
    );
    let cfg = CutlassConfig::default_64x64();
    perf_lint(
        "cutlass_gemm",
        &cutlass_gemm_ep(cfg, Epilogue::None),
        &LaunchGeometry::new((1u32, 1u32), cfg.threads() as u32),
        &mut found,
    );
    perf_lint(
        "sgemm",
        &sgemm(),
        &LaunchGeometry::new((4u32, 4u32), (16u32, 16u32)),
        &mut found,
    );
    perf_lint(
        "hgemm",
        &hgemm(),
        &LaunchGeometry::new((2u32, 4u32), (16u32, 16u32)),
        &mut found,
    );
    perf_lint(
        "igemm_wmma",
        &igemm_wmma(),
        &LaunchGeometry::new((4u32, 4u32), 32u32).turing(),
        &mut found,
    );

    // The nn helper kernels.
    let (c, h, w, k) = (2usize, 8usize, 8usize, 2usize);
    perf_lint(
        "maxpool",
        &maxpool_kernel(c, h, w, k),
        &LaunchGeometry::new(maxpool_grid(c, h, w, k), 32u32),
        &mut found,
    );
    perf_lint(
        "relu",
        &relu_kernel(256),
        &LaunchGeometry::new(relu_grid(256), 32u32),
        &mut found,
    );
    perf_lint(
        "softmax(c64)",
        &softmax_kernel(64, 0.25),
        &LaunchGeometry::new(rowred_grid(8), 32u32),
        &mut found,
    );
    perf_lint(
        "layernorm(c64)",
        &layernorm_kernel(64, 1e-5),
        &LaunchGeometry::new(rowred_grid(8), 32u32),
        &mut found,
    );
    perf_lint(
        "gelu",
        &gelu_kernel(256),
        &LaunchGeometry::new(elems_grid(256), 32u32),
        &mut found,
    );

    assert_eq!(
        found, expected,
        "perf findings drifted from the pinned goldens; \
         if the change is intentional, update the golden list"
    );
}
