//! Integration tests of the paper's microbenchmark observations on the
//! full simulator (the characterization results of §III and §IV).

use tcsim::cutlass::microbench::{clocked_mma, repeated_mma};
use tcsim::sim::{Gpu, GpuConfig, LaunchBuilder};

fn run_clocked(fp16: bool) -> u32 {
    let mut gpu = Gpu::new(GpuConfig::mini());
    let src = gpu.alloc(16 * 16 * 4);
    let out = gpu.alloc(4);
    LaunchBuilder::new(clocked_mma(fp16))
        .grid(1u32)
        .block(32u32)
        .param_u64(src)
        .param_u64(out)
        .launch(&mut gpu);
    gpu.read_u32(out)
}

fn run_scaling(warps: u32, iters: u32) -> u32 {
    let mut gpu = Gpu::new(GpuConfig::mini());
    let src = gpu.alloc(16 * 16 * 4);
    let out = gpu.alloc(warps as u64 * 4);
    LaunchBuilder::new(repeated_mma(iters))
        .grid(1u32)
        .block(warps * 32)
        .param_u64(src)
        .param_u64(out)
        .launch(&mut gpu);
    (0..warps)
        .map(|w| gpu.read_u32(out + 4 * w as u64))
        .max()
        .expect("warps > 0")
}

#[test]
fn mma_latency_brackets_the_hmma_schedule() {
    // Measured latency = schedule total + issue overhead of the probes;
    // it must be ≥ the schedule and within a few tens of cycles of it.
    let mixed = run_clocked(false);
    assert!((54..=120).contains(&mixed), "mixed measured {mixed}");
    let fp16 = run_clocked(true);
    assert!((64..=130).contains(&fp16), "fp16 measured {fp16}");
}

#[test]
fn fp16_mode_is_slower_than_mixed_by_about_ten_cycles() {
    // §III-C1: FP16 mode is 10 cycles slower per wmma.mma.
    let mixed = run_clocked(false);
    let fp16 = run_clocked(true);
    let delta = fp16 as i64 - mixed as i64;
    assert!((5..=20).contains(&delta), "delta = {delta}");
}

#[test]
fn warp_scaling_knee_sits_at_four_warps() {
    // Fig 12c: flat up to 4 warps (one per sub-core), then the
    // tensor-core pairs are shared and time roughly doubles.
    let t: Vec<u32> = (1..=8).map(|w| run_scaling(w, 32)).collect();
    let flat = t[3] as f64 / t[0] as f64;
    let knee = t[7] as f64 / t[3] as f64;
    assert!(flat < 1.3, "1..4 warps must stay flat: {t:?}");
    assert!(knee > 1.5, "5..8 warps must contend: {t:?}");
}

#[test]
fn throughput_scales_with_iterations() {
    let short = run_scaling(1, 16);
    let long = run_scaling(1, 64);
    // 48 extra MMAs at the mixed-mode initiation interval (40 each when
    // pipelined on both accumulators).
    let delta = long as i64 - short as i64;
    assert!(delta > 48 * 30, "48 extra MMAs took only {delta} cycles");
    assert!(delta < 48 * 80, "MMAs serialized on latency: {delta}");
}

#[test]
fn single_warp_microbenchmark_is_deterministic() {
    assert_eq!(run_scaling(2, 32), run_scaling(2, 32));
    assert_eq!(run_clocked(false), run_clocked(false));
}
