//! The serve-layer acceptance gate: the same job mix executed three ways
//! — serially (no server), by a cold server, and by a warm restarted
//! server — must produce byte-identical `LaunchStats` JSON and output
//! digests per job. This pins the whole cache-key story end to end: if
//! keys collided, the warm pass would serve the wrong bytes; if
//! execution were nondeterministic, the serial and server passes would
//! diverge.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use tcsim_check::corpus::case_from_text;
use tcsim_serve::{Client, Event, JobSpec, Request, ServeOptions, Server};
use tcsim_sim::CoreModel;

/// The job mix: every committed corpus case, on both core models.
fn job_mix() -> Vec<JobSpec> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("read corpus dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "seed corpus must be committed");
    let mut jobs = Vec::new();
    for path in paths {
        let text = std::fs::read_to_string(&path).expect("read case");
        let case = case_from_text(&text).expect("parse case");
        let base = JobSpec::from_case(&case);
        jobs.push(base.clone());
        jobs.push(JobSpec {
            core: CoreModel::CycleStepped,
            ..base
        });
    }
    jobs
}

/// Submits the whole mix as one batch and collects `(id → (stats JSON,
/// output digest, cached))`, failing on any rejection or launch failure.
fn run_on_server(addr: &str, jobs: &[JobSpec]) -> BTreeMap<String, (String, String, bool)> {
    let mut client = Client::connect(addr).expect("connect");
    let pairs: Vec<(String, JobSpec)> = jobs
        .iter()
        .enumerate()
        .map(|(i, j)| (format!("d{i:03}"), j.clone()))
        .collect();
    client
        .send(&Request::Batch { jobs: pairs })
        .expect("batch submit");
    let mut out = BTreeMap::new();
    while out.len() < jobs.len() {
        match client.recv().expect("event") {
            Event::Done {
                id,
                stats_json,
                output_fnv,
                cached,
                ..
            } => {
                out.insert(id, (stats_json, output_fnv, cached));
            }
            Event::Failed { id, reason } => panic!("job {id} failed: {reason}"),
            Event::Rejected { id, reason } => panic!("job {id} rejected: {reason}"),
            _ => {}
        }
    }
    out
}

#[test]
fn serial_cold_and_warm_results_are_byte_identical() {
    let jobs = job_mix();

    // Pass 1: serial, no server involved.
    let serial: Vec<(String, String)> = jobs
        .iter()
        .map(|j| {
            let out = j.run().expect("serial run");
            (out.stats_json, out.output_fnv)
        })
        .collect();

    // Pass 2: cold server with a fresh persistent cache.
    let dir = std::env::temp_dir().join(format!("tcsim-serve-determinism-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = ServeOptions {
        cache_dir: Some(dir.clone()),
        workers: 3,
        ..Default::default()
    };
    let server = Server::start("127.0.0.1:0", opts.clone()).expect("cold server");
    let addr = server.local_addr().to_string();
    let cold = run_on_server(&addr, &jobs);
    server.shutdown();

    // Pass 3: restarted server, warm from the on-disk cache.
    let server = Server::start("127.0.0.1:0", opts).expect("warm server");
    assert_eq!(
        server.cache_loaded_from_disk(),
        cold.len(),
        "every distinct result must survive the restart"
    );
    let addr = server.local_addr().to_string();
    let warm = run_on_server(&addr, &jobs);
    let warm_stats = server.stats();
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();

    // All three passes byte-identical, job by job.
    assert_eq!(cold.len(), serial.len());
    for (i, (serial_stats, serial_fnv)) in serial.iter().enumerate() {
        let id = format!("d{i:03}");
        let (cold_stats, cold_fnv, _) = &cold[&id];
        let (warm_stats_json, warm_fnv, warm_cached) = &warm[&id];
        assert_eq!(cold_stats, serial_stats, "{id}: cold server != serial");
        assert_eq!(warm_stats_json, serial_stats, "{id}: warm server != serial");
        assert_eq!(cold_fnv, serial_fnv, "{id}: cold output digest != serial");
        assert_eq!(warm_fnv, serial_fnv, "{id}: warm output digest != serial");
        assert!(warm_cached, "{id}: warm pass must be served from the cache");
    }
    assert_eq!(
        warm_stats.cache_misses, 0,
        "the warm pass must not simulate anything"
    );
}
