//! Determinism and schedule-fidelity contract of the trace subsystem:
//!
//! * the serialized Chrome trace of a launch is **byte-identical** from
//!   run to run, and identical whether the simulation executed on the
//!   calling thread or inside a parallel-sweep worker thread;
//! * the recorded HMMA set/step events reproduce the paper's Fig 9a/10
//!   schedule (Table III cadence) exactly;
//! * installing a tracer never changes the timing model's results.

use tcsim::core::VOLTA_MIXED_CUMULATIVE;
use tcsim::cutlass::{run_gemm, GemmKernel, GemmProblem};
use tcsim::sim::{Gpu, GpuConfig, SimOptions, Sweep};
use tcsim::trace::{chrome_trace, validate_json, EventKind, RingTracer, TraceEvent};

/// A mini GPU with a generously sized ring tracer installed at build time.
fn traced_gpu() -> Gpu {
    Gpu::new(SimOptions::new(GpuConfig::mini()).tracer(RingTracer::with_capacity(1 << 20)))
}

fn traced_chrome(size: usize) -> String {
    let mut gpu = traced_gpu();
    run_gemm(
        &mut gpu,
        GemmProblem::square(size),
        GemmKernel::WmmaShared,
        false,
    );
    chrome_trace(&gpu.trace_events())
}

#[test]
fn chrome_trace_is_byte_identical_run_to_run() {
    let a = traced_chrome(32);
    let b = traced_chrome(32);
    assert!(
        a.len() > 1000,
        "trace must be non-trivial ({} bytes)",
        a.len()
    );
    assert_eq!(a, b, "repeated runs must serialize byte-identically");
    validate_json(&a).expect("chrome trace is valid JSON");
}

#[test]
fn sweep_worker_trace_matches_serial() {
    // The same traced simulation, run inline and inside parallel-sweep
    // worker threads: every byte of the exported trace must agree,
    // regardless of which OS thread stepped the GPU.
    let serial = traced_chrome(32);
    let mut sweep = Sweep::new();
    for _ in 0..3 {
        // The tracer is an options-time choice now, so the job builds its
        // own traced GPU — still on the worker thread.
        sweep.add(GpuConfig::mini(), |_| {
            let mut gpu = traced_gpu();
            run_gemm(
                &mut gpu,
                GemmProblem::square(32),
                GemmKernel::WmmaShared,
                false,
            );
            chrome_trace(&gpu.trace_events())
        });
    }
    let out = sweep.run_parallel(3);
    for worker_trace in &out.results {
        assert_eq!(
            worker_trace, &serial,
            "worker-thread trace must match serial"
        );
    }
}

#[test]
fn trace_summary_is_deterministic_across_sweep() {
    // LaunchStats (including the integer-only TraceSummary) must be
    // byte-identical between serial and parallel execution.
    fn run() -> tcsim::sim::LaunchStats {
        let mut gpu = traced_gpu();
        run_gemm(
            &mut gpu,
            GemmProblem::square(32),
            GemmKernel::WmmaShared,
            false,
        )
        .stats
    }
    let serial = run();
    assert!(serial.trace.is_some());
    let mut sweep = Sweep::new();
    sweep.add(GpuConfig::mini(), |_| run());
    sweep.add(GpuConfig::mini(), |_| run());
    let out = sweep.run_parallel(2);
    for stats in &out.results {
        assert_eq!(stats, &serial);
    }
}

#[test]
fn hmma_steps_reproduce_fig10_schedule() {
    // One warp, one wmma.mma per k-slice: the traced set/step completions
    // must land exactly at the Fig 9a cumulative cycles after the first
    // HMMA's issue, and issues must follow the 10-cycle set pitch /
    // 2-cycle step interval of Table III.
    let mut gpu = traced_gpu();
    run_gemm(
        &mut gpu,
        GemmProblem::square(16),
        GemmKernel::WmmaSimple,
        true,
    );
    let events = gpu.trace_events();
    let first = events
        .iter()
        .find(|e| matches!(e.kind, EventKind::HmmaStep { octet: 0, .. }))
        .expect("WMMA GEMM emits HMMA steps");
    let (sm, warp) = match first.kind {
        EventKind::HmmaStep { warp, .. } => (first.sm, warp),
        _ => unreachable!(),
    };
    let steps: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| {
            e.sm == sm
                && matches!(e.kind, EventKind::HmmaStep { octet: 0, warp: w, .. } if w == warp)
        })
        .take(16)
        .collect();
    assert_eq!(steps.len(), 16, "one wmma.mma = 4 sets x 4 steps");
    let base = steps[0].cycle;
    let expected_issue = [
        0u64, 2, 4, 6, 10, 12, 14, 16, 20, 22, 24, 26, 30, 32, 34, 36,
    ];
    for (i, e) in steps.iter().enumerate() {
        let EventKind::HmmaStep {
            set,
            step,
            complete,
            ..
        } = e.kind
        else {
            unreachable!()
        };
        assert_eq!(
            e.cycle - base,
            expected_issue[i],
            "issue cadence at index {i}"
        );
        assert_eq!(
            complete - base,
            u64::from(VOLTA_MIXED_CUMULATIVE[i]),
            "completion at index {i}"
        );
        assert_eq!(usize::from(set), i / 4 + 1);
        assert_eq!(usize::from(step), i % 4);
    }
}

#[test]
fn tracing_never_perturbs_the_timing_model() {
    let mut plain = Gpu::new(GpuConfig::mini());
    let a = run_gemm(
        &mut plain,
        GemmProblem::square(32),
        GemmKernel::WmmaShared,
        false,
    )
    .stats;
    let mut traced = traced_gpu();
    let mut b = run_gemm(
        &mut traced,
        GemmProblem::square(32),
        GemmKernel::WmmaShared,
        false,
    )
    .stats;
    assert!(a.trace.is_none());
    assert!(b.trace.is_some());
    b.trace = None;
    assert_eq!(a, b, "observation must not change simulated timing");
}
