//! The determinism contract of the parallel sweep engine, end to end:
//! running real tensor-core GEMMs through `Sweep::run_parallel` must
//! produce **byte-identical** statistics to a serial run, for any thread
//! count, because each job simulates on a fresh GPU and results are
//! ordered by submission index.

use tcsim::cutlass::{run_gemm, GemmKernel, GemmPrecision, GemmProblem, GemmRun};
use tcsim::sim::{Gpu, GpuConfig, LaunchStats, Sweep};

/// Six GEMM shapes spanning kernels, precisions and rectangularity.
fn shapes() -> Vec<(GemmProblem, GemmKernel)> {
    vec![
        (GemmProblem::square(32), GemmKernel::WmmaSimple),
        (GemmProblem::square(64), GemmKernel::WmmaShared),
        (
            GemmProblem {
                m: 32,
                n: 64,
                k: 48,
                precision: GemmPrecision::MixedF32,
            },
            GemmKernel::WmmaSimple,
        ),
        (
            GemmProblem {
                precision: GemmPrecision::Fp32,
                ..GemmProblem::square(32)
            },
            GemmKernel::Sgemm,
        ),
        (
            GemmProblem {
                precision: GemmPrecision::Fp16,
                ..GemmProblem::square(32)
            },
            GemmKernel::Hgemm,
        ),
        (
            GemmProblem {
                precision: GemmPrecision::Fp16,
                ..GemmProblem::square(48)
            },
            GemmKernel::WmmaSimple,
        ),
        (GemmProblem::square(96), GemmKernel::WmmaShared),
    ]
}

fn gemm_sweep() -> Sweep<GemmRun> {
    let mut sweep = Sweep::new();
    for (problem, kernel) in shapes() {
        let weight = (problem.m * problem.n * problem.k) as u64;
        sweep.add_weighted(GpuConfig::mini(), weight, move |gpu| {
            run_gemm(gpu, problem, kernel, true)
        });
    }
    sweep
}

#[test]
fn parallel_gemm_sweep_is_byte_identical_to_serial() {
    let serial = gemm_sweep().run_serial();
    let parallel = gemm_sweep().run_parallel(8);

    assert_eq!(serial.results.len(), shapes().len());
    assert_eq!(parallel.results.len(), shapes().len());
    for (i, (s, p)) in serial.results.iter().zip(&parallel.results).enumerate() {
        assert_eq!(s.problem, p.problem, "job {i} must come back in order");
        assert_eq!(
            s.stats, p.stats,
            "job {i} ({:?}): parallel stats diverged from serial",
            s.problem
        );
        assert_eq!(s.max_abs_err, p.max_abs_err, "job {i} verification result");
    }
}

#[test]
fn parallel_runs_agree_across_thread_counts() {
    let two = gemm_sweep().run_parallel(2);
    let eight = gemm_sweep().run_parallel(8);
    for (a, b) in two.results.iter().zip(&eight.results) {
        assert_eq!(a.stats, b.stats);
    }
    assert!(two.stats.threads <= 2);
    assert_eq!(eight.stats.jobs, shapes().len());
}

#[test]
fn gemm_results_stay_numerically_correct_under_parallelism() {
    let out = gemm_sweep().run_parallel(4);
    for run in &out.results {
        let err = run.max_abs_err.expect("verification enabled");
        let bound = if run.problem.precision == GemmPrecision::Fp16 {
            1.0
        } else {
            0.01
        };
        assert!(err < bound, "{:?}: max |err| = {err}", run.problem);
    }
}

#[test]
fn simulator_types_are_send() {
    // Compile-time proof that whole simulations can move across worker
    // threads; a regression here (e.g. an Rc sneaking back into the SM or
    // kernel plumbing) breaks the sweep engine's build, not its runtime.
    fn assert_send<T: Send>() {}
    assert_send::<Gpu>();
    assert_send::<GpuConfig>();
    assert_send::<LaunchStats>();
    assert_send::<Sweep<LaunchStats>>();
    assert_send::<tcsim::sm::LaunchSpec>();
    assert_send::<tcsim::mem::MemSystem>();
    assert_send::<tcsim::mem::DeviceMemory>();
}
