//! Byte-identity contract between the two SM core models.
//!
//! The event-driven core (`CoreModel::EventDriven`, the default) skips
//! cycles in which no SM can make progress; the cycle-stepped core
//! (`CoreModel::CycleStepped`) is the original loop that steps every
//! resident SM every cycle. The redesign's promise is that the fast core
//! is an *observationally invisible* optimization: for any workload, the
//! serialized `LaunchStats` JSON, the full trace event stream, and the
//! output memory must be byte-identical between the two.
//!
//! Workloads covered here:
//! * every committed fuzzer corpus case (`tests/corpus/*.case`) — SIMT
//!   and WMMA kernels on the Volta and Turing mini configs;
//! * Fig 14a-style WMMA GEMMs (simple and shared-memory kernels) and
//!   Fig 17-style CUDA-core GEMMs (SGEMM/HGEMM) on both the mini and the
//!   full Titan V configuration.

use std::path::Path;
use tcsim::cutlass::{run_gemm, GemmKernel, GemmPrecision, GemmProblem};
use tcsim::sim::{CoreModel, Gpu, GpuConfig, LaunchBuilder, SimOptions};
use tcsim::trace::{RingTracer, TraceEvent};
use tcsim_check::corpus::case_from_text;
use tcsim_check::oracle::{gpu_config, Case};

/// One run's full observable footprint.
struct Footprint {
    stats_json: String,
    events: Vec<TraceEvent>,
    output: Vec<u8>,
}

fn gpu_with(cfg: GpuConfig, core: CoreModel) -> Gpu {
    Gpu::new(
        SimOptions::new(cfg)
            .core(core)
            .tracer(RingTracer::with_capacity(1 << 20)),
    )
}

/// Asserts every observable byte agrees, with a first-divergence
/// diagnostic on the trace stream (the densest of the three views).
fn assert_identical(label: &str, event: &Footprint, cycle: &Footprint) {
    if event.events != cycle.events {
        let n = event.events.len().min(cycle.events.len());
        let first = (0..n)
            .find(|&i| event.events[i] != cycle.events[i])
            .unwrap_or(n);
        let lo = first.saturating_sub(2);
        let mut msg = format!(
            "{label}: trace streams diverge at event {first} \
             (event-driven has {}, cycle-stepped has {})\n",
            event.events.len(),
            cycle.events.len()
        );
        for i in lo..(first + 3).min(n) {
            msg.push_str(&format!(
                "  [{i}] event-driven: {:?}\n        cycle-stepped: {:?}\n",
                event.events.get(i),
                cycle.events.get(i)
            ));
        }
        panic!("{msg}");
    }
    assert_eq!(
        event.stats_json, cycle.stats_json,
        "{label}: LaunchStats JSON must be byte-identical"
    );
    assert_eq!(
        event.output, cycle.output,
        "{label}: output memory must agree"
    );
}

/// Runs a corpus case on the chosen core, mirroring the oracle driver.
fn run_case(case: &Case, core: CoreModel) -> Footprint {
    let mut gpu = gpu_with(gpu_config(case.arch), core);
    let in_addr = gpu.alloc(u64::from(case.in_words) * 4);
    let out_addr = gpu.alloc(u64::from(case.out_words) * 4);
    gpu.memcpy_h2d(in_addr, &case.input_bytes());
    let stats = LaunchBuilder::new(case.kernel.clone())
        .grid(case.grid_x)
        .block(case.block_x)
        .param_u64(in_addr)
        .param_u64(out_addr)
        .launch(&mut gpu);
    Footprint {
        stats_json: stats.to_json(),
        events: gpu.trace_events(),
        output: gpu.memcpy_d2h(out_addr, case.out_words as usize * 4),
    }
}

#[test]
fn corpus_cases_are_core_model_invariant() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut cases = 0;
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .expect("committed corpus directory")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .collect();
    files.sort();
    for path in files {
        let text = std::fs::read_to_string(&path).expect("readable case");
        let case = case_from_text(&text).expect("parsable case");
        let event = run_case(&case, CoreModel::EventDriven);
        let cycle = run_case(&case, CoreModel::CycleStepped);
        assert!(
            !event.events.is_empty(),
            "{}: a traced launch must produce events",
            path.display()
        );
        assert_identical(&path.display().to_string(), &event, &cycle);
        cases += 1;
    }
    assert!(cases >= 5, "expected the seed corpus, found {cases} cases");
}

fn run_gemm_on(cfg: &GpuConfig, size: usize, kernel: GemmKernel, core: CoreModel) -> Footprint {
    let mut gpu = gpu_with(cfg.clone(), core);
    let precision = match kernel {
        GemmKernel::Sgemm => GemmPrecision::Fp32,
        GemmKernel::Hgemm => GemmPrecision::Fp16,
        GemmKernel::IgemmWmma => GemmPrecision::Int8,
        _ => GemmPrecision::MixedF32,
    };
    let problem = GemmProblem {
        precision,
        ..GemmProblem::square(size)
    };
    let run = run_gemm(&mut gpu, problem, kernel, false);
    Footprint {
        stats_json: run.stats.to_json(),
        events: gpu.trace_events(),
        output: Vec::new(),
    }
}

#[test]
fn gemm_workloads_are_core_model_invariant() {
    // Fig 14a (WMMA cycles) and Fig 17 (CUDA-core TFLOPS) kernel families
    // at debug-friendly sizes; mini exercises both schedulers cheaply,
    // Titan V exercises the full 80-SM / sectored-L2 configuration.
    let mini = GpuConfig::mini();
    for kernel in [
        GemmKernel::WmmaSimple,
        GemmKernel::WmmaShared,
        GemmKernel::Sgemm,
        GemmKernel::Hgemm,
    ] {
        for size in [32usize, 64] {
            let label = format!("mini/{kernel:?}/{size}");
            let event = run_gemm_on(&mini, size, kernel, CoreModel::EventDriven);
            let cycle = run_gemm_on(&mini, size, kernel, CoreModel::CycleStepped);
            assert!(
                !event.events.is_empty(),
                "{label}: traced GEMM must emit events"
            );
            assert_identical(&label, &event, &cycle);
        }
    }
    // INT8 WMMA needs Turing tensor cores.
    {
        let turing = gpu_config(tcsim_check::gen::Arch::Turing);
        let label = "mini-turing/IgemmWmma/32";
        let event = run_gemm_on(&turing, 32, GemmKernel::IgemmWmma, CoreModel::EventDriven);
        let cycle = run_gemm_on(&turing, 32, GemmKernel::IgemmWmma, CoreModel::CycleStepped);
        assert_identical(label, &event, &cycle);
    }
    let titan = GpuConfig::titan_v();
    for kernel in [GemmKernel::WmmaShared, GemmKernel::Sgemm] {
        let label = format!("titan_v/{kernel:?}/64");
        let event = run_gemm_on(&titan, 64, kernel, CoreModel::EventDriven);
        let cycle = run_gemm_on(&titan, 64, kernel, CoreModel::CycleStepped);
        assert_identical(&label, &event, &cycle);
    }
}

/// The pointer-chase microbenchmark is the workload the event core skips
/// the most steps on (hundreds of blocked cycles per instruction), so it
/// gets its own byte-identity lock beyond the bench binary's assertion.
fn run_chase(core: CoreModel) -> Footprint {
    use tcsim::cutlass::microbench::{chase_chain, pointer_chase};
    let elems: usize = 1 << 12;
    let warps: u64 = 20 * 256 / 32;
    let mut gpu = gpu_with(GpuConfig::titan_v(), core);
    let buf = gpu.alloc(elems as u64 * 8);
    let out = gpu.alloc(warps * 8);
    let chain = chase_chain(elems, 33, buf);
    let bytes: Vec<u8> = chain.iter().flat_map(|w| w.to_le_bytes()).collect();
    gpu.memcpy_h2d(buf, &bytes);
    let spread = ((33 * (elems as u64 / warps)) & (elems as u64 - 1)) as u32;
    let stats = LaunchBuilder::new(pointer_chase(96, elems, spread))
        .grid(20)
        .block(256)
        .param_u64(buf)
        .param_u64(out)
        .launch(&mut gpu);
    Footprint {
        stats_json: stats.to_json(),
        events: gpu.trace_events(),
        output: gpu.memcpy_d2h(out, (warps * 8) as usize),
    }
}

#[test]
fn pointer_chase_is_core_model_invariant() {
    let event = run_chase(CoreModel::EventDriven);
    let cycle = run_chase(CoreModel::CycleStepped);
    assert!(!event.events.is_empty(), "traced chase must emit events");
    // Every warp must have stored a final in-bounds chain pointer.
    for slot in event.output.chunks_exact(8) {
        let ptr = u64::from_le_bytes(slot.try_into().expect("8-byte slot"));
        assert!(ptr != 0, "warp never stored its final pointer");
    }
    assert_identical("titan_v/pointer_chase", &event, &cycle);
}
