//! Integration coverage of all WMMA operating modes through the
//! functional model and executor: the 32 Volta configurations, the
//! Turing integer modes/tile shapes (§V-A: "Our functional model of the
//! wmma.mma instruction supports all 32 possible configurations"), and
//! every Ampere per-instruction `mma.sync` mode (BF16/TF32, 2:4
//! sparsity) against the tile reference.

use tcsim::core::{
    expand_sparse_a, gather_tile, mma_reference, pack_sparse_row_meta, FragmentMap,
    TensorCoreModel, Tile,
};
use tcsim::f16::F16;
use tcsim::isa::exec::WmmaHandler;
use tcsim::isa::{
    ByteMemory, FragmentKind, Layout, Reg, VecMemory, WarpRegFile, WarpRegisters, WmmaDirective,
    WmmaShape, WmmaType,
};
use tcsim_check::gen::{wmma_modes, Arch, WmmaMode};

fn write_tile(mem: &mut VecMemory, base: u64, t: &Tile, layout: Layout) {
    for r in 0..t.rows() {
        for c in 0..t.cols() {
            let stride = match layout {
                Layout::Row => t.cols(),
                Layout::Col => t.rows(),
            };
            let linear = match layout {
                Layout::Row => r * stride + c,
                Layout::Col => c * stride + r,
            };
            match t.ty().bits() {
                8 => mem.write_u8(base + linear as u64, t.get_bits(r, c) as u8),
                16 => mem.write_u16(base + linear as u64 * 2, t.get_bits(r, c) as u16),
                32 => mem.write_u32(base + linear as u64 * 4, t.get_bits(r, c)),
                4 => {
                    let addr = base + (linear / 2) as u64;
                    let old = mem.read_u8(addr);
                    let v = (t.get_bits(r, c) & 0xF) as u8;
                    let new = if linear % 2 == 0 {
                        (old & 0xF0) | v
                    } else {
                        (old & 0x0F) | (v << 4)
                    };
                    mem.write_u8(addr, new);
                }
                _ => unreachable!(),
            }
        }
    }
}

fn fill(t: &mut Tile, seed: u32) {
    for r in 0..t.rows() {
        for c in 0..t.cols() {
            let x = (r as u32 * 31 + c as u32 * 7 + seed) % 17;
            match t.ty() {
                WmmaType::F16 => t.set_f16(r, c, F16::from_f32(x as f32 / 2.0 - 4.0)),
                WmmaType::F32 => t.set_f32(r, c, x as f32 / 4.0 - 2.0),
                _ => t.set_i32(r, c, x as i32 - 8),
            }
        }
    }
}

/// Runs load(A)+load(B)+load(C)+mma through fragments and compares D to
/// the direct tile reference.
fn exercise(
    volta: bool,
    shape: WmmaShape,
    al: Layout,
    bl: Layout,
    ab: WmmaType,
    cty: WmmaType,
    dty: WmmaType,
) {
    let model = if volta {
        TensorCoreModel::volta()
    } else {
        TensorCoreModel::turing()
    };
    let mut a = Tile::for_fragment(FragmentKind::A, shape, ab);
    let mut b = Tile::for_fragment(FragmentKind::B, shape, ab);
    let mut c = Tile::for_fragment(FragmentKind::C, shape, cty);
    fill(&mut a, 1);
    fill(&mut b, 2);
    fill(&mut c, 3);

    let mut mem = VecMemory::new();
    write_tile(&mut mem, 0x0000, &a, al);
    write_tile(&mut mem, 0x4000, &b, bl);
    write_tile(&mut mem, 0x8000, &c, Layout::Row);

    let mut regs = WarpRegFile::new(96);
    let (ra, rb, rc, rd) = (Reg(0), Reg(16), Reg(32), Reg(48));
    let stride = |frag: FragmentKind, layout: Layout| -> usize {
        let (r, ccols) = frag.dims(shape);
        match layout {
            Layout::Row => ccols,
            Layout::Col => r,
        }
    };
    model.wmma_load(
        &WmmaDirective::Load {
            frag: FragmentKind::A,
            shape,
            layout: al,
            ty: ab,
        },
        ra,
        0x0000,
        stride(FragmentKind::A, al),
        &mem,
        &mut regs,
    );
    model.wmma_load(
        &WmmaDirective::Load {
            frag: FragmentKind::B,
            shape,
            layout: bl,
            ty: ab,
        },
        rb,
        0x4000,
        stride(FragmentKind::B, bl),
        &mem,
        &mut regs,
    );
    model.wmma_load(
        &WmmaDirective::Load {
            frag: FragmentKind::C,
            shape,
            layout: Layout::Row,
            ty: cty,
        },
        rc,
        0x8000,
        stride(FragmentKind::C, Layout::Row),
        &mem,
        &mut regs,
    );
    model.wmma_mma(
        &WmmaDirective::Mma {
            shape,
            a_layout: al,
            b_layout: bl,
            ab_type: ab,
            c_type: cty,
            d_type: dty,
        },
        rd,
        ra,
        rb,
        rc,
        &mut regs,
    );
    let dmap = FragmentMap::for_arch(volta, FragmentKind::D, shape, dty, Layout::Row);
    let got = gather_tile(&model, &dmap, rd, &regs);
    let want = mma_reference(&a, &b, &c, dty);
    assert_eq!(
        got, want,
        "volta={volta} {shape} {al}/{bl} {ab}->{dty}({cty})"
    );
}

#[test]
fn all_32_volta_configurations() {
    let mut count = 0;
    for al in [Layout::Row, Layout::Col] {
        for bl in [Layout::Row, Layout::Col] {
            for cty in [WmmaType::F16, WmmaType::F32] {
                for dty in [WmmaType::F16, WmmaType::F32] {
                    exercise(true, WmmaShape::M16N16K16, al, bl, WmmaType::F16, cty, dty);
                    count += 2; // × store layout (exercised in core tests)
                }
            }
        }
    }
    assert_eq!(count, 32);
}

#[test]
fn turing_fp16_tile_shapes() {
    for shape in [
        WmmaShape::M16N16K16,
        WmmaShape::M32N8K16,
        WmmaShape::M8N32K16,
    ] {
        for (cty, dty) in [
            (WmmaType::F32, WmmaType::F32),
            (WmmaType::F16, WmmaType::F16),
        ] {
            exercise(
                false,
                shape,
                Layout::Row,
                Layout::Col,
                WmmaType::F16,
                cty,
                dty,
            );
        }
    }
}

#[test]
fn turing_integer_modes() {
    for shape in [
        WmmaShape::M16N16K16,
        WmmaShape::M32N8K16,
        WmmaShape::M8N32K16,
    ] {
        for ab in [WmmaType::S8, WmmaType::U8] {
            exercise(
                false,
                shape,
                Layout::Row,
                Layout::Col,
                ab,
                WmmaType::S32,
                WmmaType::S32,
            );
        }
    }
}

/// Valid 2:4 kept-index pairs, cycled to give every A row a distinct
/// metadata word (broader than the broadcast word the fuzzer plants).
const META_PAIRS: [(u8, u8); 6] = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];

fn row_meta(r: usize) -> u16 {
    pack_sparse_row_meta([
        META_PAIRS[r % 6],
        META_PAIRS[(r + 1) % 6],
        META_PAIRS[(r + 2) % 6],
        META_PAIRS[(r + 5) % 6],
    ])
}

/// Runs load(A)+load(B)+load(C)+mma.sync through fragments and compares
/// D to the tile reference (over the host-expanded A for sparse modes).
fn exercise_mma_sync(mode: WmmaMode) {
    let model = TensorCoreModel::ampere();
    let a_shape = mode.frag_shape(FragmentKind::A);
    let mut a = Tile::for_fragment(FragmentKind::A, a_shape, mode.ab);
    let mut b = Tile::for_fragment(FragmentKind::B, mode.shape, mode.ab);
    let mut c = Tile::for_fragment(FragmentKind::C, mode.shape, mode.c);
    for (t, seed) in [(&mut a, 1u32), (&mut b, 2), (&mut c, 3)] {
        let data: Vec<f32> = (0..t.rows() * t.cols())
            .map(|i| {
                let (r, cc) = (i / t.cols(), i % t.cols());
                ((r as u32 * 31 + cc as u32 * 7 + seed) % 17) as f32 / 4.0 - 2.0
            })
            .collect();
        t.fill_f32(&data);
    }

    let mut mem = VecMemory::new();
    write_tile(&mut mem, 0x0000, &a, Layout::Row);
    write_tile(&mut mem, 0x4000, &b, Layout::Col);
    write_tile(&mut mem, 0x8000, &c, Layout::Row);

    let mut regs = WarpRegFile::new(96);
    let (ra, rb, rc, rd, rm) = (Reg(0), Reg(16), Reg(32), Reg(48), Reg(80));
    let loads = [
        (
            FragmentKind::A,
            a_shape,
            Layout::Row,
            mode.ab,
            ra,
            0x0000u64,
        ),
        (
            FragmentKind::B,
            mode.shape,
            Layout::Col,
            mode.ab,
            rb,
            0x4000,
        ),
        (FragmentKind::C, mode.shape, Layout::Row, mode.c, rc, 0x8000),
    ];
    for (frag, shape, layout, ty, reg, addr) in loads {
        let (rows, cols) = frag.dims(shape);
        let stride = match layout {
            Layout::Row => cols,
            Layout::Col => rows,
        };
        model.wmma_load(
            &WmmaDirective::Load {
                frag,
                shape,
                layout,
                ty,
            },
            reg,
            addr,
            stride,
            &mem,
            &mut regs,
        );
    }
    let meta = if mode.sparse {
        // Thread 0 of each quad carries rows g (low u16) and g+8 (high).
        for g in 0..8usize {
            let word = u32::from(row_meta(g)) | u32::from(row_meta(g + 8)) << 16;
            regs.write(4 * g, rm, word);
        }
        Some(rm)
    } else {
        None
    };
    model.mma_sync(
        &mode.mma_directive(Layout::Row, Layout::Col),
        rd,
        ra,
        rb,
        rc,
        meta,
        &mut regs,
    );

    let dmap = FragmentMap::for_arch(false, FragmentKind::D, mode.shape, mode.d, Layout::Row);
    let got = gather_tile(&model, &dmap, rd, &regs);
    let want = if mode.sparse {
        let meta_rows: Vec<u16> = (0..16).map(row_meta).collect();
        mma_reference(&expand_sparse_a(&a, &meta_rows), &b, &c, mode.d)
    } else {
        mma_reference(&a, &b, &c, mode.d)
    };
    assert_eq!(
        got,
        want,
        "{:?} {}x{} {}->{}({}) sparse={}",
        mode.shape,
        a.rows(),
        a.cols(),
        mode.ab,
        mode.d,
        mode.c,
        mode.sparse
    );
}

#[test]
fn ampere_mma_sync_modes() {
    let modes: Vec<WmmaMode> = wmma_modes(Arch::Ampere)
        .into_iter()
        .filter(|m| m.is_mma_sync())
        .collect();
    assert_eq!(
        modes.len(),
        16,
        "every mma.sync mode the generator knows must run here"
    );
    for mode in modes {
        exercise_mma_sync(mode);
    }
}

#[test]
fn turing_4bit_mode() {
    for ab in [WmmaType::S4, WmmaType::U4] {
        exercise(
            false,
            WmmaShape::M8N8K32,
            Layout::Row,
            Layout::Col,
            ab,
            WmmaType::S32,
            WmmaType::S32,
        );
    }
}
