//! System-level property tests: random GEMM problems through the whole
//! simulator must match the CPU reference; simulation must be
//! deterministic.

use proptest::prelude::*;
use tcsim::cutlass::{run_gemm, GemmKernel, GemmPrecision, GemmProblem};
use tcsim::sim::{Gpu, GpuConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn random_shapes_verify_on_simulator(
        m_tiles in 1usize..4,
        n_tiles in 1usize..4,
        k_tiles in 1usize..5,
    ) {
        let p = GemmProblem {
            m: m_tiles * 16,
            n: n_tiles * 16,
            k: k_tiles * 16,
            precision: GemmPrecision::MixedF32,
        };
        let mut gpu = Gpu::new(GpuConfig::mini());
        let run = run_gemm(&mut gpu, p, GemmKernel::WmmaSimple, true);
        prop_assert!(run.max_abs_err.expect("verified") < 0.01);
    }

    #[test]
    fn simulation_is_deterministic(size_tiles in 1usize..3) {
        let p = GemmProblem::square(size_tiles * 32);
        let a = run_gemm(&mut Gpu::new(GpuConfig::mini()), p, GemmKernel::WmmaShared, false);
        let b = run_gemm(&mut Gpu::new(GpuConfig::mini()), p, GemmKernel::WmmaShared, false);
        prop_assert_eq!(a.stats.cycles, b.stats.cycles);
        prop_assert_eq!(a.stats.instructions, b.stats.instructions);
    }

    #[test]
    fn instruction_count_scales_with_k(k_tiles in 1usize..6) {
        // The k-loop trip count is architectural: instructions must grow
        // linearly in k for a fixed output size.
        let base = run_gemm(
            &mut Gpu::new(GpuConfig::mini()),
            GemmProblem { m: 32, n: 32, k: 16, precision: GemmPrecision::MixedF32 },
            GemmKernel::WmmaSimple,
            false,
        );
        let run = run_gemm(
            &mut Gpu::new(GpuConfig::mini()),
            GemmProblem { m: 32, n: 32, k: 16 * k_tiles, precision: GemmPrecision::MixedF32 },
            GemmKernel::WmmaSimple,
            false,
        );
        prop_assert!(run.stats.instructions >= base.stats.instructions);
        if k_tiles > 1 {
            prop_assert!(run.stats.instructions > base.stats.instructions);
        }
    }
}
