//! End-to-end integration: GEMMs across kernels, shapes and precisions
//! run on the full simulator and verify against the CPU reference.

use tcsim::cutlass::{run_gemm, CutlassConfig, GemmKernel, GemmPrecision, GemmProblem};
use tcsim::sim::{Gpu, GpuConfig};

fn gpu() -> Gpu {
    Gpu::new(GpuConfig::mini())
}

#[test]
fn wmma_simple_shapes() {
    for (m, n, k) in [
        (16usize, 16usize, 16usize),
        (32, 16, 48),
        (48, 80, 32),
        (64, 64, 64),
    ] {
        let p = GemmProblem {
            m,
            n,
            k,
            precision: GemmPrecision::MixedF32,
        };
        let run = run_gemm(&mut gpu(), p, GemmKernel::WmmaSimple, true);
        assert!(run.max_abs_err.expect("verified") < 0.01, "{m}x{n}x{k}");
    }
}

#[test]
fn wmma_shared_shapes() {
    for (m, n, k) in [(32usize, 32usize, 16usize), (64, 32, 48), (96, 64, 32)] {
        let p = GemmProblem {
            m,
            n,
            k,
            precision: GemmPrecision::MixedF32,
        };
        let run = run_gemm(&mut gpu(), p, GemmKernel::WmmaShared, true);
        assert!(run.max_abs_err.expect("verified") < 0.01, "{m}x{n}x{k}");
    }
}

#[test]
fn fp16_output_mode() {
    for kernel in [GemmKernel::WmmaSimple, GemmKernel::WmmaShared] {
        let p = GemmProblem {
            m: 32,
            n: 32,
            k: 32,
            precision: GemmPrecision::Fp16,
        };
        let run = run_gemm(&mut gpu(), p, kernel, true);
        assert!(run.max_abs_err.is_some(), "{kernel:?}");
    }
}

#[test]
fn baselines_match_reference() {
    let p32 = GemmProblem {
        m: 48,
        n: 48,
        k: 32,
        precision: GemmPrecision::Fp32,
    };
    let run = run_gemm(&mut gpu(), p32, GemmKernel::Sgemm, true);
    assert!(run.max_abs_err.expect("verified") < 1e-3);

    let p16 = GemmProblem {
        m: 32,
        n: 64,
        k: 32,
        precision: GemmPrecision::Fp16,
    };
    let run = run_gemm(&mut gpu(), p16, GemmKernel::Hgemm, true);
    assert!(run.max_abs_err.expect("verified") < 1.0);
}

#[test]
fn tensor_kernels_outperform_baseline_on_same_problem() {
    let size = 64;
    let tc = run_gemm(
        &mut gpu(),
        GemmProblem::square(size),
        GemmKernel::WmmaShared,
        false,
    );
    let p32 = GemmProblem {
        precision: GemmPrecision::Fp32,
        ..GemmProblem::square(size)
    };
    let sg = run_gemm(&mut gpu(), p32, GemmKernel::Sgemm, false);
    assert!(
        tc.stats.cycles < sg.stats.cycles,
        "tensor {} vs sgemm {}",
        tc.stats.cycles,
        sg.stats.cycles
    );
}

#[test]
fn full_titan_v_runs_the_same_numerics() {
    // The 80-SM configuration must produce the identical D matrix as the
    // mini GPU (timing differs; architecture state must not).
    let p = GemmProblem::square(64);
    let mini = run_gemm(
        &mut Gpu::new(GpuConfig::mini()),
        p,
        GemmKernel::WmmaShared,
        true,
    );
    let big = run_gemm(
        &mut Gpu::new(GpuConfig::titan_v()),
        p,
        GemmKernel::WmmaShared,
        true,
    );
    assert_eq!(mini.max_abs_err, big.max_abs_err);
    assert!(
        big.stats.cycles <= mini.stats.cycles,
        "more SMs cannot be slower"
    );
}

#[test]
fn turing_gpu_runs_wmma_kernels() {
    let p = GemmProblem::square(64);
    let run = run_gemm(
        &mut Gpu::new(GpuConfig::rtx_2080()),
        p,
        GemmKernel::WmmaShared,
        true,
    );
    assert!(run.max_abs_err.expect("verified") < 0.01);
    assert!(run.stats.sm.issued_by_unit[4] > 0);
}

#[test]
fn cutlass_tilings_all_verify() {
    let tilings = [
        CutlassConfig {
            cta_m: 64,
            cta_n: 64,
            warp_m: 32,
            warp_n: 32,
            stages: 1,
        },
        CutlassConfig {
            cta_m: 64,
            cta_n: 64,
            warp_m: 32,
            warp_n: 32,
            stages: 2,
        },
        CutlassConfig {
            cta_m: 64,
            cta_n: 64,
            warp_m: 32,
            warp_n: 64,
            stages: 2,
        },
        CutlassConfig {
            cta_m: 64,
            cta_n: 64,
            warp_m: 64,
            warp_n: 32,
            stages: 2,
        },
        CutlassConfig {
            cta_m: 128,
            cta_n: 64,
            warp_m: 64,
            warp_n: 32,
            stages: 2,
        },
    ];
    for cfg in tilings {
        let p = GemmProblem {
            m: 128,
            n: 128,
            k: 64,
            precision: GemmPrecision::MixedF32,
        };
        let run = run_gemm(&mut gpu(), p, GemmKernel::Cutlass(cfg), true);
        assert!(run.max_abs_err.expect("verified") < 0.01, "{cfg:?}");
    }
}

#[test]
fn double_buffering_does_not_change_results_but_changes_timing() {
    let p = GemmProblem {
        m: 64,
        n: 64,
        k: 128,
        precision: GemmPrecision::MixedF32,
    };
    let single = run_gemm(
        &mut gpu(),
        p,
        GemmKernel::Cutlass(CutlassConfig {
            stages: 1,
            ..CutlassConfig::default_64x64()
        }),
        true,
    );
    let double = run_gemm(
        &mut gpu(),
        p,
        GemmKernel::Cutlass(CutlassConfig {
            stages: 2,
            ..CutlassConfig::default_64x64()
        }),
        true,
    );
    assert_eq!(single.max_abs_err, double.max_abs_err, "same numerics");
    assert_ne!(
        single.stats.cycles, double.stats.cycles,
        "different pipelines"
    );
}

#[test]
#[should_panic(expected = "architectural limit")]
fn register_cap_is_enforced() {
    // A single-warp 64x64 warp tile needs >500 registers per thread; real
    // hardware (and the simulator) caps at 256.
    let cfg = CutlassConfig {
        cta_m: 64,
        cta_n: 64,
        warp_m: 64,
        warp_n: 64,
        stages: 2,
    };
    let p = GemmProblem {
        m: 64,
        n: 64,
        k: 16,
        precision: GemmPrecision::MixedF32,
    };
    let _ = run_gemm(&mut gpu(), p, GemmKernel::Cutlass(cfg), false);
}

#[test]
fn int8_tensor_gemm_is_exact_on_turing() {
    // Turing inference mode (§III-B2): S8 multiplicands, S32 accumulate —
    // integer results must match the reference bit-exactly.
    let p = GemmProblem {
        m: 48,
        n: 32,
        k: 64,
        precision: GemmPrecision::Int8,
    };
    let mut gpu = Gpu::new(GpuConfig::rtx_2080());
    let run = run_gemm(&mut gpu, p, GemmKernel::IgemmWmma, true);
    assert_eq!(run.max_abs_err, Some(0.0));
    assert!(run.stats.sm.issued_by_unit[4] > 0);
}

#[test]
#[should_panic(expected = "needs a Turing GPU")]
fn int8_gemm_rejected_on_volta() {
    let p = GemmProblem {
        m: 16,
        n: 16,
        k: 16,
        precision: GemmPrecision::Int8,
    };
    let mut gpu = Gpu::new(GpuConfig::titan_v());
    let _ = run_gemm(&mut gpu, p, GemmKernel::IgemmWmma, false);
}
