//! The CUTLASS test-battery analog: the paper verified its GPGPU-Sim
//! changes against NVIDIA's ~680-case CUTLASS unit-test suite (§V-B).
//! This battery sweeps problem shapes × tilings × precisions × kernels
//! and verifies every configuration's numerical output on the simulator.
//!
//! Runs on the mini GPU configuration to keep wall-clock reasonable; the
//! numerics are configuration-independent (asserted separately in
//! `gemm_end_to_end.rs`).

use tcsim::cutlass::{run_gemm, CutlassConfig, GemmKernel, GemmPrecision, GemmProblem};
use tcsim::sim::{Gpu, GpuConfig};

fn check(p: GemmProblem, kernel: GemmKernel) {
    let mut gpu = Gpu::new(GpuConfig::mini());
    let run = run_gemm(&mut gpu, p, kernel, true);
    let tol = match p.precision {
        GemmPrecision::Fp16 => 1.0,
        _ => 0.01,
    };
    assert!(
        run.max_abs_err.expect("verified") < tol,
        "{:?} {}x{}x{} failed",
        kernel,
        p.m,
        p.n,
        p.k
    );
}

#[test]
fn battery_wmma_simple_mixed() {
    for m in [16usize, 32, 48] {
        for n in [16usize, 48, 64] {
            for k in [16usize, 32, 80] {
                check(
                    GemmProblem {
                        m,
                        n,
                        k,
                        precision: GemmPrecision::MixedF32,
                    },
                    GemmKernel::WmmaSimple,
                );
            }
        }
    }
}

#[test]
fn battery_wmma_simple_fp16() {
    for m in [16usize, 48] {
        for n in [32usize, 64] {
            for k in [16usize, 48] {
                check(
                    GemmProblem {
                        m,
                        n,
                        k,
                        precision: GemmPrecision::Fp16,
                    },
                    GemmKernel::WmmaSimple,
                );
            }
        }
    }
}

#[test]
fn battery_wmma_shared() {
    for m in [32usize, 64, 96] {
        for n in [32usize, 64] {
            for k in [16usize, 48] {
                for precision in [GemmPrecision::MixedF32, GemmPrecision::Fp16] {
                    check(GemmProblem { m, n, k, precision }, GemmKernel::WmmaShared);
                }
            }
        }
    }
}

#[test]
fn battery_cutlass_tilings() {
    let tilings = [
        CutlassConfig {
            cta_m: 64,
            cta_n: 64,
            warp_m: 32,
            warp_n: 32,
            stages: 1,
        },
        CutlassConfig {
            cta_m: 64,
            cta_n: 64,
            warp_m: 32,
            warp_n: 32,
            stages: 2,
        },
        CutlassConfig {
            cta_m: 64,
            cta_n: 128,
            warp_m: 32,
            warp_n: 64,
            stages: 2,
        },
        CutlassConfig {
            cta_m: 128,
            cta_n: 128,
            warp_m: 64,
            warp_n: 32,
            stages: 2,
        },
    ];
    for cfg in tilings {
        for k in [16usize, 64, 112] {
            check(
                GemmProblem {
                    m: cfg.cta_m * 2,
                    n: cfg.cta_n,
                    k,
                    precision: GemmPrecision::MixedF32,
                },
                GemmKernel::Cutlass(cfg),
            );
        }
    }
}

#[test]
fn battery_baselines() {
    for (m, n, k) in [(16usize, 16usize, 16usize), (32, 48, 64), (64, 32, 48)] {
        check(
            GemmProblem {
                m,
                n,
                k,
                precision: GemmPrecision::Fp32,
            },
            GemmKernel::Sgemm,
        );
    }
    for (m, n, k) in [(16usize, 32usize, 16usize), (32, 64, 48)] {
        check(
            GemmProblem {
                m,
                n,
                k,
                precision: GemmPrecision::Fp16,
            },
            GemmKernel::Hgemm,
        );
    }
}

#[test]
fn battery_deep_k_accumulation() {
    // Long reduction chains exercise FEDP accumulation ordering.
    check(
        GemmProblem {
            m: 16,
            n: 16,
            k: 512,
            precision: GemmPrecision::MixedF32,
        },
        GemmKernel::WmmaSimple,
    );
    check(
        GemmProblem {
            m: 32,
            n: 32,
            k: 256,
            precision: GemmPrecision::MixedF32,
        },
        GemmKernel::WmmaShared,
    );
}

#[test]
fn battery_skinny_shapes() {
    check(
        GemmProblem {
            m: 16,
            n: 256,
            k: 32,
            precision: GemmPrecision::MixedF32,
        },
        GemmKernel::WmmaSimple,
    );
    check(
        GemmProblem {
            m: 256,
            n: 16,
            k: 32,
            precision: GemmPrecision::MixedF32,
        },
        GemmKernel::WmmaSimple,
    );
    check(
        GemmProblem {
            m: 32,
            n: 160,
            k: 16,
            precision: GemmPrecision::MixedF32,
        },
        GemmKernel::WmmaShared,
    );
}
