//! Replays the committed fuzzer corpus (`tests/corpus/*.case`) on every
//! `cargo test`: each case is a self-contained kernel + launch + compare
//! description that must pass the differential oracle and the timing
//! invariants. Minimized failures the fuzzer writes here become
//! permanent regression guards the moment they are committed.

use std::path::Path;
use tcsim_check::corpus::replay_dir;

#[test]
fn committed_corpus_replays_clean() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let results = replay_dir(&dir);
    assert!(
        !results.is_empty(),
        "tests/corpus is empty — the seed corpus should be committed \
         (regenerate with `cargo run -p tcsim-check --example seed_corpus`)"
    );
    let mut failed = Vec::new();
    for (path, outcome) in &results {
        match outcome {
            Ok(()) => {}
            Err(e) => {
                eprintln!("replay FAIL {}: {e}", path.display());
                if let Ok(text) = std::fs::read_to_string(path) {
                    eprintln!("--- failing case ---\n{text}--------------------");
                }
                failed.push(path.file_name().unwrap().to_string_lossy().to_string());
            }
        }
    }
    assert!(failed.is_empty(), "corpus cases failed: {failed:?}");
}
