//! Capstone domain scenario: scaled-dot-product attention on the
//! simulated GPU — now driven entirely through the `tcsim::nn` layer IR
//! instead of the hand-rolled kernels this example used to carry. The
//! `Attention` layer lowers to the same machinery the full encoder
//! block uses: a fused QKV projection GEMM, per-head Q·Kᵀ score GEMMs,
//! the MUFU `ex2` warp-shuffle softmax, per-head P·V context GEMMs and
//! the output projection, each differentially checked against the host
//! f32 reference.
//!
//! On top of the single block, the example runs a small `tcsim::infer`
//! serving scenario: a seeded Poisson request stream dynamically
//! batched onto the block, with each batch charged its simulated cycle
//! cost — the request-level view of the same attention workload.
//!
//! Run with: `cargo run --release --example attention`

use tcsim::infer::{simulate, CostModel, KvCache, Policy, Workload};
use tcsim::nn::models::{encoder, input_for, ENCODER_D_MODEL, ENCODER_SEQ};
use tcsim::nn::run_chained;
use tcsim::sim::GpuConfig;

const SEED: u64 = 42;

fn main() {
    // One encoder block (the attention layers plus their surrounding
    // layernorm/MLP), batch 1, on the mini config.
    let cfg = GpuConfig::mini();
    let net = encoder(SEED, 1);
    let input = input_for(&net, SEED);
    println!(
        "attention via the layer IR: {} tokens × {} model dims (seed {SEED})\n",
        ENCODER_SEQ, ENCODER_D_MODEL
    );

    let report = run_chained(&net, &input, cfg.clone(), true);
    report.assert_within_tolerance();
    println!(
        "{:<22} {:>28} {:>9} {:>6} {:>6}",
        "stage", "kernel", "cycles", "HMMA%", "err/tol"
    );
    for l in &report.layers {
        let occ = l
            .hmma_occupancy
            .map_or("-".to_string(), |o| format!("{:.1}", o * 100.0));
        println!(
            "{:<22} {:>28} {:>9} {:>6} {:>6.2}",
            l.name,
            l.kernel,
            l.cycles,
            occ,
            if l.tolerance > 0.0 {
                l.max_err / l.tolerance
            } else {
                l.max_err
            }
        );
    }
    println!(
        "\nblock total: {} cycles, worst error {:.0}% of tolerance\n",
        report.total_cycles(),
        report.worst_rel_err() * 100.0
    );

    // The serving view: 32 requests arriving open-loop at 40 per
    // Mcycle, continuously batched up to 4 sequences, KV-gated.
    let mut cost = CostModel::new(cfg, SEED);
    let workload = Workload {
        seed: SEED,
        requests: 32,
        rate_per_mcycle: 40.0,
    };
    let policy = Policy::Continuous { max_batch: 4 };
    let run = simulate(&mut cost, &workload, &policy, &KvCache::for_encoder(8));
    println!(
        "serving {} requests at {} req/Mcycle ({} policy, max batch {}):",
        run.requests, run.rate_per_mcycle, run.policy, run.max_batch
    );
    println!(
        "  completed {} / rejected {}, p50 {} cyc, p99 {} cyc, mean batch {:.2}, \
         goodput {:.1} req/Mcycle, {} block simulations",
        run.completed(),
        run.rejected,
        run.percentile(50.0),
        run.percentile(99.0),
        run.mean_batch(),
        run.throughput_per_mcycle(),
        cost.sim_invocations()
    );
}
