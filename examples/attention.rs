//! Capstone domain scenario: a full scaled-dot-product attention head on
//! the simulated Titan V — `softmax(Q·Kᵀ/√d)·V` — combining everything
//! the reproduction built: tensor-core GEMMs for Q·Kᵀ and P·V, the MUFU
//! `ex2` softmax kernel in between, and host orchestration across
//! multiple kernel launches (the PyTorch-on-GPGPU-Sim use case the paper
//! points at in §I).
//!
//! Shapes: `heads` independent heads with sequence length 32 and head
//! dimension 64 (tile-aligned everywhere). Verified end-to-end against a
//! CPU attention implementation.
//!
//! Run with: `cargo run --release --example attention`

use tcsim::cutlass::wmma_simple_gemm;
use tcsim::f16::F16;
use tcsim::isa::{
    CmpOp, DataType, Kernel, KernelBuilder, MemSpace, MemWidth, Operand, SpecialReg,
};
use tcsim::sim::{Gpu, GpuConfig, LaunchBuilder};

const SEQ: usize = 32;
const DIM: usize = 64;
const HEADS: usize = 4;
const LOG2E: f32 = std::f32::consts::LOG2_E;

fn q_val(h: usize, i: usize, d: usize) -> f32 {
    (((h * 17 + i * 5 + d) % 13) as f32 - 6.0) / 8.0
}
fn k_val(h: usize, i: usize, d: usize) -> f32 {
    (((h * 11 + i * 3 + d * 7) % 11) as f32 - 5.0) / 8.0
}
fn v_val(h: usize, i: usize, d: usize) -> f32 {
    (((h * 7 + i + d * 3) % 9) as f32 - 4.0) / 4.0
}

/// Row-wise softmax over a SEQ×SEQ f32 matrix with a pre-scale factor,
/// writing an f16 matrix (the P operand of the second GEMM). One warp per
/// row.
fn softmax_scale_kernel() -> Kernel {
    let mut b = KernelBuilder::new("softmax_scale");
    let src_p = b.param_u64("src");
    let dst_p = b.param_u64("dst");
    let red = b.shared_alloc((SEQ * 4) as u32) as i64;

    let src = b.reg_pair();
    b.ld_param(MemWidth::B64, src, src_p);
    let dst = b.reg_pair();
    b.ld_param(MemWidth::B64, dst, dst_p);
    let lane = b.reg();
    b.mov(lane, Operand::Special(SpecialReg::TidX));
    let row = b.reg();
    b.mov(row, Operand::Special(SpecialReg::CtaIdX));
    let idx = b.reg();
    b.imad(idx, row, Operand::Imm(SEQ as i64), Operand::Reg(lane));
    let addr_in = b.reg_pair();
    b.imad_wide(addr_in, idx, Operand::Imm(4), src);
    let x = b.reg();
    b.ld_global(MemWidth::B32, x, addr_in, 0);
    // Pre-scale by 1/√d.
    b.fmul(x, x, Operand::fimm(1.0 / (DIM as f32).sqrt()));

    let my_slot = b.reg();
    b.imad(my_slot, lane, Operand::Imm(4), Operand::Imm(red));
    let p = b.pred();
    let tmp = b.reg();
    let other = b.reg();
    let partner = b.reg();
    let reduce = |b: &mut KernelBuilder, is_max: bool| {
        for stride in [16i64, 8, 4, 2, 1] {
            b.iadd(partner, lane, Operand::Imm(stride));
            b.imad(partner, partner, Operand::Imm(4), Operand::Imm(red));
            b.ld_shared(MemWidth::B32, other, partner, 0);
            b.ld_shared(MemWidth::B32, tmp, my_slot, 0);
            if is_max {
                b.emit(
                    tcsim::isa::Instr::new(tcsim::isa::Op::FMax)
                        .with_dst(tmp)
                        .with_srcs(vec![Operand::Reg(tmp), Operand::Reg(other)]),
                );
            } else {
                b.fadd(tmp, tmp, Operand::Reg(other));
            }
            b.setp(p, CmpOp::Lt, DataType::S32, lane, Operand::Imm(stride));
            b.emit(
                tcsim::isa::Instr::new(tcsim::isa::Op::St {
                    space: MemSpace::Shared,
                    width: MemWidth::B32,
                })
                .with_srcs(vec![Operand::Reg(my_slot), Operand::Imm(0), Operand::Reg(tmp)])
                .with_guard(p, true),
            );
            b.bar();
        }
    };

    b.st_shared(MemWidth::B32, my_slot, 0, x);
    b.bar();
    reduce(&mut b, true);
    let slot0 = b.reg();
    b.mov(slot0, Operand::Imm(red));
    let rowmax = b.reg();
    b.ld_shared(MemWidth::B32, rowmax, slot0, 0);
    b.bar();

    let e = b.reg();
    b.fmul(e, rowmax, Operand::fimm(-1.0));
    b.fadd(e, x, Operand::Reg(e));
    b.fmul(e, e, Operand::fimm(LOG2E));
    b.fex2(e, e);

    b.st_shared(MemWidth::B32, my_slot, 0, e);
    b.bar();
    reduce(&mut b, false);
    let total = b.reg();
    b.ld_shared(MemWidth::B32, total, slot0, 0);
    let inv = b.reg();
    b.emit(
        tcsim::isa::Instr::new(tcsim::isa::Op::FRcp)
            .with_dst(inv)
            .with_srcs(vec![Operand::Reg(total)]),
    );
    let y = b.reg();
    b.fmul(y, e, Operand::Reg(inv));
    // Round to f16 and store packed halves (one B16 store per lane).
    let h = b.reg();
    b.cvt(h, DataType::F32, DataType::F16, Operand::Reg(y));
    let addr_out = b.reg_pair();
    b.imad_wide(addr_out, idx, Operand::Imm(2), dst);
    b.st(MemSpace::Global, MemWidth::B16, Operand::RegPair(addr_out), 0, h);
    b.exit();
    b.build()
}

fn main() {
    let mut gpu = Gpu::new(GpuConfig::titan_v());
    let mut total_cycles = 0u64;

    // Device buffers per head: Q (SEQ×DIM f16), Kᵀ (DIM×SEQ f16),
    // S = Q·Kᵀ (SEQ×SEQ f32), P = softmax(S/√d) (SEQ×SEQ f16),
    // V (SEQ×DIM f16), O = P·V (SEQ×DIM f32), and a zero C operand.
    let q = gpu.alloc((HEADS * SEQ * DIM * 2) as u64);
    let kt = gpu.alloc((HEADS * DIM * SEQ * 2) as u64);
    let v = gpu.alloc((HEADS * SEQ * DIM * 2) as u64);
    let s = gpu.alloc((HEADS * SEQ * SEQ * 4) as u64);
    let pmat = gpu.alloc((HEADS * SEQ * SEQ * 2) as u64);
    let o = gpu.alloc((HEADS * SEQ * DIM * 4) as u64);
    let zero_c_big = gpu.alloc((SEQ * DIM.max(SEQ) * 4) as u64);

    for h in 0..HEADS {
        for i in 0..SEQ {
            for d in 0..DIM {
                let qb = F16::from_f32(q_val(h, i, d)).to_bits();
                gpu.write_u16(q + (((h * SEQ + i) * DIM + d) * 2) as u64, qb);
                // Kᵀ is DIM×SEQ row-major: element (d, i) = K(i, d).
                let kb = F16::from_f32(k_val(h, i, d)).to_bits();
                gpu.write_u16(kt + (((h * DIM + d) * SEQ + i) * 2) as u64, kb);
                let vb = F16::from_f32(v_val(h, i, d)).to_bits();
                gpu.write_u16(v + (((h * SEQ + i) * DIM + d) * 2) as u64, vb);
            }
        }
    }

    let softmax = softmax_scale_kernel();
    for h in 0..HEADS {
        let qh = q + ((h * SEQ * DIM) * 2) as u64;
        let kth = kt + ((h * DIM * SEQ) * 2) as u64;
        let sh = s + ((h * SEQ * SEQ) * 4) as u64;
        let ph = pmat + ((h * SEQ * SEQ) * 2) as u64;
        let vh = v + ((h * SEQ * DIM) * 2) as u64;
        let oh = o + ((h * SEQ * DIM) * 4) as u64;

        // S = Q·Kᵀ: (SEQ×DIM)·(DIM×SEQ) → SEQ×SEQ.
        let st = LaunchBuilder::new(wmma_simple_gemm(false))
            .grid(((SEQ / 16) as u32, (SEQ / 16) as u32))
            .block(32u32)
            .param_u64(qh)
            .param_u64(kth)
            .param_u64(zero_c_big)
            .param_u64(sh)
            .param_u32(SEQ as u32)
            .param_u32(DIM as u32)
            .launch(&mut gpu);
        // P = softmax(S/√d), rounded to f16.
        let sm = LaunchBuilder::new(softmax.clone())
            .grid(SEQ as u32)
            .block(SEQ as u32)
            .param_u64(sh)
            .param_u64(ph)
            .launch(&mut gpu);
        // O = P·V: (SEQ×SEQ)·(SEQ×DIM) → SEQ×DIM.
        let ot = LaunchBuilder::new(wmma_simple_gemm(false))
            .grid(((DIM / 16) as u32, (SEQ / 16) as u32))
            .block(32u32)
            .param_u64(ph)
            .param_u64(vh)
            .param_u64(zero_c_big)
            .param_u64(oh)
            .param_u32(DIM as u32)
            .param_u32(SEQ as u32)
            .launch(&mut gpu);
        total_cycles += st.cycles + sm.cycles + ot.cycles;
    }
    println!(
        "{HEADS} attention heads (seq {SEQ}, dim {DIM}): {total_cycles} total cycles across {} launches",
        HEADS * 3
    );

    // CPU reference with matching precision staging (f16 operands, f32
    // accumulation, f16 P matrix).
    let mut max_err = 0f32;
    for h in 0..HEADS {
        for i in 0..SEQ {
            // scores
            let mut srow = [0f32; SEQ];
            #[allow(clippy::needless_range_loop)]
            for j in 0..SEQ {
                let mut acc = 0f32;
                for d in 0..DIM {
                    acc += F16::from_f32(q_val(h, i, d)).to_f32()
                        * F16::from_f32(k_val(h, j, d)).to_f32();
                }
                srow[j] = acc / (DIM as f32).sqrt();
            }
            let m = srow.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let es: Vec<f32> = srow.iter().map(|x| ((x - m) * LOG2E).exp2()).collect();
            let sum: f32 = es.iter().sum();
            let prow: Vec<f32> = es.iter().map(|e| F16::from_f32(e / sum).to_f32()).collect();
            for d in 0..DIM {
                let mut want = 0f32;
                #[allow(clippy::needless_range_loop)]
                for j in 0..SEQ {
                    want += prow[j] * F16::from_f32(v_val(h, j, d)).to_f32();
                }
                let got = f32::from_bits(
                    gpu.read_u32(o + (((h * SEQ + i) * DIM + d) * 4) as u64),
                );
                max_err = max_err.max((got - want).abs());
                assert!(
                    (got - want).abs() < 5e-3,
                    "head {h} row {i} dim {d}: got {got}, want {want}"
                );
            }
        }
    }
    println!("attention output verified against CPU reference (max |err| = {max_err:.2e})");
}
