//! Loading a kernel from PTX-flavoured assembly text and running it on
//! the simulator — the paper models tensor cores at the PTX level, and
//! this is the text route into the same machinery.
//!
//! Run with: `cargo run --example ptx_kernel`

use tcsim::isa::ptx;
use tcsim::sim::{Gpu, GpuConfig, LaunchBuilder};

const SOURCE: &str = r#"
.kernel axpy_int
.param x : u64
.param y : u64
.param a : u32
{
    ld.param.b64   r2, [x];
    ld.param.b64   r4, [y];
    ld.param.b32   r6, [a];
    mov.u32        r0, %ctaid.x;
    mov.u32        r1, %ntid.x;
    imad           r0, r0, r1, 0;
    mov.u32        r1, %tid.x;
    iadd           r0, r0, r1;       // global thread id
    imad.wide      r8, r0, 4, r2;
    ld.global.b32  r10, [r8+0];
    imad.wide      r8, r0, 4, r4;
    ld.global.b32  r11, [r8+0];
    imad           r12, r10, r6, r11; // a*x + y
    st.global.b32  [r8+0], r12;
    exit;
}
"#;

fn main() {
    let kernel = ptx::parse_kernel(SOURCE).expect("valid source");
    println!(
        "parsed `{}`: {} instructions, {} registers",
        kernel.name(),
        kernel.instrs().len(),
        kernel.num_regs()
    );

    let n = 256u32;
    let mut gpu = Gpu::new(GpuConfig::mini());
    let x = gpu.alloc(n as u64 * 4);
    let y = gpu.alloc(n as u64 * 4);
    for i in 0..n {
        gpu.write_u32(x + 4 * i as u64, i);
        gpu.write_u32(y + 4 * i as u64, 1000 + i);
    }
    let a = 3u32;
    let stats = LaunchBuilder::new(kernel)
        .grid(n / 64)
        .block(64u32)
        .param_u64(x)
        .param_u64(y)
        .param_u32(a)
        .launch(&mut gpu);
    println!("ran in {} cycles, IPC {:.2}", stats.cycles, stats.ipc());

    for i in [0u32, 17, 255] {
        let got = gpu.read_u32(y + 4 * i as u64);
        assert_eq!(got, a * i + 1000 + i);
        println!("y[{i}] = {got}");
    }
    println!("axpy verified.");
}
