//! Domain scenario: re-run the paper's reverse-engineering methodology on
//! the *model* — the same three probes §III used on real silicon.
//!
//! 1. Fragment decoding (Fig 4): print which tile elements each thread's
//!    fragment holds after a `wmma.load`.
//! 2. Clocked HMMA timing (Fig 6): read the cycle counter around a
//!    `wmma.mma` on the simulator.
//! 3. Warp scaling (Fig 12c): repeated MMAs with 1..8 warps per CTA.
//!
//! Run with: `cargo run --release --example microbenchmark`

use tcsim::core::FragmentMap;
use tcsim::cutlass::microbench::{clocked_mma, repeated_mma};
use tcsim::isa::{FragmentKind, Layout, WmmaType};
use tcsim::sim::{Gpu, GpuConfig, LaunchBuilder};

fn main() {
    // --- 1. Fragment decoding, as the Fig 4 printf microbenchmark. ---
    println!("Fragment map (Volta A, row-major): THREAD n CONTAINS ...");
    let map = FragmentMap::volta(FragmentKind::A, WmmaType::F16, Layout::Row);
    for lane in 0..4 {
        let elems: Vec<String> = map
            .lane_elems(lane)
            .iter()
            .map(|&(r, c)| format!("A{r}{c:X}"))
            .collect();
        println!("  THREAD{lane} CONTAINS {}", elems.join(" "));
    }

    // --- 2. Clocked wmma.mma. ---
    for (fp16, label, schedule) in [(false, "mixed", 54u32), (true, "fp16", 64u32)] {
        let mut gpu = Gpu::new(GpuConfig::mini());
        let src = gpu.alloc(16 * 16 * 4);
        let out = gpu.alloc(4);
        LaunchBuilder::new(clocked_mma(fp16))
            .grid(1u32)
            .block(32u32)
            .param_u64(src)
            .param_u64(out)
            .launch(&mut gpu);
        println!(
            "clocked wmma.mma ({label}): {} cycles measured (HMMA schedule: {schedule})",
            gpu.read_u32(out)
        );
    }

    // --- 3. Warp scaling. ---
    println!("\nwarp scaling (32 MMAs per warp, one CTA):");
    for warps in [1u32, 2, 4, 6, 8] {
        let mut gpu = Gpu::new(GpuConfig::mini());
        let src = gpu.alloc(16 * 16 * 4);
        let out = gpu.alloc(warps as u64 * 4);
        LaunchBuilder::new(repeated_mma(32))
            .grid(1u32)
            .block(warps * 32)
            .param_u64(src)
            .param_u64(out)
            .launch(&mut gpu);
        let max = (0..warps)
            .map(|w| gpu.read_u32(out + 4 * w as u64))
            .max()
            .expect("warps > 0");
        println!("  {warps} warps: {max} cycles");
    }
    println!("(flat to 4 warps, then the tensor-core pairs saturate — Fig 12c)");
}
