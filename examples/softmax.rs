//! Domain scenario: a numerically stable row-wise softmax kernel — the
//! non-GEMM half of attention layers — exercising the MUFU transcendental
//! unit, shared-memory tree reductions and barriers on the simulated GPU.
//!
//! One warp per row: (1) parallel max-reduction in shared memory,
//! (2) `exp2((x − max)·log2 e)` via the MUFU `ex2`, (3) parallel
//! sum-reduction, (4) normalization with MUFU `rcp`. Verified against a
//! CPU softmax.
//!
//! Run with: `cargo run --release --example softmax`

use tcsim::isa::{CmpOp, DataType, KernelBuilder, MemSpace, MemWidth, Operand, SpecialReg};
use tcsim::sim::{Gpu, GpuConfig, LaunchBuilder};

const COLS: usize = 32; // one element per lane
const ROWS: usize = 64;
const LOG2E: f32 = std::f32::consts::LOG2_E;

fn build_softmax() -> tcsim::isa::Kernel {
    let mut b = KernelBuilder::new("softmax_rows");
    let src_p = b.param_u64("src");
    let dst_p = b.param_u64("dst");
    let red = b.shared_alloc((COLS * 4) as u32) as i64;

    let src = b.reg_pair();
    b.ld_param(MemWidth::B64, src, src_p);
    let dst = b.reg_pair();
    b.ld_param(MemWidth::B64, dst, dst_p);
    let lane = b.reg();
    b.mov(lane, Operand::Special(SpecialReg::TidX));
    let row = b.reg();
    b.mov(row, Operand::Special(SpecialReg::CtaIdX));

    // x = src[row·COLS + lane]
    let idx = b.reg();
    b.imad(idx, row, Operand::Imm(COLS as i64), Operand::Reg(lane));
    let addr_in = b.reg_pair();
    b.imad_wide(addr_in, idx, Operand::Imm(4), src);
    let x = b.reg();
    b.ld_global(MemWidth::B32, x, addr_in, 0);

    // Shared-memory tree reduction helper addresses. One predicate is
    // reused by every guarded store (setp overwrites it each round).
    let my_slot = b.reg();
    b.imad(my_slot, lane, Operand::Imm(4), Operand::Imm(red));
    let p = b.pred();

    // --- max reduction ---
    b.st_shared(MemWidth::B32, my_slot, 0, x);
    b.bar();
    let tmp = b.reg();
    let other = b.reg();
    let partner = b.reg();
    for stride in [16i64, 8, 4, 2, 1] {
        // partner = lane + stride (only lanes < stride combine).
        b.iadd(partner, lane, Operand::Imm(stride));
        b.imad(partner, partner, Operand::Imm(4), Operand::Imm(red));
        b.ld_shared(MemWidth::B32, other, partner, 0);
        b.ld_shared(MemWidth::B32, tmp, my_slot, 0);
        b.emit(
            tcsim::isa::Instr::new(tcsim::isa::Op::FMax)
                .with_dst(tmp)
                .with_srcs(vec![Operand::Reg(tmp), Operand::Reg(other)]),
        );
        b.setp(p, CmpOp::Lt, DataType::S32, lane, Operand::Imm(stride));
        b.emit(
            tcsim::isa::Instr::new(tcsim::isa::Op::St {
                space: MemSpace::Shared,
                width: MemWidth::B32,
            })
            .with_srcs(vec![
                Operand::Reg(my_slot),
                Operand::Imm(0),
                Operand::Reg(tmp),
            ])
            .with_guard(p, true),
        );
        b.bar();
    }
    let rowmax = b.reg();
    let slot0 = b.reg();
    b.mov(slot0, Operand::Imm(red));
    b.ld_shared(MemWidth::B32, rowmax, slot0, 0);
    b.bar();

    // --- e = exp2((x − max)·log2e) ---
    let neg = b.reg();
    b.fmul(neg, rowmax, Operand::fimm(-1.0));
    let centered = b.reg();
    b.fadd(centered, x, Operand::Reg(neg));
    let scaled = b.reg();
    b.fmul(scaled, centered, Operand::fimm(LOG2E));
    let e = b.reg();
    b.fex2(e, scaled);

    // --- sum reduction (same tree, FAdd) ---
    b.st_shared(MemWidth::B32, my_slot, 0, e);
    b.bar();
    for stride in [16i64, 8, 4, 2, 1] {
        b.iadd(partner, lane, Operand::Imm(stride));
        b.imad(partner, partner, Operand::Imm(4), Operand::Imm(red));
        b.ld_shared(MemWidth::B32, other, partner, 0);
        b.ld_shared(MemWidth::B32, tmp, my_slot, 0);
        b.fadd(tmp, tmp, Operand::Reg(other));
        b.setp(p, CmpOp::Lt, DataType::S32, lane, Operand::Imm(stride));
        b.emit(
            tcsim::isa::Instr::new(tcsim::isa::Op::St {
                space: MemSpace::Shared,
                width: MemWidth::B32,
            })
            .with_srcs(vec![
                Operand::Reg(my_slot),
                Operand::Imm(0),
                Operand::Reg(tmp),
            ])
            .with_guard(p, true),
        );
        b.bar();
    }
    let total = b.reg();
    b.ld_shared(MemWidth::B32, total, slot0, 0);

    // --- normalize: dst = e · rcp(total) ---
    let inv = b.reg();
    b.emit(
        tcsim::isa::Instr::new(tcsim::isa::Op::FRcp)
            .with_dst(inv)
            .with_srcs(vec![Operand::Reg(total)]),
    );
    let y = b.reg();
    b.fmul(y, e, Operand::Reg(inv));
    let addr_out = b.reg_pair();
    b.imad_wide(addr_out, idx, Operand::Imm(4), dst);
    b.st_global(MemWidth::B32, addr_out, 0, y);
    b.exit();
    b.build()
}

fn main() {
    let kernel = build_softmax();
    println!(
        "softmax kernel: {} instructions, {} regs, {} B shared",
        kernel.instrs().len(),
        kernel.num_regs(),
        kernel.shared_bytes()
    );

    let mut gpu = Gpu::new(GpuConfig::titan_v());
    let src = gpu.alloc((ROWS * COLS * 4) as u64);
    let dst = gpu.alloc((ROWS * COLS * 4) as u64);
    let val = |r: usize, c: usize| ((r * 13 + c * 7) % 23) as f32 / 4.0 - 2.5;
    for r in 0..ROWS {
        for c in 0..COLS {
            gpu.write_u32(src + ((r * COLS + c) * 4) as u64, val(r, c).to_bits());
        }
    }
    let stats = LaunchBuilder::new(kernel)
        .grid(ROWS as u32)
        .block(COLS as u32)
        .param_u64(src)
        .param_u64(dst)
        .launch(&mut gpu);
    println!(
        "{} rows softmaxed in {} cycles (IPC {:.2}, {} barriers)",
        ROWS,
        stats.cycles,
        stats.ipc(),
        stats.sm.barriers
    );

    // CPU reference.
    let mut max_err = 0f32;
    for r in 0..ROWS {
        let xs: Vec<f32> = (0..COLS).map(|c| val(r, c)).collect();
        let m = xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let es: Vec<f32> = xs.iter().map(|x| ((x - m) * LOG2E).exp2()).collect();
        let sum: f32 = es.iter().sum();
        #[allow(clippy::needless_range_loop)]
        for c in 0..COLS {
            let got = f32::from_bits(gpu.read_u32(dst + ((r * COLS + c) * 4) as u64));
            let want = es[c] / sum;
            max_err = max_err.max((got - want).abs());
            assert!(
                (got - want).abs() < 1e-4,
                "row {r} col {c}: got {got}, want {want}"
            );
        }
        // Each row sums to 1.
        let row_sum: f32 = (0..COLS)
            .map(|c| f32::from_bits(gpu.read_u32(dst + ((r * COLS + c) * 4) as u64)))
            .sum();
        assert!((row_sum - 1.0).abs() < 1e-4, "row {r} sums to {row_sum}");
    }
    println!("verified against CPU softmax (max |err| = {max_err:.2e}); every row sums to 1");
}
