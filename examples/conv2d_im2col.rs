//! Domain scenario: 2-D convolution lowered to GEMM (im2col) on the
//! tensor cores — how cuDNN-era deep-learning frameworks actually use the
//! hardware the paper models (§I, §II-B).
//!
//! A convolution layer `output[n][f][y][x] = Σ input[n][c][y+dy][x+dx] ·
//! weight[f][c][dy][dx]` becomes `D = A×B` where A is the im2col patch
//! matrix (rows = output pixels, cols = c·kh·kw) and B is the reshaped
//! filter bank. The GEMM runs in mixed precision on the simulated Titan V
//! and the result is verified against a direct CPU convolution.
//!
//! Run with: `cargo run --release --example conv2d_im2col`

use tcsim::cutlass::wmma_shared_gemm;
use tcsim::f16::F16;
use tcsim::isa::ByteMemory;
use tcsim::sim::{Gpu, GpuConfig, LaunchBuilder};

/// Layer shape: input `c × h × w`, `f` filters of `c × kh × kw`, stride 1,
/// no padding (choosing sizes so the GEMM dimensions are tile-aligned).
struct ConvLayer {
    c: usize,
    h: usize,
    w: usize,
    f: usize,
    kh: usize,
    kw: usize,
}

impl ConvLayer {
    fn out_h(&self) -> usize {
        self.h - self.kh + 1
    }
    fn out_w(&self) -> usize {
        self.w - self.kw + 1
    }
    /// GEMM view: M = output pixels, K = c·kh·kw, N = filters.
    fn gemm_mnk(&self) -> (usize, usize, usize) {
        (
            self.out_h() * self.out_w(),
            self.f,
            self.c * self.kh * self.kw,
        )
    }
}

fn input_value(c: usize, y: usize, x: usize) -> f32 {
    (((c * 31 + y * 7 + x) % 15) as f32 - 7.0) / 4.0
}

fn weight_value(f: usize, c: usize, dy: usize, dx: usize) -> f32 {
    (((f * 13 + c * 5 + dy * 3 + dx) % 9) as f32 - 4.0) / 8.0
}

fn main() {
    // 224-pixel-ish layer scaled down to keep the example quick:
    // 8 channels of 36x36, 64 filters of 3x3 → GEMM 1156x64x72… round to
    // tile-aligned sizes by choosing output 32x32 and K=8·3·3=72→pad to 80.
    let layer = ConvLayer {
        c: 8,
        h: 34,
        w: 34,
        f: 64,
        kh: 3,
        kw: 3,
    };
    let (m, n, k_raw) = layer.gemm_mnk();
    let k = k_raw.div_ceil(16) * 16; // zero-padded reduction
    println!(
        "conv {}x{}x{} * {} filters {}x{} → GEMM {}x{}x{} (K padded from {})",
        layer.c, layer.h, layer.w, layer.f, layer.kh, layer.kw, m, n, k, k_raw
    );
    assert!(m % 32 == 0 && n % 32 == 0, "tile-aligned output");

    // Host-side im2col into the A matrix (f16), filters into B (f16).
    let mut gpu = Gpu::new(GpuConfig::titan_v());
    let pa = gpu.alloc((m * k * 2) as u64);
    let pb = gpu.alloc((k * n * 2) as u64);
    let pc = gpu.alloc((m * n * 4) as u64);
    let pd = gpu.alloc((m * n * 4) as u64);

    for oy in 0..layer.out_h() {
        for ox in 0..layer.out_w() {
            let row = oy * layer.out_w() + ox;
            for c in 0..layer.c {
                for dy in 0..layer.kh {
                    for dx in 0..layer.kw {
                        let col = (c * layer.kh + dy) * layer.kw + dx;
                        let v = F16::from_f32(input_value(c, oy + dy, ox + dx));
                        gpu.write_u16(pa + ((row * k + col) * 2) as u64, v.to_bits());
                    }
                }
            }
        }
    }
    for f in 0..layer.f {
        for c in 0..layer.c {
            for dy in 0..layer.kh {
                for dx in 0..layer.kw {
                    let row = (c * layer.kh + dy) * layer.kw + dx;
                    let v = F16::from_f32(weight_value(f, c, dy, dx));
                    gpu.write_u16(pb + ((row * n + f) * 2) as u64, v.to_bits());
                }
            }
        }
    }

    // Launch the shared-memory WMMA GEMM.
    let stats = LaunchBuilder::new(wmma_shared_gemm(false))
        .grid(((n / 32) as u32, (m / 32) as u32))
        .block(128u32)
        .param_u64(pa)
        .param_u64(pb)
        .param_u64(pc)
        .param_u64(pd)
        .param_u32(n as u32)
        .param_u32(k as u32)
        .launch(&mut gpu);
    let flops = 2.0 * (m * n * k_raw) as f64;
    println!(
        "GEMM: {} cycles, IPC {:.1}, {:.2} TFLOPS (effective, unpadded FLOPs)",
        stats.cycles,
        stats.ipc(),
        stats.tflops(flops)
    );

    // Verify against the direct convolution.
    let mut max_err = 0f32;
    for oy in 0..layer.out_h() {
        for ox in 0..layer.out_w() {
            for f in 0..layer.f {
                let mut want = 0f32;
                for c in 0..layer.c {
                    for dy in 0..layer.kh {
                        for dx in 0..layer.kw {
                            let iv = F16::from_f32(input_value(c, oy + dy, ox + dx)).to_f32();
                            let wv = F16::from_f32(weight_value(f, c, dy, dx)).to_f32();
                            want += iv * wv;
                        }
                    }
                }
                let row = oy * layer.out_w() + ox;
                let got =
                    f32::from_bits(gpu.device_mut().read_u32(pd + ((row * n + f) * 4) as u64));
                max_err = max_err.max((got - want).abs());
                assert!(
                    (got - want).abs() < 0.01,
                    "pixel ({oy},{ox}) filter {f}: got {got}, want {want}"
                );
            }
        }
    }
    println!("direct-convolution check passed (max |err| = {max_err:.2e})");
}
