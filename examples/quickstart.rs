//! Quickstart: the three layers of the library in one file.
//!
//! 1. Execute a single warp-level `wmma.mma` through the tensor-core
//!    functional model (the paper's Fig 3 operation).
//! 2. Build a tiny kernel with the ISA builder and run it on the
//!    simulated GPU.
//! 3. Run a complete tensor-core GEMM and read its statistics.
//!
//! Run with: `cargo run --example quickstart`

use tcsim::core::{mma_reference, Tile};
use tcsim::cutlass::{run_gemm, GemmKernel, GemmProblem};
use tcsim::f16::F16;
use tcsim::isa::{FragmentKind, KernelBuilder, MemWidth, Operand, SpecialReg, WmmaShape, WmmaType};
use tcsim::sim::{Gpu, GpuConfig, LaunchBuilder};

fn main() {
    // --- 1. One 16x16x16 matrix-multiply-accumulate, D = A×B + C. ---
    let shape = WmmaShape::M16N16K16;
    let mut a = Tile::for_fragment(FragmentKind::A, shape, WmmaType::F16);
    let mut b = Tile::for_fragment(FragmentKind::B, shape, WmmaType::F16);
    let mut c = Tile::for_fragment(FragmentKind::C, shape, WmmaType::F32);
    for i in 0..16 {
        a.set_f16(i, i, F16::from_f32(2.0)); // A = 2·I
        for j in 0..16 {
            b.set_f16(i, j, F16::from_f32((i + j) as f32));
            c.set_f32(i, j, 100.0);
        }
    }
    let d = mma_reference(&a, &b, &c, WmmaType::F32);
    println!("D[3][5] = 2·B[3][5] + 100 = {}", d.get_f32(3, 5));
    assert_eq!(d.get_f32(3, 5), 116.0);

    // --- 2. A hand-built kernel on the simulated GPU. ---
    let mut kb = KernelBuilder::new("write_ids");
    let out_param = kb.param_u64("out");
    let base = kb.reg_pair();
    kb.ld_param(MemWidth::B64, base, out_param);
    let tid = kb.reg();
    kb.mov(tid, Operand::Special(SpecialReg::TidX));
    let addr = kb.reg_pair();
    kb.imad_wide(addr, tid, Operand::Imm(4), base);
    kb.st_global(MemWidth::B32, addr, 0, tid);
    kb.exit();
    let kernel = kb.build();

    let mut gpu = Gpu::new(GpuConfig::mini());
    let out = gpu.alloc(64 * 4);
    let stats = LaunchBuilder::new(kernel)
        .grid(1u32)
        .block(64u32)
        .param_u64(out)
        .launch(&mut gpu);
    println!(
        "write_ids: {} warp instructions in {} cycles (IPC {:.2})",
        stats.instructions,
        stats.cycles,
        stats.ipc()
    );
    assert_eq!(gpu.read_u32(out + 4 * 42), 42);

    // --- 3. A tensor-core GEMM with verification. ---
    let run = run_gemm(
        &mut gpu,
        GemmProblem::square(64),
        GemmKernel::WmmaShared,
        true,
    );
    println!(
        "64x64x64 GEMM on tensor cores: {} cycles, max |err| = {:.3e}, {:.3} TFLOPS",
        run.stats.cycles,
        run.max_abs_err.expect("verified"),
        run.tflops()
    );
}
