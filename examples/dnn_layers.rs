//! Domain scenario: the GEMM shapes of a small transformer/MLP forward
//! pass — the deep-learning workloads whose demands motivated tensor
//! cores in the first place (paper §I).
//!
//! Each layer is one `D = A×B + C` (activations × weights + bias
//! broadcast), run in mixed precision on the simulated Titan V with the
//! CUTLASS-style kernel, and compared against the FFMA SGEMM baseline to
//! show the tensor-core speedup on real layer shapes.
//!
//! Run with: `cargo run --release --example dnn_layers`

use tcsim::cutlass::{run_gemm, CutlassConfig, GemmKernel, GemmPrecision, GemmProblem};
use tcsim::sim::{Gpu, GpuConfig};

fn main() {
    // (name, batch·seq, out features, in features) — training-batch
    // shapes; tiny grids cannot fill 80 SMs with 64×64 CTA tiles.
    let layers = [
        ("mlp.fc1", 512usize, 1024usize, 256usize),
        ("mlp.fc2", 512, 256, 1024),
        ("attn.qkv", 256, 384, 128),
        ("attn.out", 256, 128, 384),
        ("classifier", 512, 128, 256),
    ];

    println!("DNN layer GEMMs on the simulated Titan V (mixed precision)\n");
    println!(
        "{:<12} {:>14} {:>12} {:>12} {:>9} {:>8}",
        "layer", "m x n x k", "TC cycles", "SGEMM cyc", "speedup", "TFLOPS"
    );

    let kernel = GemmKernel::Cutlass(CutlassConfig {
        cta_m: 64,
        cta_n: 64,
        warp_m: 32,
        warp_n: 32,
        stages: 2,
    });
    let mut total_tc = 0u64;
    let mut total_fp32 = 0u64;
    for (name, m, n, k) in layers {
        let p = GemmProblem {
            m,
            n,
            k,
            precision: GemmPrecision::MixedF32,
        };
        let mut gpu = Gpu::new(GpuConfig::titan_v());
        let tc = run_gemm(&mut gpu, p, kernel, true);

        let p32 = GemmProblem {
            m,
            n,
            k,
            precision: GemmPrecision::Fp32,
        };
        let mut gpu = Gpu::new(GpuConfig::titan_v());
        let base = run_gemm(&mut gpu, p32, GemmKernel::Sgemm, false);

        total_tc += tc.stats.cycles;
        total_fp32 += base.stats.cycles;
        println!(
            "{:<12} {:>4}x{:<4}x{:<4} {:>12} {:>12} {:>8.1}x {:>8.2}",
            name,
            m,
            n,
            k,
            tc.stats.cycles,
            base.stats.cycles,
            base.stats.cycles as f64 / tc.stats.cycles as f64,
            tc.tflops()
        );
    }
    println!(
        "\nforward pass total: {total_tc} cycles with tensor cores vs {total_fp32} on FP32 cores ({:.1}x)",
        total_fp32 as f64 / total_tc as f64
    );
    println!("(every layer's output verified against the CPU reference)");
}
