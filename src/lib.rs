#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `tcsim` — a cycle-level model of tensor-core-enabled GPUs.
//!
//! This meta-crate re-exports the full public API of the workspace, which
//! reproduces *Modeling Deep Learning Accelerator Enabled GPUs* (Raihan,
//! Goli, Aamodt; ISPASS 2019) in Rust:
//!
//! * [`mod@f16`] — IEEE 754 binary16 arithmetic (the `half` library substrate).
//! * [`isa`] — PTX-subset SIMT ISA, kernel IR, builder and parser.
//! * [`core`] — the tensor-core functional/timing model (the paper's
//!   contribution): fragment mappings, octets, HMMA sets/steps, FEDP
//!   numerics, latency schedules.
//! * [`mem`] — coalescer, L1/L2 caches, DRAM, shared memory.
//! * [`sm`] — streaming-multiprocessor pipeline model.
//! * [`sim`] — full-GPU simulator, CTA scheduler, statistics, configs.
//! * [`trace`] — cycle-level tracing: typed events, Chrome `trace_event`
//!   export, stall attribution and derived metrics.
//! * [`cutlass`] — CUTLASS-like tiled GEMM kernel library.
//! * [`nn`] — DNN inference workloads: layer graph, implicit-GEMM conv
//!   lowering with fused bias/ReLU epilogues, f32 reference executor.
//! * [`hw`] — analytic Titan V hardware surrogate for correlation studies.
//! * [`model`] — static analytical performance model: cost walk, roofline
//!   cycle estimator, closed-form GEMM tile search, validated against the
//!   cycle-level simulator.
//! * [`infer`] — request-stream serving simulator: seeded arrivals,
//!   dynamic batching, KV-cache admission, costed by the cycle-level
//!   transformer encoder block.
//!
//! See `README.md` for a quickstart and `DESIGN.md`/`EXPERIMENTS.md` for
//! the experiment index.

pub use tcsim_core as core;
pub use tcsim_cutlass as cutlass;
pub use tcsim_f16 as f16;
pub use tcsim_hw as hw;
pub use tcsim_infer as infer;
pub use tcsim_isa as isa;
pub use tcsim_mem as mem;
pub use tcsim_model as model;
pub use tcsim_nn as nn;
pub use tcsim_sim as sim;
pub use tcsim_sm as sm;
pub use tcsim_trace as trace;
