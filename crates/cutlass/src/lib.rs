#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! CUTLASS-like tiled GEMM kernel library targeting the simulated WMMA
//! instructions.
//!
//! The paper enabled NVIDIA's CUTLASS template library to run on
//! GPGPU-Sim and validated the tensor-core model with CUTLASS-generated
//! kernels (§V-B). This crate plays the same role for the Rust
//! reproduction: parameterized threadblock/warp-tiled GEMM kernels built
//! on the `wmma.{load,mma,store}` instructions, FFMA/HFMA2 baselines for
//! the tensor-core speedup comparisons of Fig 17, the microbenchmark
//! kernels of §III, and a host-side runner that launches and verifies
//! everything against a CPU reference.

mod host;
mod kernels;
pub mod microbench;
mod problem;

pub use host::{run_gemm, GemmKernel, GemmRun};
pub use kernels::{
    cutlass_gemm, cutlass_gemm_ep, hgemm, igemm_wmma, sgemm, wmma_shared_gemm, wmma_shared_gemm_ep,
    wmma_simple_gemm, wmma_simple_gemm_ep, CutlassConfig, Epilogue,
};
pub use problem::{
    f16_matrix_bytes, f32_matrix_bytes, i32_matrix_bytes, i8_matrix_bytes, operand_value,
    operand_value_i8, reference_gemm, verify, GemmPrecision, GemmProblem,
};
