//! Microbenchmark kernels from §III of the paper: repeated-HMMA warp
//! scaling (Fig 12c) and clock-instrumented `wmma.mma` latency (Fig 6).

use tcsim_isa::{
    CmpOp, DataType, FragmentKind, Instr, Kernel, KernelBuilder, Layout, MemSpace, MemWidth, Op,
    Operand, SpecialReg, WmmaShape, WmmaType,
};

const SHAPE: WmmaShape = WmmaShape::M16N16K16;

/// Repeated `wmma.mma` kernel: every warp loads operand fragments once,
/// executes `iters` MMAs alternating between two independent accumulators
/// (so throughput, not latency, is measured), and stores the elapsed
/// cycles (read via `CS2R SR_CLOCKLO`) to `out[warp_global_index]`.
///
/// Parameters: `src: u64` (a 16×16 f16 operand pad), `out: u64` (u32 per
/// warp). Launch with any number of warps per CTA (Fig 12c varies 1..8).
pub fn repeated_mma(iters: u32) -> Kernel {
    let mut b = KernelBuilder::new("repeated_mma");
    let src_off = b.param_u64("src");
    let out_off = b.param_u64("out");
    let src = b.reg_pair();
    b.ld_param(MemWidth::B64, src, src_off);
    let out = b.reg_pair();
    b.ld_param(MemWidth::B64, out, out_off);

    let fa = b.reg_block(8);
    let fb = b.reg_block(8);
    let fc0 = b.reg_block(8);
    let fc1 = b.reg_block(8);
    for frag in [
        (FragmentKind::A, fa),
        (FragmentKind::B, fb),
        (FragmentKind::C, fc0),
        (FragmentKind::C, fc1),
    ] {
        let ty = if frag.0 == FragmentKind::C {
            WmmaType::F32
        } else {
            WmmaType::F16
        };
        b.wmma_load(
            frag.0,
            SHAPE,
            Layout::Row,
            ty,
            MemSpace::Global,
            frag.1,
            Operand::RegPair(src),
            Operand::Imm(16),
        );
    }

    let t0 = b.reg();
    b.clock(t0);
    let i = b.reg();
    b.mov(i, Operand::Imm(0));
    let top = b.label();
    b.place(top);
    // Two independent accumulator chains keep the tensor-core pair at its
    // initiation interval rather than its latency.
    b.wmma_mma(
        SHAPE,
        Layout::Row,
        Layout::Row,
        WmmaType::F16,
        WmmaType::F32,
        WmmaType::F32,
        fc0,
        fa,
        fb,
        fc0,
    );
    b.wmma_mma(
        SHAPE,
        Layout::Row,
        Layout::Row,
        WmmaType::F16,
        WmmaType::F32,
        WmmaType::F32,
        fc1,
        fa,
        fb,
        fc1,
    );
    b.iadd(i, i, Operand::Imm(2));
    let p = b.pred();
    b.setp(p, CmpOp::Lt, DataType::U32, i, Operand::Imm(iters as i64));
    b.bra_if(p, true, top);
    let t1 = b.reg();
    b.clock(t1);
    let dt = b.reg();
    b.isub(dt, t1, Operand::Reg(t0));

    // out[ctaid.x · warps_per_cta + warpid] ← dt (lane 0's value wins; all
    // lanes store the same thing).
    let warp = b.reg();
    b.mov(warp, Operand::Special(SpecialReg::WarpId));
    let cta = b.reg();
    b.mov(cta, Operand::Special(SpecialReg::CtaIdX));
    let ntid = b.reg();
    b.mov(ntid, Operand::Special(SpecialReg::NTidX));
    let wpc = b.reg();
    b.shr(wpc, ntid, Operand::Imm(5));
    let slot = b.reg();
    b.imad(slot, cta, Operand::Reg(wpc), Operand::Reg(warp));
    let addr = b.reg_pair();
    b.imad_wide(addr, slot, Operand::Imm(4), out);
    b.st_global(MemWidth::B32, addr, 0, dt);
    b.exit();
    b.build()
}

/// Single clocked `wmma.mma`: measures one MMA's issue-to-use latency by
/// reading the clock, executing the MMA, consuming its result (a
/// dependent store) and reading the clock again.
pub fn clocked_mma(fp16: bool) -> Kernel {
    let mut b = KernelBuilder::new("clocked_mma");
    let src_off = b.param_u64("src");
    let out_off = b.param_u64("out");
    let src = b.reg_pair();
    b.ld_param(MemWidth::B64, src, src_off);
    let out = b.reg_pair();
    b.ld_param(MemWidth::B64, out, out_off);
    let (cd_ty, cd_regs) = if fp16 {
        (WmmaType::F16, 4)
    } else {
        (WmmaType::F32, 8)
    };

    let fa = b.reg_block(8);
    let fb = b.reg_block(8);
    let fc = b.reg_block(cd_regs);
    b.wmma_load(
        FragmentKind::A,
        SHAPE,
        Layout::Row,
        WmmaType::F16,
        MemSpace::Global,
        fa,
        Operand::RegPair(src),
        Operand::Imm(16),
    );
    b.wmma_load(
        FragmentKind::B,
        SHAPE,
        Layout::Row,
        WmmaType::F16,
        MemSpace::Global,
        fb,
        Operand::RegPair(src),
        Operand::Imm(16),
    );
    b.wmma_load(
        FragmentKind::C,
        SHAPE,
        Layout::Row,
        cd_ty,
        MemSpace::Global,
        fc,
        Operand::RegPair(src),
        Operand::Imm(16),
    );

    // Drain the fragment loads before starting the measurement (the
    // paper's patched-SASS microbenchmarks measure HMMA alone, Fig 6):
    // dependent reads stall until every fragment is written back.
    let probe = b.reg();
    b.iadd(probe, fa, Operand::Imm(0));
    b.iadd(probe, fb, Operand::Imm(0));
    b.iadd(probe, fc, Operand::Imm(0));
    let t0 = b.reg();
    b.clock(t0);
    b.wmma_mma(
        SHAPE,
        Layout::Row,
        Layout::Row,
        WmmaType::F16,
        cd_ty,
        cd_ty,
        fc,
        fa,
        fb,
        fc,
    );
    // Dependent use forces the measurement to include completion.
    b.iadd(probe, fc, Operand::Imm(0));
    let t1 = b.reg();
    b.clock(t1);
    let dt = b.reg();
    b.isub(dt, t1, Operand::Reg(t0));
    b.st_global(MemWidth::B32, out, 0, dt);
    b.exit();
    b.build()
}

/// Dependent global-load chain ("pointer chase"): each iteration loads a
/// 32-bit word whose value is the element index of the next load, so no
/// load can begin before the previous one completes. This is the classic
/// memory-latency microbenchmark of the paper's §III methodology: wall
/// time is dominated by the round-trip latency of whichever level of the
/// hierarchy holds the working set, and every warp spends hundreds of
/// cycles blocked per executed instruction — the workload shape where an
/// event-driven scheduler core pays off most.
///
/// Every warp chases the same chain but enters it at a different element,
/// chosen so warp starts are evenly spaced along the chase *cycle*: a
/// stride-`s` chain over a power-of-two footprint visits element
/// `(s·p) mod words` at position `p`, so `spread_elems = s · (words /
/// total_warps) mod words` puts the warps at equidistant cycle positions
/// and their trails stay disjoint until they meet the next warp's start.
/// Under a multi-warp launch the warps drift out of phase and the machine
/// always has *some* warp waking while the rest stay blocked.
///
/// The chain holds absolute 64-bit device addresses (`p = *(void **)p`,
/// exactly the CUDA original's chase loop), so each hop is a single
/// dependent `LD.E.64`. The body is unrolled `16×` so loop-control
/// instructions do not dilute the blocked-on-memory duty cycle; `iters`
/// must be a multiple of 16. The body is guarded `@p0` with
/// `p0 = (laneid == 0)` — a latency chase needs exactly one lane in
/// flight, matching the single-thread chase of the original.
///
/// `elems` is the chain length and must be a power of two (start offsets
/// reduce with a mask). Parameters: `buf: u64` (a chain of u64 absolute
/// addresses prepared by the host, see [`chase_chain`]), `out: u64` (one
/// u64 per warp; each warp stores its final pointer so the chain cannot
/// be dead-code-eliminated).
pub fn pointer_chase(iters: u32, elems: usize, spread_elems: u32) -> Kernel {
    const UNROLL: u32 = 16;
    assert!(
        elems.is_power_of_two(),
        "chain length must be a power of two"
    );
    assert!(
        iters.is_multiple_of(UNROLL),
        "iters must be a multiple of {UNROLL}"
    );
    let mut b = KernelBuilder::new("pointer_chase");
    let buf_off = b.param_u64("buf");
    let out_off = b.param_u64("out");
    let buf = b.reg_pair();
    b.ld_param(MemWidth::B64, buf, buf_off);
    let out = b.reg_pair();
    b.ld_param(MemWidth::B64, out, out_off);

    // Global warp index: ctaid.x · (ntid.x / 32) + warpid.
    let warp = b.reg();
    b.mov(warp, Operand::Special(SpecialReg::WarpId));
    let cta = b.reg();
    b.mov(cta, Operand::Special(SpecialReg::CtaIdX));
    let ntid = b.reg();
    b.mov(ntid, Operand::Special(SpecialReg::NTidX));
    let wpc = b.reg();
    b.shr(wpc, ntid, Operand::Imm(5));
    let gw = b.reg();
    b.imad(gw, cta, Operand::Reg(wpc), Operand::Reg(warp));

    // Start element: (gw · spread) mod elems, then an absolute pointer.
    let off = b.reg();
    b.imul(off, gw, Operand::Imm(spread_elems as i64));
    b.and(off, off, Operand::Imm(elems as i64 - 1));
    let ptr = b.reg_pair();
    b.imad_wide(ptr, off, Operand::Imm(8), buf);

    // Chase with a single lane; loop control stays warp-uniform.
    let lane = b.reg();
    b.mov(lane, Operand::Special(SpecialReg::LaneId));
    let l0 = b.pred();
    b.setp(l0, CmpOp::Eq, DataType::U32, lane, Operand::Imm(0));

    let i = b.reg();
    b.mov(i, Operand::Imm(0));
    let top = b.label();
    b.place(top);
    for _ in 0..UNROLL {
        b.emit(
            Instr::new(Op::Ld {
                space: MemSpace::Global,
                width: MemWidth::B64,
            })
            .with_dst(ptr)
            .with_srcs(vec![Operand::RegPair(ptr), Operand::Imm(0)])
            .with_guard(l0, true),
        );
    }
    b.iadd(i, i, Operand::Imm(UNROLL as i64));
    let p = b.pred();
    b.setp(p, CmpOp::Lt, DataType::U32, i, Operand::Imm(iters as i64));
    b.bra_if(p, true, top);
    let slot = b.reg_pair();
    b.emit(
        Instr::new(Op::IMadWide)
            .with_dst(slot)
            .with_srcs(vec![
                Operand::Reg(gw),
                Operand::Imm(8),
                Operand::RegPair(out),
            ])
            .with_guard(l0, true),
    );
    b.emit(
        Instr::new(Op::St {
            space: MemSpace::Global,
            width: MemWidth::B64,
        })
        .with_srcs(vec![
            Operand::RegPair(slot),
            Operand::Imm(0),
            Operand::Reg(ptr),
        ])
        .with_guard(l0, true),
    );
    b.exit();
    b.build()
}

/// Host-side chain for [`pointer_chase`]: `elems` u64 elements where
/// element `i` holds the absolute device address `base + 8·successor`,
/// visiting every element in a fixed stride order (position `p` of the
/// cycle is element `(p · stride_elems) mod elems`, which is how
/// [`pointer_chase`] spaces warp entry points). `stride_elems` should
/// span at least a cache line (16 elements) so every hop leaves the
/// current sector; keep it coprime to `elems` (odd, for a power-of-two
/// chain) so the cycle covers every element.
pub fn chase_chain(elems: usize, stride_elems: usize, base: u64) -> Vec<u64> {
    assert!(elems > 0);
    let mut chain = vec![0u64; elems];
    let mut idx = 0usize;
    for _ in 0..elems {
        let next = (idx + stride_elems) % elems;
        chain[idx] = base + 8 * next as u64;
        idx = next;
    }
    chain
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_build_with_expected_resources() {
        let k = repeated_mma(64);
        assert!(k.num_regs() <= 80, "{} regs", k.num_regs());
        assert_eq!(k.params().len(), 2);
        let k = clocked_mma(false);
        assert!(k.num_regs() <= 64);
        let k = clocked_mma(true);
        assert!(k.num_regs() <= 64);
        let k = pointer_chase(112, 1 << 10, 33);
        assert!(k.num_regs() <= 48, "{} regs", k.num_regs());
        assert_eq!(k.params().len(), 2);
    }

    #[test]
    fn chase_chain_is_a_single_cycle() {
        // Coprime stride: the chain visits every element exactly once
        // before returning to the origin.
        let base = 0x8000;
        let chain = chase_chain(8, 3, base);
        let mut seen = [false; 8];
        let mut idx = 0usize;
        for _ in 0..8 {
            assert!(!seen[idx], "revisited {idx} early");
            seen[idx] = true;
            idx = ((chain[idx] - base) / 8) as usize;
        }
        assert_eq!(idx, 0, "chain must close");
    }
}
