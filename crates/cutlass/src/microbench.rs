//! Microbenchmark kernels from §III of the paper: repeated-HMMA warp
//! scaling (Fig 12c) and clock-instrumented `wmma.mma` latency (Fig 6).

use tcsim_isa::{
    CmpOp, DataType, FragmentKind, Kernel, KernelBuilder, Layout, MemSpace, MemWidth, Operand,
    SpecialReg, WmmaShape, WmmaType,
};

const SHAPE: WmmaShape = WmmaShape::M16N16K16;

/// Repeated `wmma.mma` kernel: every warp loads operand fragments once,
/// executes `iters` MMAs alternating between two independent accumulators
/// (so throughput, not latency, is measured), and stores the elapsed
/// cycles (read via `CS2R SR_CLOCKLO`) to `out[warp_global_index]`.
///
/// Parameters: `src: u64` (a 16×16 f16 operand pad), `out: u64` (u32 per
/// warp). Launch with any number of warps per CTA (Fig 12c varies 1..8).
pub fn repeated_mma(iters: u32) -> Kernel {
    let mut b = KernelBuilder::new("repeated_mma");
    let src_off = b.param_u64("src");
    let out_off = b.param_u64("out");
    let src = b.reg_pair();
    b.ld_param(MemWidth::B64, src, src_off);
    let out = b.reg_pair();
    b.ld_param(MemWidth::B64, out, out_off);

    let fa = b.reg_block(8);
    let fb = b.reg_block(8);
    let fc0 = b.reg_block(8);
    let fc1 = b.reg_block(8);
    for frag in [
        (FragmentKind::A, fa),
        (FragmentKind::B, fb),
        (FragmentKind::C, fc0),
        (FragmentKind::C, fc1),
    ] {
        let ty = if frag.0 == FragmentKind::C { WmmaType::F32 } else { WmmaType::F16 };
        b.wmma_load(
            frag.0,
            SHAPE,
            Layout::Row,
            ty,
            MemSpace::Global,
            frag.1,
            Operand::RegPair(src),
            Operand::Imm(16),
        );
    }

    let t0 = b.reg();
    b.clock(t0);
    let i = b.reg();
    b.mov(i, Operand::Imm(0));
    let top = b.label();
    b.place(top);
    // Two independent accumulator chains keep the tensor-core pair at its
    // initiation interval rather than its latency.
    b.wmma_mma(SHAPE, Layout::Row, Layout::Row, WmmaType::F16, WmmaType::F32, WmmaType::F32, fc0, fa, fb, fc0);
    b.wmma_mma(SHAPE, Layout::Row, Layout::Row, WmmaType::F16, WmmaType::F32, WmmaType::F32, fc1, fa, fb, fc1);
    b.iadd(i, i, Operand::Imm(2));
    let p = b.pred();
    b.setp(p, CmpOp::Lt, DataType::U32, i, Operand::Imm(iters as i64));
    b.bra_if(p, true, top);
    let t1 = b.reg();
    b.clock(t1);
    let dt = b.reg();
    b.isub(dt, t1, Operand::Reg(t0));

    // out[ctaid.x · warps_per_cta + warpid] ← dt (lane 0's value wins; all
    // lanes store the same thing).
    let warp = b.reg();
    b.mov(warp, Operand::Special(SpecialReg::WarpId));
    let cta = b.reg();
    b.mov(cta, Operand::Special(SpecialReg::CtaIdX));
    let ntid = b.reg();
    b.mov(ntid, Operand::Special(SpecialReg::NTidX));
    let wpc = b.reg();
    b.shr(wpc, ntid, Operand::Imm(5));
    let slot = b.reg();
    b.imad(slot, cta, Operand::Reg(wpc), Operand::Reg(warp));
    let addr = b.reg_pair();
    b.imad_wide(addr, slot, Operand::Imm(4), out);
    b.st_global(MemWidth::B32, addr, 0, dt);
    b.exit();
    b.build()
}

/// Single clocked `wmma.mma`: measures one MMA's issue-to-use latency by
/// reading the clock, executing the MMA, consuming its result (a
/// dependent store) and reading the clock again.
pub fn clocked_mma(fp16: bool) -> Kernel {
    let mut b = KernelBuilder::new("clocked_mma");
    let src_off = b.param_u64("src");
    let out_off = b.param_u64("out");
    let src = b.reg_pair();
    b.ld_param(MemWidth::B64, src, src_off);
    let out = b.reg_pair();
    b.ld_param(MemWidth::B64, out, out_off);
    let (cd_ty, cd_regs) = if fp16 { (WmmaType::F16, 4) } else { (WmmaType::F32, 8) };

    let fa = b.reg_block(8);
    let fb = b.reg_block(8);
    let fc = b.reg_block(cd_regs);
    b.wmma_load(FragmentKind::A, SHAPE, Layout::Row, WmmaType::F16, MemSpace::Global, fa, Operand::RegPair(src), Operand::Imm(16));
    b.wmma_load(FragmentKind::B, SHAPE, Layout::Row, WmmaType::F16, MemSpace::Global, fb, Operand::RegPair(src), Operand::Imm(16));
    b.wmma_load(FragmentKind::C, SHAPE, Layout::Row, cd_ty, MemSpace::Global, fc, Operand::RegPair(src), Operand::Imm(16));

    // Drain the fragment loads before starting the measurement (the
    // paper's patched-SASS microbenchmarks measure HMMA alone, Fig 6):
    // dependent reads stall until every fragment is written back.
    let probe = b.reg();
    b.iadd(probe, fa, Operand::Imm(0));
    b.iadd(probe, fb, Operand::Imm(0));
    b.iadd(probe, fc, Operand::Imm(0));
    let t0 = b.reg();
    b.clock(t0);
    b.wmma_mma(SHAPE, Layout::Row, Layout::Row, WmmaType::F16, cd_ty, cd_ty, fc, fa, fb, fc);
    // Dependent use forces the measurement to include completion.
    b.iadd(probe, fc, Operand::Imm(0));
    let t1 = b.reg();
    b.clock(t1);
    let dt = b.reg();
    b.isub(dt, t1, Operand::Reg(t0));
    b.st_global(MemWidth::B32, out, 0, dt);
    b.exit();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_build_with_expected_resources() {
        let k = repeated_mma(64);
        assert!(k.num_regs() <= 80, "{} regs", k.num_regs());
        assert_eq!(k.params().len(), 2);
        let k = clocked_mma(false);
        assert!(k.num_regs() <= 64);
        let k = clocked_mma(true);
        assert!(k.num_regs() <= 64);
    }
}
