//! Host-side GEMM runner: allocates device matrices, launches a kernel
//! variant on the simulated GPU, and verifies against the CPU reference.

use crate::kernels::{
    cutlass_gemm, hgemm, igemm_wmma, sgemm, wmma_shared_gemm, wmma_simple_gemm, CutlassConfig,
};
use crate::problem::{
    f16_matrix_bytes, f32_matrix_bytes, i32_matrix_bytes, i8_matrix_bytes, reference_gemm, verify,
    GemmPrecision, GemmProblem,
};
use tcsim_f16::F16;
use tcsim_sim::{Gpu, HasLaunchStats, LaunchBuilder, LaunchStats};

/// Which kernel implementation to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GemmKernel {
    /// One warp per 16×16 tile, global-memory operands.
    WmmaSimple,
    /// Four-warp CTAs with shared-memory staging.
    WmmaShared,
    /// CUTLASS-style threadblock/warp tiling.
    Cutlass(CutlassConfig),
    /// FFMA FP32 baseline (no tensor cores).
    Sgemm,
    /// HFMA2 FP16 baseline (no tensor cores).
    Hgemm,
    /// INT8 tensor-core kernel (Turing inference mode).
    IgemmWmma,
}

impl GemmKernel {
    /// Whether this kernel uses the tensor cores.
    pub fn uses_tensor_cores(&self) -> bool {
        !matches!(self, GemmKernel::Sgemm | GemmKernel::Hgemm)
    }

    /// Smallest (m, n) granularity the kernel supports.
    pub fn granularity_mn(&self) -> (usize, usize) {
        match self {
            GemmKernel::WmmaSimple | GemmKernel::Sgemm | GemmKernel::IgemmWmma => (16, 16),
            GemmKernel::WmmaShared => (32, 32),
            GemmKernel::Hgemm => (16, 32),
            GemmKernel::Cutlass(cfg) => (cfg.cta_m, cfg.cta_n),
        }
    }

    /// Largest single-dimension granularity (coarse compatibility check).
    pub fn granularity(&self) -> usize {
        let (m, n) = self.granularity_mn();
        m.max(n)
    }
}

/// Result of one device GEMM: simulator statistics plus verification.
#[derive(Clone, Debug)]
pub struct GemmRun {
    /// The problem executed.
    pub problem: GemmProblem,
    /// Simulator launch statistics.
    pub stats: LaunchStats,
    /// Max |device − reference| over all output elements (present when
    /// verification ran).
    pub max_abs_err: Option<f32>,
}

impl GemmRun {
    /// Achieved TFLOPS.
    pub fn tflops(&self) -> f64 {
        self.stats.tflops(self.problem.flops())
    }
}

impl HasLaunchStats for GemmRun {
    fn launch_stats(&self) -> &LaunchStats {
        &self.stats
    }
}

/// Runs `D = A×B + C` on the simulated GPU with the chosen kernel and
/// (optionally) verifies the result against the CPU reference.
///
/// # Panics
///
/// Panics if the problem shape is not a multiple of the kernel's
/// granularity, or if verification fails.
pub fn run_gemm(gpu: &mut Gpu, problem: GemmProblem, kernel: GemmKernel, check: bool) -> GemmRun {
    let (m, n, k) = (problem.m, problem.n, problem.k);
    let (gm, gn) = kernel.granularity_mn();
    assert!(
        m % gm == 0 && n % gn == 0 && k % 16 == 0,
        "problem {m}x{n}x{k} not a multiple of kernel granularity {gm}x{gn}"
    );

    let fp16_out = problem.precision == GemmPrecision::Fp16;
    let int8 = problem.precision == GemmPrecision::Int8;
    match (&kernel, problem.precision) {
        (GemmKernel::Sgemm, GemmPrecision::Fp32) => {}
        (GemmKernel::Sgemm, _) => panic!("sgemm requires Fp32 precision"),
        (GemmKernel::Hgemm, GemmPrecision::Fp16) => {}
        (GemmKernel::Hgemm, _) => panic!("hgemm requires Fp16 precision"),
        (GemmKernel::Cutlass(_), GemmPrecision::MixedF32) => {}
        (GemmKernel::Cutlass(_), _) => panic!("the cutlass kernel accumulates in FP32"),
        (GemmKernel::IgemmWmma, GemmPrecision::Int8) => {
            assert!(
                !gpu.config().sm.volta_tensor,
                "the INT8 mode needs a Turing GPU (Volta tensor cores are FP16-only)"
            );
        }
        (GemmKernel::IgemmWmma, _) => panic!("igemm requires Int8 precision"),
        (_, GemmPrecision::Fp32) => panic!("wmma kernels take FP16 operands"),
        (_, GemmPrecision::Int8) => panic!("only igemm supports Int8"),
        _ => {}
    }

    // Operand setup.
    let (seed_a, seed_b, seed_c) = (0xA, 0xB, 0xC);
    let (a_bytes, b_bytes) = match problem.precision {
        GemmPrecision::Fp32 => (
            f32_matrix_bytes(seed_a, m, k),
            f32_matrix_bytes(seed_b, k, n),
        ),
        GemmPrecision::Int8 => (i8_matrix_bytes(seed_a, m, k), i8_matrix_bytes(seed_b, k, n)),
        _ => (
            f16_matrix_bytes(seed_a, m, k),
            f16_matrix_bytes(seed_b, k, n),
        ),
    };
    let c_bytes = match problem.precision {
        GemmPrecision::MixedF32 | GemmPrecision::Fp32 => f32_matrix_bytes(seed_c, m, n),
        GemmPrecision::Fp16 => f16_matrix_bytes(seed_c, m, n),
        GemmPrecision::Int8 => i32_matrix_bytes(seed_c, m, n),
    };
    let d_elem = if fp16_out { 2 } else { 4 };

    let pa = gpu.alloc(a_bytes.len() as u64);
    let pb = gpu.alloc(b_bytes.len() as u64);
    let pc = gpu.alloc(c_bytes.len() as u64);
    let pd = gpu.alloc((m * n * d_elem) as u64);
    gpu.memcpy_h2d(pa, &a_bytes);
    gpu.memcpy_h2d(pb, &b_bytes);
    gpu.memcpy_h2d(pc, &c_bytes);

    let builder = match kernel {
        GemmKernel::WmmaSimple => LaunchBuilder::new(wmma_simple_gemm(fp16_out))
            .grid(((n / 16) as u32, (m / 16) as u32))
            .block(32u32),
        GemmKernel::WmmaShared => LaunchBuilder::new(wmma_shared_gemm(fp16_out))
            .grid(((n / 32) as u32, (m / 32) as u32))
            .block(128u32),
        GemmKernel::Cutlass(cfg) => LaunchBuilder::new(cutlass_gemm(cfg))
            .grid(((n / cfg.cta_n) as u32, (m / cfg.cta_m) as u32))
            .block(cfg.threads() as u32),
        GemmKernel::Sgemm => LaunchBuilder::new(sgemm())
            .grid(((n / 16) as u32, (m / 16) as u32))
            .block((16u32, 16u32)),
        GemmKernel::Hgemm => LaunchBuilder::new(hgemm())
            .grid(((n / 32) as u32, (m / 16) as u32))
            .block((16u32, 16u32)),
        GemmKernel::IgemmWmma => LaunchBuilder::new(igemm_wmma())
            .grid(((n / 16) as u32, (m / 16) as u32))
            .block(32u32),
    };

    let stats = builder
        .param_u64(pa)
        .param_u64(pb)
        .param_u64(pc)
        .param_u64(pd)
        .param_u32(n as u32)
        .param_u32(k as u32)
        .launch(gpu);

    let max_abs_err = if check {
        let reference = reference_gemm(&problem, seed_a, seed_b, seed_c);
        let raw = gpu.memcpy_d2h(pd, m * n * d_elem);
        let got: Vec<f32> = if fp16_out {
            raw.chunks_exact(2)
                .map(|b| F16::from_bits(u16::from_le_bytes([b[0], b[1]])).to_f32())
                .collect()
        } else if int8 {
            raw.chunks_exact(4)
                .map(|b| i32::from_le_bytes([b[0], b[1], b[2], b[3]]) as f32)
                .collect()
        } else {
            raw.chunks_exact(4)
                .map(|b| f32::from_bits(u32::from_le_bytes([b[0], b[1], b[2], b[3]])))
                .collect()
        };
        Some(verify(&problem, &got, &reference))
    } else {
        None
    };

    GemmRun {
        problem,
        stats,
        max_abs_err,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsim_sim::GpuConfig;

    #[test]
    fn wmma_simple_gemm_verifies_32() {
        let mut gpu = Gpu::new(GpuConfig::mini());
        let run = run_gemm(
            &mut gpu,
            GemmProblem::square(32),
            GemmKernel::WmmaSimple,
            true,
        );
        assert!(run.max_abs_err.unwrap() < 0.01);
        assert!(run.stats.sm.issued_by_unit[4] > 0, "tensor unit used");
    }

    #[test]
    fn wmma_shared_gemm_verifies_64() {
        let mut gpu = Gpu::new(GpuConfig::mini());
        let run = run_gemm(
            &mut gpu,
            GemmProblem::square(64),
            GemmKernel::WmmaShared,
            true,
        );
        assert!(run.max_abs_err.unwrap() < 0.01);
        assert!(run.stats.sm.barriers > 0, "shared staging uses barriers");
    }

    #[test]
    fn cutlass_gemm_verifies_64() {
        let mut gpu = Gpu::new(GpuConfig::mini());
        let run = run_gemm(
            &mut gpu,
            GemmProblem::square(64),
            GemmKernel::Cutlass(CutlassConfig::default_64x64()),
            true,
        );
        assert!(run.max_abs_err.unwrap() < 0.01);
    }

    #[test]
    fn sgemm_baseline_verifies() {
        let mut gpu = Gpu::new(GpuConfig::mini());
        let p = GemmProblem {
            precision: GemmPrecision::Fp32,
            ..GemmProblem::square(32)
        };
        let run = run_gemm(&mut gpu, p, GemmKernel::Sgemm, true);
        assert!(run.max_abs_err.unwrap() < 0.01);
        assert_eq!(run.stats.sm.issued_by_unit[4], 0, "no tensor instructions");
    }

    #[test]
    fn hgemm_baseline_verifies() {
        let mut gpu = Gpu::new(GpuConfig::mini());
        let p = GemmProblem {
            precision: GemmPrecision::Fp16,
            ..GemmProblem::square(32)
        };
        let run = run_gemm(&mut gpu, p, GemmKernel::Hgemm, true);
        assert!(run.max_abs_err.unwrap() < 1.0);
    }

    #[test]
    fn fp16_wmma_output_verifies() {
        let mut gpu = Gpu::new(GpuConfig::mini());
        let p = GemmProblem {
            precision: GemmPrecision::Fp16,
            ..GemmProblem::square(32)
        };
        let run = run_gemm(&mut gpu, p, GemmKernel::WmmaSimple, true);
        assert!(run.max_abs_err.is_some());
    }

    #[test]
    fn rectangular_problem_runs() {
        let mut gpu = Gpu::new(GpuConfig::mini());
        let p = GemmProblem {
            m: 32,
            n: 64,
            k: 48,
            precision: GemmPrecision::MixedF32,
        };
        let run = run_gemm(&mut gpu, p, GemmKernel::WmmaSimple, true);
        assert!(run.max_abs_err.unwrap() < 0.01);
    }

    #[test]
    fn fused_bias_relu_epilogues_verify() {
        // relu(A×B + bias) in one launch, for all three WMMA kernels: the
        // `c` parameter carries a length-n bias vector instead of an m×n
        // matrix, broadcast over rows by the stride-0 C-fragment load.
        use crate::kernels::{cutlass_gemm_ep, wmma_shared_gemm_ep, wmma_simple_gemm_ep, Epilogue};
        use crate::problem::operand_value;

        let (m, n, k) = (64usize, 64usize, 32usize);
        let (seed_a, seed_b, seed_bias) = (0xA, 0xB, 0xC);
        let reference: Vec<f32> = {
            let mut d = vec![0f32; m * n];
            for r in 0..m {
                for c in 0..n {
                    let mut acc = operand_value(seed_bias, c);
                    for i in 0..k {
                        acc += operand_value(seed_a, r * k + i) * operand_value(seed_b, i * n + c);
                    }
                    d[r * n + c] = acc.max(0.0);
                }
            }
            d
        };
        let cfg = CutlassConfig::default_64x64();
        let kernels = [
            (
                wmma_simple_gemm_ep(false, Epilogue::BiasRelu),
                (n / 16, m / 16),
                32usize,
            ),
            (
                wmma_shared_gemm_ep(false, Epilogue::BiasRelu),
                (n / 32, m / 32),
                128,
            ),
            (
                cutlass_gemm_ep(cfg, Epilogue::BiasRelu),
                (n / cfg.cta_n, m / cfg.cta_m),
                cfg.threads(),
            ),
        ];
        for (kernel, grid, block) in kernels {
            let name = kernel.name().to_string();
            let mut gpu = Gpu::new(GpuConfig::mini());
            let pa = gpu.alloc((m * k * 2) as u64);
            let pb = gpu.alloc((k * n * 2) as u64);
            let pbias = gpu.alloc((n * 4) as u64);
            let pd = gpu.alloc((m * n * 4) as u64);
            gpu.memcpy_h2d(pa, &f16_matrix_bytes(seed_a, m, k));
            gpu.memcpy_h2d(pb, &f16_matrix_bytes(seed_b, k, n));
            let bias: Vec<u8> = (0..n)
                .flat_map(|j| operand_value(seed_bias, j).to_le_bytes())
                .collect();
            gpu.memcpy_h2d(pbias, &bias);
            LaunchBuilder::new(kernel)
                .grid((grid.0 as u32, grid.1 as u32))
                .block(block as u32)
                .param_u64(pa)
                .param_u64(pb)
                .param_u64(pbias)
                .param_u64(pd)
                .param_u32(n as u32)
                .param_u32(k as u32)
                .launch(&mut gpu);
            let raw = gpu.memcpy_d2h(pd, m * n * 4);
            let tol = 1e-3 + k as f32 * 1e-4;
            for (i, chunk) in raw.chunks_exact(4).enumerate() {
                let got =
                    f32::from_bits(u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
                assert!(
                    (got - reference[i]).abs() <= tol,
                    "{name}: elem {i}: got {got}, want {}",
                    reference[i]
                );
                assert!(got >= 0.0, "{name}: relu output must be non-negative");
            }
        }
    }

    #[test]
    fn tensor_kernel_beats_sgemm_in_cycles() {
        // The headline claim (Fig 17): tensor cores give a large speedup
        // over the FFMA SGEMM baseline at the same problem size.
        let mut gpu = Gpu::new(GpuConfig::mini());
        let tc = run_gemm(
            &mut gpu,
            GemmProblem::square(64),
            GemmKernel::WmmaShared,
            false,
        );
        let p32 = GemmProblem {
            precision: GemmPrecision::Fp32,
            ..GemmProblem::square(64)
        };
        let base = run_gemm(&mut gpu, p32, GemmKernel::Sgemm, false);
        assert!(
            tc.stats.cycles * 2 < base.stats.cycles,
            "tensor {} vs sgemm {} cycles",
            tc.stats.cycles,
            base.stats.cycles
        );
    }
}
