//! GEMM kernel generators.
//!
//! These play the role of the CUTLASS template library in the paper
//! (§V-B): parameterized tiled matrix-multiply kernels emitted as
//! `tcsim-isa` IR, from a naive one-warp-per-tile WMMA kernel up to a
//! CUTLASS-style threadblock/warp-tiled kernel with double-buffered
//! shared-memory staging, plus the FFMA/HFMA2 baselines used by the
//! paper's Fig 17 comparison.
//!
//! All kernels compute `D = A×B + C` over row-major matrices with the
//! parameter convention:
//!
//! `a, b, c, d : u64` (device pointers), `n, k : u32` (leading
//! dimensions; `m` is implied by the grid).

use tcsim_isa::{
    CmpOp, DataType, FragmentKind, Kernel, KernelBuilder, Layout, MemSpace, MemWidth, Operand,
    PredReg, Reg, SpecialReg, WmmaShape, WmmaType,
};

const SHAPE: WmmaShape = WmmaShape::M16N16K16;

/// Fused epilogue applied to the accumulator tile in-register, before the
/// `wmma.store` — the role of CUTLASS's `LinearCombination`/activation
/// epilogue functors. With an epilogue a DNN layer (GEMM + bias + ReLU) is
/// **one** kernel launch instead of three.
///
/// Epilogues are supported on the FP32-accumulator kernels only (the
/// mixed-precision configuration DNN inference uses).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Epilogue {
    /// Plain `D = A×B + C` (C is an m×n matrix).
    #[default]
    None,
    /// `D = A×B + bias`: the `c` parameter is reinterpreted as a length-n
    /// FP32 bias row vector, broadcast over rows via a stride-0 C-fragment
    /// load (no m×n C matrix is materialized).
    Bias,
    /// `D = relu(A×B + C)`.
    Relu,
    /// `D = relu(A×B + bias)` — the fused Conv/Linear+Bias+ReLU layer.
    BiasRelu,
}

impl Epilogue {
    /// Whether the `c` operand is a broadcast bias vector.
    pub fn has_bias(self) -> bool {
        matches!(self, Epilogue::Bias | Epilogue::BiasRelu)
    }

    /// Whether a ReLU is applied to the accumulator before the store.
    pub fn has_relu(self) -> bool {
        matches!(self, Epilogue::Relu | Epilogue::BiasRelu)
    }

    fn suffix(self) -> &'static str {
        match self {
            Epilogue::None => "",
            Epilogue::Bias => "_bias",
            Epilogue::Relu => "_relu",
            Epilogue::BiasRelu => "_bias_relu",
        }
    }
}

/// In-register ReLU over a `regs`-wide FP32 accumulator fragment:
/// `x = x > 0 ? x : 0` per element via `setp`/`selp` (the ISA has no
/// float-max ALU op).
fn emit_relu(b: &mut KernelBuilder, p: PredReg, frag: Reg, regs: usize) {
    for i in 0..regs {
        let r = Reg(frag.0 + i as u16);
        b.setp(p, CmpOp::Gt, DataType::F32, r, Operand::fimm(0.0));
        b.selp(r, p, Operand::Reg(r), Operand::fimm(0.0));
    }
}

fn declare_gemm_params(b: &mut KernelBuilder) -> (Reg, Reg, Reg, Reg, Reg, Reg) {
    let pa_off = b.param_u64("a");
    let pb_off = b.param_u64("b");
    let pc_off = b.param_u64("c");
    let pd_off = b.param_u64("d");
    let n_off = b.param_u32("n");
    let k_off = b.param_u32("k");
    let pa = b.reg_pair();
    b.ld_param(MemWidth::B64, pa, pa_off);
    let pb = b.reg_pair();
    b.ld_param(MemWidth::B64, pb, pb_off);
    let pc = b.reg_pair();
    b.ld_param(MemWidth::B64, pc, pc_off);
    let pd = b.reg_pair();
    b.ld_param(MemWidth::B64, pd, pd_off);
    let n = b.reg();
    b.ld_param(MemWidth::B32, n, n_off);
    let k = b.reg();
    b.ld_param(MemWidth::B32, k, k_off);
    (pa, pb, pc, pd, n, k)
}

/// The simplest tensor-core GEMM: one warp per CTA computing one 16×16
/// output tile with operands loaded straight from global memory (the
/// "without shared memory" configuration of Fig 16).
///
/// Launch with `grid = (n/16, m/16)`, `block = 32`.
pub fn wmma_simple_gemm(fp16_output: bool) -> Kernel {
    wmma_simple_gemm_ep(fp16_output, Epilogue::None)
}

/// [`wmma_simple_gemm`] with a fused [`Epilogue`].
///
/// # Panics
///
/// Panics if an epilogue is requested with FP16 output (epilogues operate
/// on the FP32 accumulator fragment).
pub fn wmma_simple_gemm_ep(fp16_output: bool, ep: Epilogue) -> Kernel {
    assert!(
        ep == Epilogue::None || !fp16_output,
        "fused epilogues require the FP32 accumulator path"
    );
    let name = if fp16_output {
        "wmma_simple_hgemm".to_string()
    } else {
        format!("wmma_simple_gemm{}", ep.suffix())
    };
    let mut b = KernelBuilder::new(name);
    let (pa, pb, pc, pd, n, k) = declare_gemm_params(&mut b);
    let (cd_ty, cd_bytes, cd_regs) = if fp16_output {
        (WmmaType::F16, 2i64, 4)
    } else {
        (WmmaType::F32, 4i64, 8)
    };

    let tile_n = b.reg();
    b.mov(tile_n, Operand::Special(SpecialReg::CtaIdX));
    let tile_m = b.reg();
    b.mov(tile_m, Operand::Special(SpecialReg::CtaIdY));

    // row0 = 16·tile_m, col0 = 16·tile_n.
    let row0 = b.reg();
    b.shl(row0, tile_m, Operand::Imm(4));
    let col0 = b.reg();
    b.shl(col0, tile_n, Operand::Imm(4));

    // A pointer walks row0's row: a_ptr = pa + row0·k·2.
    let t = b.reg();
    b.imul(t, row0, Operand::Reg(k));
    let a_ptr = b.reg_pair();
    b.imad_wide(a_ptr, t, Operand::Imm(2), pa);
    // B pointer walks col0's column: b_ptr = pb + col0·2.
    let b_ptr = b.reg_pair();
    b.imad_wide(b_ptr, col0, Operand::Imm(2), pb);
    // C/D tile addresses: (row0·n + col0)·elem. With a bias epilogue the
    // C operand is a row vector indexed by column only, loaded with
    // leading dimension 0 so all 16 rows read the same 16 values.
    let cm = b.reg();
    b.imad(cm, row0, Operand::Reg(n), Operand::Reg(col0));
    let c_base = b.reg_pair();
    if ep.has_bias() {
        b.imad_wide(c_base, col0, Operand::Imm(cd_bytes), pc);
    } else {
        b.imad_wide(c_base, cm, Operand::Imm(cd_bytes), pc);
    }
    let d_base = b.reg_pair();
    b.imad_wide(d_base, cm, Operand::Imm(cd_bytes), pd);
    // B row step per k-iteration: 16·n·2 bytes.
    let bstep = b.reg();
    b.shl(bstep, n, Operand::Imm(5));

    let fc = b.reg_block(cd_regs);
    b.wmma_load(
        FragmentKind::C,
        SHAPE,
        Layout::Row,
        cd_ty,
        MemSpace::Global,
        fc,
        Operand::RegPair(c_base),
        if ep.has_bias() {
            Operand::Imm(0)
        } else {
            Operand::Reg(n)
        },
    );

    let kk = b.reg();
    b.mov(kk, Operand::Imm(0));
    let fa = b.reg_block(8);
    let fb = b.reg_block(8);
    let top = b.label();
    b.place(top);
    b.wmma_load(
        FragmentKind::A,
        SHAPE,
        Layout::Row,
        WmmaType::F16,
        MemSpace::Global,
        fa,
        Operand::RegPair(a_ptr),
        Operand::Reg(k),
    );
    b.wmma_load(
        FragmentKind::B,
        SHAPE,
        Layout::Row,
        WmmaType::F16,
        MemSpace::Global,
        fb,
        Operand::RegPair(b_ptr),
        Operand::Reg(n),
    );
    b.wmma_mma(
        SHAPE,
        Layout::Row,
        Layout::Row,
        WmmaType::F16,
        cd_ty,
        cd_ty,
        fc,
        fa,
        fb,
        fc,
    );
    b.iadd64(a_ptr, a_ptr, Operand::Imm(32)); // 16 halves
    b.iadd64(b_ptr, b_ptr, Operand::Reg(bstep));
    b.iadd(kk, kk, Operand::Imm(16));
    let p = b.pred();
    b.setp(p, CmpOp::Lt, DataType::U32, kk, Operand::Reg(k));
    b.bra_if(p, true, top);

    if ep.has_relu() {
        let p_ep = b.pred();
        emit_relu(&mut b, p_ep, fc, cd_regs);
    }
    b.wmma_store(
        SHAPE,
        Layout::Row,
        cd_ty,
        MemSpace::Global,
        Operand::RegPair(d_base),
        Operand::Reg(n),
        fc,
    );
    b.exit();
    b.build()
}

/// INT8 tensor-core GEMM for the Turing inference mode (§III-B2): one
/// warp per 16×16 INT32 output tile, S8 multiplicands, S32 accumulation.
/// Requires a Turing GPU configuration (Volta has no integer mode).
///
/// Launch with `grid = (n/16, m/16)`, `block = 32`.
pub fn igemm_wmma() -> Kernel {
    let mut b = KernelBuilder::new("igemm_wmma");
    let (pa, pb, pc, pd, n, k) = declare_gemm_params(&mut b);

    let tile_n = b.reg();
    b.mov(tile_n, Operand::Special(SpecialReg::CtaIdX));
    let tile_m = b.reg();
    b.mov(tile_m, Operand::Special(SpecialReg::CtaIdY));
    let row0 = b.reg();
    b.shl(row0, tile_m, Operand::Imm(4));
    let col0 = b.reg();
    b.shl(col0, tile_n, Operand::Imm(4));

    // A pointer (1-byte elements): pa + row0·k.
    let t = b.reg();
    b.imul(t, row0, Operand::Reg(k));
    let a_ptr = b.reg_pair();
    b.imad_wide(a_ptr, t, Operand::Imm(1), pa);
    // B pointer: pb + col0.
    let b_ptr = b.reg_pair();
    b.imad_wide(b_ptr, col0, Operand::Imm(1), pb);
    // C/D (4-byte INT32): (row0·n + col0)·4.
    let cm = b.reg();
    b.imad(cm, row0, Operand::Reg(n), Operand::Reg(col0));
    let c_base = b.reg_pair();
    b.imad_wide(c_base, cm, Operand::Imm(4), pc);
    let d_base = b.reg_pair();
    b.imad_wide(d_base, cm, Operand::Imm(4), pd);
    let bstep = b.reg();
    b.shl(bstep, n, Operand::Imm(4)); // 16 rows × 1 byte

    let fc = b.reg_block(8);
    b.wmma_load(
        FragmentKind::C,
        SHAPE,
        Layout::Row,
        WmmaType::S32,
        MemSpace::Global,
        fc,
        Operand::RegPair(c_base),
        Operand::Reg(n),
    );
    let kk = b.reg();
    b.mov(kk, Operand::Imm(0));
    let fa = b.reg_block(2);
    let fb = b.reg_block(2);
    let top = b.label();
    b.place(top);
    b.wmma_load(
        FragmentKind::A,
        SHAPE,
        Layout::Row,
        WmmaType::S8,
        MemSpace::Global,
        fa,
        Operand::RegPair(a_ptr),
        Operand::Reg(k),
    );
    b.wmma_load(
        FragmentKind::B,
        SHAPE,
        Layout::Row,
        WmmaType::S8,
        MemSpace::Global,
        fb,
        Operand::RegPair(b_ptr),
        Operand::Reg(n),
    );
    b.wmma_mma(
        SHAPE,
        Layout::Row,
        Layout::Row,
        WmmaType::S8,
        WmmaType::S32,
        WmmaType::S32,
        fc,
        fa,
        fb,
        fc,
    );
    b.iadd64(a_ptr, a_ptr, Operand::Imm(16));
    b.iadd64(b_ptr, b_ptr, Operand::Reg(bstep));
    b.iadd(kk, kk, Operand::Imm(16));
    let p = b.pred();
    b.setp(p, CmpOp::Lt, DataType::U32, kk, Operand::Reg(k));
    b.bra_if(p, true, top);
    b.wmma_store(
        SHAPE,
        Layout::Row,
        WmmaType::S32,
        MemSpace::Global,
        Operand::RegPair(d_base),
        Operand::Reg(n),
        fc,
    );
    b.exit();
    b.build()
}

/// Shared-memory WMMA GEMM (the paper's "WMMA optimized" kernel, Fig 16
/// "with shared memory"): each CTA of four warps computes a 32×32 output
/// tile, staging 32×16 A / 16×32 B panels in shared memory per k-step.
///
/// Launch with `grid = (n/32, m/32)`, `block = 128`.
pub fn wmma_shared_gemm(fp16_output: bool) -> Kernel {
    wmma_shared_gemm_ep(fp16_output, Epilogue::None)
}

/// [`wmma_shared_gemm`] with a fused [`Epilogue`].
///
/// # Panics
///
/// Panics if an epilogue is requested with FP16 output (epilogues operate
/// on the FP32 accumulator fragment).
pub fn wmma_shared_gemm_ep(fp16_output: bool, ep: Epilogue) -> Kernel {
    assert!(
        ep == Epilogue::None || !fp16_output,
        "fused epilogues require the FP32 accumulator path"
    );
    let name = if fp16_output {
        "wmma_shared_hgemm".to_string()
    } else {
        format!("wmma_shared_gemm{}", ep.suffix())
    };
    let mut b = KernelBuilder::new(name);
    let (pa, pb, pc, pd, n, k) = declare_gemm_params(&mut b);
    let (cd_ty, cd_bytes, cd_regs) = if fp16_output {
        (WmmaType::F16, 2i64, 4)
    } else {
        (WmmaType::F32, 4i64, 8)
    };
    let a_panel = b.shared_alloc(32 * 16 * 2); // 1024 B
    let b_panel = b.shared_alloc(16 * 32 * 2); // 1024 B

    let tid = b.reg();
    b.mov(tid, Operand::Special(SpecialReg::TidX));
    let warp = b.reg();
    b.mov(warp, Operand::Special(SpecialReg::WarpId));
    let tile_n = b.reg();
    b.mov(tile_n, Operand::Special(SpecialReg::CtaIdX));
    let tile_m = b.reg();
    b.mov(tile_m, Operand::Special(SpecialReg::CtaIdY));

    // Warp coordinates in the 2×2 warp grid.
    let wm = b.reg();
    b.shr(wm, warp, Operand::Imm(1));
    let wn = b.reg();
    b.and(wn, warp, Operand::Imm(1));

    // ---- Staging addresses (per thread, 4 halves each of A and B). ----
    // A: element 4t of the 32×16 panel → row = t>>2, col = 4·(t&3).
    let a_row = b.reg();
    b.shr(a_row, tid, Operand::Imm(2));
    let a_col = b.reg();
    b.and(a_col, tid, Operand::Imm(3));
    b.shl(a_col, a_col, Operand::Imm(2));
    // Global: pa + ((tile_m·32 + a_row)·k + a_col)·2, advanced by 32 B/iter.
    let grow = b.reg();
    b.imad(grow, tile_m, Operand::Imm(32), Operand::Reg(a_row));
    let t0 = b.reg();
    b.imul(t0, grow, Operand::Reg(k));
    b.iadd(t0, t0, Operand::Reg(a_col));
    let a_gptr = b.reg_pair();
    b.imad_wide(a_gptr, t0, Operand::Imm(2), pa);
    // Shared store address: (a_row·16 + a_col)·2 = 8t.
    let a_sptr = b.reg();
    b.shl(a_sptr, tid, Operand::Imm(3));
    b.iadd(a_sptr, a_sptr, Operand::Imm(a_panel as i64));

    // B: element 4t of the 16×32 panel → row = t>>3, col = 4·(t&7).
    let b_row = b.reg();
    b.shr(b_row, tid, Operand::Imm(3));
    let b_col = b.reg();
    b.and(b_col, tid, Operand::Imm(7));
    b.shl(b_col, b_col, Operand::Imm(2));
    // Global: pb + (b_row·n + tile_n·32 + b_col)·2, advanced by 16·n·2 B.
    let gcol = b.reg();
    b.imad(gcol, tile_n, Operand::Imm(32), Operand::Reg(b_col));
    let t1 = b.reg();
    b.imad(t1, b_row, Operand::Reg(n), Operand::Reg(gcol));
    let b_gptr = b.reg_pair();
    b.imad_wide(b_gptr, t1, Operand::Imm(2), pb);
    let b_sptr = b.reg();
    b.imad(b_sptr, b_row, Operand::Imm(64), Operand::Reg(b_col));
    b.iadd(b_sptr, b_sptr, Operand::Reg(b_col)); // (row·32+col)·2 = row·64 + col·2
                                                 // Fix: previous two lines compute row·64 + col + col = row·64 + 2·col.
    b.iadd(b_sptr, b_sptr, Operand::Imm(b_panel as i64));
    let bstep = b.reg();
    b.shl(bstep, n, Operand::Imm(5));

    // ---- Warp fragment addresses in shared memory. ----
    // A fragment: rows 16·wm of the panel → byte offset wm·512.
    let a_frag_ptr = b.reg();
    b.imad(
        a_frag_ptr,
        wm,
        Operand::Imm(512),
        Operand::Imm(a_panel as i64),
    );
    // B fragment: cols 16·wn → byte offset wn·32.
    let b_frag_ptr = b.reg();
    b.imad(
        b_frag_ptr,
        wn,
        Operand::Imm(32),
        Operand::Imm(b_panel as i64),
    );

    // ---- C/D tile addresses: rows 32·tile_m + 16·wm, cols 32·tile_n + 16·wn.
    let crow = b.reg();
    b.imad(crow, tile_m, Operand::Imm(32), Operand::Imm(0));
    b.imad(crow, wm, Operand::Imm(16), Operand::Reg(crow));
    let ccol = b.reg();
    b.imad(ccol, tile_n, Operand::Imm(32), Operand::Imm(0));
    b.imad(ccol, wn, Operand::Imm(16), Operand::Reg(ccol));
    let cm = b.reg();
    b.imad(cm, crow, Operand::Reg(n), Operand::Reg(ccol));
    let c_base = b.reg_pair();
    if ep.has_bias() {
        // Bias row vector: address by column only, leading dimension 0.
        b.imad_wide(c_base, ccol, Operand::Imm(cd_bytes), pc);
    } else {
        b.imad_wide(c_base, cm, Operand::Imm(cd_bytes), pc);
    }
    let d_base = b.reg_pair();
    b.imad_wide(d_base, cm, Operand::Imm(cd_bytes), pd);

    let fc = b.reg_block(cd_regs);
    b.wmma_load(
        FragmentKind::C,
        SHAPE,
        Layout::Row,
        cd_ty,
        MemSpace::Global,
        fc,
        Operand::RegPair(c_base),
        if ep.has_bias() {
            Operand::Imm(0)
        } else {
            Operand::Reg(n)
        },
    );

    let kk = b.reg();
    b.mov(kk, Operand::Imm(0));
    let stage = b.reg_block(2); // staging register pair for 64-bit copies
    let stage_b = b.reg_block(2);
    let fa = b.reg_block(8);
    let fb = b.reg_block(8);

    let top = b.label();
    b.place(top);
    // Stage the two panels.
    b.ld_global(MemWidth::B64, stage, a_gptr, 0);
    b.st_shared(MemWidth::B64, a_sptr, 0, stage);
    b.ld_global(MemWidth::B64, stage_b, b_gptr, 0);
    b.st_shared(MemWidth::B64, b_sptr, 0, stage_b);
    b.bar();
    // Compute from shared.
    b.wmma_load(
        FragmentKind::A,
        SHAPE,
        Layout::Row,
        WmmaType::F16,
        MemSpace::Shared,
        fa,
        Operand::Reg(a_frag_ptr),
        Operand::Imm(16),
    );
    b.wmma_load(
        FragmentKind::B,
        SHAPE,
        Layout::Row,
        WmmaType::F16,
        MemSpace::Shared,
        fb,
        Operand::Reg(b_frag_ptr),
        Operand::Imm(32),
    );
    b.wmma_mma(
        SHAPE,
        Layout::Row,
        Layout::Row,
        WmmaType::F16,
        cd_ty,
        cd_ty,
        fc,
        fa,
        fb,
        fc,
    );
    b.bar();
    // Advance.
    b.iadd64(a_gptr, a_gptr, Operand::Imm(32));
    b.iadd64(b_gptr, b_gptr, Operand::Reg(bstep));
    b.iadd(kk, kk, Operand::Imm(16));
    let p = b.pred();
    b.setp(p, CmpOp::Lt, DataType::U32, kk, Operand::Reg(k));
    b.bra_if(p, true, top);

    if ep.has_relu() {
        let p_ep = b.pred();
        emit_relu(&mut b, p_ep, fc, cd_regs);
    }
    b.wmma_store(
        SHAPE,
        Layout::Row,
        cd_ty,
        MemSpace::Global,
        Operand::RegPair(d_base),
        Operand::Reg(n),
        fc,
    );
    b.exit();
    b.build()
}

/// Tiling parameters of the CUTLASS-style kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CutlassConfig {
    /// CTA tile rows (multiple of `warp_m`).
    pub cta_m: usize,
    /// CTA tile columns (multiple of `warp_n`).
    pub cta_n: usize,
    /// Warp tile rows (multiple of 16).
    pub warp_m: usize,
    /// Warp tile columns (multiple of 16).
    pub warp_n: usize,
    /// Shared-memory pipeline stages (1 = single buffer, 2 = double
    /// buffered).
    pub stages: usize,
}

impl CutlassConfig {
    /// The default 64×64 CTA tile with 32×32 warp tiles, double buffered.
    pub fn default_64x64() -> CutlassConfig {
        CutlassConfig {
            cta_m: 64,
            cta_n: 64,
            warp_m: 32,
            warp_n: 32,
            stages: 2,
        }
    }

    /// Warps per CTA.
    pub fn warps(&self) -> usize {
        (self.cta_m / self.warp_m) * (self.cta_n / self.warp_n)
    }

    /// Threads per CTA.
    pub fn threads(&self) -> usize {
        self.warps() * 32
    }

    /// Shared memory bytes per CTA (stage stride padded to a power of two
    /// for the double-buffer address toggle).
    pub fn shared_bytes(&self) -> u32 {
        (self.stages * ((self.cta_m * 16 + 16 * self.cta_n) * 2).next_power_of_two()) as u32
    }

    fn validate(&self) {
        assert!(self.warp_m.is_multiple_of(16) && self.warp_n.is_multiple_of(16));
        assert!(self.cta_m.is_multiple_of(self.warp_m) && self.cta_n.is_multiple_of(self.warp_n));
        assert!(matches!(self.stages, 1 | 2));
        let per_thread_a = self.cta_m * 16 / self.threads();
        let per_thread_b = 16 * self.cta_n / self.threads();
        assert!(
            per_thread_a >= 4 && per_thread_a.is_multiple_of(4),
            "A staging must vectorize (got {per_thread_a} elems/thread)"
        );
        assert!(per_thread_b >= 4 && per_thread_b.is_multiple_of(4));
    }
}

/// CUTLASS-style GEMM: threadblock tile staged in shared memory
/// (optionally double buffered), warp tiles of multiple WMMA fragments,
/// k-strip-mined 16 at a time.
///
/// Launch with `grid = (n/cta_n, m/cta_m)`, `block = cfg.threads()`.
pub fn cutlass_gemm(cfg: CutlassConfig) -> Kernel {
    cutlass_gemm_ep(cfg, Epilogue::None)
}

/// [`cutlass_gemm`] with a fused [`Epilogue`] applied to every warp tile.
pub fn cutlass_gemm_ep(cfg: CutlassConfig, ep: Epilogue) -> Kernel {
    cfg.validate();
    let mut b = KernelBuilder::new(format!("cutlass_gemm{}", ep.suffix()));
    let (pa, pb, pc, pd, n, k) = declare_gemm_params(&mut b);
    // The double-buffer toggle XORs shared addresses with the stage
    // stride, so the stride must be a power of two covering one stage.
    let stage_bytes = (((cfg.cta_m * 16 + 16 * cfg.cta_n) * 2).next_power_of_two()) as i64;
    let a_panel = b.shared_alloc((cfg.stages as u32) * stage_bytes as u32) as i64;
    let b_panel = a_panel + (cfg.cta_m * 16 * 2) as i64;

    let threads = cfg.threads();
    let tm = cfg.warp_m / 16; // wmma tiles per warp, m
    let tn = cfg.warp_n / 16;
    let warps_n = cfg.cta_n / cfg.warp_n;

    let tid = b.reg();
    b.mov(tid, Operand::Special(SpecialReg::TidX));
    let warp = b.reg();
    b.mov(warp, Operand::Special(SpecialReg::WarpId));
    let tile_n = b.reg();
    b.mov(tile_n, Operand::Special(SpecialReg::CtaIdX));
    let tile_m = b.reg();
    b.mov(tile_m, Operand::Special(SpecialReg::CtaIdY));

    // Warp grid coordinates (warps_n is a power of two in all configs).
    assert!(warps_n.is_power_of_two());
    let wn_shift = warps_n.trailing_zeros() as i64;
    let wm = b.reg();
    b.shr(wm, warp, Operand::Imm(wn_shift));
    let wn = b.reg();
    b.and(wn, warp, Operand::Imm(warps_n as i64 - 1));

    // ---- Staging addresses. Each thread copies `a_per` elements of A
    // and `b_per` of B per k-step, as 4-element vectors.
    let a_per = cfg.cta_m * 16 / threads;
    let b_per = 16 * cfg.cta_n / threads;
    let mut a_gptrs = Vec::new();
    let mut a_sptrs = Vec::new();
    for j in 0..a_per / 4 {
        // Element index e = 4·(tid + j·threads) in the cta_m×16 panel.
        let e = b.reg();
        b.iadd(e, tid, Operand::Imm((j * threads) as i64));
        b.shl(e, e, Operand::Imm(2));
        let row = b.reg();
        b.shr(row, e, Operand::Imm(4));
        let col = b.reg();
        b.and(col, e, Operand::Imm(15));
        let grow = b.reg();
        b.imad(
            grow,
            tile_m,
            Operand::Imm(cfg.cta_m as i64),
            Operand::Reg(row),
        );
        let t0 = b.reg();
        b.imul(t0, grow, Operand::Reg(k));
        b.iadd(t0, t0, Operand::Reg(col));
        let gp = b.reg_pair();
        b.imad_wide(gp, t0, Operand::Imm(2), pa);
        let sp = b.reg();
        b.shl(sp, e, Operand::Imm(1));
        b.iadd(sp, sp, Operand::Imm(a_panel));
        a_gptrs.push(gp);
        a_sptrs.push(sp);
    }
    let mut b_gptrs = Vec::new();
    let mut b_sptrs = Vec::new();
    for j in 0..b_per / 4 {
        // Element index e = 4·(tid + j·threads) in the 16×cta_n panel.
        let e = b.reg();
        b.iadd(e, tid, Operand::Imm((j * threads) as i64));
        b.shl(e, e, Operand::Imm(2));
        let row = b.reg();
        b.mov(row, Operand::Reg(e));
        b.shr(row, row, Operand::Imm(cfg.cta_n.trailing_zeros() as i64));
        let col = b.reg();
        b.and(col, e, Operand::Imm(cfg.cta_n as i64 - 1));
        let gcol = b.reg();
        b.imad(
            gcol,
            tile_n,
            Operand::Imm(cfg.cta_n as i64),
            Operand::Reg(col),
        );
        let t1 = b.reg();
        b.imad(t1, row, Operand::Reg(n), Operand::Reg(gcol));
        let gp = b.reg_pair();
        b.imad_wide(gp, t1, Operand::Imm(2), pb);
        let sp = b.reg();
        b.shl(sp, e, Operand::Imm(1));
        b.iadd(sp, sp, Operand::Imm(b_panel));
        b_gptrs.push(gp);
        b_sptrs.push(sp);
    }
    let bstep = b.reg();
    b.shl(bstep, n, Operand::Imm(5));

    // ---- Warp fragment shared addresses (one per wmma tile index).
    let mut a_frag_ptrs = Vec::new();
    for i in 0..tm {
        // A panel row offset: (wm·warp_m + i·16)·16·2 bytes.
        let p0 = b.reg();
        b.imad(
            p0,
            wm,
            Operand::Imm((cfg.warp_m * 32) as i64),
            Operand::Imm(a_panel + (i * 16 * 16 * 2) as i64),
        );
        a_frag_ptrs.push(p0);
    }
    let mut b_frag_ptrs = Vec::new();
    for j in 0..tn {
        // B panel col offset: (wn·warp_n + j·16)·2 bytes.
        let p0 = b.reg();
        b.imad(
            p0,
            wn,
            Operand::Imm((cfg.warp_n * 2) as i64),
            Operand::Imm(b_panel + (j * 32) as i64),
        );
        b_frag_ptrs.push(p0);
    }

    // ---- C/D fragment addresses and accumulators.
    let mut c_bases = Vec::new();
    let mut d_bases = Vec::new();
    let mut fcs = Vec::new();
    // Address temporaries shared by all fragment tiles (register pressure).
    let crow = b.reg();
    let ccol = b.reg();
    let cm = b.reg();
    for i in 0..tm {
        for j in 0..tn {
            b.imad(
                crow,
                tile_m,
                Operand::Imm(cfg.cta_m as i64),
                Operand::Imm((i * 16) as i64),
            );
            b.imad(
                crow,
                wm,
                Operand::Imm(cfg.warp_m as i64),
                Operand::Reg(crow),
            );
            b.imad(
                ccol,
                tile_n,
                Operand::Imm(cfg.cta_n as i64),
                Operand::Imm((j * 16) as i64),
            );
            b.imad(
                ccol,
                wn,
                Operand::Imm(cfg.warp_n as i64),
                Operand::Reg(ccol),
            );
            b.imad(cm, crow, Operand::Reg(n), Operand::Reg(ccol));
            let cb = b.reg_pair();
            if ep.has_bias() {
                // Bias row vector: address by column only, stride 0.
                b.imad_wide(cb, ccol, Operand::Imm(4), pc);
            } else {
                b.imad_wide(cb, cm, Operand::Imm(4), pc);
            }
            let db = b.reg_pair();
            b.imad_wide(db, cm, Operand::Imm(4), pd);
            let fc = b.reg_block(8);
            b.wmma_load(
                FragmentKind::C,
                SHAPE,
                Layout::Row,
                WmmaType::F32,
                MemSpace::Global,
                fc,
                Operand::RegPair(cb),
                if ep.has_bias() {
                    Operand::Imm(0)
                } else {
                    Operand::Reg(n)
                },
            );
            c_bases.push(cb);
            d_bases.push(db);
            fcs.push(fc);
        }
    }

    let stage_regs: Vec<Reg> = (0..a_per / 4 + b_per / 4).map(|_| b.reg_block(2)).collect();
    let fas: Vec<Reg> = (0..tm).map(|_| b.reg_block(8)).collect();
    let fbs: Vec<Reg> = (0..tn).map(|_| b.reg_block(8)).collect();

    let emit_stage = |b: &mut KernelBuilder, advance: bool| {
        for (idx, (&gp, &sp)) in a_gptrs.iter().zip(&a_sptrs).enumerate() {
            b.ld_global(MemWidth::B64, stage_regs[idx], gp, 0);
            b.st_shared(MemWidth::B64, sp, 0, stage_regs[idx]);
            if advance {
                b.iadd64(gp, gp, Operand::Imm(32));
            }
        }
        for (idx, (&gp, &sp)) in b_gptrs.iter().zip(&b_sptrs).enumerate() {
            let r = stage_regs[a_gptrs.len() + idx];
            b.ld_global(MemWidth::B64, r, gp, 0);
            b.st_shared(MemWidth::B64, sp, 0, r);
            if advance {
                b.iadd64(gp, gp, Operand::Reg(bstep));
            }
        }
    };
    let toggle_shared = |b: &mut KernelBuilder| {
        for &sp in a_sptrs.iter().chain(&b_sptrs) {
            b.xor(sp, sp, Operand::Imm(stage_bytes));
        }
    };
    let toggle_frags = |b: &mut KernelBuilder| {
        for &fp in a_frag_ptrs.iter().chain(&b_frag_ptrs) {
            b.xor(fp, fp, Operand::Imm(stage_bytes));
        }
    };
    let emit_compute = |b: &mut KernelBuilder| {
        for i in 0..tm {
            b.wmma_load(
                FragmentKind::A,
                SHAPE,
                Layout::Row,
                WmmaType::F16,
                MemSpace::Shared,
                fas[i],
                Operand::Reg(a_frag_ptrs[i]),
                Operand::Imm(16),
            );
        }
        for j in 0..tn {
            b.wmma_load(
                FragmentKind::B,
                SHAPE,
                Layout::Row,
                WmmaType::F16,
                MemSpace::Shared,
                fbs[j],
                Operand::Reg(b_frag_ptrs[j]),
                Operand::Imm(cfg.cta_n as i64),
            );
        }
        for i in 0..tm {
            for j in 0..tn {
                let fc = fcs[i * tn + j];
                b.wmma_mma(
                    SHAPE,
                    Layout::Row,
                    Layout::Row,
                    WmmaType::F16,
                    WmmaType::F32,
                    WmmaType::F32,
                    fc,
                    fas[i],
                    fbs[j],
                    fc,
                );
            }
        }
    };

    let kk = b.reg();
    b.mov(kk, Operand::Imm(0));

    if cfg.stages == 2 {
        // Prologue: stage buffer 0, then point staging at buffer 1.
        emit_stage(&mut b, true);
        toggle_shared(&mut b);
        b.bar();
        let top = b.label();
        b.place(top);
        // Stage the next k-step (into the spare buffer) while computing.
        emit_stage(&mut b, true);
        emit_compute(&mut b);
        b.bar();
        toggle_shared(&mut b);
        toggle_frags(&mut b);
        b.iadd(kk, kk, Operand::Imm(16));
        let p = b.pred();
        b.setp(p, CmpOp::Lt, DataType::U32, kk, Operand::Reg(k));
        b.bra_if(p, true, top);
    } else {
        let top = b.label();
        b.place(top);
        emit_stage(&mut b, true);
        b.bar();
        emit_compute(&mut b);
        b.bar();
        b.iadd(kk, kk, Operand::Imm(16));
        let p = b.pred();
        b.setp(p, CmpOp::Lt, DataType::U32, kk, Operand::Reg(k));
        b.bra_if(p, true, top);
    }

    if ep.has_relu() {
        let p_ep = b.pred();
        for &fc in &fcs {
            emit_relu(&mut b, p_ep, fc, 8);
        }
    }
    for (idx, &fc) in fcs.iter().enumerate() {
        b.wmma_store(
            SHAPE,
            Layout::Row,
            WmmaType::F32,
            MemSpace::Global,
            Operand::RegPair(d_bases[idx]),
            Operand::Reg(n),
            fc,
        );
    }
    b.exit();
    b.build()
}

/// FFMA SGEMM baseline (no tensor cores): classic 16×16 shared-memory
/// tiling, one FP32 output element per thread.
///
/// Launch with `grid = (n/16, m/16)`, `block = (16, 16)`.
pub fn sgemm(/* no options */) -> Kernel {
    let mut b = KernelBuilder::new("sgemm");
    let (pa, pb, pc, pd, n, k) = declare_gemm_params(&mut b);
    let as_panel = b.shared_alloc(16 * 16 * 4) as i64;
    let bs_panel = b.shared_alloc(16 * 16 * 4) as i64;

    let tx = b.reg();
    b.mov(tx, Operand::Special(SpecialReg::TidX));
    let ty = b.reg();
    b.mov(ty, Operand::Special(SpecialReg::TidY));
    let row = b.reg();
    b.mov(row, Operand::Special(SpecialReg::CtaIdY));
    b.imad(row, row, Operand::Imm(16), Operand::Reg(ty));
    let col = b.reg();
    b.mov(col, Operand::Special(SpecialReg::CtaIdX));
    b.imad(col, col, Operand::Imm(16), Operand::Reg(tx));

    // Global pointers: A[row, tx], advancing 16·4 B; B[ty, col], advancing
    // 16·n·4 B.
    let t0 = b.reg();
    b.imul(t0, row, Operand::Reg(k));
    b.iadd(t0, t0, Operand::Reg(tx));
    let a_gptr = b.reg_pair();
    b.imad_wide(a_gptr, t0, Operand::Imm(4), pa);
    let t1 = b.reg();
    b.imad(t1, ty, Operand::Reg(n), Operand::Reg(col));
    let b_gptr = b.reg_pair();
    b.imad_wide(b_gptr, t1, Operand::Imm(4), pb);
    let bstep = b.reg();
    b.shl(bstep, n, Operand::Imm(6)); // 16·n·4

    // Shared addresses.
    let a_sptr = b.reg();
    b.imad(a_sptr, ty, Operand::Imm(64), Operand::Imm(as_panel));
    let a_sw = b.reg();
    b.imad(a_sw, tx, Operand::Imm(4), Operand::Reg(a_sptr));
    let b_sw = b.reg();
    b.imad(b_sw, ty, Operand::Imm(64), Operand::Imm(bs_panel));
    b.imad(b_sw, tx, Operand::Imm(4), Operand::Reg(b_sw));

    // Accumulator from C.
    let cm = b.reg();
    b.imad(cm, row, Operand::Reg(n), Operand::Reg(col));
    let c_addr = b.reg_pair();
    b.imad_wide(c_addr, cm, Operand::Imm(4), pc);
    let d_addr = b.reg_pair();
    b.imad_wide(d_addr, cm, Operand::Imm(4), pd);
    let acc = b.reg();
    b.ld_global(MemWidth::B32, acc, c_addr, 0);

    let stage = b.reg();
    let stage2 = b.reg();
    let kk = b.reg();
    b.mov(kk, Operand::Imm(0));
    let top = b.label();
    b.place(top);
    b.ld_global(MemWidth::B32, stage, a_gptr, 0);
    b.st_shared(MemWidth::B32, a_sw, 0, stage);
    b.ld_global(MemWidth::B32, stage2, b_gptr, 0);
    b.st_shared(MemWidth::B32, b_sw, 0, stage2);
    b.bar();
    // Inner product over the staged 16-wide strip, fully unrolled.
    let av = b.reg();
    let bv = b.reg();
    let a_row_base = b.reg();
    b.imad(a_row_base, ty, Operand::Imm(64), Operand::Imm(as_panel));
    let b_col_base = b.reg();
    b.imad(b_col_base, tx, Operand::Imm(4), Operand::Imm(bs_panel));
    for j in 0..16i64 {
        b.ld_shared(MemWidth::B32, av, a_row_base, j * 4);
        b.ld_shared(MemWidth::B32, bv, b_col_base, j * 64);
        b.ffma(acc, av, Operand::Reg(bv), Operand::Reg(acc));
    }
    b.bar();
    b.iadd64(a_gptr, a_gptr, Operand::Imm(64));
    b.iadd64(b_gptr, b_gptr, Operand::Reg(bstep));
    b.iadd(kk, kk, Operand::Imm(16));
    let p = b.pred();
    b.setp(p, CmpOp::Lt, DataType::U32, kk, Operand::Reg(k));
    b.bra_if(p, true, top);
    b.st_global(MemWidth::B32, d_addr, 0, acc);
    b.exit();
    b.build()
}

/// HFMA2 HGEMM baseline (no tensor cores): like [`sgemm`] but FP16 with
/// packed-half math — each thread computes **two** adjacent output
/// columns per HFMA2, giving the 2× per-instruction FP16 rate.
///
/// Launch with `grid = (n/32, m/16)`, `block = (16, 16)`.
pub fn hgemm() -> Kernel {
    let mut b = KernelBuilder::new("hgemm");
    let (pa, pb, pc, pd, n, k) = declare_gemm_params(&mut b);
    let as_panel = b.shared_alloc(16 * 16 * 2) as i64; // A strip 16×16 f16
    let bs_panel = b.shared_alloc(16 * 32 * 2) as i64; // B strip 16×32 f16

    let tx = b.reg();
    b.mov(tx, Operand::Special(SpecialReg::TidX));
    let ty = b.reg();
    b.mov(ty, Operand::Special(SpecialReg::TidY));
    let row = b.reg();
    b.mov(row, Operand::Special(SpecialReg::CtaIdY));
    b.imad(row, row, Operand::Imm(16), Operand::Reg(ty));
    let col2 = b.reg(); // first of the two output columns
    b.mov(col2, Operand::Special(SpecialReg::CtaIdX));
    b.imad(col2, col2, Operand::Imm(32), Operand::Imm(0));
    let txc = b.reg();
    b.shl(txc, tx, Operand::Imm(1));
    b.iadd(col2, col2, Operand::Reg(txc));

    // A[row, tx] f16, step 16·2 B; B[ty, col2..col2+2], step 16·n·2 B.
    let t0 = b.reg();
    b.imul(t0, row, Operand::Reg(k));
    b.iadd(t0, t0, Operand::Reg(tx));
    let a_gptr = b.reg_pair();
    b.imad_wide(a_gptr, t0, Operand::Imm(2), pa);
    let t1 = b.reg();
    b.imad(t1, ty, Operand::Reg(n), Operand::Reg(col2));
    let b_gptr = b.reg_pair();
    b.imad_wide(b_gptr, t1, Operand::Imm(2), pb);
    let bstep = b.reg();
    b.shl(bstep, n, Operand::Imm(5));

    let a_sw = b.reg();
    b.imad(a_sw, ty, Operand::Imm(32), Operand::Imm(as_panel));
    b.imad(a_sw, tx, Operand::Imm(2), Operand::Reg(a_sw));
    let b_sw = b.reg();
    b.imad(b_sw, ty, Operand::Imm(64), Operand::Imm(bs_panel));
    b.imad(b_sw, tx, Operand::Imm(4), Operand::Reg(b_sw));

    let cm = b.reg();
    b.imad(cm, row, Operand::Reg(n), Operand::Reg(col2));
    let c_addr = b.reg_pair();
    b.imad_wide(c_addr, cm, Operand::Imm(2), pc);
    let d_addr = b.reg_pair();
    b.imad_wide(d_addr, cm, Operand::Imm(2), pd);
    let acc2 = b.reg();
    b.ld_global(MemWidth::B32, acc2, c_addr, 0); // two packed halves

    let stage = b.reg();
    let stage2 = b.reg();
    let kk = b.reg();
    b.mov(kk, Operand::Imm(0));
    let top = b.label();
    b.place(top);
    b.ld_global(MemWidth::B16, stage, a_gptr, 0);
    b.st_shared(MemWidth::B16, a_sw, 0, stage);
    b.ld_global(MemWidth::B32, stage2, b_gptr, 0);
    b.st_shared(MemWidth::B32, b_sw, 0, stage2);
    b.bar();
    let av = b.reg();
    let asplat = b.reg();
    let bv = b.reg();
    let a_row_base = b.reg();
    b.imad(a_row_base, ty, Operand::Imm(32), Operand::Imm(as_panel));
    let b_col_base = b.reg();
    b.imad(b_col_base, tx, Operand::Imm(4), Operand::Imm(bs_panel));
    for j in 0..16i64 {
        b.ld_shared(MemWidth::B16, av, a_row_base, j * 2);
        b.shl(asplat, av, Operand::Imm(16));
        b.or(asplat, asplat, Operand::Reg(av));
        b.ld_shared(MemWidth::B32, bv, b_col_base, j * 64);
        b.hfma2(acc2, asplat, Operand::Reg(bv), Operand::Reg(acc2));
    }
    b.bar();
    b.iadd64(a_gptr, a_gptr, Operand::Imm(32));
    b.iadd64(b_gptr, b_gptr, Operand::Reg(bstep));
    b.iadd(kk, kk, Operand::Imm(16));
    let p = b.pred();
    b.setp(p, CmpOp::Lt, DataType::U32, kk, Operand::Reg(k));
    b.bra_if(p, true, top);
    b.st_global(MemWidth::B32, d_addr, 0, acc2);
    b.exit();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_build() {
        assert_eq!(wmma_simple_gemm(false).name(), "wmma_simple_gemm");
        assert_eq!(wmma_simple_gemm(true).name(), "wmma_simple_hgemm");
        assert!(wmma_shared_gemm(false).shared_bytes() >= 2048);
        assert_eq!(sgemm().params().len(), 6);
        assert_eq!(hgemm().params().len(), 6);
    }

    #[test]
    fn cutlass_config_resources() {
        let cfg = CutlassConfig::default_64x64();
        assert_eq!(cfg.warps(), 4);
        assert_eq!(cfg.threads(), 128);
        assert_eq!(cfg.shared_bytes(), 2 * (64 * 16 + 16 * 64) * 2);
        let k = cutlass_gemm(cfg);
        assert!(k.num_regs() <= 255, "regs = {}", k.num_regs());
        assert_eq!(k.shared_bytes(), cfg.shared_bytes());
    }

    #[test]
    #[should_panic(expected = "vectorize")]
    fn cutlass_rejects_non_vectorizable_staging() {
        // 16×16 CTA tile with 16×16 warps: 1 warp = 32 threads, A panel
        // 256 elems → 8/thread fine; force failure with a huge thread
        // count instead: 64×256 warp tiles → cta 64×256? Construct a case
        // with too many threads per element.
        let cfg = CutlassConfig {
            cta_m: 16,
            cta_n: 256,
            warp_m: 16,
            warp_n: 16,
            stages: 1,
        };
        let _ = cutlass_gemm(cfg); // 16 warps = 512 threads; A panel 256 elems
    }

    #[test]
    fn register_budgets_are_reasonable() {
        for k in [
            wmma_simple_gemm(false),
            wmma_shared_gemm(false),
            sgemm(),
            hgemm(),
        ] {
            assert!(k.num_regs() <= 128, "{}: {} regs", k.name(), k.num_regs());
        }
    }

    #[test]
    fn epilogue_variants_build_with_suffixed_names() {
        for (ep, suffix) in [
            (Epilogue::None, ""),
            (Epilogue::Bias, "_bias"),
            (Epilogue::Relu, "_relu"),
            (Epilogue::BiasRelu, "_bias_relu"),
        ] {
            let k = wmma_simple_gemm_ep(false, ep);
            assert_eq!(k.name(), format!("wmma_simple_gemm{suffix}"));
            let k = wmma_shared_gemm_ep(false, ep);
            assert_eq!(k.name(), format!("wmma_shared_gemm{suffix}"));
            let k = cutlass_gemm_ep(CutlassConfig::default_64x64(), ep);
            assert_eq!(k.name(), format!("cutlass_gemm{suffix}"));
            assert!(k.num_regs() <= 255, "{}: {} regs", k.name(), k.num_regs());
        }
    }

    #[test]
    fn epilogue_adds_instructions_but_not_params() {
        let plain = wmma_simple_gemm(false);
        let fused = wmma_simple_gemm_ep(false, Epilogue::BiasRelu);
        assert_eq!(plain.params().len(), fused.params().len());
        assert!(fused.instrs().len() > plain.instrs().len());
    }

    #[test]
    #[should_panic(expected = "FP32 accumulator")]
    fn epilogue_rejects_fp16_output() {
        let _ = wmma_simple_gemm_ep(true, Epilogue::Relu);
    }
}
