//! GEMM problem definitions, host-side data generation and the CPU
//! reference used for verification (the role CUTLASS's unit-test suite
//! played for the paper's GPGPU-Sim port, §V-B).

use tcsim_f16::F16;

/// Element precision of a GEMM.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GemmPrecision {
    /// FP16 A/B with FP32 accumulation and FP32 C/D (mixed precision).
    MixedF32,
    /// FP16 everything (HGEMM-with-tensor-cores).
    Fp16,
    /// FP32 everything, no tensor cores (SGEMM baseline).
    Fp32,
    /// INT8 A/B with INT32 accumulation (Turing inference mode, §III-B2).
    Int8,
}

/// One GEMM problem: `D = A×B + C` with `A: m×k`, `B: k×n`, `C/D: m×n`.
/// All matrices are row-major (the kernels handle transposed operands via
/// WMMA layout qualifiers where exercised).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GemmProblem {
    /// Rows of A and C.
    pub m: usize,
    /// Columns of B and C.
    pub n: usize,
    /// Reduction dimension.
    pub k: usize,
    /// Element types.
    pub precision: GemmPrecision,
}

impl GemmProblem {
    /// A square mixed-precision problem (the paper's evaluation shape).
    pub fn square(size: usize) -> GemmProblem {
        GemmProblem {
            m: size,
            n: size,
            k: size,
            precision: GemmPrecision::MixedF32,
        }
    }

    /// Floating-point operations performed (2·m·n·k).
    pub fn flops(&self) -> f64 {
        2.0 * self.m as f64 * self.n as f64 * self.k as f64
    }

    /// Bytes of the three input matrices plus the output.
    pub fn bytes(&self) -> u64 {
        let (ab, cd) = match self.precision {
            GemmPrecision::MixedF32 => (2, 4),
            GemmPrecision::Fp16 => (2, 2),
            GemmPrecision::Fp32 => (4, 4),
            GemmPrecision::Int8 => (1, 4),
        };
        (self.m * self.k + self.k * self.n) as u64 * ab + 2 * (self.m * self.n) as u64 * cd
    }

    /// Arithmetic intensity in FLOPs per byte.
    pub fn intensity(&self) -> f64 {
        self.flops() / self.bytes() as f64
    }
}

/// Deterministic pseudo-random operand values: small multiples of 1/8 in
/// [-2, 2), exact in binary16, so reduction error stays well-conditioned.
pub fn operand_value(seed: u32, index: usize) -> f32 {
    let mut x = (index as u32).wrapping_add(seed).wrapping_mul(2654435761);
    x ^= x >> 15;
    x = x.wrapping_mul(2246822519);
    x ^= x >> 13;
    ((x % 32) as f32 - 16.0) / 8.0
}

/// Fills a row-major f16 matrix as raw little-endian bytes.
pub fn f16_matrix_bytes(seed: u32, rows: usize, cols: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(rows * cols * 2);
    for i in 0..rows * cols {
        out.extend_from_slice(
            &F16::from_f32(operand_value(seed, i))
                .to_bits()
                .to_le_bytes(),
        );
    }
    out
}

/// Fills a row-major f32 matrix as raw little-endian bytes.
pub fn f32_matrix_bytes(seed: u32, rows: usize, cols: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(rows * cols * 4);
    for i in 0..rows * cols {
        out.extend_from_slice(&operand_value(seed, i).to_bits().to_le_bytes());
    }
    out
}

/// Deterministic signed-8-bit operand values in [-16, 16).
pub fn operand_value_i8(seed: u32, index: usize) -> i8 {
    (operand_value(seed, index) * 8.0) as i8
}

/// Fills a row-major i8 matrix as raw bytes.
pub fn i8_matrix_bytes(seed: u32, rows: usize, cols: usize) -> Vec<u8> {
    (0..rows * cols)
        .map(|i| operand_value_i8(seed, i) as u8)
        .collect()
}

/// Fills a row-major i32 matrix (small values) as raw little-endian bytes.
pub fn i32_matrix_bytes(seed: u32, rows: usize, cols: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(rows * cols * 4);
    for i in 0..rows * cols {
        out.extend_from_slice(&(operand_value_i8(seed, i) as i32).to_le_bytes());
    }
    out
}

/// CPU reference GEMM over the generated operands: f16/f32/i8 inputs with
/// f32 or exact i32 accumulation, returning `D = A×B + C` row-major (as
/// f32 values; integer results are exactly representable for the operand
/// ranges used).
pub fn reference_gemm(problem: &GemmProblem, seed_a: u32, seed_b: u32, seed_c: u32) -> Vec<f32> {
    let (m, n, k) = (problem.m, problem.n, problem.k);
    if problem.precision == GemmPrecision::Int8 {
        let mut d = vec![0f32; m * n];
        for r in 0..m {
            for c in 0..n {
                let mut acc = operand_value_i8(seed_c, r * n + c) as i64;
                for kk in 0..k {
                    let a = operand_value_i8(seed_a, r * k + kk) as i64;
                    let b = operand_value_i8(seed_b, kk * n + c) as i64;
                    acc += a * b;
                }
                debug_assert!(acc.unsigned_abs() < 1 << 24, "exact in f32");
                d[r * n + c] = acc as f32;
            }
        }
        return d;
    }
    let quant = |v: f32| -> f32 {
        match problem.precision {
            GemmPrecision::Fp32 => v,
            _ => F16::from_f32(v).to_f32(),
        }
    };
    let mut d = vec![0f32; m * n];
    for r in 0..m {
        for c in 0..n {
            let mut acc = quant_c(problem, operand_value(seed_c, r * n + c));
            for kk in 0..k {
                let a = quant(operand_value(seed_a, r * k + kk));
                let b = quant(operand_value(seed_b, kk * n + c));
                acc += a * b;
            }
            d[r * n + c] = acc;
        }
    }
    d
}

fn quant_c(problem: &GemmProblem, v: f32) -> f32 {
    match problem.precision {
        GemmPrecision::Fp16 => F16::from_f32(v).to_f32(),
        _ => v,
    }
}

/// Verifies device output against the reference within a tolerance that
/// scales with the reduction length; returns the max absolute error.
///
/// # Panics
///
/// Panics when any element exceeds the tolerance.
pub fn verify(problem: &GemmProblem, got: &[f32], reference: &[f32]) -> f32 {
    assert_eq!(got.len(), reference.len());
    // FEDP trees vs sequential reference: error grows ~ sqrt(k) ulps; in
    // FP16 output mode rounding dominates.
    let tol = match problem.precision {
        GemmPrecision::Fp16 => 0.5 + problem.k as f32 * 0.01,
        GemmPrecision::Int8 => 0.0, // integer accumulation is exact
        _ => 1e-3 + problem.k as f32 * 1e-4,
    };
    let mut max_err = 0f32;
    for (i, (&g, &r)) in got.iter().zip(reference).enumerate() {
        let err = (g - r).abs();
        assert!(
            err <= tol,
            "element {i}: got {g}, want {r} (err {err} > tol {tol})"
        );
        max_err = max_err.max(err);
    }
    max_err
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flops_and_bytes() {
        let p = GemmProblem::square(256);
        assert_eq!(p.flops(), 2.0 * 256f64.powi(3));
        assert_eq!(p.bytes(), (2 * 256 * 256 * 2 + 2 * 256 * 256 * 4) as u64);
        assert!(p.intensity() > 10.0);
    }

    #[test]
    fn operand_values_are_f16_exact_and_bounded() {
        for i in 0..1000 {
            let v = operand_value(7, i);
            assert!((-2.0..2.0).contains(&v));
            assert_eq!(F16::from_f32(v).to_f32(), v, "exact in f16");
        }
    }

    #[test]
    fn matrix_bytes_sizes() {
        assert_eq!(f16_matrix_bytes(1, 16, 16).len(), 512);
        assert_eq!(f32_matrix_bytes(1, 16, 16).len(), 1024);
    }

    #[test]
    fn reference_matches_hand_computation() {
        let p = GemmProblem {
            m: 2,
            n: 2,
            k: 4,
            precision: GemmPrecision::MixedF32,
        };
        let d = reference_gemm(&p, 1, 2, 3);
        for r in 0..2 {
            for c in 0..2 {
                let mut acc = operand_value(3, r * 2 + c);
                for kk in 0..4 {
                    acc += operand_value(1, r * 4 + kk) * operand_value(2, kk * 2 + c);
                }
                assert!((d[r * 2 + c] - acc).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn verify_accepts_exact_and_rejects_garbage() {
        let p = GemmProblem::square(16);
        let r = reference_gemm(&p, 1, 2, 3);
        assert_eq!(verify(&p, &r, &r), 0.0);
        let mut bad = r.clone();
        bad[7] += 100.0;
        assert!(std::panic::catch_unwind(|| verify(&p, &bad, &r)).is_err());
    }
}
