//! Content hashing for cache keys: FNV-1a with a 128-bit state.
//!
//! The cache key must only ever collide for byte-identical content; at
//! the job volumes a single server sees (≪ 2^40), a 128-bit FNV-1a state
//! gives a collision probability far below any operational concern while
//! staying a ten-line, dependency-free function. The hash is **stable
//! across runs, platforms and versions of this crate** — it is part of
//! the on-disk cache format, so changing it invalidates every persisted
//! result (bump the cache file version when doing so).

/// FNV-1a/128 offset basis.
const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// FNV-1a/128 prime.
const PRIME: u128 = 0x0000000001000000000000000000013b;

/// An incremental FNV-1a 128-bit hasher.
#[derive(Clone, Copy, Debug)]
pub struct Fnv128 {
    state: u128,
}

impl Default for Fnv128 {
    fn default() -> Fnv128 {
        Fnv128::new()
    }
}

impl Fnv128 {
    /// A fresh hasher at the offset basis.
    pub fn new() -> Fnv128 {
        Fnv128 { state: OFFSET }
    }

    /// Absorbs `bytes`.
    pub fn update(&mut self, bytes: &[u8]) -> &mut Fnv128 {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(PRIME);
        }
        self
    }

    /// Absorbs a length-prefixed field: the 8-byte little-endian length
    /// followed by the bytes. Prefixing makes the framing injective —
    /// `("ab","c")` and `("a","bc")` hash differently.
    pub fn field(&mut self, bytes: &[u8]) -> &mut Fnv128 {
        self.update(&(bytes.len() as u64).to_le_bytes());
        self.update(bytes)
    }

    /// Absorbs a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) -> &mut Fnv128 {
        self.update(&v.to_le_bytes())
    }

    /// The digest as 32 lowercase hex characters.
    pub fn hex(&self) -> String {
        format!("{:032x}", self.state)
    }
}

/// One-shot convenience: the FNV-1a/128 hex digest of `bytes`.
pub fn fnv128_hex(bytes: &[u8]) -> String {
    let mut h = Fnv128::new();
    h.update(bytes);
    h.hex()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // FNV-1a/128 of the empty string is the offset basis.
        assert_eq!(fnv128_hex(b""), "6c62272e07bb014262b821756295c58d");
        // Published FNV-1a/128 test vector for "a".
        assert_eq!(fnv128_hex(b"a"), "d228cb696f1a8caf78912b704e4a8964");
    }

    #[test]
    fn incremental_matches_one_shot() {
        let mut h = Fnv128::new();
        h.update(b"hello ").update(b"world");
        assert_eq!(h.hex(), fnv128_hex(b"hello world"));
    }

    #[test]
    fn field_framing_is_injective() {
        let mut a = Fnv128::new();
        a.field(b"ab").field(b"c");
        let mut b = Fnv128::new();
        b.field(b"a").field(b"bc");
        assert_ne!(a.hex(), b.hex());
    }

    #[test]
    fn single_byte_sensitivity() {
        assert_ne!(fnv128_hex(b"tcsim"), fnv128_hex(b"tcsiM"));
        assert_eq!(fnv128_hex(b"tcsim").len(), 32);
    }
}
