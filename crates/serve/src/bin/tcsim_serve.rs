//! The `tcsim-serve` daemon: a persistent simulation job server.
//!
//! ```text
//! tcsim-serve [--bind ADDR] [--cache-dir DIR] [--workers N]
//!             [--max-pending N] [--quota N] [--batch-max N]
//!             [--port-file PATH]
//! ```
//!
//! Binds `ADDR` (default `127.0.0.1:0` — an ephemeral port), prints the
//! bound address on stdout (and to `--port-file`, for scripts that start
//! the server in the background), then serves the line-delimited JSON
//! protocol until a `shutdown` request arrives. With `--cache-dir` the
//! result cache persists across restarts; without it the cache is
//! in-memory only.

use std::path::PathBuf;
use std::process::ExitCode;
use tcsim_serve::{ServeOptions, Server};

struct Args {
    bind: String,
    port_file: Option<PathBuf>,
    opts: ServeOptions,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        bind: "127.0.0.1:0".into(),
        port_file: None,
        opts: ServeOptions::default(),
    };
    let mut it = std::env::args().skip(1);
    fn value(name: &str, it: &mut std::iter::Skip<std::env::Args>) -> Result<String, String> {
        it.next().ok_or_else(|| format!("{name} needs a value"))
    }
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--bind" => args.bind = value("--bind", &mut it)?,
            "--port-file" => args.port_file = Some(PathBuf::from(value("--port-file", &mut it)?)),
            "--cache-dir" => {
                args.opts.cache_dir = Some(PathBuf::from(value("--cache-dir", &mut it)?))
            }
            "--workers" => {
                args.opts.workers = value("--workers", &mut it)?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--max-pending" => {
                args.opts.max_pending = value("--max-pending", &mut it)?
                    .parse()
                    .map_err(|e| format!("--max-pending: {e}"))?
            }
            "--quota" => {
                args.opts.quota = value("--quota", &mut it)?
                    .parse()
                    .map_err(|e| format!("--quota: {e}"))?
            }
            "--batch-max" => {
                args.opts.batch_max = value("--batch-max", &mut it)?
                    .parse()
                    .map_err(|e| format!("--batch-max: {e}"))?
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.opts.workers == 0 || args.opts.batch_max == 0 {
        return Err("--workers and --batch-max must be at least 1".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("tcsim-serve: {e}");
            return ExitCode::from(2);
        }
    };
    let server = match Server::start(&args.bind, args.opts.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tcsim-serve: cannot start on {}: {e}", args.bind);
            return ExitCode::FAILURE;
        }
    };
    let addr = server.local_addr();
    println!("{addr}");
    if let Some(path) = &args.port_file {
        if let Err(e) = std::fs::write(path, format!("{addr}\n")) {
            eprintln!("tcsim-serve: cannot write {}: {e}", path.display());
            server.shutdown();
            return ExitCode::FAILURE;
        }
    }
    eprintln!(
        "tcsim-serve: listening on {addr} ({} worker(s), {} cached result(s) warm-loaded)",
        args.opts.workers,
        server.cache_loaded_from_disk()
    );
    server.join();
    eprintln!("tcsim-serve: shut down");
    ExitCode::SUCCESS
}
