//! `tcsim-loadgen`: a seeded open-loop load generator and benchmark
//! client for `tcsim-serve`.
//!
//! ```text
//! tcsim-loadgen --connect ADDR [--corpus DIR] [--gen N] [--repeat K]
//!               [--rate R] [--seed S] [--json PATH] [--smoke]
//!               [--min-hit-rate X] [--expect-digest PATH] [--shutdown]
//! ```
//!
//! The workload is the conformance corpus (`--corpus`, default
//! `tests/corpus`) plus `--gen N` generator-derived cases, the whole mix
//! repeated `--repeat K` times. With `--rate R` jobs/s the submissions
//! follow a seeded open-loop Poisson arrival process (exponential
//! inter-arrivals from the workspace xorshift64* PRNG); with the default
//! rate 0 they are submitted back-to-back. `--smoke` submits the whole
//! workload as one `batch` request — the CI path.
//!
//! The report (stdout, and `--json PATH`) carries throughput, cache hit
//! rate, client-side p50/p95/p99 latency, and `results_digest` — an
//! FNV-1a/128 digest over every completion's `(id, key, output digest,
//! stats JSON)` in id order. Two runs of the same workload must agree on
//! the digest whether results were computed or cached; `--expect-digest
//! PREV.json` enforces that against a previous report and
//! `--min-hit-rate X` turns the hit rate into an exit code, which is how
//! the CI smoke pins the warm pass.

use std::collections::HashMap;
use std::io::BufRead;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::mpsc::channel;
use std::time::{Duration, Instant};
use tcsim_check::corpus::case_from_text;
use tcsim_check::gen::{generate, GenConfig, KindSel};
use tcsim_check::oracle::Case;
use tcsim_check::rng::ExpArrivals;
use tcsim_serve::hash::Fnv128;
use tcsim_serve::{json, Client, Event, JobSpec, Request};
use tcsim_sim::JsonWriter;

struct Args {
    connect: String,
    corpus: PathBuf,
    gen: u64,
    repeat: u32,
    rate: f64,
    seed: u64,
    json_path: Option<PathBuf>,
    smoke: bool,
    min_hit_rate: Option<f64>,
    expect_digest: Option<PathBuf>,
    shutdown: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        connect: String::new(),
        corpus: PathBuf::from("tests/corpus"),
        gen: 0,
        repeat: 1,
        rate: 0.0,
        seed: 1,
        json_path: None,
        smoke: false,
        min_hit_rate: None,
        expect_digest: None,
        shutdown: false,
    };
    let mut it = std::env::args().skip(1);
    fn value(name: &str, it: &mut std::iter::Skip<std::env::Args>) -> Result<String, String> {
        it.next().ok_or_else(|| format!("{name} needs a value"))
    }
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--connect" => args.connect = value("--connect", &mut it)?,
            "--corpus" => args.corpus = PathBuf::from(value("--corpus", &mut it)?),
            "--gen" => {
                args.gen = value("--gen", &mut it)?
                    .parse()
                    .map_err(|e| format!("--gen: {e}"))?
            }
            "--repeat" => {
                args.repeat = value("--repeat", &mut it)?
                    .parse()
                    .map_err(|e| format!("--repeat: {e}"))?
            }
            "--rate" => {
                args.rate = value("--rate", &mut it)?
                    .parse()
                    .map_err(|e| format!("--rate: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed", &mut it)?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--json" => args.json_path = Some(PathBuf::from(value("--json", &mut it)?)),
            "--smoke" => args.smoke = true,
            "--min-hit-rate" => {
                args.min_hit_rate = Some(
                    value("--min-hit-rate", &mut it)?
                        .parse()
                        .map_err(|e| format!("--min-hit-rate: {e}"))?,
                )
            }
            "--expect-digest" => {
                args.expect_digest = Some(PathBuf::from(value("--expect-digest", &mut it)?))
            }
            "--shutdown" => args.shutdown = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.connect.is_empty() {
        return Err("--connect ADDR is required".into());
    }
    if args.repeat == 0 {
        return Err("--repeat must be at least 1".into());
    }
    Ok(args)
}

/// Loads the corpus `.case` files (sorted by name, so the workload is
/// stable) and appends `gen` generator cases derived from the seed.
fn build_workload(args: &Args) -> Result<Vec<JobSpec>, String> {
    let mut base: Vec<JobSpec> = Vec::new();
    if args.corpus.is_dir() {
        let mut paths: Vec<PathBuf> = std::fs::read_dir(&args.corpus)
            .map_err(|e| format!("cannot read {}: {e}", args.corpus.display()))?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "case"))
            .collect();
        paths.sort();
        for path in paths {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let case = case_from_text(&text).map_err(|e| format!("{}: {e}", path.display()))?;
            base.push(JobSpec::from_case(&case));
        }
    }
    let cfg = GenConfig {
        max_ops: 16,
        kind: KindSel::Auto,
        arch: None,
    };
    for i in 0..args.gen {
        let kernel_seed = args.seed.wrapping_add(i);
        let program = generate(kernel_seed, &cfg);
        let case = Case::from_program(&program, kernel_seed ^ 0xDA7A_5EED);
        base.push(JobSpec::from_case(&case));
    }
    if base.is_empty() {
        return Err(format!(
            "no jobs: {} has no .case files and --gen is 0",
            args.corpus.display()
        ));
    }
    let mut jobs = Vec::with_capacity(base.len() * args.repeat as usize);
    for _ in 0..args.repeat {
        jobs.extend(base.iter().cloned());
    }
    Ok(jobs)
}

struct Completion {
    kind: &'static str,
    key: String,
    cached: bool,
    output_fnv: String,
    stats_json: String,
    reason: String,
    latency_us: u64,
}

impl Completion {
    fn terminal(kind: &'static str, reason: String) -> Completion {
        Completion {
            kind,
            key: String::new(),
            cached: false,
            output_fnv: String::new(),
            stats_json: String::new(),
            reason,
            latency_us: 0,
        }
    }
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    // Nearest-rank.
    let rank = ((p / 100.0) * sorted_us.len() as f64).ceil() as usize;
    sorted_us[rank.clamp(1, sorted_us.len()) - 1]
}

fn run(args: &Args) -> Result<ExitCode, String> {
    let jobs = build_workload(args)?;
    let ids: Vec<String> = (0..jobs.len()).map(|i| format!("j{i:05}")).collect();

    let mut client =
        Client::connect(&args.connect).map_err(|e| format!("connect {}: {e}", args.connect))?;

    // Drain events on a dedicated thread so paced submission never
    // blocks behind a slow completion (open-loop, not closed-loop).
    let mut reader = client.split_reader().map_err(|e| format!("split: {e}"))?;
    let (tx, rx) = channel::<(Instant, Event)>();
    let reader_thread = std::thread::spawn(move || {
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            match Event::from_line(trimmed) {
                Ok(ev) => {
                    if tx.send((Instant::now(), ev)).is_err() {
                        break;
                    }
                }
                Err(e) => eprintln!("tcsim-loadgen: bad event line: {e}"),
            }
        }
    });

    // Submit: one batch line in smoke mode, paced singles otherwise.
    let started = Instant::now();
    let mut submitted_at: HashMap<String, Instant> = HashMap::new();
    if args.smoke {
        let pairs: Vec<(String, JobSpec)> = ids.iter().cloned().zip(jobs.iter().cloned()).collect();
        let now = Instant::now();
        for id in &ids {
            submitted_at.insert(id.clone(), now);
        }
        client
            .send(&Request::Batch { jobs: pairs })
            .map_err(|e| format!("batch submit: {e}"))?;
    } else {
        let mut arrivals = (args.rate > 0.0).then(|| ExpArrivals::new(args.seed, args.rate));
        let mut due = Instant::now();
        for (id, job) in ids.iter().zip(&jobs) {
            if let Some(arrivals) = arrivals.as_mut() {
                let inter = arrivals.next_interval();
                due += Duration::from_secs_f64(inter);
                if let Some(sleep) = due.checked_duration_since(Instant::now()) {
                    std::thread::sleep(sleep);
                }
            }
            submitted_at.insert(id.clone(), Instant::now());
            client
                .send(&Request::Submit {
                    id: id.clone(),
                    job: job.clone(),
                })
                .map_err(|e| format!("submit {id}: {e}"))?;
        }
    }

    // Collect a terminal event per job.
    let mut completions: HashMap<String, Completion> = HashMap::new();
    let mut coalesced = 0u64;
    while completions.len() < jobs.len() {
        let (at, ev) = rx
            .recv_timeout(Duration::from_secs(300))
            .map_err(|_| "timed out waiting for completions".to_string())?;
        match ev {
            Event::Accepted {
                coalesced: true, ..
            } => coalesced += 1,
            Event::Accepted { .. } | Event::Running { .. } | Event::Stats(_) => {}
            Event::Done {
                id,
                key,
                cached,
                output_fnv,
                latency_us: _,
                stats_json,
            } => {
                let latency_us = submitted_at
                    .get(&id)
                    .map(|t| at.duration_since(*t).as_micros() as u64)
                    .unwrap_or(0);
                completions.insert(
                    id,
                    Completion {
                        kind: "done",
                        key,
                        cached,
                        output_fnv,
                        stats_json,
                        reason: String::new(),
                        latency_us,
                    },
                );
            }
            Event::Failed { id, reason } => {
                completions.insert(id, Completion::terminal("failed", reason));
            }
            Event::Rejected { id, reason } => {
                completions.insert(id, Completion::terminal("rejected", reason));
            }
        }
    }
    let wall = started.elapsed().as_secs_f64();

    // Server-side counters for the report. The reply must come through
    // the same reader thread — a second reader on the shared socket
    // would race it for bytes.
    client
        .send(&Request::Stats)
        .map_err(|e| format!("stats request: {e}"))?;
    let server_stats = loop {
        let (_, ev) = rx
            .recv_timeout(Duration::from_secs(30))
            .map_err(|_| "timed out waiting for server stats".to_string())?;
        if let Event::Stats(s) = ev {
            break s;
        }
    };
    if args.shutdown {
        client
            .shutdown_server()
            .map_err(|e| format!("shutdown: {e}"))?;
    }
    // Shut the socket down (not just drop): the reader thread holds its
    // own descriptor clone and would otherwise block in read_line
    // forever, deadlocking the join below.
    let _ = client.close();
    drop(client);
    let _ = reader_thread.join();

    // Aggregate.
    let done: Vec<(&String, &Completion)> = ids
        .iter()
        .filter_map(|id| completions.get(id).map(|c| (id, c)))
        .filter(|(_, c)| c.kind == "done")
        .collect();
    let hits = done.iter().filter(|(_, c)| c.cached).count();
    let failed = completions.values().filter(|c| c.kind == "failed").count();
    let rejected = completions
        .values()
        .filter(|c| c.kind == "rejected")
        .count();
    let hit_rate = if done.is_empty() {
        0.0
    } else {
        hits as f64 / done.len() as f64
    };
    let mut lat: Vec<u64> = done.iter().map(|(_, c)| c.latency_us).collect();
    lat.sort_unstable();
    let (p50, p95, p99) = (
        percentile(&lat, 50.0),
        percentile(&lat, 95.0),
        percentile(&lat, 99.0),
    );

    // Deterministic digest of every completion's content, in id order.
    // Failures are included (their reasons are deterministic); rejects
    // are admission-timing artifacts and only counted.
    let mut digest = Fnv128::new();
    for (id, c) in ids
        .iter()
        .filter_map(|id| completions.get(id).map(|c| (id, c)))
    {
        digest.field(id.as_bytes());
        digest.field(c.kind.as_bytes());
        if c.kind == "done" {
            digest.field(c.key.as_bytes());
            digest.field(c.output_fnv.as_bytes());
            digest.field(c.stats_json.as_bytes());
        } else if c.kind == "failed" {
            digest.field(c.reason.as_bytes());
        }
    }
    let results_digest = digest.hex();

    let mut w = JsonWriter::object();
    w.field_str("schema", "tcsim-serve-loadgen-v1");
    w.field_u64("seed", args.seed);
    w.raw_field("rate_jobs_per_sec", &format!("{:.3}", args.rate));
    w.field_u64("jobs_submitted", ids.len() as u64);
    w.field_u64("done", done.len() as u64);
    w.field_u64("failed", failed as u64);
    w.field_u64("rejected", rejected as u64);
    w.field_u64("cache_hits", hits as u64);
    w.field_u64("coalesced", coalesced);
    w.raw_field("hit_rate", &format!("{hit_rate:.6}"));
    w.raw_field("wall_seconds", &format!("{wall:.6}"));
    w.raw_field(
        "throughput_jobs_per_sec",
        &format!("{:.3}", done.len() as f64 / wall.max(1e-9)),
    );
    w.field_u64("latency_p50_us", p50);
    w.field_u64("latency_p95_us", p95);
    w.field_u64("latency_p99_us", p99);
    w.field_str("results_digest", &results_digest);
    w.raw_field("server", &{
        let mut s = JsonWriter::object();
        s.field_u64("jobs_done", server_stats.jobs_done);
        s.field_u64("cache_hits", server_stats.cache_hits);
        s.field_u64("cache_misses", server_stats.cache_misses);
        s.field_u64("coalesced", server_stats.coalesced);
        s.field_u64("rejected", server_stats.rejected);
        s.field_u64("failed", server_stats.failed);
        s.field_u64("cache_entries", server_stats.cache_entries);
        s.finish()
    });
    let report = w.finish();
    println!("{report}");
    if let Some(path) = &args.json_path {
        std::fs::write(path, format!("{report}\n"))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    eprintln!(
        "tcsim-loadgen: {} job(s): {} done ({} cached, {:.0}% hit), {} failed, \
         {} rejected in {wall:.2}s (p50 {p50}us p95 {p95}us p99 {p99}us)",
        ids.len(),
        done.len(),
        hits,
        hit_rate * 100.0,
        failed,
        rejected
    );

    // Gates.
    if let Some(min) = args.min_hit_rate {
        if hit_rate < min {
            eprintln!("tcsim-loadgen: hit rate {hit_rate:.3} below required {min:.3}");
            return Ok(ExitCode::FAILURE);
        }
    }
    if let Some(prev_path) = &args.expect_digest {
        let prev_text = std::fs::read_to_string(prev_path)
            .map_err(|e| format!("cannot read {}: {e}", prev_path.display()))?;
        let prev = json::parse(&prev_text).map_err(|e| format!("{}: {e}", prev_path.display()))?;
        let want = prev
            .str_field("results_digest")
            .ok_or_else(|| format!("{}: no results_digest", prev_path.display()))?;
        if want != results_digest {
            eprintln!(
                "tcsim-loadgen: results digest {results_digest} differs from {} ({want})",
                prev_path.display()
            );
            return Ok(ExitCode::FAILURE);
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("tcsim-loadgen: {e}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("tcsim-loadgen: {e}");
            ExitCode::FAILURE
        }
    }
}
