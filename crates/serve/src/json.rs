//! A dependency-free JSON value parser and serializer.
//!
//! `tcsim-trace` ships a pure *validator* (`validate_json`); the serve
//! layer additionally needs to read values back out of protocol lines and
//! cached result files, so this module builds an actual tree. Numbers
//! keep their source text ([`JsonValue::Num`] stores the raw token), so a
//! parse → serialize round trip of anything the workspace's `JsonWriter`
//! emits is byte-exact — `u64` counters above 2^53 survive untouched.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
///
/// Object members live in a [`BTreeMap`] plus a side list recording the
/// original key order, so serialization reproduces the input ordering
/// while lookups stay `O(log n)`.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its exact source text.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object: members keyed by name, plus the original key order.
    Object {
        /// Members by key.
        members: BTreeMap<String, JsonValue>,
        /// Keys in source order (serialization order).
        order: Vec<String>,
    },
}

impl JsonValue {
    /// Looks up an object member.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object { members, .. } => members.get(key),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an unsigned integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a bool, if it is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Convenience: `get(key)` then [`JsonValue::as_str`].
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.get(key)?.as_str()
    }

    /// Convenience: `get(key)` then [`JsonValue::as_u64`].
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        self.get(key)?.as_u64()
    }

    /// Serializes the value back to compact JSON (object keys in source
    /// order, numbers verbatim) — the inverse of [`parse`] for any text
    /// with no inter-token whitespace, such as `JsonWriter` output.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Num(raw) => out.push_str(raw),
            JsonValue::Str(s) => write_string(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object { members, order } => {
                out.push('{');
                for (i, key) in order.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, key);
                    out.push(':');
                    members[key].write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: message plus byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for JsonError {}

const MAX_DEPTH: usize = 256;

/// Parses one complete JSON value; trailing data is an error.
pub fn parse(s: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        b: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.b.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.into(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.b[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut members = BTreeMap::new();
        let mut order = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Object { members, order });
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            if members.insert(key.clone(), val).is_some() {
                return Err(self.err(&format!("duplicate key {key:?}")));
            }
            order.push(key);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Object { members, order });
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uXXXX` with a low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let v = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(v).ok_or_else(|| self.err("bad code point"))?
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("bad code point"))?
                            };
                            out.push(c);
                            // hex4 leaves pos past the last digit; undo the
                            // generic advance below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.b[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input was a str");
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.b.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s =
            std::str::from_utf8(&self.b[self.pos..end]).map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Parser| {
            let s = p.pos;
            while p.peek().is_some_and(|c| c.is_ascii_digit()) {
                p.pos += 1;
            }
            p.pos > s
        };
        if !digits(self) {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(self.err("expected exponent digits"));
            }
        }
        let raw = std::str::from_utf8(&self.b[start..self.pos])
            .unwrap()
            .to_string();
        Ok(JsonValue::Num(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_parse() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse(" false ").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1.5e3").unwrap().as_f64(), Some(-1500.0));
        assert_eq!(parse("\"a\\nb\"").unwrap().as_str(), Some("a\nb"));
    }

    #[test]
    fn numbers_keep_source_text() {
        // 2^63 + 1 is not representable in f64; the raw token survives.
        let v = parse("9223372036854775809").unwrap();
        assert_eq!(v.as_u64(), Some(9223372036854775809));
        assert_eq!(v.to_json(), "9223372036854775809");
    }

    #[test]
    fn objects_keep_key_order_and_round_trip() {
        let text = r#"{"zeta":1,"alpha":{"y":[1,2,3],"x":"s"},"mid":null}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.to_json(), text);
        assert_eq!(v.get("alpha").unwrap().str_field("x"), Some("s"));
        assert_eq!(v.u64_field("zeta"), Some(1));
    }

    #[test]
    fn escapes_round_trip() {
        let text = r#"{"k":"a\"b\\c\n\t\r\u0000\u001f"}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.str_field("k"), Some("a\"b\\c\n\t\r\0\u{1f}"));
        assert_eq!(v.to_json(), text);
        // Surrogate pair.
        let v = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1.",
            "1e",
            "\"\\x\"",
            "\"\\ud800\"",
            "{\"a\":1,\"a\":2}",
            "[1] 2",
            "\"unterminated",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn writer_output_validates() {
        let v = parse(r#"{"s":"\u0001β","n":[0.5,-3,1e9]}"#).unwrap();
        tcsim_trace::validate_json(&v.to_json()).expect("round-tripped JSON must validate");
    }
}
