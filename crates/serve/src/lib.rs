//! tcsim-serve: a persistent simulation job server.
//!
//! Reproduction context: "Modeling Deep Learning Accelerator Enabled
//! GPUs" (ISPASS 2019). Conformance campaigns and figure sweeps
//! re-simulate the same (kernel, config, input) points over and over;
//! because the simulator is deterministic (fresh [`tcsim_sim::Gpu`] per
//! job, byte-identical serial/parallel results), those points are
//! *content-addressable*. This crate turns that property into a
//! long-lived server:
//!
//! * [`job`] — the job descriptor, its FNV-1a/128 cache key over
//!   canonical content, and the execution path shared by the serial and
//!   server-side runners;
//! * [`cache`] — the in-memory + on-disk persistent result cache;
//! * [`proto`] — the line-delimited JSON TCP protocol (requests,
//!   streamed progress/completion events, counters);
//! * [`server`] — admission control, per-connection quotas, in-flight
//!   coalescing, and the dispatcher that shards misses across the
//!   [`tcsim_sim::Sweep`] worker pool;
//! * [`client`] — a blocking client used by the load generator, the CI
//!   smoke, and the end-to-end determinism gate;
//! * [`json`] — a byte-exact JSON tree (raw number text, key order
//!   preserved), so cached stats survive the wire verbatim;
//! * [`hash`] — the std-only FNV-1a/128 hasher behind cache keys and
//!   output digests.
//!
//! Everything is `std`-only, in keeping with the workspace rule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod hash;
pub mod job;
pub mod json;
pub mod proto;
pub mod server;

pub use cache::{CacheEntry, ResultCache};
pub use client::Client;
pub use hash::fnv128_hex;
pub use job::{ConfigId, InputSpec, JobOutcome, JobSpec};
pub use proto::{Event, Request, ServerStats};
pub use server::{ServeOptions, Server};

use tcsim_sim::LaunchStats;

/// Checks that a launch's JSON rendering survives a parse → re-serialize
/// round trip byte-identically, and that the tree agrees with the struct
/// on its headline counters. Returns the parsed tree on success.
///
/// This is the glue the whole serve layer stands on: the cache persists
/// `LaunchStats::to_json` output verbatim and the protocol re-parses it
/// at every hop, so any drift between writer and parser would silently
/// corrupt cached results. `to_json` is deliberately lossy (per-launch
/// WMMA samples are summarized), so the round trip is pinned at the JSON
/// tree level, not by reconstructing the struct.
pub fn verify_stats_round_trip(stats: &LaunchStats) -> Result<json::JsonValue, String> {
    let text = stats.to_json();
    let tree = json::parse(&text).map_err(|e| format!("stats JSON does not parse: {e}"))?;
    let re = tree.to_json();
    if re != text {
        return Err(format!(
            "stats JSON does not round-trip byte-identically:\n  wrote: {text}\n  round: {re}"
        ));
    }
    let re_tree = json::parse(&re).map_err(|e| format!("re-serialized stats do not parse: {e}"))?;
    if re_tree != tree {
        return Err("re-parsed stats tree differs from the original".into());
    }
    for (field, want) in [
        ("cycles", stats.cycles),
        ("instructions", stats.instructions),
    ] {
        match tree.u64_field(field) {
            Some(got) if got == want => {}
            got => {
                return Err(format!(
                    "stats JSON field `{field}` is {got:?}, struct says {want}"
                ))
            }
        }
    }
    Ok(tree)
}
