//! The line-delimited JSON wire protocol.
//!
//! Every request and every event is one JSON object on one line
//! (`\n`-terminated, no newlines inside — the workspace `JsonWriter`
//! never emits any). A connection carries any number of requests; the
//! server streams events back as they happen, tagged with the client's
//! job `id`, so responses interleave freely with later submissions.
//!
//! # Requests
//!
//! ```text
//! {"type":"submit","id":"j1","job":{...}}          // one job
//! {"type":"batch","jobs":[{"id":"j1","job":{...}},...]}
//! {"type":"stats"}                                  // server counters
//! {"type":"shutdown"}                               // stop the server
//! ```
//!
//! # Events
//!
//! ```text
//! {"type":"accepted","id":"j1","key":"<32hex>","coalesced":false}
//! {"type":"rejected","id":"j1","reason":"queue-full"}
//! {"type":"running","id":"j1"}
//! {"type":"done","id":"j1","key":"...","cached":true,
//!  "output_fnv":"...","latency_us":123,"stats":{...}}
//! {"type":"failed","id":"j1","reason":"..."}
//! {"type":"stats","jobs_done":1,...}
//! ```
//!
//! `done.stats` is the job's `LaunchStats` JSON **verbatim** — cached
//! and freshly computed completions are byte-identical by contract.

use crate::job::JobSpec;
use crate::json::{self, JsonValue};
use tcsim_sim::JsonWriter;

/// A client → server request.
#[derive(Debug)]
pub enum Request {
    /// Submit one job under a client-chosen id.
    Submit {
        /// Client-chosen job id (echoed on every event).
        id: String,
        /// The job.
        job: JobSpec,
    },
    /// Submit several jobs in one line.
    Batch {
        /// `(id, job)` pairs, processed in order.
        jobs: Vec<(String, JobSpec)>,
    },
    /// Ask for the server counters.
    Stats,
    /// Stop the server (graceful: the current batch finishes).
    Shutdown,
}

impl Request {
    /// Serializes the request as one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Request::Submit { id, job } => {
                let mut w = JsonWriter::object();
                w.field_str("type", "submit");
                w.field_str("id", id);
                w.raw_field("job", &job.to_json());
                w.finish()
            }
            Request::Batch { jobs } => {
                let mut w = JsonWriter::object();
                w.field_str("type", "batch");
                let items: Vec<String> = jobs
                    .iter()
                    .map(|(id, job)| {
                        let mut jw = JsonWriter::object();
                        jw.field_str("id", id);
                        jw.raw_field("job", &job.to_json());
                        jw.finish()
                    })
                    .collect();
                w.raw_field("jobs", &format!("[{}]", items.join(",")));
                w.finish()
            }
            Request::Stats => r#"{"type":"stats"}"#.into(),
            Request::Shutdown => r#"{"type":"shutdown"}"#.into(),
        }
    }

    /// Parses one protocol line.
    pub fn from_line(line: &str) -> Result<Request, String> {
        let v = json::parse(line).map_err(|e| format!("bad request JSON: {e}"))?;
        let ty = v
            .str_field("type")
            .ok_or("request: missing string `type`")?;
        match ty {
            "submit" => {
                let id = request_id(&v)?;
                let job = v.get("job").ok_or("submit: missing `job`")?;
                let job = JobSpec::from_json(job)?;
                Ok(Request::Submit { id, job })
            }
            "batch" => {
                let items = v
                    .get("jobs")
                    .and_then(|j| j.as_array())
                    .ok_or("batch: missing array `jobs`")?;
                let mut jobs = Vec::with_capacity(items.len());
                for item in items {
                    let id = request_id(item)?;
                    let job = item.get("job").ok_or("batch: entry missing `job`")?;
                    jobs.push((id, JobSpec::from_json(job)?));
                }
                Ok(Request::Batch { jobs })
            }
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown request type {other:?}")),
        }
    }
}

fn request_id(v: &JsonValue) -> Result<String, String> {
    let id = v.str_field("id").ok_or("request: missing string `id`")?;
    if id.is_empty() || id.len() > 128 {
        return Err("request: `id` must be 1..=128 characters".into());
    }
    Ok(id.to_string())
}

/// Aggregate server counters (the `stats` event payload).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Jobs completed (cached or computed).
    pub jobs_done: u64,
    /// Completions served from the cache.
    pub cache_hits: u64,
    /// Jobs that had to be computed.
    pub cache_misses: u64,
    /// Submissions attached to an identical in-flight job.
    pub coalesced: u64,
    /// Submissions refused by admission control.
    pub rejected: u64,
    /// Jobs that failed validation or launch.
    pub failed: u64,
    /// Jobs currently queued.
    pub queue_depth: u64,
    /// Distinct jobs currently queued or running.
    pub in_flight: u64,
    /// Entries resident in the result cache.
    pub cache_entries: u64,
}

/// A server → client event.
#[derive(Debug, PartialEq)]
pub enum Event {
    /// The job was admitted (queued, or attached to an in-flight twin).
    Accepted {
        /// Echoed job id.
        id: String,
        /// The job's cache key.
        key: String,
        /// Whether it was coalesced onto an identical in-flight job.
        coalesced: bool,
    },
    /// The job was refused by admission control or failed to validate.
    Rejected {
        /// Echoed job id.
        id: String,
        /// `queue-full`, `quota-exceeded`, or a validation message.
        reason: String,
    },
    /// The job's batch started executing.
    Running {
        /// Echoed job id.
        id: String,
    },
    /// The job completed.
    Done {
        /// Echoed job id.
        id: String,
        /// The job's cache key.
        key: String,
        /// Served from the cache (no simulation ran).
        cached: bool,
        /// FNV-1a/128 digest of the output buffer.
        output_fnv: String,
        /// Server-side latency from admission to completion, in µs.
        latency_us: u64,
        /// The launch's `LaunchStats` JSON, verbatim.
        stats_json: String,
    },
    /// The job ran but the launch failed (verifier/launch error).
    Failed {
        /// Echoed job id.
        id: String,
        /// The launch error text.
        reason: String,
    },
    /// Server counters, in response to a `stats` request.
    Stats(ServerStats),
}

impl Event {
    /// Serializes the event as one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut w = JsonWriter::object();
        match self {
            Event::Accepted { id, key, coalesced } => {
                w.field_str("type", "accepted");
                w.field_str("id", id);
                w.field_str("key", key);
                w.raw_field("coalesced", if *coalesced { "true" } else { "false" });
            }
            Event::Rejected { id, reason } => {
                w.field_str("type", "rejected");
                w.field_str("id", id);
                w.field_str("reason", reason);
            }
            Event::Running { id } => {
                w.field_str("type", "running");
                w.field_str("id", id);
            }
            Event::Done {
                id,
                key,
                cached,
                output_fnv,
                latency_us,
                stats_json,
            } => {
                w.field_str("type", "done");
                w.field_str("id", id);
                w.field_str("key", key);
                w.raw_field("cached", if *cached { "true" } else { "false" });
                w.field_str("output_fnv", output_fnv);
                w.field_u64("latency_us", *latency_us);
                w.raw_field("stats", stats_json);
            }
            Event::Failed { id, reason } => {
                w.field_str("type", "failed");
                w.field_str("id", id);
                w.field_str("reason", reason);
            }
            Event::Stats(s) => {
                w.field_str("type", "stats");
                w.field_u64("jobs_done", s.jobs_done);
                w.field_u64("cache_hits", s.cache_hits);
                w.field_u64("cache_misses", s.cache_misses);
                w.field_u64("coalesced", s.coalesced);
                w.field_u64("rejected", s.rejected);
                w.field_u64("failed", s.failed);
                w.field_u64("queue_depth", s.queue_depth);
                w.field_u64("in_flight", s.in_flight);
                w.field_u64("cache_entries", s.cache_entries);
            }
        }
        w.finish()
    }

    /// Parses one protocol line.
    pub fn from_line(line: &str) -> Result<Event, String> {
        let v = json::parse(line).map_err(|e| format!("bad event JSON: {e}"))?;
        let ty = v.str_field("type").ok_or("event: missing string `type`")?;
        let id = || -> Result<String, String> {
            Ok(v.str_field("id").ok_or("event: missing `id`")?.to_string())
        };
        let s = |key: &str| -> Result<String, String> {
            Ok(v.str_field(key)
                .ok_or_else(|| format!("event: missing `{key}`"))?
                .to_string())
        };
        match ty {
            "accepted" => Ok(Event::Accepted {
                id: id()?,
                key: s("key")?,
                coalesced: v
                    .get("coalesced")
                    .and_then(|b| b.as_bool())
                    .ok_or("accepted: missing `coalesced`")?,
            }),
            "rejected" => Ok(Event::Rejected {
                id: id()?,
                reason: s("reason")?,
            }),
            "running" => Ok(Event::Running { id: id()? }),
            "done" => Ok(Event::Done {
                id: id()?,
                key: s("key")?,
                cached: v
                    .get("cached")
                    .and_then(|b| b.as_bool())
                    .ok_or("done: missing `cached`")?,
                output_fnv: s("output_fnv")?,
                latency_us: v
                    .u64_field("latency_us")
                    .ok_or("done: missing `latency_us`")?,
                // Re-serializing the parsed tree reproduces the wire bytes
                // exactly (keys in order, numbers verbatim), so `stats_json`
                // round-trips byte-identically through the protocol.
                stats_json: v.get("stats").ok_or("done: missing `stats`")?.to_json(),
            }),
            "failed" => Ok(Event::Failed {
                id: id()?,
                reason: s("reason")?,
            }),
            "stats" => {
                let u = |key: &str| -> Result<u64, String> {
                    v.u64_field(key)
                        .ok_or_else(|| format!("stats: missing `{key}`"))
                };
                Ok(Event::Stats(ServerStats {
                    jobs_done: u("jobs_done")?,
                    cache_hits: u("cache_hits")?,
                    cache_misses: u("cache_misses")?,
                    coalesced: u("coalesced")?,
                    rejected: u("rejected")?,
                    failed: u("failed")?,
                    queue_depth: u("queue_depth")?,
                    in_flight: u("in_flight")?,
                    cache_entries: u("cache_entries")?,
                }))
            }
            other => Err(format!("unknown event type {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        for line in [r#"{"type":"stats"}"#, r#"{"type":"shutdown"}"#] {
            let req = Request::from_line(line).expect("parse");
            assert_eq!(req.to_line(), line);
        }
    }

    #[test]
    fn events_round_trip() {
        let events = [
            Event::Accepted {
                id: "j1".into(),
                key: "a".repeat(32),
                coalesced: true,
            },
            Event::Rejected {
                id: "j2".into(),
                reason: "queue-full".into(),
            },
            Event::Running { id: "j3".into() },
            Event::Done {
                id: "j4".into(),
                key: "b".repeat(32),
                cached: false,
                output_fnv: "c".repeat(32),
                latency_us: 12345,
                stats_json: r#"{"cycles":99,"ipc":0.500000,"trace":null}"#.into(),
            },
            Event::Failed {
                id: "j5".into(),
                reason: "boom\nline2".into(),
            },
            Event::Stats(ServerStats {
                jobs_done: 7,
                cache_hits: 3,
                ..Default::default()
            }),
        ];
        for ev in events {
            let line = ev.to_line();
            assert!(!line.contains('\n'), "events must be single lines: {line}");
            tcsim_trace::validate_json(&line).expect("event line must be valid JSON");
            let back = Event::from_line(&line).expect("parse");
            assert_eq!(back, ev);
            // Re-encoding the parsed event reproduces the wire bytes.
            assert_eq!(back.to_line(), line);
        }
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for bad in [
            "",
            "garbage",
            r#"{"type":"nope"}"#,
            r#"{"type":"submit"}"#,
            r#"{"type":"submit","id":"","job":{}}"#,
            r#"{"type":"batch","jobs":[{"id":"x"}]}"#,
        ] {
            assert!(Request::from_line(bad).is_err(), "accepted {bad:?}");
        }
    }
}
