//! Simulation job descriptors: what a client submits, how it is hashed
//! into a cache key, and how a worker executes it.
//!
//! A job is the serve-layer mirror of one [`tcsim_sim::LaunchBuilder`]
//! launch: a kernel in the workspace PTX dialect, a named GPU
//! configuration, the `SimOptions`-relevant core-model switch, launch
//! geometry, and the input buffer (either materialized inline or as a
//! seeded deterministic stream shared with the `tcsim-check` case
//! format). Kernels follow the conformance-corpus calling convention —
//! exactly two `u64` pointer parameters, input then output.
//!
//! # Cache key
//!
//! [`JobSpec::cache_key`] is an FNV-1a/128 digest over the *canonical*
//! job content, with every field length-prefixed (injective framing):
//!
//! 1. the format magic `tcsim-serve job v1`;
//! 2. the kernel re-emitted by [`tcsim_isa::emit::emit_kernel`] — two
//!    textually different submissions of the same program dedupe;
//! 3. the full `Debug` rendering of the resolved [`GpuConfig`] (every
//!    architectural parameter, not the registry name);
//! 4. the core model (`event`/`cycle` — the two cores are contractually
//!    byte-identical, but the key stays conservative so a conformance
//!    campaign can cache both sides separately);
//! 5. grid and block extents;
//! 6. the **materialized input bytes** (so a seeded stream and an inline
//!    buffer with equal contents dedupe) and the output size.
//!
//! The determinism contract of the simulator (fresh [`Gpu`] per job, no
//! global state) is what makes this key sound: equal keys ⇒ equal
//! content ⇒ byte-identical [`LaunchStats`] JSON and output digest.

use crate::hash::{fnv128_hex, Fnv128};
use crate::json::JsonValue;
use tcsim_check::gen::Arch;
use tcsim_check::oracle::{self, Case, DataKind};
use tcsim_isa::{Dim3, Kernel};
use tcsim_sim::{CoreModel, Gpu, GpuConfig, JsonWriter, LaunchBuilder, LaunchStats, SimOptions};

/// Hard per-job size ceilings (words of 4 bytes): admission control for
/// memory, enforced by [`JobSpec::validate`] before anything is
/// allocated. 1 Mi words = 4 MiB per buffer.
pub const MAX_BUFFER_WORDS: u32 = 1 << 20;

/// Named GPU configurations a job may request.
///
/// The wire protocol carries the *name*; the cache key hashes the
/// *resolved parameters*, so renaming an entry never poisons the cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigId {
    /// Down-scaled Volta (2 SMs) — the differential-test config.
    Mini,
    /// Down-scaled Turing (2 SMs).
    MiniTuring,
    /// Down-scaled Ampere (2 SMs, mma.sync enabled).
    MiniAmpere,
    /// NVIDIA Titan V (80 SMs, Volta).
    TitanV,
    /// NVIDIA RTX 2080 (46 SMs, Turing).
    Rtx2080,
    /// NVIDIA Tesla T4 (40 SMs, Turing).
    TeslaT4,
}

impl ConfigId {
    /// The wire-protocol spelling.
    pub fn name(self) -> &'static str {
        match self {
            ConfigId::Mini => "mini",
            ConfigId::MiniTuring => "mini-turing",
            ConfigId::MiniAmpere => "mini-ampere",
            ConfigId::TitanV => "titan-v",
            ConfigId::Rtx2080 => "rtx-2080",
            ConfigId::TeslaT4 => "tesla-t4",
        }
    }

    /// Parses the wire-protocol spelling.
    pub fn from_name(s: &str) -> Option<ConfigId> {
        match s {
            "mini" => Some(ConfigId::Mini),
            "mini-turing" => Some(ConfigId::MiniTuring),
            "mini-ampere" => Some(ConfigId::MiniAmpere),
            "titan-v" => Some(ConfigId::TitanV),
            "rtx-2080" => Some(ConfigId::Rtx2080),
            "tesla-t4" => Some(ConfigId::TeslaT4),
            _ => None,
        }
    }

    /// Resolves to the full configuration.
    pub fn to_config(self) -> GpuConfig {
        match self {
            ConfigId::Mini => oracle::gpu_config(Arch::Volta),
            ConfigId::MiniTuring => oracle::gpu_config(Arch::Turing),
            ConfigId::MiniAmpere => oracle::gpu_config(Arch::Ampere),
            ConfigId::TitanV => GpuConfig::titan_v(),
            ConfigId::Rtx2080 => GpuConfig::rtx_2080(),
            ConfigId::TeslaT4 => GpuConfig::tesla_t4(),
        }
    }

    /// The mini config matching a conformance-case architecture.
    pub fn for_arch(arch: Arch) -> ConfigId {
        match arch {
            Arch::Volta => ConfigId::Mini,
            Arch::Turing => ConfigId::MiniTuring,
            Arch::Ampere => ConfigId::MiniAmpere,
        }
    }
}

/// The job's input buffer: materialized bytes or a seeded stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InputSpec {
    /// The deterministic stream of the `tcsim-check` case format
    /// ([`oracle::input_bytes`]).
    Seeded {
        /// Data pattern.
        kind: DataKind,
        /// Stream seed.
        seed: u64,
        /// Buffer size in 4-byte words.
        words: u32,
    },
    /// Client-supplied bytes (length must be a multiple of 4).
    Inline(Vec<u8>),
}

impl InputSpec {
    /// Materializes the buffer contents.
    pub fn bytes(&self) -> Vec<u8> {
        match self {
            InputSpec::Seeded { kind, seed, words } => oracle::input_bytes(*kind, *seed, *words),
            InputSpec::Inline(bytes) => bytes.clone(),
        }
    }

    /// Buffer size in 4-byte words.
    pub fn words(&self) -> u32 {
        match self {
            InputSpec::Seeded { words, .. } => *words,
            InputSpec::Inline(bytes) => (bytes.len() / 4) as u32,
        }
    }
}

/// One fully specified simulation job.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Kernel to run (two `u64` pointer params: input, output).
    pub kernel: Kernel,
    /// GPU configuration to build the fresh [`Gpu`] from.
    pub config: ConfigId,
    /// SM-core simulation loop (`SimOptions`-relevant field).
    pub core: CoreModel,
    /// Grid extent in CTAs.
    pub grid: Dim3,
    /// CTA extent in threads.
    pub block: Dim3,
    /// Input buffer.
    pub input: InputSpec,
    /// Output buffer size in 4-byte words.
    pub out_words: u32,
}

/// Artifacts of one executed job — exactly what the cache persists.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobOutcome {
    /// The launch's [`LaunchStats::to_json`] rendering, verbatim. Byte
    /// identity of this string is the serve determinism contract.
    pub stats_json: String,
    /// FNV-1a/128 digest of the output buffer after the launch.
    pub output_fnv: String,
}

fn core_name(core: CoreModel) -> &'static str {
    match core {
        CoreModel::EventDriven => "event",
        CoreModel::CycleStepped => "cycle",
    }
}

fn core_from_name(s: &str) -> Option<CoreModel> {
    match s {
        "event" => Some(CoreModel::EventDriven),
        "cycle" => Some(CoreModel::CycleStepped),
        _ => None,
    }
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn hex_decode(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("odd-length hex string".into());
    }
    (0..s.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(s.get(i..i + 2).ok_or("non-ASCII hex")?, 16)
                .map_err(|e| format!("bad hex byte at {i}: {e}"))
        })
        .collect()
}

impl JobSpec {
    /// Builds a job from a conformance-suite [`Case`] (mini config for
    /// the case's architecture, event-driven core).
    pub fn from_case(case: &Case) -> JobSpec {
        JobSpec {
            kernel: case.kernel.clone(),
            config: ConfigId::for_arch(case.arch),
            core: CoreModel::EventDriven,
            grid: Dim3::x(case.grid_x),
            block: Dim3::x(case.block_x),
            input: InputSpec::Seeded {
                kind: case.data,
                seed: case.data_seed,
                words: case.in_words,
            },
            out_words: case.out_words,
        }
    }

    /// The kernel in canonical emitted form (also the hashed form).
    pub fn kernel_text(&self) -> String {
        tcsim_isa::emit::emit_kernel(&self.kernel)
    }

    /// Structural admission checks, run before hashing or execution:
    /// the two-pointer calling convention, non-zero geometry, and the
    /// [`MAX_BUFFER_WORDS`] size ceilings. Launch-time resource checks
    /// (register/shared-memory oversubscription, verifier findings) are
    /// reported later by [`JobSpec::run_on`].
    pub fn validate(&self) -> Result<(), String> {
        let params = self.kernel.params();
        if params.len() != 2 || params.iter().any(|p| p.bytes != 8) {
            return Err(format!(
                "kernel {} must declare exactly two u64 pointer params (in, out)",
                self.kernel.name()
            ));
        }
        for (what, d) in [("grid", self.grid), ("block", self.block)] {
            if d.x == 0 || d.y == 0 || d.z == 0 {
                return Err(format!("{what} extent {d} has a zero dimension"));
            }
        }
        if let InputSpec::Inline(bytes) = &self.input {
            if bytes.len() % 4 != 0 {
                return Err("inline input length must be a multiple of 4".into());
            }
        }
        let in_words = self.input.words();
        if in_words == 0 || self.out_words == 0 {
            return Err("input and output buffers must be non-empty".into());
        }
        if in_words > MAX_BUFFER_WORDS || self.out_words > MAX_BUFFER_WORDS {
            return Err(format!(
                "buffer sizes ({in_words}, {}) exceed the {MAX_BUFFER_WORDS}-word ceiling",
                self.out_words
            ));
        }
        Ok(())
    }

    /// The content-addressed cache key (32 hex chars; see the module
    /// docs for exactly what is hashed).
    pub fn cache_key(&self) -> String {
        let mut h = Fnv128::new();
        h.field(b"tcsim-serve job v1");
        h.field(self.kernel_text().as_bytes());
        h.field(format!("{:?}", self.config.to_config()).as_bytes());
        h.field(core_name(self.core).as_bytes());
        for d in [self.grid, self.block] {
            h.u64(u64::from(d.x))
                .u64(u64::from(d.y))
                .u64(u64::from(d.z));
        }
        h.field(&self.input.bytes());
        h.u64(u64::from(self.out_words));
        h.hex()
    }

    /// Runs the job on a fresh GPU built from its own config — the
    /// serial (no-server) execution path, byte-identical to what the
    /// server's sweep workers produce.
    pub fn run(&self) -> Result<JobOutcome, String> {
        let mut gpu = Gpu::new(SimOptions::new(self.config.to_config()).core(self.core));
        self.run_on(&mut gpu)
    }

    /// Runs the job on `gpu`, which **must** be freshly built from
    /// [`JobSpec::config`] (the sweep engine's fresh-Gpu-per-job
    /// contract; a reused GPU would shift device addresses and break
    /// cache-key soundness).
    pub fn run_on(&self, gpu: &mut Gpu) -> Result<JobOutcome, String> {
        self.validate()?;
        let input = self.input.bytes();
        let in_addr = gpu.alloc(input.len() as u64);
        let out_len = self.out_words as usize * 4;
        let out_addr = gpu.alloc(out_len as u64);
        gpu.memcpy_h2d(in_addr, &input);
        let stats: LaunchStats = LaunchBuilder::new(self.kernel.clone())
            .grid(self.grid)
            .block(self.block)
            .param_u64(in_addr)
            .param_u64(out_addr)
            .try_launch(gpu)
            .map_err(|e| e.to_string())?;
        let out = gpu.memcpy_d2h(out_addr, out_len);
        Ok(JobOutcome {
            stats_json: stats.to_json(),
            output_fnv: fnv128_hex(&out),
        })
    }

    /// Serializes the job as the protocol's JSON object.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::object();
        w.field_str("kernel", &self.kernel_text());
        w.field_str("config", self.config.name());
        w.field_str("core", core_name(self.core));
        w.raw_field(
            "grid",
            &format!("[{},{},{}]", self.grid.x, self.grid.y, self.grid.z),
        );
        w.raw_field(
            "block",
            &format!("[{},{},{}]", self.block.x, self.block.y, self.block.z),
        );
        match &self.input {
            InputSpec::Seeded { kind, seed, words } => {
                w.field_str("data", kind.qualifier());
                w.field_u64("data_seed", *seed);
                w.field_u64("in_words", u64::from(*words));
            }
            InputSpec::Inline(bytes) => {
                w.field_str("data", "inline");
                w.field_str("input_hex", &hex_encode(bytes));
            }
        }
        w.field_u64("out_words", u64::from(self.out_words));
        w.finish()
    }

    /// Parses the protocol's JSON object back into a job.
    pub fn from_json(v: &JsonValue) -> Result<JobSpec, String> {
        let kernel_text = v
            .str_field("kernel")
            .ok_or("job: missing string `kernel`")?;
        let kernel = tcsim_isa::ptx::parse_kernel(kernel_text)
            .map_err(|e| format!("job: kernel does not parse: {e}"))?;
        let config = v
            .str_field("config")
            .and_then(ConfigId::from_name)
            .ok_or("job: missing or unknown `config`")?;
        let core = v
            .str_field("core")
            .and_then(core_from_name)
            .ok_or("job: missing or unknown `core`")?;
        let dim = |key: &str| -> Result<Dim3, String> {
            let arr = v
                .get(key)
                .and_then(|d| d.as_array())
                .ok_or_else(|| format!("job: missing array `{key}`"))?;
            if arr.len() != 3 {
                return Err(format!("job: `{key}` must have 3 elements"));
            }
            let mut out = [0u32; 3];
            for (slot, item) in out.iter_mut().zip(arr) {
                *slot = item
                    .as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| format!("job: bad `{key}` element"))?;
            }
            Ok(Dim3::new(out[0], out[1], out[2]))
        };
        let data = v.str_field("data").ok_or("job: missing string `data`")?;
        let input = if data == "inline" {
            let hex = v
                .str_field("input_hex")
                .ok_or("job: inline data needs `input_hex`")?;
            InputSpec::Inline(hex_decode(hex)?)
        } else {
            let kind = DataKind::from_qualifier(data)
                .ok_or_else(|| format!("job: unknown data kind {data:?}"))?;
            let seed = v.u64_field("data_seed").ok_or("job: missing `data_seed`")?;
            let words = v
                .u64_field("in_words")
                .and_then(|n| u32::try_from(n).ok())
                .ok_or("job: missing `in_words`")?;
            InputSpec::Seeded { kind, seed, words }
        };
        let out_words = v
            .u64_field("out_words")
            .and_then(|n| u32::try_from(n).ok())
            .ok_or("job: missing `out_words`")?;
        Ok(JobSpec {
            kernel,
            config,
            core,
            grid: dim("grid")?,
            block: dim("block")?,
            input,
            out_words,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use tcsim_isa::{KernelBuilder, MemWidth, Operand, SpecialReg};

    /// `out[tid] = in[tid] + bias` over one warp — a minimal two-pointer
    /// kernel in the serve calling convention.
    pub(crate) fn test_kernel(bias: i32) -> Kernel {
        let mut b = KernelBuilder::new("serve_add");
        let p_in = b.param_u64("in");
        let p_out = b.param_u64("out");
        let src = b.reg_pair();
        b.ld_param(MemWidth::B64, src, p_in);
        let dst = b.reg_pair();
        b.ld_param(MemWidth::B64, dst, p_out);
        let tid = b.reg();
        b.mov(tid, Operand::Special(SpecialReg::TidX));
        let addr = b.reg_pair();
        b.imad_wide(addr, tid, Operand::Imm(4), src);
        let v = b.reg();
        b.ld_global(MemWidth::B32, v, addr, 0);
        b.iadd(v, v, Operand::Imm(i64::from(bias)));
        let addr2 = b.reg_pair();
        b.imad_wide(addr2, tid, Operand::Imm(4), dst);
        b.st_global(MemWidth::B32, addr2, 0, v);
        b.exit();
        b.build()
    }

    pub(crate) fn test_spec() -> JobSpec {
        JobSpec {
            kernel: test_kernel(1),
            config: ConfigId::Mini,
            core: CoreModel::EventDriven,
            grid: Dim3::x(1),
            block: Dim3::x(32),
            input: InputSpec::Seeded {
                kind: DataKind::Raw,
                seed: 7,
                words: 32,
            },
            out_words: 32,
        }
    }

    #[test]
    fn job_round_trips_through_json() {
        for spec in [test_spec(), {
            let mut s = test_spec();
            s.input = InputSpec::Inline(vec![1, 2, 3, 4, 5, 6, 7, 8]);
            s.config = ConfigId::MiniTuring;
            s.core = CoreModel::CycleStepped;
            s.grid = Dim3::new(2, 3, 1);
            s
        }] {
            let text = spec.to_json();
            let back = JobSpec::from_json(&json::parse(&text).unwrap()).unwrap();
            assert_eq!(back.kernel_text(), spec.kernel_text());
            assert_eq!(back.config, spec.config);
            assert_eq!(back.core, spec.core);
            assert_eq!(back.grid, spec.grid);
            assert_eq!(back.block, spec.block);
            assert_eq!(back.input, spec.input);
            assert_eq!(back.out_words, spec.out_words);
            assert_eq!(back.cache_key(), spec.cache_key());
        }
    }

    #[test]
    fn run_is_deterministic_and_correct() {
        let spec = test_spec();
        let a = spec.run().expect("run");
        let b = spec.run().expect("run");
        assert_eq!(a, b, "two fresh runs must be byte-identical");
        // Output digest actually reflects the computation: in[i] + 1.
        let input = spec.input.bytes();
        let expect: Vec<u8> = input
            .chunks(4)
            .flat_map(|w| (u32::from_le_bytes(w.try_into().unwrap()).wrapping_add(1)).to_le_bytes())
            .collect();
        assert_eq!(a.output_fnv, fnv128_hex(&expect));
    }

    #[test]
    fn validate_rejects_malformed_jobs() {
        let mut s = test_spec();
        s.grid = Dim3::new(0, 1, 1);
        assert!(s.validate().unwrap_err().contains("zero dimension"));
        let mut s = test_spec();
        s.out_words = 0;
        assert!(s.validate().is_err());
        let mut s = test_spec();
        s.out_words = MAX_BUFFER_WORDS + 1;
        assert!(s.validate().unwrap_err().contains("ceiling"));
        let mut s = test_spec();
        s.input = InputSpec::Inline(vec![1, 2, 3]);
        assert!(s.validate().unwrap_err().contains("multiple of 4"));
        // Wrong calling convention: a kernel with one param.
        let mut b = KernelBuilder::new("one_param");
        b.param_u64("only");
        b.exit();
        let mut s = test_spec();
        s.kernel = b.build();
        assert!(s.validate().unwrap_err().contains("two u64 pointer params"));
    }

    #[test]
    fn seeded_and_inline_inputs_with_equal_bytes_share_a_key() {
        let seeded = test_spec();
        let mut inline = test_spec();
        inline.input = InputSpec::Inline(seeded.input.bytes());
        assert_eq!(seeded.cache_key(), inline.cache_key());
    }

    #[test]
    fn hex_codec_round_trips() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(hex_decode(&hex_encode(&bytes)).unwrap(), bytes);
        assert!(hex_decode("abc").is_err());
        assert!(hex_decode("zz").is_err());
    }
}
