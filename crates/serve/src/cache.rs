//! The content-addressed result cache: an in-memory map backed by an
//! optional on-disk directory, so a restarted server keeps serving hits.
//!
//! # On-disk format
//!
//! One file per key, `<key>.tcres`, written atomically (temp file +
//! rename):
//!
//! ```text
//! tcsim-serve result v1
//! key: 6c62272e07bb014262b821756295c58d
//! output-fnv: d228cb696f1a8caf78912b704e4a8964
//! {"cycles":123,...}
//! ```
//!
//! The stats line is the launch's [`LaunchStats::to_json`] output
//! **verbatim** — a cache hit streams exactly the bytes a cold run would
//! have produced, which is what the end-to-end determinism gate pins.
//! Files that fail any structural check (bad magic, key/filename
//! mismatch, stats that do not parse as JSON) are skipped on load, never
//! trusted.
//!
//! [`LaunchStats::to_json`]: tcsim_sim::LaunchStats::to_json

use crate::job::JobOutcome;
use crate::json;
use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const MAGIC: &str = "tcsim-serve result v1";

/// One cached job result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheEntry {
    /// The job's content hash.
    pub key: String,
    /// The executed outcome (stats JSON + output digest).
    pub outcome: JobOutcome,
}

fn entry_to_text(e: &CacheEntry) -> String {
    format!(
        "{MAGIC}\nkey: {}\noutput-fnv: {}\n{}\n",
        e.key, e.outcome.output_fnv, e.outcome.stats_json
    )
}

fn entry_from_text(text: &str) -> Result<CacheEntry, String> {
    let mut lines = text.lines();
    if lines.next() != Some(MAGIC) {
        return Err(format!("missing `{MAGIC}` magic"));
    }
    let key = lines
        .next()
        .and_then(|l| l.strip_prefix("key: "))
        .ok_or("missing `key:` line")?
        .to_string();
    let output_fnv = lines
        .next()
        .and_then(|l| l.strip_prefix("output-fnv: "))
        .ok_or("missing `output-fnv:` line")?
        .to_string();
    let stats_json = lines.next().ok_or("missing stats line")?.to_string();
    if lines.next().is_some() {
        return Err("trailing data after stats line".into());
    }
    if key.len() != 32 || !key.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(format!("malformed key {key:?}"));
    }
    json::parse(&stats_json).map_err(|e| format!("stats do not parse: {e}"))?;
    Ok(CacheEntry {
        key,
        outcome: JobOutcome {
            stats_json,
            output_fnv,
        },
    })
}

/// The server's result cache.
pub struct ResultCache {
    dir: Option<PathBuf>,
    mem: HashMap<String, Arc<CacheEntry>>,
    /// Entries loaded from disk at open time (restart warm-start count).
    loaded: usize,
}

impl ResultCache {
    /// An in-memory-only cache (no persistence).
    pub fn in_memory() -> ResultCache {
        ResultCache {
            dir: None,
            mem: HashMap::new(),
            loaded: 0,
        }
    }

    /// Opens (and creates) the persistent cache at `dir`, loading every
    /// valid `*.tcres` entry. Corrupt or mismatched files are ignored.
    pub fn open(dir: &Path) -> io::Result<ResultCache> {
        fs::create_dir_all(dir)?;
        let mut mem = HashMap::new();
        let mut names: Vec<PathBuf> = fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "tcres"))
            .collect();
        names.sort();
        for path in names {
            let Ok(text) = fs::read_to_string(&path) else {
                continue;
            };
            let Ok(entry) = entry_from_text(&text) else {
                continue;
            };
            // The filename is the key: a renamed file must not alias
            // another job's result.
            if path.file_stem().and_then(|s| s.to_str()) != Some(entry.key.as_str()) {
                continue;
            }
            mem.insert(entry.key.clone(), Arc::new(entry));
        }
        let loaded = mem.len();
        Ok(ResultCache {
            dir: Some(dir.to_path_buf()),
            mem,
            loaded,
        })
    }

    /// Number of entries resident in memory.
    pub fn len(&self) -> usize {
        self.mem.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.mem.is_empty()
    }

    /// Entries that were warm-loaded from disk when the cache opened.
    pub fn loaded_from_disk(&self) -> usize {
        self.loaded
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<Arc<CacheEntry>> {
        self.mem.get(key).cloned()
    }

    /// Inserts an entry, persisting it to disk when a directory is
    /// configured. Disk failures are returned but the in-memory insert
    /// always succeeds first (a full disk degrades to a warm cache, not
    /// a broken server).
    pub fn insert(&mut self, entry: CacheEntry) -> io::Result<Arc<CacheEntry>> {
        let entry = Arc::new(entry);
        self.mem.insert(entry.key.clone(), entry.clone());
        if let Some(dir) = &self.dir {
            let tmp = dir.join(format!("{}.tmp", entry.key));
            let path = dir.join(format!("{}.tcres", entry.key));
            fs::write(&tmp, entry_to_text(&entry))?;
            fs::rename(&tmp, &path)?;
        }
        Ok(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(key_fill: char) -> CacheEntry {
        CacheEntry {
            key: key_fill.to_string().repeat(32),
            outcome: JobOutcome {
                stats_json: r#"{"cycles":42,"instructions":7}"#.into(),
                output_fnv: "0".repeat(32),
            },
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tcsim-serve-cache-test-{}-{tag}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn text_format_round_trips() {
        let e = entry('a');
        let back = entry_from_text(&entry_to_text(&e)).expect("parse");
        assert_eq!(back, e);
    }

    #[test]
    fn corrupt_entries_are_rejected() {
        assert!(entry_from_text("nope").is_err());
        let e = entry('b');
        let good = entry_to_text(&e);
        // Truncated stats line.
        assert!(entry_from_text(good.rsplit_once('{').unwrap().0).is_err());
        // Stats that are not JSON.
        let bad = good.replace(&e.outcome.stats_json, "not json");
        assert!(entry_from_text(&bad).is_err());
        // Key that is not 32 hex chars.
        let bad = good.replace(&e.key, "short");
        assert!(entry_from_text(&bad).is_err());
    }

    #[test]
    fn persists_and_reloads() {
        let dir = tmp_dir("reload");
        {
            let mut c = ResultCache::open(&dir).expect("open");
            assert_eq!(c.loaded_from_disk(), 0);
            c.insert(entry('a')).expect("insert");
            c.insert(entry('b')).expect("insert");
            assert_eq!(c.len(), 2);
        }
        let c = ResultCache::open(&dir).expect("reopen");
        assert_eq!(c.loaded_from_disk(), 2);
        assert_eq!(
            c.get(&"a".repeat(32)).expect("hit").outcome.stats_json,
            r#"{"cycles":42,"instructions":7}"#
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reload_skips_corrupt_and_renamed_files() {
        let dir = tmp_dir("skip");
        let mut c = ResultCache::open(&dir).expect("open");
        c.insert(entry('a')).expect("insert");
        // A corrupt file and a valid entry under the wrong filename.
        fs::write(dir.join(format!("{}.tcres", "c".repeat(32))), "garbage").unwrap();
        fs::write(
            dir.join(format!("{}.tcres", "d".repeat(32))),
            entry_to_text(&entry('b')),
        )
        .unwrap();
        let c = ResultCache::open(&dir).expect("reopen");
        assert_eq!(c.loaded_from_disk(), 1, "only the honest entry survives");
        assert!(c.get(&"b".repeat(32)).is_none());
        assert!(c.get(&"d".repeat(32)).is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn in_memory_cache_works_without_a_directory() {
        let mut c = ResultCache::in_memory();
        assert!(c.is_empty());
        c.insert(entry('a')).expect("insert");
        assert!(c.get(&"a".repeat(32)).is_some());
        assert!(c.get(&"b".repeat(32)).is_none());
    }
}
