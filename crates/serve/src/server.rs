//! The persistent job server: admission control, content-addressed
//! dedup, and a dispatcher that shards misses across the
//! [`tcsim_sim::Sweep`] worker pool.
//!
//! # Architecture
//!
//! ```text
//!             accept thread ──► one reader thread per connection
//!                                   │ submit/batch/stats/shutdown
//!                                   ▼
//!  ┌───────────────── Mutex<Core> ───────────────────┐
//!  │ bounded queue · in-flight waiter map · cache ·   │
//!  │ counters                                         │
//!  └──────────────────────────────────────────────────┘
//!                                   │ condvar
//!                                   ▼
//!             dispatcher thread: drain ≤ batch_max jobs,
//!             partition by core model, run each group as a
//!             Sweep::run_parallel(workers), install results
//!             in the cache, fan completions out to waiters
//! ```
//!
//! Each client connection owns an mpsc channel drained by a dedicated
//! writer thread, so completions computed by the dispatcher stream to
//! the right socket without any cross-connection locking.
//!
//! # Admission control
//!
//! A submission is **rejected** (never silently dropped) when the job
//! fails validation, the distinct-job queue is at `max_pending`, or the
//! connection already has `quota` jobs in flight. A submission whose key
//! matches a cached result completes immediately; one matching a queued
//! or running job is **coalesced** — it waits on the same execution and
//! is delivered the same bytes, costing no simulation time.
//!
//! # Determinism
//!
//! Workers run every job on a fresh [`tcsim_sim::Gpu`] built from the
//! job's own config (the sweep engine's contract), so the `LaunchStats`
//! JSON a client receives is byte-identical whether it was computed
//! serially, by a cold server, or replayed from the cache — the
//! end-to-end gate in `tests/serve_determinism.rs` pins all three.

use crate::cache::{CacheEntry, ResultCache};
use crate::job::JobSpec;
use crate::proto::{Event, Request, ServerStats};
use std::collections::{HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;
use tcsim_sim::{CoreModel, Sweep};

/// Server sizing and policy knobs.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Sweep worker threads per dispatch batch.
    pub workers: usize,
    /// Bounded admission queue: distinct jobs that may wait.
    pub max_pending: usize,
    /// Per-connection in-flight job quota.
    pub quota: usize,
    /// Maximum distinct jobs drained into one dispatch batch.
    pub batch_max: usize,
    /// Persistent cache directory (`None` = in-memory only).
    pub cache_dir: Option<PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            workers: 4,
            max_pending: 256,
            quota: 64,
            batch_max: 32,
            cache_dir: None,
        }
    }
}

/// A completion subscriber: one `submit` from one connection.
struct Waiter {
    id: String,
    tx: Sender<String>,
    submitted: Instant,
    conn_inflight: Arc<AtomicUsize>,
}

struct PendingJob {
    key: String,
    spec: JobSpec,
}

#[derive(Default)]
struct Counters {
    jobs_done: u64,
    cache_hits: u64,
    cache_misses: u64,
    coalesced: u64,
    rejected: u64,
    failed: u64,
}

struct Core {
    queue: VecDeque<PendingJob>,
    in_flight: HashMap<String, Vec<Waiter>>,
    cache: ResultCache,
    counters: Counters,
    shutdown: bool,
}

struct Shared {
    mu: Mutex<Core>,
    cv: Condvar,
    opts: ServeOptions,
    addr: SocketAddr,
    stopping: AtomicBool,
}

impl Shared {
    fn stats_snapshot(&self) -> ServerStats {
        let core = self.mu.lock().unwrap();
        ServerStats {
            jobs_done: core.counters.jobs_done,
            cache_hits: core.counters.cache_hits,
            cache_misses: core.counters.cache_misses,
            coalesced: core.counters.coalesced,
            rejected: core.counters.rejected,
            failed: core.counters.failed,
            queue_depth: core.queue.len() as u64,
            in_flight: core.in_flight.len() as u64,
            cache_entries: core.cache.len() as u64,
        }
    }

    fn trigger_shutdown(&self) {
        if self.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        {
            let mut core = self.mu.lock().unwrap();
            core.shutdown = true;
        }
        self.cv.notify_all();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running server; dropping the handle does **not** stop it — call
/// [`Server::shutdown`] (or send a `shutdown` request).
pub struct Server {
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    dispatch_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port), opens
    /// the cache, and starts the accept and dispatcher threads.
    pub fn start(addr: &str, opts: ServeOptions) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let cache = match &opts.cache_dir {
            Some(dir) => ResultCache::open(dir)?,
            None => ResultCache::in_memory(),
        };
        let shared = Arc::new(Shared {
            mu: Mutex::new(Core {
                queue: VecDeque::new(),
                in_flight: HashMap::new(),
                cache,
                counters: Counters::default(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            opts,
            addr: local,
            stopping: AtomicBool::new(false),
        });

        let accept_shared = shared.clone();
        let accept_thread = std::thread::spawn(move || accept_loop(listener, accept_shared));
        let dispatch_shared = shared.clone();
        let dispatch_thread = std::thread::spawn(move || dispatch_loop(dispatch_shared));
        Ok(Server {
            shared,
            accept_thread: Some(accept_thread),
            dispatch_thread: Some(dispatch_thread),
        })
    }

    /// The bound address (with the real port when `:0` was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Warm-start count: cache entries loaded from disk at startup.
    pub fn cache_loaded_from_disk(&self) -> usize {
        self.shared.mu.lock().unwrap().cache.loaded_from_disk()
    }

    /// Current counters (same data as the `stats` protocol event).
    pub fn stats(&self) -> ServerStats {
        self.shared.stats_snapshot()
    }

    /// Stops accepting, lets the dispatcher finish its current batch,
    /// and joins both service threads.
    pub fn shutdown(mut self) {
        self.shared.trigger_shutdown();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.dispatch_thread.take() {
            let _ = t.join();
        }
    }

    /// Blocks until the server is shut down by a protocol request.
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.dispatch_thread.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stopping.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_shared = shared.clone();
        std::thread::spawn(move || connection_loop(stream, conn_shared));
    }
}

fn connection_loop(stream: TcpStream, shared: Arc<Shared>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = channel::<String>();
    let writer = std::thread::spawn(move || {
        let mut out = io::BufWriter::new(write_half);
        while let Ok(line) = rx.recv() {
            if out.write_all(line.as_bytes()).is_err() || out.write_all(b"\n").is_err() {
                break;
            }
            // Flush per event: completions must stream, not sit in a
            // buffer until the connection closes.
            if out.flush().is_err() {
                break;
            }
        }
    });

    let conn_inflight = Arc::new(AtomicUsize::new(0));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        match Request::from_line(trimmed) {
            Err(e) => {
                let _ = tx.send(
                    Event::Rejected {
                        id: "-".into(),
                        reason: format!("bad-request: {e}"),
                    }
                    .to_line(),
                );
            }
            Ok(Request::Submit { id, job }) => {
                submit(&shared, &tx, &conn_inflight, id, job);
            }
            Ok(Request::Batch { jobs }) => {
                for (id, job) in jobs {
                    submit(&shared, &tx, &conn_inflight, id, job);
                }
            }
            Ok(Request::Stats) => {
                let _ = tx.send(Event::Stats(shared.stats_snapshot()).to_line());
            }
            Ok(Request::Shutdown) => {
                shared.trigger_shutdown();
                break;
            }
        }
    }
    drop(tx);
    let _ = writer.join();
}

fn submit(
    shared: &Arc<Shared>,
    tx: &Sender<String>,
    conn_inflight: &Arc<AtomicUsize>,
    id: String,
    spec: JobSpec,
) {
    let reject = |reason: String| {
        let mut core = shared.mu.lock().unwrap();
        core.counters.rejected += 1;
        drop(core);
        let _ = tx.send(
            Event::Rejected {
                id: id.clone(),
                reason,
            }
            .to_line(),
        );
    };
    if let Err(e) = spec.validate() {
        reject(format!("bad-job: {e}"));
        return;
    }
    let submitted = Instant::now();
    // Hash outside the lock: key derivation materializes the input
    // stream, which can be megabytes.
    let key = spec.cache_key();

    let mut core = shared.mu.lock().unwrap();
    if let Some(entry) = core.cache.get(&key) {
        core.counters.cache_hits += 1;
        core.counters.jobs_done += 1;
        drop(core);
        let _ = tx.send(
            Event::Accepted {
                id: id.clone(),
                key: key.clone(),
                coalesced: false,
            }
            .to_line(),
        );
        let _ = tx.send(
            Event::Done {
                id,
                key,
                cached: true,
                output_fnv: entry.outcome.output_fnv.clone(),
                latency_us: submitted.elapsed().as_micros() as u64,
                stats_json: entry.outcome.stats_json.clone(),
            }
            .to_line(),
        );
        return;
    }
    if conn_inflight.load(Ordering::SeqCst) >= shared.opts.quota {
        drop(core);
        reject("quota-exceeded".into());
        return;
    }
    let waiter = Waiter {
        id: id.clone(),
        tx: tx.clone(),
        submitted,
        conn_inflight: conn_inflight.clone(),
    };
    if let Some(waiters) = core.in_flight.get_mut(&key) {
        // Identical job already queued or running: share its execution.
        waiters.push(waiter);
        core.counters.coalesced += 1;
        conn_inflight.fetch_add(1, Ordering::SeqCst);
        drop(core);
        let _ = tx.send(
            Event::Accepted {
                id,
                key,
                coalesced: true,
            }
            .to_line(),
        );
        return;
    }
    if core.queue.len() >= shared.opts.max_pending {
        drop(core);
        reject("queue-full".into());
        return;
    }
    core.in_flight.insert(key.clone(), vec![waiter]);
    core.queue.push_back(PendingJob {
        key: key.clone(),
        spec,
    });
    conn_inflight.fetch_add(1, Ordering::SeqCst);
    drop(core);
    shared.cv.notify_one();
    let _ = tx.send(
        Event::Accepted {
            id,
            key,
            coalesced: false,
        }
        .to_line(),
    );
}

fn dispatch_loop(shared: Arc<Shared>) {
    loop {
        // Wait for work (or shutdown), then drain one batch.
        let batch: Vec<PendingJob> = {
            let mut core = shared.mu.lock().unwrap();
            while core.queue.is_empty() && !core.shutdown {
                core = shared.cv.wait(core).unwrap();
            }
            if core.queue.is_empty() && core.shutdown {
                return;
            }
            let n = core.queue.len().min(shared.opts.batch_max);
            let batch: Vec<PendingJob> = core.queue.drain(..n).collect();
            // Announce the batch while still holding the lock, so a
            // coalescing submit never races between `running` and `done`.
            for job in &batch {
                if let Some(waiters) = core.in_flight.get(&job.key) {
                    for w in waiters {
                        let _ = w.tx.send(Event::Running { id: w.id.clone() }.to_line());
                    }
                }
            }
            batch
        };

        // Shard the batch across the sweep pool, one group per core
        // model (a Sweep builds every fresh Gpu with one core setting).
        for model in [CoreModel::EventDriven, CoreModel::CycleStepped] {
            let group: Vec<&PendingJob> = batch.iter().filter(|j| j.spec.core == model).collect();
            if group.is_empty() {
                continue;
            }
            let mut sweep = Sweep::new();
            sweep.core_model(model);
            for job in &group {
                let spec = job.spec.clone();
                sweep.add(spec.config.to_config(), move |gpu| {
                    catch_unwind(AssertUnwindSafe(|| spec.run_on(gpu))).unwrap_or_else(|panic| {
                        let msg = panic
                            .downcast_ref::<String>()
                            .map(String::as_str)
                            .or_else(|| panic.downcast_ref::<&str>().copied())
                            .unwrap_or("launch panicked");
                        Err(format!("launch panicked: {msg}"))
                    })
                });
            }
            let outcome = sweep.run_parallel(shared.opts.workers);

            let mut core = shared.mu.lock().unwrap();
            for (job, result) in group.iter().zip(outcome.results) {
                let waiters = core.in_flight.remove(&job.key).unwrap_or_default();
                match result {
                    Ok(out) => {
                        core.counters.cache_misses += 1;
                        core.counters.jobs_done += waiters.len() as u64;
                        let entry = CacheEntry {
                            key: job.key.clone(),
                            outcome: out,
                        };
                        let entry = match core.cache.insert(entry) {
                            Ok(e) => e,
                            Err(io_err) => {
                                // Persistence failure degrades to a warm
                                // in-memory cache; the job still completes.
                                eprintln!(
                                    "tcsim-serve: cache write for {} failed: {io_err}",
                                    job.key
                                );
                                core.cache.get(&job.key).expect("in-memory insert")
                            }
                        };
                        for w in waiters {
                            w.conn_inflight.fetch_sub(1, Ordering::SeqCst);
                            let _ = w.tx.send(
                                Event::Done {
                                    id: w.id,
                                    key: job.key.clone(),
                                    cached: false,
                                    output_fnv: entry.outcome.output_fnv.clone(),
                                    latency_us: w.submitted.elapsed().as_micros() as u64,
                                    stats_json: entry.outcome.stats_json.clone(),
                                }
                                .to_line(),
                            );
                        }
                    }
                    Err(reason) => {
                        core.counters.failed += waiters.len() as u64;
                        for w in waiters {
                            w.conn_inflight.fetch_sub(1, Ordering::SeqCst);
                            let _ = w.tx.send(
                                Event::Failed {
                                    id: w.id,
                                    reason: reason.clone(),
                                }
                                .to_line(),
                            );
                        }
                    }
                }
            }
        }
    }
}
