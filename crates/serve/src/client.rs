//! A small blocking client for the serve protocol, used by the load
//! generator, the CI smoke, and the end-to-end tests.
//!
//! The client is deliberately thin: [`Client::send`] writes one request
//! line, [`Client::recv`] blocks for the next event line. Helpers cover
//! the two common shapes — fire a job and wait for its terminal event,
//! or fetch the server counters. Callers that interleave submissions
//! with receives (the open-loop load generator) clone the read half onto
//! a dedicated thread via [`Client::split_reader`].

use crate::proto::{Event, Request, ServerStats};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A blocking protocol connection.
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let read_half = stream.try_clone()?;
        Ok(Client {
            stream,
            reader: BufReader::new(read_half),
        })
    }

    /// Sends one request line.
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        self.stream.write_all(req.to_line().as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()
    }

    /// Blocks for the next event line.
    pub fn recv(&mut self) -> io::Result<Event> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            return Event::from_line(trimmed).map_err(bad_data);
        }
    }

    /// Detaches an independently readable copy of the event stream, for
    /// callers that drain events on a separate thread while this handle
    /// keeps submitting.
    ///
    /// After splitting, **only** the returned reader may consume events:
    /// calling [`Client::recv`] (or any helper built on it) too would
    /// put two buffered readers on one socket, silently racing for
    /// bytes. The split handle keeps [`Client::send`] — requests and
    /// events travel opposite directions and never contend.
    pub fn split_reader(&self) -> io::Result<BufReader<TcpStream>> {
        Ok(BufReader::new(self.stream.try_clone()?))
    }

    /// Blocks until the terminal event (`done`, `failed`, or `rejected`)
    /// for `id`, skipping progress events. Terminal events for *other*
    /// ids are an error — this helper is for one-outstanding-job use.
    pub fn wait(&mut self, id: &str) -> io::Result<Event> {
        loop {
            let ev = self.recv()?;
            match &ev {
                Event::Accepted { id: got, .. } | Event::Running { id: got } => {
                    if got != id {
                        return Err(bad_data(format!(
                            "progress for unexpected job {got:?} while waiting on {id:?}"
                        )));
                    }
                }
                Event::Done { id: got, .. }
                | Event::Failed { id: got, .. }
                | Event::Rejected { id: got, .. } => {
                    if got == id || got == "-" {
                        return Ok(ev);
                    }
                    return Err(bad_data(format!(
                        "terminal event for unexpected job {got:?} while waiting on {id:?}"
                    )));
                }
                Event::Stats(_) => {
                    return Err(bad_data("unexpected stats event".into()));
                }
            }
        }
    }

    /// Submits one job and blocks for its terminal event.
    pub fn run(&mut self, id: &str, job: crate::job::JobSpec) -> io::Result<Event> {
        self.send(&Request::Submit {
            id: id.to_string(),
            job,
        })?;
        self.wait(id)
    }

    /// Fetches the server counters.
    pub fn server_stats(&mut self) -> io::Result<ServerStats> {
        self.send(&Request::Stats)?;
        match self.recv()? {
            Event::Stats(s) => Ok(s),
            other => Err(bad_data(format!("expected stats event, got {other:?}"))),
        }
    }

    /// Asks the server to shut down gracefully.
    pub fn shutdown_server(&mut self) -> io::Result<()> {
        self.send(&Request::Shutdown)
    }

    /// Shuts the underlying socket down in both directions. Unlike
    /// dropping the `Client`, this also unblocks reads on handles cloned
    /// via [`Client::split_reader`] — dropping alone closes only this
    /// handle's descriptors, and a split reader blocked in `read_line`
    /// would keep the connection (and itself) alive forever.
    pub fn close(&self) -> io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Both)
    }
}
