//! Cache-key semantics: equal job content must hash equal (and produce
//! byte-identical stats); any single-field perturbation must hash
//! differently. These tests pin the soundness side (no false sharing)
//! and the dedup side (canonicalization actually merges variants) of
//! the content-addressed cache.

use tcsim_check::oracle::DataKind;
use tcsim_isa::{Dim3, Kernel, KernelBuilder, MemWidth, Operand, SpecialReg};
use tcsim_serve::{verify_stats_round_trip, ConfigId, InputSpec, JobSpec};
use tcsim_sim::{CoreModel, Gpu, GpuConfig, LaunchBuilder, SimOptions};

/// `out[tid] = in[tid] + bias` over one warp.
fn add_kernel(bias: i64) -> Kernel {
    let mut b = KernelBuilder::new("key_add");
    let p_in = b.param_u64("in");
    let p_out = b.param_u64("out");
    let src = b.reg_pair();
    b.ld_param(MemWidth::B64, src, p_in);
    let dst = b.reg_pair();
    b.ld_param(MemWidth::B64, dst, p_out);
    let tid = b.reg();
    b.mov(tid, Operand::Special(SpecialReg::TidX));
    let addr = b.reg_pair();
    b.imad_wide(addr, tid, Operand::Imm(4), src);
    let v = b.reg();
    b.ld_global(MemWidth::B32, v, addr, 0);
    b.iadd(v, v, Operand::Imm(bias));
    let addr2 = b.reg_pair();
    b.imad_wide(addr2, tid, Operand::Imm(4), dst);
    b.st_global(MemWidth::B32, addr2, 0, v);
    b.exit();
    b.build()
}

fn base_spec() -> JobSpec {
    JobSpec {
        kernel: add_kernel(1),
        config: ConfigId::Mini,
        core: CoreModel::EventDriven,
        grid: Dim3::x(2),
        block: Dim3::x(32),
        input: InputSpec::Seeded {
            kind: DataKind::Raw,
            seed: 9,
            words: 64,
        },
        out_words: 64,
    }
}

#[test]
fn equal_content_hashes_equal_and_runs_byte_identical() {
    // Two independently constructed, contentwise-equal jobs.
    let a = base_spec();
    let b = base_spec();
    assert_eq!(a.cache_key(), b.cache_key());
    let ra = a.run().expect("run a");
    let rb = b.run().expect("run b");
    assert_eq!(
        ra.stats_json, rb.stats_json,
        "equal keys must imply byte-identical LaunchStats JSON"
    );
    assert_eq!(ra.output_fnv, rb.output_fnv);
}

#[test]
fn textual_kernel_variants_share_a_key() {
    // A kernel that went through emit → parse → (re)emit is the same
    // program; the key hashes the canonical emitted form, so it dedupes.
    let built = base_spec();
    let mut reparsed = base_spec();
    reparsed.kernel =
        tcsim_isa::ptx::parse_kernel(&built.kernel_text()).expect("canonical text parses");
    assert_eq!(built.cache_key(), reparsed.cache_key());
}

#[test]
fn every_single_field_perturbation_changes_the_key() {
    let base = base_spec();
    let base_key = base.cache_key();
    let perturbed: Vec<(&str, JobSpec)> = vec![
        (
            "kernel body",
            JobSpec {
                kernel: add_kernel(2),
                ..base_spec()
            },
        ),
        (
            "grid dim",
            JobSpec {
                grid: Dim3::x(3),
                ..base_spec()
            },
        ),
        (
            "grid shape",
            JobSpec {
                grid: Dim3::new(1, 2, 1),
                ..base_spec()
            },
        ),
        (
            "block dim",
            JobSpec {
                block: Dim3::x(64),
                ..base_spec()
            },
        ),
        (
            "config",
            JobSpec {
                config: ConfigId::MiniTuring,
                ..base_spec()
            },
        ),
        (
            "core model",
            JobSpec {
                core: CoreModel::CycleStepped,
                ..base_spec()
            },
        ),
        (
            "input seed",
            JobSpec {
                input: InputSpec::Seeded {
                    kind: DataKind::Raw,
                    seed: 10,
                    words: 64,
                },
                ..base_spec()
            },
        ),
        (
            "input size",
            JobSpec {
                input: InputSpec::Seeded {
                    kind: DataKind::Raw,
                    seed: 9,
                    words: 65,
                },
                ..base_spec()
            },
        ),
        (
            "output size",
            JobSpec {
                out_words: 65,
                ..base_spec()
            },
        ),
    ];
    for (what, spec) in perturbed {
        assert_ne!(
            spec.cache_key(),
            base_key,
            "perturbing {what} must change the cache key"
        );
    }
}

#[test]
fn one_input_byte_perturbation_changes_the_key() {
    let mut bytes = base_spec().input.bytes();
    let mut inline = base_spec();
    inline.input = InputSpec::Inline(bytes.clone());
    // Same bytes inline as seeded: same key (dedup across encodings).
    assert_eq!(inline.cache_key(), base_spec().cache_key());
    // One flipped bit in one byte: different key.
    bytes[17] ^= 0x01;
    let mut flipped = base_spec();
    flipped.input = InputSpec::Inline(bytes);
    assert_ne!(flipped.cache_key(), inline.cache_key());
}

#[test]
fn launch_stats_json_round_trips() {
    // Plain launch: no trace summary.
    let spec = base_spec();
    let mut gpu = Gpu::new(SimOptions::new(GpuConfig::mini()));
    let input = spec.input.bytes();
    let in_addr = gpu.alloc(input.len() as u64);
    let out_addr = gpu.alloc(u64::from(spec.out_words) * 4);
    gpu.memcpy_h2d(in_addr, &input);
    let stats = LaunchBuilder::new(spec.kernel.clone())
        .grid(spec.grid)
        .block(spec.block)
        .param_u64(in_addr)
        .param_u64(out_addr)
        .launch(&mut gpu);
    verify_stats_round_trip(&stats).expect("plain stats round-trip");

    // Traced launch: exercises the optional `trace` object too.
    let mut gpu =
        Gpu::new(SimOptions::new(GpuConfig::mini()).tracer(tcsim_trace::RingTracer::new()));
    let in_addr = gpu.alloc(input.len() as u64);
    let out_addr = gpu.alloc(u64::from(spec.out_words) * 4);
    gpu.memcpy_h2d(in_addr, &input);
    let stats = LaunchBuilder::new(spec.kernel.clone())
        .grid(spec.grid)
        .block(spec.block)
        .param_u64(in_addr)
        .param_u64(out_addr)
        .launch(&mut gpu);
    let tree = verify_stats_round_trip(&stats).expect("traced stats round-trip");
    assert!(
        tree.get("trace").is_some(),
        "traced launch must serialize a trace summary"
    );
}
