//! End-to-end server tests over real TCP connections: submit/complete,
//! cache hits, batch dedup, admission-control rejections, launch
//! failures, and warm restart from the persistent cache.

use std::path::PathBuf;
use tcsim_check::oracle::DataKind;
use tcsim_isa::{Dim3, Kernel, KernelBuilder, MemWidth, Operand, SpecialReg};
use tcsim_serve::{Client, ConfigId, Event, InputSpec, JobSpec, Request, ServeOptions, Server};
use tcsim_sim::CoreModel;

fn add_kernel(bias: i64) -> Kernel {
    let mut b = KernelBuilder::new("e2e_add");
    let p_in = b.param_u64("in");
    let p_out = b.param_u64("out");
    let src = b.reg_pair();
    b.ld_param(MemWidth::B64, src, p_in);
    let dst = b.reg_pair();
    b.ld_param(MemWidth::B64, dst, p_out);
    let tid = b.reg();
    b.mov(tid, Operand::Special(SpecialReg::TidX));
    let addr = b.reg_pair();
    b.imad_wide(addr, tid, Operand::Imm(4), src);
    let v = b.reg();
    b.ld_global(MemWidth::B32, v, addr, 0);
    b.iadd(v, v, Operand::Imm(bias));
    let addr2 = b.reg_pair();
    b.imad_wide(addr2, tid, Operand::Imm(4), dst);
    b.st_global(MemWidth::B32, addr2, 0, v);
    b.exit();
    b.build()
}

fn spec(bias: i64) -> JobSpec {
    JobSpec {
        kernel: add_kernel(bias),
        config: ConfigId::Mini,
        core: CoreModel::EventDriven,
        grid: Dim3::x(1),
        block: Dim3::x(32),
        input: InputSpec::Seeded {
            kind: DataKind::Raw,
            seed: 5,
            words: 32,
        },
        out_words: 32,
    }
}

fn start(opts: ServeOptions) -> (Server, String) {
    let server = Server::start("127.0.0.1:0", opts).expect("start server");
    let addr = server.local_addr().to_string();
    (server, addr)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tcsim-serve-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn submit_completes_and_repeat_hits_the_cache() {
    let (server, addr) = start(ServeOptions::default());
    let mut client = Client::connect(&addr).expect("connect");

    let serial = spec(1).run().expect("serial run");
    let first = client.run("a1", spec(1)).expect("first run");
    let Event::Done {
        cached,
        stats_json,
        output_fnv,
        ..
    } = &first
    else {
        panic!("expected done, got {first:?}");
    };
    assert!(!cached, "cold submit must compute");
    assert_eq!(
        stats_json, &serial.stats_json,
        "server == serial, byte-identical"
    );
    assert_eq!(output_fnv, &serial.output_fnv);

    let second = client.run("a2", spec(1)).expect("second run");
    let Event::Done {
        cached, stats_json, ..
    } = &second
    else {
        panic!("expected done, got {second:?}");
    };
    assert!(cached, "identical resubmit must be served from the cache");
    assert_eq!(
        stats_json, &serial.stats_json,
        "cached == computed, byte-identical"
    );

    let stats = client.server_stats().expect("stats");
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.jobs_done, 2);
    server.shutdown();
}

#[test]
fn batch_with_duplicates_simulates_each_distinct_job_once() {
    let (server, addr) = start(ServeOptions::default());
    let mut client = Client::connect(&addr).expect("connect");
    // Four submissions, two distinct jobs: the duplicates must coalesce
    // onto the in-flight twin or hit the cache — never re-simulate.
    let jobs = vec![
        ("b1".to_string(), spec(1)),
        ("b2".to_string(), spec(2)),
        ("b1dup".to_string(), spec(1)),
        ("b2dup".to_string(), spec(2)),
    ];
    client.send(&Request::Batch { jobs }).expect("batch");
    let mut done = std::collections::HashMap::new();
    while done.len() < 4 {
        match client.recv().expect("event") {
            Event::Done { id, stats_json, .. } => {
                done.insert(id, stats_json);
            }
            Event::Failed { id, reason } => panic!("job {id} failed: {reason}"),
            Event::Rejected { id, reason } => panic!("job {id} rejected: {reason}"),
            _ => {}
        }
    }
    assert_eq!(
        done["b1"], done["b1dup"],
        "duplicate completions byte-identical"
    );
    assert_eq!(done["b2"], done["b2dup"]);
    let stats = client.server_stats().expect("stats");
    assert_eq!(stats.cache_misses, 2, "two distinct jobs, two simulations");
    assert_eq!(
        stats.coalesced + stats.cache_hits,
        2,
        "two dedup'd submissions"
    );
    server.shutdown();
}

#[test]
fn full_queue_rejects_with_explicit_reason() {
    // max_pending = 0: no job can wait, every miss is turned away.
    let (server, addr) = start(ServeOptions {
        max_pending: 0,
        ..Default::default()
    });
    let mut client = Client::connect(&addr).expect("connect");
    let ev = client.run("q1", spec(1)).expect("submit");
    let Event::Rejected { reason, .. } = &ev else {
        panic!("expected rejection, got {ev:?}");
    };
    assert_eq!(reason, "queue-full");
    let stats = client.server_stats().expect("stats");
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.jobs_done, 0);
    server.shutdown();
}

#[test]
fn exhausted_quota_rejects_with_explicit_reason() {
    // quota = 0: the connection may never have a job in flight.
    let (server, addr) = start(ServeOptions {
        quota: 0,
        ..Default::default()
    });
    let mut client = Client::connect(&addr).expect("connect");
    let ev = client.run("z1", spec(1)).expect("submit");
    let Event::Rejected { reason, .. } = &ev else {
        panic!("expected rejection, got {ev:?}");
    };
    assert_eq!(reason, "quota-exceeded");
    server.shutdown();
}

#[test]
fn invalid_jobs_are_rejected_not_crashed() {
    let (server, addr) = start(ServeOptions::default());
    let mut client = Client::connect(&addr).expect("connect");
    let mut bad = spec(1);
    bad.out_words = 0;
    let ev = client.run("v1", bad).expect("submit");
    assert!(
        matches!(&ev, Event::Rejected { reason, .. } if reason.starts_with("bad-job")),
        "expected bad-job rejection, got {ev:?}"
    );
    // The connection and server survive; a good job still completes.
    let ev = client.run("v2", spec(1)).expect("submit good");
    assert!(matches!(ev, Event::Done { .. }));
    server.shutdown();
}

#[test]
fn failed_launches_report_failed_events() {
    let (server, addr) = start(ServeOptions::default());
    let mut client = Client::connect(&addr).expect("connect");
    // Structurally valid job, but the block exceeds the hardware CTA
    // limit — admission passes, the launch itself must fail.
    let mut bad = spec(1);
    bad.block = Dim3::x(4096);
    let ev = client.run("f1", bad).expect("submit");
    let Event::Failed { reason, .. } = &ev else {
        panic!("expected failure, got {ev:?}");
    };
    assert!(!reason.is_empty());
    let stats = client.server_stats().expect("stats");
    assert_eq!(stats.failed, 1);
    // Server still healthy.
    let ev = client.run("f2", spec(1)).expect("submit good");
    assert!(matches!(ev, Event::Done { .. }));
    server.shutdown();
}

#[test]
fn restart_serves_warm_hits_from_the_persistent_cache() {
    let dir = tmp_dir("warm");
    let opts = ServeOptions {
        cache_dir: Some(dir.clone()),
        ..Default::default()
    };
    let (cold_stats_json, cold_fnv);
    {
        let (server, addr) = start(opts.clone());
        assert_eq!(server.cache_loaded_from_disk(), 0);
        let mut client = Client::connect(&addr).expect("connect");
        let ev = client.run("w1", spec(7)).expect("cold run");
        let Event::Done {
            cached,
            stats_json,
            output_fnv,
            ..
        } = ev
        else {
            panic!("expected done");
        };
        assert!(!cached);
        cold_stats_json = stats_json;
        cold_fnv = output_fnv;
        server.shutdown();
    }
    {
        let (server, addr) = start(opts);
        assert_eq!(
            server.cache_loaded_from_disk(),
            1,
            "result survived restart"
        );
        let mut client = Client::connect(&addr).expect("connect");
        let ev = client.run("w2", spec(7)).expect("warm run");
        let Event::Done {
            cached,
            stats_json,
            output_fnv,
            ..
        } = ev
        else {
            panic!("expected done");
        };
        assert!(cached, "restarted server must serve the persisted result");
        assert_eq!(stats_json, cold_stats_json, "byte-identical across restart");
        assert_eq!(output_fnv, cold_fnv);
        server.shutdown();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn protocol_shutdown_stops_the_server() {
    let (server, addr) = start(ServeOptions::default());
    let mut client = Client::connect(&addr).expect("connect");
    client.shutdown_server().expect("send shutdown");
    // join() returns only once both service threads exited.
    server.join();
}
