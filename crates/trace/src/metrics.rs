//! Derived metrics computed from an event stream: per-interval IPC,
//! tensor-pipeline occupancy and the stall-reason breakdown.
//!
//! Everything here is integer-deterministic: two identical event streams
//! produce identical summaries, so summaries can ride inside
//! `LaunchStats` without weakening the sweep engine's byte-identical
//! determinism contract.

use crate::event::{CacheLevel, EventKind, StallReason, TraceEvent};

/// Aggregated view of one launch's event stream.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceSummary {
    /// Events in the stream (post-ring-truncation).
    pub events: u64,
    /// Events lost to ring-buffer overwrite.
    pub dropped: u64,
    /// Cycle of the earliest event.
    pub first_cycle: u64,
    /// Cycle of the latest event.
    pub last_cycle: u64,
    /// Warp instructions issued.
    pub issues: u64,
    /// Issues per functional unit (see [`crate::TraceUnit::ALL`] order).
    pub issues_by_unit: [u64; 7],
    /// Warps retired.
    pub retires: u64,
    /// Stall occurrences per reason (see [`StallReason::ALL`] order).
    pub stall_counts: [u64; 4],
    /// Cycles lost per stall reason (sum of `until − cycle`).
    pub stall_cycles: [u64; 4],
    /// HMMA set/step starts.
    pub hmma_steps: u64,
    /// Cycles during which at least one HMMA step was in flight.
    pub hmma_busy_cycles: u64,
    /// FEDP stage advances.
    pub fedp_stages: u64,
    /// L1 hits (MSHR merges included).
    pub l1_hits: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// L2 hits (MSHR merges included).
    pub l2_hits: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// DRAM sectors transferred.
    pub dram_txns: u64,
}

impl TraceSummary {
    /// Builds the summary of an event stream (`dropped` from the tracer).
    pub fn from_events(events: &[TraceEvent], dropped: u64) -> TraceSummary {
        let mut s = TraceSummary {
            dropped,
            ..TraceSummary::default()
        };
        let mut hmma_spans: Vec<(u64, u64)> = Vec::new();
        for (i, ev) in events.iter().enumerate() {
            s.events += 1;
            if i == 0 {
                s.first_cycle = ev.cycle;
            }
            s.first_cycle = s.first_cycle.min(ev.cycle);
            s.last_cycle = s.last_cycle.max(ev.cycle);
            match ev.kind {
                EventKind::WarpIssue { unit, .. } => {
                    s.issues += 1;
                    s.issues_by_unit[unit.index()] += 1;
                }
                EventKind::WarpRetire { .. } => s.retires += 1,
                EventKind::Stall { reason, until, .. } => {
                    s.stall_counts[reason.index()] += 1;
                    s.stall_cycles[reason.index()] += until.saturating_sub(ev.cycle);
                }
                EventKind::HmmaStep { complete, .. } => {
                    s.hmma_steps += 1;
                    hmma_spans.push((ev.cycle, complete.max(ev.cycle + 1)));
                }
                EventKind::FedpStage { .. } => s.fedp_stages += 1,
                EventKind::CacheAccess { level, hit, .. } => match (level, hit) {
                    (CacheLevel::L1, true) => s.l1_hits += 1,
                    (CacheLevel::L1, false) => s.l1_misses += 1,
                    (CacheLevel::L2, true) => s.l2_hits += 1,
                    (CacheLevel::L2, false) => s.l2_misses += 1,
                },
                EventKind::DramTxn { .. } => s.dram_txns += 1,
            }
        }
        s.hmma_busy_cycles = union_length(&mut hmma_spans);
        s
    }

    /// Cycles spanned by the stream (0 for an empty stream).
    pub fn span(&self) -> u64 {
        if self.events == 0 {
            0
        } else {
            self.last_cycle - self.first_cycle + 1
        }
    }

    /// Issues per cycle over the traced span.
    pub fn ipc(&self) -> f64 {
        let span = self.span();
        if span == 0 {
            0.0
        } else {
            self.issues as f64 / span as f64
        }
    }

    /// Fraction of the traced span with at least one HMMA step in flight
    /// — the pipeline-occupancy view of Fig 13.
    pub fn hmma_occupancy(&self) -> f64 {
        let span = self.span();
        if span == 0 {
            0.0
        } else {
            self.hmma_busy_cycles as f64 / span as f64
        }
    }

    /// Cycles lost to stalls, all reasons combined.
    pub fn total_stall_cycles(&self) -> u64 {
        self.stall_cycles.iter().sum()
    }

    /// `(reason name, occurrences, cycles)` rows, in `StallReason::ALL`
    /// order — the stall-reason breakdown table.
    pub fn stall_table(&self) -> Vec<(&'static str, u64, u64)> {
        StallReason::ALL
            .iter()
            .map(|r| {
                (
                    r.name(),
                    self.stall_counts[r.index()],
                    self.stall_cycles[r.index()],
                )
            })
            .collect()
    }

    /// Serializes the summary as a JSON object (hand-rolled; no external
    /// crates are reachable from the build environment).
    pub fn to_json(&self) -> String {
        let arr = |v: &[u64]| {
            format!(
                "[{}]",
                v.iter()
                    .map(|x| x.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            )
        };
        format!(
            concat!(
                "{{\"events\":{},\"dropped\":{},\"first_cycle\":{},\"last_cycle\":{},",
                "\"issues\":{},\"issues_by_unit\":{},\"retires\":{},",
                "\"stall_counts\":{},\"stall_cycles\":{},",
                "\"hmma_steps\":{},\"hmma_busy_cycles\":{},\"fedp_stages\":{},",
                "\"l1_hits\":{},\"l1_misses\":{},\"l2_hits\":{},\"l2_misses\":{},",
                "\"dram_txns\":{},\"ipc\":{:.6},\"hmma_occupancy\":{:.6}}}"
            ),
            self.events,
            self.dropped,
            self.first_cycle,
            self.last_cycle,
            self.issues,
            arr(&self.issues_by_unit),
            self.retires,
            arr(&self.stall_counts),
            arr(&self.stall_cycles),
            self.hmma_steps,
            self.hmma_busy_cycles,
            self.fedp_stages,
            self.l1_hits,
            self.l1_misses,
            self.l2_hits,
            self.l2_misses,
            self.dram_txns,
            self.ipc(),
            self.hmma_occupancy(),
        )
    }
}

/// Total length of the union of half-open `(start, end)` spans.
fn union_length(spans: &mut [(u64, u64)]) -> u64 {
    spans.sort_unstable();
    let mut total = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for &(s, e) in spans.iter() {
        match cur {
            None => cur = Some((s, e)),
            Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
            Some((cs, ce)) => {
                total += ce - cs;
                cur = Some((s, e));
                let _ = cs;
            }
        }
    }
    if let Some((cs, ce)) = cur {
        total += ce - cs;
    }
    total
}

/// Issue activity of one trace interval (see [`interval_ipc`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interval {
    /// First cycle of the interval.
    pub start: u64,
    /// Warp instructions issued inside it.
    pub issues: u64,
    /// Issues per cycle over the interval width.
    pub ipc: f64,
}

/// Buckets issue events into fixed-width cycle intervals — the
/// per-interval IPC curve used to spot ramp-up, steady state and drain
/// phases of a launch.
///
/// # Panics
///
/// Panics if `width` is zero.
pub fn interval_ipc(events: &[TraceEvent], width: u64) -> Vec<Interval> {
    assert!(width > 0, "interval width must be non-zero");
    let issues: Vec<u64> = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::WarpIssue { .. }))
        .map(|e| e.cycle)
        .collect();
    let Some(&max) = issues.iter().max() else {
        return Vec::new();
    };
    let buckets = (max / width + 1) as usize;
    let mut counts = vec![0u64; buckets];
    for c in issues {
        counts[(c / width) as usize] += 1;
    }
    counts
        .iter()
        .enumerate()
        .map(|(i, &n)| Interval {
            start: i as u64 * width,
            issues: n,
            ipc: n as f64 / width as f64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceUnit;

    fn issue(cycle: u64, unit: TraceUnit) -> TraceEvent {
        TraceEvent {
            cycle,
            sm: 0,
            kind: EventKind::WarpIssue {
                sub_core: 0,
                warp: 0,
                unit,
            },
        }
    }

    fn hmma(cycle: u64, complete: u64) -> TraceEvent {
        TraceEvent {
            cycle,
            sm: 0,
            kind: EventKind::HmmaStep {
                sub_core: 0,
                warp: 0,
                octet: 0,
                set: 1,
                step: 0,
                complete,
            },
        }
    }

    #[test]
    fn summary_counts_by_kind() {
        let events = vec![
            issue(0, TraceUnit::Int),
            issue(5, TraceUnit::Tensor),
            TraceEvent {
                cycle: 6,
                sm: 0,
                kind: EventKind::Stall {
                    sub_core: 0,
                    warp: 0,
                    reason: StallReason::Memory,
                    until: 16,
                },
            },
            hmma(7, 17),
            TraceEvent {
                cycle: 8,
                sm: 0,
                kind: EventKind::CacheAccess {
                    level: CacheLevel::L1,
                    hit: true,
                    store: false,
                },
            },
            TraceEvent {
                cycle: 20,
                sm: 0,
                kind: EventKind::WarpRetire {
                    sub_core: 0,
                    warp: 0,
                },
            },
        ];
        let s = TraceSummary::from_events(&events, 3);
        assert_eq!(s.events, 6);
        assert_eq!(s.dropped, 3);
        assert_eq!(s.issues, 2);
        assert_eq!(s.issues_by_unit[TraceUnit::Tensor.index()], 1);
        assert_eq!(s.retires, 1);
        assert_eq!(s.stall_counts[StallReason::Memory.index()], 1);
        assert_eq!(s.stall_cycles[StallReason::Memory.index()], 10);
        assert_eq!(s.total_stall_cycles(), 10);
        assert_eq!(s.hmma_steps, 1);
        assert_eq!(s.hmma_busy_cycles, 10);
        assert_eq!(s.l1_hits, 1);
        assert_eq!((s.first_cycle, s.last_cycle), (0, 20));
        assert_eq!(s.span(), 21);
        assert!((s.ipc() - 2.0 / 21.0).abs() < 1e-12);
    }

    #[test]
    fn occupancy_merges_overlapping_steps() {
        // Two overlapping steps [10,20) and [15,25) plus [40,44).
        let events = vec![hmma(10, 20), hmma(15, 25), hmma(40, 44)];
        let s = TraceSummary::from_events(&events, 0);
        assert_eq!(s.hmma_busy_cycles, 15 + 4);
        // Span is 10..=40 → 31 cycles.
        assert!((s.hmma_occupancy() - 19.0 / 31.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stream_summary_is_default() {
        let s = TraceSummary::from_events(&[], 0);
        assert_eq!(s, TraceSummary::default());
        assert_eq!(s.span(), 0);
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.hmma_occupancy(), 0.0);
    }

    #[test]
    fn interval_ipc_buckets_issues() {
        let events = vec![
            issue(0, TraceUnit::Int),
            issue(1, TraceUnit::Int),
            issue(9, TraceUnit::Int),
            issue(25, TraceUnit::Int),
        ];
        let iv = interval_ipc(&events, 10);
        assert_eq!(iv.len(), 3);
        assert_eq!(iv[0].issues, 3);
        assert_eq!(iv[1].issues, 0);
        assert_eq!(iv[2].issues, 1);
        assert_eq!(iv[2].start, 20);
        assert!((iv[0].ipc - 0.3).abs() < 1e-12);
        assert!(interval_ipc(&[], 10).is_empty());
    }

    #[test]
    fn stall_table_rows_follow_reason_order() {
        let s = TraceSummary::from_events(
            &[TraceEvent {
                cycle: 0,
                sm: 0,
                kind: EventKind::Stall {
                    sub_core: 0,
                    warp: 0,
                    reason: StallReason::Raw,
                    until: 4,
                },
            }],
            0,
        );
        let t = s.stall_table();
        assert_eq!(t[0], ("raw", 1, 4));
        assert_eq!(t[1].0, "structural");
        assert_eq!(t[3].0, "barrier");
    }

    #[test]
    fn summary_json_is_valid() {
        let s = TraceSummary::from_events(&[issue(0, TraceUnit::Sp), hmma(1, 5)], 2);
        crate::jsonv::validate_json(&s.to_json()).unwrap();
        assert!(s.to_json().contains("\"hmma_steps\":1"));
    }
}
