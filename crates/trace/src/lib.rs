#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Cycle-level trace & profiling subsystem for the tensor-core GPU
//! simulator.
//!
//! The paper validates its timing model by looking at per-cycle behavior
//! — the HMMA set/step issue cadence (Fig 10/11), FEDP pipeline
//! occupancy (Fig 13) and IPC against hardware (Fig 14b). This crate is
//! the observability layer that makes those timelines visible in the
//! rebuilt simulator:
//!
//! * [`TraceEvent`]/[`EventKind`] — typed, cycle-stamped events for warp
//!   issue/retire, HMMA set/step starts, FEDP stage advances, scoreboard
//!   stalls (with [`StallReason`] attribution), cache hits/misses and
//!   DRAM transactions;
//! * [`Tracer`] — the sink trait the simulator threads through its hot
//!   loops, with [`NullTracer`] (zero-cost when disabled) and
//!   [`RingTracer`] (bounded, allocation-free after warmup);
//! * [`chrome_trace`] — Chrome `trace_event` JSON export, one track per
//!   SM sub-core and tensor-core octet, loadable in `chrome://tracing`
//!   and Perfetto;
//! * [`hmma_step_timeline`] — a plain-text Fig 10-style step cadence;
//! * [`TraceSummary`]/[`interval_ipc`] — derived metrics: per-interval
//!   IPC, pipeline occupancy and the stall-reason breakdown;
//! * [`validate_json`] — a dependency-free JSON checker guarding the
//!   hand-rolled exporters.
//!
//! This is a leaf crate with no dependencies, so every simulator layer
//! (`tcsim-mem`, `tcsim-sm`, `tcsim-core`, `tcsim-sim`, `tcsim-bench`)
//! can emit events without dependency cycles.
//!
//! # Example
//!
//! ```
//! use tcsim_trace::{
//!     chrome_trace, emit, EventKind, RingTracer, TraceEvent, Tracer, TraceUnit, TraceSummary,
//! };
//!
//! let mut t = RingTracer::with_capacity(1024);
//! emit(&mut t, || TraceEvent {
//!     cycle: 10,
//!     sm: 0,
//!     kind: EventKind::WarpIssue { sub_core: 0, warp: 2, unit: TraceUnit::Tensor },
//! });
//! let events = t.snapshot();
//! let summary = TraceSummary::from_events(&events, t.dropped());
//! assert_eq!(summary.issues, 1);
//! assert!(chrome_trace(&events).contains("tensor w2"));
//! ```

mod chrome;
mod event;
mod jsonv;
mod metrics;
mod timeline;
mod tracer;

pub use chrome::{chrome_trace, MEMORY_PID};
pub use event::{CacheLevel, EventKind, StallReason, TraceEvent, TraceUnit, MEM_SM};
pub use jsonv::validate_json;
pub use metrics::{interval_ipc, Interval, TraceSummary};
pub use timeline::hmma_step_timeline;
pub use tracer::{emit, NullTracer, RingTracer, Tracer, DEFAULT_RING_CAPACITY};
