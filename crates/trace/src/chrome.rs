//! Chrome `trace_event` JSON exporter.
//!
//! Produces the JSON-object form of the [trace-event format] that both
//! `chrome://tracing` and Perfetto load: a `traceEvents` array of
//! complete (`"ph":"X"`) duration events plus metadata (`"ph":"M"`)
//! events naming processes and threads. Cycle numbers are written
//! directly as microsecond timestamps, so one display "µs" equals one
//! core cycle.
//!
//! Track layout — one process per SM plus one for the shared memory
//! system; inside an SM process one thread per sub-core issue slot,
//! per sub-core stall ledger, per sub-core FEDP array and per
//! tensor-core octet, so the Fig 10/11 set/step staircase renders
//! directly as nested slices:
//!
//! | pid | tid | track |
//! |---|---|---|
//! | sm | `sc` | sub-core `sc` issue slot |
//! | sm | `40 + sc` | sub-core `sc` stalls |
//! | sm | `80 + sc` | sub-core `sc` FEDP stages |
//! | sm | `90` | L1 accesses |
//! | sm | `100 + 8*sc + octet` | tensor-core octet tracks |
//! | `1_000_000` | `0` | L2 accesses |
//! | `1_000_000` | `100 + ch` | DRAM channel `ch` |
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::event::{CacheLevel, EventKind, TraceEvent, MEM_SM};
use std::collections::BTreeMap;

/// The pid used for the shared memory system's pseudo-process.
pub const MEMORY_PID: u64 = 1_000_000;

/// Escapes a string for inclusion in a JSON string literal, covering
/// every control character below 0x20.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn complete_event(
    out: &mut Vec<String>,
    name: &str,
    cat: &str,
    track: (u64, u64),
    ts: u64,
    dur: u64,
    args: &[(&str, u64)],
) {
    let mut s = format!(
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{}",
        escape(name),
        escape(cat),
        track.0,
        track.1,
        ts,
        dur.max(1),
    );
    if !args.is_empty() {
        s.push_str(",\"args\":{");
        for (i, (k, v)) in args.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":{}", escape(k), v));
        }
        s.push('}');
    }
    s.push('}');
    out.push(s);
}

fn meta_event(out: &mut Vec<String>, what: &str, pid: u64, tid: Option<u64>, name: &str) {
    let tid_field = tid.map(|t| format!(",\"tid\":{t}")).unwrap_or_default();
    out.push(format!(
        "{{\"name\":\"{}\",\"ph\":\"M\",\"pid\":{}{},\"args\":{{\"name\":\"{}\"}}}}",
        what,
        pid,
        tid_field,
        escape(name)
    ));
}

/// Renders `events` as a Chrome `trace_event` JSON document.
///
/// The output is a complete JSON object (`{"traceEvents":[...]}`)
/// loadable in `chrome://tracing` and Perfetto. Event order follows the
/// input, so two identical event streams serialize byte-identically.
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    // (pid, tid) -> thread name; pid -> process name. BTreeMaps make the
    // metadata block deterministic regardless of event order.
    let mut processes: BTreeMap<u64, String> = BTreeMap::new();
    let mut threads: BTreeMap<(u64, u64), String> = BTreeMap::new();
    let mut body: Vec<String> = Vec::with_capacity(events.len());

    for ev in events {
        let sm_pid = ev.sm as u64;
        match ev.kind {
            EventKind::WarpIssue {
                sub_core,
                warp,
                unit,
            } => {
                let tid = sub_core as u64;
                processes
                    .entry(sm_pid)
                    .or_insert_with(|| format!("SM {}", ev.sm));
                threads
                    .entry((sm_pid, tid))
                    .or_insert_with(|| format!("sc{sub_core} issue"));
                complete_event(
                    &mut body,
                    &format!("{} w{}", unit.name(), warp),
                    "issue",
                    (sm_pid, tid),
                    ev.cycle,
                    1,
                    &[("warp", warp as u64)],
                );
            }
            EventKind::WarpRetire { sub_core, warp } => {
                let tid = sub_core as u64;
                processes
                    .entry(sm_pid)
                    .or_insert_with(|| format!("SM {}", ev.sm));
                threads
                    .entry((sm_pid, tid))
                    .or_insert_with(|| format!("sc{sub_core} issue"));
                complete_event(
                    &mut body,
                    &format!("retire w{warp}"),
                    "retire",
                    (sm_pid, tid),
                    ev.cycle,
                    1,
                    &[("warp", warp as u64)],
                );
            }
            EventKind::Stall {
                sub_core,
                warp,
                reason,
                until,
            } => {
                let tid = 40 + sub_core as u64;
                processes
                    .entry(sm_pid)
                    .or_insert_with(|| format!("SM {}", ev.sm));
                threads
                    .entry((sm_pid, tid))
                    .or_insert_with(|| format!("sc{sub_core} stall"));
                complete_event(
                    &mut body,
                    reason.name(),
                    "stall",
                    (sm_pid, tid),
                    ev.cycle,
                    until.saturating_sub(ev.cycle),
                    &[("warp", warp as u64)],
                );
            }
            EventKind::HmmaStep {
                sub_core,
                warp,
                octet,
                set,
                step,
                complete,
            } => {
                let tid = 100 + 8 * sub_core as u64 + octet as u64;
                processes
                    .entry(sm_pid)
                    .or_insert_with(|| format!("SM {}", ev.sm));
                threads
                    .entry((sm_pid, tid))
                    .or_insert_with(|| format!("sc{sub_core} octet {octet}"));
                complete_event(
                    &mut body,
                    &format!("set{set} step{step}"),
                    "hmma",
                    (sm_pid, tid),
                    ev.cycle,
                    complete.saturating_sub(ev.cycle),
                    &[
                        ("warp", warp as u64),
                        ("set", set as u64),
                        ("step", step as u64),
                    ],
                );
            }
            EventKind::FedpStage {
                sub_core,
                warp,
                set,
                step,
                stage,
            } => {
                let tid = 80 + sub_core as u64;
                processes
                    .entry(sm_pid)
                    .or_insert_with(|| format!("SM {}", ev.sm));
                threads
                    .entry((sm_pid, tid))
                    .or_insert_with(|| format!("sc{sub_core} fedp"));
                complete_event(
                    &mut body,
                    &format!("s{set}.{step} stage{stage}"),
                    "fedp",
                    (sm_pid, tid),
                    ev.cycle,
                    1,
                    &[("warp", warp as u64)],
                );
            }
            EventKind::CacheAccess { level, hit, store } => {
                let (pid, tid, pname, tname) = match level {
                    CacheLevel::L1 => (sm_pid, 90u64, format!("SM {}", ev.sm), "L1".to_string()),
                    CacheLevel::L2 => (
                        MEMORY_PID,
                        0u64,
                        "memory system".to_string(),
                        "L2".to_string(),
                    ),
                };
                processes.entry(pid).or_insert(pname);
                threads.entry((pid, tid)).or_insert(tname);
                let name = format!(
                    "{} {}{}",
                    level.name(),
                    if hit { "hit" } else { "miss" },
                    if store { " (st)" } else { "" }
                );
                let args: &[(&str, u64)] =
                    &[("sm", if ev.sm == MEM_SM { u64::MAX } else { sm_pid })];
                complete_event(&mut body, &name, "cache", (pid, tid), ev.cycle, 1, args);
            }
            EventKind::DramTxn { channel } => {
                let tid = 100 + channel as u64;
                processes
                    .entry(MEMORY_PID)
                    .or_insert_with(|| "memory system".to_string());
                threads
                    .entry((MEMORY_PID, tid))
                    .or_insert_with(|| format!("dram ch{channel}"));
                complete_event(
                    &mut body,
                    "sector",
                    "dram",
                    (MEMORY_PID, tid),
                    ev.cycle,
                    1,
                    &[],
                );
            }
        }
    }

    let mut all: Vec<String> = Vec::with_capacity(body.len() + processes.len() + threads.len());
    for (pid, name) in &processes {
        meta_event(&mut all, "process_name", *pid, None, name);
    }
    for ((pid, tid), name) in &threads {
        meta_event(&mut all, "thread_name", *pid, Some(*tid), name);
    }
    all.append(&mut body);

    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"generator\":\"tcsim-trace\"}}}}",
        all.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{StallReason, TraceUnit};
    use crate::jsonv::validate_json;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                cycle: 10,
                sm: 0,
                kind: EventKind::WarpIssue {
                    sub_core: 0,
                    warp: 1,
                    unit: TraceUnit::Tensor,
                },
            },
            TraceEvent {
                cycle: 10,
                sm: 0,
                kind: EventKind::HmmaStep {
                    sub_core: 0,
                    warp: 1,
                    octet: 2,
                    set: 1,
                    step: 0,
                    complete: 20,
                },
            },
            TraceEvent {
                cycle: 12,
                sm: 1,
                kind: EventKind::Stall {
                    sub_core: 3,
                    warp: 4,
                    reason: StallReason::Memory,
                    until: 40,
                },
            },
            TraceEvent {
                cycle: 13,
                sm: 1,
                kind: EventKind::CacheAccess {
                    level: CacheLevel::L1,
                    hit: false,
                    store: false,
                },
            },
            TraceEvent {
                cycle: 14,
                sm: MEM_SM,
                kind: EventKind::CacheAccess {
                    level: CacheLevel::L2,
                    hit: true,
                    store: true,
                },
            },
            TraceEvent {
                cycle: 15,
                sm: MEM_SM,
                kind: EventKind::DramTxn { channel: 5 },
            },
            TraceEvent {
                cycle: 16,
                sm: 0,
                kind: EventKind::WarpRetire {
                    sub_core: 0,
                    warp: 1,
                },
            },
            TraceEvent {
                cycle: 16,
                sm: 0,
                kind: EventKind::FedpStage {
                    sub_core: 0,
                    warp: 1,
                    set: 1,
                    step: 0,
                    stage: 3,
                },
            },
        ]
    }

    #[test]
    fn chrome_trace_is_valid_json() {
        let json = chrome_trace(&sample_events());
        validate_json(&json).expect("exporter must emit parseable JSON");
    }

    #[test]
    fn tracks_and_events_present() {
        let json = chrome_trace(&sample_events());
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("process_name"));
        assert!(json.contains("SM 0"));
        assert!(json.contains("memory system"));
        assert!(json.contains("sc0 octet 2"));
        assert!(json.contains("set1 step0"));
        assert!(
            json.contains("\"name\":\"memory\""),
            "stall reason labels the slice"
        );
        assert!(json.contains("dram ch5"));
    }

    #[test]
    fn stall_duration_spans_until() {
        let json = chrome_trace(&sample_events());
        // Stall at cycle 12 until 40 → dur 28.
        assert!(json.contains("\"ts\":12,\"dur\":28"));
        // HMMA step 10 → 20.
        assert!(json.contains("\"ts\":10,\"dur\":10"));
    }

    #[test]
    fn empty_trace_is_still_valid() {
        let json = chrome_trace(&[]);
        validate_json(&json).unwrap();
        assert!(json.contains("\"traceEvents\":[]"));
    }

    #[test]
    fn identical_streams_serialize_identically() {
        let a = chrome_trace(&sample_events());
        let b = chrome_trace(&sample_events());
        assert_eq!(a, b);
    }

    #[test]
    fn escape_handles_control_chars() {
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("\n\t\r"), "\\n\\t\\r");
        assert_eq!(escape("\u{0}x\u{1f}"), "\\u0000x\\u001f");
        assert_eq!(escape("π"), "π");
    }
}
