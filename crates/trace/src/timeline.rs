//! Plain-text per-cycle timeline of the HMMA set/step cadence.
//!
//! Renders the staircase the paper shows in Fig 10/11: one row per HMMA
//! set/step of a single `wmma.mma`, bars spanning issue → completion in
//! cycle columns. Useful for eyeballing a trace without leaving the
//! terminal (the Chrome exporter is the interactive view).

use crate::event::{EventKind, TraceEvent};

/// Renders the step cadence of the first traced `wmma.mma` instruction
/// (first SM/warp with HMMA activity, octet 0) as ASCII rows of at most
/// `width` bar columns.
///
/// Returns a note instead of a chart when the stream has no HMMA events.
///
/// # Panics
///
/// Panics if `width` is zero.
pub fn hmma_step_timeline(events: &[TraceEvent], width: usize) -> String {
    assert!(width > 0, "timeline width must be non-zero");

    // Lock onto the first (sm, warp) with HMMA activity and collect the
    // steps of its first wmma.mma: octet 0, stopping when a (set, step)
    // pair repeats (the next wmma.mma of the same warp).
    let mut target: Option<(u16, u16)> = None;
    let mut steps: Vec<(u8, u8, u64, u64)> = Vec::new(); // (set, step, issue, complete)
    let mut seen = std::collections::HashSet::new();
    for ev in events {
        let EventKind::HmmaStep {
            warp,
            octet,
            set,
            step,
            complete,
            ..
        } = ev.kind
        else {
            continue;
        };
        if octet != 0 {
            continue;
        }
        match target {
            None => target = Some((ev.sm, warp)),
            Some(t) if t != (ev.sm, warp) => continue,
            Some(_) => {}
        }
        if !seen.insert((set, step)) {
            break;
        }
        steps.push((set, step, ev.cycle, complete));
    }

    let Some((sm, warp)) = target else {
        return String::from("(no HMMA step events in trace)\n");
    };

    let base = steps.iter().map(|s| s.2).min().unwrap_or(0);
    let end = steps.iter().map(|s| s.3).max().unwrap_or(base + 1);
    let span = (end - base).max(1);
    let scale = span.div_ceil(width as u64).max(1);
    let cols = (span.div_ceil(scale) as usize).max(1);

    let mut out = String::new();
    out.push_str(&format!(
        "HMMA step cadence — SM {sm}, warp {warp}, octet 0 (issue cycle {base}, {scale} cycle(s)/column)\n"
    ));
    for (set, step, issue, complete) in &steps {
        let lo = ((issue - base) / scale) as usize;
        let hi = (((complete - base).div_ceil(scale)) as usize).clamp(lo + 1, cols);
        let mut bar = String::with_capacity(cols);
        for c in 0..cols {
            bar.push(if c >= lo && c < hi { '#' } else { '.' });
        }
        out.push_str(&format!(
            "set{set}.step{step}  +{:<4} .. +{:<4} |{bar}|\n",
            issue - base,
            complete - base
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_ev(
        sm: u16,
        warp: u16,
        octet: u8,
        set: u8,
        step: u8,
        cycle: u64,
        complete: u64,
    ) -> TraceEvent {
        TraceEvent {
            cycle,
            sm,
            kind: EventKind::HmmaStep {
                sub_core: 0,
                warp,
                octet,
                set,
                step,
                complete,
            },
        }
    }

    #[test]
    fn renders_one_row_per_step() {
        let events = vec![
            step_ev(0, 3, 0, 1, 0, 100, 110),
            step_ev(0, 3, 1, 1, 0, 100, 110), // other octet: skipped
            step_ev(0, 3, 0, 1, 1, 102, 112),
            step_ev(0, 3, 0, 2, 0, 110, 120),
        ];
        let t = hmma_step_timeline(&events, 40);
        assert!(t.contains("SM 0, warp 3"));
        assert_eq!(t.matches("set").count(), 3, "{t}");
        assert!(t.contains("set1.step0"));
        assert!(t.contains("set2.step0"));
        assert!(t.contains('#'));
    }

    #[test]
    fn stops_at_second_mma_of_same_warp() {
        let events = vec![
            step_ev(0, 0, 0, 1, 0, 10, 20),
            step_ev(0, 0, 0, 1, 1, 12, 22),
            step_ev(0, 0, 0, 1, 0, 50, 60), // next wmma.mma repeats (1,0)
        ];
        let t = hmma_step_timeline(&events, 40);
        assert_eq!(t.matches("set1.step0").count(), 1);
        assert!(!t.contains("+40"), "second mma must not extend the chart");
    }

    #[test]
    fn ignores_other_warps() {
        let events = vec![
            step_ev(0, 0, 0, 1, 0, 10, 20),
            step_ev(1, 5, 0, 1, 1, 500, 510),
            step_ev(0, 0, 0, 1, 1, 12, 22),
        ];
        let t = hmma_step_timeline(&events, 40);
        assert!(t.contains("set1.step1  +2"));
        assert!(!t.contains("+490"));
    }

    #[test]
    fn wide_spans_are_scaled_down() {
        let events = vec![
            step_ev(0, 0, 0, 1, 0, 0, 10),
            step_ev(0, 0, 0, 1, 1, 990, 1000),
        ];
        let t = hmma_step_timeline(&events, 50);
        for line in t.lines().skip(1) {
            let bar = line.split('|').nth(1).expect("bar column");
            assert!(bar.len() <= 50, "bar too wide: {}", bar.len());
        }
    }

    #[test]
    fn empty_stream_yields_note() {
        let t = hmma_step_timeline(&[], 40);
        assert!(t.contains("no HMMA"));
    }
}
