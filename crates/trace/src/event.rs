//! Typed, cycle-stamped simulation events.
//!
//! Every event is a small `Copy` struct: the hot recording path moves one
//! value into a preallocated ring slot, never allocating. The kinds map
//! one-to-one onto the micro-architectural moments the paper inspects:
//! warp issue cadence (Fig 14b IPC), HMMA set/step starts (Fig 10/11),
//! FEDP stage advances (Fig 13), scoreboard stalls (§V-A) and memory
//! hierarchy traffic.

/// Pseudo SM id used for events raised inside the shared memory system
/// (L2 slices, DRAM channels), which no single SM owns.
pub const MEM_SM: u16 = u16::MAX;

/// Functional-unit class of an issued warp instruction.
///
/// Mirrors the simulator's sub-core unit classes without depending on the
/// ISA crate (`tcsim-trace` is a leaf crate every layer can use).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TraceUnit {
    /// FP32/FP16 ALU (FFMA, HFMA2, conversions).
    Sp,
    /// Integer ALU.
    Int,
    /// Double-precision unit.
    Fp64,
    /// Transcendental (multi-function) unit.
    Mufu,
    /// Tensor-core pair (`wmma.mma`).
    Tensor,
    /// Load/store + MIO path.
    Mem,
    /// Control flow (branch, barrier, exit).
    Control,
}

impl TraceUnit {
    /// All unit classes, in stable index order.
    pub const ALL: [TraceUnit; 7] = [
        TraceUnit::Sp,
        TraceUnit::Int,
        TraceUnit::Fp64,
        TraceUnit::Mufu,
        TraceUnit::Tensor,
        TraceUnit::Mem,
        TraceUnit::Control,
    ];

    /// Stable index (matches `ALL` ordering).
    pub fn index(self) -> usize {
        match self {
            TraceUnit::Sp => 0,
            TraceUnit::Int => 1,
            TraceUnit::Fp64 => 2,
            TraceUnit::Mufu => 3,
            TraceUnit::Tensor => 4,
            TraceUnit::Mem => 5,
            TraceUnit::Control => 6,
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            TraceUnit::Sp => "sp",
            TraceUnit::Int => "int",
            TraceUnit::Fp64 => "fp64",
            TraceUnit::Mufu => "mufu",
            TraceUnit::Tensor => "tensor",
            TraceUnit::Mem => "mem",
            TraceUnit::Control => "control",
        }
    }
}

/// Why a ready warp could not issue this cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StallReason {
    /// RAW/WAW hazard on a value produced by a compute instruction.
    Raw,
    /// The target functional unit (or the MIO queue) is busy.
    Structural,
    /// RAW/WAW hazard on a value still in flight from the memory system.
    Memory,
    /// Execution fence: waiting for outstanding writes before a barrier.
    Barrier,
}

impl StallReason {
    /// All stall reasons, in stable index order.
    pub const ALL: [StallReason; 4] = [
        StallReason::Raw,
        StallReason::Structural,
        StallReason::Memory,
        StallReason::Barrier,
    ];

    /// Stable index (matches `ALL` ordering).
    pub fn index(self) -> usize {
        match self {
            StallReason::Raw => 0,
            StallReason::Structural => 1,
            StallReason::Memory => 2,
            StallReason::Barrier => 3,
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            StallReason::Raw => "raw",
            StallReason::Structural => "structural",
            StallReason::Memory => "memory",
            StallReason::Barrier => "barrier",
        }
    }
}

/// Which cache level serviced an access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CacheLevel {
    /// Per-SM L1 data cache.
    L1,
    /// Shared, banked L2.
    L2,
}

impl CacheLevel {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            CacheLevel::L1 => "L1",
            CacheLevel::L2 => "L2",
        }
    }
}

/// What happened at [`TraceEvent::cycle`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A warp instruction issued from a sub-core scheduler slot.
    WarpIssue {
        /// Issuing sub-core.
        sub_core: u8,
        /// Warp slot index on the SM.
        warp: u16,
        /// Functional unit the instruction went to.
        unit: TraceUnit,
    },
    /// A warp executed its `exit` (all its instructions have issued).
    WarpRetire {
        /// Sub-core the warp was scheduled on.
        sub_core: u8,
        /// Warp slot index on the SM.
        warp: u16,
    },
    /// A ready warp was considered for issue but blocked.
    Stall {
        /// Sub-core that attempted the issue.
        sub_core: u8,
        /// Warp slot index on the SM.
        warp: u16,
        /// Attributed cause.
        reason: StallReason,
        /// First cycle at which the blocking condition clears.
        until: u64,
    },
    /// One HMMA set/step started on a tensor-core octet (Fig 10/11).
    HmmaStep {
        /// Sub-core owning the tensor-core pair.
        sub_core: u8,
        /// Warp slot index on the SM.
        warp: u16,
        /// Octet (0..=3) the step computes for.
        octet: u8,
        /// HMMA set, 1-based as in the paper's figures.
        set: u8,
        /// Step within the set, 0-based.
        step: u8,
        /// Cycle the step's results are written back.
        complete: u64,
    },
    /// A four-element dot-product pipeline stage advanced (Fig 13).
    FedpStage {
        /// Sub-core owning the FEDP array.
        sub_core: u8,
        /// Warp slot index on the SM.
        warp: u16,
        /// HMMA set the operands belong to, 1-based.
        set: u8,
        /// Step within the set, 0-based.
        step: u8,
        /// FEDP pipeline stage, 0-based.
        stage: u8,
    },
    /// A sector request looked up a cache level.
    CacheAccess {
        /// Which cache level.
        level: CacheLevel,
        /// Whether the lookup hit (MSHR merges count as hits).
        hit: bool,
        /// Whether the access was a store.
        store: bool,
    },
    /// A sector transferred on a DRAM channel.
    DramTxn {
        /// DRAM channel (memory partition) index.
        channel: u16,
    },
}

/// One cycle-stamped event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Core cycle the event occurred at.
    pub cycle: u64,
    /// SM that raised the event ([`MEM_SM`] for memory-system events).
    pub sm: u16,
    /// What happened.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_small_and_copy() {
        // The ring buffer stores events inline; keep them compact.
        assert!(std::mem::size_of::<TraceEvent>() <= 32);
        let e = TraceEvent {
            cycle: 7,
            sm: 0,
            kind: EventKind::DramTxn { channel: 3 },
        };
        let f = e; // Copy
        assert_eq!(e, f);
    }

    #[test]
    fn stable_indices_round_trip() {
        for (i, u) in TraceUnit::ALL.iter().enumerate() {
            assert_eq!(u.index(), i);
        }
        for (i, r) in StallReason::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> = TraceUnit::ALL.iter().map(|u| u.name()).collect();
        assert_eq!(names.len(), TraceUnit::ALL.len());
        let names: std::collections::HashSet<_> =
            StallReason::ALL.iter().map(|r| r.name()).collect();
        assert_eq!(names.len(), StallReason::ALL.len());
    }
}
