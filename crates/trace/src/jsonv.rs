//! A dependency-free JSON validator.
//!
//! The build environment has no crate registry, so the exporters
//! hand-roll their JSON; this recursive-descent checker is the guard
//! that what they emit actually parses (used by `tcsim-prof` and the CI
//! smoke run before a trace file is declared good).

/// Checks that `s` is one complete, well-formed JSON value.
///
/// Returns `Err` with a byte offset and message on the first violation.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut p = Parser {
        b,
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != b.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
    depth: usize,
}

const MAX_DEPTH: usize = 256;

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{} at byte {}", msg, self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.depth += 1;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.depth += 1;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.pos += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digit"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected fraction digit"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected exponent digit"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "-12.5e+3",
            "\"a\\u00ff\\n\"",
            "{\"a\":[1,2,{\"b\":null}],\"c\":\"x\"}",
            " { \"k\" : [ 1 , 2 ] } ",
        ] {
            validate_json(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "\"unterminated",
            "01x",
            "1.",
            "1e",
            "nul",
            "{} {}",
            "\"bad \\q escape\"",
        ] {
            assert!(validate_json(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn rejects_raw_control_chars_in_strings() {
        assert!(validate_json("\"a\u{0}b\"").is_err());
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(validate_json(&deep).is_err(), "depth limit must trip");
        let ok = "[".repeat(100) + &"]".repeat(100);
        validate_json(&ok).unwrap();
    }
}
