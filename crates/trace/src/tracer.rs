//! Event sinks: the [`Tracer`] trait and its two implementations.
//!
//! The simulator threads one `&mut dyn Tracer` through its hot loops.
//! [`NullTracer`] keeps the disabled path to a single inlined boolean
//! check (verified by the `trace_overhead` benchmark in `tcsim-bench`);
//! [`RingTracer`] records into a bounded, preallocated ring so a long
//! simulation can always keep its most recent window of events without
//! allocating on the hot path after warmup.

use crate::event::TraceEvent;

/// A sink for cycle-stamped simulation events.
///
/// Implementations must be `Send`: the sweep engine moves whole `Gpu`s
/// (which own their tracer) across worker threads.
pub trait Tracer: std::fmt::Debug + Send {
    /// Whether events should be constructed and recorded at all. Hot
    /// loops check this before building an event, so a disabled tracer
    /// costs one predictable branch per site.
    fn enabled(&self) -> bool;

    /// Records one event. Only called when [`Tracer::enabled`] is true
    /// (via [`emit`]); implementations must not rely on that for safety.
    fn record(&mut self, event: TraceEvent);

    /// The recorded events, oldest first.
    fn snapshot(&self) -> Vec<TraceEvent>;

    /// Events overwritten because the sink was full.
    fn dropped(&self) -> u64 {
        0
    }

    /// Discards recorded events. The simulator calls this at each kernel
    /// launch boundary so a launch's trace covers exactly that launch.
    fn clear_events(&mut self) {}

    /// Clones the tracer behind a box (object-safe `Clone`), so builders
    /// holding a tracer can themselves stay cloneable.
    fn box_clone(&self) -> Box<dyn Tracer>;
}

impl Clone for Box<dyn Tracer> {
    fn clone(&self) -> Box<dyn Tracer> {
        self.box_clone()
    }
}

/// Records an event only when the tracer is enabled, deferring event
/// construction (and any formatting in the closure) to that case.
#[inline]
pub fn emit<F: FnOnce() -> TraceEvent>(tracer: &mut dyn Tracer, make: F) {
    if tracer.enabled() {
        tracer.record(make());
    }
}

/// The no-op tracer: recording is compiled down to a dead branch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullTracer;

impl Tracer for NullTracer {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    #[inline]
    fn record(&mut self, _event: TraceEvent) {}

    fn snapshot(&self) -> Vec<TraceEvent> {
        Vec::new()
    }

    fn box_clone(&self) -> Box<dyn Tracer> {
        Box::new(*self)
    }
}

/// Default [`RingTracer`] capacity (events). At ≤32 bytes per event this
/// bounds the buffer to 8 MiB; a 64×64×64 WMMA GEMM on the mini GPU
/// produces well under this.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 18;

/// A bounded ring-buffer tracer.
///
/// The buffer is preallocated at construction; once it reaches capacity
/// the oldest events are overwritten (and counted in
/// [`Tracer::dropped`]), so the hot path never allocates after warmup.
#[derive(Clone, Debug)]
pub struct RingTracer {
    buf: Vec<TraceEvent>,
    cap: usize,
    head: usize,
    dropped: u64,
}

impl RingTracer {
    /// A ring of [`DEFAULT_RING_CAPACITY`] events.
    pub fn new() -> RingTracer {
        RingTracer::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// A ring holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> RingTracer {
        assert!(capacity > 0, "ring tracer needs a non-zero capacity");
        RingTracer {
            buf: Vec::with_capacity(capacity),
            cap: capacity,
            head: 0,
            dropped: 0,
        }
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Discards all recorded events, keeping the allocation.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.dropped = 0;
    }
}

impl Default for RingTracer {
    fn default() -> RingTracer {
        RingTracer::new()
    }
}

impl Tracer for RingTracer {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    #[inline]
    fn record(&mut self, event: TraceEvent) {
        if self.buf.len() < self.cap {
            // Within the preallocated capacity: push never reallocates.
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head += 1;
            if self.head == self.cap {
                self.head = 0;
            }
            self.dropped += 1;
        }
    }

    fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }

    fn clear_events(&mut self) {
        self.clear();
    }

    fn box_clone(&self) -> Box<dyn Tracer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent {
            cycle,
            sm: 0,
            kind: EventKind::DramTxn { channel: 0 },
        }
    }

    #[test]
    fn tracers_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<NullTracer>();
        assert_send::<RingTracer>();
        assert_send::<Box<dyn Tracer>>();
    }

    #[test]
    fn null_tracer_records_nothing() {
        let mut t = NullTracer;
        emit(&mut t, || ev(1));
        assert!(t.snapshot().is_empty());
        assert_eq!(t.dropped(), 0);
        assert!(!t.enabled());
    }

    #[test]
    fn emit_skips_construction_when_disabled() {
        let mut t = NullTracer;
        let mut built = false;
        emit(&mut t, || {
            built = true;
            ev(1)
        });
        assert!(!built, "event closures must not run for a disabled tracer");
    }

    #[test]
    fn ring_keeps_events_in_order() {
        let mut t = RingTracer::with_capacity(8);
        for c in 0..5 {
            t.record(ev(c));
        }
        let cycles: Vec<u64> = t.snapshot().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![0, 1, 2, 3, 4]);
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let mut t = RingTracer::with_capacity(4);
        for c in 0..10 {
            t.record(ev(c));
        }
        let cycles: Vec<u64> = t.snapshot().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9], "most recent window survives");
        assert_eq!(t.dropped(), 6);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn ring_never_reallocates_after_construction() {
        let mut t = RingTracer::with_capacity(16);
        let base = t.buf.as_ptr();
        for c in 0..1000 {
            t.record(ev(c));
        }
        assert_eq!(t.buf.as_ptr(), base, "hot path must not reallocate");
        assert_eq!(t.capacity(), 16);
    }

    #[test]
    fn clear_resets_but_keeps_allocation() {
        let mut t = RingTracer::with_capacity(4);
        for c in 0..9 {
            t.record(ev(c));
        }
        let base = t.buf.as_ptr();
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
        t.record(ev(42));
        assert_eq!(t.snapshot()[0].cycle, 42);
        assert_eq!(t.buf.as_ptr(), base);
    }

    #[test]
    fn boxed_clone_preserves_contents() {
        let mut t = RingTracer::with_capacity(4);
        t.record(ev(3));
        let boxed: Box<dyn Tracer> = Box::new(t);
        let cloned = boxed.clone();
        assert_eq!(cloned.snapshot(), boxed.snapshot());
    }
}
