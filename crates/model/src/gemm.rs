//! Closed-form roofline for tiled WMMA GEMM: the DOSA-style evaluator
//! behind the tile search.
//!
//! Where [`mod@crate::estimate`] walks arbitrary kernel IR, this module
//! scores a CTA-tile *plan* for `C[m×n] = A[m×k]·B[k×n]` directly from
//! its shape: HMMA cadence for the compute bound (Table III via
//! `tcsim_core::mma_timing`), per-CTA operand footprint for the DRAM
//! bound (larger tiles reuse each loaded element more), and occupancy
//! from the plan's register/shared budget. Evaluating a candidate takes
//! nanoseconds, which is what makes exhaustive tile search viable inside
//! the tcsim-nn lowering; the cycle-level simulator stays the validator.

use tcsim_core::mma_timing;
use tcsim_isa::{Layout, WmmaDirective, WmmaShape, WmmaType};
use tcsim_sim::GpuConfig;

use crate::estimate::mem_latency;
use crate::limits::limits_for;

/// The resource shape of one CTA-tile GEMM candidate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TilePlan {
    /// CTA tile rows (M).
    pub cta_m: u64,
    /// CTA tile columns (N).
    pub cta_n: u64,
    /// Threads per CTA.
    pub threads: u64,
    /// Static shared memory per CTA in bytes (0 for unstaged plans).
    pub shared_bytes: u64,
    /// Registers per thread.
    pub regs_per_thread: u64,
    /// Whether operands are staged through shared memory (tiles are
    /// loaded once per CTA rather than once per warp).
    pub staged: bool,
}

/// A scored tile candidate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GemmEstimate {
    /// Estimated launch cycles for the full GEMM.
    pub cycles: u64,
    /// The binding bound: `"tensor"`, `"dram"` or `"latency"`.
    pub bound: &'static str,
    /// CTA waves at the plan's occupancy.
    pub waves: u64,
}

/// Scores `plan` for an `m×n×k` mixed-precision GEMM on `gpu`.
///
/// Dimensions are padded up to the plan's tile edges, exactly as the
/// lowering pads problems to the 16-element WMMA quantum.
pub fn gemm_roofline(m: u64, n: u64, k: u64, plan: &TilePlan, gpu: &GpuConfig) -> GemmEstimate {
    let sm = &gpu.sm;
    let warps = (plan.threads / 32).max(1);
    let ctas = m.div_ceil(plan.cta_m) * n.div_ceil(plan.cta_n);
    let ksteps = k.div_ceil(16).max(1);

    // HMMA cadence: 16×16×16 f16·f16+f32 tiles, two tensor cores per
    // warp (§IV), per-arch initiation interval from Table III / Table I.
    let dir = WmmaDirective::Mma {
        shape: WmmaShape::M16N16K16,
        a_layout: Layout::Row,
        b_layout: Layout::Row,
        ab_type: WmmaType::F16,
        c_type: WmmaType::F32,
        d_type: WmmaType::F32,
    };
    let t = mma_timing(sm.volta_tensor, &dir);
    let ii = (t.initiation_interval as u64 * 2) / (sm.tensor_cores.max(1) as u64);
    let tiles_per_cta = (plan.cta_m.div_ceil(16)) * (plan.cta_n.div_ceil(16));
    let mma_per_warp = tiles_per_cta.div_ceil(warps) * ksteps;

    // Occupancy from the plan's resources.
    let lim = limits_for(sm);
    let regs_per_cta = plan.regs_per_thread.max(1) as u32 * 32 * warps as u32;
    let mut ctas_per_sm = lim.max_ctas.min(lim.max_warps / warps as u32);
    ctas_per_sm = ctas_per_sm.min(lim.registers / regs_per_cta.max(1));
    if plan.shared_bytes > 0 {
        ctas_per_sm = ctas_per_sm.min(lim.shared_bytes / plan.shared_bytes as u32);
    }
    let sms = gpu.num_sms.max(1) as u64;
    let concurrent = (sms * (ctas_per_sm as u64).max(1)).max(1);
    let waves = ctas.div_ceil(concurrent);

    let warps_per_sm = (ctas * warps).div_ceil(sms);
    let warps_per_sched = warps_per_sm.div_ceil(sm.sub_cores.max(1) as u64);

    // Compute bound: tensor-core occupancy per scheduler slot.
    let compute = mma_per_warp * ii * warps_per_sched;

    // DRAM bound. Staged plans load each A/B tile once per CTA; unstaged
    // plans re-load per warp-tile (the cta_m/cta_n = 16 degenerate case
    // makes the formulas coincide). Output is written once.
    let tile_bytes = (plan.cta_m + plan.cta_n) * k * 2;
    let input_bytes = if plan.staged {
        ctas * tile_bytes
    } else {
        ctas * tiles_per_cta * (16 + 16) * k * 2
    };
    let bytes = input_bytes + m * n * 4;
    // Same 50% L2 hit-rate stand-in as `mem_latency`.
    let dram = bytes.div_ceil(32) * gpu.mem.dram_cycles_per_sector
        / (2 * gpu.mem.partitions.max(1) as u64);

    // Latency floor: each wave's k-loop is a dependent chain of
    // per-k-step work. Every step fetches the next operands from global
    // memory; staged plans additionally round-trip shared memory and
    // synchronize twice (fill + drain, costed as shared round-trips
    // through the same MIO pipe), and a warp
    // owning several output tiles issues their HMMAs back to back at
    // the cadence interval before the last one's latency drains.
    let tiles_per_warp = tiles_per_cta.div_ceil(warps);
    let stage = if plan.staged {
        3 * sm.shared_latency
    } else {
        0
    };
    let kstep = mem_latency(gpu) + stage + (tiles_per_warp - 1) * ii + t.latency as u64;
    let latency = waves * ksteps * kstep;

    let mut cycles = compute;
    let mut bound = "tensor";
    if dram > cycles {
        cycles = dram;
        bound = "dram";
    }
    if latency > cycles {
        cycles = latency;
        bound = "latency";
    }
    GemmEstimate {
        cycles,
        bound,
        waves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Plans mirroring tcsim-nn's `Tile::{Simple,Shared,Cutlass}`.
    fn simple() -> TilePlan {
        TilePlan {
            cta_m: 16,
            cta_n: 16,
            threads: 32,
            shared_bytes: 0,
            regs_per_thread: 24,
            staged: false,
        }
    }

    fn shared() -> TilePlan {
        TilePlan {
            cta_m: 32,
            cta_n: 32,
            threads: 128,
            shared_bytes: 2 * 32 * 16 * 2,
            regs_per_thread: 24,
            staged: true,
        }
    }

    fn cutlass() -> TilePlan {
        TilePlan {
            cta_m: 64,
            cta_n: 64,
            threads: 128,
            shared_bytes: 2 * 64 * 16 * 2 * 2,
            regs_per_thread: 64,
            staged: true,
        }
    }

    #[test]
    fn larger_tiles_win_on_large_square_gemm() {
        let gpu = GpuConfig::titan_v();
        let s = gemm_roofline(1024, 1024, 1024, &simple(), &gpu);
        let sh = gemm_roofline(1024, 1024, 1024, &shared(), &gpu);
        let c = gemm_roofline(1024, 1024, 1024, &cutlass(), &gpu);
        assert!(
            c.cycles <= sh.cycles,
            "cutlass {} vs shared {}",
            c.cycles,
            sh.cycles
        );
        assert!(
            sh.cycles <= s.cycles,
            "shared {} vs simple {}",
            sh.cycles,
            s.cycles
        );
    }

    #[test]
    fn staging_overhead_penalizes_large_tiles_on_small_problems() {
        // At zoo scale the k-chain dominates and the unstaged 16×16
        // tile dodges the fill/drain synchronization every k-step.
        let gpu = GpuConfig::titan_v();
        let s = gemm_roofline(64, 64, 64, &simple(), &gpu);
        let c = gemm_roofline(64, 64, 64, &cutlass(), &gpu);
        assert!(
            s.cycles < c.cycles,
            "simple {} vs cutlass {}",
            s.cycles,
            c.cycles
        );
    }

    #[test]
    fn more_work_costs_more() {
        let gpu = GpuConfig::titan_v();
        let a = gemm_roofline(128, 128, 128, &cutlass(), &gpu);
        let b = gemm_roofline(512, 512, 512, &cutlass(), &gpu);
        assert!(b.cycles > a.cycles);
    }

    #[test]
    fn staging_reduces_the_dram_bound() {
        let gpu = GpuConfig::titan_v();
        let unstaged = TilePlan {
            staged: false,
            ..shared()
        };
        let a = gemm_roofline(1024, 1024, 1024, &shared(), &gpu);
        let b = gemm_roofline(1024, 1024, 1024, &unstaged, &gpu);
        assert!(a.cycles <= b.cycles);
    }
}
