//! Roofline composition: from one warp's [`WalkSummary`] to a
//! whole-launch cycle estimate.
//!
//! The launch is modeled as `waves` rounds of concurrently resident CTAs
//! (occupancy-limited), and the cycle count as the maximum of five
//! bounds, mirroring how the paper decomposes measured kernels into
//! issue-, tensor-, and memory-limited regimes (§V–VI):
//!
//! * **issue** — one warp instruction per sub-core scheduler per cycle;
//! * **unit** — per-class functional-unit occupancy (FP32/INT lanes,
//!   HMMA cadence from Table III);
//! * **mio** — the shared-memory/LSU pipe at `mio_cycles_per_txn`;
//! * **dram** — 32-byte sectors across the memory partitions;
//! * **latency** — the dependence critical path of each wave when too
//!   few warps are resident to hide it.

use tcsim_isa::{Kernel, UnitClass};
use tcsim_sim::GpuConfig;
use tcsim_sm::DecodedKernel;
use tcsim_verify::perf::{occupancy, Occupancy};
use tcsim_verify::LaunchGeometry;

use crate::limits::limits_for;
use crate::walk::{walk_kernel, WalkSummary};

/// A static whole-launch cycle estimate and its decomposition.
#[derive(Clone, Debug)]
pub struct Estimate {
    /// Estimated launch cycles.
    pub cycles: u64,
    /// Which bound produced the estimate: `"issue"`, a unit-class name
    /// (`"sp"`, `"int"`, `"tensor"`, …), `"mio"`, `"dram"` or
    /// `"latency"`.
    pub bound: &'static str,
    /// CTA waves: grid size over concurrently resident CTAs.
    pub waves: u64,
    /// Static occupancy under the GPU's SM limits.
    pub occupancy: Occupancy,
    /// The per-warp cost walk backing the estimate.
    pub walk: WalkSummary,
}

/// Fixed launch/drain overhead added to every estimate: parameter and
/// instruction delivery plus the final writeback drain. Calibrated
/// against the cycle-level simulator on the fuzz corpus.
const LAUNCH_OVERHEAD: u64 = 60;

/// The model's flat global-memory round-trip latency for `gpu`: NoC both
/// ways plus half the DRAM latency (a 50% L2 hit-rate stand-in).
pub fn mem_latency(gpu: &GpuConfig) -> u64 {
    2 * gpu.mem.noc_latency + gpu.mem.dram_latency / 2
}

/// Short lower-case name of a unit class, for the `bound` field.
fn unit_name(u: UnitClass) -> &'static str {
    match u {
        UnitClass::Sp => "sp",
        UnitClass::Int => "int",
        UnitClass::Fp64 => "fp64",
        UnitClass::Mufu => "mufu",
        UnitClass::Tensor => "tensor",
        UnitClass::Mem => "mem",
        UnitClass::Control => "control",
    }
}

/// Estimates the cycle count of launching `kernel` under `geom` on `gpu`
/// with the parameter buffer `params`, without simulating.
pub fn estimate(
    kernel: &Kernel,
    geom: &LaunchGeometry,
    params: &[u8],
    gpu: &GpuConfig,
) -> Estimate {
    let sm = &gpu.sm;
    let dk = DecodedKernel::decode(kernel, sm);
    let mem_lat = mem_latency(gpu);
    let walk = walk_kernel(kernel, &dk, geom, sm, params, mem_lat);

    let lim = limits_for(sm);
    let occ = occupancy(kernel, geom, &lim);

    let ctas = geom.grid.count().max(1);
    let warps_per_cta = geom.warps_per_cta().max(1) as u64;
    let total_warps = ctas * warps_per_cta;
    let sms = gpu.num_sms.max(1) as u64;
    let concurrent = (sms * (occ.ctas_per_sm as u64).max(1)).max(1);
    let waves = ctas.div_ceil(concurrent);
    // Warps one SM processes over the whole launch (not just one wave):
    // throughput bounds integrate over all waves.
    let warps_per_sm = total_warps.div_ceil(sms);
    let sched = sm.sub_cores.max(1) as u64;
    let warps_per_sched = warps_per_sm.div_ceil(sched);

    // Issue bound: each scheduler retires one warp instruction per cycle.
    let mut cycles = walk.steps * warps_per_sched;
    let mut bound = "issue";

    // Per-unit occupancy bounds. The MIO classes are covered by the
    // dedicated bound below (the pipe is SM-wide, not per-scheduler).
    for (ui, u) in UnitClass::ALL.iter().enumerate() {
        if matches!(u, UnitClass::Mem | UnitClass::Control) {
            continue;
        }
        let t = walk.issue_cycles[ui] * warps_per_sched;
        if t > cycles {
            cycles = t;
            bound = unit_name(*u);
        }
    }

    // MIO bound: transactions from every warp on the SM share one pipe.
    let mio = walk.mio_txns * sm.mio_cycles_per_txn * warps_per_sm;
    if mio > cycles {
        cycles = mio;
        bound = "mio";
    }

    // DRAM bound: all sectors of the launch over the partition count,
    // at the same 50% L2 hit-rate stand-in as `mem_latency`.
    let dram = total_warps * walk.global_sectors * gpu.mem.dram_cycles_per_sector
        / (2 * gpu.mem.partitions.max(1) as u64);
    if dram > cycles {
        cycles = dram;
        bound = "dram";
    }

    // Latency bound: each wave must at least traverse the dependence
    // chain of its slowest warp.
    let latency = waves * walk.critical_path;
    if latency > cycles {
        cycles = latency;
        bound = "latency";
    }

    Estimate {
        cycles: cycles + LAUNCH_OVERHEAD,
        bound,
        waves,
        occupancy: occ,
        walk,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsim_isa::{KernelBuilder, MemWidth, Operand};

    fn tiny_kernel() -> Kernel {
        let mut b = KernelBuilder::new("tiny");
        let r = b.reg();
        b.mov(r, Operand::Imm(1));
        b.iadd(r, r, Operand::Imm(2));
        b.exit();
        b.build()
    }

    #[test]
    fn estimate_is_deterministic() {
        let k = tiny_kernel();
        let geom = LaunchGeometry::new((4, 1, 1), (64, 1, 1));
        let gpu = GpuConfig::mini();
        let a = estimate(&k, &geom, &[], &gpu);
        let b = estimate(&k, &geom, &[], &gpu);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.bound, b.bound);
        assert_eq!(a.walk, b.walk);
    }

    #[test]
    fn bigger_grids_cost_more() {
        let k = tiny_kernel();
        let gpu = GpuConfig::mini();
        let small = estimate(&k, &LaunchGeometry::new((2, 1, 1), (64, 1, 1)), &[], &gpu);
        let large = estimate(&k, &LaunchGeometry::new((512, 1, 1), (64, 1, 1)), &[], &gpu);
        assert!(
            large.cycles > small.cycles,
            "{} vs {}",
            large.cycles,
            small.cycles
        );
    }

    #[test]
    fn memory_heavy_kernel_is_memory_bound() {
        let mut b = KernelBuilder::new("mem");
        let pp = b.param_u64("p");
        let addr = b.reg_pair();
        let d = b.reg();
        b.ld_param(MemWidth::B64, addr, pp);
        for i in 0..64 {
            b.ld_global(MemWidth::B32, d, addr, 4 * i);
        }
        b.exit();
        let k = b.build();
        let geom = LaunchGeometry::new((256, 1, 1), (256, 1, 1));
        let e = estimate(&k, &geom, &64u64.to_le_bytes(), &GpuConfig::mini());
        assert!(
            e.bound == "dram" || e.bound == "mio",
            "expected a memory bound, got {}",
            e.bound
        );
    }

    #[test]
    fn single_warp_is_latency_bound() {
        let mut b = KernelBuilder::new("chain");
        let r = b.reg();
        b.mov(r, Operand::Imm(1));
        for _ in 0..32 {
            b.fadd(r, r, Operand::Reg(r));
        }
        b.exit();
        let k = b.build();
        let e = estimate(
            &k,
            &LaunchGeometry::new((1, 1, 1), (32, 1, 1)),
            &[],
            &GpuConfig::mini(),
        );
        assert_eq!(e.bound, "latency");
        assert_eq!(e.waves, 1);
    }
}
