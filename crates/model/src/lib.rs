#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Static analytical performance model for the simulated tensor-core GPU.
//!
//! Where `tcsim-sim` answers "how many cycles does this launch take" by
//! simulating every warp, this crate answers the same question in
//! microseconds from the kernel IR alone:
//!
//! 1. [`walk`] — a constant-propagating **cost walk** over one
//!    representative warp's straight-line trace: per-unit instruction
//!    mix, issue-cycle totals against the [`tcsim_sm::DecodedKernel`]
//!    timing tables, a dependence-chain critical path, and memory
//!    traffic (global sectors, MIO transactions).
//! 2. [`mod@estimate`] — a **roofline composition** of the walk: occupancy
//!    from register/shared usage (via `tcsim_verify::perf`), wave count,
//!    and the max of issue, per-unit throughput, MIO, DRAM and
//!    latency bounds for a whole [`tcsim_sim::GpuConfig`].
//! 3. [`gemm`] — a **closed-form roofline for tiled WMMA GEMM** used to
//!    rank CTA-tile candidates (`Tile::{Simple,Shared,Cutlass}` in
//!    tcsim-nn) without building the kernels at all.
//! 4. [`limits`] — the bridge pinning `tcsim_verify::perf::PerfLimits`
//!    (which cannot see `tcsim-sm`) to the real [`tcsim_sm::SmConfig`]
//!    presets.
//!
//! The `tcsim-model` binary in `tcsim-bench` sweeps this estimator
//! against the cycle-level simulator over the committed fuzz corpus and
//! the fig17 GEMM families, reporting estimator-vs-sim correlation the
//! way the paper reports model-vs-silicon IPC correlation (§VI).

pub mod estimate;
pub mod gemm;
pub mod limits;
pub mod walk;

pub use estimate::{estimate, mem_latency, Estimate};
pub use gemm::{gemm_roofline, GemmEstimate, TilePlan};
pub use limits::limits_for;
pub use walk::{walk_kernel, WalkSummary};
