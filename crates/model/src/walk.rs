//! Constant-propagating cost walk over one representative warp.
//!
//! The walk abstractly executes warp 0 of CTA (0,0,0): registers whose
//! values are warp-uniform constants (parameter loads, block/grid
//! extents, integer arithmetic over them) fold exactly, so loop trip
//! counts driven by kernel parameters unroll and the walk visits every
//! dynamic instruction the warp would issue. Thread-varying values
//! (`%tid`, `%laneid`, loads from memory) stay unknown; a branch on an
//! unknown predicate is handled structurally — divergent branches (with
//! a reconvergence point) cost both sides, unknown backward branches
//! exit the loop once — and sets the [`WalkSummary::approx`] flag.
//!
//! Costs are charged from the same [`DecodedKernel`] timing tables the
//! cycle-level scheduler issues from, which is what makes the estimate
//! comparable to the simulator at all.

use std::collections::HashMap;

use tcsim_isa::{
    CmpOp, DataType, FragmentKind, Instr, Kernel, MemSpace, MemWidth, Op, Operand, SpecialReg,
    UnitClass, WmmaDirective,
};
use tcsim_sm::{DecodedKernel, SmConfig};
use tcsim_verify::LaunchGeometry;

/// Dynamic-instruction budget: a walk that exceeds it stops and flags
/// itself approximate rather than spinning on an unfolded loop.
const FUEL: u64 = 2_000_000;

/// Maximum divergent-branch nesting the walk follows exactly.
const MAX_DEPTH: u32 = 32;

/// What one warp of the kernel does, statically.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WalkSummary {
    /// Dynamic warp instructions issued.
    pub steps: u64,
    /// Dynamic instructions per functional-unit class, indexed in
    /// [`UnitClass::ALL`] order.
    pub issued_by_unit: [u64; UnitClass::COUNT],
    /// Functional-unit occupancy cycles per class (issue intervals and,
    /// for the MIO classes, transaction cycles), same indexing.
    pub issue_cycles: [u64; UnitClass::COUNT],
    /// Dependence-chain critical path in cycles: the longest
    /// register-dataflow chain through the walked trace, using decoded
    /// latencies for ALU/tensor ops and the model's memory latency for
    /// loads.
    pub critical_path: u64,
    /// `bar.sync` executions.
    pub barriers: u64,
    /// 32-byte DRAM sectors touched by this warp's global/local
    /// accesses, assuming coalesced lanes (the perf lints flag the
    /// uncoalesced cases separately).
    pub global_sectors: u64,
    /// MIO-path transactions (shared, global, shuffle, WMMA ld/st).
    pub mio_txns: u64,
    /// Whether any unknown branch, depth cap or fuel exhaustion forced
    /// an approximation.
    pub approx: bool,
}

/// Concrete warp-uniform state: 32-bit registers, 64-bit pairs, and
/// predicates whose values folded to constants.
#[derive(Clone, Default)]
struct St {
    regs: HashMap<u16, u32>,
    pairs: HashMap<u16, u64>,
    preds: HashMap<u8, bool>,
}

impl St {
    /// Kills every written register (and any pair it is half of).
    fn kill_defs(&mut self, i: &Instr, volta: bool) {
        for r in i.def_regs(volta) {
            self.regs.remove(&r.0);
            self.pairs.remove(&r.0);
            if r.0 > 0 {
                self.pairs.remove(&(r.0 - 1));
            }
        }
        if let Some(p) = i.pred_dst {
            self.preds.remove(&p.0);
        }
    }

    /// Keeps only bindings present and equal in both states.
    fn meet(&mut self, other: &St) {
        self.regs.retain(|r, v| other.regs.get(r) == Some(v));
        self.pairs.retain(|r, v| other.pairs.get(r) == Some(v));
        self.preds.retain(|p, v| other.preds.get(p) == Some(v));
    }
}

/// Control-flow outcome of a (sub-)walk.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Flow {
    /// Reached the stop PC (a reconvergence point or the kernel end).
    Reached,
    /// Executed `exit` (or ran out of fuel).
    Exited,
}

struct Walker<'a> {
    kernel: &'a Kernel,
    dk: &'a DecodedKernel,
    geom: &'a LaunchGeometry,
    sm: &'a SmConfig,
    params: &'a [u8],
    mem_latency: u64,
    volta: bool,
    lanes: u64,
    fuel: u64,
    /// Cycle each 32-bit register's value becomes ready (dataflow time).
    ready: HashMap<u16, u64>,
    pready: [u64; 8],
    sum: WalkSummary,
}

/// Index of a unit class in [`UnitClass::ALL`].
fn unit_index(u: UnitClass) -> usize {
    UnitClass::ALL
        .iter()
        .position(|x| *x == u)
        .expect("unit in ALL")
}

/// Walks `kernel` as decoded for `sm` under `geom`, with the parameter
/// buffer `params` backing `ld.param` folds and `mem_latency` standing in
/// for a global-memory round trip in the critical path.
pub fn walk_kernel(
    kernel: &Kernel,
    dk: &DecodedKernel,
    geom: &LaunchGeometry,
    sm: &SmConfig,
    params: &[u8],
    mem_latency: u64,
) -> WalkSummary {
    let threads = geom.threads_per_cta() as u64;
    let mut w = Walker {
        kernel,
        dk,
        geom,
        sm,
        params,
        mem_latency,
        volta: sm.volta_tensor,
        lanes: threads.clamp(1, 32),
        fuel: FUEL,
        ready: HashMap::new(),
        pready: [0; 8],
        sum: WalkSummary::default(),
    };
    let mut st = St::default();
    let end = kernel.instrs().len();
    w.run(&mut st, 0, end, 0);
    w.sum
}

impl Walker<'_> {
    fn run(&mut self, st: &mut St, mut pc: usize, stop: usize, depth: u32) -> Flow {
        let instrs = self.kernel.instrs();
        loop {
            if pc >= stop || pc >= instrs.len() {
                return Flow::Reached;
            }
            if self.fuel == 0 {
                self.sum.approx = true;
                return Flow::Exited;
            }
            self.fuel -= 1;
            let i = &instrs[pc];
            self.account(pc, i);

            let guard = i
                .guard
                .map(|(p, sense)| (st.preds.get(&p.0).copied(), sense));
            let known = |g: Option<(Option<bool>, bool)>| -> Option<bool> {
                match g {
                    None => Some(true),
                    Some((Some(v), sense)) => Some(v == sense),
                    Some((None, _)) => None,
                }
            };
            let taken = known(guard);

            match i.op {
                Op::Exit => match taken {
                    Some(true) => return Flow::Exited,
                    // Guard false — or unknown, in which case at least
                    // the representative warp-uniform path continues.
                    _ => pc += 1,
                },
                Op::Bra => {
                    let t = i.target.expect("resolved branch target");
                    match taken {
                        Some(true) => pc = t,
                        Some(false) => pc += 1,
                        None => {
                            if let Some(rc) = i.reconv {
                                // Divergent branch: the warp pays for
                                // both sides, serialized, then rejoins.
                                if depth >= MAX_DEPTH {
                                    self.sum.approx = true;
                                    pc = rc;
                                } else {
                                    let mut side = st.clone();
                                    let f_taken = self.run(&mut side, t, rc, depth + 1);
                                    let f_fall = self.run(st, pc + 1, rc, depth + 1);
                                    st.meet(&side);
                                    if f_taken == Flow::Exited && f_fall == Flow::Exited {
                                        return Flow::Exited;
                                    }
                                    pc = rc;
                                }
                            } else if t <= pc {
                                // Unknown uniform backward branch: a
                                // loop whose trip count did not fold.
                                // Fall through (run it once) and flag.
                                self.sum.approx = true;
                                pc += 1;
                            } else {
                                // Unknown uniform forward branch: take
                                // the fall-through (cost the region).
                                self.sum.approx = true;
                                pc += 1;
                            }
                        }
                    }
                }
                _ => {
                    match taken {
                        Some(true) => self.exec(st, i),
                        Some(false) => {} // masked off: no writes
                        None => st.kill_defs(i, self.volta),
                    }
                    pc += 1;
                }
            }
        }
    }

    /// Charges issue/occupancy/latency and memory traffic for one
    /// dynamic instruction.
    fn account(&mut self, pc: usize, i: &Instr) {
        self.sum.steps += 1;
        let unit = i.op.unit();
        let ui = unit_index(unit);
        self.sum.issued_by_unit[ui] += 1;
        let t = self.dk.timing(pc);

        // Memory traffic and MIO occupancy.
        let mut txns = 0u64;
        match &i.op {
            Op::Ld { space, width } | Op::St { space, width } => match space {
                MemSpace::Global | MemSpace::Local => {
                    let sectors = (self.lanes * width.bytes()).div_ceil(32);
                    self.sum.global_sectors += sectors;
                    txns = sectors;
                }
                MemSpace::Shared => txns = 1,
                MemSpace::Param => txns = 1,
            },
            Op::Atom { space, .. } => {
                // Atomics serialize per lane.
                txns = self.lanes;
                if *space == MemSpace::Global {
                    self.sum.global_sectors += self.lanes;
                }
            }
            Op::Shfl { .. } => txns = 1,
            Op::Wmma(dir) => match dir {
                WmmaDirective::Load {
                    frag, shape, ty, ..
                } => {
                    let bytes = (frag.elements(*shape) * ty.bits() / 8) as u64;
                    txns = bytes.div_ceil(32);
                    self.sum.global_sectors += txns;
                }
                WmmaDirective::Store { shape, ty, .. } => {
                    let bytes = (FragmentKind::D.elements(*shape) * ty.bits() / 8) as u64;
                    txns = bytes.div_ceil(32);
                    self.sum.global_sectors += txns;
                }
                _ => {}
            },
            Op::Bar => self.sum.barriers += 1,
            _ => {}
        }
        self.sum.mio_txns += txns;

        // Functional-unit occupancy.
        let occupancy = match unit {
            UnitClass::Mem => txns.max(1) * self.sm.mio_cycles_per_txn,
            UnitClass::Control => 1,
            _ => t.ii.max(1) + t.bank_conflicts,
        };
        self.sum.issue_cycles[ui] += occupancy;

        // Dataflow critical path.
        let lat = match unit {
            UnitClass::Mem => match &i.op {
                Op::Ld {
                    space: MemSpace::Shared,
                    ..
                }
                | Op::St {
                    space: MemSpace::Shared,
                    ..
                }
                | Op::Atom {
                    space: MemSpace::Shared,
                    ..
                } => self.sm.shared_latency,
                Op::Ld {
                    space: MemSpace::Param,
                    ..
                } => self.sm.shared_latency,
                Op::Shfl { .. } => self.sm.shared_latency,
                Op::Wmma(WmmaDirective::Load { .. } | WmmaDirective::Store { .. }) => {
                    self.mem_latency
                }
                _ => self.mem_latency,
            },
            UnitClass::Control => 0,
            _ => t.latency,
        };
        let mut start = 0u64;
        for r in self.dk.uops().uses(pc) {
            start = start.max(self.ready.get(&r.0).copied().unwrap_or(0));
        }
        if let Some((p, _)) = i.guard {
            start = start.max(self.pready[p.0 as usize % 8]);
        }
        let finish = start + lat;
        for r in self.dk.uops().defs(pc) {
            self.ready.insert(r.0, finish);
        }
        if let Some(p) = i.pred_dst {
            self.pready[p.0 as usize % 8] = finish;
        }
        self.sum.critical_path = self.sum.critical_path.max(finish);
    }

    fn special32(&self, s: SpecialReg) -> Option<u32> {
        match s {
            SpecialReg::CtaIdX | SpecialReg::CtaIdY | SpecialReg::CtaIdZ => Some(0),
            SpecialReg::NTidX => Some(self.geom.block.x),
            SpecialReg::NTidY => Some(self.geom.block.y),
            SpecialReg::NCtaIdX => Some(self.geom.grid.x),
            SpecialReg::NCtaIdY => Some(self.geom.grid.y),
            // Thread-varying within the warp.
            _ => None,
        }
    }

    fn eval32(&self, st: &St, op: &Operand) -> Option<u32> {
        match op {
            Operand::Imm(v) => Some(*v as u32),
            Operand::Reg(r) => st.regs.get(&r.0).copied(),
            Operand::Special(s) => self.special32(*s),
            _ => None,
        }
    }

    fn eval64(&self, st: &St, op: &Operand) -> Option<u64> {
        match op {
            Operand::Imm(v) => Some(*v as u64),
            Operand::RegPair(r) => st.pairs.get(&r.0).copied(),
            // A plain register zero-extends, as the executor's value64.
            Operand::Reg(r) => st.regs.get(&r.0).map(|v| *v as u64),
            _ => None,
        }
    }

    /// Folds the instruction's value semantics into `st`. Mirrors the
    /// integer subset of `crates/isa/src/exec.rs`; anything it does not
    /// understand kills its definitions.
    fn exec(&self, st: &mut St, i: &Instr) {
        let v32: Option<u32> = match i.op {
            Op::Mov => self.eval32(st, &i.srcs[0]),
            Op::IAdd
            | Op::ISub
            | Op::IMul
            | Op::IMin
            | Op::IMax
            | Op::Shl
            | Op::Shr
            | Op::Sar
            | Op::And
            | Op::Or
            | Op::Xor => match (self.eval32(st, &i.srcs[0]), self.eval32(st, &i.srcs[1])) {
                (Some(a), Some(b)) => Some(match i.op {
                    Op::IAdd => a.wrapping_add(b),
                    Op::ISub => a.wrapping_sub(b),
                    Op::IMul => a.wrapping_mul(b),
                    Op::IMin => (a as i32).min(b as i32) as u32,
                    Op::IMax => (a as i32).max(b as i32) as u32,
                    Op::Shl => a.wrapping_shl(b),
                    Op::Shr => a.wrapping_shr(b),
                    Op::Sar => ((a as i32).wrapping_shr(b)) as u32,
                    Op::And => a & b,
                    Op::Or => a | b,
                    _ => a ^ b,
                }),
                _ => None,
            },
            Op::Not => self.eval32(st, &i.srcs[0]).map(|a| !a),
            Op::IMad => match (
                self.eval32(st, &i.srcs[0]),
                self.eval32(st, &i.srcs[1]),
                self.eval32(st, &i.srcs[2]),
            ) {
                (Some(a), Some(b), Some(c)) => Some(a.wrapping_mul(b).wrapping_add(c)),
                _ => None,
            },
            Op::SelP => {
                let Operand::Pred(p) = i.srcs[0] else {
                    return st.kill_defs(i, self.volta);
                };
                match st.preds.get(&p.0) {
                    Some(true) => self.eval32(st, &i.srcs[1]),
                    Some(false) => self.eval32(st, &i.srcs[2]),
                    None => None,
                }
            }
            Op::Cvt {
                from: DataType::U32,
                to: DataType::S32,
            }
            | Op::Cvt {
                from: DataType::S32,
                to: DataType::U32,
            } => self.eval32(st, &i.srcs[0]),
            Op::Cvt {
                from: DataType::U64,
                to: DataType::U32,
            } => self.eval64(st, &i.srcs[0]).map(|v| v as u32),
            Op::Ld {
                space: MemSpace::Param,
                width: MemWidth::B32,
            } => self
                .param_load(st, i, 4)
                .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]])),
            _ => None,
        };

        let v64: Option<u64> = match i.op {
            Op::Mov64 => self.eval64(st, &i.srcs[0]),
            Op::IAdd64 => match (self.eval64(st, &i.srcs[0]), self.eval64(st, &i.srcs[1])) {
                (Some(a), Some(b)) => Some(a.wrapping_add(b)),
                _ => None,
            },
            Op::IMadWide => match (
                self.eval32(st, &i.srcs[0]),
                self.eval32(st, &i.srcs[1]),
                self.eval64(st, &i.srcs[2]),
            ) {
                (Some(a), Some(b), Some(c)) => {
                    Some((a as u64).wrapping_mul(b as u64).wrapping_add(c))
                }
                _ => None,
            },
            Op::Cvt {
                from: DataType::U32,
                to: DataType::U64,
            } => self.eval32(st, &i.srcs[0]).map(|v| v as u64),
            Op::Ld {
                space: MemSpace::Param,
                width: MemWidth::B64,
            } => self.param_load(st, i, 8).map(u64_from_le),
            _ => None,
        };

        let pv: Option<bool> = match i.op {
            Op::Setp { cmp, ty } => self.fold_setp(st, i, cmp, ty),
            _ => None,
        };

        // Write-through: defs first killed, then concrete values bound.
        st.kill_defs(i, self.volta);
        if let Some(dst) = i.dst {
            if i.op.writes_pair() {
                if let Some(v) = v64 {
                    st.pairs.insert(dst.0, v);
                }
            } else if let Some(v) = v32 {
                st.regs.insert(dst.0, v);
            }
        }
        if let (Some(p), Some(v)) = (i.pred_dst, pv) {
            st.preds.insert(p.0, v);
        }
    }

    fn fold_setp(&self, st: &St, i: &Instr, cmp: CmpOp, ty: DataType) -> Option<bool> {
        let ord = match ty {
            DataType::S32 => {
                let a = self.eval32(st, &i.srcs[0])? as i32;
                let b = self.eval32(st, &i.srcs[1])? as i32;
                a.cmp(&b)
            }
            DataType::U32 => {
                let a = self.eval32(st, &i.srcs[0])?;
                let b = self.eval32(st, &i.srcs[1])?;
                a.cmp(&b)
            }
            DataType::U64 => {
                let a = self.eval64(st, &i.srcs[0])?;
                let b = self.eval64(st, &i.srcs[1])?;
                a.cmp(&b)
            }
            _ => return None,
        };
        Some(cmp.eval(ord))
    }

    /// Reads `bytes` from the parameter buffer for a `ld.param` whose
    /// address folds to a constant.
    fn param_load(&self, st: &St, i: &Instr, bytes: usize) -> Option<&[u8]> {
        let base = self.eval32(st, &i.srcs[0])? as i64;
        let off = match i.srcs.get(1) {
            Some(Operand::Imm(v)) => *v,
            _ => 0,
        };
        let addr = usize::try_from(base + off).ok()?;
        self.params.get(addr..addr + bytes)
    }
}

fn u64_from_le(b: &[u8]) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&b[..8]);
    u64::from_le_bytes(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsim_isa::{KernelBuilder, PredReg};

    fn walk(k: &Kernel, geom: &LaunchGeometry, params: &[u8]) -> WalkSummary {
        let sm = SmConfig::volta();
        let dk = DecodedKernel::decode(k, &sm);
        walk_kernel(k, &dk, geom, &sm, params, 150)
    }

    #[test]
    fn straight_line_counts_every_instruction() {
        let mut b = KernelBuilder::new("t");
        let r = b.reg();
        b.mov(r, Operand::Imm(1));
        b.iadd(r, r, Operand::Imm(2));
        b.exit();
        let k = b.build();
        let s = walk(&k, &LaunchGeometry::new((1, 1, 1), (32, 1, 1)), &[]);
        assert_eq!(s.steps, 3);
        assert!(!s.approx);
        assert_eq!(s.issued_by_unit[unit_index(UnitClass::Int)], 2);
        assert_eq!(s.issued_by_unit[unit_index(UnitClass::Control)], 1);
    }

    #[test]
    fn param_driven_loop_unrolls_exactly() {
        // for (i = 0; i < n; i++) {} with n = 5 from the param buffer.
        let mut b = KernelBuilder::new("loop");
        let pn = b.param_u32("n");
        let n = b.reg();
        let i = b.reg();
        let p = PredReg(0);
        b.ld_param(MemWidth::B32, n, pn);
        b.mov(i, Operand::Imm(0));
        let head = b.label();
        let done = b.label();
        b.place(head);
        b.setp(p, CmpOp::Ge, DataType::S32, i, Operand::Reg(n));
        b.bra_if(p, true, done);
        b.iadd(i, i, Operand::Imm(1));
        b.bra(head);
        b.place(done);
        b.exit();
        let k = b.build();

        let s = walk(
            &k,
            &LaunchGeometry::new((1, 1, 1), (32, 1, 1)),
            &5u32.to_le_bytes(),
        );
        assert!(!s.approx, "loop bound should fold from the param buffer");
        // 2 setup + 5×(setp, bra, iadd, bra) + final (setp, taken bra) + exit.
        assert_eq!(s.steps, 2 + 5 * 4 + 2 + 1);
    }

    #[test]
    fn divergent_branch_costs_both_sides() {
        let mut b = KernelBuilder::new("div");
        let t = b.reg();
        let p = PredReg(0);
        b.mov(t, Operand::Special(SpecialReg::TidX));
        b.setp(p, CmpOp::Lt, DataType::U32, t, Operand::Imm(16));
        let join = b.label();
        b.bra_div(p, true, join, join);
        // fall-through side: 3 iadds; taken side is empty.
        for _ in 0..3 {
            b.iadd(t, t, Operand::Imm(1));
        }
        b.place(join);
        b.exit();
        let k = b.build();
        let s = walk(&k, &LaunchGeometry::new((1, 1, 1), (32, 1, 1)), &[]);
        // mov, setp, bra, 3 iadds (fall side; taken side is empty), exit.
        assert_eq!(s.steps, 7);
        assert!(!s.approx);
    }

    #[test]
    fn critical_path_sees_dependent_chain() {
        let mut b = KernelBuilder::new("chain");
        let a = b.reg();
        let c = b.reg();
        b.mov(a, Operand::Imm(1));
        b.fadd(a, a, Operand::Reg(a));
        b.fadd(a, a, Operand::Reg(a));
        b.fadd(c, a, Operand::Reg(a));
        b.exit();
        let k = b.build();
        let sm = SmConfig::volta();
        let s = walk(&k, &LaunchGeometry::new((1, 1, 1), (32, 1, 1)), &[]);
        // Four dependent ALU ops at alu_latency each.
        assert_eq!(s.critical_path, 4 * sm.alu_latency);
    }

    #[test]
    fn global_load_charges_sectors_and_latency() {
        let mut b = KernelBuilder::new("g");
        let pp = b.param_u64("p");
        let addr = b.reg_pair();
        let d = b.reg();
        b.ld_param(MemWidth::B64, addr, pp);
        b.ld_global(MemWidth::B32, d, addr, 0);
        b.iadd(d, d, Operand::Imm(1));
        b.exit();
        let k = b.build();
        let s = walk(
            &k,
            &LaunchGeometry::new((1, 1, 1), (32, 1, 1)),
            &64u64.to_le_bytes(),
        );
        // 32 lanes × 4B = 128B = 4 sectors.
        assert_eq!(s.global_sectors, 4);
        // ld.param + ld.global dependent chain dominates: shared_latency
        // (param) + mem latency (150) + alu.
        let sm = SmConfig::volta();
        assert_eq!(s.critical_path, sm.shared_latency + 150 + sm.alu_latency);
    }

    #[test]
    fn unknown_backward_branch_flags_approx() {
        // Loop bound comes from tid — cannot fold; walk must terminate.
        let mut b = KernelBuilder::new("t");
        let t = b.reg();
        let p = PredReg(0);
        b.mov(t, Operand::Special(SpecialReg::TidX));
        let head = b.label();
        b.place(head);
        b.setp(p, CmpOp::Gt, DataType::S32, t, Operand::Imm(0));
        b.iadd(t, t, Operand::Imm(-1));
        b.bra_if(p, true, head);
        b.exit();
        let k = b.build();
        let s = walk(&k, &LaunchGeometry::new((1, 1, 1), (32, 1, 1)), &[]);
        assert!(s.approx);
        assert!(s.steps < 20);
    }
}
