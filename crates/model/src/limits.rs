//! Bridging `tcsim_verify::perf::PerfLimits` to real [`SmConfig`]s.
//!
//! `tcsim-verify` depends only on the ISA crate, so its occupancy limits
//! are free-standing presets. This crate sees both sides and (a) derives
//! limits from any `SmConfig` for the estimator, (b) pins the verify
//! presets against the `tcsim-sm` presets in a consistency test so the
//! two can never drift apart silently.

use tcsim_sm::SmConfig;
use tcsim_verify::perf::PerfLimits;

/// Occupancy limits of one SM, taken from its configuration.
pub fn limits_for(sm: &SmConfig) -> PerfLimits {
    PerfLimits {
        max_warps: sm.max_warps as u32,
        max_ctas: sm.max_ctas as u32,
        registers: sm.registers,
        shared_bytes: sm.shared_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verify_presets_match_sm_configs() {
        // The free-standing presets in tcsim-verify must agree with the
        // authoritative SmConfig numbers.
        assert_eq!(limits_for(&SmConfig::volta()), PerfLimits::volta());
        assert_eq!(limits_for(&SmConfig::turing()), PerfLimits::turing());
        assert_eq!(limits_for(&SmConfig::ampere()), PerfLimits::ampere());
    }

    #[test]
    fn for_gen_matches_tensor_gen() {
        for sm in [SmConfig::volta(), SmConfig::turing(), SmConfig::ampere()] {
            assert_eq!(limits_for(&sm), PerfLimits::for_gen(sm.tensor_gen()));
        }
    }
}
