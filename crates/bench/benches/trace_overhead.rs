//! Tracer overhead microbenchmarks: the disabled path must cost one
//! predictable branch per site, and the enabled ring path must stay
//! allocation-free. The end-to-end guard (identical timing results and
//! wall-clock comparison) lives in `tcsim-prof --overhead-guard`.

use tcsim_bench::bench_case;
use tcsim_cutlass::{run_gemm, GemmKernel, GemmProblem};
use tcsim_sim::{Gpu, GpuConfig};
use tcsim_trace::{emit, EventKind, NullTracer, RingTracer, TraceEvent, TraceUnit};

fn issue_event(cycle: u64) -> TraceEvent {
    TraceEvent {
        cycle,
        sm: 0,
        kind: EventKind::WarpIssue {
            sub_core: 0,
            warp: 3,
            unit: TraceUnit::Tensor,
        },
    }
}

fn main() {
    // The per-site cost when tracing is off — this is what every hot
    // loop of the simulator pays per instrumentation point.
    let mut null = NullTracer;
    let mut c = 0u64;
    bench_case("emit/null_tracer", 300, || {
        c = c.wrapping_add(1);
        emit(&mut null, || issue_event(c));
        c
    });

    // The enabled path: one ring write (wrapping after warmup).
    let mut ring = RingTracer::with_capacity(1 << 16);
    let mut c2 = 0u64;
    bench_case("emit/ring_tracer", 300, || {
        c2 = c2.wrapping_add(1);
        emit(&mut ring, || issue_event(c2));
        c2
    });

    // End-to-end: a small WMMA GEMM untraced vs traced. The delta is the
    // full-system tracing cost (event construction + ring writes).
    bench_case("gemm32/null_tracer", 1500, || {
        let mut gpu = Gpu::new(GpuConfig::mini());
        run_gemm(
            &mut gpu,
            GemmProblem::square(32),
            GemmKernel::WmmaShared,
            false,
        )
        .stats
        .cycles
    });
    bench_case("gemm32/ring_tracer", 1500, || {
        let mut gpu = Gpu::new(
            tcsim_sim::SimOptions::new(GpuConfig::mini())
                .tracer(RingTracer::with_capacity(1 << 18)),
        );
        run_gemm(
            &mut gpu,
            GemmProblem::square(32),
            GemmKernel::WmmaShared,
            false,
        )
        .stats
        .cycles
    });
}
