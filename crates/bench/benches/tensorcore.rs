//! Criterion microbenchmarks of the tensor-core model primitives: FEDP
//! evaluation, atomic vs stepwise MMA, fragment mapping construction, and
//! the full register-level `wmma.mma` functional path.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use tcsim_core::{
    execute_stepwise_volta, fedp_f32, mma_reference, FragmentMap, TensorCoreModel, Tile,
};
use tcsim_f16::F16;
use tcsim_isa::exec::WmmaHandler;
use tcsim_isa::{FragmentKind, Layout, Reg, WarpRegFile, WmmaDirective, WmmaShape, WmmaType};

fn tiles() -> (Tile, Tile, Tile) {
    let shape = WmmaShape::M16N16K16;
    let mut a = Tile::for_fragment(FragmentKind::A, shape, WmmaType::F16);
    let mut b = Tile::for_fragment(FragmentKind::B, shape, WmmaType::F16);
    let mut c = Tile::for_fragment(FragmentKind::C, shape, WmmaType::F32);
    for r in 0..16 {
        for cc in 0..16 {
            a.set_f16(r, cc, F16::from_f32(((r + cc) % 7) as f32 - 3.0));
            b.set_f16(r, cc, F16::from_f32(((r * 3 + cc) % 5) as f32 - 2.0));
            c.set_f32(r, cc, (r as f32) - (cc as f32));
        }
    }
    (a, b, c)
}

fn bench_tensorcore(c: &mut Criterion) {
    let mut g = c.benchmark_group("tensorcore");
    g.sample_size(20).measurement_time(Duration::from_millis(800)).warm_up_time(Duration::from_millis(200));

    let qa = [F16::from_f32(1.5), F16::from_f32(-2.0), F16::from_f32(0.25), F16::from_f32(3.0)];
    let qb = [F16::from_f32(0.5), F16::from_f32(1.0), F16::from_f32(-4.0), F16::from_f32(2.0)];
    g.bench_function("fedp_f32", |bench| {
        bench.iter(|| fedp_f32(black_box(qa), black_box(qb), black_box(1.0)))
    });

    let (a, b, cc) = tiles();
    g.bench_function("mma_reference_16x16x16", |bench| {
        bench.iter(|| mma_reference(black_box(&a), black_box(&b), black_box(&cc), WmmaType::F32))
    });
    g.bench_function("execute_stepwise_volta", |bench| {
        bench.iter(|| {
            execute_stepwise_volta(black_box(&a), black_box(&b), black_box(&cc), WmmaType::F32)
        })
    });

    g.bench_function("fragment_map_volta_a", |bench| {
        bench.iter(|| FragmentMap::volta(FragmentKind::A, WmmaType::F16, Layout::Row))
    });
    g.bench_function("fragment_map_turing_all", |bench| {
        bench.iter(|| {
            for frag in [FragmentKind::A, FragmentKind::B, FragmentKind::C] {
                black_box(FragmentMap::turing(
                    frag,
                    WmmaShape::M32N8K16,
                    WmmaType::F16,
                    Layout::Row,
                ));
            }
        })
    });

    // Full functional wmma.mma through a warp register file.
    let model = TensorCoreModel::volta();
    let dir = WmmaDirective::Mma {
        shape: WmmaShape::M16N16K16,
        a_layout: Layout::Row,
        b_layout: Layout::Row,
        ab_type: WmmaType::F16,
        c_type: WmmaType::F32,
        d_type: WmmaType::F32,
    };
    let mut regs = WarpRegFile::new(64);
    g.bench_function("functional_wmma_mma", |bench| {
        bench.iter(|| {
            model.wmma_mma(&dir, Reg(32), Reg(0), Reg(8), Reg(16), black_box(&mut regs));
        })
    });
    g.finish();
}

criterion_group!(benches, bench_tensorcore);
criterion_main!(benches);
