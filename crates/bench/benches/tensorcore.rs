//! Microbenchmarks of the tensor-core model primitives: FEDP evaluation,
//! atomic vs stepwise MMA, fragment mapping construction, and the full
//! register-level `wmma.mma` functional path.
//!
//! Uses the hand-rolled `tcsim_bench::bench_case` harness (criterion is
//! not available offline).

use std::hint::black_box;
use tcsim_bench::bench_case;
use tcsim_core::{
    execute_stepwise_volta, fedp_f32, mma_reference, FragmentMap, TensorCoreModel, Tile,
};
use tcsim_f16::F16;
use tcsim_isa::exec::WmmaHandler;
use tcsim_isa::{FragmentKind, Layout, Reg, WarpRegFile, WmmaDirective, WmmaShape, WmmaType};

fn tiles() -> (Tile, Tile, Tile) {
    let shape = WmmaShape::M16N16K16;
    let mut a = Tile::for_fragment(FragmentKind::A, shape, WmmaType::F16);
    let mut b = Tile::for_fragment(FragmentKind::B, shape, WmmaType::F16);
    let mut c = Tile::for_fragment(FragmentKind::C, shape, WmmaType::F32);
    for r in 0..16 {
        for cc in 0..16 {
            a.set_f16(r, cc, F16::from_f32(((r + cc) % 7) as f32 - 3.0));
            b.set_f16(r, cc, F16::from_f32(((r * 3 + cc) % 5) as f32 - 2.0));
            c.set_f32(r, cc, (r as f32) - (cc as f32));
        }
    }
    (a, b, c)
}

fn main() {
    println!("== tensorcore ==");
    const MS: u64 = 800;

    let qa = [
        F16::from_f32(1.5),
        F16::from_f32(-2.0),
        F16::from_f32(0.25),
        F16::from_f32(3.0),
    ];
    let qb = [
        F16::from_f32(0.5),
        F16::from_f32(1.0),
        F16::from_f32(-4.0),
        F16::from_f32(2.0),
    ];
    bench_case("fedp_f32", MS, || {
        fedp_f32(black_box(qa), black_box(qb), black_box(1.0))
    });

    let (a, b, cc) = tiles();
    bench_case("mma_reference_16x16x16", MS, || {
        mma_reference(black_box(&a), black_box(&b), black_box(&cc), WmmaType::F32)
    });
    bench_case("execute_stepwise_volta", MS, || {
        execute_stepwise_volta(black_box(&a), black_box(&b), black_box(&cc), WmmaType::F32)
    });

    bench_case("fragment_map_volta_a", MS, || {
        FragmentMap::volta(FragmentKind::A, WmmaType::F16, Layout::Row)
    });
    bench_case("fragment_map_turing_all", MS, || {
        for frag in [FragmentKind::A, FragmentKind::B, FragmentKind::C] {
            black_box(FragmentMap::turing(
                frag,
                WmmaShape::M32N8K16,
                WmmaType::F16,
                Layout::Row,
            ));
        }
    });

    // Full functional wmma.mma through a warp register file.
    let model = TensorCoreModel::volta();
    let dir = WmmaDirective::Mma {
        shape: WmmaShape::M16N16K16,
        a_layout: Layout::Row,
        b_layout: Layout::Row,
        ab_type: WmmaType::F16,
        c_type: WmmaType::F32,
        d_type: WmmaType::F32,
    };
    let mut regs = WarpRegFile::new(64);
    bench_case("functional_wmma_mma", MS, || {
        model.wmma_mma(&dir, Reg(32), Reg(0), Reg(8), Reg(16), black_box(&mut regs));
    });
}
