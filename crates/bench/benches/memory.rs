//! Microbenchmarks of the memory-hierarchy primitives: access coalescing,
//! cache lookups, shared-memory conflict analysis and device memory
//! access.
//!
//! Uses the hand-rolled `tcsim_bench::bench_case` harness (criterion is
//! not available offline).

use std::hint::black_box;
use tcsim_bench::bench_case;
use tcsim_isa::exec::MemAccess;
use tcsim_isa::ByteMemory;
use tcsim_mem::{coalesce, conflict_passes, Cache, CacheConfig, DeviceMemory};

fn main() {
    println!("== memory ==");
    const MS: u64 = 800;

    let coalesced: Vec<MemAccess> = (0..32)
        .map(|l| MemAccess {
            lane: l,
            addr: 0x1000 + 4 * l as u64,
            bytes: 4,
        })
        .collect();
    let scattered: Vec<MemAccess> = (0..32)
        .map(|l| MemAccess {
            lane: l,
            addr: 0x1000 + 137 * l as u64,
            bytes: 4,
        })
        .collect();
    bench_case("coalesce_unit_stride", MS, || {
        coalesce(black_box(&coalesced))
    });
    bench_case("coalesce_scattered", MS, || coalesce(black_box(&scattered)));
    bench_case("shared_conflicts", MS, || {
        conflict_passes(black_box(&scattered))
    });

    {
        let mut cache = Cache::new(CacheConfig::l1(128));
        cache.fill(0x2000, 0, false);
        let mut now = 1;
        bench_case("cache_hit_lookup", MS, move || {
            now += 1;
            cache.lookup(0x2000, false, now)
        });
    }

    {
        let mut cache = Cache::new(CacheConfig::l1(16));
        let mut addr = 0u64;
        let mut now = 0;
        bench_case("cache_miss_fill_cycle", MS, move || {
            addr += 128;
            now += 1;
            let _ = cache.lookup(addr, false, now);
            cache.fill(addr, now, false);
        });
    }

    {
        let mut mem = DeviceMemory::new();
        let base = mem.alloc(1 << 20);
        let mut i = 0u64;
        bench_case("device_memory_rw", MS, move || {
            i = (i + 4) % (1 << 20);
            mem.write_u32(base + i, i as u32);
            mem.read_u32(base + i)
        });
    }
}
