//! Criterion microbenchmarks of the memory-hierarchy primitives: access
//! coalescing, cache lookups, shared-memory conflict analysis and device
//! memory access.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use tcsim_isa::exec::MemAccess;
use tcsim_isa::ByteMemory;
use tcsim_mem::{coalesce, conflict_passes, Cache, CacheConfig, DeviceMemory};

fn bench_memory(c: &mut Criterion) {
    let mut g = c.benchmark_group("memory");
    g.sample_size(20).measurement_time(Duration::from_millis(800)).warm_up_time(Duration::from_millis(200));

    let coalesced: Vec<MemAccess> =
        (0..32).map(|l| MemAccess { lane: l, addr: 0x1000 + 4 * l as u64, bytes: 4 }).collect();
    let scattered: Vec<MemAccess> =
        (0..32).map(|l| MemAccess { lane: l, addr: 0x1000 + 137 * l as u64, bytes: 4 }).collect();
    g.bench_function("coalesce_unit_stride", |b| b.iter(|| coalesce(black_box(&coalesced))));
    g.bench_function("coalesce_scattered", |b| b.iter(|| coalesce(black_box(&scattered))));
    g.bench_function("shared_conflicts", |b| b.iter(|| conflict_passes(black_box(&scattered))));

    g.bench_function("cache_hit_lookup", |b| {
        let mut cache = Cache::new(CacheConfig::l1(128));
        cache.fill(0x2000, 0, false);
        let mut now = 1;
        b.iter(|| {
            now += 1;
            black_box(cache.lookup(0x2000, false, now))
        })
    });

    g.bench_function("cache_miss_fill_cycle", |b| {
        let mut cache = Cache::new(CacheConfig::l1(16));
        let mut addr = 0u64;
        let mut now = 0;
        b.iter(|| {
            addr += 128;
            now += 1;
            let _ = cache.lookup(addr, false, now);
            cache.fill(addr, now, false);
        })
    });

    g.bench_function("device_memory_rw", |b| {
        let mut mem = DeviceMemory::new();
        let base = mem.alloc(1 << 20);
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 4) % (1 << 20);
            mem.write_u32(base + i, i as u32);
            black_box(mem.read_u32(base + i))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_memory);
criterion_main!(benches);
