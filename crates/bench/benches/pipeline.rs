//! Criterion benchmarks of end-to-end simulation throughput: small GEMMs
//! on the mini GPU configuration and binary16 conversion rates.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use tcsim_cutlass::{run_gemm, GemmKernel, GemmProblem};
use tcsim_f16::F16;
use tcsim_sim::{Gpu, GpuConfig};

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(300));

    g.bench_function("gemm_32_wmma_simple", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(GpuConfig::mini());
            black_box(run_gemm(&mut gpu, GemmProblem::square(32), GemmKernel::WmmaSimple, false))
        })
    });

    g.bench_function("gemm_64_wmma_shared", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(GpuConfig::mini());
            black_box(run_gemm(&mut gpu, GemmProblem::square(64), GemmKernel::WmmaShared, false))
        })
    });

    g.bench_function("f16_from_f32_conversion", |b| {
        let vals: Vec<f32> = (0..1024).map(|i| (i as f32) * 0.37 - 180.0).collect();
        b.iter(|| {
            let mut acc = 0u16;
            for &v in &vals {
                acc = acc.wrapping_add(F16::from_f32(black_box(v)).to_bits());
            }
            acc
        })
    });

    g.bench_function("f16_arithmetic", |b| {
        let x = F16::from_f32(1.5);
        let y = F16::from_f32(0.333);
        b.iter(|| {
            let mut acc = F16::ZERO;
            for _ in 0..256 {
                acc = acc.mul_add(black_box(x), black_box(y));
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
