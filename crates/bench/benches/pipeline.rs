//! Microbenchmarks of end-to-end simulation throughput: small GEMMs on
//! the mini GPU configuration and binary16 conversion rates.
//!
//! Uses the hand-rolled `tcsim_bench::bench_case` harness (criterion is
//! not available offline).

use std::hint::black_box;
use tcsim_bench::bench_case;
use tcsim_cutlass::{run_gemm, GemmKernel, GemmProblem};
use tcsim_f16::F16;
use tcsim_sim::{Gpu, GpuConfig};

fn main() {
    println!("== pipeline ==");
    const MS: u64 = 2000;

    bench_case("gemm_32_wmma_simple", MS, || {
        let mut gpu = Gpu::new(GpuConfig::mini());
        run_gemm(
            &mut gpu,
            GemmProblem::square(32),
            GemmKernel::WmmaSimple,
            false,
        )
    });

    bench_case("gemm_64_wmma_shared", MS, || {
        let mut gpu = Gpu::new(GpuConfig::mini());
        run_gemm(
            &mut gpu,
            GemmProblem::square(64),
            GemmKernel::WmmaShared,
            false,
        )
    });

    {
        let vals: Vec<f32> = (0..1024).map(|i| (i as f32) * 0.37 - 180.0).collect();
        bench_case("f16_from_f32_conversion", MS, move || {
            let mut acc = 0u16;
            for &v in &vals {
                acc = acc.wrapping_add(F16::from_f32(black_box(v)).to_bits());
            }
            acc
        });
    }

    {
        let x = F16::from_f32(1.5);
        let y = F16::from_f32(0.333);
        bench_case("f16_arithmetic", MS, move || {
            let mut acc = F16::ZERO;
            for _ in 0..256 {
                acc = acc.mul_add(black_box(x), black_box(y));
            }
            acc
        });
    }
}
