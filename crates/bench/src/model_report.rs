//! Estimator-vs-simulator correlation report behind the `tcsim-model`
//! binary.
//!
//! Closes the loop on the static performance model in `tcsim-model` (the
//! crate): every committed fuzz-corpus case and a fig17-style GEMM
//! family sweep are run through **both** the cycle-level simulator and
//! the analytical estimator, and the report carries the paired cycle
//! counts plus Pearson correlations (raw and log10 — the corpus spans
//! several orders of magnitude, so log-space is the honest metric). A
//! second section cross-checks the closed-form tile search: for each
//! problem size the analytical ranking of the `Simple`/`Shared`/
//! `Cutlass` tile plans is compared against the simulator's cycle
//! ranking.
//!
//! Everything here is a pure function of the committed corpus and the
//! GPU presets: the rendered JSON is byte-identical run to run and
//! across `--threads`, which is what lets CI byte-compare it against
//! the committed `results/BENCH_model_corr.json`.

use std::path::Path;

use tcsim_check::corpus;
use tcsim_check::gen::Arch;
use tcsim_check::oracle;
use tcsim_cutlass::{
    cutlass_gemm, hgemm, sgemm, wmma_shared_gemm, wmma_simple_gemm, CutlassConfig, GemmKernel,
    GemmPrecision, GemmProblem,
};
use tcsim_isa::Kernel;
use tcsim_model::{estimate, gemm_roofline, TilePlan};
use tcsim_sim::{pearson, GpuConfig, JsonWriter, LaunchGeometry};

use crate::{gemm_sweep, json_array};

/// One estimator-vs-simulator data point.
#[derive(Clone, Debug)]
pub struct ModelPoint {
    /// Kernel or problem name (`seed_simt_a`, `sgemm_192`, …).
    pub name: String,
    /// Point family: `"corpus"`, `"sgemm"`, `"hgemm"` or `"wmma_shared"`.
    pub family: &'static str,
    /// Cycle-level simulator cycles.
    pub sim_cycles: u64,
    /// Analytical estimate.
    pub est_cycles: u64,
    /// The estimator's binding bound for this point.
    pub bound: &'static str,
}

/// One tile-search cross-check: the analytical ranking of the three
/// tile plans against the simulator's, for a square GEMM.
#[derive(Clone, Debug)]
pub struct SearchCheck {
    /// Square problem edge (m = n = k).
    pub size: usize,
    /// Plan names best-first under the closed-form roofline.
    pub modeled: Vec<&'static str>,
    /// Plan names best-first under the cycle-level simulator.
    pub simulated: Vec<&'static str>,
}

impl SearchCheck {
    /// Whether the analytically chosen winner matches the simulator's.
    pub fn top_agrees(&self) -> bool {
        self.modeled.first() == self.simulated.first()
    }
}

/// The full correlation report.
#[derive(Clone, Debug)]
pub struct ModelReport {
    /// All paired points, corpus first then GEMM families.
    pub points: Vec<ModelPoint>,
    /// Pearson correlation of raw cycle counts.
    pub pearson_raw: f64,
    /// Pearson correlation of log10 cycle counts (the gated metric).
    pub pearson_log: f64,
    /// Per-family log10 correlations, in report order.
    pub families: Vec<(&'static str, f64)>,
    /// Tile-search ranking cross-checks.
    pub search: Vec<SearchCheck>,
}

impl ModelReport {
    /// Fraction of search sizes where model and simulator agree on the
    /// winning tile plan.
    pub fn search_agreement(&self) -> f64 {
        if self.search.is_empty() {
            return 1.0;
        }
        let hits = self.search.iter().filter(|s| s.top_agrees()).count();
        hits as f64 / self.search.len() as f64
    }
}

/// What to sweep: square GEMM edges for the correlation families and
/// for the tile-search cross-check. Tests shrink both to stay fast.
#[derive(Clone, Debug)]
pub struct ReportSpec {
    /// Corpus directory (`tests/corpus` from the repo root).
    pub corpus_dir: String,
    /// Square sizes for the sgemm/hgemm/wmma_shared families.
    pub gemm_sizes: Vec<usize>,
    /// Square sizes for the tile-search cross-check (64-divisible so
    /// the Cutlass plan applies).
    pub search_sizes: Vec<usize>,
}

impl ReportSpec {
    /// The full CI/artifact configuration.
    pub fn full() -> ReportSpec {
        ReportSpec {
            corpus_dir: "tests/corpus".into(),
            gemm_sizes: vec![64, 128, 192, 256, 320],
            search_sizes: vec![64, 128, 256],
        }
    }
}

/// Dummy device addresses for estimator parameter buffers. The walk
/// folds them as ordinary constants; only non-pointer parameters (loop
/// trip counts) influence the estimate, so any plausible values do.
const PARAM_ADDRS: [u64; 4] = [0x1_0000, 0x10_0000, 0x20_0000, 0x30_0000];

/// Parameter bytes matching `oracle::run_gpu`'s `[in_ptr, out_ptr]`.
fn corpus_params() -> Vec<u8> {
    let mut p = Vec::with_capacity(16);
    p.extend_from_slice(&PARAM_ADDRS[0].to_le_bytes());
    p.extend_from_slice(&PARAM_ADDRS[1].to_le_bytes());
    p
}

/// Parameter bytes matching `run_gemm`'s `[pa, pb, pc, pd, n, k]`.
fn gemm_params(n: u32, k: u32) -> Vec<u8> {
    let mut p = Vec::with_capacity(40);
    for a in PARAM_ADDRS {
        p.extend_from_slice(&a.to_le_bytes());
    }
    p.extend_from_slice(&n.to_le_bytes());
    p.extend_from_slice(&k.to_le_bytes());
    p
}

fn corpus_points(dir: &Path) -> Vec<ModelPoint> {
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("read corpus directory")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("case"))
        .collect();
    files.sort();
    let params = corpus_params();
    files
        .iter()
        .map(|path| {
            let text = std::fs::read_to_string(path).expect("read corpus case");
            let case = corpus::case_from_text(&text).expect("parse corpus case");
            let (stats, _) = oracle::run_gpu(&case);
            let gpu = oracle::gpu_config(case.arch);
            let mut geom = LaunchGeometry::new(case.grid_x, case.block_x);
            geom.gen = case.arch.tensor_gen();
            let est = estimate(&case.kernel, &geom, &params, &gpu);
            ModelPoint {
                name: case.kernel.name().to_string(),
                family: "corpus",
                sim_cycles: stats.cycles,
                est_cycles: est.cycles,
                bound: est.bound,
            }
        })
        .collect()
}

/// The fig17 GEMM families the correlation sweep covers: the FP32 and
/// FP16 SIMT baselines plus the shared-memory WMMA kernel, as in the
/// simulator-side slice of the fig17 bench.
const GEMM_FAMILIES: [(GemmKernel, GemmPrecision, &str); 3] = [
    (GemmKernel::Sgemm, GemmPrecision::Fp32, "sgemm"),
    (GemmKernel::Hgemm, GemmPrecision::Fp16, "hgemm"),
    (
        GemmKernel::WmmaShared,
        GemmPrecision::MixedF32,
        "wmma_shared",
    ),
];

/// Builds the kernel and launch geometry `run_gemm` would use for a
/// square problem, mirroring `tcsim_cutlass::host`'s mapping.
fn gemm_launch(kernel: GemmKernel, n: usize) -> (Kernel, LaunchGeometry) {
    let (gx, gy, bx, by, k) = match kernel {
        GemmKernel::Sgemm => (n / 16, n / 16, 16, 16, sgemm()),
        GemmKernel::Hgemm => (n / 32, n / 16, 16, 16, hgemm()),
        GemmKernel::WmmaShared => (n / 32, n / 32, 128, 1, wmma_shared_gemm(false)),
        GemmKernel::WmmaSimple => (n / 16, n / 16, 32, 1, wmma_simple_gemm(false)),
        GemmKernel::Cutlass(cfg) => (
            n / cfg.cta_n,
            n / cfg.cta_m,
            cfg.threads(),
            1,
            cutlass_gemm(cfg),
        ),
        GemmKernel::IgemmWmma => unreachable!("igemm is not part of the correlation sweep"),
    };
    let mut geom = LaunchGeometry::new((gx as u32, gy as u32, 1), (bx as u32, by as u32, 1));
    geom.gen = Arch::Volta.tensor_gen();
    (k, geom)
}

fn family_points(spec: &ReportSpec, gpu: &GpuConfig, threads: usize) -> Vec<ModelPoint> {
    let mut points = Vec::new();
    for &(kernel, precision, _) in &GEMM_FAMILIES {
        for &size in &spec.gemm_sizes {
            points.push((
                GemmProblem {
                    m: size,
                    n: size,
                    k: size,
                    precision,
                },
                kernel,
            ));
        }
    }
    let runs = gemm_sweep(gpu, &points, false, threads);
    runs.iter()
        .zip(&points)
        .zip(
            GEMM_FAMILIES
                .iter()
                .flat_map(|f| spec.gemm_sizes.iter().map(move |&s| (f.2, s))),
        )
        .map(|((run, &(_, kernel)), (family, size))| {
            let (k, geom) = gemm_launch(kernel, size);
            let est = estimate(&k, &geom, &gemm_params(size as u32, size as u32), gpu);
            ModelPoint {
                name: format!("{family}_{size}"),
                family,
                sim_cycles: run.stats.cycles,
                est_cycles: est.cycles,
                bound: est.bound,
            }
        })
        .collect()
}

/// The three tile plans the search ranks, mirroring tcsim-nn's
/// `Tile::{Simple,Shared,Cutlass}`. Register and shared budgets come
/// from the real kernels, not hand-entered numbers.
pub fn tile_plans() -> Vec<(&'static str, TilePlan, GemmKernel)> {
    let simple = wmma_simple_gemm(false);
    let shared = wmma_shared_gemm(false);
    let cfg = CutlassConfig::default_64x64();
    let cutlass = cutlass_gemm(cfg);
    vec![
        (
            "simple",
            TilePlan {
                cta_m: 16,
                cta_n: 16,
                threads: 32,
                shared_bytes: simple.shared_bytes() as u64,
                regs_per_thread: simple.num_regs() as u64,
                staged: false,
            },
            GemmKernel::WmmaSimple,
        ),
        (
            "shared",
            TilePlan {
                cta_m: 32,
                cta_n: 32,
                threads: 128,
                shared_bytes: shared.shared_bytes() as u64,
                regs_per_thread: shared.num_regs() as u64,
                staged: true,
            },
            GemmKernel::WmmaShared,
        ),
        (
            "cutlass",
            TilePlan {
                cta_m: cfg.cta_m as u64,
                cta_n: cfg.cta_n as u64,
                threads: cfg.threads() as u64,
                shared_bytes: cutlass.shared_bytes() as u64,
                regs_per_thread: cutlass.num_regs() as u64,
                staged: true,
            },
            GemmKernel::Cutlass(cfg),
        ),
    ]
}

fn search_checks(spec: &ReportSpec, gpu: &GpuConfig, threads: usize) -> Vec<SearchCheck> {
    let plans = tile_plans();
    let mut points = Vec::new();
    for &size in &spec.search_sizes {
        for (_, _, kernel) in &plans {
            points.push((
                GemmProblem {
                    m: size,
                    n: size,
                    k: size,
                    precision: GemmPrecision::MixedF32,
                },
                *kernel,
            ));
        }
    }
    let runs = gemm_sweep(gpu, &points, false, threads);
    spec.search_sizes
        .iter()
        .enumerate()
        .map(|(si, &size)| {
            let e = size as u64;
            // Stable sorts keep the plan declaration order on ties.
            let mut modeled: Vec<(u64, &'static str)> = plans
                .iter()
                .map(|(name, plan, _)| (gemm_roofline(e, e, e, plan, gpu).cycles, *name))
                .collect();
            modeled.sort_by_key(|&(c, _)| c);
            let mut simulated: Vec<(u64, &'static str)> = plans
                .iter()
                .enumerate()
                .map(|(pi, (name, _, _))| (runs[si * plans.len() + pi].stats.cycles, *name))
                .collect();
            simulated.sort_by_key(|&(c, _)| c);
            SearchCheck {
                size,
                modeled: modeled.into_iter().map(|(_, n)| n).collect(),
                simulated: simulated.into_iter().map(|(_, n)| n).collect(),
            }
        })
        .collect()
}

fn log_corr(points: &[&ModelPoint]) -> f64 {
    let sim: Vec<f64> = points
        .iter()
        .map(|p| (p.sim_cycles.max(1) as f64).log10())
        .collect();
    let est: Vec<f64> = points
        .iter()
        .map(|p| (p.est_cycles.max(1) as f64).log10())
        .collect();
    pearson(&sim, &est)
}

/// Runs the full sweep and assembles the report.
pub fn build_report(spec: &ReportSpec, threads: usize) -> ModelReport {
    let gpu = GpuConfig::titan_v();
    let mut points = corpus_points(Path::new(&spec.corpus_dir));
    points.extend(family_points(spec, &gpu, threads));

    let sim: Vec<f64> = points.iter().map(|p| p.sim_cycles as f64).collect();
    let est: Vec<f64> = points.iter().map(|p| p.est_cycles as f64).collect();
    let pearson_raw = pearson(&sim, &est);
    let all: Vec<&ModelPoint> = points.iter().collect();
    let pearson_log = log_corr(&all);

    let mut families: Vec<(&'static str, f64)> = Vec::new();
    for family in std::iter::once("corpus").chain(GEMM_FAMILIES.iter().map(|f| f.2)) {
        let fam: Vec<&ModelPoint> = points.iter().filter(|p| p.family == family).collect();
        if fam.len() >= 2 {
            families.push((family, log_corr(&fam)));
        }
    }

    let search = search_checks(spec, &gpu, threads);
    ModelReport {
        points,
        pearson_raw,
        pearson_log,
        families,
        search,
    }
}

/// Renders the report as deterministic JSON.
pub fn render_json(report: &ModelReport) -> String {
    let points: Vec<String> = report
        .points
        .iter()
        .map(|p| {
            let mut w = JsonWriter::object();
            w.field_str("name", &p.name);
            w.field_str("family", p.family);
            w.field_u64("sim_cycles", p.sim_cycles);
            w.field_u64("est_cycles", p.est_cycles);
            w.field_str("bound", p.bound);
            w.finish()
        })
        .collect();
    let search: Vec<String> = report
        .search
        .iter()
        .map(|s| {
            let mut w = JsonWriter::object();
            w.field_u64("size", s.size as u64);
            let names = |v: &[&'static str]| {
                json_array(&v.iter().map(|n| format!("\"{n}\"")).collect::<Vec<_>>())
            };
            w.raw_field("modeled", &names(&s.modeled));
            w.raw_field("simulated", &names(&s.simulated));
            w.field_str("top_agrees", if s.top_agrees() { "yes" } else { "no" });
            w.finish()
        })
        .collect();
    let families: Vec<String> = report
        .families
        .iter()
        .map(|(name, corr)| {
            let mut w = JsonWriter::object();
            w.field_str("family", name);
            w.field_f64("pearson_log", *corr);
            w.finish()
        })
        .collect();

    let mut w = JsonWriter::object();
    w.field_u64("points_total", report.points.len() as u64);
    w.field_f64("pearson_raw", report.pearson_raw);
    w.field_f64("pearson_log", report.pearson_log);
    w.raw_field("families", &json_array(&families));
    w.field_f64("search_agreement", report.search_agreement());
    w.raw_field("search", &json_array(&search));
    w.raw_field("points", &json_array(&points));
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reduced spec that keeps the sim side of the test cheap.
    fn tiny_spec() -> ReportSpec {
        ReportSpec {
            corpus_dir: concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/corpus").into(),
            gemm_sizes: vec![64],
            search_sizes: vec![64],
        }
    }

    #[test]
    fn report_is_byte_identical_run_to_run_and_across_threads() {
        let spec = tiny_spec();
        let serial = render_json(&build_report(&spec, 1));
        let again = render_json(&build_report(&spec, 1));
        let parallel = render_json(&build_report(&spec, 4));
        assert_eq!(serial, again, "run-to-run drift");
        assert_eq!(serial, parallel, "thread-count drift");
    }

    #[test]
    fn report_covers_every_family() {
        let report = build_report(&tiny_spec(), 4);
        for family in ["corpus", "sgemm", "hgemm", "wmma_shared"] {
            assert!(
                report.points.iter().any(|p| p.family == family),
                "missing family {family}"
            );
        }
        assert!(!report.search.is_empty());
    }
}
