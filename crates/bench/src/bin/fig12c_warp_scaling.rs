//! Fig 12c — cycles to execute parallel HMMA operations versus the number
//! of warps per CTA.
//!
//! The paper's microbenchmark shows that only four warps' worth of
//! `wmma.mma` throughput exists per SM although the SM has eight tensor
//! cores — evidence that each warp drives **two** tensor cores (§IV). In
//! the model, warps 0–3 land on distinct sub-cores (each with its own
//! tensor-core pair); warps 4–7 share, doubling the measured time.

use tcsim_bench::{fnum, print_table};
use tcsim_cutlass::microbench::repeated_mma;
use tcsim_sim::{Gpu, GpuConfig, LaunchBuilder};

fn run(warps: u32, iters: u32) -> (u32, u32) {
    let mut gpu = Gpu::new(GpuConfig::mini());
    let src = gpu.alloc(16 * 16 * 4);
    let out = gpu.alloc(warps as u64 * 4);
    let _ = LaunchBuilder::new(repeated_mma(iters))
        .grid(1u32)
        .block(warps * 32)
        .param_u64(src)
        .param_u64(out)
        .launch(&mut gpu);
    let deltas: Vec<u32> = (0..warps)
        .map(|w| gpu.read_u32(out + 4 * w as u64))
        .collect();
    (
        *deltas.iter().max().expect("at least one warp"),
        *deltas.iter().min().expect("at least one warp"),
    )
}

fn main() {
    println!("Fig 12c: cycles for repeated parallel HMMAs vs warps per CTA");
    let iters = 32;
    let mut rows = Vec::new();
    let mut base = 0f64;
    let mut results = Vec::new();
    for warps in 1..=8u32 {
        let (max, min) = run(warps, iters);
        if warps == 1 {
            base = max as f64;
        }
        results.push(max);
        rows.push(vec![
            warps.to_string(),
            max.to_string(),
            min.to_string(),
            fnum(max as f64 / base, 2),
        ]);
    }
    print_table(
        &format!("{iters} wmma.mma per warp, one CTA (mixed precision)"),
        &["warps", "max cycles", "min cycles", "vs 1 warp"],
        &rows,
    );

    // The paper's observation: flat up to 4 warps (one per sub-core, each
    // using both of its tensor cores), then time grows as warps share
    // tensor-core pairs.
    let flat = results[3] as f64 / results[0] as f64;
    let knee = results[7] as f64 / results[3] as f64;
    println!(
        "\n4-warp/1-warp ratio: {:.2} (paper: ~1, flat region)",
        flat
    );
    println!(
        "8-warp/4-warp ratio: {:.2} (paper: ~2, tensor cores shared)",
        knee
    );
    assert!(flat < 1.5, "1..4 warps must stay near-flat");
    assert!(
        knee > 1.5,
        "5..8 warps must serialize on the tensor-core pairs"
    );
}
