//! Fig 9 — cumulative clock cycles of the HMMA instructions one Volta
//! `wmma.mma` decomposes into, for mixed-precision (16 steps, 54 cycles)
//! and FP16 (8 steps, 64 cycles) modes.
//!
//! The model generates the schedules from pipeline parameters
//! (initiation interval, set pitch, drain — §IV); this binary prints them
//! against the paper's measured sequences and cross-checks the end-to-end
//! `wmma.mma` latency on the full simulator with the clock-instrumented
//! microbenchmark kernel (Fig 6's methodology).

use tcsim_bench::print_table;
use tcsim_core::{
    MmaMode, TensorCorePipe, VoltaTimingParams, VOLTA_FP16_CUMULATIVE, VOLTA_MIXED_CUMULATIVE,
};
use tcsim_cutlass::microbench::clocked_mma;
use tcsim_sim::{Gpu, GpuConfig, LaunchBuilder};

fn schedule_table(name: &str, params: VoltaTimingParams, paper: &[u32]) {
    let model = params.completions();
    let mut rows = Vec::new();
    for (i, (&m, &p)) in model.iter().zip(paper).enumerate() {
        rows.push(vec![
            format!(
                "SET{} STEP{}",
                i / params.steps_per_set as usize + 1,
                i % params.steps_per_set as usize
            ),
            p.to_string(),
            m.to_string(),
            if m == p {
                "=".into()
            } else {
                format!("{:+}", m as i64 - p as i64)
            },
        ]);
    }
    print_table(
        &format!("Fig 9{name} cumulative HMMA cycles"),
        &["hmma", "paper", "model", "delta"],
        &rows,
    );
    println!(
        "total wmma.mma latency: paper {}, model {} | back-to-back initiation interval: {}",
        paper.last().expect("non-empty"),
        params.latency(),
        params.issue_interval()
    );
}

fn simulate_clocked_mma(fp16: bool) -> u32 {
    let mut gpu = Gpu::new(GpuConfig::mini());
    let src = gpu.alloc(16 * 16 * 4);
    let out = gpu.alloc(4);
    let _ = LaunchBuilder::new(clocked_mma(fp16))
        .grid(1u32)
        .block(32u32)
        .param_u64(src)
        .param_u64(out)
        .launch(&mut gpu);
    gpu.read_u32(out)
}

fn main() {
    println!("Fig 9: Volta HMMA latency schedules (m16n16k16)");
    schedule_table(
        "a (mixed precision)",
        VoltaTimingParams::MIXED,
        &VOLTA_MIXED_CUMULATIVE,
    );
    schedule_table(
        "b (FP16 mode)",
        VoltaTimingParams::FP16,
        &VOLTA_FP16_CUMULATIVE,
    );

    println!(
        "\nMixed precision is {} cycles faster than FP16 mode (paper: 10).",
        VoltaTimingParams::FP16.latency() - VoltaTimingParams::MIXED.latency()
    );

    // Pipelined stream: two back-to-back wmma.mma through the
    // cycle-accurate tensor-core pipe — the second's SET 1 issues one
    // initiation interval after the first's, overlapping its drain.
    let mut pipe = TensorCorePipe::volta();
    pipe.enqueue_volta(MmaMode::MixedF32, 0);
    pipe.enqueue_volta(MmaMode::MixedF32, 0);
    let mut rows = Vec::new();
    for e in pipe.events().iter().filter(|e| e.step == 0) {
        rows.push(vec![
            format!("mma{}", e.mma_index),
            format!("SET{}", e.set),
            e.issue.to_string(),
            e.complete.to_string(),
        ]);
    }
    print_table(
        "Back-to-back mixed-precision MMAs through the tensor-core pipe (per-set, step 0)",
        &["instr", "set", "issue", "complete"],
        &rows,
    );
    println!(
        "second mma completes at {} — {} cycles after the first (= initiation interval), not 54+54",
        pipe.last_completion(),
        pipe.last_completion() - 54
    );

    // End-to-end cross-check on the simulator: clock; mma; dependent use;
    // clock. The measured delta includes the mma latency plus the issue
    // overhead of the probe instructions.
    let mixed = simulate_clocked_mma(false);
    let fp16 = simulate_clocked_mma(true);
    let rows = vec![
        vec!["mixed (f32 acc)".into(), "54".into(), mixed.to_string()],
        vec!["fp16 (f16 acc)".into(), "64".into(), fp16.to_string()],
    ];
    print_table(
        "Simulator cross-check: clocked wmma.mma (clock; mma; use; clock)",
        &[
            "mode",
            "HMMA schedule total",
            "measured delta (incl. probe issue)",
        ],
        &rows,
    );
    assert!(mixed as i64 - 54 >= 0, "measured latency below schedule");
    assert!(fp16 > mixed, "FP16 mode must be slower (paper §III-C1)");
}
