//! Ablation studies of the design choices DESIGN.md §4.7 calls out:
//!
//! 1. Volta double-loading of A/B operands vs Turing single-loading —
//!    effect on fragment sizes and load traffic.
//! 2. Two tensor cores per sub-core vs one — the Fig 12c warp-scaling
//!    knee and GEMM throughput.
//! 3. Operand-reuse cache on vs off — register bank-conflict stalls.
//! 4. Shared-memory staging vs global-only operands — wmma.load latency.
//! 5. GTO vs round-robin scheduling — IPC on a CUTLASS GEMM.

use tcsim_bench::{fnum, print_table};
use tcsim_core::FragmentMap;
use tcsim_cutlass::microbench::repeated_mma;
use tcsim_cutlass::{run_gemm, CutlassConfig, GemmKernel, GemmProblem};
use tcsim_isa::{FragmentKind, Layout, WmmaType};
use tcsim_sim::{Gpu, GpuConfig, LaunchBuilder};
use tcsim_sm::SchedPolicy;

fn gemm_cycles_with(cfg: GpuConfig, kernel: GemmKernel, size: usize) -> (u64, f64, u64) {
    let mut gpu = Gpu::new(cfg);
    let run = run_gemm(&mut gpu, GemmProblem::square(size), kernel, false);
    (
        run.stats.cycles,
        run.stats.ipc(),
        run.stats.sm.reg_bank_stalls,
    )
}

fn main() {
    println!("Ablations of the tensor-core model's design choices");

    // 1. Double loading (Volta) vs single loading (Turing).
    let mut rows = Vec::new();
    for (volta, label) in [
        (true, "Volta (double-loaded)"),
        (false, "Turing (single-loaded)"),
    ] {
        let map = FragmentMap::for_arch(
            volta,
            FragmentKind::A,
            tcsim_isa::WmmaShape::M16N16K16,
            WmmaType::F16,
            Layout::Row,
        );
        let loads: usize = (0..32).map(|l| map.lane_accesses(l, 16).len()).sum();
        let bytes: usize = (0..32)
            .flat_map(|l| map.lane_accesses(l, 16))
            .map(|(_, b)| b as usize)
            .sum();
        rows.push(vec![
            label.to_string(),
            map.elems_per_thread().to_string(),
            loads.to_string(),
            bytes.to_string(),
        ]);
    }
    print_table(
        "1. A-fragment loading (16x16 f16 tile, row-major)",
        &["architecture", "elems/thread", "warp loads", "warp bytes"],
        &rows,
    );
    println!("Double loading doubles register pressure and raw load count but lets");
    println!("octets execute independently (§III-E); sectors coalesce so DRAM traffic");
    println!("is unchanged.");

    // 2. Tensor cores per sub-core: halving the pair halves each warp's
    // HMMA throughput. Measured on the tensor-bound repeated-MMA
    // microbenchmark (the Fig 12c workload), 4 warps, one CTA.
    let mut rows = Vec::new();
    for tcs in [1usize, 2] {
        let mut cfg = GpuConfig::titan_v();
        cfg.sm.tensor_cores = tcs;
        let mut gpu = Gpu::new(cfg);
        let src = gpu.alloc(16 * 16 * 4);
        let out = gpu.alloc(4 * 4);
        LaunchBuilder::new(repeated_mma(64))
            .grid(1u32)
            .block(4 * 32u32)
            .param_u64(src)
            .param_u64(out)
            .launch(&mut gpu);
        let max = (0..4)
            .map(|w| gpu.read_u32(out + 4 * w))
            .max()
            .expect("4 warps");
        rows.push(vec![tcs.to_string(), max.to_string()]);
    }
    print_table(
        "2. Tensor cores per sub-core (64 repeated MMAs x 4 warps)",
        &["TCs/sub-core", "cycles"],
        &rows,
    );

    // 3. Operand-reuse cache.
    let mut rows = Vec::new();
    for (on, label) in [(true, "on"), (false, "off")] {
        let mut cfg = GpuConfig::titan_v();
        cfg.sm.operand_reuse_cache = on;
        let (cycles, ipc, stalls) = gemm_cycles_with(cfg, GemmKernel::WmmaShared, 256);
        rows.push(vec![
            label.to_string(),
            cycles.to_string(),
            fnum(ipc, 2),
            stalls.to_string(),
        ]);
    }
    print_table(
        "3. Operand-reuse cache (.reuse flags, §III-C)",
        &["reuse cache", "cycles", "IPC", "reg-bank stall cycles"],
        &rows,
    );

    // 4. Shared staging vs global operands, small and large problem: at
    // small sizes the caches absorb the global traffic and the simpler
    // kernel wins; staging pays off as contention grows (Fig 16).
    let mut rows = Vec::new();
    for size in [256usize, 1024] {
        for (kernel, label) in [
            (GemmKernel::WmmaSimple, "global operands"),
            (GemmKernel::WmmaShared, "shared staging"),
        ] {
            let (cycles, ipc, _) = gemm_cycles_with(GpuConfig::titan_v(), kernel, size);
            rows.push(vec![
                size.to_string(),
                label.to_string(),
                cycles.to_string(),
                fnum(ipc, 2),
            ]);
        }
    }
    print_table(
        "4. Operand staging",
        &["size", "variant", "cycles", "IPC"],
        &rows,
    );

    // 5. Scheduler policy.
    let mut rows = Vec::new();
    for (policy, label) in [
        (SchedPolicy::Gto, "GTO"),
        (SchedPolicy::RoundRobin, "round-robin"),
    ] {
        let mut cfg = GpuConfig::titan_v();
        cfg.sm.scheduler = policy;
        let (cycles, ipc, _) = gemm_cycles_with(cfg.clone(), GemmKernel::WmmaSimple, 256);
        let (c2, i2, _) = gemm_cycles_with(
            cfg,
            GemmKernel::Cutlass(CutlassConfig::default_64x64()),
            256,
        );
        rows.push(vec![
            label.to_string(),
            cycles.to_string(),
            fnum(ipc, 2),
            c2.to_string(),
            fnum(i2, 2),
        ]);
    }
    print_table(
        "5. Warp scheduler (256x256 GEMMs)",
        &["policy", "simple cycles", "IPC", "cutlass cycles", "IPC"],
        &rows,
    );
    println!("(barrier-synchronized kernels are insensitive to intra-sub-core");
    println!(" scheduling order; policy effects show on latency-bound kernels)");

    // Functional sanity for ablated configurations: results stay correct.
    let mut gpu = Gpu::new(GpuConfig::mini());
    let run = run_gemm(
        &mut gpu,
        GemmProblem::square(64),
        GemmKernel::WmmaShared,
        true,
    );
    assert!(run.max_abs_err.expect("checked") < 0.01);
    println!("\n(functional correctness re-verified under ablation configs)");
}
