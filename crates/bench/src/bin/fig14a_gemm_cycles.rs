//! Fig 14a — WMMA-based GEMM kernel cycle count as matrix size varies:
//! simulator vs (surrogate) hardware.
//!
//! The paper reports GPGPU-Sim "tracks real hardware very accurately with
//! a standard deviation of less than 5%" over sizes 16..512. Our hardware
//! side is the analytic Titan V surrogate (`tcsim-hw`, see DESIGN.md §3);
//! the comparison measures whether the detailed cycle-level model tracks
//! an independent first-principles reference across the size sweep.

use tcsim_bench::{ascii_chart, fnum, gemm_on, print_table, FIG14A_SIZES};
use tcsim_cutlass::{GemmKernel, GemmProblem};
use tcsim_hw::{HwModel, KernelClass};
use tcsim_sim::{pearson, GpuConfig};

fn main() {
    println!("Fig 14a: WMMA shared-memory GEMM cycles vs matrix size");
    let hw = HwModel::titan_v();
    let mut rows = Vec::new();
    let mut sim_series = Vec::new();
    let mut hw_series = Vec::new();
    for &size in &FIG14A_SIZES {
        // The shared-memory kernel needs 32-granular tiles; the paper's
        // smallest sizes run on the simple kernel.
        let kernel = if size % 32 == 0 { GemmKernel::WmmaShared } else { GemmKernel::WmmaSimple };
        let run = gemm_on(GpuConfig::titan_v(), GemmProblem::square(size), kernel, false);
        let hw_cycles = hw.gemm_cycles(size, size, size, KernelClass::WmmaOptimized);
        sim_series.push(run.stats.cycles as f64);
        hw_series.push(hw_cycles);
        rows.push(vec![
            size.to_string(),
            fnum(hw_cycles / 1000.0, 1),
            fnum(run.stats.cycles as f64 / 1000.0, 1),
            fnum(run.stats.ipc(), 1),
        ]);
    }
    print_table(
        "Cycle counts (thousands)",
        &["size", "hardware (surrogate) kcycles", "sim kcycles", "sim IPC"],
        &rows,
    );

    let r = pearson(&sim_series, &hw_series);
    // Normalized deviation after a least-squares scale fit (the paper's
    // "<5% standard deviation" is against matched absolute hardware; ours
    // is against an independent analytic model, so we report the scale
    // factor and residual spread).
    let scale = sim_series
        .iter()
        .zip(&hw_series)
        .map(|(s, h)| s * h)
        .sum::<f64>()
        / hw_series.iter().map(|h| h * h).sum::<f64>();
    let residual: f64 = (sim_series
        .iter()
        .zip(&hw_series)
        .map(|(s, h)| {
            let e = s - scale * h;
            e * e
        })
        .sum::<f64>()
        / sim_series.len() as f64)
        .sqrt()
        / (sim_series.iter().sum::<f64>() / sim_series.len() as f64);
    let x: Vec<String> = FIG14A_SIZES.iter().map(|s| s.to_string()).collect();
    ascii_chart(
        "Fig 14a (kcycles vs size, log y)",
        &x,
        &[
            ("Hardware (surrogate)", hw_series.iter().map(|v| v / 1000.0).collect()),
            ("Sim", sim_series.iter().map(|v| v / 1000.0).collect()),
        ],
        true,
        14,
    );

    let log_sim: Vec<f64> = sim_series.iter().map(|v| v.ln()).collect();
    let log_hw: Vec<f64> = hw_series.iter().map(|v| v.ln()).collect();
    let r_log = pearson(&log_sim, &log_hw);
    println!("\ncycle-count correlation (Pearson): {:.4} linear, {:.4} log-log", r, r_log);
    println!("sim = {scale:.3} x hw; residual spread {:.1}% of mean", residual * 100.0);
    println!("(paper compares against a physical Titan V and reports <5% stdev; ours");
    println!(" compares against the independent analytic surrogate, so only the trend");
    println!(" agreement is meaningful — see DESIGN.md §3 and EXPERIMENTS.md)");
    assert!(r > 0.9 && r_log > 0.95, "simulator must track the hardware trend");
}
