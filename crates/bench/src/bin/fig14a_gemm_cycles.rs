//! Fig 14a — WMMA-based GEMM kernel cycle count as matrix size varies:
//! simulator vs (surrogate) hardware.
//!
//! The paper reports GPGPU-Sim "tracks real hardware very accurately with
//! a standard deviation of less than 5%" over sizes 16..512. Our hardware
//! side is the analytic Titan V surrogate (`tcsim-hw`, see DESIGN.md §3);
//! the comparison measures whether the detailed cycle-level model tracks
//! an independent first-principles reference across the size sweep.

use tcsim_bench::{
    ascii_chart, fnum, gemm_sweep, json_array, parse_cli, print_table, write_results, FIG14A_SIZES,
};
use tcsim_cutlass::{GemmKernel, GemmProblem};
use tcsim_hw::{HwModel, KernelClass};
use tcsim_sim::{pearson, GpuConfig, JsonWriter};

fn main() {
    let cli = parse_cli();
    println!(
        "Fig 14a: WMMA shared-memory GEMM cycles vs matrix size ({} threads)",
        cli.threads
    );
    let hw = HwModel::titan_v();
    // The main series: the shared-memory kernel needs 32-granular tiles;
    // the paper's smallest sizes run on the simple kernel. Alongside it,
    // the global-operand kernel runs at every 32-granular size as a
    // variant-comparison series (the staging benefit of Fig 16's
    // discussion) — one combined sweep, so all points simulate
    // concurrently.
    let main_kernel = |size: usize| {
        if size.is_multiple_of(32) {
            GemmKernel::WmmaShared
        } else {
            GemmKernel::WmmaSimple
        }
    };
    let variant_sizes: Vec<usize> = FIG14A_SIZES
        .iter()
        .copied()
        .filter(|s| s.is_multiple_of(32))
        .collect();
    let mut points: Vec<(GemmProblem, GemmKernel)> = FIG14A_SIZES
        .iter()
        .map(|&size| (GemmProblem::square(size), main_kernel(size)))
        .collect();
    points.extend(
        variant_sizes
            .iter()
            .map(|&size| (GemmProblem::square(size), GemmKernel::WmmaSimple)),
    );
    let runs = gemm_sweep(&GpuConfig::titan_v(), &points, false, cli.threads);
    let (main_runs, variant_runs) = runs.split_at(FIG14A_SIZES.len());

    let mut rows = Vec::new();
    let mut sim_series = Vec::new();
    let mut hw_series = Vec::new();
    let mut json_rows = Vec::new();
    for (&size, run) in FIG14A_SIZES.iter().zip(main_runs) {
        let hw_cycles = hw.gemm_cycles(size, size, size, KernelClass::WmmaOptimized);
        sim_series.push(run.stats.cycles as f64);
        hw_series.push(hw_cycles);
        rows.push(vec![
            size.to_string(),
            fnum(hw_cycles / 1000.0, 1),
            fnum(run.stats.cycles as f64 / 1000.0, 1),
            fnum(run.stats.ipc(), 1),
        ]);
        let mut w = JsonWriter::object();
        w.field_u64("size", size as u64);
        w.field_f64("hw_cycles", hw_cycles);
        w.raw_field("sim", &run.stats.to_json());
        json_rows.push(w.finish());
    }
    if let Some(path) = &cli.json {
        write_results(path, &json_array(&json_rows));
    }
    print_table(
        "Cycle counts (thousands)",
        &[
            "size",
            "hardware (surrogate) kcycles",
            "sim kcycles",
            "sim IPC",
        ],
        &rows,
    );

    // Kernel-variant comparison: shared-memory staging vs global operands
    // at the same sizes. The benefit must grow (or at least hold) with
    // size as operand reuse amortizes the staging cost.
    let mut variant_rows = Vec::new();
    for (&size, simple) in variant_sizes.iter().zip(variant_runs) {
        let main_idx = FIG14A_SIZES
            .iter()
            .position(|&s| s == size)
            .expect("subset");
        let shared = &main_runs[main_idx];
        variant_rows.push(vec![
            size.to_string(),
            fnum(simple.stats.cycles as f64 / 1000.0, 1),
            fnum(shared.stats.cycles as f64 / 1000.0, 1),
            fnum(simple.stats.cycles as f64 / shared.stats.cycles as f64, 2),
        ]);
    }
    print_table(
        "WMMA variant comparison (global operands vs shared staging)",
        &["size", "global kcycles", "shared kcycles", "speedup"],
        &variant_rows,
    );

    let r = pearson(&sim_series, &hw_series);
    // Normalized deviation after a least-squares scale fit (the paper's
    // "<5% standard deviation" is against matched absolute hardware; ours
    // is against an independent analytic model, so we report the scale
    // factor and residual spread).
    let scale = sim_series
        .iter()
        .zip(&hw_series)
        .map(|(s, h)| s * h)
        .sum::<f64>()
        / hw_series.iter().map(|h| h * h).sum::<f64>();
    let residual: f64 = (sim_series
        .iter()
        .zip(&hw_series)
        .map(|(s, h)| {
            let e = s - scale * h;
            e * e
        })
        .sum::<f64>()
        / sim_series.len() as f64)
        .sqrt()
        / (sim_series.iter().sum::<f64>() / sim_series.len() as f64);
    let x: Vec<String> = FIG14A_SIZES.iter().map(|s| s.to_string()).collect();
    ascii_chart(
        "Fig 14a (kcycles vs size, log y)",
        &x,
        &[
            (
                "Hardware (surrogate)",
                hw_series.iter().map(|v| v / 1000.0).collect(),
            ),
            ("Sim", sim_series.iter().map(|v| v / 1000.0).collect()),
        ],
        true,
        14,
    );

    let log_sim: Vec<f64> = sim_series.iter().map(|v| v.ln()).collect();
    let log_hw: Vec<f64> = hw_series.iter().map(|v| v.ln()).collect();
    let r_log = pearson(&log_sim, &log_hw);
    println!(
        "\ncycle-count correlation (Pearson): {:.4} linear, {:.4} log-log",
        r, r_log
    );
    println!(
        "sim = {scale:.3} x hw; residual spread {:.1}% of mean",
        residual * 100.0
    );
    println!("(paper compares against a physical Titan V and reports <5% stdev; ours");
    println!(" compares against the independent analytic surrogate, so only the trend");
    println!(" agreement is meaningful — see DESIGN.md §3 and EXPERIMENTS.md)");
    assert!(
        r > 0.9 && r_log > 0.95,
        "simulator must track the hardware trend"
    );
}
