//! Table I — average cumulative cycles to execute all HMMA instructions
//! up to SET n on Turing (RTX 2080), for every tile size and precision.

use tcsim_bench::{json_array, parse_cli, print_table, write_results};
use tcsim_core::{mma_timing, turing_set_completions, TuringMode};
use tcsim_isa::{Layout, WmmaDirective, WmmaShape, WmmaType};
use tcsim_sim::JsonWriter;

fn main() {
    let cli = parse_cli();
    println!("Table I: Turing HMMA cumulative cycles per SET");
    let combos: [(WmmaShape, TuringMode, &str); 10] = [
        (
            WmmaShape::M16N16K16,
            TuringMode::F16AccF32,
            "16Bit (FP32 Acc)",
        ),
        (
            WmmaShape::M16N16K16,
            TuringMode::F16AccF16,
            "16Bit (FP16 Acc)",
        ),
        (WmmaShape::M16N16K16, TuringMode::Int8, "8Bit"),
        (
            WmmaShape::M32N8K16,
            TuringMode::F16AccF32,
            "16Bit (FP32 Acc)",
        ),
        (
            WmmaShape::M32N8K16,
            TuringMode::F16AccF16,
            "16Bit (FP16 Acc)",
        ),
        (WmmaShape::M32N8K16, TuringMode::Int8, "8Bit"),
        (
            WmmaShape::M8N32K16,
            TuringMode::F16AccF32,
            "16Bit (FP32 Acc)",
        ),
        (
            WmmaShape::M8N32K16,
            TuringMode::F16AccF16,
            "16Bit (FP16 Acc)",
        ),
        (WmmaShape::M8N32K16, TuringMode::Int8, "8Bit"),
        (WmmaShape::M8N8K32, TuringMode::Int4, "4Bit"),
    ];
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for (shape, mode, label) in combos {
        let c = turing_set_completions(shape, mode).expect("supported combo");
        let mut row = vec![shape.to_string(), label.to_string()];
        for i in 0..4 {
            row.push(
                c.get(i)
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "-".into()),
            );
        }
        rows.push(row);
        let mut w = JsonWriter::object();
        w.field_str("tile", &shape.to_string());
        w.field_str("precision", label);
        w.raw_field(
            "set_completions",
            &format!(
                "[{}]",
                c.iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        );
        json_rows.push(w.finish());
    }
    print_table(
        "Average cumulative clock cycles",
        &["tile", "precision", "SET 1", "SET 2", "SET 3", "SET 4"],
        &rows,
    );
    if let Some(path) = &cli.json {
        write_results(path, &json_array(&json_rows));
    }

    // Derived observations the paper makes in §III-C2 / §III-D2.
    let volta_mixed = 54;
    let t = turing_set_completions(WmmaShape::M16N16K16, TuringMode::F16AccF32).expect("supported");
    println!(
        "\n16x16x16 mixed precision: Turing {} cycles vs Volta {} cycles (paper: 99 vs 54)",
        t.last().expect("non-empty"),
        volta_mixed
    );
    let dir = WmmaDirective::Mma {
        shape: WmmaShape::M16N16K16,
        a_layout: Layout::Row,
        b_layout: Layout::Col,
        ab_type: WmmaType::S8,
        c_type: WmmaType::S32,
        d_type: WmmaType::S32,
    };
    let timing = mma_timing(false, &dir);
    println!(
        "8-bit m16n16k16 timing used by the SM model: latency {}, initiation interval {}",
        timing.latency, timing.initiation_interval
    );
}
