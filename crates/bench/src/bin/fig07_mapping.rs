//! Fig 7 — distribution of operand matrix elements to threads for tensor
//! cores in the Titan V (Volta).
//!
//! Regenerates, from the model, what the paper's Fig 4 microbenchmark
//! printed: which threadgroup holds each operand segment, how elements
//! distribute within a threadgroup for each layout, and the SASS load
//! decomposition (two `LD.E.128` / four `LD.E.64` / 32-bit `LD.E.SYS`).

use tcsim_bench::print_table;
use tcsim_core::{threadgroup_of_lane, FragmentMap};
use tcsim_isa::{FragmentKind, Layout, WmmaType, WARP_SIZE};

fn segment_table(frag: FragmentKind, ty: WmmaType) {
    let map = FragmentMap::volta(frag, ty, Layout::Row);
    let (rows, cols) = frag.dims(map.shape());
    // For each 4×4 block of the operand, list the owning threadgroups.
    let mut out = Vec::new();
    for br in 0..rows / 4 {
        let mut row = vec![format!("rows {}-{}", br * 4, br * 4 + 3)];
        for bc in 0..cols / 4 {
            let mut tgs: Vec<usize> = map
                .owners((br * 4) as u8, (bc * 4) as u8)
                .iter()
                .map(|&(lane, _)| threadgroup_of_lane(lane))
                .collect();
            tgs.sort_unstable();
            tgs.dedup();
            row.push(
                tgs.iter()
                    .map(|t| t.to_string())
                    .collect::<Vec<_>>()
                    .join(","),
            );
        }
        out.push(row);
    }
    let mut headers = vec!["block".to_string()];
    for bc in 0..cols / 4 {
        headers.push(format!("cols {}-{}", bc * 4, bc * 4 + 3));
    }
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(
        &format!("Matrix {frag:?} ({ty}) — threadgroups owning each 4x4 block"),
        &headers_ref,
        &out,
    );
}

fn load_decomposition(frag: FragmentKind, ty: WmmaType) {
    let mut rows = Vec::new();
    for layout in [Layout::Row, Layout::Col] {
        let map = FragmentMap::volta(frag, ty, layout);
        let acc = map.lane_accesses(0, 16);
        let widths: Vec<String> = acc
            .iter()
            .map(|&(_, b)| format!("{}b", b as u32 * 8))
            .collect();
        rows.push(vec![
            format!("{layout}"),
            acc.len().to_string(),
            widths.join(" "),
        ]);
    }
    print_table(
        &format!("Matrix {frag:?} ({ty}) — per-thread load decomposition (§III-C)"),
        &["layout", "loads/thread", "widths"],
        &rows,
    );
}

fn thread_elements(frag: FragmentKind, ty: WmmaType, layout: Layout) {
    let map = FragmentMap::volta(frag, ty, layout);
    let mut rows = Vec::new();
    for lane in 0..8.min(WARP_SIZE) {
        let elems: Vec<String> = map
            .lane_elems(lane)
            .iter()
            .map(|&(r, c)| format!("({r},{c})"))
            .collect();
        rows.push(vec![format!("T{lane}"), elems.join(" ")]);
    }
    print_table(
        &format!(
            "Matrix {frag:?} {ty} {layout}-major — elements held by threads 0-7 (threadgroups 0-1)"
        ),
        &["thread", "elements (row,col)"],
        &rows,
    );
}

fn main() {
    println!("Fig 7: Volta (Titan V) operand element → thread mapping, m16n16k16");
    println!("Every A/B element is loaded by TWO threadgroups; C by one (§III-B1).");

    segment_table(FragmentKind::A, WmmaType::F16);
    segment_table(FragmentKind::B, WmmaType::F16);
    segment_table(FragmentKind::C, WmmaType::F32);

    load_decomposition(FragmentKind::A, WmmaType::F16);
    load_decomposition(FragmentKind::B, WmmaType::F16);
    load_decomposition(FragmentKind::C, WmmaType::F32);
    load_decomposition(FragmentKind::C, WmmaType::F16);

    thread_elements(FragmentKind::A, WmmaType::F16, Layout::Row);
    thread_elements(FragmentKind::A, WmmaType::F16, Layout::Col);
    thread_elements(FragmentKind::C, WmmaType::F32, Layout::Row);
    thread_elements(FragmentKind::C, WmmaType::F16, Layout::Row);

    // Validation summary.
    let mut rows = Vec::new();
    for (frag, ty) in [
        (FragmentKind::A, WmmaType::F16),
        (FragmentKind::B, WmmaType::F16),
        (FragmentKind::C, WmmaType::F32),
        (FragmentKind::C, WmmaType::F16),
    ] {
        for layout in [Layout::Row, Layout::Col] {
            let map = FragmentMap::volta(frag, ty, layout);
            let owners = map.validate();
            rows.push(vec![
                format!("{frag:?}"),
                ty.to_string(),
                layout.to_string(),
                owners.to_string(),
                map.elems_per_thread().to_string(),
            ]);
        }
    }
    print_table(
        "Validation (owners per element, fragment elements per thread)",
        &["matrix", "type", "layout", "owners", "elems/thread"],
        &rows,
    );
}
