//! Wall-clock benchmark of the event-driven SM core against the original
//! cycle-stepped core, across the paper's workload families.
//!
//! Three families, because the event-driven advantage is a function of
//! how often an SM step can issue anything:
//!
//! * **fig17-gemm** — the Fig 17 TFLOPS kernels (SGEMM / HGEMM / shared-
//!   memory WMMA) on a scaled size sweep. Throughput-saturated: nearly
//!   every cycle issues somewhere, so both cores execute the same
//!   instruction stream and the speedup comes only from cheaper
//!   bookkeeping.
//! * **fig14a-wmma** — the global-operand WMMA GEMM of Fig 14a/16.
//!   Memory-latency-bound: warps spend most cycles blocked on `wmma.load`
//!   round trips and the event core skips most SM steps.
//! * **latency-probe** — dependent global-load chains (§III-methodology
//!   pointer chase) with L1-, L2- and DRAM-resident working sets. The
//!   extreme case: hundreds of blocked cycles per executed instruction.
//!
//! For every point the same workload runs once per core model on an
//! otherwise identical Titan V GPU, and the binary asserts the two cores
//! produce byte-identical `LaunchStats` JSON (the differential contract
//! of `tests/core_differential.rs`, re-checked at benchmark scale). The
//! table and artifact (`--json`, default
//! `results/BENCH_core_speedup.json`) report per-point, per-family and
//! overall speedups.
//!
//! Exits non-zero if the event-driven core is slower in aggregate — CI
//! runs this as a regression gate (`scripts/ci.sh`).

use std::time::Instant;
use tcsim_bench::{fnum, json_array, parse_cli, print_table, write_results};
use tcsim_cutlass::microbench::{chase_chain, pointer_chase};
use tcsim_cutlass::{run_gemm, GemmKernel, GemmPrecision, GemmProblem};
use tcsim_sim::{CoreModel, Gpu, GpuConfig, JsonWriter, LaunchBuilder, SimOptions};

/// Scaled Fig 17 sweep (the paper's axis starts at 256 and ends at 16384;
/// this keeps the same kernels at CI-friendly sizes).
const SIZES: [usize; 5] = [64, 128, 192, 256, 320];

/// Latency-probe working sets: (label, chain elements (8 B each), stride
/// in elements, hops per warp). The stride is odd so the chain is a
/// single cycle over a power-of-two footprint, and spans >1 cache line so
/// every hop leaves the current sector.
const CHASES: [(&str, usize, usize, u32); 3] = [
    ("chase L1 16KiB", 2 << 10, 33, 608),
    ("chase L2 1MiB", 128 << 10, 33, 608),
    ("chase DRAM 32MiB", 4 << 20, 33, 608),
];

fn max_size_arg() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--max-size" {
            return args
                .next()
                .expect("--max-size requires a value")
                .parse()
                .expect("--max-size must be a number");
        }
    }
    *SIZES.last().expect("non-empty size list")
}

struct Point {
    family: &'static str,
    label: String,
    size: usize,
    cycles: u64,
    instructions: u64,
    event_s: f64,
    stepped_s: f64,
}

struct Run {
    stats_json: String,
    cycles: u64,
    instructions: u64,
    wall_s: f64,
}

fn timed_gemm(size: usize, kernel: GemmKernel, precision: GemmPrecision, core: CoreModel) -> Run {
    let mut gpu = Gpu::new(SimOptions::new(GpuConfig::titan_v()).core(core));
    let problem = GemmProblem {
        precision,
        ..GemmProblem::square(size)
    };
    let t0 = Instant::now();
    let run = run_gemm(&mut gpu, problem, kernel, false);
    Run {
        stats_json: run.stats.to_json(),
        cycles: run.stats.cycles,
        instructions: run.stats.instructions,
        wall_s: t0.elapsed().as_secs_f64(),
    }
}

/// Chase launch shape: one CTA per Titan V SM, 8 warps per CTA. Every
/// warp runs its own dependent chain (entered at a distinct element), so
/// the machine holds `80 × 8` mostly-blocked warps whose wake times drift
/// apart — the cycle-stepped core re-scans every resident warp on every
/// visited cycle while the event core steps only the SM that woke. More
/// resident warps per SM would *lower* the ratio: with enough drifting
/// wake times the SM wakes nearly every cycle and the skip advantage
/// vanishes into the shared execution floor.
const CHASE_GRID: u32 = 80;
const CHASE_BLOCK: u32 = 256;

fn timed_chase(elems: usize, stride: usize, iters: u32, core: CoreModel) -> Run {
    let mut gpu = Gpu::new(SimOptions::new(GpuConfig::titan_v()).core(core));
    let buf = gpu.alloc(elems as u64 * 8);
    let warps = (CHASE_GRID * CHASE_BLOCK / 32) as u64;
    let out = gpu.alloc(warps * 8);
    let chain = chase_chain(elems, stride, buf);
    let bytes: Vec<u8> = chain.iter().flat_map(|w| w.to_le_bytes()).collect();
    gpu.memcpy_h2d(buf, &bytes);
    // Even start spacing along the chase cycle (see `pointer_chase`).
    let spread =
        ((stride as u64 * (elems as u64 / warps)).max(stride as u64) & (elems as u64 - 1)) as u32;
    let t0 = Instant::now();
    let stats = LaunchBuilder::new(pointer_chase(iters, elems, spread))
        .grid(CHASE_GRID)
        .block(CHASE_BLOCK)
        .param_u64(buf)
        .param_u64(out)
        .launch(&mut gpu);
    Run {
        stats_json: stats.to_json(),
        cycles: stats.cycles,
        instructions: stats.instructions,
        wall_s: t0.elapsed().as_secs_f64(),
    }
}

fn push_point(
    points: &mut Vec<Point>,
    family: &'static str,
    label: String,
    size: usize,
    mut run: impl FnMut(CoreModel) -> Run,
) {
    let event = run(CoreModel::EventDriven);
    let stepped = run(CoreModel::CycleStepped);
    assert_eq!(
        event.stats_json, stepped.stats_json,
        "{label}: the two cores must produce byte-identical LaunchStats"
    );
    points.push(Point {
        family,
        label,
        size,
        cycles: event.cycles,
        instructions: event.instructions,
        event_s: event.wall_s,
        stepped_s: stepped.wall_s,
    });
}

fn main() {
    let cli = parse_cli();
    let max_size = max_size_arg();
    println!("Core-model speedup: event-driven vs cycle-stepped (Titan V, sizes <= {max_size})");

    let mut points = Vec::new();

    for (kernel, precision, label) in [
        (GemmKernel::Sgemm, GemmPrecision::Fp32, "SGEMM (FFMA)"),
        (GemmKernel::Hgemm, GemmPrecision::Fp16, "HGEMM (HFMA2)"),
        (
            GemmKernel::WmmaShared,
            GemmPrecision::MixedF32,
            "WMMA shared (TC)",
        ),
    ] {
        for &size in SIZES.iter().filter(|&&s| s <= max_size) {
            push_point(
                &mut points,
                "fig17-gemm",
                format!("{label} {size}"),
                size,
                |core| timed_gemm(size, kernel, precision, core),
            );
        }
    }

    for &size in SIZES.iter().filter(|&&s| s <= max_size && s >= 128) {
        push_point(
            &mut points,
            "fig14a-wmma",
            format!("WMMA global (TC) {size}"),
            size,
            |core| timed_gemm(size, GemmKernel::WmmaSimple, GemmPrecision::MixedF32, core),
        );
    }

    // Scale probe length with --max-size so the CI smoke stays fast
    // (rounded to the kernel's 16× unroll).
    let iter_scale = (max_size as f64 / *SIZES.last().expect("sizes") as f64).min(1.0);
    for (label, elems, stride, iters) in CHASES {
        let iters = ((iters as f64 * iter_scale) as u32).max(96) / 16 * 16;
        push_point(
            &mut points,
            "latency-probe",
            format!("{label} x{iters}"),
            iters as usize,
            |core| timed_chase(elems, stride, iters, core),
        );
    }

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for p in &points {
        let speedup = p.stepped_s / p.event_s.max(1e-12);
        rows.push(vec![
            p.family.to_string(),
            p.label.clone(),
            p.cycles.to_string(),
            p.instructions.to_string(),
            fnum(p.stepped_s * 1e3, 1),
            fnum(p.event_s * 1e3, 1),
            fnum(speedup, 2),
        ]);
        let mut w = JsonWriter::object();
        w.field_str("family", p.family);
        w.field_str("label", &p.label);
        w.field_u64("size", p.size as u64);
        w.field_u64("cycles", p.cycles);
        w.field_u64("instructions", p.instructions);
        w.field_f64("cycle_stepped_ms", p.stepped_s * 1e3);
        w.field_f64("event_driven_ms", p.event_s * 1e3);
        w.field_f64("speedup", speedup);
        json_rows.push(w.finish());
    }
    print_table(
        "Identical results, wall-clock per core model",
        &[
            "family",
            "workload",
            "cycles",
            "instrs",
            "stepped ms",
            "event ms",
            "speedup",
        ],
        &rows,
    );

    let mut family_rows = Vec::new();
    let mut family_json = Vec::new();
    let mut families: Vec<&'static str> = Vec::new();
    for p in &points {
        if !families.contains(&p.family) {
            families.push(p.family);
        }
    }
    for fam in families {
        let stepped: f64 = points
            .iter()
            .filter(|p| p.family == fam)
            .map(|p| p.stepped_s)
            .sum();
        let event: f64 = points
            .iter()
            .filter(|p| p.family == fam)
            .map(|p| p.event_s)
            .sum();
        let ratio = stepped / event.max(1e-12);
        family_rows.push(vec![
            fam.to_string(),
            fnum(stepped, 2),
            fnum(event, 2),
            fnum(ratio, 2),
        ]);
        let mut w = JsonWriter::object();
        w.field_str("family", fam);
        w.field_f64("cycle_stepped_s", stepped);
        w.field_f64("event_driven_s", event);
        w.field_f64("speedup", ratio);
        family_json.push(w.finish());
    }
    print_table(
        "Per-family aggregate",
        &["family", "stepped s", "event s", "speedup"],
        &family_rows,
    );

    let total_stepped: f64 = points.iter().map(|p| p.stepped_s).sum();
    let total_event: f64 = points.iter().map(|p| p.event_s).sum();
    let aggregate = total_stepped / total_event.max(1e-12);
    // Geometric mean of per-point speedups: the time-weighted aggregate
    // is dominated by whichever family happens to run longest, while the
    // geomean weights every workload point equally.
    let geomean = (points
        .iter()
        .map(|p| (p.stepped_s / p.event_s.max(1e-12)).ln())
        .sum::<f64>()
        / points.len().max(1) as f64)
        .exp();
    println!(
        "\noverall: cycle-stepped {} s, event-driven {} s -> {}x speedup \
         (geomean over points {}x)",
        fnum(total_stepped, 2),
        fnum(total_event, 2),
        fnum(aggregate, 2),
        fnum(geomean, 2)
    );

    let mut top = JsonWriter::object();
    top.field_str("bench", "core_speedup");
    top.field_str("config", "titan_v");
    top.field_f64("cycle_stepped_s", total_stepped);
    top.field_f64("event_driven_s", total_event);
    top.field_f64("aggregate_speedup", aggregate);
    top.field_f64("geomean_speedup", geomean);
    top.raw_field("families", &json_array(&family_json));
    top.raw_field("points", &json_array(&json_rows));
    let json = top.finish();
    let path = cli
        .json
        .unwrap_or_else(|| "results/BENCH_core_speedup.json".into());
    write_results(&path, &json);

    assert!(
        aggregate >= 1.0,
        "event-driven core regressed: {aggregate:.2}x vs cycle-stepped"
    );
}
