//! Fig 14b — IPC correlation of CUTLASS GEMM kernels: simulator vs
//! (surrogate) hardware. The paper reports 99.6% correlation over
//! CUTLASS-generated tensor-core kernels.
//!
//! Each point is one workload (problem shape × tiling configuration). The
//! instruction count is an architectural property of the kernel binary —
//! identical on both sides — so IPC_hw = instructions / cycles_hw and
//! IPC_sim = instructions / cycles_sim.

use tcsim_bench::{fnum, gemm_sweep, json_array, parse_cli, print_table, write_results};
use tcsim_cutlass::{CutlassConfig, GemmKernel, GemmProblem};
use tcsim_hw::{HwModel, KernelClass};
use tcsim_sim::{pearson, GpuConfig, JsonWriter};

fn main() {
    let cli = parse_cli();
    println!(
        "Fig 14b: CUTLASS GEMM IPC correlation (sim vs hardware surrogate, {} threads)",
        cli.threads
    );
    let hw = HwModel::titan_v();
    let cfg64 = CutlassConfig::default_64x64();
    let cfg_single = CutlassConfig {
        cta_m: 64,
        cta_n: 64,
        warp_m: 32,
        warp_n: 32,
        stages: 1,
    };
    let cfg_wide = CutlassConfig {
        cta_m: 64,
        cta_n: 64,
        warp_m: 32,
        warp_n: 64,
        stages: 2,
    };

    // Workload set: the paper's Fig 14b points all come from CUTLASS
    // tensor-core kernels (shape sweep × tiling configurations).
    let mut workloads: Vec<(GemmProblem, GemmKernel, KernelClass)> = Vec::new();
    for &s in &[64usize, 128, 192, 256, 384, 512, 768] {
        workloads.push((
            GemmProblem::square(s),
            GemmKernel::Cutlass(cfg64),
            KernelClass::CutlassTc,
        ));
    }
    for &s in &[128usize, 256, 512] {
        workloads.push((
            GemmProblem::square(s),
            GemmKernel::Cutlass(cfg_single),
            KernelClass::CutlassTc,
        ));
        workloads.push((
            GemmProblem::square(s),
            GemmKernel::Cutlass(cfg_wide),
            KernelClass::CutlassTc,
        ));
    }
    // Rectangular shapes.
    for &(m, n, k) in &[
        (256usize, 128usize, 256usize),
        (128, 512, 128),
        (512, 256, 192),
        (192, 384, 256),
        (640, 128, 128),
    ] {
        workloads.push((
            GemmProblem {
                m,
                n,
                k,
                precision: tcsim_cutlass::GemmPrecision::MixedF32,
            },
            GemmKernel::Cutlass(cfg64),
            KernelClass::CutlassTc,
        ));
    }

    let runnable: Vec<(GemmProblem, GemmKernel, KernelClass)> = workloads
        .into_iter()
        .filter(|(problem, kernel, _)| {
            problem.m % kernel.granularity() == 0 && problem.n % kernel.granularity() == 0
        })
        .collect();
    let points: Vec<(GemmProblem, GemmKernel)> = runnable.iter().map(|&(p, k, _)| (p, k)).collect();
    let runs = gemm_sweep(&GpuConfig::titan_v(), &points, false, cli.threads);

    let mut rows = Vec::new();
    let mut sim_ipc = Vec::new();
    let mut hw_ipc = Vec::new();
    let mut json_rows = Vec::new();
    for (&(problem, kernel, class), run) in runnable.iter().zip(&runs) {
        let hw_cycles = hw.gemm_cycles(problem.m, problem.n, problem.k, class);
        let i_hw = run.stats.instructions as f64 / hw_cycles;
        let i_sim = run.stats.ipc();
        sim_ipc.push(i_sim);
        hw_ipc.push(i_hw);
        rows.push(vec![
            format!("{}x{}x{}", problem.m, problem.n, problem.k),
            format!("{kernel:?}").chars().take(24).collect(),
            fnum(i_hw, 1),
            fnum(i_sim, 1),
        ]);
        let mut w = JsonWriter::object();
        w.field_str(
            "problem",
            &format!("{}x{}x{}", problem.m, problem.n, problem.k),
        );
        w.field_str("kernel", &format!("{kernel:?}"));
        w.field_f64("hw_ipc", i_hw);
        w.raw_field("sim", &run.stats.to_json());
        json_rows.push(w.finish());
    }
    print_table(
        "IPC scatter points",
        &["problem", "kernel", "hardware IPC", "sim IPC"],
        &rows,
    );

    let r = pearson(&sim_ipc, &hw_ipc);
    println!("\nIPC correlation: {:.2}% (paper: 99.60%)", r * 100.0);
    if let Some(path) = &cli.json {
        let mut top = JsonWriter::object();
        top.field_f64("pearson", r);
        top.raw_field("points", &json_array(&json_rows));
        write_results(path, &top.finish());
    }
    assert!(r > 0.9, "IPC correlation collapsed: {r}");
}
