//! Table III / Fig 12b — the outer-product computation performed by each
//! threadgroup in every HMMA set and step (Volta, mixed precision).

use tcsim_bench::print_table;
use tcsim_core::{
    execute_stepwise_volta, mma_reference, table3_rows, volta_schedule, MmaMode, Tile,
};
use tcsim_f16::F16;
use tcsim_isa::{FragmentKind, WmmaShape, WmmaType};

fn main() {
    println!("Table III: octet computation details (Volta mixed precision)");
    println!("a–d: threadgroup X's A k-blocks; e–h: threadgroup X+4's;");
    println!("A–D: B k-blocks in X's columns; E–H: in X+4's columns.");

    let rows: Vec<Vec<String>> = table3_rows()
        .into_iter()
        .map(|(set, step, lo, hi)| vec![set.to_string(), step.to_string(), lo, hi])
        .collect();
    print_table(
        "Outer products per step (octet X)",
        &["SET", "STEP", "threadgroup X", "threadgroup X+4"],
        &rows,
    );

    // Expanded schedule: operand rows/cols of octet 0 per HMMA.
    let mut rows = Vec::new();
    for (i, hmma) in volta_schedule(MmaMode::MixedF32).iter().enumerate() {
        for piece in hmma
            .iter()
            .filter(|p| p.threadgroup == 0 || p.threadgroup == 4)
        {
            rows.push(vec![
                format!("{}", i / 4 + 1),
                format!("{}", i % 4),
                format!("TG{}", piece.threadgroup),
                format!(
                    "A[{}..{}]",
                    piece.a_rows[0],
                    piece.a_rows.last().expect("rows")
                ),
                format!(
                    "k[{}..{}]",
                    piece.k_range[0],
                    piece.k_range.last().expect("ks")
                ),
                format!(
                    "B[..,{}..{}]",
                    piece.b_cols[0],
                    piece.b_cols.last().expect("cols")
                ),
            ]);
        }
    }
    print_table(
        "Octet 0 operand footprints per HMMA (expanded)",
        &["SET", "STEP", "tg", "A rows", "k block", "B cols"],
        &rows,
    );

    // Execute the decomposed schedule and verify bit-equality with the
    // atomic wmma.mma semantics.
    let shape = WmmaShape::M16N16K16;
    let mut a = Tile::for_fragment(FragmentKind::A, shape, WmmaType::F16);
    let mut b = Tile::for_fragment(FragmentKind::B, shape, WmmaType::F16);
    let mut c = Tile::for_fragment(FragmentKind::C, shape, WmmaType::F32);
    for r in 0..16 {
        for cc in 0..16 {
            a.set_f16(r, cc, F16::from_f32(((r * 3 + cc) % 11) as f32 - 5.0));
            b.set_f16(r, cc, F16::from_f32(((r + 7 * cc) % 13) as f32 - 6.0));
            c.set_f32(r, cc, (r as f32) - (cc as f32));
        }
    }
    let atomic = mma_reference(&a, &b, &c, WmmaType::F32);
    let stepwise = execute_stepwise_volta(&a, &b, &c, WmmaType::F32);
    assert_eq!(atomic, stepwise);
    println!("\nStepwise execution of the Table III schedule is bit-identical to");
    println!("the atomic wmma.mma semantics (verified on a 16x16x16 instance).");
}
