//! Extension experiment: Turing's inference modes (§III-B2 and the T4
//! motivation in §I) — FP16 vs INT8 tensor-core GEMM on the simulated
//! RTX 2080.
//!
//! The paper characterizes Turing's 8-bit mode as its fastest
//! (Table I: 59 vs 99 cumulative cycles for 16×16×16) and motivates it
//! with inference workloads. This binary compares end-to-end GEMM cycles
//! for the two modes across inference-shaped problems.

use tcsim_bench::{fnum, print_table};
use tcsim_core::{turing_set_completions, TuringMode};
use tcsim_cutlass::{run_gemm, GemmKernel, GemmPrecision, GemmProblem};
use tcsim_isa::WmmaShape;
use tcsim_sim::{Gpu, GpuConfig};

fn main() {
    println!("Turing inference modes: FP16 vs INT8 tensor-core GEMM (RTX 2080)");

    // Per-instruction latency comparison from Table I.
    let f16 = turing_set_completions(WmmaShape::M16N16K16, TuringMode::F16AccF32).expect("mode");
    let i8 = turing_set_completions(WmmaShape::M16N16K16, TuringMode::Int8).expect("mode");
    println!(
        "\nper wmma.mma (Table I, 16x16x16): fp16/fp32acc {} cycles, int8 {} cycles ({:.2}x)",
        f16.last().expect("non-empty"),
        i8.last().expect("non-empty"),
        *f16.last().expect("non-empty") as f64 / *i8.last().expect("non-empty") as f64
    );

    let mut rows = Vec::new();
    for &(m, n, k) in &[
        (64usize, 64usize, 64usize),
        (128, 128, 128),
        (128, 256, 256),
        (256, 256, 256),
    ] {
        let pf = GemmProblem {
            m,
            n,
            k,
            precision: GemmPrecision::MixedF32,
        };
        let mut gpu = Gpu::new(GpuConfig::rtx_2080());
        let rf = run_gemm(&mut gpu, pf, GemmKernel::WmmaSimple, true);

        let pi = GemmProblem {
            m,
            n,
            k,
            precision: GemmPrecision::Int8,
        };
        let mut gpu = Gpu::new(GpuConfig::rtx_2080());
        let ri = run_gemm(&mut gpu, pi, GemmKernel::IgemmWmma, true);

        rows.push(vec![
            format!("{m}x{n}x{k}"),
            rf.stats.cycles.to_string(),
            ri.stats.cycles.to_string(),
            fnum(rf.stats.cycles as f64 / ri.stats.cycles as f64, 2),
            format!("{:.0e}", rf.max_abs_err.expect("checked")),
            format!("{:.0e}", ri.max_abs_err.expect("checked")),
        ]);
    }
    print_table(
        "End-to-end GEMM (one warp per 16x16 tile; both verified)",
        &[
            "problem",
            "fp16 cycles",
            "int8 cycles",
            "speedup",
            "fp16 err",
            "int8 err",
        ],
        &rows,
    );
    println!("\nINT8 wins from the faster HMMA sequencing (Table I) and the halved");
    println!("operand footprint; its integer accumulation is exact (err 0). The");
    println!("end-to-end gap is modest for this latency-bound one-warp-per-tile");
    println!("kernel — the per-instruction advantage (1.68x) only fully shows in");
    println!("compute-bound kernels, matching the paper's observation that the");
    println!("naive WMMA kernels are memory-limited (Fig 16/17).");
}
