//! Fig 17 — tensor core performance on the V100/Titan V in different
//! scenarios: cuBLAS with and without tensor cores (FP16/FP32), the
//! optimized WMMA kernel, max-performance stress kernels, and the
//! theoretical 125 TFLOPS limit, as matrix size varies.
//!
//! Fig 17 is a pure hardware-profiling figure in the paper; here the
//! series come from the analytic Titan V surrogate (datasheet rooflines +
//! efficiency ramps — DESIGN.md §3) and are cross-checked against the
//! cycle-level simulator at sizes the simulator can reach.

use tcsim_bench::{
    ascii_chart, fnum, gemm_sweep, json_array, parse_cli, print_table, write_results, FIG17_SIZES,
};
use tcsim_cutlass::{GemmKernel, GemmPrecision, GemmProblem};
use tcsim_hw::{HwModel, KernelClass};
use tcsim_sim::{GpuConfig, JsonWriter};

fn main() {
    let cli = parse_cli();
    println!("Fig 17: tensor core performance (TFLOPS) vs square matrix size");
    let hw = HwModel::titan_v();
    let series: [(KernelClass, &str); 8] = [
        (KernelClass::CublasFp32, "CUBLAS_WO_TC_FP32"),
        (KernelClass::CublasFp16, "CUBLAS_WO_TC_FP16"),
        (KernelClass::WmmaOptimized, "WMMA OPTIMIZED"),
        (KernelClass::CublasTcFp32, "CUBLAS_WITH_TC_FP32"),
        (KernelClass::CublasTcFp16, "CUBLAS_WITH_TC_FP16"),
        (KernelClass::MaxPerfFp16, "MAX PERF KERNEL(FP16)"),
        (KernelClass::MaxPerfMixed, "MAX PERF KERNEL(FP32)"),
        (KernelClass::TheoreticalLimit, "THEORETICAL LIMIT"),
    ];

    let mut rows = Vec::new();
    for (class, label) in series {
        let mut row = vec![label.to_string()];
        for &s in &FIG17_SIZES {
            row.push(fnum(hw.gemm_tflops(s, class), 1));
        }
        rows.push(row);
    }
    let mut headers = vec!["kernel".to_string()];
    headers.extend(FIG17_SIZES.iter().map(|s| s.to_string()));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table("Hardware surrogate TFLOPS", &headers_ref, &rows);

    let x: Vec<String> = FIG17_SIZES.iter().map(|s| s.to_string()).collect();
    let chart_series: Vec<(&str, Vec<f64>)> = vec![
        (
            "Theoretical limit",
            FIG17_SIZES
                .iter()
                .map(|&s| hw.gemm_tflops(s, KernelClass::TheoreticalLimit))
                .collect(),
        ),
        (
            "Max-perf fp16",
            FIG17_SIZES
                .iter()
                .map(|&s| hw.gemm_tflops(s, KernelClass::MaxPerfFp16))
                .collect(),
        ),
        (
            "Cublas TC fp16",
            FIG17_SIZES
                .iter()
                .map(|&s| hw.gemm_tflops(s, KernelClass::CublasTcFp16))
                .collect(),
        ),
        (
            "Wmma optimized",
            FIG17_SIZES
                .iter()
                .map(|&s| hw.gemm_tflops(s, KernelClass::WmmaOptimized))
                .collect(),
        ),
        (
            "hGEMM (no TC)",
            FIG17_SIZES
                .iter()
                .map(|&s| hw.gemm_tflops(s, KernelClass::CublasFp16))
                .collect(),
        ),
        (
            "sGEMM (no TC)",
            FIG17_SIZES
                .iter()
                .map(|&s| hw.gemm_tflops(s, KernelClass::CublasFp32))
                .collect(),
        ),
    ];
    ascii_chart("Fig 17 (TFLOPS vs size)", &x, &chart_series, false, 18);

    // Headline numbers.
    let best = hw.gemm_tflops(8192, KernelClass::CublasTcFp16);
    println!("\nbest GEMM: {:.1} TFLOPS at 8192 (paper: ~96)", best);
    println!(
        "max sustainable: {:.1} (FP16) / {:.1} (mixed) TFLOPS (paper: 109.6 / 108.7)",
        hw.gemm_tflops(8192, KernelClass::MaxPerfFp16),
        hw.gemm_tflops(8192, KernelClass::MaxPerfMixed)
    );
    for s in [2048usize, 8192] {
        let tc = hw.gemm_tflops(s, KernelClass::CublasTcFp16);
        println!(
            "at {s}: TC / SGEMM = {:.1}x (paper: 3-6x), TC / HGEMM = {:.1}x (paper: ~3x)",
            tc / hw.gemm_tflops(s, KernelClass::CublasFp32),
            tc / hw.gemm_tflops(s, KernelClass::CublasFp16)
        );
    }

    // Simulator cross-check at sizes the cycle-level model can reach: the
    // ordering (TC kernels > HGEMM > SGEMM) must hold in the simulator
    // across the size sweep too. All kernel×size points run concurrently
    // through the sweep engine.
    const SIM_SIZES: [usize; 5] = [64, 128, 192, 256, 320];
    println!(
        "\nSimulator cross-check (achieved TFLOPS at 1.53 GHz, {} threads):",
        cli.threads
    );
    let variants = [
        (GemmKernel::Sgemm, GemmPrecision::Fp32, "SGEMM (FFMA)"),
        (GemmKernel::Hgemm, GemmPrecision::Fp16, "HGEMM (HFMA2)"),
        (
            GemmKernel::WmmaShared,
            GemmPrecision::MixedF32,
            "WMMA shared (TC)",
        ),
    ];
    let mut labelled: Vec<(usize, &str)> = Vec::new();
    let mut points: Vec<(GemmProblem, GemmKernel)> = Vec::new();
    for &(kernel, precision, label) in &variants {
        for &size in &SIM_SIZES {
            labelled.push((size, label));
            points.push((
                GemmProblem {
                    precision,
                    ..GemmProblem::square(size)
                },
                kernel,
            ));
        }
    }
    let runs = gemm_sweep(&GpuConfig::titan_v(), &points, false, cli.threads);
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for (&(size, label), run) in labelled.iter().zip(&runs) {
        rows.push(vec![
            label.to_string(),
            size.to_string(),
            run.stats.cycles.to_string(),
            fnum(run.tflops(), 2),
        ]);
        let mut w = JsonWriter::object();
        w.field_str("kernel", label);
        w.field_u64("size", size as u64);
        w.field_f64("tflops", run.tflops());
        w.raw_field("sim", &run.stats.to_json());
        json_rows.push(w.finish());
    }
    print_table(
        "sim cross-check",
        &["kernel", "size", "cycles", "TFLOPS"],
        &rows,
    );
    // At every size the tensor-core kernel must beat HGEMM, which must
    // beat SGEMM (the paper's Fig 17 ordering).
    let tflops_of = |label: &str, size: usize| {
        labelled
            .iter()
            .zip(&runs)
            .find(|(&(s, l), _)| s == size && l == label)
            .map(|(_, run)| run.tflops())
            .expect("point present")
    };
    for &size in &SIM_SIZES {
        let sgemm = tflops_of("SGEMM (FFMA)", size);
        let hgemm = tflops_of("HGEMM (HFMA2)", size);
        let wmma = tflops_of("WMMA shared (TC)", size);
        assert!(
            wmma > hgemm && wmma > sgemm,
            "tensor cores lost at {size}: wmma {wmma:.2} hgemm {hgemm:.2} sgemm {sgemm:.2}"
        );
        // HGEMM's half-precision advantage only materializes once the
        // launch/stride overhead amortizes (the paper's curves cross at
        // small sizes too).
        if size >= 192 {
            assert!(
                hgemm > sgemm,
                "HGEMM should beat SGEMM at {size}: {hgemm:.2} vs {sgemm:.2}"
            );
        }
    }

    if let Some(path) = &cli.json {
        // Surrogate series plus the simulator cross-check rows.
        let mut surrogate = Vec::new();
        for (class, label) in series {
            for &s in &FIG17_SIZES {
                let mut w = JsonWriter::object();
                w.field_str("kernel", label);
                w.field_u64("size", s as u64);
                w.field_f64("hw_tflops", hw.gemm_tflops(s, class));
                surrogate.push(w.finish());
            }
        }
        let mut top = JsonWriter::object();
        top.raw_field("surrogate", &json_array(&surrogate));
        top.raw_field("sim_crosscheck", &json_array(&json_rows));
        write_results(path, &top.finish());
    }
}
