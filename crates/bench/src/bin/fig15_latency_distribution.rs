//! Fig 15 — distribution of `wmma.load`, `wmma.mma` and `wmma.store`
//! latency over the iterations of a 1024×1024 shared-memory WMMA GEMM.
//!
//! The paper measured minimum latencies of 125 (load), 70 (mma) and 120
//! (store) cycles on the Titan V, with occasional high-latency spikes
//! attributed to warp scheduling and memory traffic. This binary profiles
//! every WMMA instruction executed by the simulator for the same workload
//! and prints the distributions.

use tcsim_bench::{fnum, print_table};
use tcsim_cutlass::{run_gemm, GemmKernel, GemmProblem};
use tcsim_hw::HwModel;
use tcsim_sim::{Distribution, Gpu, GpuConfig, SimOptions};
use tcsim_sm::WmmaKind;

fn main() {
    let size = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1024usize);
    println!("Fig 15: wmma instruction latency distributions ({size}x{size} shared-memory GEMM)");

    let mut gpu = Gpu::new(SimOptions::new(GpuConfig::titan_v()).profile_wmma(true));
    let run = run_gemm(
        &mut gpu,
        GemmProblem::square(size),
        GemmKernel::WmmaShared,
        false,
    );

    let paper_min = HwModel::titan_v().wmma_min_latencies();
    let mut rows = Vec::new();
    for (kind, label, pmin) in [
        (WmmaKind::Load, "wmma.load", paper_min.0),
        (WmmaKind::Mma, "wmma.mma", paper_min.1),
        (WmmaKind::Store, "wmma.store", paper_min.2),
    ] {
        let lat = run.stats.wmma_latencies(kind);
        let d = Distribution::of(&lat).expect("profiled samples");
        rows.push(vec![
            label.to_string(),
            d.count.to_string(),
            pmin.to_string(),
            d.min.to_string(),
            d.median.to_string(),
            fnum(d.mean, 1),
            d.p95.to_string(),
            d.max.to_string(),
        ]);
    }
    print_table(
        "Latency distributions (cycles)",
        &[
            "instr",
            "samples",
            "paper min",
            "min",
            "median",
            "mean",
            "p95",
            "max",
        ],
        &rows,
    );

    // Histogram of load latencies (text sparkline over log buckets).
    for (kind, label) in [
        (WmmaKind::Load, "wmma.load"),
        (WmmaKind::Mma, "wmma.mma"),
        (WmmaKind::Store, "wmma.store"),
    ] {
        let lat = run.stats.wmma_latencies(kind);
        let buckets = [32u64, 64, 96, 128, 192, 256, 384, 512, 1024, u64::MAX];
        let mut counts = vec![0usize; buckets.len()];
        for &l in &lat {
            let i = buckets
                .iter()
                .position(|&b| l <= b)
                .unwrap_or(buckets.len() - 1);
            counts[i] += 1;
        }
        let total = lat.len().max(1);
        let mut rows = Vec::new();
        let mut lo = 0u64;
        for (i, &b) in buckets.iter().enumerate() {
            if counts[i] > 0 {
                let bar = "#".repeat((counts[i] * 50 / total).max(1));
                rows.push(vec![
                    if b == u64::MAX {
                        format!(">{lo}")
                    } else {
                        format!("{lo}-{b}")
                    },
                    counts[i].to_string(),
                    bar,
                ]);
            }
            lo = b;
        }
        print_table(
            &format!("{label} latency histogram"),
            &["cycles", "count", ""],
            &rows,
        );
    }

    println!("\nPaper shape: occasional high latencies from scheduling/memory traffic;");
    println!("mma latency is tightest; load shows the widest spread. Observed spreads:");
    for (kind, label) in [
        (WmmaKind::Load, "load"),
        (WmmaKind::Mma, "mma"),
        (WmmaKind::Store, "store"),
    ] {
        let lat = run.stats.wmma_latencies(kind);
        let d = Distribution::of(&lat).expect("samples");
        println!("  {label}: max/min = {:.1}", d.max as f64 / d.min as f64);
    }
}
