//! End-to-end DNN inference on the simulated tensor cores: a LeNet-style
//! convnet and a 3-layer MLP lowered through `tcsim-nn` (implicit-GEMM
//! convolution, fused bias+ReLU epilogues, dedicated elementwise
//! kernels), with every layer differentially checked against the host
//! f32 reference.
//!
//! Per layer it reports simulated cycles, IPC, HMMA-pipe occupancy (from
//! the per-launch trace window) and the device-vs-reference error. The
//! chained schedule runs all launches in dependency order on one GPU;
//! the same plan is then re-run through the parallel sweep engine
//! (reference-fed layer inputs break the dependence) to confirm the
//! per-launch cycle counts are schedule-independent.
//!
//! Flags: `--json <path>` (machine-readable report), `--threads <n>`
//! (sweep workers), `--smoke` (tiny fixed-seed net only — the CI golden).

use tcsim_bench::{fnum, json_array, parse_cli, print_table, write_results};
use tcsim_nn::{models, run_chained, run_parallel, Graph, InferenceReport, Tensor};
use tcsim_sim::GpuConfig;

const SEED: u64 = 42;

fn layer_table(report: &InferenceReport) {
    let rows: Vec<Vec<String>> = report
        .layers
        .iter()
        .map(|l| {
            vec![
                l.name.clone(),
                l.kernel.clone(),
                l.dims.clone(),
                l.cycles.to_string(),
                if l.cycles == 0 {
                    "-".into()
                } else {
                    fnum(l.ipc(), 2)
                },
                match l.hmma_occupancy {
                    Some(o) => fnum(o * 100.0, 1),
                    None => "-".into(),
                },
                format!("{:.2e}/{:.2e}", l.max_err, l.tolerance),
            ]
        })
        .collect();
    print_table(
        &format!("{} ({} mode)", report.network, report.mode),
        &[
            "layer", "kernel", "problem", "cycles", "IPC", "HMMA%", "err/tol",
        ],
        &rows,
    );
    println!(
        "{}: {} launches, {} total cycles, worst err {:.0}% of tolerance",
        report.network,
        report.layers.iter().filter(|l| l.kernel != "host").count(),
        report.total_cycles(),
        report.worst_rel_err() * 100.0
    );
}

fn run_net(graph: &Graph, input: &Tensor, cfg: &GpuConfig, threads: usize) -> InferenceReport {
    let chained = run_chained(graph, input, cfg.clone(), true);
    chained.assert_within_tolerance();
    layer_table(&chained);

    // Same plan through the sweep engine: per-layer parallelism with
    // reference-fed inputs. Launch boundaries are cold, so every layer
    // must cost exactly what it cost in the chained schedule.
    let parallel = run_parallel(graph, input, cfg.clone(), false, threads);
    parallel.assert_within_tolerance();
    for (c, p) in chained.layers.iter().zip(&parallel.layers) {
        assert_eq!(
            c.cycles, p.cycles,
            "{}: layer {} cycles diverge between schedules",
            graph.name, c.name
        );
    }
    println!("parallel sweep ({threads} threads): per-layer cycles identical to chained schedule");
    chained
}

fn main() {
    let cli = parse_cli();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cfg = GpuConfig::titan_v();

    let nets: Vec<Graph> = if smoke {
        vec![models::tiny(SEED)]
    } else {
        vec![models::lenet(SEED), models::mlp(SEED)]
    };
    println!(
        "nn_inference: {} on simulated Titan V (seed {SEED})",
        nets.iter()
            .map(|g| g.name.as_str())
            .collect::<Vec<_>>()
            .join(" + ")
    );

    let mut json_reports = Vec::new();
    for net in &nets {
        let input = models::input_for(net, SEED);
        let report = run_net(net, &input, &cfg, cli.threads);
        json_reports.push(report.to_json());
    }
    if let Some(path) = &cli.json {
        let json = json_array(&json_reports);
        tcsim_trace::validate_json(&json).expect("report JSON must validate");
        write_results(path, &json);
    }
    println!("\nall layers within tolerance of the f32 reference");
}
