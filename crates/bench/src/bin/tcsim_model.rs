//! Estimator-vs-simulator correlation sweep and tile-search cross-check.
//!
//! Runs every committed fuzz-corpus case plus the fig17 GEMM families
//! (sgemm / hgemm / wmma_shared at 64–320 square) through both the
//! cycle-level simulator and the `tcsim-model` analytical estimator,
//! reports Pearson correlations (raw and log10 cycles, overall and per
//! family), and cross-checks the closed-form tile search against the
//! simulator's cycle ranking of the Simple/Shared/Cutlass plans.
//!
//! ```text
//! tcsim-model [--threads N] [--json PATH] [--min-corr X]
//! ```
//!
//! Exits non-zero when the overall log10 correlation falls below
//! `--min-corr` (default 0.9, the CI gate) or the tile search disagrees
//! with the simulator on every size. The JSON report is byte-identical
//! run to run and across `--threads`; CI compares it against the
//! committed `results/BENCH_model_corr.json`.

use std::process::ExitCode;
use tcsim_bench::model_report::{build_report, render_json, ReportSpec};
use tcsim_bench::{print_table, write_results};

struct Args {
    threads: usize,
    json: Option<String>,
    min_corr: f64,
}

fn parse_args() -> Args {
    let mut out = Args {
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        json: None,
        min_corr: 0.9,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threads" => {
                out.threads = args
                    .next()
                    .expect("--threads requires a count")
                    .parse()
                    .expect("--threads must be a number");
            }
            "--json" => out.json = Some(args.next().expect("--json requires a path")),
            "--min-corr" => {
                out.min_corr = args
                    .next()
                    .expect("--min-corr requires a value")
                    .parse()
                    .expect("--min-corr must be a number");
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    out
}

fn main() -> ExitCode {
    let args = parse_args();
    let report = build_report(&ReportSpec::full(), args.threads);

    let rows: Vec<Vec<String>> = report
        .points
        .iter()
        .map(|p| {
            let ratio = p.est_cycles as f64 / p.sim_cycles.max(1) as f64;
            vec![
                p.name.clone(),
                p.family.to_string(),
                p.sim_cycles.to_string(),
                p.est_cycles.to_string(),
                format!("{ratio:.2}"),
                p.bound.to_string(),
            ]
        })
        .collect();
    print_table(
        "estimator vs simulator",
        &[
            "point",
            "family",
            "sim cycles",
            "est cycles",
            "est/sim",
            "bound",
        ],
        &rows,
    );

    let search_rows: Vec<Vec<String>> = report
        .search
        .iter()
        .map(|s| {
            vec![
                s.size.to_string(),
                s.modeled.join(" > "),
                s.simulated.join(" > "),
                if s.top_agrees() { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "tile search: modeled vs simulated ranking (best first)",
        &["size", "modeled", "simulated", "winner agrees"],
        &search_rows,
    );

    println!();
    for (family, corr) in &report.families {
        println!("pearson(log10) {family:<12} {corr:.4}");
    }
    println!("pearson(log10) {:<12} {:.4}", "overall", report.pearson_log);
    println!("pearson(raw)   {:<12} {:.4}", "overall", report.pearson_raw);
    println!(
        "tile-search winner agreement: {:.2}",
        report.search_agreement()
    );

    if let Some(path) = &args.json {
        write_results(path, &render_json(&report));
    }

    let mut ok = true;
    if report.pearson_log < args.min_corr {
        eprintln!(
            "tcsim-model: FAIL log10 correlation {:.4} < required {:.4}",
            report.pearson_log, args.min_corr
        );
        ok = false;
    }
    if report.search_agreement() == 0.0 {
        eprintln!("tcsim-model: FAIL tile search never agrees with the simulator");
        ok = false;
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
