//! Fig 14c — CUTLASS-based GEMM kernel performance as matrix size varies
//! (sim vs surrogate hardware IPC). The paper notes GPGPU-Sim "tends to
//! have higher performance versus hardware as matrix size increases".

use tcsim_bench::{
    fnum, gemm_sweep, json_array, parse_cli, print_table, write_results, FIG14C_SIZES,
};
use tcsim_cutlass::{CutlassConfig, GemmKernel, GemmProblem};
use tcsim_hw::{HwModel, KernelClass};
use tcsim_sim::{GpuConfig, JsonWriter};

fn main() {
    let cli = parse_cli();
    println!(
        "Fig 14c: CUTLASS GEMM scaling (IPC vs matrix size, {} threads)",
        cli.threads
    );
    let hw = HwModel::titan_v();
    // Large-tile configuration (CUTLASS uses 128×128 CTA tiles at these
    // sizes to keep DRAM traffic low enough for the tensor cores).
    let kernel = GemmKernel::Cutlass(CutlassConfig {
        cta_m: 128,
        cta_n: 128,
        warp_m: 64,
        warp_n: 32,
        stages: 2,
    });
    let points: Vec<(GemmProblem, GemmKernel)> = FIG14C_SIZES
        .iter()
        .map(|&size| (GemmProblem::square(size), kernel))
        .collect();
    let runs = gemm_sweep(&GpuConfig::titan_v(), &points, false, cli.threads);

    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    let mut json_rows = Vec::new();
    for (&size, run) in FIG14C_SIZES.iter().zip(&runs) {
        let hw_cycles = hw.gemm_cycles(size, size, size, KernelClass::CutlassTc);
        let hw_ipc = run.stats.instructions as f64 / hw_cycles;
        let sim_ipc = run.stats.ipc();
        ratios.push(sim_ipc / hw_ipc);
        rows.push(vec![
            size.to_string(),
            fnum(hw_cycles / 1000.0, 0),
            fnum(run.stats.cycles as f64 / 1000.0, 0),
            fnum(hw_ipc, 1),
            fnum(sim_ipc, 1),
            fnum(sim_ipc / hw_ipc, 2),
        ]);
        let mut w = JsonWriter::object();
        w.field_u64("size", size as u64);
        w.field_f64("hw_cycles", hw_cycles);
        w.field_f64("hw_ipc", hw_ipc);
        w.raw_field("sim", &run.stats.to_json());
        json_rows.push(w.finish());
    }
    if let Some(path) = &cli.json {
        write_results(path, &json_array(&json_rows));
    }
    print_table(
        "CUTLASS 128x128 double-buffered kernel",
        &[
            "size",
            "hw kcycles",
            "sim kcycles",
            "hw IPC",
            "sim IPC",
            "sim/hw",
        ],
        &rows,
    );
    println!(
        "\nsim/hw IPC ratio at 128: {:.2}, at 2048: {:.2} (paper: simulator optimistic at large sizes)",
        ratios[0],
        ratios.last().expect("non-empty")
    );
}
