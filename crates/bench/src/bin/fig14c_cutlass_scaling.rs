//! Fig 14c — CUTLASS-based GEMM kernel performance as matrix size varies
//! (sim vs surrogate hardware IPC). The paper notes GPGPU-Sim "tends to
//! have higher performance versus hardware as matrix size increases".

use tcsim_bench::{fnum, gemm_on, print_table, FIG14C_SIZES};
use tcsim_cutlass::{CutlassConfig, GemmKernel, GemmProblem};
use tcsim_hw::{HwModel, KernelClass};
use tcsim_sim::GpuConfig;

fn main() {
    println!("Fig 14c: CUTLASS GEMM scaling (IPC vs matrix size)");
    let hw = HwModel::titan_v();
    // Large-tile configuration (CUTLASS uses 128×128 CTA tiles at these
    // sizes to keep DRAM traffic low enough for the tensor cores).
    let kernel = GemmKernel::Cutlass(CutlassConfig {
        cta_m: 128,
        cta_n: 128,
        warp_m: 64,
        warp_n: 32,
        stages: 2,
    });
    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    for &size in &FIG14C_SIZES {
        let run = gemm_on(GpuConfig::titan_v(), GemmProblem::square(size), kernel, false);
        let hw_cycles = hw.gemm_cycles(size, size, size, KernelClass::CutlassTc);
        let hw_ipc = run.stats.instructions as f64 / hw_cycles;
        let sim_ipc = run.stats.ipc();
        ratios.push(sim_ipc / hw_ipc);
        rows.push(vec![
            size.to_string(),
            fnum(hw_cycles / 1000.0, 0),
            fnum(run.stats.cycles as f64 / 1000.0, 0),
            fnum(hw_ipc, 1),
            fnum(sim_ipc, 1),
            fnum(sim_ipc / hw_ipc, 2),
        ]);
    }
    print_table(
        "CUTLASS 128x128 double-buffered kernel",
        &["size", "hw kcycles", "sim kcycles", "hw IPC", "sim IPC", "sim/hw"],
        &rows,
    );
    println!(
        "\nsim/hw IPC ratio at 128: {:.2}, at 2048: {:.2} (paper: simulator optimistic at large sizes)",
        ratios[0],
        ratios.last().expect("non-empty")
    );
}
