//! Fig 8 — distribution of operand matrix elements to threads for tensor
//! cores in the RTX 2080 (Turing): single-loaded, line-per-threadgroup
//! mappings for every mode and tile size.

use tcsim_bench::print_table;
use tcsim_core::{threadgroup_of_lane, FragmentMap};
use tcsim_isa::{FragmentKind, Layout, WmmaShape, WmmaType};

fn line_assignment(shape: WmmaShape, frag: FragmentKind, ty: WmmaType) {
    let map = FragmentMap::turing(frag, shape, ty, Layout::Row);
    let (rows, cols) = frag.dims(shape);
    let line_is_row = frag != FragmentKind::B;
    let lines = if line_is_row { rows } else { cols };
    let mut out = Vec::new();
    for line in 0..lines {
        let (r, c) = if line_is_row { (line, 0) } else { (0, line) };
        let owners = map.owners(r as u8, c as u8);
        let tg = threadgroup_of_lane(owners[0].0);
        out.push(vec![
            format!("{} {line}", if line_is_row { "row" } else { "col" }),
            format!("TG{tg}"),
        ]);
    }
    print_table(
        &format!("{shape} {frag:?} ({ty}) — line ownership (single-loaded)"),
        &["line", "threadgroup"],
        &out,
    );
}

fn main() {
    println!("Fig 8: Turing (RTX 2080) operand element → thread mapping");
    println!("Each element loaded ONCE; consecutive threadgroups take consecutive");
    println!("rows/columns for all modes and tile sizes (§III-B2).");

    line_assignment(WmmaShape::M16N16K16, FragmentKind::A, WmmaType::F16);
    line_assignment(WmmaShape::M16N16K16, FragmentKind::B, WmmaType::F16);
    line_assignment(WmmaShape::M32N8K16, FragmentKind::B, WmmaType::F16);
    line_assignment(WmmaShape::M8N8K32, FragmentKind::A, WmmaType::S4);

    // Full validation sweep over all Turing modes/configurations.
    let cases: [(WmmaShape, WmmaType, WmmaType); 7] = [
        (WmmaShape::M16N16K16, WmmaType::F16, WmmaType::F32),
        (WmmaShape::M16N16K16, WmmaType::S8, WmmaType::S32),
        (WmmaShape::M32N8K16, WmmaType::F16, WmmaType::F16),
        (WmmaShape::M32N8K16, WmmaType::U8, WmmaType::S32),
        (WmmaShape::M8N32K16, WmmaType::F16, WmmaType::F32),
        (WmmaShape::M8N32K16, WmmaType::S8, WmmaType::S32),
        (WmmaShape::M8N8K32, WmmaType::S4, WmmaType::S32),
    ];
    let mut rows = Vec::new();
    for (shape, abty, cty) in cases {
        for (frag, ty) in [
            (FragmentKind::A, abty),
            (FragmentKind::B, abty),
            (FragmentKind::C, cty),
        ] {
            let map = FragmentMap::turing(frag, shape, ty, Layout::Row);
            let owners = map.validate();
            let acc = map.lane_accesses(0, frag.dims(shape).1);
            rows.push(vec![
                shape.to_string(),
                format!("{frag:?}"),
                ty.to_string(),
                owners.to_string(),
                map.elems_per_thread().to_string(),
                acc.len().to_string(),
            ]);
        }
    }
    print_table(
        "All Turing modes: owners per element, fragment sizes, loads per thread",
        &[
            "shape",
            "matrix",
            "type",
            "owners",
            "elems/thread",
            "loads/thread",
        ],
        &rows,
    );
}
