//! Table II / Fig 12a — octet composition and the elements of the
//! operand matrices accessed by each octet on Volta.

use tcsim_bench::print_table;
use tcsim_core::octet::derive_footprint;
use tcsim_core::{octet_footprints, octet_of_lane};
use tcsim_isa::{FragmentKind, WARP_SIZE};

fn main() {
    println!("Table II: octet composition and elements accessed (Volta, m16n16k16)");
    println!("octet X = threadgroup X ∪ threadgroup X+4 (§III-E)");

    let mut rows = Vec::new();
    for fp in octet_footprints() {
        // Cross-check Table II against the Fig 7 mapping.
        let a = derive_footprint(FragmentKind::A, fp.octet);
        let b = derive_footprint(FragmentKind::B, fp.octet);
        let c = derive_footprint(FragmentKind::C, fp.octet);
        assert_eq!(a, fp.a, "octet {} A footprint", fp.octet);
        assert_eq!(b, fp.b, "octet {} B footprint", fp.octet);
        assert_eq!(c, fp.c, "octet {} C footprint", fp.octet);
        rows.push(vec![
            fp.octet.to_string(),
            format!("{} and {}", fp.threadgroups.0, fp.threadgroups.1),
            fp.a.to_string(),
            fp.b.to_string(),
            fp.c.to_string(),
        ]);
    }
    print_table(
        "Octet footprints (paper values; asserted equal to the Fig 7 mapping)",
        &[
            "octet",
            "threadgroups",
            "matrix A",
            "matrix B",
            "result C/D",
        ],
        &rows,
    );

    // Lane → octet map.
    let mut rows = Vec::new();
    for octet in 0..4 {
        let lanes: Vec<String> = (0..WARP_SIZE)
            .filter(|&l| octet_of_lane(l) == octet)
            .map(|l| l.to_string())
            .collect();
        rows.push(vec![octet.to_string(), lanes.join(",")]);
    }
    print_table("Lanes of each octet", &["octet", "lanes"], &rows);

    println!("\nEach octet privately holds an 8x16 of A, 16x8 of B and 8x8 of C,");
    println!("so the four octets execute independently (Fig 12a).");
}
