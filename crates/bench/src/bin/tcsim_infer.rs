//! Request-stream serving benchmark over the simulated encoder block.
//!
//! Drives `tcsim-infer`: a seeded open-loop Poisson request stream is
//! served under dynamic-batching policies, with every batch charged the
//! cycle cost of the transformer encoder block at that batch size as
//! simulated (and differentially checked) by `tcsim-nn`. Per run it
//! reports the latency distribution (p50/p90/p99, power-of-two
//! histogram — the Fig. 15 shape of the serving literature) and sweeps
//! the offered load for the throughput-vs-load curve (the Fig. 16
//! shape), plus KV-cache admission pressure and the per-batch block
//! costs actually simulated.
//!
//! Flags: `--json <path>` (machine-readable report), `--smoke` (small
//! fixed workload — the CI golden), `--seed <n>`, `--requests <n>`,
//! `--rates <r1,r2,...>` (requests per Mcycle), `--policy
//! static|continuous|both`, `--max-batch <n>`, `--window <cycles>`,
//! `--kv-seqs <n>` (KV capacity in sequences, 0 = unbounded).

use tcsim_bench::{fnum, print_table, write_results};
use tcsim_infer::{rate_sweep, CostModel, KvCache, Policy, ServingReport};
use tcsim_sim::{GpuConfig, JsonWriter};

struct Args {
    json: Option<String>,
    smoke: bool,
    seed: u64,
    requests: usize,
    rates: Vec<f64>,
    policy: String,
    max_batch: usize,
    window: u64,
    kv_seqs: u64,
}

fn parse_args() -> Args {
    let mut out = Args {
        json: None,
        smoke: false,
        seed: 1,
        requests: 200,
        // The mini-GPU encoder block sustains roughly 50-65 requests per
        // Mcycle depending on achieved batch size; the sweep straddles
        // that knee so the throughput-vs-load curve shows both the
        // linear regime and saturation.
        rates: vec![10.0, 20.0, 40.0, 80.0, 160.0, 320.0],
        policy: "both".into(),
        max_batch: 4,
        window: 1500,
        kv_seqs: 12,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} requires a value"))
        };
        match a.as_str() {
            "--json" => out.json = Some(val("--json")),
            "--smoke" => out.smoke = true,
            "--seed" => out.seed = val("--seed").parse().expect("--seed: integer"),
            "--requests" => out.requests = val("--requests").parse().expect("--requests: integer"),
            "--rates" => {
                out.rates = val("--rates")
                    .split(',')
                    .map(|r| r.trim().parse().expect("--rates: comma-separated floats"))
                    .collect();
            }
            "--policy" => out.policy = val("--policy"),
            "--max-batch" => {
                out.max_batch = val("--max-batch").parse().expect("--max-batch: integer");
            }
            "--window" => out.window = val("--window").parse().expect("--window: integer"),
            "--kv-seqs" => out.kv_seqs = val("--kv-seqs").parse().expect("--kv-seqs: integer"),
            other => panic!("unknown flag {other}"),
        }
    }
    if out.smoke {
        // The CI golden: small, fixed, fast. Overrides any tuning flags
        // so the artifact is always comparable.
        out.seed = 1;
        out.requests = 48;
        out.rates = vec![20.0, 240.0]; // one under-loaded, one saturated
        out.policy = "both".into();
        out.max_batch = 4;
        out.window = 1500;
        out.kv_seqs = 6;
    }
    out
}

fn policies(args: &Args) -> Vec<Policy> {
    let stat = Policy::Static {
        max_batch: args.max_batch,
        window_cycles: args.window,
    };
    let cont = Policy::Continuous {
        max_batch: args.max_batch,
    };
    match args.policy.as_str() {
        "static" => vec![stat],
        "continuous" => vec![cont],
        "both" => vec![stat, cont],
        other => panic!("--policy must be static|continuous|both, got {other}"),
    }
}

fn run_table(runs: &[ServingReport]) {
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.policy.clone(),
                fnum(r.rate_per_mcycle, 0),
                r.completed().to_string(),
                r.rejected.to_string(),
                r.percentile(50.0).to_string(),
                r.percentile(99.0).to_string(),
                fnum(r.mean_batch(), 2),
                fnum(r.throughput_per_mcycle(), 1),
                r.kv_peak_bytes.to_string(),
            ]
        })
        .collect();
    print_table(
        "serving runs",
        &[
            "policy",
            "req/Mcyc",
            "done",
            "rej",
            "p50 cyc",
            "p99 cyc",
            "batch",
            "tput/Mcyc",
            "kv peak B",
        ],
        &rows,
    );
}

fn main() {
    let args = parse_args();
    let cfg = GpuConfig::mini();
    let kv = if args.kv_seqs == 0 {
        KvCache::unbounded()
    } else {
        KvCache::for_encoder(args.kv_seqs)
    };
    let mut cost = CostModel::new(cfg, args.seed);

    println!(
        "tcsim-infer: encoder serving on simulated mini GPU (seed {}, {} requests/run, \
         max batch {}, window {} cyc, kv {} B/seq cap {})",
        args.seed,
        args.requests,
        args.max_batch,
        args.window,
        kv.bytes_per_seq,
        if kv.capacity_bytes == u64::MAX {
            "unbounded".into()
        } else {
            kv.capacity_bytes.to_string()
        },
    );

    let mut runs: Vec<ServingReport> = Vec::new();
    for policy in policies(&args) {
        runs.extend(rate_sweep(
            &mut cost,
            args.seed,
            args.requests,
            &args.rates,
            &policy,
            &kv,
        ));
    }
    run_table(&runs);

    // The block costs the serving loop actually charged. Every distinct
    // batch size was simulated exactly once; everything else hit the
    // content-hash cache.
    let mut batches: Vec<usize> = runs
        .iter()
        .flat_map(|r| r.batch_sizes.iter().copied())
        .collect();
    batches.sort_unstable();
    batches.dedup();
    let cost_rows: Vec<Vec<String>> = batches
        .iter()
        .map(|&b| {
            let c = cost.block_cost(b);
            vec![
                b.to_string(),
                c.cycles.to_string(),
                c.instructions.to_string(),
            ]
        })
        .collect();
    print_table(
        "block costs (one simulation per batch size)",
        &["batch", "cycles", "instructions"],
        &cost_rows,
    );
    println!(
        "{} serving runs costed by {} block simulations ({} distinct shapes)",
        runs.len(),
        cost.sim_invocations(),
        cost.distinct_shapes()
    );
    assert_eq!(
        cost.sim_invocations() as usize,
        cost.distinct_shapes(),
        "every simulation must correspond to a distinct memoized shape"
    );

    if let Some(path) = &args.json {
        let mut w = JsonWriter::object();
        w.field_str("schema", "tcsim-infer-v1");
        w.field_str("config", "mini");
        w.field_str("model", "encoder");
        w.field_u64("seed", args.seed);
        w.field_u64("requests", args.requests as u64);
        let costs: Vec<String> = batches
            .iter()
            .map(|&b| {
                let c = cost.block_cost(b);
                let mut cw = JsonWriter::object();
                cw.field_u64("batch", b as u64);
                cw.field_u64("cycles", c.cycles);
                cw.field_u64("instructions", c.instructions);
                cw.field_str("key", &cost.shape_key(b));
                cw.finish()
            })
            .collect();
        w.raw_field("block_costs", &format!("[{}]", costs.join(",")));
        w.field_u64("sim_invocations", cost.sim_invocations());
        let run_json: Vec<String> = runs.iter().map(|r| r.to_json()).collect();
        w.raw_field("runs", &format!("[{}]", run_json.join(",")));
        let json = w.finish();
        tcsim_trace::validate_json(&json).expect("report JSON must validate");
        write_results(path, &json);
    }
}
