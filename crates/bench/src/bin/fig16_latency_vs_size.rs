//! Fig 16 — median `wmma.load` / `wmma.mma` / `wmma.store` latency versus
//! matrix size, with and without shared-memory operand staging.
//!
//! The paper's headline: staging operands in shared memory reduces median
//! `wmma.load` latency by more than 100× on large matrices (its load plot
//! uses a log axis). Here both kernel variants run on the simulator with
//! WMMA profiling enabled.

use tcsim_bench::{fnum, print_table, FIG16_SIZES};
use tcsim_cutlass::{run_gemm, GemmKernel, GemmProblem};
use tcsim_sim::{Distribution, Gpu, GpuConfig, SimOptions};
use tcsim_sm::WmmaKind;

fn medians(size: usize, kernel: GemmKernel) -> (u64, u64, u64) {
    let mut gpu = Gpu::new(SimOptions::new(GpuConfig::titan_v()).profile_wmma(true));
    let run = run_gemm(&mut gpu, GemmProblem::square(size), kernel, false);
    let med = |kind| {
        Distribution::of(&run.stats.wmma_latencies(kind))
            .map(|d| d.median)
            .unwrap_or(0)
    };
    (
        med(WmmaKind::Load),
        med(WmmaKind::Mma),
        med(WmmaKind::Store),
    )
}

fn main() {
    let max_size = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2048usize);
    println!("Fig 16: median wmma latencies vs matrix size (with vs without shared memory)");

    let mut rows = Vec::new();
    let mut last_ratio = 0.0;
    for &size in FIG16_SIZES.iter().filter(|&&s| s <= max_size) {
        let (l_g, m_g, s_g) = medians(size, GemmKernel::WmmaSimple);
        let (l_s, m_s, s_s) = medians(size, GemmKernel::WmmaShared);
        last_ratio = l_g as f64 / l_s.max(1) as f64;
        rows.push(vec![
            size.to_string(),
            l_g.to_string(),
            l_s.to_string(),
            fnum(last_ratio, 1),
            m_g.to_string(),
            m_s.to_string(),
            s_g.to_string(),
            s_s.to_string(),
        ]);
    }
    print_table(
        "Median latencies (cycles); w/o = global operands, w/ = shared staging",
        &[
            "size",
            "load w/o",
            "load w/",
            "load ratio",
            "mma w/o",
            "mma w/",
            "store w/o",
            "store w/",
        ],
        &rows,
    );

    println!("\nwmma.load latency ratio (global / shared) at the largest size: {last_ratio:.0}x");
    println!("Paper: shared memory reduces median load latency by >100x on large");
    println!("matrices (the global-path latency explodes with contention while the");
    println!("shared path stays flat).");
    assert!(last_ratio > 3.0, "shared staging must win decisively");
}
