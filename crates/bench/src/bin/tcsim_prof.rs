//! `tcsim-prof` — cycle-level trace profiler for the simulator.
//!
//! Runs a WMMA GEMM (64×64×64 by default) with a [`RingTracer`]
//! installed and emits:
//!
//! * a Chrome `trace_event` JSON file (`--out`, default
//!   `results/prof_gemm64.trace.json`) loadable in `chrome://tracing`
//!   and Perfetto — one track per SM sub-core and tensor-core octet;
//! * the plain-text Fig 10-style HMMA step-cadence timeline;
//! * the trace-derived metrics: stall-reason breakdown, per-interval
//!   IPC and tensor-pipe occupancy.
//!
//! `--overhead-guard` instead runs the same GEMM twice — untraced
//! (NullTracer, the default) and traced — and asserts the timing model
//! is byte-identical in both, i.e. observation never perturbs the
//! simulation. CI runs both modes (`scripts/ci.sh`).

use tcsim_bench::{fnum, print_table};
use tcsim_cutlass::{run_gemm, GemmKernel, GemmProblem};
use tcsim_sim::{Gpu, GpuConfig, SimOptions};
use tcsim_trace::{
    chrome_trace, hmma_step_timeline, interval_ipc, validate_json, EventKind, RingTracer,
    TraceSummary,
};

struct ProfArgs {
    out: String,
    size: usize,
    overhead_guard: bool,
}

fn parse_args() -> ProfArgs {
    let mut out = ProfArgs {
        out: String::from("results/prof_gemm64.trace.json"),
        size: 64,
        overhead_guard: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out.out = args.next().expect("--out requires a path"),
            "--size" => {
                out.size = args
                    .next()
                    .expect("--size requires a value")
                    .parse()
                    .expect("--size must be a number");
            }
            "--overhead-guard" => out.overhead_guard = true,
            _ => {}
        }
    }
    out
}

fn main() {
    let args = parse_args();
    let problem = GemmProblem::square(args.size);
    let kernel = GemmKernel::WmmaShared;

    if args.overhead_guard {
        overhead_guard(problem, kernel);
        return;
    }

    println!(
        "tcsim-prof: tracing a {}x{}x{} WMMA GEMM (shared-memory kernel, Titan V config)",
        problem.m, problem.n, problem.k
    );
    let mut gpu =
        Gpu::new(SimOptions::new(GpuConfig::titan_v()).tracer(RingTracer::with_capacity(1 << 21)));
    let run = run_gemm(&mut gpu, problem, kernel, true);
    let events = gpu.trace_events();
    let dropped = gpu.tracer().dropped();

    let hmma_events = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::HmmaStep { .. }))
        .count();
    assert!(
        hmma_events > 0,
        "a WMMA GEMM must emit HMMA set/step events"
    );

    // Chrome trace_event export, validated before it is written.
    let chrome = chrome_trace(&events);
    validate_json(&chrome).expect("chrome trace must be valid JSON");
    if let Some(dir) = std::path::Path::new(&args.out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&args.out, &chrome).expect("write trace file");
    println!(
        "wrote {} ({} events, {} HMMA steps, {} dropped) — open in chrome://tracing or Perfetto",
        args.out,
        events.len(),
        hmma_events,
        dropped
    );

    // Fig 10-style step cadence of the first traced warp.
    println!("\n{}", hmma_step_timeline(&events, 72));

    // Derived metrics.
    let summary = TraceSummary::from_events(&events, dropped);
    let mut rows = Vec::new();
    for (name, count, cycles) in summary.stall_table() {
        rows.push(vec![
            name.to_string(),
            count.to_string(),
            cycles.to_string(),
        ]);
    }
    print_table(
        "Stall breakdown",
        &["reason", "events", "stall cycles"],
        &rows,
    );
    println!(
        "\nlaunch: {} cycles, {} instructions, IPC {}",
        run.stats.cycles,
        run.stats.instructions,
        fnum(run.stats.ipc(), 2)
    );
    println!(
        "trace window: cycles {}..{}, trace IPC {}, tensor-pipe occupancy {}%",
        summary.first_cycle,
        summary.last_cycle,
        fnum(summary.ipc(), 2),
        fnum(summary.hmma_occupancy() * 100.0, 1)
    );
    let intervals = interval_ipc(&events, 512);
    let peak = intervals.iter().map(|i| i.ipc).fold(0.0f64, f64::max);
    println!(
        "per-interval IPC (512-cycle windows): {} intervals, peak {}",
        intervals.len(),
        fnum(peak, 2)
    );
    if let Some(trace) = &run.stats.trace {
        assert_eq!(trace, &summary, "LaunchStats must carry the same summary");
    } else {
        panic!("tracer installed but LaunchStats.trace is None");
    }
    if let Some(err) = run.max_abs_err {
        println!("verification: max |err| = {err}");
    }
}

/// Runs the same problem untraced and traced; the timing model must not
/// notice the observer.
fn overhead_guard(problem: GemmProblem, kernel: GemmKernel) {
    use std::time::Instant;
    println!(
        "tcsim-prof --overhead-guard: {}x{}x{} GEMM untraced vs traced",
        problem.m, problem.n, problem.k
    );
    let t0 = Instant::now();
    let mut gpu_null = Gpu::new(GpuConfig::titan_v());
    let base = run_gemm(&mut gpu_null, problem, kernel, false);
    let untraced = t0.elapsed();

    let t1 = Instant::now();
    let mut gpu_ring =
        Gpu::new(SimOptions::new(GpuConfig::titan_v()).tracer(RingTracer::with_capacity(1 << 21)));
    let traced = run_gemm(&mut gpu_ring, problem, kernel, false);
    let traced_wall = t1.elapsed();

    // Strip the trace summary (present only on the traced run) and
    // compare everything else exactly.
    let mut a = base.stats.clone();
    let mut b = traced.stats.clone();
    a.trace = None;
    b.trace = None;
    assert_eq!(a, b, "tracing must not change simulation results");
    assert!(
        b.to_json() == a.to_json(),
        "stripped stats serialize identically"
    );
    println!(
        "identical LaunchStats ({} cycles); wall: untraced {:.1} ms, traced {:.1} ms",
        a.cycles,
        untraced.as_secs_f64() * 1e3,
        traced_wall.as_secs_f64() * 1e3
    );
    println!("overhead guard passed");
}
