//! Shared support for the experiment binaries that regenerate every table
//! and figure of the paper (see `DESIGN.md` §2 for the index, and
//! `EXPERIMENTS.md` for recorded paper-vs-measured results).

#![forbid(unsafe_code)]

use tcsim_cutlass::{run_gemm, GemmKernel, GemmProblem, GemmRun};
use tcsim_sim::{Gpu, GpuConfig, Sweep};

// The deterministic xorshift64* generator the benchmark binaries use for
// input data lived here historically; it is now the workspace-wide
// canonical PRNG in `tcsim_check::rng` (bit-compatible, so every
// committed golden result is unchanged). Re-exported under its old path.
pub use tcsim_check::rng::XorShift64Star;

pub mod model_report;

/// A minimal microbenchmark harness (replaces criterion, which cannot be
/// fetched offline): calibrates an iteration count to roughly
/// `budget_ms`, runs batches and reports best/median ns-per-iteration.
///
/// Results from `black_box`-style sinks are consumed via the return
/// value, so the measured closure must return its result.
pub fn bench_case<T>(name: &str, budget_ms: u64, mut f: impl FnMut() -> T) {
    use std::time::Instant;
    // Calibrate: double the batch size until one batch takes ≥ 1 ms.
    let mut batch = 1u64;
    loop {
        let t0 = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        let dt = t0.elapsed();
        if dt.as_micros() >= 1000 || batch >= 1 << 24 {
            break;
        }
        batch *= 2;
    }
    // Measure: as many batches as fit the budget (at least 3).
    let mut samples = Vec::new();
    let deadline = Instant::now() + std::time::Duration::from_millis(budget_ms);
    while samples.len() < 3 || (Instant::now() < deadline && samples.len() < 100) {
        let t0 = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        samples.push(t0.elapsed().as_nanos() as f64 / batch as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    let best = samples[0];
    let median = samples[samples.len() / 2];
    println!(
        "{name:<32} {median:>12.1} ns/iter (best {best:>12.1}, {} x{batch})",
        samples.len()
    );
}

/// Prints an aligned plain-text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>width$}  ", c, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Formats a float with limited precision for table cells.
pub fn fnum(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Runs one GEMM on a fresh GPU of `cfg` and returns the run record.
pub fn gemm_on(cfg: GpuConfig, problem: GemmProblem, kernel: GemmKernel, check: bool) -> GemmRun {
    let mut gpu = Gpu::new(cfg);
    run_gemm(&mut gpu, problem, kernel, check)
}

/// Runs a batch of GEMM points through the parallel sweep engine and
/// returns the runs in submission order (identical to calling [`gemm_on`]
/// per point — see the determinism contract of [`tcsim_sim::Sweep`]).
///
/// Jobs are weighted by `m·n·k` so the scheduler starts the heaviest
/// problems first; with skewed size sweeps (Fig 14/17) this is what makes
/// the wall-clock approach `total_work / max_size` instead of serializing
/// behind the largest point. `threads == 1` runs serially.
pub fn gemm_sweep(
    cfg: &GpuConfig,
    points: &[(GemmProblem, GemmKernel)],
    check: bool,
    threads: usize,
) -> Vec<GemmRun> {
    let mut sweep = Sweep::new();
    for &(problem, kernel) in points {
        let weight = (problem.m as u64) * (problem.n as u64) * (problem.k as u64);
        sweep.add_weighted(cfg.clone(), weight, move |gpu| {
            run_gemm(gpu, problem, kernel, check)
        });
    }
    let outcome = if threads <= 1 {
        sweep.run_serial()
    } else {
        sweep.run_parallel(threads)
    };
    outcome.results
}

/// Command-line options shared by the figure/table binaries.
#[derive(Clone, Debug, Default)]
pub struct CliArgs {
    /// `--json <path>`: also write machine-readable results there.
    pub json: Option<String>,
    /// `--threads <n>`: worker threads for sweep-based binaries
    /// (default: the machine's available parallelism).
    pub threads: usize,
}

/// Parses `--json <path>` and `--threads <n>` from `std::env::args`,
/// ignoring unknown arguments (binaries stay driveable from scripts that
/// pass extra flags).
///
/// # Panics
///
/// Panics if a recognized flag is missing its value or `--threads` is not
/// a number.
pub fn parse_cli() -> CliArgs {
    let mut out = CliArgs {
        json: None,
        threads: default_threads(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => {
                out.json = Some(args.next().expect("--json requires a path"));
            }
            "--threads" => {
                out.threads = args
                    .next()
                    .expect("--threads requires a count")
                    .parse()
                    .expect("--threads must be a number");
            }
            _ => {}
        }
    }
    out
}

/// The machine's available parallelism (1 if it cannot be determined).
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Wraps pre-serialized JSON values into an array.
pub fn json_array(items: &[String]) -> String {
    format!("[{}]", items.join(","))
}

/// Writes `content` to `path`, creating parent directories (the binaries
/// default to `results/*.json`), and prints the destination.
pub fn write_results(path: &str, content: &str) {
    let p = std::path::Path::new(path);
    if let Some(dir) = p.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results directory");
        }
    }
    std::fs::write(p, content).expect("write results file");
    println!("wrote {path}");
}

/// Renders a multi-series chart as ASCII art: one column per x position,
/// one letter per series, optionally log-scaled on y. Collisions print
/// `*`.
pub fn ascii_chart(
    title: &str,
    x_labels: &[String],
    series: &[(&str, Vec<f64>)],
    log_y: bool,
    height: usize,
) {
    println!("\n-- {title} --");
    let xform = |v: f64| if log_y { v.max(1e-12).log10() } else { v };
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (_, ys) in series {
        for &y in ys {
            let t = xform(y);
            lo = lo.min(t);
            hi = hi.max(t);
        }
    }
    if !lo.is_finite() || hi <= lo {
        hi = lo + 1.0;
    }
    let col_w = x_labels.iter().map(|l| l.len()).max().unwrap_or(4).max(4) + 1;
    let rows = height.max(4);
    let mut grid = vec![vec![' '; x_labels.len() * col_w]; rows];
    for (si, (label, ys)) in series.iter().enumerate() {
        let mark = label.chars().next().unwrap_or('?');
        let _ = si;
        for (xi, &y) in ys.iter().enumerate() {
            let t = (xform(y) - lo) / (hi - lo);
            let r = rows - 1 - ((t * (rows - 1) as f64).round() as usize).min(rows - 1);
            let c = xi * col_w + col_w / 2;
            grid[r][c] = if grid[r][c] == ' ' || grid[r][c] == mark {
                mark
            } else {
                '*'
            };
        }
    }
    let unlog = |t: f64| if log_y { 10f64.powf(t) } else { t };
    for (ri, row) in grid.iter().enumerate() {
        let frac = 1.0 - ri as f64 / (rows - 1) as f64;
        let yval = unlog(lo + frac * (hi - lo));
        let line: String = row.iter().collect();
        println!("{:>10.3e} |{}", yval, line.trim_end());
    }
    let mut xaxis = String::new();
    for l in x_labels {
        xaxis.push_str(&format!("{:<width$}", l, width = col_w));
    }
    println!("{:>10} +{}", "", "-".repeat(x_labels.len() * col_w));
    println!("{:>10}  {}", "", xaxis.trim_end());
    let legend: Vec<String> = series
        .iter()
        .map(|(l, _)| format!("{} = {}", l.chars().next().unwrap_or('?'), l))
        .collect();
    println!("{:>10}  [{}]", "", legend.join(", "));
}

/// The matrix sizes of Fig 14a.
pub const FIG14A_SIZES: [usize; 13] =
    [16, 32, 64, 128, 160, 192, 224, 256, 288, 320, 384, 480, 512];

/// The matrix sizes of Fig 14c.
pub const FIG14C_SIZES: [usize; 6] = [128, 256, 512, 768, 1024, 2048];

/// The matrix sizes of Fig 16.
pub const FIG16_SIZES: [usize; 6] = [64, 128, 256, 512, 1024, 2048];

/// The matrix sizes of Fig 17.
pub const FIG17_SIZES: [usize; 7] = [256, 512, 1024, 2048, 4096, 8192, 16384];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic_and_nondegenerate() {
        let mut r = XorShift64Star::new(7);
        let first: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        let mut r2 = XorShift64Star::new(7);
        let second: Vec<u64> = (0..8).map(|_| r2.next_u64()).collect();
        assert_eq!(first, second);
        // All distinct, none zero (period 2^64 - 1, zero never output
        // scaled by the odd multiplier only for the zero state).
        for w in first.windows(2) {
            assert_ne!(w[0], w[1]);
        }
        let mut r3 = XorShift64Star::new(0);
        assert_ne!(r3.next_u64(), 0, "zero seed must be remapped");
    }

    #[test]
    fn xorshift_bounds_respected() {
        let mut r = XorShift64Star::new(123);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
            let v = r.range_i64(-5, 6);
            assert!((-5..6).contains(&v));
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(1.23456, 2), "1.23");
        assert_eq!(fnum(10.0, 0), "10");
    }

    #[test]
    fn size_lists_match_paper_axes() {
        assert_eq!(FIG14A_SIZES.len(), 13);
        assert_eq!(FIG14A_SIZES[0], 16);
        assert_eq!(*FIG14A_SIZES.last().unwrap(), 512);
        assert_eq!(FIG14C_SIZES, [128, 256, 512, 768, 1024, 2048]);
        assert_eq!(*FIG17_SIZES.last().unwrap(), 16384);
    }
}

#[cfg(test)]
mod chart_tests {
    use super::*;

    #[test]
    fn ascii_chart_renders_without_panicking() {
        let x: Vec<String> = ["10", "100", "1000"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        ascii_chart(
            "test",
            &x,
            &[
                ("alpha", vec![1.0, 10.0, 100.0]),
                ("beta", vec![2.0, 2.0, 2.0]),
            ],
            true,
            6,
        );
        // Degenerate cases: constant series, linear scale.
        ascii_chart("flat", &x, &[("c", vec![5.0, 5.0, 5.0])], false, 4);
    }
}
