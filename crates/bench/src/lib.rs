//! Shared support for the experiment binaries that regenerate every table
//! and figure of the paper (see `DESIGN.md` §2 for the index, and
//! `EXPERIMENTS.md` for recorded paper-vs-measured results).

use tcsim_cutlass::{run_gemm, GemmKernel, GemmProblem, GemmRun};
use tcsim_sim::{Gpu, GpuConfig};

/// Prints an aligned plain-text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>width$}  ", c, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Formats a float with limited precision for table cells.
pub fn fnum(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Runs one GEMM on a fresh GPU of `cfg` and returns the run record.
pub fn gemm_on(cfg: GpuConfig, problem: GemmProblem, kernel: GemmKernel, check: bool) -> GemmRun {
    let mut gpu = Gpu::new(cfg);
    run_gemm(&mut gpu, problem, kernel, check)
}

/// Renders a multi-series chart as ASCII art: one column per x position,
/// one letter per series, optionally log-scaled on y. Collisions print
/// `*`.
pub fn ascii_chart(
    title: &str,
    x_labels: &[String],
    series: &[(&str, Vec<f64>)],
    log_y: bool,
    height: usize,
) {
    println!("\n-- {title} --");
    let xform = |v: f64| if log_y { v.max(1e-12).log10() } else { v };
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (_, ys) in series {
        for &y in ys {
            let t = xform(y);
            lo = lo.min(t);
            hi = hi.max(t);
        }
    }
    if !lo.is_finite() || hi <= lo {
        hi = lo + 1.0;
    }
    let col_w = x_labels.iter().map(|l| l.len()).max().unwrap_or(4).max(4) + 1;
    let rows = height.max(4);
    let mut grid = vec![vec![' '; x_labels.len() * col_w]; rows];
    for (si, (label, ys)) in series.iter().enumerate() {
        let mark = label.chars().next().unwrap_or('?');
        let _ = si;
        for (xi, &y) in ys.iter().enumerate() {
            let t = (xform(y) - lo) / (hi - lo);
            let r = rows - 1 - ((t * (rows - 1) as f64).round() as usize).min(rows - 1);
            let c = xi * col_w + col_w / 2;
            grid[r][c] = if grid[r][c] == ' ' || grid[r][c] == mark { mark } else { '*' };
        }
    }
    let unlog = |t: f64| if log_y { 10f64.powf(t) } else { t };
    for (ri, row) in grid.iter().enumerate() {
        let frac = 1.0 - ri as f64 / (rows - 1) as f64;
        let yval = unlog(lo + frac * (hi - lo));
        let line: String = row.iter().collect();
        println!("{:>10.3e} |{}", yval, line.trim_end());
    }
    let mut xaxis = String::new();
    for l in x_labels {
        xaxis.push_str(&format!("{:<width$}", l, width = col_w));
    }
    println!("{:>10} +{}", "", "-".repeat(x_labels.len() * col_w));
    println!("{:>10}  {}", "", xaxis.trim_end());
    let legend: Vec<String> = series
        .iter()
        .map(|(l, _)| format!("{} = {}", l.chars().next().unwrap_or('?'), l))
        .collect();
    println!("{:>10}  [{}]", "", legend.join(", "));
}

/// The matrix sizes of Fig 14a.
pub const FIG14A_SIZES: [usize; 13] = [16, 32, 64, 128, 160, 192, 224, 256, 288, 320, 384, 480, 512];

/// The matrix sizes of Fig 14c.
pub const FIG14C_SIZES: [usize; 6] = [128, 256, 512, 768, 1024, 2048];

/// The matrix sizes of Fig 16.
pub const FIG16_SIZES: [usize; 6] = [64, 128, 256, 512, 1024, 2048];

/// The matrix sizes of Fig 17.
pub const FIG17_SIZES: [usize; 7] = [256, 512, 1024, 2048, 4096, 8192, 16384];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(1.23456, 2), "1.23");
        assert_eq!(fnum(10.0, 0), "10");
    }

    #[test]
    fn size_lists_match_paper_axes() {
        assert_eq!(FIG14A_SIZES.len(), 13);
        assert_eq!(FIG14A_SIZES[0], 16);
        assert_eq!(*FIG14A_SIZES.last().unwrap(), 512);
        assert_eq!(FIG14C_SIZES, [128, 256, 512, 768, 1024, 2048]);
        assert_eq!(*FIG17_SIZES.last().unwrap(), 16384);
    }
}

#[cfg(test)]
mod chart_tests {
    use super::*;

    #[test]
    fn ascii_chart_renders_without_panicking() {
        let x: Vec<String> = ["10", "100", "1000"].iter().map(|s| s.to_string()).collect();
        ascii_chart(
            "test",
            &x,
            &[("alpha", vec![1.0, 10.0, 100.0]), ("beta", vec![2.0, 2.0, 2.0])],
            true,
            6,
        );
        // Degenerate cases: constant series, linear scale.
        ascii_chart("flat", &x, &[("c", vec![5.0, 5.0, 5.0])], false, 4);
    }
}
