//! Planted-defect mutators for the static analyzer canaries.
//!
//! Each [`VerifyMutation`] takes an assembled, *verifier-clean* kernel and
//! plants one specific defect class that `tcsim-verify` must flag with an
//! error — the static-analysis mirror of the FEDP rounding mutation the
//! differential oracle catches dynamically. A mutation that does not apply
//! to a particular kernel (no barrier to corrupt, no shared access to
//! widen, …) returns `None`; the canary driver in `tcsim-fuzz` skips to
//! the next seed.
//!
//! Mutations never renumber instructions: defects are planted by editing
//! an instruction in place (or redirecting a def to a fresh scratch
//! register), so branch targets and reconvergence indices stay valid and
//! every diagnostic index maps back into the unmutated kernel one-to-one.

use tcsim_isa::{
    Instr, Kernel, KernelBuilder, MemSpace, MemWidth, Op, Operand, PredReg, Reg, SpecialReg,
    WmmaDirective, WmmaShape,
};

/// The shared-slice index mask the generator emits (`v & 63`); the
/// shared-grow mutation widens it past the per-warp slice.
const SLICE_MASK: i64 = crate::gen::SHARED_SLICE_WORDS as i64 - 1;
/// The widened mask: large enough that the resulting byte range escapes
/// any per-warp slice and the CTA's whole allocation.
const GROWN_MASK: i64 = 4095;

/// One planted static defect class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerifyMutation {
    /// Guards a `bar.sync` with a thread-varying predicate: the barrier
    /// is no longer CTA-uniform (`barrier-divergence`).
    BarrierDrop,
    /// Redirects the only definition of some live register to a scratch
    /// register, leaving its later reads uninitialized (`uninit-reg`).
    UninitReg,
    /// Swaps the shape qualifier on a `wmma.load`, so the fragment no
    /// longer matches the consuming `wmma.mma` (`wmma-*`).
    FragShape,
    /// Grows the generator's shared-slice index mask so accesses escape
    /// the warp-private slice and the allocation (`shared-*`).
    SharedGrow,
    /// Prepends a shared-memory load whose per-lane byte stride maps
    /// several lanes onto the same bank — a performance defect the
    /// `shared-bank-conflict` lint must flag (`--perf` canary).
    BankStride,
    /// Prepends a global load with a 128-byte per-lane stride, scattering
    /// the warp across one sector per lane — a performance defect the
    /// `global-uncoalesced` lint must flag (`--perf` canary).
    Uncoalesce,
}

impl VerifyMutation {
    /// Every mutation, in canonical order.
    pub const ALL: [VerifyMutation; 6] = [
        VerifyMutation::BarrierDrop,
        VerifyMutation::UninitReg,
        VerifyMutation::FragShape,
        VerifyMutation::SharedGrow,
        VerifyMutation::BankStride,
        VerifyMutation::Uncoalesce,
    ];

    /// Command-line spelling (`--mutate <name>`).
    pub fn name(self) -> &'static str {
        match self {
            VerifyMutation::BarrierDrop => "barrier-drop",
            VerifyMutation::UninitReg => "uninit-reg",
            VerifyMutation::FragShape => "frag-shape",
            VerifyMutation::SharedGrow => "shared-grow",
            VerifyMutation::BankStride => "bank-stride",
            VerifyMutation::Uncoalesce => "uncoalesce",
        }
    }

    /// Whether this is a performance defect: flagged as a *warning* by
    /// the `tcsim_verify::perf` lints rather than an error by the
    /// correctness analyses. The canary driver checks the matching pass.
    pub fn is_perf(self) -> bool {
        matches!(
            self,
            VerifyMutation::BankStride | VerifyMutation::Uncoalesce
        )
    }

    /// Parses the command-line spelling.
    pub fn from_name(s: &str) -> Option<VerifyMutation> {
        VerifyMutation::ALL.into_iter().find(|m| m.name() == s)
    }

    /// Prefix of the diagnostic rules this defect must trip (e.g. the
    /// shape swap may surface as `wmma-frag`, `wmma-mode` or
    /// `wmma-regfile` depending on the kernel).
    pub fn expected_rule_prefix(self) -> &'static str {
        match self {
            VerifyMutation::BarrierDrop => "barrier-",
            VerifyMutation::UninitReg => "uninit-",
            VerifyMutation::FragShape => "wmma-",
            VerifyMutation::SharedGrow => "shared-",
            VerifyMutation::BankStride => "shared-bank-conflict",
            VerifyMutation::Uncoalesce => "global-uncoalesced",
        }
    }
}

/// A successfully planted defect: the mutated kernel plus the index of
/// the instruction that was edited.
#[derive(Clone, Debug)]
pub struct Mutated {
    /// The defective kernel.
    pub kernel: Kernel,
    /// Index of the mutated instruction in `Kernel::instrs()`.
    pub pc: usize,
}

/// Reassembles `k` with `instrs` substituted and `extra_regs` additional
/// scratch registers. Parameter layout, shared allocation and register
/// count are reproduced exactly, and instruction indices are preserved,
/// so pre-resolved branch targets stay valid.
fn rebuild(k: &Kernel, instrs: Vec<Instr>, extra_regs: u32) -> Kernel {
    let mut b = KernelBuilder::new(k.name());
    for p in k.params() {
        b.param(p.name.clone(), p.bytes);
    }
    if k.shared_bytes() > 0 {
        b.shared_alloc(k.shared_bytes());
    }
    for _ in 0..k.num_regs() + extra_regs {
        b.reg();
    }
    for i in instrs {
        b.emit(i);
    }
    b.build()
}

/// Applies `m` to `k`, or `None` when the kernel has no site for this
/// defect class. `volta` selects fragment register widths (must match the
/// geometry the verifier will analyze under).
pub fn apply(k: &Kernel, m: VerifyMutation, volta: bool) -> Option<Mutated> {
    match m {
        VerifyMutation::BarrierDrop => barrier_drop(k),
        VerifyMutation::UninitReg => uninit_reg(k, volta),
        VerifyMutation::FragShape => frag_shape(k),
        VerifyMutation::SharedGrow => shared_grow(k),
        VerifyMutation::BankStride => bank_stride(k),
        VerifyMutation::Uncoalesce => uncoalesce(k),
    }
}

/// Reassembles `k` with `prologue` inserted before the original body,
/// shifting every branch target and reconvergence index so control flow
/// is preserved. Unlike [`rebuild`]'s in-place edits, the prologue *does*
/// renumber: `Mutated::pc` points at the planted access inside it.
fn insert_prologue(k: &Kernel, prologue: Vec<Instr>, extra_regs: u32) -> Kernel {
    let shift = prologue.len();
    let mut instrs = prologue;
    for i in k.instrs() {
        let mut i = i.clone();
        if let Some(t) = i.target {
            i.target = Some(t + shift);
        }
        if let Some(r) = i.reconv {
            i.reconv = Some(r + shift);
        }
        instrs.push(i);
    }
    rebuild(k, instrs, extra_regs)
}

/// Guards the first unguarded `bar.sync` with predicate `p0` — the
/// predicate the generator seeds from a thread-dependent compare, so the
/// guard is thread-varying in any multi-thread launch.
fn barrier_drop(k: &Kernel) -> Option<Mutated> {
    let pc = k
        .instrs()
        .iter()
        .position(|i| matches!(i.op, Op::Bar) && i.guard.is_none())?;
    // The guard is only thread-varying if p0 is actually computed from
    // thread-dependent data; generated kernels always seed p0 with a setp
    // on a gtid-derived pool register before any barrier.
    if !k.instrs()[..pc]
        .iter()
        .any(|i| matches!(i.op, Op::Setp { .. }))
    {
        return None;
    }
    let mut instrs = k.instrs().to_vec();
    instrs[pc].guard = Some((PredReg(0), true));
    Some(Mutated {
        kernel: rebuild(k, instrs, 0),
        pc,
    })
}

/// Finds a register with exactly one defining instruction and at least
/// one reading instruction, then redirects that definition to a fresh
/// scratch register. Every read of the original register becomes a read
/// of never-written state.
fn uninit_reg(k: &Kernel, volta: bool) -> Option<Mutated> {
    let instrs = k.instrs();
    let nregs = k.num_regs() as u16;
    // defs[r] = (count, defining pc); uses[r] = any instr other than the
    // def reads r.
    let mut def_count = vec![0u32; nregs as usize];
    let mut def_pc = vec![usize::MAX; nregs as usize];
    for (pc, i) in instrs.iter().enumerate() {
        for r in i.def_regs(volta) {
            if let Some(c) = def_count.get_mut(r.0 as usize) {
                *c += 1;
                def_pc[r.0 as usize] = pc;
            }
        }
    }
    for (pc, i) in instrs.iter().enumerate() {
        for r in i.use_regs(volta) {
            let ri = r.0 as usize;
            if ri >= nregs as usize || def_count[ri] != 1 {
                continue;
            }
            let dpc = def_pc[ri];
            if dpc == pc || dpc == usize::MAX {
                continue; // self-referential (e.g. `iadd r, r, 1`)
            }
            // Only single-register defs can be redirected in place.
            let d = &instrs[dpc];
            if d.def_regs(volta).len() != 1 || d.guard.is_some() {
                continue;
            }
            let mut out = instrs.to_vec();
            out[dpc].dst = Some(tcsim_isa::Reg(nregs));
            return Some(Mutated {
                kernel: rebuild(k, out, 1),
                pc: dpc,
            });
        }
    }
    None
}

/// Swaps the shape qualifier of the first `wmma.mma`, so its operands no
/// longer match the fragments the `wmma.load`s produced. (The mma is the
/// mutation site rather than a load: growing a *load's* fragment can make
/// it overlap the next fragment's registers, which conservatively erases
/// its provenance and would hide the mismatch from the checker.)
fn frag_shape(k: &Kernel) -> Option<Mutated> {
    let swapped = |s: WmmaShape| match s {
        WmmaShape::M16N16K16 => WmmaShape::M32N8K16,
        WmmaShape::M32N8K16 | WmmaShape::M8N32K16 | WmmaShape::M8N8K32 => WmmaShape::M16N16K16,
        // `mma.sync` tiles swap K extent: the loaded fragments no longer
        // match (dense f16) or the mode turns arch-invalid (TF32, sparse).
        WmmaShape::M16N8K8 => WmmaShape::M16N8K16,
        WmmaShape::M16N8K16 => WmmaShape::M16N8K8,
    };
    let pc = k.instrs().iter().position(|i| {
        matches!(
            i.op,
            Op::Wmma(WmmaDirective::Mma { .. } | WmmaDirective::MmaSync { .. })
        )
    })?;
    let mut instrs = k.instrs().to_vec();
    match instrs[pc].op {
        Op::Wmma(WmmaDirective::Mma { ref mut shape, .. })
        | Op::Wmma(WmmaDirective::MmaSync { ref mut shape, .. }) => *shape = swapped(*shape),
        _ => unreachable!(),
    }
    Some(Mutated {
        kernel: rebuild(k, instrs, 0),
        pc,
    })
}

/// Truncates `x` toward zero to BF16 precision (drops the low 16 mantissa
/// bits) — the numeric defect [`crate::oracle::Mutation::Bf16ChopMantissa`]
/// plants in the BF16 `mma.sync` accumulation path. NaNs pass through
/// unchanged so the payload chop cannot manufacture an infinity.
pub fn chop_to_bf16(x: f32) -> f32 {
    if x.is_nan() {
        return x;
    }
    f32::from_bits(x.to_bits() & 0xFFFF_0000)
}

/// Swaps the two kept-index fields of every 2:4 metadata nibble in a
/// 4-group (one-row) metadata half-word — the defect
/// [`crate::oracle::Mutation::SparseMetaSwap`] plants in the sparse
/// decode path. Valid nibbles store indices `i0 < i1`, so the swap always
/// produces a *different* (and invalid-by-convention) nibble, relocating
/// both kept values within their group.
pub fn swap_sparse_meta(meta: u16) -> u16 {
    let mut out = 0u16;
    for g in 0..4 {
        let nib = (meta >> (4 * g)) & 0xF;
        let (i0, i1) = (nib & 0x3, (nib >> 2) & 0x3);
        out |= ((i0 << 2) | i1) << (4 * g);
    }
    out
}

/// Widens the generator's `and rX, rY, 63` slice mask ahead of a shared
/// access, so the recovered address range escapes both the warp-private
/// slice and the CTA allocation.
fn shared_grow(k: &Kernel) -> Option<Mutated> {
    let instrs = k.instrs();
    let pc = instrs.iter().enumerate().position(|(pc, i)| {
        matches!(i.op, Op::And)
            && i.srcs.get(1) == Some(&Operand::Imm(SLICE_MASK))
            && matches!(instrs.get(pc + 1).map(|n| &n.op), Some(Op::IMad))
    })?;
    let mut out = instrs.to_vec();
    out[pc].srcs[1] = Operand::Imm(GROWN_MASK);
    Some(Mutated {
        kernel: rebuild(k, out, 0),
        pc,
    })
}

/// Prepends `ld.shared.b32 d, [laneid << s]` with the largest in-bounds
/// power-of-two stride ≥ 8 bytes: lanes collide `1 << (s - 2)` deep on
/// the 32-bank word-interleaved map, which `shared-bank-conflict` must
/// flag while the unmutated kernel's slice accesses stay conflict-free.
fn bank_stride(k: &Kernel) -> Option<Mutated> {
    let shared = k.shared_bytes();
    // Largest shift keeping lane 31's word in bounds; need at least
    // stride 8 (shift 3) for a 2-way conflict.
    let s = (3..=7)
        .rev()
        .find(|s| 31u32 << s <= shared.saturating_sub(4))?;
    let base = k.num_regs() as u16;
    let (t, d) = (Reg(base), Reg(base + 1));
    let lane = Operand::Special(SpecialReg::LaneId);
    let prologue = vec![
        Instr::new(Op::Mov).with_dst(t).with_srcs(vec![lane]),
        Instr::new(Op::Shl)
            .with_dst(t)
            .with_srcs(vec![Operand::Reg(t), Operand::Imm(s as i64)]),
        Instr::new(Op::Ld {
            space: MemSpace::Shared,
            width: MemWidth::B32,
        })
        .with_dst(d)
        .with_srcs(vec![Operand::Reg(t), Operand::Imm(0)]),
    ];
    let pc = prologue.len() - 1;
    Some(Mutated {
        kernel: insert_prologue(k, prologue, 2),
        pc,
    })
}

/// Prepends a global load at a 128-byte per-lane stride off the kernel's
/// first pointer parameter: every lane lands in its own 32-byte sector,
/// which `global-uncoalesced` must flag. The mutant is lint-only — it is
/// never executed, so the strided range needs no backing allocation.
fn uncoalesce(k: &Kernel) -> Option<Mutated> {
    let param = k.params().iter().find(|p| p.bytes == 8)?;
    let base = (k.num_regs() as u16).next_multiple_of(2);
    let (ptr, addr, t, d) = (Reg(base), Reg(base + 2), Reg(base + 4), Reg(base + 5));
    let lane = Operand::Special(SpecialReg::LaneId);
    let prologue = vec![
        Instr::new(Op::Ld {
            space: MemSpace::Param,
            width: MemWidth::B64,
        })
        .with_dst(ptr)
        .with_srcs(vec![Operand::Imm(i64::from(param.offset)), Operand::Imm(0)]),
        Instr::new(Op::Mov).with_dst(t).with_srcs(vec![lane]),
        Instr::new(Op::IMadWide).with_dst(addr).with_srcs(vec![
            Operand::Reg(t),
            Operand::Imm(128),
            Operand::RegPair(ptr),
        ]),
        Instr::new(Op::Ld {
            space: MemSpace::Global,
            width: MemWidth::B32,
        })
        .with_dst(d)
        .with_srcs(vec![Operand::RegPair(addr), Operand::Imm(0)]),
    ];
    let pc = prologue.len() - 1;
    let extra = u32::from(base + 6) - k.num_regs();
    Some(Mutated {
        kernel: insert_prologue(k, prologue, extra),
        pc,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{assemble, generate, Arch, GenConfig, KindSel};

    fn find_applicable(kind: KindSel, m: VerifyMutation) -> (Kernel, Mutated, bool) {
        let cfg = GenConfig {
            max_ops: 24,
            kind,
            ..GenConfig::default()
        };
        for seed in 0..512u64 {
            let p = generate(seed, &cfg);
            let k = assemble(&p);
            let volta = p.arch == Arch::Volta;
            if let Some(mutated) = apply(&k, m, volta) {
                return (k, mutated, volta);
            }
        }
        panic!("no kernel in 512 seeds accepts {m:?}");
    }

    #[test]
    fn each_mutation_applies_within_a_few_seeds() {
        for (m, kind) in [
            (VerifyMutation::BarrierDrop, KindSel::Simt),
            (VerifyMutation::UninitReg, KindSel::Simt),
            (VerifyMutation::FragShape, KindSel::Wmma),
            (VerifyMutation::FragShape, KindSel::WmmaSparse),
            (VerifyMutation::SharedGrow, KindSel::Simt),
        ] {
            let (orig, mutated, _) = find_applicable(kind, m);
            assert_eq!(
                orig.instrs().len(),
                mutated.kernel.instrs().len(),
                "{m:?} must not renumber instructions"
            );
            assert!(mutated.pc < orig.instrs().len());
            assert_ne!(
                orig.instrs()[mutated.pc],
                mutated.kernel.instrs()[mutated.pc],
                "{m:?} must change the instruction at its reported pc"
            );
        }
    }

    #[test]
    fn perf_mutations_insert_a_prologue_and_preserve_control_flow() {
        for m in [VerifyMutation::BankStride, VerifyMutation::Uncoalesce] {
            assert!(m.is_perf());
            let (orig, mutated, _) = find_applicable(KindSel::Simt, m);
            let shift = mutated.kernel.instrs().len() - orig.instrs().len();
            assert!(shift > 0, "{m:?} inserts instructions");
            assert_eq!(mutated.pc, shift - 1, "pc points at the planted access");
            for (i, o) in mutated.kernel.instrs()[shift..].iter().zip(orig.instrs()) {
                assert_eq!(i.op, o.op);
                assert_eq!(i.target, o.target.map(|t| t + shift));
                assert_eq!(i.reconv, o.reconv.map(|r| r + shift));
            }
        }
    }

    #[test]
    fn perf_mutations_trip_the_perf_lints() {
        use tcsim_verify::perf::{check_perf, PerfLimits};
        use tcsim_verify::LaunchGeometry;
        for m in [VerifyMutation::BankStride, VerifyMutation::Uncoalesce] {
            let cfg = GenConfig {
                max_ops: 24,
                kind: KindSel::Simt,
                ..GenConfig::default()
            };
            let (mut applied, mut caught) = (0u32, 0u32);
            for seed in 0..64u64 {
                let p = generate(seed, &cfg);
                let k = assemble(&p);
                let volta = p.arch == Arch::Volta;
                let mut geom = LaunchGeometry::new(p.grid_x, p.block_x);
                geom.gen = p.arch.tensor_gen();
                let lim = PerfLimits::for_gen(geom.gen);
                let Some(mutated) = apply(&k, m, volta) else {
                    continue;
                };
                applied += 1;
                // The generated kernel may have perf findings of its own
                // (strided output stores); the canary demands one at the
                // planted instruction specifically.
                if check_perf(&mutated.kernel, &geom, &lim)
                    .iter()
                    .any(|d| d.index == mutated.pc && d.rule.starts_with(m.expected_rule_prefix()))
                {
                    caught += 1;
                }
            }
            assert!(applied > 0, "{m:?} never applied");
            assert!(
                caught * 4 >= applied * 3,
                "{m:?}: only {caught}/{applied} planted defects flagged"
            );
        }
    }

    #[test]
    fn names_round_trip() {
        for m in VerifyMutation::ALL {
            assert_eq!(VerifyMutation::from_name(m.name()), Some(m));
        }
        assert_eq!(VerifyMutation::from_name("fedp-chop"), None);
    }

    #[test]
    fn bf16_chop_truncates_toward_zero() {
        // 1.0 + 2^-20 loses its tail; exact BF16 values pass through.
        let x = f32::from_bits(0x3F80_0010);
        assert_eq!(chop_to_bf16(x), 1.0);
        assert_eq!(chop_to_bf16(1.0), 1.0);
        assert_eq!(chop_to_bf16(-1.5), -1.5);
        let y = f32::from_bits(0xBFC0_0123);
        assert_eq!(chop_to_bf16(y).to_bits(), 0xBFC0_0000);
        assert!(chop_to_bf16(f32::NAN).is_nan());
        assert_eq!(chop_to_bf16(0.0).to_bits(), 0);
    }

    #[test]
    fn sparse_meta_swap_flips_every_nibble() {
        use tcsim_core::pack_sparse_row_meta;
        let meta = pack_sparse_row_meta([(0, 1), (1, 2), (2, 3), (0, 3)]);
        let swapped = swap_sparse_meta(meta);
        assert_ne!(swapped, meta);
        // Each nibble's fields trade places: (i0,i1) → (i1,i0).
        for g in 0..4 {
            let nib = (meta >> (4 * g)) & 0xF;
            let s = (swapped >> (4 * g)) & 0xF;
            assert_eq!(s & 0x3, (nib >> 2) & 0x3);
            assert_eq!((s >> 2) & 0x3, nib & 0x3);
        }
        // Involution: swapping twice restores the original word.
        assert_eq!(swap_sparse_meta(swapped), meta);
    }
}
