//! The differential oracle: run one kernel on the full timing [`Gpu`] and
//! on a host reference interpreter, then compare the output buffers.
//!
//! Both sides share the architectural executor (`tcsim_isa::exec`) and the
//! functional tensor-core model, so for the oracle-safe programs produced
//! by [`crate::gen`] the outputs must agree **bit-for-bit** for integer,
//! logic and f16-conversion work; FEDP accumulation in floating-point WMMA
//! modes is compared with the paper-derived `gemm_tolerance(k)` bound
//! (Sec. V), where `k` is the total reduction depth of the chained
//! `wmma.mma`s. Divergence therefore means a real bug: scheduling-order
//! sensitivity, a memory-system corruption, or a numerics drift between
//! the pipelined model and the architectural one.
//!
//! The reference side can be wired with a planted [`Mutation`] (a
//! round-toward-zero flip of the per-FEDP f16 rounding) to prove the
//! oracle and the shrinker actually catch single-rounding bugs.

use crate::gen::{assemble, Arch, GenOp, GenProgram, KindSel};
use crate::mutate::{chop_to_bf16, swap_sparse_meta};
use crate::rng::XorShift64Star;
use tcsim_core::{
    expand_sparse_a, fedp_f32_pre, gather_tile, mma_reference, read_sparse_meta, scatter_tile,
    FragmentMap, TensorCoreModel, Tile,
};
use tcsim_f16::{Bf16, F16};
use tcsim_isa::exec::{step, ExecEnv, MemAccess, StepAction, WarpExec, WmmaHandler};
use tcsim_isa::{mma_sync_a_shape, FragmentKind, Layout, WmmaDirective, WmmaType};
use tcsim_isa::{ByteMemory, Dim3, Kernel, Op, Reg, VecMemory, WarpRegisters};
use tcsim_nn::gemm_tolerance;
use tcsim_sim::{Gpu, GpuConfig, LaunchBuilder, LaunchStats};
use tcsim_sm::SmConfig;
use tcsim_trace::RingTracer;

/// Reference-interpreter step budget (architectural instructions across
/// all warps); generated programs finish in far fewer, so exceeding it
/// means the kernel hung.
pub const REF_STEP_BUDGET: u64 = 4_000_000;

/// How the input buffer is filled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataKind {
    /// Raw random 32-bit words (SIMT programs).
    Raw,
    /// Random f16 values in `[-2, 2)` packed two per word (float WMMA).
    F16,
    /// Random bf16 values in `[-2, 2)` packed two per word (BF16
    /// `mma.sync` modes).
    Bf16,
    /// Random f32 values in `[-2, 2)`, one per word (TF32 modes — the
    /// device truncates to TF32 on operand read).
    F32,
    /// Random bytes (integer WMMA; also serves the 4-bit modes).
    I8,
}

impl DataKind {
    /// Corpus-header spelling.
    pub fn qualifier(self) -> &'static str {
        match self {
            DataKind::Raw => "raw",
            DataKind::F16 => "f16",
            DataKind::Bf16 => "bf16",
            DataKind::F32 => "f32",
            DataKind::I8 => "i8",
        }
    }

    /// Parses the corpus-header spelling.
    pub fn from_qualifier(s: &str) -> Option<DataKind> {
        match s {
            "raw" => Some(DataKind::Raw),
            "f16" => Some(DataKind::F16),
            "bf16" => Some(DataKind::Bf16),
            "f32" => Some(DataKind::F32),
            "i8" => Some(DataKind::I8),
            _ => None,
        }
    }
}

/// How the two output buffers are compared.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Compare {
    /// Byte-for-byte equality (integer/logic/conversion work).
    Exact,
    /// Elementwise f16 comparison within `gemm_tolerance(k)`; bit-equal
    /// elements (including NaNs) always pass.
    F16Tol {
        /// Total FEDP reduction depth.
        k: u32,
    },
    /// Elementwise f32 comparison within `gemm_tolerance(k)`.
    F32Tol {
        /// Total FEDP reduction depth.
        k: u32,
    },
}

impl Compare {
    /// Corpus-header spelling (`exact`, `f16:K`, `f32:K`).
    pub fn qualifier(self) -> String {
        match self {
            Compare::Exact => "exact".into(),
            Compare::F16Tol { k } => format!("f16:{k}"),
            Compare::F32Tol { k } => format!("f32:{k}"),
        }
    }

    /// Parses the corpus-header spelling.
    pub fn from_qualifier(s: &str) -> Option<Compare> {
        if s == "exact" {
            return Some(Compare::Exact);
        }
        let (ty, k) = s.split_once(':')?;
        let k: u32 = k.parse().ok()?;
        match ty {
            "f16" => Some(Compare::F16Tol { k }),
            "f32" => Some(Compare::F32Tol { k }),
            _ => None,
        }
    }
}

/// One fully specified differential test case: a kernel plus everything
/// needed to run and compare it deterministically.
#[derive(Clone, Debug)]
pub struct Case {
    /// Kernel to run (already assembled).
    pub kernel: Kernel,
    /// Target architecture.
    pub arch: Arch,
    /// Grid width in CTAs.
    pub grid_x: u32,
    /// CTA width in threads.
    pub block_x: u32,
    /// Input-buffer size in words.
    pub in_words: u32,
    /// Output-buffer size in words.
    pub out_words: u32,
    /// Input data pattern.
    pub data: DataKind,
    /// Seed for the input data stream.
    pub data_seed: u64,
    /// Output comparison mode.
    pub compare: Compare,
}

fn count_mmas(ops: &[GenOp]) -> u32 {
    ops.iter()
        .map(|op| match op {
            GenOp::WMma { .. } => 1,
            GenOp::If { body, .. } | GenOp::Loop { body, .. } => count_mmas(body),
            _ => 0,
        })
        .sum()
}

impl Case {
    /// Assembles a generated program into a runnable case.
    pub fn from_program(p: &GenProgram, data_seed: u64) -> Case {
        let (data, compare) = match p.wmma {
            None => (DataKind::Raw, Compare::Exact),
            Some(m) if m.integer() => (DataKind::I8, Compare::Exact),
            Some(m) => {
                let k = m.shape.k() as u32 * count_mmas(&p.body).max(1);
                let cmp = if m.d == WmmaType::F16 {
                    Compare::F16Tol { k }
                } else {
                    Compare::F32Tol { k }
                };
                let data = match m.ab {
                    WmmaType::BF16 => DataKind::Bf16,
                    WmmaType::TF32 => DataKind::F32,
                    _ => DataKind::F16,
                };
                (data, cmp)
            }
        };
        Case {
            kernel: assemble(p),
            arch: p.arch,
            grid_x: p.grid_x,
            block_x: p.block_x,
            in_words: p.in_words(),
            out_words: p.out_words(),
            data,
            data_seed,
            compare,
        }
    }

    /// The deterministic input-buffer contents for this case.
    pub fn input_bytes(&self) -> Vec<u8> {
        input_bytes(self.data, self.data_seed, self.in_words)
    }
}

/// The deterministic input stream shared by every consumer of the case
/// format: `words × 4` bytes of `kind`-patterned data drawn from a
/// [`XorShift64Star`] seeded with `seed`. Standalone so other layers
/// (e.g. the `tcsim-serve` job runner) can materialize byte-identical
/// buffers without constructing a full [`Case`].
pub fn input_bytes(kind: DataKind, seed: u64, words: u32) -> Vec<u8> {
    let mut rng = XorShift64Star::new(seed);
    let mut bytes = Vec::with_capacity(words as usize * 4);
    match kind {
        DataKind::Raw => {
            for _ in 0..words {
                bytes.extend_from_slice(&rng.next_u32().to_le_bytes());
            }
        }
        DataKind::F16 => {
            for _ in 0..words * 2 {
                let v = (rng.next_f64() * 4.0 - 2.0) as f32;
                bytes.extend_from_slice(&F16::from_f32(v).to_bits().to_le_bytes());
            }
        }
        DataKind::Bf16 => {
            for _ in 0..words * 2 {
                let v = (rng.next_f64() * 4.0 - 2.0) as f32;
                bytes.extend_from_slice(&Bf16::from_f32(v).to_bits().to_le_bytes());
            }
        }
        DataKind::F32 => {
            for _ in 0..words {
                let v = (rng.next_f64() * 4.0 - 2.0) as f32;
                bytes.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        DataKind::I8 => {
            for _ in 0..words * 4 {
                bytes.push(rng.below(256) as u8);
            }
        }
    }
    bytes
}

/// The down-scaled GPU model used for differential runs.
pub fn gpu_config(arch: Arch) -> GpuConfig {
    match arch {
        Arch::Volta => GpuConfig::mini(),
        Arch::Turing => {
            let mut cfg = GpuConfig::mini();
            cfg.name = "mini-turing";
            cfg.sm = SmConfig::turing();
            cfg
        }
        Arch::Ampere => {
            let mut cfg = GpuConfig::mini();
            cfg.name = "mini-ampere";
            cfg.sm = SmConfig::ampere();
            cfg
        }
    }
}

/// A planted bug for validating the oracle end to end.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// No mutation: reference matches the device model.
    None,
    /// Flip the per-FEDP f16 rounding in the accumulate chain from
    /// round-to-nearest-even to round-toward-zero (truncation) — the
    /// classic "chopped accumulator" bug of §V's conformance discussion.
    FedpChopF16,
    /// Truncate the BF16 `mma.sync` accumulator to BF16 precision after
    /// every FEDP group instead of keeping it in full f32 — the analogue
    /// of an implementation that narrows the accumulator to the
    /// multiplicand width.
    Bf16ChopMantissa,
    /// Swap the two kept-index fields of every 2:4 sparsity metadata
    /// nibble before expansion, relocating both surviving A values within
    /// their 4-wide group.
    SparseMetaSwap,
}

impl Mutation {
    /// Every planted oracle mutation (excluding [`Mutation::None`]), in
    /// canonical order.
    pub const PLANTED: [Mutation; 3] = [
        Mutation::FedpChopF16,
        Mutation::Bf16ChopMantissa,
        Mutation::SparseMetaSwap,
    ];

    /// Command-line spelling (`--mutate <name>`).
    pub fn name(self) -> &'static str {
        match self {
            Mutation::None => "none",
            Mutation::FedpChopF16 => "fedp-chop-f16",
            Mutation::Bf16ChopMantissa => "bf16-chop-mantissa",
            Mutation::SparseMetaSwap => "sparse-meta-swap",
        }
    }

    /// Parses the command-line spelling of a planted mutation.
    pub fn from_name(s: &str) -> Option<Mutation> {
        Mutation::PLANTED.into_iter().find(|m| m.name() == s)
    }

    /// The generator restriction under which this mutation is observable
    /// on every generated case.
    pub fn kind(self) -> KindSel {
        match self {
            Mutation::None => KindSel::Auto,
            Mutation::FedpChopF16 => KindSel::WmmaF16Acc,
            Mutation::Bf16ChopMantissa => KindSel::WmmaBf16,
            Mutation::SparseMetaSwap => KindSel::WmmaSparse,
        }
    }
}

/// f32 → f16 with round-toward-zero (truncation).
fn f16_chop(x: f32) -> F16 {
    if x.is_nan() {
        return F16::from_f32(x);
    }
    let rn = F16::from_f32(x);
    let back = rn.to_f32();
    if back.abs() > x.abs() {
        // Rounded away from zero: step one ulp back toward zero. The
        // magnitude lives in the low 15 bits, so decrementing the raw
        // encoding moves toward zero for either sign (and maps +inf to
        // the largest finite value).
        F16::from_bits(rn.to_bits().wrapping_sub(1))
    } else {
        rn
    }
}

/// `mma_reference` with the chopped per-FEDP f16 rounding.
fn mma_reference_chopped(a: &Tile, b: &Tile, c: &Tile) -> Tile {
    let m = a.rows();
    let k = a.cols();
    let n = b.cols();
    let mut d = Tile::new(WmmaType::F16, m, n);
    for r in 0..m {
        for col in 0..n {
            let av: Vec<F16> = (0..k).map(|i| a.get_f16(r, i)).collect();
            let bv: Vec<F16> = (0..k).map(|i| b.get_f16(i, col)).collect();
            let mut acc = c.value(r, col) as f32;
            for (qa, qb) in av.chunks_exact(4).zip(bv.chunks_exact(4)) {
                acc = tcsim_core::fedp_f32(
                    [qa[0], qa[1], qa[2], qa[3]],
                    [qb[0], qb[1], qb[2], qb[3]],
                    acc,
                );
                acc = f16_chop(acc).to_f32();
            }
            d.set_f16(r, col, F16::from_f32(acc));
        }
    }
    d
}

/// `mma_reference` for BF16 `mma.sync` with the accumulator truncated to
/// BF16 precision after every FEDP group (the [`Mutation::Bf16ChopMantissa`]
/// defect). The unmutated path keeps the f32 accumulator intact between
/// groups, so the chop's ~half-ulp-of-bf16 bias is far outside
/// `gemm_tolerance`.
fn mma_reference_chopped_bf16(a: &Tile, b: &Tile, c: &Tile) -> Tile {
    let m = a.rows();
    let k = a.cols();
    let n = b.cols();
    let mut d = Tile::new(WmmaType::F32, m, n);
    for r in 0..m {
        for col in 0..n {
            let av: Vec<f32> = (0..k).map(|i| a.widen_f32(r, i)).collect();
            let bv: Vec<f32> = (0..k).map(|i| b.widen_f32(i, col)).collect();
            let mut acc = c.value(r, col) as f32;
            for (qa, qb) in av.chunks_exact(4).zip(bv.chunks_exact(4)) {
                acc = fedp_f32_pre(qa, qb, acc);
                acc = chop_to_bf16(acc);
            }
            d.set_f32(r, col, acc);
        }
    }
    d
}

/// A [`WmmaHandler`] that wraps the real tensor-core model but applies a
/// [`Mutation`] to `wmma.mma` / `mma.sync` — used on the *reference* side
/// so the device result stays canonical.
pub struct MutantWmma {
    inner: TensorCoreModel,
    volta: bool,
    mutation: Mutation,
}

impl MutantWmma {
    /// Wraps the model for `arch` with `mutation`.
    pub fn new(arch: Arch, mutation: Mutation) -> MutantWmma {
        let inner = match arch {
            Arch::Volta => TensorCoreModel::volta(),
            Arch::Turing => TensorCoreModel::turing(),
            Arch::Ampere => TensorCoreModel::ampere(),
        };
        MutantWmma {
            inner,
            volta: arch == Arch::Volta,
            mutation,
        }
    }
}

impl WmmaHandler for MutantWmma {
    fn wmma_load(
        &self,
        dir: &WmmaDirective,
        dst: Reg,
        base: u64,
        stride: usize,
        mem: &dyn ByteMemory,
        regs: &mut dyn WarpRegisters,
    ) -> Vec<MemAccess> {
        self.inner.wmma_load(dir, dst, base, stride, mem, regs)
    }

    fn wmma_mma(
        &self,
        dir: &WmmaDirective,
        d: Reg,
        a: Reg,
        b: Reg,
        c: Reg,
        regs: &mut dyn WarpRegisters,
    ) {
        let WmmaDirective::Mma {
            shape,
            a_layout,
            b_layout,
            ab_type,
            d_type,
            c_type,
        } = *dir
        else {
            panic!("wmma_mma requires an Mma directive")
        };
        let chop = self.mutation == Mutation::FedpChopF16
            && ab_type == WmmaType::F16
            && d_type == WmmaType::F16;
        if !chop {
            return self.inner.wmma_mma(dir, d, a, b, c, regs);
        }
        let volta = self.volta;
        let amap = FragmentMap::for_arch(volta, FragmentKind::A, shape, ab_type, a_layout);
        let bmap = FragmentMap::for_arch(volta, FragmentKind::B, shape, ab_type, b_layout);
        let cmap = FragmentMap::for_arch(volta, FragmentKind::C, shape, c_type, Layout::Row);
        let dmap = FragmentMap::for_arch(volta, FragmentKind::D, shape, d_type, Layout::Row);
        let at = gather_tile(&self.inner, &amap, a, regs);
        let bt = gather_tile(&self.inner, &bmap, b, regs);
        let ct = gather_tile(&self.inner, &cmap, c, regs);
        let dt = mma_reference_chopped(&at, &bt, &ct);
        scatter_tile(&dmap, d, &dt, regs);
    }

    fn mma_sync(
        &self,
        dir: &WmmaDirective,
        d: Reg,
        a: Reg,
        b: Reg,
        c: Reg,
        meta: Option<Reg>,
        regs: &mut dyn WarpRegisters,
    ) {
        let WmmaDirective::MmaSync {
            shape,
            ab_type,
            c_type,
            d_type,
            sparse,
        } = *dir
        else {
            panic!("mma_sync requires an MmaSync directive")
        };
        let chop_f16 = self.mutation == Mutation::FedpChopF16
            && ab_type == WmmaType::F16
            && d_type == WmmaType::F16;
        let chop_bf16 = self.mutation == Mutation::Bf16ChopMantissa && ab_type == WmmaType::BF16;
        let meta_swap = self.mutation == Mutation::SparseMetaSwap && sparse;
        if !chop_f16 && !chop_bf16 && !meta_swap {
            return self.inner.mma_sync(dir, d, a, b, c, meta, regs);
        }
        // Mirror the canonical model's fixed mma.sync operand layouts.
        let a_shape = mma_sync_a_shape(shape, sparse);
        let amap = FragmentMap::for_arch(false, FragmentKind::A, a_shape, ab_type, Layout::Row);
        let bmap = FragmentMap::for_arch(false, FragmentKind::B, shape, ab_type, Layout::Col);
        let cmap = FragmentMap::for_arch(false, FragmentKind::C, shape, c_type, Layout::Row);
        let dmap = FragmentMap::for_arch(false, FragmentKind::D, shape, d_type, Layout::Row);
        let at = gather_tile(&self.inner, &amap, a, regs);
        let bt = gather_tile(&self.inner, &bmap, b, regs);
        let ct = gather_tile(&self.inner, &cmap, c, regs);
        let at = if sparse {
            let mreg = meta.expect("sparse mma.sync requires a metadata register");
            let mut row_meta = read_sparse_meta(regs, mreg);
            if meta_swap {
                for m in &mut row_meta {
                    *m = swap_sparse_meta(*m);
                }
            }
            expand_sparse_a(&at, &row_meta)
        } else {
            at
        };
        let dt = if chop_f16 {
            mma_reference_chopped(&at, &bt, &ct)
        } else if chop_bf16 {
            mma_reference_chopped_bf16(&at, &bt, &ct)
        } else {
            mma_reference(&at, &bt, &ct, d_type)
        };
        scatter_tile(&dmap, d, &dt, regs);
    }

    fn wmma_store(
        &self,
        dir: &WmmaDirective,
        src: Reg,
        base: u64,
        stride: usize,
        mem: &mut dyn ByteMemory,
        regs: &dyn WarpRegisters,
    ) -> Vec<MemAccess> {
        self.inner.wmma_store(dir, src, base, stride, mem, regs)
    }
}

/// Why a differential run failed.
#[derive(Clone, Debug)]
pub enum CheckFail {
    /// The two sides disagree.
    Mismatch(Mismatch),
    /// The reference interpreter exhausted its step budget (kernel hang).
    RefBudget {
        /// Steps executed before giving up.
        steps: u64,
    },
    /// All live warps are blocked but none is at a barrier.
    RefDeadlock,
}

impl std::fmt::Display for CheckFail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckFail::Mismatch(m) => write!(f, "{m}"),
            CheckFail::RefBudget { steps } => {
                write!(f, "reference interpreter exceeded {steps} steps (hang?)")
            }
            CheckFail::RefDeadlock => write!(f, "reference interpreter deadlocked"),
        }
    }
}

/// First diverging element between the device and reference outputs.
#[derive(Clone, Debug)]
pub struct Mismatch {
    /// Byte offset into the output buffer.
    pub byte_offset: usize,
    /// Device-side element bits.
    pub gpu_bits: u32,
    /// Reference-side element bits.
    pub ref_bits: u32,
    /// Decoded values (for float compares) and the tolerance applied.
    pub detail: String,
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "output mismatch at byte {}: gpu=0x{:08x} ref=0x{:08x} ({})",
            self.byte_offset, self.gpu_bits, self.ref_bits, self.detail
        )
    }
}

/// Artifacts of a passing differential run.
#[derive(Clone, Debug)]
pub struct DiffReport {
    /// Kernel name.
    pub name: String,
    /// Device-side launch statistics (including the trace summary).
    pub stats: LaunchStats,
}

/// Runs `case` on the device model, returning the launch stats and the
/// output buffer.
pub fn run_gpu(case: &Case) -> (LaunchStats, Vec<u8>) {
    let mut gpu = Gpu::new(gpu_config(case.arch));
    let in_addr = gpu.alloc(u64::from(case.in_words) * 4);
    let out_addr = gpu.alloc(u64::from(case.out_words) * 4);
    gpu.memcpy_h2d(in_addr, &case.input_bytes());
    let stats = LaunchBuilder::new(case.kernel.clone())
        .grid(case.grid_x)
        .block(case.block_x)
        .param_u64(in_addr)
        .param_u64(out_addr)
        .tracer(RingTracer::new())
        .launch(&mut gpu);
    let out = gpu.memcpy_d2h(out_addr, case.out_words as usize * 4);
    (stats, out)
}

/// Runs `case` on the host reference interpreter (serial CTAs, round-robin
/// warps, barriers released when every live warp has arrived), with
/// `mutation` applied to the tensor-core semantics.
pub fn run_reference(case: &Case, mutation: Mutation) -> Result<Vec<u8>, CheckFail> {
    // Mirror the device address map so pointer parameters are identical.
    let in_addr = 0x1_0000u64;
    let out_addr = {
        let base = in_addr + u64::from(case.in_words) * 4;
        base.div_ceil(256) * 256
    };
    let mut global = VecMemory::new();
    for (i, byte) in case.input_bytes().iter().enumerate() {
        global.write_u8(in_addr + i as u64, *byte);
    }
    let mut params = Vec::with_capacity(16);
    params.extend_from_slice(&in_addr.to_le_bytes());
    params.extend_from_slice(&out_addr.to_le_bytes());

    let wmma = MutantWmma::new(case.arch, mutation);
    let kernel = &case.kernel;
    let warps_per_cta = (case.block_x as usize).div_ceil(32);
    let mut steps = 0u64;
    for cta in 0..case.grid_x {
        let mut shared = VecMemory::new();
        let mut warps: Vec<WarpExec> = (0..warps_per_cta)
            .map(|w| WarpExec::new(kernel.num_regs(), w as u32, u32::MAX))
            .collect();
        let mut done = vec![false; warps_per_cta];
        let mut waiting = vec![false; warps_per_cta];
        let mut env = ExecEnv {
            global: &mut global,
            shared: &mut shared,
            params: &params,
            block: Dim3::x(case.block_x),
            grid: Dim3::x(case.grid_x),
            cta: Dim3::new(cta, 0, 0),
            clock: 0,
        };
        loop {
            let mut progressed = false;
            let mut all_done = true;
            for w in 0..warps_per_cta {
                if done[w] {
                    continue;
                }
                all_done = false;
                if waiting[w] {
                    continue;
                }
                let out = step(&mut warps[w], kernel, &mut env, &wmma);
                env.clock += 1;
                steps += 1;
                if steps > REF_STEP_BUDGET {
                    return Err(CheckFail::RefBudget { steps });
                }
                match out.action {
                    StepAction::Continue => {}
                    StepAction::Barrier => waiting[w] = true,
                    StepAction::Exited => done[w] = true,
                }
                progressed = true;
            }
            if all_done {
                break;
            }
            if !progressed {
                // Every live warp is parked at the barrier: release them.
                if waiting.iter().zip(&done).any(|(wt, dn)| *wt && !*dn) {
                    for wt in waiting.iter_mut() {
                        *wt = false;
                    }
                } else {
                    return Err(CheckFail::RefDeadlock);
                }
            }
        }
    }
    let len = case.out_words as usize * 4;
    let mut out = Vec::with_capacity(len);
    for i in 0..len {
        out.push(global.read_u8(out_addr + i as u64));
    }
    Ok(out)
}

/// Compares device and reference output buffers under the case's mode.
pub fn compare_outputs(case: &Case, gpu: &[u8], reference: &[u8]) -> Result<(), Mismatch> {
    assert_eq!(gpu.len(), reference.len(), "output length mismatch");
    match case.compare {
        Compare::Exact => {
            for (i, (g, r)) in gpu.chunks(4).zip(reference.chunks(4)).enumerate() {
                if g != r {
                    let gb = u32::from_le_bytes(g.try_into().unwrap_or([0; 4]));
                    let rb = u32::from_le_bytes(r.try_into().unwrap_or([0; 4]));
                    return Err(Mismatch {
                        byte_offset: i * 4,
                        gpu_bits: gb,
                        ref_bits: rb,
                        detail: "exact compare".into(),
                    });
                }
            }
            Ok(())
        }
        Compare::F16Tol { k } => {
            let tol = gemm_tolerance(k as usize);
            for (i, (g, r)) in gpu.chunks(2).zip(reference.chunks(2)).enumerate() {
                if g == r {
                    continue;
                }
                let gb = u16::from_le_bytes(g.try_into().unwrap_or([0; 2]));
                let rb = u16::from_le_bytes(r.try_into().unwrap_or([0; 2]));
                let gv = F16::from_bits(gb).to_f32();
                let rv = F16::from_bits(rb).to_f32();
                if gv.is_nan() || rv.is_nan() || (gv - rv).abs() > tol {
                    return Err(Mismatch {
                        byte_offset: i * 2,
                        gpu_bits: u32::from(gb),
                        ref_bits: u32::from(rb),
                        detail: format!("f16 {gv} vs {rv}, tol {tol} (k={k})"),
                    });
                }
            }
            Ok(())
        }
        Compare::F32Tol { k } => {
            let tol = gemm_tolerance(k as usize);
            for (i, (g, r)) in gpu.chunks(4).zip(reference.chunks(4)).enumerate() {
                if g == r {
                    continue;
                }
                let gb = u32::from_le_bytes(g.try_into().unwrap_or([0; 4]));
                let rb = u32::from_le_bytes(r.try_into().unwrap_or([0; 4]));
                let gv = f32::from_bits(gb);
                let rv = f32::from_bits(rb);
                if gv.is_nan() || rv.is_nan() || (gv - rv).abs() > tol {
                    return Err(Mismatch {
                        byte_offset: i * 4,
                        gpu_bits: gb,
                        ref_bits: rb,
                        detail: format!("f32 {gv} vs {rv}, tol {tol} (k={k})"),
                    });
                }
            }
            Ok(())
        }
    }
}

/// The full differential check: device run, reference run, compare.
///
/// `mutation` is applied to the reference side only, so a planted bug
/// shows up as a [`CheckFail::Mismatch`] exactly like a real divergence
/// would.
pub fn diff_run(case: &Case, mutation: Mutation) -> Result<DiffReport, CheckFail> {
    let (stats, gpu_out) = run_gpu(case);
    let ref_out = run_reference(case, mutation)?;
    compare_outputs(case, &gpu_out, &ref_out).map_err(CheckFail::Mismatch)?;
    Ok(DiffReport {
        name: case.kernel.name().to_string(),
        stats,
    })
}

/// `true` if the kernel contains any WMMA instruction (used by invariant
/// checks to decide whether tensor-pipe counters must be non-zero).
pub fn has_wmma(kernel: &Kernel) -> bool {
    kernel.instrs().iter().any(|i| matches!(i.op, Op::Wmma(_)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_chop_truncates_toward_zero() {
        for (x, expect_le) in [(1.0005f32, 1.0f32), (-1.0005, -1.0)] {
            let c = f16_chop(x).to_f32();
            assert!(c.abs() <= x.abs(), "chop({x}) = {c} grew in magnitude");
            let rn = F16::from_f32(x).to_f32();
            // For these inputs RN rounds away from zero, chop must not.
            assert_ne!(c, rn, "chop({x}) should differ from RN");
            assert_eq!(c, expect_le);
        }
        // Exactly representable values are untouched.
        assert_eq!(f16_chop(1.5).to_bits(), F16::from_f32(1.5).to_bits());
        // Overflow chops to the largest finite value, not infinity.
        assert!(f16_chop(70000.0).to_f32().is_finite());
    }

    #[test]
    fn mutation_names_round_trip() {
        for m in Mutation::PLANTED {
            assert_eq!(Mutation::from_name(m.name()), Some(m));
        }
        // `None` is not a plantable name, nor is garbage.
        assert_eq!(Mutation::from_name("none"), None);
        assert_eq!(Mutation::from_name("no-such-bug"), None);
    }

    #[test]
    fn planted_mutations_flip_clean_cases_to_mismatches() {
        use crate::gen::{generate, GenConfig};
        for m in Mutation::PLANTED {
            let cfg = GenConfig {
                max_ops: 16,
                kind: m.kind(),
                arch: None,
            };
            let mut detected = 0;
            for seed in 0..4u64 {
                let p = generate(seed, &cfg);
                let case = Case::from_program(&p, seed ^ 0xABCD);
                diff_run(&case, Mutation::None)
                    .unwrap_or_else(|e| panic!("{m:?} seed {seed}: clean run failed: {e:?}"));
                if matches!(diff_run(&case, m), Err(CheckFail::Mismatch(_))) {
                    detected += 1;
                }
            }
            assert!(
                detected >= 3,
                "{m:?}: only {detected}/4 seeds caught the plant"
            );
        }
    }

    #[test]
    fn compare_accepts_identical_bits_even_nan() {
        let case_cmp = Compare::F16Tol { k: 16 };
        let case = Case {
            kernel: {
                let mut b = tcsim_isa::KernelBuilder::new("t");
                b.exit();
                b.build()
            },
            arch: Arch::Volta,
            grid_x: 1,
            block_x: 32,
            in_words: 4,
            out_words: 1,
            data: DataKind::Raw,
            data_seed: 0,
            compare: case_cmp,
        };
        // 0x7e00 is an f16 NaN; identical on both sides → accepted.
        let nan = 0x7e00u16.to_le_bytes();
        let buf = [nan[0], nan[1], nan[0], nan[1]];
        assert!(compare_outputs(&case, &buf, &buf).is_ok());
        // Differing NaN vs number → rejected.
        let other = [0u8, 0x3c, nan[0], nan[1]];
        assert!(compare_outputs(&case, &buf, &other).is_err());
    }
}
