//! Failure minimizer: shrink a failing [`GenProgram`] to a (locally)
//! minimal one that still fails the same way.
//!
//! The shrinker works on the generator's op list, not on raw
//! instructions, so every candidate re-assembles through the same
//! oracle-safe grammar — a shrunk kernel can never introduce a *new*
//! kind of failure (wild store, unbounded loop) that the original didn't
//! have. Only a reproduced **output mismatch** counts as "still
//! failing"; a candidate that trips a different failure (reference
//! budget, deadlock) is rejected, which keeps the minimizer anchored to
//! the original bug.
//!
//! Passes, applied to fixpoint under an evaluation budget:
//! 1. delta-debugging chunk removal over the top-level op list (chunk
//!    sizes halving from n/2 down to 1);
//! 2. structure flattening — replace an `If`/`Loop` with its body, or
//!    reduce a loop to a single trip;
//! 3. field simplification — drop guards, zero WMMA offsets/paddings,
//!    turn `acc_d` accumulation back into plain `C` accumulation, and
//!    shrink the launch to one 32-thread CTA.

use crate::gen::{GenOp, GenProgram};
use crate::oracle::{diff_run, Case, CheckFail, Mutation};

/// Default cap on candidate evaluations (each is a full differential
/// run on the mini GPU).
pub const DEFAULT_SHRINK_EVALS: u32 = 400;

/// Outcome of a shrink run.
#[derive(Clone, Debug)]
pub struct ShrinkResult {
    /// The minimized program (still failing).
    pub program: GenProgram,
    /// Candidate evaluations spent.
    pub evals: u32,
    /// Top-level + nested ops in the result.
    pub ops: usize,
}

struct Shrinker<F> {
    still_fails: F,
    evals: u32,
    max_evals: u32,
}

impl<F: FnMut(&GenProgram) -> bool> Shrinker<F> {
    fn budget_left(&self) -> bool {
        self.evals < self.max_evals
    }

    /// Tests a candidate; on reproduction installs it as the new best.
    fn attempt(&mut self, best: &mut GenProgram, cand: GenProgram) -> bool {
        if !self.budget_left() {
            return false;
        }
        self.evals += 1;
        if (self.still_fails)(&cand) {
            *best = cand;
            true
        } else {
            false
        }
    }

    /// Delta-debugging removal of top-level chunks.
    fn chunk_pass(&mut self, best: &mut GenProgram) -> bool {
        let mut progress = false;
        let mut chunk = (best.body.len() / 2).max(1);
        loop {
            let mut i = 0;
            while i < best.body.len() && self.budget_left() {
                let mut cand = best.clone();
                let end = (i + chunk).min(cand.body.len());
                cand.body.drain(i..end);
                if cand.body.is_empty() || !self.attempt(best, cand) {
                    i += chunk;
                } else {
                    progress = true;
                    // best shrank in place; retry the same index.
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
        progress
    }

    /// Replace structured ops by their bodies / single trips.
    fn flatten_pass(&mut self, best: &mut GenProgram) -> bool {
        let mut progress = false;
        let mut i = 0;
        while i < best.body.len() && self.budget_left() {
            let (inner, trips) = match &best.body[i] {
                GenOp::If { body, .. } => (Some(body.clone()), 0),
                GenOp::Loop { trips, body } => (Some(body.clone()), *trips),
                _ => (None, 0),
            };
            if let Some(inner) = inner {
                // First try full flattening (the body spliced in place)…
                let mut cand = best.clone();
                cand.body.splice(i..=i, inner);
                if self.attempt(best, cand) {
                    progress = true;
                    continue; // re-examine the spliced-in ops
                }
                // …then, for a multi-trip loop, a single trip (keeps the
                // backward branch).
                if trips > 1 {
                    let mut cand = best.clone();
                    if let GenOp::Loop { trips, .. } = &mut cand.body[i] {
                        *trips = 1;
                    }
                    if self.attempt(best, cand) {
                        progress = true;
                        continue;
                    }
                }
            }
            i += 1;
        }
        progress
    }

    /// Per-op field simplifications plus launch-shape reduction.
    fn simplify_pass(&mut self, best: &mut GenProgram) -> bool {
        let mut progress = false;
        if best.grid_x > 1 && self.budget_left() {
            let mut cand = best.clone();
            cand.grid_x = 1;
            progress |= self.attempt(best, cand);
        }
        if best.block_x > 32 && self.budget_left() {
            let mut cand = best.clone();
            cand.block_x = 32;
            progress |= self.attempt(best, cand);
        }
        let mut i = 0;
        while i < best.body.len() && self.budget_left() {
            for edit in 0..3 {
                let mut cand = best.clone();
                if simplify_op(&mut cand.body[i], edit) && self.attempt(best, cand) {
                    progress = true;
                }
            }
            i += 1;
        }
        progress
    }

    fn run(&mut self, start: &GenProgram) -> GenProgram {
        let mut best = start.clone();
        loop {
            let mut progress = false;
            progress |= self.chunk_pass(&mut best);
            progress |= self.flatten_pass(&mut best);
            progress |= self.simplify_pass(&mut best);
            if !progress || !self.budget_left() {
                break;
            }
        }
        best
    }
}

/// Applies simplification `edit` (0: clear guard, 1: zero offsets/pads,
/// 2: de-accumulate) to `op`; returns whether anything changed.
fn simplify_op(op: &mut GenOp, edit: u8) -> bool {
    match edit {
        0 => {
            let guard = match op {
                GenOp::Alu { guard, .. }
                | GenOp::IMad { guard, .. }
                | GenOp::FAlu { guard, .. }
                | GenOp::FFma { guard, .. }
                | GenOp::Mufu { guard, .. }
                | GenOp::HAlu { guard, .. }
                | GenOp::HFma2 { guard, .. }
                | GenOp::CvtToF16 { guard, .. }
                | GenOp::CvtToF32 { guard, .. }
                | GenOp::Selp { guard, .. }
                | GenOp::LdIn { guard, .. }
                | GenOp::LdShared { guard, .. }
                | GenOp::StShared { guard, .. }
                | GenOp::StOut { guard, .. }
                | GenOp::AtomOut { guard, .. } => guard,
                _ => return false,
            };
            guard.take().is_some()
        }
        1 => match op {
            GenOp::WLoad { off, pad, .. } | GenOp::WStore { off, pad, .. } => {
                let changed = *off != 0 || *pad != 0;
                *off = 0;
                *pad = 0;
                changed
            }
            _ => false,
        },
        _ => match op {
            GenOp::WMma { acc_d, .. } if *acc_d => {
                *acc_d = false;
                true
            }
            _ => false,
        },
    }
}

/// Minimizes `start` under an arbitrary reproduction predicate.
pub fn shrink<F>(start: &GenProgram, still_fails: F, max_evals: u32) -> ShrinkResult
where
    F: FnMut(&GenProgram) -> bool,
{
    let mut s = Shrinker {
        still_fails,
        evals: 0,
        max_evals,
    };
    let program = s.run(start);
    let ops = program.op_count();
    ShrinkResult {
        program,
        evals: s.evals,
        ops,
    }
}

/// Minimizes a program whose differential run (with `mutation` planted
/// on the reference side) produced an output mismatch.
pub fn shrink_mismatch(
    start: &GenProgram,
    data_seed: u64,
    mutation: Mutation,
    max_evals: u32,
) -> ShrinkResult {
    shrink(
        start,
        |cand| {
            let case = Case::from_program(cand, data_seed);
            matches!(diff_run(&case, mutation), Err(CheckFail::Mismatch(_)))
        },
        max_evals,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig, KindSel};

    #[test]
    fn shrink_respects_the_eval_budget() {
        let p = generate(5, &GenConfig::default());
        // A predicate that always reproduces: shrink to the smallest
        // non-empty body the passes can reach.
        let r = shrink(&p, |_| true, 37);
        assert!(r.evals <= 37);
        assert!(!r.program.body.is_empty());
    }

    #[test]
    fn shrink_on_an_always_failing_simt_program_is_tiny() {
        let cfg = GenConfig {
            kind: KindSel::Simt,
            ..Default::default()
        };
        let p = generate(11, &cfg);
        let r = shrink(&p, |_| true, 2_000);
        // Chunk removal alone must get the body down to one op.
        assert_eq!(r.program.body.len(), 1, "body: {:?}", r.program.body);
        assert_eq!(r.program.grid_x, 1);
        assert_eq!(r.program.block_x, 32);
    }
}
