//! The workspace's canonical deterministic PRNG.
//!
//! One xorshift64* generator, shared by the fuzzer, the benchmark
//! harness (re-exported as `tcsim_bench::XorShift64Star`) and every
//! randomized test in the workspace. It replaces the per-test copies
//! that used to be re-declared in `tests/random_system.rs` and the
//! `crates/*/tests/random_*.rs` files, and the `rand` crate, which is
//! unreachable from the offline build environment.
//!
//! The sequence is fully determined by the seed, so fuzz campaigns,
//! benchmark inputs and test data are reproducible across runs and
//! platforms.

/// A deterministic xorshift64* pseudo-random generator.
///
/// # Example
///
/// ```
/// use tcsim_check::rng::XorShift64Star;
///
/// let mut a = XorShift64Star::new(42);
/// let mut b = XorShift64Star::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct XorShift64Star {
    state: u64,
}

impl XorShift64Star {
    /// Creates a generator from a seed (a zero seed is remapped, as the
    /// all-zero state is a fixed point of the xorshift recurrence).
    pub fn new(seed: u64) -> XorShift64Star {
        XorShift64Star {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Next 32-bit output (upper half of the 64-bit stream, which has the
    /// better-mixed bits in xorshift*).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift range reduction; the modulo bias is < 2^-32 for
        // the bounds used in tests.
        ((self.next_u64() >> 32).wrapping_mul(bound)) >> 32
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range");
        lo + self.below((hi - lo) as u64) as i64
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Next 16-bit output (top bits of the 64-bit stream).
    pub fn next_u16(&mut self) -> u16 {
        (self.next_u64() >> 48) as u16
    }

    /// Arbitrary f32 bit pattern (including NaN/inf/subnormal).
    pub fn next_f32_bits(&mut self) -> f32 {
        f32::from_bits(self.next_u32())
    }

    /// Uniform integer in the **inclusive** range `[lo, hi]`.
    pub fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        assert!(lo <= hi, "empty range");
        lo + self.below((hi - lo + 1) as u64) as i32
    }

    /// A uniformly random boolean.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// `true` with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Uniformly picks one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

/// A seeded open-loop exponential inter-arrival stream — the Poisson
/// arrival process both `tcsim-loadgen` (wall-clock seconds against the
/// job server) and the `tcsim-infer` serving simulator (simulated
/// cycles) draw from. One implementation, one bit-exact sequence: the
/// generator is seeded with `seed ^ SEED_SALT` and each interval is
/// `-ln(1 - u) / rate` for the next uniform `u`, so a given `(seed,
/// rate)` always produces the same arrival pattern regardless of the
/// time unit the caller assigns to `rate`.
///
/// # Example
///
/// ```
/// use tcsim_check::rng::ExpArrivals;
///
/// let mut a = ExpArrivals::new(7, 2.0);
/// let mut b = ExpArrivals::new(7, 2.0);
/// let iv = a.next_interval();
/// assert!(iv > 0.0);
/// assert_eq!(iv, b.next_interval());
/// ```
#[derive(Clone, Debug)]
pub struct ExpArrivals {
    rng: XorShift64Star,
    rate: f64,
}

impl ExpArrivals {
    /// Salt folded into the seed (`"LOADGEN!"` in ASCII) so arrival
    /// streams are decorrelated from other consumers of the same user
    /// seed. Kept bit-compatible with the generator `tcsim-loadgen`
    /// inlined before this module existed, so committed benchmark
    /// artifacts stay reproducible.
    pub const SEED_SALT: u64 = 0x4C4F_4144_4745_4E21;

    /// Creates the stream. `rate` is arrivals per unit time (the caller
    /// picks the unit: seconds, cycles, Mcycles).
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is positive and finite.
    pub fn new(seed: u64, rate: f64) -> ExpArrivals {
        assert!(
            rate > 0.0 && rate.is_finite(),
            "arrival rate must be positive"
        );
        ExpArrivals {
            rng: XorShift64Star::new(seed ^ Self::SEED_SALT),
            rate,
        }
    }

    /// The next exponential inter-arrival interval, in the caller's time
    /// unit. Always positive and finite (`u < 1` by construction).
    pub fn next_interval(&mut self) -> f64 {
        let u = self.rng.next_f64();
        -(1.0 - u).ln() / self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = XorShift64Star::new(7);
        let mut b = XorShift64Star::new(7);
        let mut c = XorShift64Star::new(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut z = XorShift64Star::new(0);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = XorShift64Star::new(3);
        for bound in [1u64, 2, 7, 100] {
            for _ in 0..100 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn matches_the_historic_bench_sequence() {
        // The recurrence must stay bit-compatible with the generator the
        // benchmark binaries used when the committed golden results were
        // produced.
        let mut r = XorShift64Star::new(1);
        let x = r.next_u64();
        let expect = {
            let mut s = 1u64;
            s ^= s >> 12;
            s ^= s << 25;
            s ^= s >> 27;
            s.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        assert_eq!(x, expect);
    }
}
