//! Timing invariants checked on every differential run.
//!
//! The differential oracle only proves the *architectural* outputs agree;
//! these checks constrain the *timing* side of the model against the
//! paper's microarchitecture: the Table III step schedules, the sub-core
//! issue-width bound, and basic sanity of the stall/occupancy accounting.
//! They run on the [`LaunchStats`] the device side of every fuzz case
//! already produces, so a timing regression is caught by the same
//! campaign that guards the semantics.

use crate::gen::Arch;
use crate::oracle::{gpu_config, Case};
use tcsim_core::{mma_step_schedule, FEDP_STAGES, OCTETS_PER_WARP};
use tcsim_cutlass::{run_gemm, GemmKernel, GemmProblem};
use tcsim_isa::{Op, WmmaDirective};
use tcsim_sim::{Gpu, LaunchStats};
use tcsim_trace::TraceUnit;

/// Expected tensor-pipe event counts for one execution of every
/// `wmma.mma` in `case`'s kernel by every warp.
struct TensorExpect {
    /// `wmma.mma` instructions in the kernel.
    mmas: u64,
    /// HMMA set/step trace events per full pass (all warps).
    hmma_steps: u64,
    /// FEDP stage trace events per full pass (all warps).
    fedp_stages: u64,
    /// Whether the kernel contains a backward branch (a loop): if so the
    /// per-warp execution count is a lower bound, not an equality.
    has_loop: bool,
}

fn tensor_expect(case: &Case) -> TensorExpect {
    let volta = !case.arch.turing();
    let warps = u64::from(case.grid_x) * u64::from(case.block_x.div_ceil(32));
    let mut e = TensorExpect {
        mmas: 0,
        hmma_steps: 0,
        fedp_stages: 0,
        has_loop: false,
    };
    for (pc, instr) in case.kernel.instrs().iter().enumerate() {
        if let Some(target) = instr.target {
            if target <= pc {
                e.has_loop = true;
            }
        }
        if let Op::Wmma(dir @ (WmmaDirective::Mma { .. } | WmmaDirective::MmaSync { .. })) =
            &instr.op
        {
            let sched = mma_step_schedule(volta, dir).len() as u64;
            e.mmas += warps;
            e.hmma_steps += warps * sched * OCTETS_PER_WARP as u64;
            e.fedp_stages += warps * sched * FEDP_STAGES as u64;
        }
    }
    e
}

/// Checks every timing invariant that holds for `case`'s launch.
///
/// Returns the names of the checks performed (useful for coverage
/// reporting) or a description of the first violated invariant.
pub fn check_run(case: &Case, stats: &LaunchStats) -> Result<Vec<&'static str>, String> {
    let mut checked = Vec::new();
    let cfg = gpu_config(case.arch);

    if stats.cycles == 0 {
        return Err("launch completed in zero cycles".into());
    }
    if stats.instructions == 0 {
        return Err("launch issued zero instructions".into());
    }
    checked.push("progress");

    // One warp instruction per sub-core scheduler per clock (§II-A).
    let peak = (cfg.num_sms as u64 * cfg.sm.issue_width()) as f64;
    if stats.ipc() > peak {
        return Err(format!(
            "IPC {} exceeds peak issue width {peak}",
            stats.ipc()
        ));
    }
    checked.push("ipc-bound");

    let Some(trace) = &stats.trace else {
        return Ok(checked);
    };

    if trace.first_cycle > trace.last_cycle {
        return Err(format!(
            "trace cycles inverted: first {} > last {}",
            trace.first_cycle, trace.last_cycle
        ));
    }
    // Note: `last_cycle` may legitimately exceed `stats.cycles` — HMMA
    // step events are stamped at issue time for cycles in the pipeline's
    // future, and the launch counter stops at CTA completion. The events
    // must still start within the launch.
    if trace.first_cycle > stats.cycles {
        return Err(format!(
            "first trace event at cycle {} after launch end {}",
            trace.first_cycle, stats.cycles
        ));
    }
    checked.push("trace-cycle-range");

    for (i, (&n, &c)) in trace
        .stall_counts
        .iter()
        .zip(&trace.stall_cycles)
        .enumerate()
    {
        if n == 0 && c != 0 {
            return Err(format!(
                "stall reason {i} has {c} cycles but zero occurrences"
            ));
        }
        if n > 0 && c < n {
            return Err(format!(
                "stall reason {i}: {n} occurrences but only {c} cycles"
            ));
        }
    }
    checked.push("stall-accounting");

    // The remaining checks are exact event-count equalities; they only
    // hold when the ring buffer kept every event.
    if trace.dropped > 0 {
        return Ok(checked);
    }

    if trace.issues != stats.instructions {
        return Err(format!(
            "trace saw {} issues but the launch counted {}",
            trace.issues, stats.instructions
        ));
    }
    let by_unit: u64 = trace.issues_by_unit.iter().sum();
    if by_unit != trace.issues {
        return Err(format!(
            "per-unit issues sum to {by_unit}, total is {}",
            trace.issues
        ));
    }
    checked.push("issue-accounting");

    let expect = tensor_expect(case);
    let tensor_issues = trace.issues_by_unit[TraceUnit::Tensor.index()];
    let ok = |actual: u64, want: u64| {
        if expect.has_loop {
            actual >= want
        } else {
            actual == want
        }
    };
    if !ok(tensor_issues, expect.mmas) {
        return Err(format!(
            "tensor pipe issued {tensor_issues} mma, schedule expects {}{}",
            expect.mmas,
            if expect.has_loop { "+" } else { "" }
        ));
    }
    // Table III / Fig 9: each issued mma expands to its architecture's
    // set/step schedule across the four octets, each step streaming
    // through the 4-stage FEDP pipeline.
    if !ok(trace.hmma_steps, expect.hmma_steps) {
        return Err(format!(
            "hmma steps {} != schedule expectation {}",
            trace.hmma_steps, expect.hmma_steps
        ));
    }
    if !ok(trace.fedp_stages, expect.fedp_stages) {
        return Err(format!(
            "fedp stages {} != schedule expectation {}",
            trace.fedp_stages, expect.fedp_stages
        ));
    }
    if trace.hmma_steps > 0 {
        if trace.hmma_busy_cycles == 0 {
            return Err("hmma steps recorded but zero busy cycles".into());
        }
        let span = trace.last_cycle - trace.first_cycle + 1;
        if trace.hmma_busy_cycles > span {
            return Err(format!(
                "hmma busy {} cycles exceeds the {span}-cycle event span",
                trace.hmma_busy_cycles
            ));
        }
    }
    checked.push("table3-schedule");

    Ok(checked)
}

/// Runs square mixed-precision GEMMs of each `size` on the mini model
/// and checks total cycles are monotone nondecreasing in problem size —
/// more work can never finish sooner on a fixed configuration.
///
/// Returns the cycle count per size.
pub fn gemm_cycle_monotonicity(sizes: &[usize]) -> Result<Vec<u64>, String> {
    let mut cycles = Vec::with_capacity(sizes.len());
    for &size in sizes {
        let mut gpu = Gpu::new(gpu_config(Arch::Volta));
        let run = run_gemm(
            &mut gpu,
            GemmProblem::square(size),
            GemmKernel::WmmaSimple,
            false,
        );
        cycles.push(run.stats.cycles);
    }
    for pair in cycles.windows(2) {
        if pair[1] < pair[0] {
            return Err(format!(
                "cycles not monotone over sizes {sizes:?}: {cycles:?}"
            ));
        }
    }
    Ok(cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig, KindSel};
    use crate::oracle::run_gpu;

    #[test]
    fn invariants_hold_on_a_wmma_case() {
        let cfg = GenConfig {
            kind: KindSel::Wmma,
            ..Default::default()
        };
        let p = generate(3, &cfg);
        let case = Case::from_program(&p, 99);
        let (stats, _) = run_gpu(&case);
        let checked = check_run(&case, &stats).expect("invariants");
        assert!(checked.contains(&"ipc-bound"));
        assert!(checked.contains(&"table3-schedule"));
    }

    #[test]
    fn gemm_cycles_grow_with_size() {
        let cycles = gemm_cycle_monotonicity(&[16, 32, 64]).expect("monotone");
        assert_eq!(cycles.len(), 3);
        assert!(cycles[0] > 0);
    }
}
