//! Differential fuzzer for the simulator stack.
//!
//! Generates oracle-safe random kernels, runs each on the full timing
//! GPU and on the host reference interpreter, compares outputs, and
//! checks the timing invariants of every launch. Failures are shrunk to
//! a minimal program and written to the corpus directory for permanent
//! replay by `cargo test`.
//!
//! ```text
//! tcsim-fuzz [--seed S] [--iters N] [--max-insts M] [--json]
//!            [--arch ARCH] [--corpus-dir DIR] [--mutate [MODE]]
//!            [--replay DIR]
//! ```
//!
//! Every generated kernel is also run through the `tcsim-verify` static
//! analyzer; any diagnostic on an oracle-safe kernel is a false positive
//! and fails the campaign.
//!
//! `--arch volta|turing|ampere` pins the generated architecture (the
//! default draws Volta/Turing per seed; `ampere` adds the `mma.sync`
//! BF16/TF32/sparse modes to the pool).
//!
//! Bare `--mutate` plants the FEDP round-toward-zero mutation on the
//! reference side — every all-FP16 WMMA case must then *fail*; it exists
//! to prove the oracle catches single-rounding bugs. The named dynamic
//! canaries `fedp-chop-f16`, `bf16-chop-mantissa` and `sparse-meta-swap`
//! work the same way over their sensitive mode pools. `--mutate MODE`
//! with a static mode (`barrier-drop`, `uninit-reg`, `frag-shape`,
//! `shared-grow`) instead runs the *static* canary: each generated
//! kernel gets that defect planted and the verifier must flag it with an
//! error of the matching rule class. The *performance* modes
//! (`bank-stride`, `uncoalesce`) plant perf defects that the
//! `tcsim_verify::perf` lints must flag as warnings at the planted
//! instruction — ≥ 3/4 of plants must be caught (generated kernels carry
//! incidental perf findings of their own, so exactness is per-site, not
//! per-kernel). `--replay DIR` replays a corpus directory instead of
//! fuzzing (exit 1 on any reproduced failure, echoing the failing
//! kernel).

use std::path::PathBuf;
use std::process::ExitCode;
use tcsim_check::corpus;
use tcsim_check::gen::{assemble, generate, Arch, GenConfig, GenProgram, KindSel};
use tcsim_check::invariants;
use tcsim_check::mutate::{self, VerifyMutation};
use tcsim_check::oracle::{diff_run, Case, Mutation};
use tcsim_check::shrink::{shrink, shrink_mismatch, ShrinkResult, DEFAULT_SHRINK_EVALS};
use tcsim_verify::LaunchGeometry;

struct Args {
    seed: u64,
    iters: u64,
    max_insts: u32,
    json: bool,
    mutate: Mutation,
    verify_mutate: Option<VerifyMutation>,
    arch: Option<Arch>,
    corpus_dir: PathBuf,
    replay: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 1,
        iters: 100,
        max_insts: 24,
        json: false,
        mutate: Mutation::None,
        verify_mutate: None,
        arch: None,
        corpus_dir: PathBuf::from("tests/corpus"),
        replay: None,
    };
    let mut it = std::env::args().skip(1).peekable();
    fn next_value(
        it: &mut std::iter::Peekable<std::iter::Skip<std::env::Args>>,
        name: &str,
    ) -> Result<String, String> {
        it.next().ok_or_else(|| format!("{name} needs a value"))
    }
    while let Some(flag) = it.next() {
        let mut value = |name: &str| next_value(&mut it, name);
        match flag.as_str() {
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--iters" => {
                args.iters = value("--iters")?
                    .parse()
                    .map_err(|e| format!("--iters: {e}"))?
            }
            "--max-insts" => {
                args.max_insts = value("--max-insts")?
                    .parse()
                    .map_err(|e| format!("--max-insts: {e}"))?
            }
            "--json" => args.json = true,
            "--arch" => {
                let v = value("--arch")?;
                args.arch =
                    Some(Arch::from_qualifier(&v).ok_or_else(|| format!("--arch: unknown {v:?}"))?);
            }
            "--mutate" => {
                // `--mutate NAME` selects a static-verifier or dynamic
                // oracle canary by name; a bare `--mutate` keeps the
                // legacy FEDP oracle-canary meaning.
                if let Some(m) = it.peek().and_then(|n| VerifyMutation::from_name(n)) {
                    it.next();
                    args.verify_mutate = Some(m);
                } else if let Some(m) = it.peek().and_then(|n| Mutation::from_name(n)) {
                    it.next();
                    args.mutate = m;
                } else {
                    args.mutate = Mutation::FedpChopF16;
                }
            }
            "--corpus-dir" => args.corpus_dir = PathBuf::from(value("--corpus-dir")?),
            "--replay" => args.replay = Some(PathBuf::from(value("--replay")?)),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

/// The launch geometry a generated program is analyzed under.
fn geometry(p: &GenProgram) -> LaunchGeometry {
    let mut g = LaunchGeometry::new(p.grid_x, p.block_x);
    g.gen = p.arch.tensor_gen();
    g
}

fn data_seed_for(kernel_seed: u64) -> u64 {
    kernel_seed ^ 0xDA7A_5EED
}

fn replay(dir: &std::path::Path, json: bool) -> ExitCode {
    let results = corpus::replay_dir(dir);
    let mut failed = 0usize;
    for (path, outcome) in &results {
        match outcome {
            Ok(()) => {
                if !json {
                    eprintln!("replay ok   {}", path.display());
                }
            }
            Err(e) => {
                failed += 1;
                eprintln!("replay FAIL {}: {e}", path.display());
                if let Ok(text) = std::fs::read_to_string(path) {
                    eprintln!("--- failing case ---\n{text}--------------------");
                }
            }
        }
    }
    if json {
        println!("{{\"replayed\":{},\"failed\":{failed}}}", results.len());
    } else {
        eprintln!("replayed {} case(s), {failed} failure(s)", results.len());
    }
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn report_failure(args: &Args, kernel_seed: u64, what: &str, shrunk: &ShrinkResult, case: &Case) {
    let text = corpus::case_to_text(case);
    eprintln!(
        "FAILURE at seed {kernel_seed}: {what} (shrunk to {} ops in {} evals)",
        shrunk.ops, shrunk.evals
    );
    eprintln!("--- minimized case ---\n{text}----------------------");
    let name = format!("fail_{kernel_seed:016x}");
    match corpus::write_case(&args.corpus_dir, &name, case) {
        Ok(path) => eprintln!("written to {}", path.display()),
        Err(e) => eprintln!("could not write corpus file: {e}"),
    }
}

/// Static-verifier canary: plant `m` into generated kernels and demand
/// the analyzer flags each planted defect with an error of the matching
/// rule class (while the unmutated kernel verifies clean).
fn verifier_canary(args: &Args, m: VerifyMutation) -> ExitCode {
    let started = std::time::Instant::now();
    // Barrier/def/shared defects need SIMT kernels (barriers, shared
    // slices); the shape swap needs a WMMA kernel.
    let kind = match m {
        VerifyMutation::FragShape => KindSel::Wmma,
        _ => KindSel::Simt,
    };
    let cfg = GenConfig {
        max_ops: args.max_insts as usize,
        kind,
        arch: args.arch,
    };
    let mut applied = 0u64;
    let mut caught = 0u64;
    let mut attempts = 0u64;
    // Not every kernel has a mutation site (e.g. no barrier was
    // generated); scan seeds until `--iters` defects were planted.
    while applied < args.iters && attempts < args.iters.saturating_mul(16).max(64) {
        let kernel_seed = args.seed.wrapping_add(attempts);
        attempts += 1;
        let program = generate(kernel_seed, &cfg);
        let kernel = assemble(&program);
        let geom = geometry(&program);
        let clean = tcsim_verify::check(&kernel, &geom);
        if !clean.is_empty() {
            eprintln!("seed {kernel_seed}: unmutated kernel is not verifier-clean:");
            for d in clean {
                eprintln!("  {d}");
            }
            return ExitCode::FAILURE;
        }
        let volta = program.arch == Arch::Volta;
        let Some(mutated) = mutate::apply(&kernel, m, volta) else {
            continue;
        };
        applied += 1;
        let hit = if m.is_perf() {
            // Perf defects are warnings from the perf lints, pinned to
            // the planted instruction (the kernel may carry incidental
            // perf findings elsewhere).
            let lim = tcsim_verify::perf::PerfLimits::for_gen(geom.gen);
            tcsim_verify::perf::check_perf(&mutated.kernel, &geom, &lim)
                .iter()
                .any(|d| d.index == mutated.pc && d.rule.starts_with(m.expected_rule_prefix()))
        } else {
            tcsim_verify::check(&mutated.kernel, &geom)
                .iter()
                .any(|d| d.is_error() && d.rule.starts_with(m.expected_rule_prefix()))
        };
        if hit {
            caught += 1;
        } else if !m.is_perf() {
            eprintln!(
                "seed {kernel_seed}: planted {} at #{} NOT flagged",
                m.name(),
                mutated.pc,
            );
            for d in tcsim_verify::check(&mutated.kernel, &geom) {
                eprintln!("  {d}");
            }
            eprintln!(
                "--- mutated kernel ---\n{}----------------------",
                tcsim_isa::emit::emit_kernel(&mutated.kernel)
            );
            return ExitCode::FAILURE;
        }
    }
    if applied == 0 {
        eprintln!(
            "tcsim-fuzz: {} never applied in {attempts} seed(s)",
            m.name()
        );
        return ExitCode::FAILURE;
    }
    // Correctness canaries fail fast above, so caught == applied here;
    // perf canaries tolerate up to a quarter of plants going unflagged.
    if caught * 4 < applied * 3 {
        eprintln!(
            "tcsim-fuzz: only {caught}/{applied} planted {} defect(s) flagged",
            m.name()
        );
        return ExitCode::FAILURE;
    }
    let failures = applied - caught;
    let secs = started.elapsed().as_secs_f64();
    if args.json {
        println!(
            "{{\"seed\":{},\"mutate\":\"{}\",\"attempts\":{attempts},\"applied\":{applied},\
             \"caught\":{caught},\"failures\":{failures},\"seconds\":{secs:.2}}}",
            args.seed,
            m.name()
        );
    } else {
        eprintln!(
            "tcsim-fuzz: {caught}/{applied} planted {} defect(s) flagged \
             ({attempts} seeds scanned) in {secs:.2}s",
            m.name()
        );
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("tcsim-fuzz: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(dir) = &args.replay {
        return replay(dir, args.json);
    }
    if let Some(m) = args.verify_mutate {
        return verifier_canary(&args, m);
    }

    let started = std::time::Instant::now();
    let mutation = args.mutate;
    let mutating = mutation != Mutation::None;
    // With a planted mutation only its sensitive mode pool can observe
    // the defect; restrict generation so every case must trip.
    let kind = mutation.kind();
    let cfg = GenConfig {
        max_ops: args.max_insts as usize,
        kind,
        arch: args.arch,
    };
    let (mut simt, mut wmma, mut caught) = (0u64, 0u64, 0u64);
    for i in 0..args.iters {
        let kernel_seed = args.seed.wrapping_add(i);
        let program = generate(kernel_seed, &cfg);
        if program.wmma.is_some() {
            wmma += 1;
        } else {
            simt += 1;
        }
        // Static-analyzer gate: every oracle-safe kernel must verify
        // clean; any diagnostic here is a verifier false positive.
        let diags = tcsim_verify::check(&assemble(&program), &geometry(&program));
        if !diags.is_empty() {
            let shrunk = shrink(
                &program,
                |cand| !tcsim_verify::check(&assemble(cand), &geometry(cand)).is_empty(),
                DEFAULT_SHRINK_EVALS,
            );
            let min_kernel = assemble(&shrunk.program);
            eprintln!(
                "FAILURE at seed {kernel_seed}: verifier false positive on an \
                 oracle-safe kernel (shrunk to {} ops in {} evals)",
                shrunk.ops, shrunk.evals
            );
            for d in tcsim_verify::check(&min_kernel, &geometry(&shrunk.program)) {
                eprintln!("  {d}");
            }
            eprintln!(
                "--- kernel ---\n{}--------------",
                tcsim_isa::emit::emit_kernel(&min_kernel)
            );
            return ExitCode::FAILURE;
        }
        let data_seed = data_seed_for(kernel_seed);
        let case = Case::from_program(&program, data_seed);
        match diff_run(&case, mutation) {
            Ok(report) => {
                if mutating && case.compare != tcsim_check::oracle::Compare::Exact {
                    eprintln!(
                        "seed {kernel_seed}: planted {} mutation NOT caught",
                        mutation.name()
                    );
                    return ExitCode::FAILURE;
                }
                if let Err(e) = invariants::check_run(&case, &report.stats) {
                    let shrunk = shrink(
                        &program,
                        |cand| {
                            let c = Case::from_program(cand, data_seed);
                            match diff_run(&c, mutation) {
                                Ok(r) => invariants::check_run(&c, &r.stats).is_err(),
                                Err(_) => false,
                            }
                        },
                        DEFAULT_SHRINK_EVALS,
                    );
                    let min_case = Case::from_program(&shrunk.program, data_seed);
                    report_failure(
                        &args,
                        kernel_seed,
                        &format!("invariant: {e}"),
                        &shrunk,
                        &min_case,
                    );
                    return ExitCode::FAILURE;
                }
            }
            Err(e) => {
                if mutating {
                    caught += 1;
                    continue;
                }
                let shrunk = shrink_mismatch(&program, data_seed, mutation, DEFAULT_SHRINK_EVALS);
                let min_case = Case::from_program(&shrunk.program, data_seed);
                report_failure(&args, kernel_seed, &e.to_string(), &shrunk, &min_case);
                return ExitCode::FAILURE;
            }
        }
    }

    let secs = started.elapsed().as_secs_f64();
    if args.json {
        println!(
            "{{\"seed\":{},\"iters\":{},\"simt\":{simt},\"wmma\":{wmma},\
             \"mutate\":\"{}\",\"caught\":{caught},\"failures\":0,\"seconds\":{secs:.2}}}",
            args.seed,
            args.iters,
            mutation.name()
        );
    } else {
        eprintln!(
            "tcsim-fuzz: {} iters clean ({simt} simt, {wmma} wmma{}) in {secs:.2}s",
            args.iters,
            if mutating {
                format!(", {caught} {} mutations caught", mutation.name())
            } else {
                String::new()
            }
        );
    }
    ExitCode::SUCCESS
}
