//! Static kernel linter over on-disk kernels.
//!
//! Runs the `tcsim-verify` analyses (uninitialized registers, barrier
//! divergence, shared-memory races/bounds, WMMA well-formedness) over
//! fuzz-corpus `.case` files and emitted-PTX `.ptx` files without
//! executing anything — the batch front-end to the same pass
//! `LaunchBuilder::try_launch` runs per launch.
//!
//! ```text
//! tcsim-lint [--strict] [--perf] [--json] [--grid X] [--block X]
//!            [--arch volta|turing|ampere] [--shared BYTES] PATH...
//! ```
//!
//! `--perf` additionally runs the performance lints
//! (`shared-bank-conflict`, `global-uncoalesced`, `low-occupancy` from
//! `tcsim_verify::perf`) — warnings, so they only fail the run under
//! `--strict`.
//!
//! Each `PATH` is a file or a directory (scanned non-recursively for
//! `*.case` and `*.ptx`). Corpus cases carry their launch geometry and
//! architecture in the header; bare PTX files are analyzed under the
//! `--grid`/`--block`/`--arch`/`--shared` flags (default: one 32-thread
//! CTA on Volta). Exits 1 when any error-severity diagnostic is found
//! (`--strict` also fails on warnings), 2 on unreadable or unparsable
//! input.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use tcsim_check::corpus;
use tcsim_check::gen::Arch;
use tcsim_verify::perf::{check_perf, PerfLimits};
use tcsim_verify::{check, Diagnostic, LaunchGeometry};

struct Args {
    strict: bool,
    perf: bool,
    json: bool,
    grid: u32,
    block: u32,
    arch: Arch,
    shared: u32,
    paths: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        strict: false,
        perf: false,
        json: false,
        grid: 1,
        block: 32,
        arch: Arch::Volta,
        shared: 0,
        paths: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--strict" => args.strict = true,
            "--perf" => args.perf = true,
            "--json" => args.json = true,
            "--grid" => {
                args.grid = value("--grid")?
                    .parse()
                    .map_err(|e| format!("--grid: {e}"))?
            }
            "--block" => {
                args.block = value("--block")?
                    .parse()
                    .map_err(|e| format!("--block: {e}"))?
            }
            "--arch" => {
                let v = value("--arch")?;
                args.arch = Arch::from_qualifier(&v)
                    .ok_or_else(|| format!("--arch: unknown arch {v:?}"))?;
            }
            "--shared" => {
                args.shared = value("--shared")?
                    .parse()
                    .map_err(|e| format!("--shared: {e}"))?
            }
            other if other.starts_with("--") => return Err(format!("unknown flag {other:?}")),
            path => args.paths.push(PathBuf::from(path)),
        }
    }
    if args.paths.is_empty() {
        return Err("no input paths (expected .case/.ptx files or directories)".into());
    }
    Ok(args)
}

/// Runs the correctness analyses, plus the performance lints when
/// `--perf` is set (appended so correctness findings stay first).
fn lint_kernel(kernel: &tcsim_isa::Kernel, geom: &LaunchGeometry, args: &Args) -> Vec<Diagnostic> {
    let mut diags = check(kernel, geom);
    if args.perf {
        let lim = PerfLimits::for_gen(geom.gen);
        diags.extend(check_perf(kernel, geom, &lim));
    }
    diags
}

/// One linted kernel: its origin, name and diagnostics.
struct Linted {
    path: PathBuf,
    kernel: String,
    diags: Vec<Diagnostic>,
}

fn geometry(grid: u32, block: u32, arch: Arch, shared: u32) -> LaunchGeometry {
    let mut g = LaunchGeometry::new(grid, block).with_dynamic_shared(shared);
    g.gen = arch.tensor_gen();
    g
}

fn lint_file(path: &Path, args: &Args, out: &mut Vec<Linted>) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
    if ext == "case" || text.trim_start().starts_with(corpus::HEADER) {
        let case = corpus::case_from_text(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let geom = geometry(case.grid_x, case.block_x, case.arch, 0);
        out.push(Linted {
            path: path.to_path_buf(),
            kernel: case.kernel.name().to_string(),
            diags: lint_kernel(&case.kernel, &geom, args),
        });
    } else {
        let program =
            tcsim_isa::ptx::parse_program(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let geom = geometry(args.grid, args.block, args.arch, args.shared);
        let mut kernels: Vec<_> = program.kernels().collect();
        kernels.sort_by_key(|k| k.name().to_string());
        for k in kernels {
            out.push(Linted {
                path: path.to_path_buf(),
                kernel: k.name().to_string(),
                diags: lint_kernel(k, &geom, args),
            });
        }
    }
    Ok(())
}

fn lint_path(path: &Path, args: &Args, out: &mut Vec<Linted>) -> Result<(), String> {
    if path.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(path)
            .map_err(|e| format!("{}: {e}", path.display()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                matches!(
                    p.extension().and_then(|e| e.to_str()),
                    Some("case") | Some("ptx")
                )
            })
            .collect();
        entries.sort();
        for p in entries {
            lint_file(&p, args, out)?;
        }
        Ok(())
    } else {
        lint_file(path, args, out)
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("tcsim-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let mut linted = Vec::new();
    for path in &args.paths {
        if let Err(e) = lint_path(path, &args, &mut linted) {
            eprintln!("tcsim-lint: {e}");
            return ExitCode::from(2);
        }
    }
    let (mut errors, mut warnings) = (0usize, 0usize);
    for l in &linted {
        for d in &l.diags {
            if d.is_error() {
                errors += 1;
            } else {
                warnings += 1;
            }
            eprintln!("{}: {}: {d}", l.path.display(), l.kernel);
        }
    }
    if args.json {
        let files: std::collections::BTreeSet<_> = linted.iter().map(|l| &l.path).collect();
        println!(
            "{{\"files\":{},\"kernels\":{},\"errors\":{errors},\"warnings\":{warnings}}}",
            files.len(),
            linted.len()
        );
    } else {
        eprintln!(
            "tcsim-lint: {} kernel(s), {errors} error(s), {warnings} warning(s)",
            linted.len()
        );
    }
    if errors > 0 || (args.strict && warnings > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
