//! Metamorphic GEMM properties on the full simulated GPU.
//!
//! Instead of comparing against a host model, each property relates two
//! tensor-core launches (or a launch and its own inputs) whose outputs
//! must agree **bitwise** by algebra alone:
//!
//! * **transpose duality** — `A·B = (Bᵀ·Aᵀ)ᵀ`: every output element is
//!   the same dot product with the same reduction order, so even the
//!   FEDP rounding sequence is identical;
//! * **row-permutation equivariance** — `P·(A·B) = (P·A)·B` for a row
//!   permutation `P`;
//! * **zero absorber** — `0·B + C = C` (FEDP adds exact zeros);
//! * **identity** — `I·B + 0 = B` (each dot product has exactly one
//!   exact product term).
//!
//! The first four run the m16n16k16 all-FP16 mode, the one shape/type
//! mode shared by Volta and Turing. A second harness drives the Ampere
//! per-instruction `mma.sync` tiles (BF16/TF32, 2:4 sparsity) through
//! their own algebraic properties:
//!
//! * **sparse/dense equivalence** — a 2:4 sparse `mma.sync` must equal
//!   the dense `mma.sync` over the host-expanded A operand, bitwise;
//! * **power-of-two scaling** — `(2A)·B + 0 = 2·(A·B + 0)` bitwise:
//!   doubling is exact in BF16 and in the f32 accumulator;
//! * **TF32 truncation idempotence** — TF32 inputs are truncated once on
//!   the way into the FEDP tree, so pre-truncating them on the host must
//!   not change a single output bit.

use crate::gen::{Arch, WmmaMode};
use crate::oracle::gpu_config;
use crate::rng::XorShift64Star;
use tcsim_f16::{Bf16, Tf32, F16};
use tcsim_isa::{
    fragment_regs, FragmentKind, Kernel, KernelBuilder, Layout, MemSpace, MemWidth, Operand,
    WmmaShape, WmmaType,
};
use tcsim_sim::{Gpu, LaunchBuilder};

/// Tile edge of the m16n16k16 mode.
pub const N: usize = 16;
const TILE_BYTES: u64 = (N * N * 2) as u64;

/// Builds the one-warp kernel `D = A×B + C` over 16×16 f16 tiles at
/// `in+0` (A), `in+512` (B), `in+1024` (C), storing D row-major to `out`.
fn gemm_kernel(a_layout: Layout, b_layout: Layout) -> Kernel {
    let shape = WmmaShape::M16N16K16;
    let f16 = WmmaType::F16;
    let mut b = KernelBuilder::new("meta_gemm");
    let param_in = b.param("in", 8);
    let param_out = b.param("out", 8);
    let in_pair = b.reg_pair();
    let out_pair = b.reg_pair();
    let b_pair = b.reg_pair();
    let c_pair = b.reg_pair();
    b.ld_param(MemWidth::B64, in_pair, param_in);
    b.ld_param(MemWidth::B64, out_pair, param_out);
    b.iadd64(b_pair, in_pair, Operand::Imm(TILE_BYTES as i64));
    b.iadd64(c_pair, in_pair, Operand::Imm(2 * TILE_BYTES as i64));
    // Fragment register blocks (Volta sizing is the larger of the two).
    let fa = b.reg_block(tcsim_isa::fragment_regs(FragmentKind::A, shape, f16, true));
    let fb = b.reg_block(tcsim_isa::fragment_regs(FragmentKind::B, shape, f16, true));
    let fc = b.reg_block(tcsim_isa::fragment_regs(FragmentKind::C, shape, f16, true));
    let fd = b.reg_block(tcsim_isa::fragment_regs(FragmentKind::D, shape, f16, true));
    let stride = Operand::Imm(N as i64);
    b.wmma_load(
        FragmentKind::A,
        shape,
        a_layout,
        f16,
        MemSpace::Global,
        fa,
        Operand::RegPair(in_pair),
        stride,
    );
    b.wmma_load(
        FragmentKind::B,
        shape,
        b_layout,
        f16,
        MemSpace::Global,
        fb,
        Operand::RegPair(b_pair),
        stride,
    );
    b.wmma_load(
        FragmentKind::C,
        shape,
        Layout::Row,
        f16,
        MemSpace::Global,
        fc,
        Operand::RegPair(c_pair),
        stride,
    );
    b.wmma_mma(shape, a_layout, b_layout, f16, f16, f16, fd, fa, fb, fc);
    b.wmma_store(
        shape,
        Layout::Row,
        f16,
        MemSpace::Global,
        Operand::RegPair(out_pair),
        stride,
        fd,
    );
    b.exit();
    b.build()
}

/// Runs `D = A×B + C` (row-major 16×16 f16 matrices) on a fresh mini GPU
/// of `arch` with the given layout qualifiers, returning D row-major.
pub fn run_gemm_tile(
    arch: Arch,
    a_layout: Layout,
    b_layout: Layout,
    a: &[F16],
    b: &[F16],
    c: &[F16],
) -> Vec<F16> {
    assert!(a.len() == N * N && b.len() == N * N && c.len() == N * N);
    let mut gpu = Gpu::new(gpu_config(arch));
    let in_addr = gpu.alloc(3 * TILE_BYTES);
    let out_addr = gpu.alloc(TILE_BYTES);
    // The kernel loads A/B with layout qualifiers: store each operand in
    // the element order its qualifier expects (row: row-major; col:
    // col-major), so all four layout combinations see the same matrices.
    let mut bytes = Vec::with_capacity(3 * TILE_BYTES as usize);
    let push = |bytes: &mut Vec<u8>, m: &[F16], layout: Layout| {
        for maj in 0..N {
            for min in 0..N {
                let (r, cidx) = match layout {
                    Layout::Row => (maj, min),
                    Layout::Col => (min, maj),
                };
                bytes.extend_from_slice(&m[r * N + cidx].to_bits().to_le_bytes());
            }
        }
    };
    push(&mut bytes, a, a_layout);
    push(&mut bytes, b, b_layout);
    push(&mut bytes, c, Layout::Row);
    gpu.memcpy_h2d(in_addr, &bytes);
    LaunchBuilder::new(gemm_kernel(a_layout, b_layout))
        .grid(1)
        .block(32)
        .param_u64(in_addr)
        .param_u64(out_addr)
        .launch(&mut gpu);
    let out = gpu.memcpy_d2h(out_addr, TILE_BYTES as usize);
    out.chunks(2)
        .map(|p| F16::from_bits(u16::from_le_bytes([p[0], p[1]])))
        .collect()
}

/// Deterministic random f16 matrix with entries in `[-2, 2)` (no `-0.0`).
pub fn random_tile(seed: u64) -> Vec<F16> {
    let mut rng = XorShift64Star::new(seed);
    (0..N * N)
        .map(|_| {
            let v = (rng.next_f64() * 4.0 - 2.0) as f32;
            F16::from_f32(if v == 0.0 { 0.0 } else { v })
        })
        .collect()
}

fn transpose(m: &[F16]) -> Vec<F16> {
    let mut t = vec![F16::from_f32(0.0); N * N];
    for r in 0..N {
        for c in 0..N {
            t[c * N + r] = m[r * N + c];
        }
    }
    t
}

fn bits(m: &[F16]) -> Vec<u16> {
    m.iter().map(|x| x.to_bits()).collect()
}

/// `A·B + C = ((Bᵀ)·(Aᵀ) + Cᵀ)ᵀ`, bitwise, for every layout pair.
pub fn check_transpose_duality(arch: Arch, seed: u64) -> Result<(), String> {
    let a = random_tile(seed);
    let b = random_tile(seed ^ 0xB);
    let c = random_tile(seed ^ 0xC);
    for (la, lb) in [
        (Layout::Row, Layout::Row),
        (Layout::Row, Layout::Col),
        (Layout::Col, Layout::Row),
        (Layout::Col, Layout::Col),
    ] {
        let d = run_gemm_tile(arch, la, lb, &a, &b, &c);
        // Dual: swap and transpose the operands; the layouts of the dual's
        // A/B are the transposed layouts of B/A.
        let dual = run_gemm_tile(
            arch,
            lb.transposed(),
            la.transposed(),
            &transpose(&b),
            &transpose(&a),
            &transpose(&c),
        );
        if bits(&d) != bits(&transpose(&dual)) {
            return Err(format!(
                "transpose duality violated for layouts {la:?}/{lb:?}"
            ));
        }
    }
    Ok(())
}

/// `(P·A)·B + P·C = P·(A·B + C)` for a seeded row permutation `P`.
pub fn check_permutation_equivariance(arch: Arch, seed: u64) -> Result<(), String> {
    let a = random_tile(seed);
    let b = random_tile(seed ^ 0xB);
    let c = random_tile(seed ^ 0xC);
    // Seeded Fisher-Yates permutation of the 16 rows.
    let mut rng = XorShift64Star::new(seed ^ 0x9E);
    let mut perm: Vec<usize> = (0..N).collect();
    for i in (1..N).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        perm.swap(i, j);
    }
    let permute_rows = |m: &[F16]| -> Vec<F16> {
        let mut out = vec![F16::from_f32(0.0); N * N];
        for (dst, &src) in perm.iter().enumerate() {
            out[dst * N..dst * N + N].copy_from_slice(&m[src * N..src * N + N]);
        }
        out
    };
    let base = run_gemm_tile(arch, Layout::Row, Layout::Row, &a, &b, &c);
    let permuted = run_gemm_tile(
        arch,
        Layout::Row,
        Layout::Row,
        &permute_rows(&a),
        &b,
        &permute_rows(&c),
    );
    if bits(&permuted) != bits(&permute_rows(&base)) {
        return Err("row-permutation equivariance violated".into());
    }
    Ok(())
}

/// `0·B + C = C` and `I·B + 0 = B`, bitwise.
pub fn check_absorbers(arch: Arch, seed: u64) -> Result<(), String> {
    let b = random_tile(seed ^ 0xB);
    let c = random_tile(seed ^ 0xC);
    let zero = vec![F16::from_f32(0.0); N * N];
    let ident: Vec<F16> = (0..N * N)
        .map(|i| F16::from_f32(if i / N == i % N { 1.0 } else { 0.0 }))
        .collect();
    let d = run_gemm_tile(arch, Layout::Row, Layout::Row, &zero, &b, &c);
    if bits(&d) != bits(&c) {
        return Err("zero absorber violated: 0·B + C != C".into());
    }
    let d = run_gemm_tile(arch, Layout::Row, Layout::Row, &ident, &b, &zero);
    if bits(&d) != bits(&b) {
        return Err("identity violated: I·B + 0 != B".into());
    }
    Ok(())
}

/// Builds the one-warp `mma.sync` kernel for `mode`: A, B and C packed
/// densely row-major at `in` (in that order), D stored row-major to
/// `out`. Sparse modes broadcast `meta_word` into the metadata register.
fn mma_sync_kernel(mode: WmmaMode, meta_word: u32) -> Kernel {
    assert!(mode.is_mma_sync());
    let tile_bytes = |k: FragmentKind| {
        let (r, c) = k.dims(mode.frag_shape(k));
        (r * c * mode.frag_type(k).bits() / 8) as i64
    };
    let mut b = KernelBuilder::new("meta_mma_sync");
    let param_in = b.param("in", 8);
    let param_out = b.param("out", 8);
    let in_pair = b.reg_pair();
    let out_pair = b.reg_pair();
    let b_addr = b.reg_pair();
    let c_addr = b.reg_pair();
    b.ld_param(MemWidth::B64, in_pair, param_in);
    b.ld_param(MemWidth::B64, out_pair, param_out);
    let a_bytes = tile_bytes(FragmentKind::A);
    b.iadd64(b_addr, in_pair, Operand::Imm(a_bytes));
    b.iadd64(
        c_addr,
        in_pair,
        Operand::Imm(a_bytes + tile_bytes(FragmentKind::B)),
    );
    let frag = [
        FragmentKind::A,
        FragmentKind::B,
        FragmentKind::C,
        FragmentKind::D,
    ]
    .map(|k| {
        b.reg_block(fragment_regs(
            k,
            mode.frag_shape(k),
            mode.frag_type(k),
            false,
        ))
    });
    let addrs = [in_pair, b_addr, c_addr];
    for (i, kind) in [FragmentKind::A, FragmentKind::B, FragmentKind::C]
        .into_iter()
        .enumerate()
    {
        let (_, cols) = kind.dims(mode.frag_shape(kind));
        b.wmma_load(
            kind,
            mode.frag_shape(kind),
            Layout::Row,
            mode.frag_type(kind),
            MemSpace::Global,
            frag[i],
            Operand::RegPair(addrs[i]),
            Operand::Imm(cols as i64),
        );
    }
    let meta = mode.sparse.then(|| {
        let m = b.reg();
        b.mov(m, Operand::Imm(i64::from(meta_word)));
        m
    });
    b.mma_sync(
        mode.shape,
        mode.ab,
        mode.d,
        mode.c,
        mode.sparse,
        frag[3],
        frag[0],
        frag[1],
        frag[2],
        meta,
    );
    let (_, dcols) = FragmentKind::D.dims(mode.shape);
    b.wmma_store(
        mode.shape,
        Layout::Row,
        mode.d,
        MemSpace::Global,
        Operand::RegPair(out_pair),
        Operand::Imm(dcols as i64),
        frag[3],
    );
    b.exit();
    b.build()
}

/// Runs one `mma.sync` of `mode` on a fresh mini-Ampere GPU. Matrices
/// are row-major raw element bit patterns, one `u32` per element (16-bit
/// types use the low half); the returned D uses the same encoding.
pub fn run_mma_sync_tile(
    mode: WmmaMode,
    meta_word: u32,
    a: &[u32],
    b: &[u32],
    c: &[u32],
) -> Vec<u32> {
    let dims = |k: FragmentKind| k.dims(mode.frag_shape(k));
    let (ar, ac) = dims(FragmentKind::A);
    let (br, bc) = dims(FragmentKind::B);
    let (cr, cc) = dims(FragmentKind::C);
    assert!(a.len() == ar * ac && b.len() == br * bc && c.len() == cr * cc);
    let push = |bytes: &mut Vec<u8>, m: &[u32], ty: WmmaType| {
        for &e in m {
            if ty.bits() == 16 {
                bytes.extend_from_slice(&(e as u16).to_le_bytes());
            } else {
                bytes.extend_from_slice(&e.to_le_bytes());
            }
        }
    };
    let mut bytes = Vec::new();
    push(&mut bytes, a, mode.ab);
    push(&mut bytes, b, mode.ab);
    push(&mut bytes, c, mode.c);
    let mut gpu = Gpu::new(gpu_config(Arch::Ampere));
    let in_addr = gpu.alloc(bytes.len() as u64);
    let (dr, dc) = FragmentKind::D.dims(mode.shape);
    let d_bytes = dr * dc * mode.d.bits() / 8;
    let out_addr = gpu.alloc(d_bytes as u64);
    gpu.memcpy_h2d(in_addr, &bytes);
    LaunchBuilder::new(mma_sync_kernel(mode, meta_word))
        .grid(1)
        .block(32)
        .param_u64(in_addr)
        .param_u64(out_addr)
        .launch(&mut gpu);
    let out = gpu.memcpy_d2h(out_addr, d_bytes);
    if mode.d.bits() == 16 {
        out.chunks(2)
            .map(|p| u32::from(u16::from_le_bytes([p[0], p[1]])))
            .collect()
    } else {
        out.chunks(4)
            .map(|p| u32::from_le_bytes(p.try_into().unwrap()))
            .collect()
    }
}

/// Deterministic random row-major tile of raw `ty` element bits with
/// values drawn from `[-2, 2)`. F32/TF32 tiles carry full-mantissa f32
/// patterns (the device truncates TF32 operands itself).
pub fn random_bits_tile(seed: u64, n: usize, ty: WmmaType) -> Vec<u32> {
    let mut rng = XorShift64Star::new(seed);
    (0..n)
        .map(|_| {
            let v = (rng.next_f64() * 4.0 - 2.0) as f32;
            match ty {
                WmmaType::F16 => u32::from(F16::from_f32(v).to_bits()),
                WmmaType::BF16 => u32::from(Bf16::from_f32(v).to_bits()),
                WmmaType::F32 | WmmaType::TF32 => v.to_bits(),
                _ => unreachable!("unsupported metamorphic tile type {ty:?}"),
            }
        })
        .collect()
}

/// The index pairs a 2:4 metadata nibble may encode (kept positions in
/// ascending order).
const META_PAIRS: [(u32, u32); 6] = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];

/// Seeded metadata word: eight independently drawn valid nibbles (low
/// u16 covers rows 0-7, high u16 rows 8-15 under the broadcast
/// convention).
pub fn random_meta_word(seed: u64) -> u32 {
    let mut rng = XorShift64Star::new(seed);
    let mut w = 0u32;
    for g in 0..8 {
        let (i0, i1) = META_PAIRS[rng.below(META_PAIRS.len() as u64) as usize];
        w |= (i0 | (i1 << 2)) << (4 * g);
    }
    w
}

/// Host-side 2:4 expansion of a compressed 16×(k/2) A tile under a
/// broadcast metadata word: the inverse of what the sparse datapath does
/// before its FEDP pass. Dropped positions are exact `+0.0` bits.
fn expand_sparse_rows(comp: &[u32], meta_word: u32, k: usize) -> Vec<u32> {
    let half = k / 2;
    assert_eq!(comp.len(), 16 * half);
    let mut dense = vec![0u32; 16 * k];
    for r in 0..16 {
        let meta = if r < 8 {
            meta_word as u16
        } else {
            (meta_word >> 16) as u16
        };
        for g in 0..k / 4 {
            let nib = (meta >> (4 * g)) & 0xF;
            let (i0, i1) = ((nib & 3) as usize, ((nib >> 2) & 3) as usize);
            dense[r * k + 4 * g + i0] = comp[r * half + 2 * g];
            dense[r * k + 4 * g + i1] = comp[r * half + 2 * g + 1];
        }
    }
    dense
}

/// A 2:4 sparse `mma.sync` must equal the dense `mma.sync` over the
/// host-expanded A operand, bitwise, for both F16 and BF16
/// multiplicands: both sides reduce the identical dense tile with the
/// identical FEDP order, so even the rounding sequence agrees.
pub fn check_sparse_dense_equivalence(seed: u64) -> Result<(), String> {
    for ab in [WmmaType::F16, WmmaType::BF16] {
        let shape = WmmaShape::M16N8K16;
        let sparse = WmmaMode {
            shape,
            ab,
            c: WmmaType::F32,
            d: WmmaType::F32,
            sparse: true,
        };
        let dense = WmmaMode {
            sparse: false,
            ..sparse
        };
        let meta = random_meta_word(seed ^ 0x2F);
        let a = random_bits_tile(seed, 16 * 8, ab);
        let b = random_bits_tile(seed ^ 0xB, 16 * 8, ab);
        let c = random_bits_tile(seed ^ 0xC, 16 * 8, WmmaType::F32);
        let ds = run_mma_sync_tile(sparse, meta, &a, &b, &c);
        let dd = run_mma_sync_tile(dense, 0, &expand_sparse_rows(&a, meta, 16), &b, &c);
        if ds != dd {
            return Err(format!("sparse/dense equivalence violated for {ab:?}"));
        }
    }
    Ok(())
}

/// `0·B + C = C` bitwise for the BF16 and TF32 `mma.sync` modes, and
/// `(2A)·B + 0 = 2·(A·B + 0)` bitwise for BF16: multiplying by a power
/// of two shifts every product and partial sum exponent without touching
/// a mantissa, so the FEDP rounding sequence scales exactly.
pub fn check_mma_sync_scaling_and_absorbers(seed: u64) -> Result<(), String> {
    let bf16 = WmmaMode {
        shape: WmmaShape::M16N8K16,
        ab: WmmaType::BF16,
        c: WmmaType::F32,
        d: WmmaType::F32,
        sparse: false,
    };
    let a = random_bits_tile(seed, 16 * 16, WmmaType::BF16);
    let b = random_bits_tile(seed ^ 0xB, 16 * 8, WmmaType::BF16);
    let c = random_bits_tile(seed ^ 0xC, 16 * 8, WmmaType::F32);
    let zero_a = vec![0u32; 16 * 16];
    let zero_c = vec![0u32; 16 * 8];
    if run_mma_sync_tile(bf16, 0, &zero_a, &b, &c) != c {
        return Err("bf16 zero absorber violated: 0·B + C != C".into());
    }
    let d1 = run_mma_sync_tile(bf16, 0, &a, &b, &zero_c);
    let doubled: Vec<u32> = a
        .iter()
        .map(|&bits| {
            let v = Bf16::from_bits(bits as u16).to_f32() * 2.0;
            u32::from(Bf16::from_f32(v).to_bits())
        })
        .collect();
    let d2 = run_mma_sync_tile(bf16, 0, &doubled, &b, &zero_c);
    let host2: Vec<u32> = d1
        .iter()
        .map(|&e| (f32::from_bits(e) * 2.0).to_bits())
        .collect();
    if d2 != host2 {
        return Err("bf16 power-of-two scaling violated: (2A)·B != 2·(A·B)".into());
    }
    let tf32 = WmmaMode {
        shape: WmmaShape::M16N8K8,
        ab: WmmaType::TF32,
        c: WmmaType::F32,
        d: WmmaType::F32,
        sparse: false,
    };
    let b8 = random_bits_tile(seed ^ 0xB8, 8 * 8, WmmaType::F32);
    if run_mma_sync_tile(tf32, 0, &vec![0u32; 16 * 8], &b8, &c) != c {
        return Err("tf32 zero absorber violated: 0·B + C != C".into());
    }
    Ok(())
}

/// TF32 operands are truncated exactly once on the way into the FEDP
/// tree, so pre-truncating them on the host must not change any output
/// bit.
pub fn check_tf32_truncation_idempotence(seed: u64) -> Result<(), String> {
    let mode = WmmaMode {
        shape: WmmaShape::M16N8K8,
        ab: WmmaType::TF32,
        c: WmmaType::F32,
        d: WmmaType::F32,
        sparse: false,
    };
    let a = random_bits_tile(seed, 16 * 8, WmmaType::F32);
    let b = random_bits_tile(seed ^ 0xB, 8 * 8, WmmaType::F32);
    let c = random_bits_tile(seed ^ 0xC, 16 * 8, WmmaType::F32);
    // The datapath's operand conversion is `Tf32::from_bits` (mask the low
    // 13 mantissa bits), not round-to-nearest `from_f32`.
    let canon =
        |m: &[u32]| -> Vec<u32> { m.iter().map(|&e| Tf32::from_bits(e).to_bits()).collect() };
    if run_mma_sync_tile(mode, 0, &a, &b, &c)
        != run_mma_sync_tile(mode, 0, &canon(&a), &canon(&b), &c)
    {
        return Err("tf32 truncation idempotence violated".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_properties_hold_on_both_archs() {
        for arch in [Arch::Volta, Arch::Turing] {
            check_transpose_duality(arch, 1).unwrap();
            check_permutation_equivariance(arch, 2).unwrap();
            check_absorbers(arch, 3).unwrap();
        }
    }

    #[test]
    fn mma_sync_properties_hold_on_ampere() {
        check_sparse_dense_equivalence(4).unwrap();
        check_mma_sync_scaling_and_absorbers(5).unwrap();
        check_tf32_truncation_idempotence(6).unwrap();
    }
}
