//! Metamorphic GEMM properties on the full simulated GPU.
//!
//! Instead of comparing against a host model, each property relates two
//! tensor-core launches (or a launch and its own inputs) whose outputs
//! must agree **bitwise** by algebra alone:
//!
//! * **transpose duality** — `A·B = (Bᵀ·Aᵀ)ᵀ`: every output element is
//!   the same dot product with the same reduction order, so even the
//!   FEDP rounding sequence is identical;
//! * **row-permutation equivariance** — `P·(A·B) = (P·A)·B` for a row
//!   permutation `P`;
//! * **zero absorber** — `0·B + C = C` (FEDP adds exact zeros);
//! * **identity** — `I·B + 0 = B` (each dot product has exactly one
//!   exact product term).
//!
//! All four run the m16n16k16 all-FP16 mode, the one shape/type mode
//! shared by Volta and Turing.

use crate::gen::Arch;
use crate::oracle::gpu_config;
use crate::rng::XorShift64Star;
use tcsim_f16::F16;
use tcsim_isa::{
    FragmentKind, Kernel, KernelBuilder, Layout, MemSpace, MemWidth, Operand, WmmaShape, WmmaType,
};
use tcsim_sim::{Gpu, LaunchBuilder};

/// Tile edge of the m16n16k16 mode.
pub const N: usize = 16;
const TILE_BYTES: u64 = (N * N * 2) as u64;

/// Builds the one-warp kernel `D = A×B + C` over 16×16 f16 tiles at
/// `in+0` (A), `in+512` (B), `in+1024` (C), storing D row-major to `out`.
fn gemm_kernel(a_layout: Layout, b_layout: Layout) -> Kernel {
    let shape = WmmaShape::M16N16K16;
    let f16 = WmmaType::F16;
    let mut b = KernelBuilder::new("meta_gemm");
    let param_in = b.param("in", 8);
    let param_out = b.param("out", 8);
    let in_pair = b.reg_pair();
    let out_pair = b.reg_pair();
    let b_pair = b.reg_pair();
    let c_pair = b.reg_pair();
    b.ld_param(MemWidth::B64, in_pair, param_in);
    b.ld_param(MemWidth::B64, out_pair, param_out);
    b.iadd64(b_pair, in_pair, Operand::Imm(TILE_BYTES as i64));
    b.iadd64(c_pair, in_pair, Operand::Imm(2 * TILE_BYTES as i64));
    // Fragment register blocks (Volta sizing is the larger of the two).
    let fa = b.reg_block(tcsim_isa::fragment_regs(FragmentKind::A, shape, f16, true));
    let fb = b.reg_block(tcsim_isa::fragment_regs(FragmentKind::B, shape, f16, true));
    let fc = b.reg_block(tcsim_isa::fragment_regs(FragmentKind::C, shape, f16, true));
    let fd = b.reg_block(tcsim_isa::fragment_regs(FragmentKind::D, shape, f16, true));
    let stride = Operand::Imm(N as i64);
    b.wmma_load(FragmentKind::A, shape, a_layout, f16, MemSpace::Global, fa, Operand::RegPair(in_pair), stride);
    b.wmma_load(FragmentKind::B, shape, b_layout, f16, MemSpace::Global, fb, Operand::RegPair(b_pair), stride);
    b.wmma_load(FragmentKind::C, shape, Layout::Row, f16, MemSpace::Global, fc, Operand::RegPair(c_pair), stride);
    b.wmma_mma(shape, a_layout, b_layout, f16, f16, f16, fd, fa, fb, fc);
    b.wmma_store(shape, Layout::Row, f16, MemSpace::Global, Operand::RegPair(out_pair), stride, fd);
    b.exit();
    b.build()
}

/// Runs `D = A×B + C` (row-major 16×16 f16 matrices) on a fresh mini GPU
/// of `arch` with the given layout qualifiers, returning D row-major.
pub fn run_gemm_tile(
    arch: Arch,
    a_layout: Layout,
    b_layout: Layout,
    a: &[F16],
    b: &[F16],
    c: &[F16],
) -> Vec<F16> {
    assert!(a.len() == N * N && b.len() == N * N && c.len() == N * N);
    let mut gpu = Gpu::new(gpu_config(arch));
    let in_addr = gpu.alloc(3 * TILE_BYTES);
    let out_addr = gpu.alloc(TILE_BYTES);
    // The kernel loads A/B with layout qualifiers: store each operand in
    // the element order its qualifier expects (row: row-major; col:
    // col-major), so all four layout combinations see the same matrices.
    let mut bytes = Vec::with_capacity(3 * TILE_BYTES as usize);
    let push = |bytes: &mut Vec<u8>, m: &[F16], layout: Layout| {
        for maj in 0..N {
            for min in 0..N {
                let (r, cidx) = match layout {
                    Layout::Row => (maj, min),
                    Layout::Col => (min, maj),
                };
                bytes.extend_from_slice(&m[r * N + cidx].to_bits().to_le_bytes());
            }
        }
    };
    push(&mut bytes, a, a_layout);
    push(&mut bytes, b, b_layout);
    push(&mut bytes, c, Layout::Row);
    gpu.memcpy_h2d(in_addr, &bytes);
    LaunchBuilder::new(gemm_kernel(a_layout, b_layout))
        .grid(1)
        .block(32)
        .param_u64(in_addr)
        .param_u64(out_addr)
        .launch(&mut gpu);
    let out = gpu.memcpy_d2h(out_addr, TILE_BYTES as usize);
    out.chunks(2)
        .map(|p| F16::from_bits(u16::from_le_bytes([p[0], p[1]])))
        .collect()
}

/// Deterministic random f16 matrix with entries in `[-2, 2)` (no `-0.0`).
pub fn random_tile(seed: u64) -> Vec<F16> {
    let mut rng = XorShift64Star::new(seed);
    (0..N * N)
        .map(|_| {
            let v = (rng.next_f64() * 4.0 - 2.0) as f32;
            F16::from_f32(if v == 0.0 { 0.0 } else { v })
        })
        .collect()
}

fn transpose(m: &[F16]) -> Vec<F16> {
    let mut t = vec![F16::from_f32(0.0); N * N];
    for r in 0..N {
        for c in 0..N {
            t[c * N + r] = m[r * N + c];
        }
    }
    t
}

fn bits(m: &[F16]) -> Vec<u16> {
    m.iter().map(|x| x.to_bits()).collect()
}

/// `A·B + C = ((Bᵀ)·(Aᵀ) + Cᵀ)ᵀ`, bitwise, for every layout pair.
pub fn check_transpose_duality(arch: Arch, seed: u64) -> Result<(), String> {
    let a = random_tile(seed);
    let b = random_tile(seed ^ 0xB);
    let c = random_tile(seed ^ 0xC);
    for (la, lb) in [
        (Layout::Row, Layout::Row),
        (Layout::Row, Layout::Col),
        (Layout::Col, Layout::Row),
        (Layout::Col, Layout::Col),
    ] {
        let d = run_gemm_tile(arch, la, lb, &a, &b, &c);
        // Dual: swap and transpose the operands; the layouts of the dual's
        // A/B are the transposed layouts of B/A.
        let dual =
            run_gemm_tile(arch, lb.transposed(), la.transposed(), &transpose(&b), &transpose(&a), &transpose(&c));
        if bits(&d) != bits(&transpose(&dual)) {
            return Err(format!("transpose duality violated for layouts {la:?}/{lb:?}"));
        }
    }
    Ok(())
}

/// `(P·A)·B + P·C = P·(A·B + C)` for a seeded row permutation `P`.
pub fn check_permutation_equivariance(arch: Arch, seed: u64) -> Result<(), String> {
    let a = random_tile(seed);
    let b = random_tile(seed ^ 0xB);
    let c = random_tile(seed ^ 0xC);
    // Seeded Fisher-Yates permutation of the 16 rows.
    let mut rng = XorShift64Star::new(seed ^ 0x9E);
    let mut perm: Vec<usize> = (0..N).collect();
    for i in (1..N).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        perm.swap(i, j);
    }
    let permute_rows = |m: &[F16]| -> Vec<F16> {
        let mut out = vec![F16::from_f32(0.0); N * N];
        for (dst, &src) in perm.iter().enumerate() {
            out[dst * N..dst * N + N].copy_from_slice(&m[src * N..src * N + N]);
        }
        out
    };
    let base = run_gemm_tile(arch, Layout::Row, Layout::Row, &a, &b, &c);
    let permuted = run_gemm_tile(arch, Layout::Row, Layout::Row, &permute_rows(&a), &b, &permute_rows(&c));
    if bits(&permuted) != bits(&permute_rows(&base)) {
        return Err("row-permutation equivariance violated".into());
    }
    Ok(())
}

/// `0·B + C = C` and `I·B + 0 = B`, bitwise.
pub fn check_absorbers(arch: Arch, seed: u64) -> Result<(), String> {
    let b = random_tile(seed ^ 0xB);
    let c = random_tile(seed ^ 0xC);
    let zero = vec![F16::from_f32(0.0); N * N];
    let ident: Vec<F16> = (0..N * N)
        .map(|i| F16::from_f32(if i / N == i % N { 1.0 } else { 0.0 }))
        .collect();
    let d = run_gemm_tile(arch, Layout::Row, Layout::Row, &zero, &b, &c);
    if bits(&d) != bits(&c) {
        return Err("zero absorber violated: 0·B + C != C".into());
    }
    let d = run_gemm_tile(arch, Layout::Row, Layout::Row, &ident, &b, &zero);
    if bits(&d) != bits(&b) {
        return Err("identity violated: I·B + 0 != B".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_properties_hold_on_both_archs() {
        for arch in [Arch::Volta, Arch::Turing] {
            check_transpose_duality(arch, 1).unwrap();
            check_permutation_equivariance(arch, 2).unwrap();
            check_absorbers(arch, 3).unwrap();
        }
    }
}
