//! tcsim-check: differential fuzzing and conformance subsystem.
//!
//! Random oracle-safe kernel generation ([`gen`]), a device-vs-reference
//! differential oracle ([`oracle`]), timing invariants ([`invariants`]),
//! metamorphic GEMM properties ([`metamorphic`]), a failure minimizer
//! ([`shrink`]) and an on-disk corpus format ([`corpus`]), driven by the
//! `tcsim-fuzz` binary and the workspace test suite.

#![forbid(unsafe_code)]
pub mod corpus;
pub mod gen;
pub mod invariants;
pub mod metamorphic;
pub mod mutate;
pub mod oracle;
pub mod rng;
pub mod shrink;
