//! Seeded random kernel generator over the simulator's PTX subset.
//!
//! A generated program is a [`GenProgram`]: a launch shape plus a tree of
//! [`GenOp`]s drawn from a small, *oracle-safe* grammar. Oracle-safe means
//! the program's observable output (the `out` buffer) is a deterministic
//! function of the `in` buffer regardless of warp scheduling order, so the
//! same program can be run on the full timing [`Gpu`](tcsim_sim::Gpu) and
//! on the host reference interpreter and the results compared bit-for-bit:
//!
//! - global loads only read the immutable `in` buffer (addresses are
//!   masked into bounds at assembly time);
//! - plain global stores only write thread-private output slots
//!   (`gtid * OUT_SLOTS + slot`);
//! - cross-thread global communication goes through atomics restricted to
//!   commutative-associative ops (`add`/`min`/`max`) whose old-value
//!   destination is a write-only sink register;
//! - shared memory is carved into per-warp private slices;
//! - control flow is structured: divergence only through `If` regions with
//!   explicit reconvergence, loops with uniform trip counts;
//! - `%clock` is never emitted.
//!
//! WMMA programs additionally load A/B/C fragments, chain `wmma.mma`s and
//! store D, covering every layout/shape/type mode `tcsim-isa` accepts for
//! the target architecture.
//!
//! The grammar is intentionally index-based (virtual register pool indices,
//! not concrete `Reg`s): any subsequence of a program body is still a valid
//! program, which is what makes the shrinker in [`crate::shrink`] simple.

use crate::rng::XorShift64Star;
use tcsim_isa::{
    fragment_regs, mma_sync_a_shape, FragmentKind, Layout, TensorGen, WmmaDirective, WmmaShape,
    WmmaType,
};
use tcsim_isa::{
    AtomOp, CmpOp, DataType, Instr, Kernel, KernelBuilder, MemSpace, MemWidth, Op, Operand,
    PredReg, Reg, ShflMode, SpecialReg,
};

/// Number of 32-bit virtual pool registers a program computes with.
pub const POOL: usize = 6;
/// Number of predicate registers the grammar references.
pub const PREDS: usize = 4;
/// Private output words per thread (`out[gtid*OUT_SLOTS ..][..OUT_SLOTS]`).
pub const OUT_SLOTS: u32 = 8;
/// Words in the shared atomic accumulator region at the end of `out`:
/// three disjoint 16-word windows, one per atomic op kind (`add`, `min`,
/// `max`). Each window only ever sees a single commutative-associative
/// op, so the final memory state is independent of the order in which
/// warps and CTAs interleave — mixing op kinds on one address would be
/// order-dependent and break the oracle.
pub const ATOM_WORDS: u32 = 48;
/// Words per atomic window (one window per op kind).
pub const ATOM_WINDOW_WORDS: u32 = 16;
/// Words in each warp's private shared-memory slice.
pub const SHARED_SLICE_WORDS: u32 = 64;
/// Words in the `in` buffer of a SIMT-only program (power of two).
pub const SIMT_IN_WORDS: u32 = 256;
/// Words in the `in`/tile area of a WMMA program (power of two).
pub const WMMA_IN_WORDS: u32 = 1024;
/// Words in the general output area of a WMMA program (tile store target).
pub const WMMA_OUT_WORDS: u32 = 1024;

/// Simulated architecture a program targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Arch {
    /// Volta-style SM (double-loaded A/B fragments, FP16 modes only).
    Volta,
    /// Turing-style SM (integer modes, extra shapes).
    Turing,
    /// Ampere-style SM (Turing modes plus per-instruction `mma.sync`
    /// tiles, BF16/TF32 multiplicands and 2:4 structured sparsity).
    Ampere,
}

impl Arch {
    /// `true` for Turing-or-later (single-loaded fragments, integer and
    /// extra-shape warp modes).
    pub fn turing(self) -> bool {
        self != Arch::Volta
    }

    /// The tensor-core generation of this architecture.
    pub fn tensor_gen(self) -> TensorGen {
        match self {
            Arch::Volta => TensorGen::Volta,
            Arch::Turing => TensorGen::Turing,
            Arch::Ampere => TensorGen::Ampere,
        }
    }

    /// Qualifier spelling used in corpus headers.
    pub fn qualifier(self) -> &'static str {
        match self {
            Arch::Volta => "volta",
            Arch::Turing => "turing",
            Arch::Ampere => "ampere",
        }
    }

    /// Parses the corpus-header spelling.
    pub fn from_qualifier(s: &str) -> Option<Arch> {
        match s {
            "volta" => Some(Arch::Volta),
            "turing" => Some(Arch::Turing),
            "ampere" => Some(Arch::Ampere),
            _ => None,
        }
    }
}

/// A fully qualified WMMA mode: shape plus the three element types.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WmmaMode {
    /// Tile shape.
    pub shape: WmmaShape,
    /// A/B multiplicand type.
    pub ab: WmmaType,
    /// C accumulator type.
    pub c: WmmaType,
    /// D result type.
    pub d: WmmaType,
    /// 2:4 structured sparsity on the A operand (`mma.sp.sync`, Ampere).
    pub sparse: bool,
}

impl WmmaMode {
    /// Whether this is an integer (Turing inference) mode.
    pub fn integer(self) -> bool {
        self.ab.bits() <= 8 && self.ab != WmmaType::F16
    }

    /// Whether this mode uses the per-instruction `mma.sync` tiles.
    pub fn is_mma_sync(self) -> bool {
        self.shape.is_mma_sync()
    }

    /// The shape a `frag` operand of this mode is loaded at: the A operand
    /// of a sparse mode is stored compressed (half the K extent), every
    /// other fragment uses the full shape.
    pub fn frag_shape(self, frag: FragmentKind) -> WmmaShape {
        if frag == FragmentKind::A {
            mma_sync_a_shape(self.shape, self.sparse)
        } else {
            self.shape
        }
    }

    /// The element type of a `frag` operand of this mode.
    pub fn frag_type(self, frag: FragmentKind) -> WmmaType {
        match frag {
            FragmentKind::A | FragmentKind::B => self.ab,
            FragmentKind::C => self.c,
            FragmentKind::D => self.d,
        }
    }

    /// The `wmma.mma` / `mma.sync` directive for this mode. `mma.sync`
    /// tiles are fixed `row.col`; the given layouts apply to warp-scope
    /// WMMA only.
    pub fn mma_directive(self, a_layout: Layout, b_layout: Layout) -> WmmaDirective {
        if self.is_mma_sync() {
            WmmaDirective::MmaSync {
                shape: self.shape,
                ab_type: self.ab,
                d_type: self.d,
                c_type: self.c,
                sparse: self.sparse,
            }
        } else {
            WmmaDirective::Mma {
                shape: self.shape,
                a_layout,
                b_layout,
                ab_type: self.ab,
                d_type: self.d,
                c_type: self.c,
            }
        }
    }
}

/// Every WMMA mode that is architecturally valid on `arch`, in a fixed
/// deterministic order (used both by the generator and the mode-coverage
/// test).
pub fn wmma_modes(arch: Arch) -> Vec<WmmaMode> {
    let mut modes = Vec::new();
    let f16_shapes: &[WmmaShape] = if arch.turing() {
        &[
            WmmaShape::M16N16K16,
            WmmaShape::M32N8K16,
            WmmaShape::M8N32K16,
        ]
    } else {
        &[WmmaShape::M16N16K16]
    };
    for &shape in f16_shapes {
        for c in [WmmaType::F16, WmmaType::F32] {
            for d in [WmmaType::F16, WmmaType::F32] {
                modes.push(WmmaMode {
                    shape,
                    ab: WmmaType::F16,
                    c,
                    d,
                    sparse: false,
                });
            }
        }
    }
    if arch.turing() {
        for ab in [WmmaType::S8, WmmaType::U8] {
            for &shape in &[
                WmmaShape::M16N16K16,
                WmmaShape::M32N8K16,
                WmmaShape::M8N32K16,
            ] {
                modes.push(WmmaMode {
                    shape,
                    ab,
                    c: WmmaType::S32,
                    d: WmmaType::S32,
                    sparse: false,
                });
            }
        }
        for ab in [WmmaType::S4, WmmaType::U4] {
            modes.push(WmmaMode {
                shape: WmmaShape::M8N8K32,
                ab,
                c: WmmaType::S32,
                d: WmmaType::S32,
                sparse: false,
            });
        }
    }
    if arch == Arch::Ampere {
        // Dense FP16 mma.sync: both tiles, all four accumulator combos.
        for shape in [WmmaShape::M16N8K8, WmmaShape::M16N8K16] {
            for c in [WmmaType::F16, WmmaType::F32] {
                for d in [WmmaType::F16, WmmaType::F32] {
                    modes.push(WmmaMode {
                        shape,
                        ab: WmmaType::F16,
                        c,
                        d,
                        sparse: false,
                    });
                }
            }
        }
        // BF16 (FP32 accumulate only) on both tiles; TF32 only on k8.
        for shape in [WmmaShape::M16N8K8, WmmaShape::M16N8K16] {
            modes.push(WmmaMode {
                shape,
                ab: WmmaType::BF16,
                c: WmmaType::F32,
                d: WmmaType::F32,
                sparse: false,
            });
        }
        modes.push(WmmaMode {
            shape: WmmaShape::M16N8K8,
            ab: WmmaType::TF32,
            c: WmmaType::F32,
            d: WmmaType::F32,
            sparse: false,
        });
        // 2:4 sparse m16n8k16: FP16 with all accumulator combos, BF16/FP32.
        for c in [WmmaType::F16, WmmaType::F32] {
            for d in [WmmaType::F16, WmmaType::F32] {
                modes.push(WmmaMode {
                    shape: WmmaShape::M16N8K16,
                    ab: WmmaType::F16,
                    c,
                    d,
                    sparse: true,
                });
            }
        }
        modes.push(WmmaMode {
            shape: WmmaShape::M16N8K16,
            ab: WmmaType::BF16,
            c: WmmaType::F32,
            d: WmmaType::F32,
            sparse: true,
        });
    }
    debug_assert!(modes.iter().all(|m| m
        .mma_directive(Layout::Row, Layout::Col)
        .is_valid_on(arch.tensor_gen())));
    modes
}

/// A value source in the grammar: a pool register or a small immediate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Src {
    /// Pool register `v[i]` (index taken modulo [`POOL`]).
    V(u8),
    /// Immediate.
    Imm(i32),
}

/// Optional guard predicate `(pool pred index, sense)`.
pub type Guard = Option<(u8, bool)>;

/// Two-operand integer ALU forms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AluKind {
    /// `iadd`.
    Add,
    /// `isub`.
    Sub,
    /// `imul` (low half).
    Mul,
    /// `imin` (signed).
    Min,
    /// `imax` (signed).
    Max,
    /// `shl` (shift counts are masked to 0..31 at assembly).
    Shl,
    /// `shr` (logical).
    Shr,
    /// `sar` (arithmetic).
    Sar,
    /// `and`.
    And,
    /// `or`.
    Or,
    /// `xor`.
    Xor,
    /// `not` (unary; the `b` operand is ignored).
    Not,
}

/// Two-operand FP32 ALU forms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FAluKind {
    /// `fadd`.
    Add,
    /// `fmul`.
    Mul,
    /// `fmin`.
    Min,
    /// `fmax`.
    Max,
}

/// Single-operand FP32 MUFU forms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MufuKind {
    /// `rcp`.
    Rcp,
    /// `sqrt`.
    Sqrt,
    /// `ex2`.
    Ex2,
    /// `lg2`.
    Lg2,
}

/// Packed-half ALU forms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HAluKind {
    /// `hadd2`.
    Add2,
    /// `hmul2`.
    Mul2,
}

/// One operation of the generator grammar.
///
/// All register references are *virtual pool indices*; the assembler maps
/// them onto concrete registers and inserts the addressing scaffolding, so
/// removing any subset of ops still yields a well-formed kernel.
#[derive(Clone, Debug, PartialEq)]
pub enum GenOp {
    /// Integer ALU: `v[dst] ← kind(v[a], b)`.
    Alu {
        /// Operation.
        kind: AluKind,
        /// Destination pool index.
        dst: u8,
        /// First source pool index.
        a: u8,
        /// Second source.
        b: Src,
        /// Guard predicate.
        guard: Guard,
    },
    /// `v[dst] ← v[a]*b + c`.
    IMad {
        /// Destination pool index.
        dst: u8,
        /// Multiplicand pool index.
        a: u8,
        /// Multiplier.
        b: Src,
        /// Addend.
        c: Src,
        /// Guard predicate.
        guard: Guard,
    },
    /// FP32 ALU: `v[dst] ← kind(v[a], v[b])` on raw register bits.
    FAlu {
        /// Operation.
        kind: FAluKind,
        /// Destination pool index.
        dst: u8,
        /// First source pool index.
        a: u8,
        /// Second source pool index.
        b: u8,
        /// Guard predicate.
        guard: Guard,
    },
    /// FP32 fused multiply-add `v[dst] ← v[a]*v[b] + v[c]`.
    FFma {
        /// Destination pool index.
        dst: u8,
        /// Multiplicand pool index.
        a: u8,
        /// Multiplier pool index.
        b: u8,
        /// Addend pool index.
        c: u8,
        /// Guard predicate.
        guard: Guard,
    },
    /// FP32 MUFU `v[dst] ← kind(v[a])`.
    Mufu {
        /// Operation.
        kind: MufuKind,
        /// Destination pool index.
        dst: u8,
        /// Source pool index.
        a: u8,
        /// Guard predicate.
        guard: Guard,
    },
    /// Packed-half ALU `v[dst] ← kind(v[a], v[b])` per half-lane.
    HAlu {
        /// Operation.
        kind: HAluKind,
        /// Destination pool index.
        dst: u8,
        /// First source pool index.
        a: u8,
        /// Second source pool index.
        b: u8,
        /// Guard predicate.
        guard: Guard,
    },
    /// Packed-half FMA `v[dst] ← v[a]*v[b] + v[c]` per half-lane.
    HFma2 {
        /// Destination pool index.
        dst: u8,
        /// Multiplicand pool index.
        a: u8,
        /// Multiplier pool index.
        b: u8,
        /// Addend pool index.
        c: u8,
        /// Guard predicate.
        guard: Guard,
    },
    /// `cvt.f16.f32`: `v[dst] ← f16bits(f32(v[a]))`.
    CvtToF16 {
        /// Destination pool index.
        dst: u8,
        /// Source pool index.
        a: u8,
        /// Guard predicate.
        guard: Guard,
    },
    /// `cvt.f32.f16`: `v[dst] ← f32bits(f16(v[a] & 0xffff))`.
    CvtToF32 {
        /// Destination pool index.
        dst: u8,
        /// Source pool index.
        a: u8,
        /// Guard predicate.
        guard: Guard,
    },
    /// `setp`: `p[p] ← v[a] <cmp> b` (signed 32-bit compare).
    Setp {
        /// Destination predicate index.
        p: u8,
        /// Comparison.
        cmp: CmpOp,
        /// First source pool index.
        a: u8,
        /// Second source.
        b: Src,
    },
    /// `selp`: `v[dst] ← p[p] ? v[a] : b`.
    Selp {
        /// Destination pool index.
        dst: u8,
        /// Predicate index.
        p: u8,
        /// Taken source pool index.
        a: u8,
        /// Else source.
        b: Src,
        /// Guard predicate.
        guard: Guard,
    },
    /// Warp shuffle `v[dst] ← shfl(mode, v[a], b)`.
    Shfl {
        /// Lane-selection mode.
        mode: ShflMode,
        /// Destination pool index.
        dst: u8,
        /// Source pool index.
        a: u8,
        /// Lane delta / index (masked to 0..31 by the executor).
        b: u8,
    },
    /// Global load from the read-only `in` buffer:
    /// `v[dst] ← in[v[addr] mod in_words]`.
    LdIn {
        /// Destination pool index.
        dst: u8,
        /// Address pool index.
        addr: u8,
        /// Guard predicate.
        guard: Guard,
    },
    /// Shared load from the warp's private slice.
    LdShared {
        /// Destination pool index.
        dst: u8,
        /// Address pool index.
        addr: u8,
        /// Guard predicate.
        guard: Guard,
    },
    /// Shared store to the warp's private slice.
    StShared {
        /// Address pool index.
        addr: u8,
        /// Value pool index.
        val: u8,
        /// Guard predicate.
        guard: Guard,
    },
    /// Global store to this thread's private slot:
    /// `out[gtid*OUT_SLOTS + slot] ← v[val]`.
    StOut {
        /// Output slot (taken modulo [`OUT_SLOTS`]).
        slot: u8,
        /// Value pool index.
        val: u8,
        /// Guard predicate.
        guard: Guard,
    },
    /// Commutative atomic on the op kind's private window of the shared
    /// accumulator region: `atom.op out_atom[window(op) + v[addr] mod 16],
    /// v[val]` (old value discarded into a sink register).
    AtomOut {
        /// Combine op (only `Add`/`Min`/`Max`: order-independent).
        op: AtomOp,
        /// Address pool index.
        addr: u8,
        /// Value pool index.
        val: u8,
        /// Guard predicate.
        guard: Guard,
    },
    /// CTA-wide barrier (top level only, never guarded).
    Bar,
    /// Structured divergent region: lanes where `p[p] == sense` execute
    /// `body`, with reconvergence at the end.
    If {
        /// Controlling predicate index.
        p: u8,
        /// Sense: body runs for lanes whose predicate equals this.
        sense: bool,
        /// Straight-line body.
        body: Vec<GenOp>,
    },
    /// Uniform counted loop: `body` runs `trips` times.
    Loop {
        /// Trip count (≥ 1; taken modulo 8 then clamped at assembly).
        trips: u8,
        /// Loop body (no nested loops).
        body: Vec<GenOp>,
    },
    /// `wmma.load` of one fragment from the `in` buffer.
    WLoad {
        /// Which fragment.
        frag: FragmentKind,
        /// Memory layout.
        layout: Layout,
        /// Byte offset into `in`, 16-byte aligned (clamped at assembly).
        off: u32,
        /// Extra leading-dimension padding in elements (0 or 8).
        pad: u32,
    },
    /// `wmma.mma`: `d ← a×b + (acc_d ? d : c)`.
    WMma {
        /// Layout qualifier for A.
        a_layout: Layout,
        /// Layout qualifier for B.
        b_layout: Layout,
        /// Accumulate onto the previous D instead of C.
        acc_d: bool,
    },
    /// `wmma.store.d` to the `out` buffer.
    WStore {
        /// Memory layout.
        layout: Layout,
        /// Byte offset into `out` (0 or 2048; clamped at assembly).
        off: u32,
        /// Extra leading-dimension padding in elements (0 or 8).
        pad: u32,
    },
}

/// A complete generated program: launch shape + grammar body.
#[derive(Clone, Debug)]
pub struct GenProgram {
    /// Kernel name (also the corpus case name).
    pub name: String,
    /// Target architecture.
    pub arch: Arch,
    /// Grid width in CTAs (x only).
    pub grid_x: u32,
    /// CTA width in threads (multiple of 32).
    pub block_x: u32,
    /// WMMA mode, when the body contains WMMA ops.
    pub wmma: Option<WmmaMode>,
    /// The operation tree.
    pub body: Vec<GenOp>,
}

impl GenProgram {
    /// Total threads in the launch.
    pub fn threads(&self) -> u32 {
        self.grid_x * self.block_x
    }

    /// Size of the read-only input buffer in 32-bit words (power of two).
    pub fn in_words(&self) -> u32 {
        if self.wmma.is_some() {
            WMMA_IN_WORDS
        } else {
            SIMT_IN_WORDS
        }
    }

    /// Size of the general (non-atomic) output area in words.
    pub fn out_general_words(&self) -> u32 {
        let slots = self.threads() * OUT_SLOTS;
        if self.wmma.is_some() {
            slots.max(WMMA_OUT_WORDS)
        } else {
            slots
        }
    }

    /// Total output-buffer size in words (general area + atomic region).
    pub fn out_words(&self) -> u32 {
        self.out_general_words() + ATOM_WORDS
    }

    /// Total grammar ops, counting structured bodies recursively.
    pub fn op_count(&self) -> usize {
        fn count(ops: &[GenOp]) -> usize {
            ops.iter()
                .map(|op| match op {
                    GenOp::If { body, .. } | GenOp::Loop { body, .. } => 1 + count(body),
                    _ => 1,
                })
                .sum()
        }
        count(&self.body)
    }
}

/// What kind of program to generate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KindSel {
    /// Mix of SIMT-only and WMMA programs, alternating by seed.
    Auto,
    /// SIMT-only (no tensor-core ops).
    Simt,
    /// WMMA program in any valid mode.
    Wmma,
    /// WMMA program restricted to all-FP16 modes (A/B/C/D all `f16`) —
    /// the modes where the planted FEDP rounding mutation is observable
    /// above `gemm_tolerance`.
    WmmaF16Acc,
    /// `mma.sync` program restricted to BF16 multiplicand modes (forces
    /// `Arch::Ampere`) — the modes where the planted `Bf16ChopMantissa`
    /// mutation is observable.
    WmmaBf16,
    /// `mma.sp.sync` program restricted to 2:4 sparse modes (forces
    /// `Arch::Ampere`) — the modes where `SparseMetaSwap` is observable.
    WmmaSparse,
}

/// Generator tunables.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Upper bound on grammar ops in the body (the `--max-insts` knob).
    pub max_ops: usize,
    /// Program-kind selection.
    pub kind: KindSel,
    /// Force a target architecture (`None` draws Volta/Turing from the
    /// seed, preserving the legacy RNG stream). The BF16/sparse kinds
    /// override this with [`Arch::Ampere`].
    pub arch: Option<Arch>,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            max_ops: 24,
            kind: KindSel::Auto,
            arch: None,
        }
    }
}

/// Generates a random program from a seed. The same `(seed, cfg)` always
/// produces the same program.
pub fn generate(seed: u64, cfg: &GenConfig) -> GenProgram {
    let mut rng = XorShift64Star::new(seed);
    // Always consume the arch draw so forcing an arch does not perturb
    // the rest of the seed's stream relative to the legacy generator.
    let drawn = if rng.chance(1, 2) {
        Arch::Volta
    } else {
        Arch::Turing
    };
    let arch = match cfg.kind {
        KindSel::WmmaBf16 | KindSel::WmmaSparse => Arch::Ampere,
        _ => cfg.arch.unwrap_or(drawn),
    };
    let wmma = match cfg.kind {
        KindSel::Simt => false,
        KindSel::Wmma | KindSel::WmmaF16Acc | KindSel::WmmaBf16 | KindSel::WmmaSparse => true,
        KindSel::Auto => rng.chance(1, 3),
    };
    if wmma {
        generate_wmma(seed, arch, cfg, &mut rng)
    } else {
        generate_simt(seed, arch, cfg, &mut rng)
    }
}

fn gen_guard(rng: &mut XorShift64Star) -> Guard {
    if rng.chance(1, 4) {
        Some((rng.below(PREDS as u64) as u8, rng.chance(1, 2)))
    } else {
        None
    }
}

fn gen_src(rng: &mut XorShift64Star) -> Src {
    if rng.chance(1, 3) {
        Src::Imm(rng.range_i64(-64, 64) as i32)
    } else {
        Src::V(rng.below(POOL as u64) as u8)
    }
}

/// One straight-line (non-structured) op.
fn gen_straight(rng: &mut XorShift64Star, allow_shared: bool) -> GenOp {
    let v = |rng: &mut XorShift64Star| rng.below(POOL as u64) as u8;
    loop {
        let roll = rng.below(16);
        let op = match roll {
            0..=2 => {
                let kind = *rng.pick(&[
                    AluKind::Add,
                    AluKind::Sub,
                    AluKind::Mul,
                    AluKind::Min,
                    AluKind::Max,
                    AluKind::Shl,
                    AluKind::Shr,
                    AluKind::Sar,
                    AluKind::And,
                    AluKind::Or,
                    AluKind::Xor,
                    AluKind::Not,
                ]);
                GenOp::Alu {
                    kind,
                    dst: v(rng),
                    a: v(rng),
                    b: gen_src(rng),
                    guard: gen_guard(rng),
                }
            }
            3 => GenOp::IMad {
                dst: v(rng),
                a: v(rng),
                b: gen_src(rng),
                c: gen_src(rng),
                guard: gen_guard(rng),
            },
            4 => {
                let kind = *rng.pick(&[FAluKind::Add, FAluKind::Mul, FAluKind::Min, FAluKind::Max]);
                GenOp::FAlu {
                    kind,
                    dst: v(rng),
                    a: v(rng),
                    b: v(rng),
                    guard: gen_guard(rng),
                }
            }
            5 => GenOp::FFma {
                dst: v(rng),
                a: v(rng),
                b: v(rng),
                c: v(rng),
                guard: gen_guard(rng),
            },
            6 => {
                let kind =
                    *rng.pick(&[MufuKind::Rcp, MufuKind::Sqrt, MufuKind::Ex2, MufuKind::Lg2]);
                GenOp::Mufu {
                    kind,
                    dst: v(rng),
                    a: v(rng),
                    guard: gen_guard(rng),
                }
            }
            7 => {
                if rng.chance(1, 2) {
                    let kind = *rng.pick(&[HAluKind::Add2, HAluKind::Mul2]);
                    GenOp::HAlu {
                        kind,
                        dst: v(rng),
                        a: v(rng),
                        b: v(rng),
                        guard: gen_guard(rng),
                    }
                } else {
                    GenOp::HFma2 {
                        dst: v(rng),
                        a: v(rng),
                        b: v(rng),
                        c: v(rng),
                        guard: gen_guard(rng),
                    }
                }
            }
            8 => {
                if rng.chance(1, 2) {
                    GenOp::CvtToF16 {
                        dst: v(rng),
                        a: v(rng),
                        guard: gen_guard(rng),
                    }
                } else {
                    GenOp::CvtToF32 {
                        dst: v(rng),
                        a: v(rng),
                        guard: gen_guard(rng),
                    }
                }
            }
            9 => GenOp::Setp {
                p: rng.below(PREDS as u64) as u8,
                cmp: *rng.pick(&[
                    CmpOp::Eq,
                    CmpOp::Ne,
                    CmpOp::Lt,
                    CmpOp::Le,
                    CmpOp::Gt,
                    CmpOp::Ge,
                ]),
                a: v(rng),
                b: gen_src(rng),
            },
            10 => GenOp::Selp {
                dst: v(rng),
                p: rng.below(PREDS as u64) as u8,
                a: v(rng),
                b: gen_src(rng),
                guard: gen_guard(rng),
            },
            11 => GenOp::Shfl {
                mode: *rng.pick(&[ShflMode::Down, ShflMode::Up, ShflMode::Bfly, ShflMode::Idx]),
                dst: v(rng),
                a: v(rng),
                b: rng.below(32) as u8,
            },
            12 => GenOp::LdIn {
                dst: v(rng),
                addr: v(rng),
                guard: gen_guard(rng),
            },
            13 if allow_shared => {
                if rng.chance(1, 2) {
                    GenOp::LdShared {
                        dst: v(rng),
                        addr: v(rng),
                        guard: gen_guard(rng),
                    }
                } else {
                    GenOp::StShared {
                        addr: v(rng),
                        val: v(rng),
                        guard: gen_guard(rng),
                    }
                }
            }
            14 => GenOp::StOut {
                slot: rng.below(OUT_SLOTS as u64) as u8,
                val: v(rng),
                guard: gen_guard(rng),
            },
            15 => GenOp::AtomOut {
                op: *rng.pick(&[AtomOp::Add, AtomOp::Min, AtomOp::Max]),
                addr: v(rng),
                val: v(rng),
                guard: gen_guard(rng),
            },
            _ => continue,
        };
        return op;
    }
}

fn gen_straight_block(rng: &mut XorShift64Star, n: usize, allow_shared: bool) -> Vec<GenOp> {
    (0..n).map(|_| gen_straight(rng, allow_shared)).collect()
}

fn gen_simt_body(rng: &mut XorShift64Star, budget: usize) -> Vec<GenOp> {
    let mut body = Vec::new();
    // Seed the predicates with a data-dependent compare so guards and If
    // regions exercise real divergence, not the all-zero reset state.
    body.push(GenOp::Setp {
        p: 0,
        cmp: CmpOp::Lt,
        a: 0,
        b: Src::Imm(rng.range_i64(-32, 32) as i32),
    });
    let mut used = 1usize;
    while used < budget {
        let roll = rng.below(10);
        if roll == 0 && used + 2 <= budget {
            // Divergent If region.
            let n = 1 + rng.below(3.min((budget - used - 1) as u64).max(1)) as usize;
            let op = GenOp::If {
                p: rng.below(PREDS as u64) as u8,
                sense: rng.chance(1, 2),
                body: gen_straight_block(rng, n, true),
            };
            used += 1 + n;
            body.push(op);
        } else if roll == 1 && used + 2 <= budget {
            // Uniform counted loop; body may itself contain an If.
            let n = 1 + rng.below(3.min((budget - used - 1) as u64).max(1)) as usize;
            let mut inner = gen_straight_block(rng, n.saturating_sub(1), true);
            if inner.len() < n {
                if rng.chance(1, 2) && n >= 2 {
                    inner.push(GenOp::If {
                        p: rng.below(PREDS as u64) as u8,
                        sense: rng.chance(1, 2),
                        body: gen_straight_block(rng, 1, true),
                    });
                } else {
                    inner.push(gen_straight(rng, true));
                }
            }
            let trips = 2 + rng.below(3) as u8;
            used += 1 + inner.len();
            body.push(GenOp::Loop { trips, body: inner });
        } else if roll == 2 {
            used += 1;
            body.push(GenOp::Bar);
        } else {
            used += 1;
            body.push(gen_straight(rng, true));
        }
    }
    // Epilogue: observe the whole pool (kept in the shrinkable body so the
    // minimizer can drop stores that don't matter for a failure).
    for i in 0..POOL {
        body.push(GenOp::StOut {
            slot: i as u8,
            val: i as u8,
            guard: None,
        });
    }
    body
}

fn generate_simt(seed: u64, arch: Arch, cfg: &GenConfig, rng: &mut XorShift64Star) -> GenProgram {
    let grid_x = 1 + rng.below(2) as u32;
    let block_x = 32 * (1 + rng.below(2) as u32);
    let budget = cfg.max_ops.max(4);
    GenProgram {
        name: format!("fz_{seed:016x}"),
        arch,
        grid_x,
        block_x,
        wmma: None,
        body: gen_simt_body(rng, budget),
    }
}

/// Picks a 16-byte-aligned load offset that keeps the whole fragment span
/// inside the `in` area. `span_bytes` must already account for padding.
fn gen_tile_off(rng: &mut XorShift64Star, area_bytes: u32, span_bytes: u32) -> u32 {
    let room = area_bytes.saturating_sub(span_bytes);
    16 * rng.below(u64::from(room / 16) + 1) as u32
}

/// Byte span of a `rows×cols` operand under `layout` with leading-dimension
/// padding `pad` (elements) and `bits`-bit elements.
pub fn tile_span_bytes(rows: usize, cols: usize, layout: Layout, pad: u32, bits: usize) -> u32 {
    let (major, minor) = match layout {
        Layout::Row => (rows, cols),
        Layout::Col => (cols, rows),
    };
    let stride = minor + pad as usize;
    let elems = (major - 1) * stride + minor;
    ((elems * bits).div_ceil(8)) as u32
}

/// Leading-dimension stride in elements for a fragment under `layout`.
pub fn tile_stride(rows: usize, cols: usize, layout: Layout, pad: u32) -> u32 {
    (match layout {
        Layout::Row => cols,
        Layout::Col => rows,
    }) as u32
        + pad
}

fn gen_wload(rng: &mut XorShift64Star, mode: WmmaMode, frag: FragmentKind) -> GenOp {
    let ty = mode.frag_type(frag);
    // Sub-byte (int4) A/B fragments only exist k-major — A row, B col —
    // as in PTX; any other layout has rows that straddle byte boundaries.
    let layout = if ty.bits() < 8 {
        if frag == FragmentKind::A {
            Layout::Row
        } else {
            Layout::Col
        }
    } else if rng.chance(1, 2) {
        Layout::Row
    } else {
        Layout::Col
    };
    let pad = if ty.bits() >= 8 && rng.chance(1, 3) {
        8
    } else {
        0
    };
    let (rows, cols) = frag.dims(mode.frag_shape(frag));
    let span = tile_span_bytes(rows, cols, layout, pad, ty.bits());
    let off = gen_tile_off(rng, WMMA_IN_WORDS * 4, span);
    GenOp::WLoad {
        frag,
        layout,
        off,
        pad,
    }
}

fn generate_wmma(seed: u64, arch: Arch, cfg: &GenConfig, rng: &mut XorShift64Star) -> GenProgram {
    let modes = wmma_modes(arch);
    let modes: Vec<WmmaMode> = match cfg.kind {
        KindSel::WmmaF16Acc => modes
            .into_iter()
            .filter(|m| m.ab == WmmaType::F16 && m.c == WmmaType::F16 && m.d == WmmaType::F16)
            .collect(),
        KindSel::WmmaBf16 => modes
            .into_iter()
            .filter(|m| m.ab == WmmaType::BF16)
            .collect(),
        KindSel::WmmaSparse => modes.into_iter().filter(|m| m.sparse).collect(),
        _ => modes,
    };
    let mode = *rng.pick(&modes);
    let mut body = Vec::new();
    body.push(gen_wload(rng, mode, FragmentKind::A));
    body.push(gen_wload(rng, mode, FragmentKind::B));
    body.push(gen_wload(rng, mode, FragmentKind::C));
    let rounds = 1 + rng.below(3);
    for round in 0..rounds {
        if round > 0 && rng.chance(1, 2) {
            let frag = *rng.pick(&[FragmentKind::A, FragmentKind::B]);
            body.push(gen_wload(rng, mode, frag));
        }
        // Interleave a few scalar ops so the tensor pipe races the SIMT
        // pipes through the scoreboard.
        if rng.chance(1, 2) {
            body.push(gen_straight(rng, false));
        }
        let sub_byte = mode.ab.bits() < 8;
        body.push(GenOp::WMma {
            a_layout: if sub_byte || rng.chance(1, 2) {
                Layout::Row
            } else {
                Layout::Col
            },
            b_layout: if !sub_byte && rng.chance(1, 2) {
                Layout::Row
            } else {
                Layout::Col
            },
            acc_d: round > 0 && rng.chance(1, 2),
        });
    }
    let store_layout = if rng.chance(1, 2) {
        Layout::Row
    } else {
        Layout::Col
    };
    let store_pad = if rng.chance(1, 3) { 8 } else { 0 };
    body.push(GenOp::WStore {
        layout: store_layout,
        off: if rng.chance(1, 2) { 2048 } else { 0 },
        pad: store_pad,
    });
    // Observe any pool registers the scalar sprinkle wrote.
    let mut wrote = [false; POOL];
    scan_pool_writes(&body, &mut wrote);
    for (i, w) in wrote.iter().enumerate() {
        if *w {
            body.push(GenOp::StOut {
                slot: i as u8,
                val: i as u8,
                guard: None,
            });
        }
    }
    GenProgram {
        name: format!("fz_{seed:016x}"),
        arch,
        grid_x: 1,
        block_x: 32,
        wmma: Some(mode),
        body,
    }
}

fn scan_pool_writes(ops: &[GenOp], wrote: &mut [bool; POOL]) {
    for op in ops {
        match op {
            GenOp::Alu { dst, .. }
            | GenOp::IMad { dst, .. }
            | GenOp::FAlu { dst, .. }
            | GenOp::FFma { dst, .. }
            | GenOp::Mufu { dst, .. }
            | GenOp::HAlu { dst, .. }
            | GenOp::HFma2 { dst, .. }
            | GenOp::CvtToF16 { dst, .. }
            | GenOp::CvtToF32 { dst, .. }
            | GenOp::Selp { dst, .. }
            | GenOp::Shfl { dst, .. }
            | GenOp::LdIn { dst, .. }
            | GenOp::LdShared { dst, .. } => wrote[*dst as usize % POOL] = true,
            GenOp::If { body, .. } | GenOp::Loop { body, .. } => scan_pool_writes(body, wrote),
            _ => {}
        }
    }
}

/// Which assembly scaffolding a body requires.
#[derive(Default)]
struct Usage {
    pool: [bool; POOL],
    gtid: bool,
    shared: bool,
    atom: bool,
    in_buf: bool,
    out_buf: bool,
    any_loop: bool,
    frags: [bool; 4],
}

fn scan_usage(ops: &[GenOp], u: &mut Usage) {
    let pool = |i: u8, u: &mut Usage| u.pool[i as usize % POOL] = true;
    for op in ops {
        match op {
            GenOp::Alu { dst, a, b, .. } => {
                pool(*dst, u);
                pool(*a, u);
                if let Src::V(i) = b {
                    pool(*i, u);
                }
            }
            GenOp::IMad { dst, a, b, c, .. } => {
                pool(*dst, u);
                pool(*a, u);
                for s in [b, c] {
                    if let Src::V(i) = s {
                        pool(*i, u);
                    }
                }
            }
            GenOp::FAlu { dst, a, b, .. } | GenOp::HAlu { dst, a, b, .. } => {
                pool(*dst, u);
                pool(*a, u);
                pool(*b, u);
            }
            GenOp::FFma { dst, a, b, c, .. } | GenOp::HFma2 { dst, a, b, c, .. } => {
                pool(*dst, u);
                pool(*a, u);
                pool(*b, u);
                pool(*c, u);
            }
            GenOp::Mufu { dst, a, .. }
            | GenOp::CvtToF16 { dst, a, .. }
            | GenOp::CvtToF32 { dst, a, .. }
            | GenOp::Shfl { dst, a, .. } => {
                pool(*dst, u);
                pool(*a, u);
            }
            GenOp::Setp { a, b, .. } => {
                pool(*a, u);
                if let Src::V(i) = b {
                    pool(*i, u);
                }
            }
            GenOp::Selp { dst, a, b, .. } => {
                pool(*dst, u);
                pool(*a, u);
                if let Src::V(i) = b {
                    pool(*i, u);
                }
            }
            GenOp::LdIn { dst, addr, .. } => {
                pool(*dst, u);
                pool(*addr, u);
                u.in_buf = true;
            }
            GenOp::LdShared { dst, addr, .. } => {
                pool(*dst, u);
                pool(*addr, u);
                u.shared = true;
            }
            GenOp::StShared { addr, val, .. } => {
                pool(*addr, u);
                pool(*val, u);
                u.shared = true;
            }
            GenOp::StOut { val, .. } => {
                pool(*val, u);
                u.gtid = true;
                u.out_buf = true;
            }
            GenOp::AtomOut { addr, val, .. } => {
                pool(*addr, u);
                pool(*val, u);
                u.atom = true;
                u.out_buf = true;
            }
            GenOp::Bar => {}
            GenOp::If { body, .. } => scan_usage(body, u),
            GenOp::Loop { body, .. } => {
                u.any_loop = true;
                scan_usage(body, u);
            }
            GenOp::WLoad { frag, .. } => {
                u.frags[*frag as usize] = true;
                u.in_buf = true;
            }
            GenOp::WMma { acc_d, .. } => {
                u.frags[FragmentKind::A as usize] = true;
                u.frags[FragmentKind::B as usize] = true;
                u.frags[FragmentKind::D as usize] = true;
                if !acc_d {
                    u.frags[FragmentKind::C as usize] = true;
                }
            }
            GenOp::WStore { .. } => {
                u.frags[FragmentKind::D as usize] = true;
                u.out_buf = true;
            }
        }
    }
    // Any pool register in play needs a per-thread seed, which needs gtid.
    if u.pool.iter().any(|&p| p) {
        u.gtid = true;
    }
}

/// Concrete registers the assembler hands to body emission.
struct Asm {
    in_pair: Reg,
    out_pair: Reg,
    gtid: Reg,
    pool: [Reg; POOL],
    preds: [PredReg; PREDS],
    s1: Reg,
    addr_pair: Reg,
    sink: Reg,
    sbase: Reg,
    loop_pred: PredReg,
    ctr: Reg,
    frag: [Reg; 4],
    meta: Reg,
    in_mask: i64,
    atom_base: i64,
    mode: Option<WmmaMode>,
}

impl Asm {
    fn v(&self, i: u8) -> Reg {
        self.pool[i as usize % POOL]
    }

    fn p(&self, i: u8) -> PredReg {
        self.preds[i as usize % PREDS]
    }

    fn src(&self, s: Src) -> Operand {
        match s {
            Src::V(i) => Operand::Reg(self.v(i)),
            Src::Imm(k) => Operand::Imm(i64::from(k)),
        }
    }

    fn guard(&self, g: Guard) -> Option<(PredReg, bool)> {
        g.map(|(i, sense)| (self.p(i), sense))
    }
}

/// Pool-seeding multipliers/offsets: arbitrary odd constants so every
/// thread starts from distinct, well-mixed register values.
const POOL_MUL: [i64; POOL] = [0x9E39, 0x85EB, 0xC2B3, 0x27D5, 0x1657, 0x2545];
const POOL_ADD: [i64; POOL] = [7, 0x1234, 0x0BAD, 0x0C0DE, 0x51, 0x7F4A];

/// The fixed 2:4 sparsity metadata word every lane's metadata register is
/// seeded with. Low half (rows 0–7): kept pairs `(0,1) (1,2) (2,3) (0,3)`
/// per 4-wide group; high half (rows 8–15): `(0,2) (1,3) (0,1) (2,3)`.
/// All eight nibbles are valid (`i0 < i1`) and collectively exercise every
/// index position, so a metadata-handling defect perturbs some output.
pub const SPARSE_META_WORD: u32 = 0xE4D8_CE94;

/// Assembles a generated program into an executable [`Kernel`].
///
/// The produced kernel takes two `u64` parameters, `in` and `out`, in that
/// order. Only scaffolding actually required by the body is emitted, so a
/// shrunk program assembles to a minimal kernel.
pub fn assemble(p: &GenProgram) -> Kernel {
    let mut b = KernelBuilder::new(&p.name);
    let param_in = b.param_u64("in");
    let param_out = b.param_u64("out");

    let mut usage = Usage::default();
    scan_usage(&p.body, &mut usage);

    let in_pair = b.reg_pair();
    let out_pair = b.reg_pair();
    let gtid = b.reg();
    let s1 = b.reg();
    let addr_pair = b.reg_pair();
    let sink = b.reg();
    let sbase = b.reg();
    let ctr = b.reg();
    let mut pool = [Reg(0); POOL];
    for r in pool.iter_mut() {
        *r = b.reg();
    }
    let mut preds = [PredReg(0); PREDS];
    for pr in preds.iter_mut() {
        *pr = b.pred();
    }
    let loop_pred = b.pred();

    let volta = p.arch == Arch::Volta;
    let mut frag = [Reg(0); 4];
    let mut meta = Reg(0);
    if let Some(mode) = p.wmma {
        for (i, kind) in [
            FragmentKind::A,
            FragmentKind::B,
            FragmentKind::C,
            FragmentKind::D,
        ]
        .into_iter()
        .enumerate()
        {
            let n = fragment_regs(kind, mode.frag_shape(kind), mode.frag_type(kind), volta);
            frag[i] = b.reg_block(n);
        }
        if mode.sparse {
            meta = b.reg();
        }
    }

    if usage.shared {
        let warps = p.block_x.div_ceil(32);
        b.shared_alloc(warps * SHARED_SLICE_WORDS * 4);
    }

    let asm = Asm {
        in_pair,
        out_pair,
        gtid,
        pool,
        preds,
        s1,
        addr_pair,
        sink,
        sbase,
        loop_pred,
        ctr,
        frag,
        meta,
        in_mask: i64::from(p.in_words() - 1),
        atom_base: i64::from(p.out_general_words()) * 4,
        mode: p.wmma,
    };

    // Prologue: only what the body needs.
    if usage.in_buf {
        b.ld_param(MemWidth::B64, in_pair, param_in);
    }
    if usage.out_buf {
        b.ld_param(MemWidth::B64, out_pair, param_out);
    }
    if usage.gtid {
        b.mov(gtid, Operand::Special(SpecialReg::TidX));
        if p.grid_x > 1 {
            b.mov(s1, Operand::Special(SpecialReg::CtaIdX));
            b.imad(
                gtid,
                s1,
                Operand::Imm(i64::from(p.block_x)),
                Operand::Reg(gtid),
            );
        }
    }
    for i in 0..POOL {
        if usage.pool[i] {
            b.imad(
                pool[i],
                gtid,
                Operand::Imm(POOL_MUL[i]),
                Operand::Imm(POOL_ADD[i]),
            );
        }
    }
    if usage.shared {
        b.mov(s1, Operand::Special(SpecialReg::WarpId));
        b.imul(sbase, s1, Operand::Imm(i64::from(SHARED_SLICE_WORDS * 4)));
    }
    if p.wmma.is_some_and(|m| m.sparse) {
        b.mov(meta, Operand::Imm(i64::from(SPARSE_META_WORD)));
    }

    emit_body(&mut b, &p.body, &asm);
    b.exit();
    b.build()
}

fn emit_guarded(b: &mut KernelBuilder, instr: Instr, guard: Option<(PredReg, bool)>) {
    let i = b.emit(instr);
    i.guard = guard;
}

fn emit_body(b: &mut KernelBuilder, ops: &[GenOp], asm: &Asm) {
    for op in ops {
        emit_op(b, op, asm);
    }
}

#[allow(clippy::too_many_lines)]
fn emit_op(b: &mut KernelBuilder, op: &GenOp, asm: &Asm) {
    match op {
        GenOp::Alu {
            kind,
            dst,
            a,
            b: src,
            guard,
        } => {
            let (o, unary) = match kind {
                AluKind::Add => (Op::IAdd, false),
                AluKind::Sub => (Op::ISub, false),
                AluKind::Mul => (Op::IMul, false),
                AluKind::Min => (Op::IMin, false),
                AluKind::Max => (Op::IMax, false),
                AluKind::Shl => (Op::Shl, false),
                AluKind::Shr => (Op::Shr, false),
                AluKind::Sar => (Op::Sar, false),
                AluKind::And => (Op::And, false),
                AluKind::Or => (Op::Or, false),
                AluKind::Xor => (Op::Xor, false),
                AluKind::Not => (Op::Not, true),
            };
            let srcs = if unary {
                vec![Operand::Reg(asm.v(*a))]
            } else {
                vec![Operand::Reg(asm.v(*a)), asm.src(*src)]
            };
            emit_guarded(
                b,
                Instr::new(o).with_dst(asm.v(*dst)).with_srcs(srcs),
                asm.guard(*guard),
            );
        }
        GenOp::IMad {
            dst,
            a,
            b: bb,
            c,
            guard,
        } => emit_guarded(
            b,
            Instr::new(Op::IMad).with_dst(asm.v(*dst)).with_srcs(vec![
                Operand::Reg(asm.v(*a)),
                asm.src(*bb),
                asm.src(*c),
            ]),
            asm.guard(*guard),
        ),
        GenOp::FAlu {
            kind,
            dst,
            a,
            b: bb,
            guard,
        } => {
            let o = match kind {
                FAluKind::Add => Op::FAdd,
                FAluKind::Mul => Op::FMul,
                FAluKind::Min => Op::FMin,
                FAluKind::Max => Op::FMax,
            };
            emit_guarded(
                b,
                Instr::new(o)
                    .with_dst(asm.v(*dst))
                    .with_srcs(vec![Operand::Reg(asm.v(*a)), Operand::Reg(asm.v(*bb))]),
                asm.guard(*guard),
            );
        }
        GenOp::FFma {
            dst,
            a,
            b: bb,
            c,
            guard,
        } => emit_guarded(
            b,
            Instr::new(Op::FFma).with_dst(asm.v(*dst)).with_srcs(vec![
                Operand::Reg(asm.v(*a)),
                Operand::Reg(asm.v(*bb)),
                Operand::Reg(asm.v(*c)),
            ]),
            asm.guard(*guard),
        ),
        GenOp::Mufu {
            kind,
            dst,
            a,
            guard,
        } => {
            let o = match kind {
                MufuKind::Rcp => Op::FRcp,
                MufuKind::Sqrt => Op::FSqrt,
                MufuKind::Ex2 => Op::FEx2,
                MufuKind::Lg2 => Op::FLg2,
            };
            emit_guarded(
                b,
                Instr::new(o)
                    .with_dst(asm.v(*dst))
                    .with_srcs(vec![Operand::Reg(asm.v(*a))]),
                asm.guard(*guard),
            );
        }
        GenOp::HAlu {
            kind,
            dst,
            a,
            b: bb,
            guard,
        } => {
            let o = match kind {
                HAluKind::Add2 => Op::HAdd2,
                HAluKind::Mul2 => Op::HMul2,
            };
            emit_guarded(
                b,
                Instr::new(o)
                    .with_dst(asm.v(*dst))
                    .with_srcs(vec![Operand::Reg(asm.v(*a)), Operand::Reg(asm.v(*bb))]),
                asm.guard(*guard),
            );
        }
        GenOp::HFma2 {
            dst,
            a,
            b: bb,
            c,
            guard,
        } => emit_guarded(
            b,
            Instr::new(Op::HFma2).with_dst(asm.v(*dst)).with_srcs(vec![
                Operand::Reg(asm.v(*a)),
                Operand::Reg(asm.v(*bb)),
                Operand::Reg(asm.v(*c)),
            ]),
            asm.guard(*guard),
        ),
        GenOp::CvtToF16 { dst, a, guard } => emit_guarded(
            b,
            Instr::new(Op::Cvt {
                from: DataType::F32,
                to: DataType::F16,
            })
            .with_dst(asm.v(*dst))
            .with_srcs(vec![Operand::Reg(asm.v(*a))]),
            asm.guard(*guard),
        ),
        GenOp::CvtToF32 { dst, a, guard } => emit_guarded(
            b,
            Instr::new(Op::Cvt {
                from: DataType::F16,
                to: DataType::F32,
            })
            .with_dst(asm.v(*dst))
            .with_srcs(vec![Operand::Reg(asm.v(*a))]),
            asm.guard(*guard),
        ),
        GenOp::Setp {
            p: pd,
            cmp,
            a,
            b: bb,
        } => {
            b.setp(asm.p(*pd), *cmp, DataType::S32, asm.v(*a), asm.src(*bb));
        }
        GenOp::Selp {
            dst,
            p: pp,
            a,
            b: bb,
            guard,
        } => emit_guarded(
            b,
            Instr::new(Op::SelP).with_dst(asm.v(*dst)).with_srcs(vec![
                Operand::Pred(asm.p(*pp)),
                Operand::Reg(asm.v(*a)),
                asm.src(*bb),
            ]),
            asm.guard(*guard),
        ),
        GenOp::Shfl {
            mode,
            dst,
            a,
            b: bb,
        } => {
            b.shfl(*mode, asm.v(*dst), asm.v(*a), Operand::Imm(i64::from(*bb)));
        }
        GenOp::LdIn { dst, addr, guard } => {
            // s1 = (v[addr] & mask); addr_pair = in + 4*s1; dst = [addr_pair]
            b.and(asm.s1, asm.v(*addr), Operand::Imm(asm.in_mask));
            b.imad_wide(asm.addr_pair, asm.s1, Operand::Imm(4), asm.in_pair);
            emit_guarded(
                b,
                Instr::new(Op::Ld {
                    space: MemSpace::Global,
                    width: MemWidth::B32,
                })
                .with_dst(asm.v(*dst))
                .with_srcs(vec![Operand::RegPair(asm.addr_pair), Operand::Imm(0)]),
                asm.guard(*guard),
            );
        }
        GenOp::LdShared { dst, addr, guard } => {
            b.and(
                asm.s1,
                asm.v(*addr),
                Operand::Imm(i64::from(SHARED_SLICE_WORDS - 1)),
            );
            b.imad(asm.s1, asm.s1, Operand::Imm(4), Operand::Reg(asm.sbase));
            emit_guarded(
                b,
                Instr::new(Op::Ld {
                    space: MemSpace::Shared,
                    width: MemWidth::B32,
                })
                .with_dst(asm.v(*dst))
                .with_srcs(vec![Operand::Reg(asm.s1), Operand::Imm(0)]),
                asm.guard(*guard),
            );
        }
        GenOp::StShared { addr, val, guard } => {
            b.and(
                asm.s1,
                asm.v(*addr),
                Operand::Imm(i64::from(SHARED_SLICE_WORDS - 1)),
            );
            b.imad(asm.s1, asm.s1, Operand::Imm(4), Operand::Reg(asm.sbase));
            emit_guarded(
                b,
                Instr::new(Op::St {
                    space: MemSpace::Shared,
                    width: MemWidth::B32,
                })
                .with_srcs(vec![
                    Operand::Reg(asm.s1),
                    Operand::Imm(0),
                    Operand::Reg(asm.v(*val)),
                ]),
                asm.guard(*guard),
            );
        }
        GenOp::StOut { slot, val, guard } => {
            let slot = i64::from(*slot % OUT_SLOTS as u8);
            b.imad(
                asm.s1,
                asm.gtid,
                Operand::Imm(i64::from(OUT_SLOTS)),
                Operand::Imm(slot),
            );
            b.imad_wide(asm.addr_pair, asm.s1, Operand::Imm(4), asm.out_pair);
            emit_guarded(
                b,
                Instr::new(Op::St {
                    space: MemSpace::Global,
                    width: MemWidth::B32,
                })
                .with_srcs(vec![
                    Operand::RegPair(asm.addr_pair),
                    Operand::Imm(0),
                    Operand::Reg(asm.v(*val)),
                ]),
                asm.guard(*guard),
            );
        }
        GenOp::AtomOut {
            op,
            addr,
            val,
            guard,
        } => {
            let window = match op {
                AtomOp::Add => 0,
                AtomOp::Min => 1,
                AtomOp::Max => 2,
                AtomOp::Exch => unreachable!("Exch is not order-independent"),
            };
            b.and(
                asm.s1,
                asm.v(*addr),
                Operand::Imm(i64::from(ATOM_WINDOW_WORDS - 1)),
            );
            b.imad_wide(asm.addr_pair, asm.s1, Operand::Imm(4), asm.out_pair);
            emit_guarded(
                b,
                Instr::new(Op::Atom {
                    space: MemSpace::Global,
                    op: *op,
                })
                .with_dst(asm.sink)
                .with_srcs(vec![
                    Operand::RegPair(asm.addr_pair),
                    Operand::Imm(asm.atom_base + i64::from(window * ATOM_WINDOW_WORDS * 4)),
                    Operand::Reg(asm.v(*val)),
                ]),
                asm.guard(*guard),
            );
        }
        GenOp::Bar => b.bar(),
        GenOp::If { p: pp, sense, body } => {
            let end = b.label();
            // Lanes whose predicate is the *opposite* sense jump to the
            // reconvergence point; the rest fall into the body.
            b.bra_div(asm.p(*pp), !sense, end, end);
            emit_body(b, body, asm);
            b.place(end);
        }
        GenOp::Loop { trips, body } => {
            let trips = i64::from((*trips % 8).max(1));
            b.mov(asm.ctr, Operand::Imm(0));
            let top = b.label();
            b.place(top);
            emit_body(b, body, asm);
            b.iadd(asm.ctr, asm.ctr, Operand::Imm(1));
            b.setp(
                asm.loop_pred,
                CmpOp::Lt,
                DataType::S32,
                asm.ctr,
                Operand::Imm(trips),
            );
            b.bra_if(asm.loop_pred, true, top);
        }
        GenOp::WLoad {
            frag,
            layout,
            off,
            pad,
        } => {
            let mode = asm.mode.expect("WLoad in a program without a wmma mode");
            let ty = mode.frag_type(*frag);
            let (rows, cols) = frag.dims(mode.frag_shape(*frag));
            let span = tile_span_bytes(rows, cols, *layout, *pad, ty.bits());
            let off = i64::from((*off / 16) * 16).min(i64::from(WMMA_IN_WORDS * 4 - span));
            let addr = if off == 0 {
                Operand::RegPair(asm.in_pair)
            } else {
                b.iadd64(asm.addr_pair, asm.in_pair, Operand::Imm(off));
                Operand::RegPair(asm.addr_pair)
            };
            let stride = tile_stride(rows, cols, *layout, *pad);
            b.wmma_load(
                *frag,
                mode.frag_shape(*frag),
                *layout,
                ty,
                MemSpace::Global,
                asm.frag[*frag as usize],
                addr,
                Operand::Imm(i64::from(stride)),
            );
        }
        GenOp::WMma {
            a_layout,
            b_layout,
            acc_d,
        } => {
            let mode = asm.mode.expect("WMma in a program without a wmma mode");
            let c = if *acc_d && mode.c == mode.d {
                asm.frag[FragmentKind::D as usize]
            } else {
                asm.frag[FragmentKind::C as usize]
            };
            if mode.is_mma_sync() {
                b.mma_sync(
                    mode.shape,
                    mode.ab,
                    mode.d,
                    mode.c,
                    mode.sparse,
                    asm.frag[FragmentKind::D as usize],
                    asm.frag[FragmentKind::A as usize],
                    asm.frag[FragmentKind::B as usize],
                    c,
                    mode.sparse.then_some(asm.meta),
                );
            } else {
                b.wmma_mma(
                    mode.shape,
                    *a_layout,
                    *b_layout,
                    mode.ab,
                    mode.d,
                    mode.c,
                    asm.frag[FragmentKind::D as usize],
                    asm.frag[FragmentKind::A as usize],
                    asm.frag[FragmentKind::B as usize],
                    c,
                );
            }
        }
        GenOp::WStore { layout, off, pad } => {
            let mode = asm.mode.expect("WStore in a program without a wmma mode");
            let (rows, cols) = FragmentKind::D.dims(mode.shape);
            let span = tile_span_bytes(rows, cols, *layout, *pad, mode.d.bits());
            let off = i64::from((*off / 16) * 16)
                .min(i64::from(WMMA_OUT_WORDS * 4).saturating_sub(i64::from(span)));
            let addr = if off == 0 {
                Operand::RegPair(asm.out_pair)
            } else {
                b.iadd64(asm.addr_pair, asm.out_pair, Operand::Imm(off));
                Operand::RegPair(asm.addr_pair)
            };
            let stride = tile_stride(rows, cols, *layout, *pad);
            b.wmma_store(
                mode.shape,
                *layout,
                mode.d,
                MemSpace::Global,
                addr,
                Operand::Imm(i64::from(stride)),
                asm.frag[FragmentKind::D as usize],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        for seed in 0..32 {
            let a = generate(seed, &cfg);
            let b = generate(seed, &cfg);
            assert_eq!(a.body, b.body, "seed {seed}");
            assert_eq!(a.arch, b.arch);
            let ka = assemble(&a);
            let kb = assemble(&b);
            assert_eq!(ka.instrs().len(), kb.instrs().len());
        }
    }

    #[test]
    fn every_wmma_mode_is_valid_and_reachable() {
        assert_eq!(wmma_modes(Arch::Volta).len(), 4);
        // Turing: 3 shapes × 4 f16 acc combos + 2×3 int8 + 2 int4.
        assert_eq!(wmma_modes(Arch::Turing).len(), 20);
        // Ampere: Turing's 20 + 8 dense f16 mma.sync + 2 BF16 + 1 TF32
        // + 4 sparse f16 + 1 sparse BF16.
        assert_eq!(wmma_modes(Arch::Ampere).len(), 36);
        for arch in [Arch::Volta, Arch::Turing, Arch::Ampere] {
            for mode in wmma_modes(arch) {
                assert!(
                    mode.mma_directive(Layout::Row, Layout::Col)
                        .is_valid_on(arch.tensor_gen()),
                    "{mode:?} invalid on {arch:?}"
                );
            }
        }
    }

    #[test]
    fn ampere_mode_list_extends_turing() {
        let turing = wmma_modes(Arch::Turing);
        let ampere = wmma_modes(Arch::Ampere);
        assert_eq!(&ampere[..turing.len()], &turing[..]);
        assert!(ampere[turing.len()..].iter().all(|m| m.is_mma_sync()));
        assert!(ampere.iter().filter(|m| m.sparse).count() == 5);
    }

    #[test]
    fn wmma_programs_cover_all_modes_over_seeds() {
        let cfg = GenConfig {
            max_ops: 24,
            kind: KindSel::Wmma,
            arch: None,
        };
        let mut seen = std::collections::HashSet::new();
        for seed in 0..4000u64 {
            let p = generate(seed, &cfg);
            let m = p.wmma.expect("wmma kind");
            seen.insert((p.arch.turing(), format!("{:?}", m)));
        }
        let total = wmma_modes(Arch::Volta).len() + wmma_modes(Arch::Turing).len();
        assert_eq!(seen.len(), total, "some WMMA mode never generated");
    }

    #[test]
    fn ampere_wmma_programs_cover_all_modes_over_seeds() {
        let cfg = GenConfig {
            max_ops: 24,
            kind: KindSel::Wmma,
            arch: Some(Arch::Ampere),
        };
        let mut seen = std::collections::HashSet::new();
        for seed in 0..8000u64 {
            let p = generate(seed, &cfg);
            assert_eq!(p.arch, Arch::Ampere);
            seen.insert(format!("{:?}", p.wmma.expect("wmma kind")));
        }
        assert_eq!(
            seen.len(),
            wmma_modes(Arch::Ampere).len(),
            "some Ampere mode never generated"
        );
    }

    #[test]
    fn restricted_kinds_pick_only_matching_modes() {
        for seed in 0..200u64 {
            let p = generate(
                seed,
                &GenConfig {
                    kind: KindSel::WmmaBf16,
                    ..GenConfig::default()
                },
            );
            assert_eq!(p.arch, Arch::Ampere);
            assert_eq!(p.wmma.unwrap().ab, WmmaType::BF16, "seed {seed}");
            let p = generate(
                seed,
                &GenConfig {
                    kind: KindSel::WmmaSparse,
                    ..GenConfig::default()
                },
            );
            assert_eq!(p.arch, Arch::Ampere);
            assert!(p.wmma.unwrap().sparse, "seed {seed}");
        }
    }

    #[test]
    fn forced_arch_preserves_the_seed_body_stream() {
        // Forcing the drawn architecture must not change the program body:
        // the arch draw is always consumed.
        for seed in 0..64u64 {
            let base = generate(seed, &GenConfig::default());
            let forced = generate(
                seed,
                &GenConfig {
                    arch: Some(base.arch),
                    ..GenConfig::default()
                },
            );
            assert_eq!(base.body, forced.body, "seed {seed}");
        }
    }

    #[test]
    fn assembled_kernels_declare_two_params() {
        let cfg = GenConfig::default();
        for seed in 0..64 {
            let p = generate(seed, &cfg);
            let k = assemble(&p);
            assert_eq!(k.params().len(), 2, "seed {seed}");
            assert_eq!(k.param_bytes(), 16);
            assert!(!k.instrs().is_empty());
        }
    }

    #[test]
    fn minimal_wmma_program_assembles_small() {
        // The shrinker's target: a bare load/load/load/mma/store chain with
        // zero offsets must stay within the 10-instruction minimization
        // budget (2 param loads + 3 wmma loads + mma + store + exit = 8).
        let mode = WmmaMode {
            shape: WmmaShape::M16N16K16,
            ab: WmmaType::F16,
            c: WmmaType::F16,
            d: WmmaType::F16,
            sparse: false,
        };
        let p = GenProgram {
            name: "min".into(),
            arch: Arch::Volta,
            grid_x: 1,
            block_x: 32,
            wmma: Some(mode),
            body: vec![
                GenOp::WLoad {
                    frag: FragmentKind::A,
                    layout: Layout::Row,
                    off: 0,
                    pad: 0,
                },
                GenOp::WLoad {
                    frag: FragmentKind::B,
                    layout: Layout::Row,
                    off: 0,
                    pad: 0,
                },
                GenOp::WLoad {
                    frag: FragmentKind::C,
                    layout: Layout::Row,
                    off: 0,
                    pad: 0,
                },
                GenOp::WMma {
                    a_layout: Layout::Row,
                    b_layout: Layout::Row,
                    acc_d: false,
                },
                GenOp::WStore {
                    layout: Layout::Row,
                    off: 0,
                    pad: 0,
                },
            ],
        };
        let k = assemble(&p);
        assert!(k.instrs().len() <= 10, "got {} instrs", k.instrs().len());
    }
}
