//! On-disk corpus of minimized differential cases.
//!
//! Every failure the fuzzer finds is shrunk and written to
//! `tests/corpus/*.case` as a self-contained text file: a comment header
//! with the launch/compare metadata followed by the kernel in the PTX
//! dialect of [`tcsim_isa::ptx`]. The workspace test suite replays every
//! committed case on each `cargo test`, so a once-found bug permanently
//! guards its fix — the corpus is the regression suite the fuzzer grows.
//!
//! ```text
//! // tcsim-check case v1
//! // arch: volta
//! // grid: 1
//! // block: 32
//! // data: f16
//! // data-seed: 53503
//! // in-words: 1024
//! // out-words: 1072
//! // compare: f16:16
//! .kernel fz_0000000000000001
//! ...
//! ```

use crate::gen::Arch;
use crate::invariants;
use crate::oracle::{diff_run, Case, Compare, DataKind, Mutation};
use std::fs;
use std::path::{Path, PathBuf};

/// First line of every corpus file.
pub const HEADER: &str = "// tcsim-check case v1";

/// Serializes a case to the corpus text format.
pub fn case_to_text(case: &Case) -> String {
    let mut s = String::new();
    s.push_str(HEADER);
    s.push('\n');
    s.push_str(&format!("// arch: {}\n", case.arch.qualifier()));
    s.push_str(&format!("// grid: {}\n", case.grid_x));
    s.push_str(&format!("// block: {}\n", case.block_x));
    s.push_str(&format!("// data: {}\n", case.data.qualifier()));
    s.push_str(&format!("// data-seed: {}\n", case.data_seed));
    s.push_str(&format!("// in-words: {}\n", case.in_words));
    s.push_str(&format!("// out-words: {}\n", case.out_words));
    s.push_str(&format!("// compare: {}\n", case.compare.qualifier()));
    s.push_str(&tcsim_isa::emit::emit_kernel(&case.kernel));
    if !s.ends_with('\n') {
        s.push('\n');
    }
    s
}

fn header_value<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    line.strip_prefix("// ")?
        .strip_prefix(key)?
        .strip_prefix(':')
        .map(str::trim)
}

/// Parses the corpus text format back into a runnable case.
pub fn case_from_text(text: &str) -> Result<Case, String> {
    let mut lines = text.lines();
    if lines.next().map(str::trim) != Some(HEADER) {
        return Err(format!("missing `{HEADER}` header"));
    }
    let mut arch = None;
    let mut grid = None;
    let mut block = None;
    let mut data = None;
    let mut data_seed = None;
    let mut in_words = None;
    let mut out_words = None;
    let mut compare = None;
    let mut body_start = 0;
    for (i, line) in text.lines().enumerate().skip(1) {
        if !line.starts_with("//") {
            body_start = i;
            break;
        }
        if let Some(v) = header_value(line, "arch") {
            arch = Arch::from_qualifier(v);
        } else if let Some(v) = header_value(line, "grid") {
            grid = v.parse::<u32>().ok();
        } else if let Some(v) = header_value(line, "block") {
            block = v.parse::<u32>().ok();
        } else if let Some(v) = header_value(line, "data") {
            data = DataKind::from_qualifier(v);
        } else if let Some(v) = header_value(line, "data-seed") {
            data_seed = v.parse::<u64>().ok();
        } else if let Some(v) = header_value(line, "in-words") {
            in_words = v.parse::<u32>().ok();
        } else if let Some(v) = header_value(line, "out-words") {
            out_words = v.parse::<u32>().ok();
        } else if let Some(v) = header_value(line, "compare") {
            compare = Compare::from_qualifier(v);
        }
    }
    if body_start == 0 {
        return Err("no kernel body after the header".into());
    }
    let body: String = text.lines().skip(body_start).collect::<Vec<_>>().join("\n");
    let kernel = tcsim_isa::ptx::parse_kernel(&body).map_err(|e| e.to_string())?;
    Ok(Case {
        kernel,
        arch: arch.ok_or("missing or invalid `arch` header")?,
        grid_x: grid.ok_or("missing or invalid `grid` header")?,
        block_x: block.ok_or("missing or invalid `block` header")?,
        in_words: in_words.ok_or("missing or invalid `in-words` header")?,
        out_words: out_words.ok_or("missing or invalid `out-words` header")?,
        data: data.ok_or("missing or invalid `data` header")?,
        data_seed: data_seed.ok_or("missing or invalid `data-seed` header")?,
        compare: compare.ok_or("missing or invalid `compare` header")?,
    })
}

/// Writes `case` to `<dir>/<name>.case`, creating the directory.
pub fn write_case(dir: &Path, name: &str, case: &Case) -> std::io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.case"));
    fs::write(&path, case_to_text(case))?;
    Ok(path)
}

/// Replays one corpus case: differential run (no mutation) plus the
/// timing invariants. `Ok` means the old bug stays fixed.
pub fn replay_case(case: &Case) -> Result<(), String> {
    let report = diff_run(case, Mutation::None).map_err(|e| e.to_string())?;
    invariants::check_run(case, &report.stats)?;
    Ok(())
}

/// Replays every `*.case` under `dir`, in filename order.
///
/// Returns one `(path, outcome)` entry per file; an unreadable or
/// unparsable file is itself a failure. An absent directory yields an
/// empty list (no corpus yet — vacuously green).
pub fn replay_dir(dir: &Path) -> Vec<(PathBuf, Result<(), String>)> {
    let mut files: Vec<PathBuf> = match fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "case"))
            .collect(),
        Err(_) => return Vec::new(),
    };
    files.sort();
    files
        .into_iter()
        .map(|path| {
            let outcome = fs::read_to_string(&path)
                .map_err(|e| e.to_string())
                .and_then(|text| case_from_text(&text))
                .and_then(|case| replay_case(&case));
            (path, outcome)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};

    #[test]
    fn case_roundtrips_through_text() {
        for seed in [0u64, 7, 13] {
            let p = generate(seed, &GenConfig::default());
            let case = Case::from_program(&p, seed.wrapping_mul(97));
            let text = case_to_text(&case);
            let back = case_from_text(&text).expect("parse");
            assert_eq!(back.arch, case.arch);
            assert_eq!(back.grid_x, case.grid_x);
            assert_eq!(back.block_x, case.block_x);
            assert_eq!(back.in_words, case.in_words);
            assert_eq!(back.out_words, case.out_words);
            assert_eq!(back.data, case.data);
            assert_eq!(back.data_seed, case.data_seed);
            assert_eq!(back.compare, case.compare);
            assert_eq!(back.kernel.instrs().len(), case.kernel.instrs().len());
            // The reparsed case must behave identically end to end.
            assert_eq!(case_to_text(&back), text);
        }
    }

    #[test]
    fn malformed_headers_are_rejected() {
        assert!(case_from_text("not a case").is_err());
        let missing = format!("{HEADER}\n// arch: volta\n.kernel k\n{{\n exit;\n}}\n");
        let err = case_from_text(&missing).unwrap_err();
        assert!(err.contains("grid"), "got: {err}");
    }
}
