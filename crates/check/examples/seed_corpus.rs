//! Regenerates the committed seed corpus in `tests/corpus/`.
//!
//! The fuzzer appends minimized *failing* cases there as it finds bugs;
//! these seeds are deterministic *passing* cases committed up front so
//! corpus replay exercises every generator mode (SIMT control flow,
//! Volta/Turing WMMA, all-FP16 accumulation) on every `cargo test` even
//! before the first real find.
//!
//! ```text
//! cargo run -p tcsim-check --example seed_corpus
//! ```

use tcsim_check::corpus::{replay_case, write_case};
use tcsim_check::gen::{generate, GenConfig, KindSel};
use tcsim_check::oracle::Case;
use std::path::Path;

fn main() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus");
    let picks: &[(&str, u64, KindSel)] = &[
        ("seed_simt_a", 11, KindSel::Simt),
        ("seed_simt_b", 20, KindSel::Simt),
        ("seed_wmma_a", 3, KindSel::Wmma),
        ("seed_wmma_b", 8, KindSel::Wmma),
        ("seed_wmma_f16acc", 5, KindSel::WmmaF16Acc),
    ];
    for &(name, seed, kind) in picks {
        let cfg = GenConfig { kind, ..Default::default() };
        let program = generate(seed, &cfg);
        let case = Case::from_program(&program, seed ^ 0xDA7A_5EED);
        // A committed seed must replay clean, or every `cargo test` would
        // fail out of the box.
        replay_case(&case).unwrap_or_else(|e| panic!("{name} (seed {seed}) is not clean: {e}"));
        let path = write_case(&dir, name, &case).expect("write corpus file");
        println!("wrote {}", path.display());
    }
}
