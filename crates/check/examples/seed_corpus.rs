//! Regenerates the committed seed corpus in `tests/corpus/`.
//!
//! The fuzzer appends minimized *failing* cases there as it finds bugs;
//! these seeds are deterministic *passing* cases committed up front so
//! corpus replay exercises every generator mode (SIMT control flow,
//! Volta/Turing WMMA, all-FP16 accumulation, Ampere BF16 and 2:4-sparse
//! `mma.sync`) on every `cargo test` even before the first real find.
//!
//! ```text
//! cargo run -p tcsim-check --example seed_corpus
//! ```

use std::path::Path;
use tcsim_check::corpus::{replay_case, write_case};
use tcsim_check::gen::{generate, Arch, GenConfig, KindSel};
use tcsim_check::oracle::{Case, Compare, DataKind};
use tcsim_nn::kernels::{elems_grid, gelu_kernel, rowred_grid, softmax_kernel};

fn main() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus");
    let picks: &[(&str, u64, KindSel)] = &[
        ("seed_simt_a", 11, KindSel::Simt),
        ("seed_simt_b", 20, KindSel::Simt),
        ("seed_wmma_a", 3, KindSel::Wmma),
        ("seed_wmma_b", 8, KindSel::Wmma),
        ("seed_wmma_f16acc", 5, KindSel::WmmaF16Acc),
        // Seed 2 draws the *dense* BF16 m16n8k16 mode; the sparse pick
        // below covers the metadata path.
        ("seed_mma_bf16", 2, KindSel::WmmaBf16),
        ("seed_mma_sparse", 9, KindSel::WmmaSparse),
    ];
    for &(name, seed, kind) in picks {
        let cfg = GenConfig {
            kind,
            ..Default::default()
        };
        let program = generate(seed, &cfg);
        let case = Case::from_program(&program, seed ^ 0xDA7A_5EED);
        // A committed seed must replay clean, or every `cargo test` would
        // fail out of the box.
        replay_case(&case).unwrap_or_else(|e| panic!("{name} (seed {seed}) is not clean: {e}"));
        let path = write_case(&dir, name, &case).expect("write corpus file");
        println!("wrote {}", path.display());
    }

    // Shipped transformer-block kernels with the oracle's two-parameter
    // (in, out) shape, on raw random words: the device and the reference
    // interpreter share the op semantics bit-for-bit (including the MUFU
    // ex2/lg2 paths and NaN/Inf inputs), so the comparison is exact.
    let rows = 8usize;
    let nn_picks: &[(&str, tcsim_isa::Kernel, u32, u32, u32)] = &[
        // (name, kernel, grid_x, in_words, out_words)
        (
            "seed_nn_softmax",
            softmax_kernel(32, 0.25),
            rowred_grid(rows),
            256,
            256,
        ),
        ("seed_nn_gelu", gelu_kernel(256), elems_grid(256), 256, 256),
    ];
    for (name, kernel, grid_x, in_words, out_words) in nn_picks {
        let case = Case {
            kernel: kernel.clone(),
            arch: Arch::Volta,
            grid_x: *grid_x,
            block_x: 32,
            in_words: *in_words,
            out_words: *out_words,
            data: DataKind::Raw,
            data_seed: 0xDA7A_5EED,
            compare: Compare::Exact,
        };
        replay_case(&case).unwrap_or_else(|e| panic!("{name} is not clean: {e}"));
        let path = write_case(&dir, name, &case).expect("write corpus file");
        println!("wrote {}", path.display());
    }
}
