//! Conformance battery for the fuzzing subsystem itself: the PTX
//! emit→parse→emit round trip must be a fixed point over everything the
//! generator can produce, a clean differential sweep must stay clean,
//! and a deliberately planted numeric bug must be both caught by the
//! oracle and minimized to a tiny kernel by the shrinker.

use tcsim_check::gen::{generate, GenConfig, KindSel};
use tcsim_check::invariants;
use tcsim_check::oracle::{diff_run, Case, CheckFail, Mutation};
use tcsim_check::shrink::shrink_mismatch;
use tcsim_isa::{emit::emit_kernel, ptx::parse_kernel};

/// Emitted text must parse back to a kernel that emits the identical
/// text — for every instruction the generator can produce. One round
/// trip reaching a fixed point proves print and parse are inverse on
/// the whole generator-reachable subset of the dialect.
#[test]
fn ptx_roundtrip_is_a_fixed_point_over_generated_kernels() {
    for seed in 0..150u64 {
        let program = generate(seed, &GenConfig::default());
        let kernel = Case::from_program(&program, 0).kernel;
        let text = emit_kernel(&kernel);
        let reparsed = parse_kernel(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: emitted text failed to parse: {e}\n{text}"));
        assert_eq!(
            reparsed.instrs().len(),
            kernel.instrs().len(),
            "seed {seed}: instruction count changed across the round trip"
        );
        let text2 = emit_kernel(&reparsed);
        assert_eq!(text, text2, "seed {seed}: emit∘parse is not a fixed point");
    }
}

/// A short clean differential sweep: GPU and reference agree and every
/// timing invariant holds, across SIMT-only and WMMA kernels.
#[test]
fn differential_sweep_is_clean() {
    for seed in 100..140u64 {
        let program = generate(seed, &GenConfig::default());
        let case = Case::from_program(&program, seed ^ 0xDA7A_5EED);
        let report = diff_run(&case, Mutation::None)
            .unwrap_or_else(|e| panic!("seed {seed}: differential mismatch: {e}"));
        invariants::check_run(&case, &report.stats)
            .unwrap_or_else(|e| panic!("seed {seed}: invariant violated: {e}"));
    }
}

/// Acceptance gate from the issue: flip the FEDP accumulation rounding
/// (round-to-nearest → round-toward-zero) on the reference side, and the
/// oracle must catch it on an all-FP16 WMMA kernel; the shrinker must
/// then reduce the failing kernel to at most 10 instructions.
#[test]
fn planted_fedp_rounding_mutation_is_caught_and_minimized() {
    let cfg = GenConfig {
        kind: KindSel::WmmaF16Acc,
        ..Default::default()
    };
    let data_seed = 0xF00D;
    let mut caught = None;
    for seed in 0..8u64 {
        let program = generate(seed, &cfg);
        let case = Case::from_program(&program, data_seed);
        match diff_run(&case, Mutation::FedpChopF16) {
            Err(CheckFail::Mismatch(_)) => {
                caught = Some(program);
                break;
            }
            Err(other) => panic!("seed {seed}: unexpected failure kind: {other}"),
            Ok(_) => {}
        }
    }
    let program = caught.expect("the planted mutation must be caught within a few seeds");

    let shrunk = shrink_mismatch(&program, data_seed, Mutation::FedpChopF16, 400);
    let min_case = Case::from_program(&shrunk.program, data_seed);
    // The minimized kernel must still reproduce the mismatch…
    assert!(
        matches!(
            diff_run(&min_case, Mutation::FedpChopF16),
            Err(CheckFail::Mismatch(_))
        ),
        "shrunk kernel no longer reproduces the mismatch"
    );
    // …and be genuinely tiny: at most 10 assembled instructions.
    let insts = min_case.kernel.instrs().len();
    assert!(
        insts <= 10,
        "shrinker left {insts} instructions (> 10):\n{}",
        emit_kernel(&min_case.kernel)
    );
    // Sanity: the same minimized kernel passes without the mutation.
    diff_run(&min_case, Mutation::None).expect("minimized kernel is clean without the mutation");
}
