//! Randomized tests for the memory hierarchy: the coalescer must cover
//! every requested byte exactly once per sector, conflict analysis must
//! bracket correctly, caches must never forget outstanding fills, and
//! DRAM service must respect bandwidth. Inputs come from a deterministic
//! xorshift64* generator (no external crates).

use tcsim_isa::exec::MemAccess;
use tcsim_isa::ByteMemory;
use tcsim_mem::{
    coalesce, conflict_passes, Cache, CacheConfig, DeviceMemory, DramChannel, Lookup, NUM_BANKS,
    SECTOR_BYTES,
};

// Deterministic inputs from the workspace's canonical PRNG (same
// xorshift64* recurrence the local copy used, so sequences are unchanged).
use tcsim_check::rng::XorShift64Star as Rng;

fn random_accesses(rng: &mut Rng) -> Vec<MemAccess> {
    let n = 1 + rng.below(31) as usize;
    (0..n)
        .map(|_| MemAccess {
            lane: rng.below(32) as u8,
            addr: rng.below(100_000),
            bytes: [1u8, 2, 4, 8, 16][rng.below(5) as usize],
        })
        .collect()
}

const CASES: usize = 300;

#[test]
fn coalescer_covers_every_requested_byte() {
    let mut rng = Rng::new(0x3E31);
    for _ in 0..CASES {
        let accesses = random_accesses(&mut rng);
        let txns = coalesce(&accesses);
        // Every byte of every access falls in exactly one transaction.
        for a in &accesses {
            for b in a.addr..a.addr + a.bytes as u64 {
                let n = txns
                    .iter()
                    .filter(|t| b >= t.addr && b < t.addr + t.bytes)
                    .count();
                assert_eq!(n, 1, "byte {b} covered {n} times");
            }
        }
        // Transactions are sector aligned, sector sized, disjoint, sorted.
        for t in &txns {
            assert_eq!(t.addr % SECTOR_BYTES, 0);
            assert_eq!(t.bytes, SECTOR_BYTES);
            assert_ne!(t.lane_mask, 0);
        }
        for w in txns.windows(2) {
            assert!(w[0].addr + SECTOR_BYTES <= w[1].addr);
        }
    }
}

#[test]
fn coalescer_lane_masks_union_to_request_lanes() {
    let mut rng = Rng::new(0x3E32);
    for _ in 0..CASES {
        let accesses = random_accesses(&mut rng);
        let txns = coalesce(&accesses);
        let want: u32 = accesses.iter().fold(0, |m, a| m | (1 << a.lane));
        let got: u32 = txns.iter().fold(0, |m, t| m | t.lane_mask);
        assert_eq!(got, want);
    }
}

#[test]
fn conflict_passes_bracket() {
    let mut rng = Rng::new(0x3E33);
    for _ in 0..CASES {
        let accesses = random_accesses(&mut rng);
        let passes = conflict_passes(&accesses);
        // At least 1, at most the number of distinct words requested.
        let mut words: Vec<u64> = accesses
            .iter()
            .flat_map(|a| (a.addr / 4)..=((a.addr + a.bytes as u64 - 1) / 4))
            .collect();
        words.sort_unstable();
        words.dedup();
        assert!(passes >= 1);
        assert!(passes as usize <= words.len().max(1));
        // And at least ceil(distinct_words / banks).
        assert!(passes as usize >= words.len().div_ceil(NUM_BANKS));
    }
}

#[test]
fn cache_miss_then_fill_always_hits() {
    let mut rng = Rng::new(0x3E34);
    for _ in 0..CASES {
        let n = 1 + rng.below(49) as usize;
        let addrs: Vec<u64> = (0..n).map(|_| rng.below(1 << 20)).collect();
        let mut c = Cache::new(CacheConfig::l1(16));
        for (i, &addr) in addrs.iter().enumerate() {
            let now = i as u64 * 10;
            match c.lookup(addr, false, now) {
                Lookup::Hit { .. } | Lookup::MshrHit { .. } => {}
                Lookup::Miss => {
                    c.start_fill(addr, now + 5);
                    c.fill(addr, now + 5, false);
                }
            }
            // Immediately after a fill (or hit) the sector must be present
            // until something evicts it; probe right away.
            assert!(
                !matches!(c.lookup(addr, false, now + 6), Lookup::Miss),
                "sector lost right after fill"
            );
        }
        assert_eq!(c.mshr_count(), 0);
    }
}

#[test]
fn dram_completions_are_monotone_and_bandwidth_bounded() {
    let mut rng = Rng::new(0x3E35);
    for _ in 0..CASES {
        let n = 1 + rng.below(63) as usize;
        let mut sorted: Vec<u64> = (0..n).map(|_| rng.below(1000)).collect();
        sorted.sort_unstable();
        let mut d = DramChannel::new(100, 4);
        let mut last = 0;
        for (i, &t) in sorted.iter().enumerate() {
            let done = d.access(t);
            assert!(done >= t + 100, "latency floor");
            assert!(done >= last, "completions must not reorder");
            // Bandwidth bound: i+1 sectors cannot finish before
            // first_issue + (i+1)·service.
            assert!(done >= sorted[0] + (i as u64 + 1) * 4 + 100 - 4);
            last = done;
        }
        assert_eq!(d.sectors_served(), sorted.len() as u64);
    }
}

#[test]
fn device_memory_read_back_matches_writes() {
    let mut rng = Rng::new(0x3E36);
    for _ in 0..CASES {
        let n = 1 + rng.below(63) as usize;
        let mut m = DeviceMemory::new();
        // Use 4-aligned, de-overlapped addresses.
        let mut seen = std::collections::HashMap::new();
        for _ in 0..n {
            let addr = rng.below(1 << 22) & !3;
            let val = (rng.next_u64() >> 32) as u32;
            m.write_u32(addr, val);
            seen.insert(addr, val);
        }
        for (&a, &val) in &seen {
            assert_eq!(m.read_u32(a), val);
        }
    }
}
