//! Property-based tests for the memory hierarchy: the coalescer must
//! cover every requested byte exactly once per sector, conflict analysis
//! must bracket correctly, caches must never forget outstanding fills,
//! and DRAM service must respect bandwidth.

use proptest::prelude::*;
use tcsim_isa::exec::MemAccess;
use tcsim_isa::ByteMemory;
use tcsim_mem::{
    coalesce, conflict_passes, Cache, CacheConfig, DeviceMemory, DramChannel, Lookup, NUM_BANKS,
    SECTOR_BYTES,
};

fn any_accesses() -> impl Strategy<Value = Vec<MemAccess>> {
    proptest::collection::vec(
        (0u8..32, 0u64..100_000, prop_oneof![Just(1u8), Just(2), Just(4), Just(8), Just(16)]),
        1..32,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(lane, addr, bytes)| MemAccess { lane, addr, bytes })
            .collect()
    })
}

proptest! {
    #[test]
    fn coalescer_covers_every_requested_byte(accesses in any_accesses()) {
        let txns = coalesce(&accesses);
        // Every byte of every access falls in exactly one transaction.
        for a in &accesses {
            for b in a.addr..a.addr + a.bytes as u64 {
                let n = txns
                    .iter()
                    .filter(|t| b >= t.addr && b < t.addr + t.bytes)
                    .count();
                prop_assert_eq!(n, 1, "byte {} covered {} times", b, n);
            }
        }
        // Transactions are sector aligned, sector sized, disjoint, sorted.
        for t in &txns {
            prop_assert_eq!(t.addr % SECTOR_BYTES, 0);
            prop_assert_eq!(t.bytes, SECTOR_BYTES);
            prop_assert_ne!(t.lane_mask, 0);
        }
        for w in txns.windows(2) {
            prop_assert!(w[0].addr + SECTOR_BYTES <= w[1].addr);
        }
    }

    #[test]
    fn coalescer_lane_masks_union_to_request_lanes(accesses in any_accesses()) {
        let txns = coalesce(&accesses);
        let want: u32 = accesses.iter().fold(0, |m, a| m | (1 << a.lane));
        let got: u32 = txns.iter().fold(0, |m, t| m | t.lane_mask);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn conflict_passes_bracket(accesses in any_accesses()) {
        let passes = conflict_passes(&accesses);
        // At least 1, at most the number of distinct words requested.
        let mut words: Vec<u64> = accesses
            .iter()
            .flat_map(|a| (a.addr / 4)..=((a.addr + a.bytes as u64 - 1) / 4))
            .collect();
        words.sort_unstable();
        words.dedup();
        prop_assert!(passes >= 1);
        prop_assert!(passes as usize <= words.len().max(1));
        // And at least ceil(distinct_words / banks).
        prop_assert!(passes as usize >= words.len().div_ceil(NUM_BANKS));
    }

    #[test]
    fn cache_miss_then_fill_always_hits(addrs in proptest::collection::vec(0u64..1u64 << 20, 1..50)) {
        let mut c = Cache::new(CacheConfig::l1(16));
        for (i, &addr) in addrs.iter().enumerate() {
            let now = i as u64 * 10;
            match c.lookup(addr, false, now) {
                Lookup::Hit { .. } | Lookup::MshrHit { .. } => {}
                Lookup::Miss => {
                    c.start_fill(addr, now + 5);
                    c.fill(addr, now + 5, false);
                }
            }
            // Immediately after a fill (or hit) the sector must be present
            // until something evicts it; probe right away.
            prop_assert!(
                !matches!(c.lookup(addr, false, now + 6), Lookup::Miss),
                "sector lost right after fill"
            );
        }
        prop_assert_eq!(c.mshr_count(), 0);
    }

    #[test]
    fn dram_completions_are_monotone_and_bandwidth_bounded(
        times in proptest::collection::vec(0u64..1000, 1..64),
    ) {
        let mut d = DramChannel::new(100, 4);
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let mut last = 0;
        for (i, &t) in sorted.iter().enumerate() {
            let done = d.access(t);
            prop_assert!(done >= t + 100, "latency floor");
            prop_assert!(done >= last, "completions must not reorder");
            // Bandwidth bound: i+1 sectors cannot finish before
            // first_issue + (i+1)·service.
            prop_assert!(done >= sorted[0] + (i as u64 + 1) * 4 + 100 - 4);
            last = done;
        }
        prop_assert_eq!(d.sectors_served(), sorted.len() as u64);
    }

    #[test]
    fn device_memory_read_back_matches_writes(
        writes in proptest::collection::vec((0u64..1u64 << 22, any::<u32>()), 1..64),
    ) {
        let mut m = DeviceMemory::new();
        // Use 4-aligned, de-overlapped addresses.
        let mut seen = std::collections::HashMap::new();
        for &(addr, val) in &writes {
            let a = addr & !3;
            m.write_u32(a, val);
            seen.insert(a, val);
        }
        for (&a, &val) in &seen {
            prop_assert_eq!(m.read_u32(a), val);
        }
    }
}
