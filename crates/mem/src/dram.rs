//! DRAM channel model: fixed access latency plus bandwidth-limited
//! service (a queuing model per memory partition).

/// One DRAM channel attached to a memory partition.
#[derive(Clone, Debug)]
pub struct DramChannel {
    /// Cycles from request to first data beat when the channel is idle.
    access_latency: u64,
    /// Core cycles to transfer one 32-byte sector (sets the per-channel
    /// bandwidth: 32 bytes / `cycles_per_sector` per core cycle).
    cycles_per_sector: u64,
    next_free: u64,
    served: u64,
    busy_cycles: u64,
}

impl DramChannel {
    /// Creates an idle channel.
    pub fn new(access_latency: u64, cycles_per_sector: u64) -> DramChannel {
        DramChannel {
            access_latency,
            cycles_per_sector,
            next_free: 0,
            served: 0,
            busy_cycles: 0,
        }
    }

    /// Issues one 32-byte sector request at `now`; returns the cycle its
    /// data is available. Requests serialize on the channel's data bus.
    pub fn access(&mut self, now: u64) -> u64 {
        let start = now.max(self.next_free);
        self.next_free = start + self.cycles_per_sector;
        self.served += 1;
        self.busy_cycles += self.cycles_per_sector;
        start + self.access_latency
    }

    /// Total sectors served.
    pub fn sectors_served(&self) -> u64 {
        self.served
    }

    /// Cycles the data bus has been busy (for bandwidth-utilization
    /// statistics).
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// First cycle at which a new request would start service.
    pub fn next_free(&self) -> u64 {
        self.next_free
    }

    /// Resets the bus-availability clock for a new launch whose cycle
    /// counter restarts at 0 (cumulative `served`/`busy_cycles` counters
    /// are kept).
    pub fn reset_clock(&mut self) {
        self.next_free = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_channel_returns_after_latency() {
        let mut d = DramChannel::new(200, 2);
        assert_eq!(d.access(1000), 1200);
        assert_eq!(d.sectors_served(), 1);
    }

    #[test]
    fn back_to_back_requests_serialize_on_bandwidth() {
        let mut d = DramChannel::new(200, 4);
        let t0 = d.access(0);
        let t1 = d.access(0);
        let t2 = d.access(0);
        assert_eq!(t0, 200);
        assert_eq!(t1, 204);
        assert_eq!(t2, 208);
        assert_eq!(d.busy_cycles(), 12);
    }

    #[test]
    fn spaced_requests_do_not_queue() {
        let mut d = DramChannel::new(100, 4);
        assert_eq!(d.access(0), 100);
        assert_eq!(d.access(1000), 1100);
        assert_eq!(d.next_free(), 1004);
    }
}
