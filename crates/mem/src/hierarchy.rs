//! Composition of the memory hierarchy: per-SM L1 paths over a shared
//! banked L2 + DRAM memory system.

use crate::cache::{Cache, CacheConfig, CacheStats, Lookup};
use crate::coalesce::Transaction;
use crate::dram::DramChannel;
use tcsim_trace::{emit, CacheLevel, EventKind, TraceEvent, Tracer};

/// Configuration of the GPU-wide memory system.
#[derive(Clone, Copy, Debug)]
pub struct MemSystemConfig {
    /// Number of memory partitions (each an L2 slice + DRAM channel).
    pub partitions: usize,
    /// L2 slice capacity per partition, in KiB.
    pub l2_slice_kib: usize,
    /// Interconnect latency SM → partition (cycles, each way).
    pub noc_latency: u64,
    /// DRAM access latency (cycles).
    pub dram_latency: u64,
    /// Core cycles per 32-byte sector per DRAM channel.
    pub dram_cycles_per_sector: u64,
}

impl MemSystemConfig {
    /// Titan V-like: 24 partitions (3072-bit HBM2), 4.5 MB L2,
    /// 653 GB/s ≈ 0.35 B/cycle/partition·32 ≈ one sector every ~2.2
    /// cycles per partition at 1.53 GHz (rounded to 2).
    pub fn titan_v() -> MemSystemConfig {
        MemSystemConfig {
            partitions: 24,
            l2_slice_kib: 192,
            noc_latency: 30,
            dram_latency: 180,
            dram_cycles_per_sector: 2,
        }
    }
}

/// The shared memory-side of the GPU: L2 slices and DRAM channels.
#[derive(Debug)]
pub struct MemSystem {
    cfg: MemSystemConfig,
    l2: Vec<Cache>,
    dram: Vec<DramChannel>,
}

impl MemSystem {
    /// Builds the memory system.
    pub fn new(cfg: MemSystemConfig) -> MemSystem {
        MemSystem {
            cfg,
            l2: (0..cfg.partitions)
                .map(|_| Cache::new(CacheConfig::l2_slice(cfg.l2_slice_kib)))
                .collect(),
            dram: (0..cfg.partitions)
                .map(|_| DramChannel::new(cfg.dram_latency, cfg.dram_cycles_per_sector))
                .collect(),
        }
    }

    fn partition_of(&self, addr: u64) -> usize {
        // Line-interleaved with an xor fold, like real address hashing.
        let line = addr / 128;
        ((line ^ (line >> 7)) % self.cfg.partitions as u64) as usize
    }

    /// One sector request arriving from `sm` at `now`; returns the cycle
    /// data returns to the SM (both NoC hops included). L2 lookups and
    /// DRAM sector transfers are reported to `tracer` (use
    /// [`tcsim_trace::NullTracer`] when not tracing).
    pub fn access(
        &mut self,
        addr: u64,
        is_store: bool,
        now: u64,
        sm: u16,
        tracer: &mut dyn Tracer,
    ) -> u64 {
        let p = self.partition_of(addr);
        let arrive = now + self.cfg.noc_latency;
        let lookup = self.l2[p].lookup(addr, is_store, arrive);
        emit(tracer, || TraceEvent {
            cycle: arrive,
            sm,
            kind: EventKind::CacheAccess {
                level: CacheLevel::L2,
                hit: !matches!(lookup, Lookup::Miss),
                store: is_store,
            },
        });
        let done_at_l2 = match lookup {
            Lookup::Hit { ready_at } => ready_at,
            Lookup::MshrHit { ready_at } => ready_at,
            Lookup::Miss => {
                let fill = self.dram[p].access(arrive);
                emit(tracer, || TraceEvent {
                    cycle: arrive,
                    sm,
                    kind: EventKind::DramTxn { channel: p as u16 },
                });
                if is_store {
                    // Write-allocate: line fetched then dirtied; the store
                    // itself completes on arrival at L2.
                    self.l2[p].start_fill(addr, fill);
                    self.l2[p].fill(addr, fill, true);
                    arrive + self.l2[p].config().hit_latency
                } else {
                    self.l2[p].start_fill(addr, fill);
                    self.l2[p].fill(addr, fill, false);
                    fill
                }
            }
        };
        done_at_l2 + self.cfg.noc_latency
    }

    /// Aggregate L2 statistics across partitions.
    pub fn l2_stats(&self) -> CacheStats {
        let mut s = CacheStats::default();
        for c in &self.l2 {
            let cs = c.stats();
            s.hits += cs.hits;
            s.misses += cs.misses;
            s.mshr_merges += cs.mshr_merges;
            s.writebacks += cs.writebacks;
        }
        s
    }

    /// Total DRAM sectors served.
    pub fn dram_sectors(&self) -> u64 {
        self.dram.iter().map(|d| d.sectors_served()).sum()
    }

    /// Kernel-launch boundary: invalidates all L2 slices and resets the
    /// DRAM bus clocks (the next launch's cycle counter restarts at 0).
    pub fn flush(&mut self) {
        for c in &mut self.l2 {
            c.flush();
        }
        for d in &mut self.dram {
            d.reset_clock();
        }
    }
}

/// A per-SM L1 data-cache path in front of the shared [`MemSystem`].
#[derive(Debug)]
pub struct L1Path {
    l1: Cache,
}

impl L1Path {
    /// Creates an L1 of `kib` KiB.
    pub fn new(kib: usize) -> L1Path {
        L1Path {
            l1: Cache::new(CacheConfig::l1(kib)),
        }
    }

    /// Services one coalesced transaction at `now`, returning the cycle
    /// the data is available in the SM (for a load) or the store is
    /// accepted. The lookup (and any L2/DRAM traffic it causes) is
    /// reported to `tracer` attributed to `sm`.
    pub fn access(
        &mut self,
        txn: &Transaction,
        is_store: bool,
        now: u64,
        sys: &mut MemSystem,
        sm: u16,
        tracer: &mut dyn Tracer,
    ) -> u64 {
        let lookup = self.l1.lookup(txn.addr, is_store, now);
        emit(tracer, || TraceEvent {
            cycle: now,
            sm,
            kind: EventKind::CacheAccess {
                level: CacheLevel::L1,
                hit: !matches!(lookup, Lookup::Miss),
                store: is_store,
            },
        });
        match lookup {
            Lookup::Hit { ready_at } => {
                if is_store {
                    // Write-through: also send to L2 (bandwidth effects),
                    // but the warp does not wait for it.
                    let _ = sys.access(txn.addr, true, now, sm, tracer);
                }
                ready_at
            }
            Lookup::MshrHit { ready_at } => ready_at,
            Lookup::Miss => {
                if is_store {
                    // Write-through no-allocate: forward, complete quickly.
                    let _ = sys.access(txn.addr, true, now, sm, tracer);
                    now + self.l1.config().hit_latency
                } else {
                    let fill = sys.access(txn.addr, false, now + 1, sm, tracer);
                    self.l1.start_fill(txn.addr, fill);
                    self.l1.fill(txn.addr, fill, false);
                    fill + 1
                }
            }
        }
    }

    /// L1 statistics.
    pub fn stats(&self) -> CacheStats {
        self.l1.stats()
    }

    /// Invalidates the L1 (kernel boundary).
    pub fn flush(&mut self) {
        self.l1.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsim_trace::NullTracer;

    #[test]
    fn mem_system_and_device_memory_are_send() {
        // The parallel sweep engine moves whole memory systems across
        // worker threads (one GPU per job); a compile-time guarantee.
        fn assert_send<T: Send>() {}
        assert_send::<MemSystem>();
        assert_send::<crate::DeviceMemory>();
        assert_send::<crate::L1Path>();
    }

    fn txn(addr: u64) -> Transaction {
        Transaction {
            addr,
            bytes: 32,
            lane_mask: 1,
        }
    }

    fn tiny_sys() -> MemSystem {
        MemSystem::new(MemSystemConfig {
            partitions: 2,
            l2_slice_kib: 4,
            noc_latency: 10,
            dram_latency: 100,
            dram_cycles_per_sector: 4,
        })
    }

    #[test]
    fn cold_load_pays_full_latency_chain() {
        let mut sys = tiny_sys();
        let mut l1 = L1Path::new(16);
        let t = l1.access(&txn(0x1000), false, 0, &mut sys, 0, &mut NullTracer);
        // NoC (10) + DRAM (100) + NoC (10) + fill forwarding ≥ 120.
        assert!(t >= 120, "cold miss took {t}");
        assert_eq!(l1.stats().misses, 1);
        assert_eq!(sys.dram_sectors(), 1);
    }

    #[test]
    fn warm_load_hits_l1() {
        let mut sys = tiny_sys();
        let mut l1 = L1Path::new(16);
        let t0 = l1.access(&txn(0x1000), false, 0, &mut sys, 0, &mut NullTracer);
        let t1 = l1.access(&txn(0x1000), false, t0, &mut sys, 0, &mut NullTracer);
        assert_eq!(t1, t0 + 28, "L1 hit latency");
        assert_eq!(l1.stats().hits, 1);
    }

    #[test]
    fn l2_hit_is_faster_than_dram() {
        let mut sys = tiny_sys();
        let mut l1a = L1Path::new(16);
        let mut l1b = L1Path::new(16);
        // SM A warms L2.
        let _ = l1a.access(&txn(0x2000), false, 0, &mut sys, 0, &mut NullTracer);
        // SM B misses L1 but hits L2.
        let t = l1b.access(&txn(0x2000), false, 10_000, &mut sys, 0, &mut NullTracer);
        let l2_hit_time = t - 10_000;
        assert!(l2_hit_time < 200, "L2 hit path took {l2_hit_time}");
        assert!(l2_hit_time > 28, "must be slower than an L1 hit");
        assert_eq!(sys.dram_sectors(), 1, "no second DRAM access");
    }

    #[test]
    fn stores_complete_quickly_and_generate_l2_traffic() {
        let mut sys = tiny_sys();
        let mut l1 = L1Path::new(16);
        let t = l1.access(&txn(0x3000), true, 0, &mut sys, 0, &mut NullTracer);
        assert!(t <= 28);
        assert!(sys.l2_stats().accesses() > 0);
    }

    #[test]
    fn dram_bandwidth_saturates_under_a_burst() {
        let mut sys = tiny_sys();
        let mut l1 = L1Path::new(16);
        // 64 distinct lines at once: queueing pushes completion times out.
        let times: Vec<u64> = (0..64)
            .map(|i| {
                l1.access(
                    &txn(0x10_000 + i * 128),
                    false,
                    0,
                    &mut sys,
                    0,
                    &mut NullTracer,
                )
            })
            .collect();
        let first = *times.iter().min().unwrap();
        let last = *times.iter().max().unwrap();
        // 64 sectors over 2 channels at 4 cyc/sector ⇒ ≥ 128-4 cycles of
        // serialization beyond the first.
        assert!(last - first >= 100, "spread {}", last - first);
    }

    #[test]
    fn flush_clears_both_levels() {
        let mut sys = tiny_sys();
        let mut l1 = L1Path::new(16);
        let _ = l1.access(&txn(0x1000), false, 0, &mut sys, 0, &mut NullTracer);
        l1.flush();
        sys.flush();
        let t = l1.access(&txn(0x1000), false, 100_000, &mut sys, 0, &mut NullTracer);
        assert!(t - 100_000 >= 120, "must go to DRAM again");
        assert_eq!(sys.dram_sectors(), 2);
    }

    #[test]
    fn tracer_sees_hierarchy_traffic() {
        use tcsim_trace::RingTracer;
        let mut sys = tiny_sys();
        let mut l1 = L1Path::new(16);
        let mut tr = RingTracer::with_capacity(64);
        // Cold load: L1 miss, L2 miss, one DRAM sector.
        let t0 = l1.access(&txn(0x1000), false, 0, &mut sys, 3, &mut tr);
        // Warm load: L1 hit, no new memory-side events.
        let _ = l1.access(&txn(0x1000), false, t0, &mut sys, 3, &mut tr);
        let events = tr.snapshot();
        let l1_events: Vec<_> = events
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    EventKind::CacheAccess {
                        level: CacheLevel::L1,
                        ..
                    }
                )
            })
            .collect();
        assert_eq!(l1_events.len(), 2);
        assert!(matches!(
            l1_events[0].kind,
            EventKind::CacheAccess {
                hit: false,
                store: false,
                ..
            }
        ));
        assert!(matches!(
            l1_events[1].kind,
            EventKind::CacheAccess { hit: true, .. }
        ));
        assert!(
            l1_events.iter().all(|e| e.sm == 3),
            "events carry the SM id"
        );
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(
                    e.kind,
                    EventKind::CacheAccess {
                        level: CacheLevel::L2,
                        hit: false,
                        ..
                    }
                ))
                .count(),
            1
        );
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::DramTxn { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn tracing_does_not_change_timing() {
        use tcsim_trace::RingTracer;
        let mut sys_a = tiny_sys();
        let mut l1_a = L1Path::new(16);
        let mut sys_b = tiny_sys();
        let mut l1_b = L1Path::new(16);
        let mut tr = RingTracer::with_capacity(1024);
        for i in 0..16u64 {
            let addr = 0x4000 + i * 96;
            let ta = l1_a.access(&txn(addr), i % 3 == 0, i, &mut sys_a, 0, &mut NullTracer);
            let tb = l1_b.access(&txn(addr), i % 3 == 0, i, &mut sys_b, 0, &mut tr);
            assert_eq!(ta, tb, "observation must not perturb the model");
        }
        assert!(!tr.snapshot().is_empty());
    }

    #[test]
    fn partition_interleaving_spreads_lines() {
        let sys = tiny_sys();
        let p0 = sys.partition_of(0);
        let mut seen = std::collections::HashSet::new();
        for i in 0..16u64 {
            seen.insert(sys.partition_of(i * 128));
        }
        assert!(seen.len() > 1, "lines must spread across partitions");
        let _ = p0;
    }
}
