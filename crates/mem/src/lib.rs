#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! GPU memory hierarchy: device memory, access coalescing, sectored
//! caches with MSHRs, DRAM channels and banked shared memory.
//!
//! This crate is the memory substrate the paper's tensor-core model plugs
//! into (GPGPU-Sim's memory system in the original, §V-A). Two properties
//! it must reproduce:
//!
//! * the *transaction counts* of `wmma.load`/`wmma.store` (the paper
//!   verified its model generates exactly the Titan V's coalesced
//!   transaction counts) — see [`coalesce`];
//! * the *latency separation* between shared-memory and global-memory
//!   operand staging that produces the >100× `wmma.load` latency gap of
//!   Fig 16 — see [`SharedMemory`] vs [`L1Path`]/[`MemSystem`].
//!
//! # Example
//!
//! ```
//! use tcsim_mem::{coalesce, DeviceMemory};
//! use tcsim_isa::{exec::MemAccess, ByteMemory};
//!
//! let mut mem = DeviceMemory::new();
//! let base = mem.alloc(1024);
//! mem.write_u32(base, 42);
//! assert_eq!(mem.read_u32(base), 42);
//!
//! // A fully coalesced warp access: 32 lanes × 4 bytes = 4 sectors.
//! let accesses: Vec<MemAccess> = (0..32)
//!     .map(|l| MemAccess { lane: l, addr: base + 4 * l as u64, bytes: 4 })
//!     .collect();
//! assert_eq!(coalesce(&accesses).len(), 4);
//! ```

mod cache;
mod coalesce;
mod device;
mod dram;
mod hierarchy;
mod shared;

pub use cache::{Cache, CacheConfig, CacheStats, Lookup};
pub use coalesce::{coalesce, Transaction, LINE_BYTES, SECTOR_BYTES};
pub use device::DeviceMemory;
pub use dram::DramChannel;
pub use hierarchy::{L1Path, MemSystem, MemSystemConfig};
pub use shared::{conflict_passes, SharedMemory, BANK_BYTES, NUM_BANKS};
