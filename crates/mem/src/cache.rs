//! Set-associative, sectored cache with MSHR merging — the building block
//! for the L1D and L2 models (GPGPU-Sim-style).

use std::collections::HashMap;

/// Geometry and latency of one cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets.
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (128 on Volta).
    pub line_bytes: u64,
    /// Sector size in bytes (32 on Volta); fills happen per sector.
    pub sector_bytes: u64,
    /// Cycles from access to data return on a hit.
    pub hit_latency: u64,
    /// Whether stores allocate (L2) or write through without allocating
    /// (Volta L1).
    pub write_allocate: bool,
}

impl CacheConfig {
    /// Volta-style 128 KB L1 data cache (combined L1/shared carve-out):
    /// 64 sets × 4 ways... sized by `kib`.
    pub fn l1(kib: usize) -> CacheConfig {
        let lines = kib * 1024 / 128;
        CacheConfig {
            sets: lines / 4,
            ways: 4,
            line_bytes: 128,
            sector_bytes: 32,
            hit_latency: 28,
            write_allocate: false,
        }
    }

    /// One L2 partition slice of `kib` kibibytes, 16-way.
    pub fn l2_slice(kib: usize) -> CacheConfig {
        let lines = kib * 1024 / 128;
        CacheConfig {
            sets: (lines / 16).max(1),
            ways: 16,
            line_bytes: 128,
            sector_bytes: 32,
            hit_latency: 90,
            write_allocate: true,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        (self.sets * self.ways) as u64 * self.line_bytes
    }
}

/// Hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Sector accesses that hit.
    pub hits: u64,
    /// Sector accesses that missed and caused a fill request.
    pub misses: u64,
    /// Misses merged into an outstanding MSHR entry.
    pub mshr_merges: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses observed.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses + self.mshr_merges
    }

    /// Miss rate over all accesses (merges count as misses).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            (self.misses + self.mshr_merges) as f64 / self.accesses() as f64
        }
    }

    /// Counters accumulated since the `before` snapshot of the same
    /// cache — the per-launch delta between two cumulative readings.
    pub fn delta_since(&self, before: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - before.hits,
            misses: self.misses - before.misses,
            mshr_merges: self.mshr_merges - before.mshr_merges,
            writebacks: self.writebacks - before.writebacks,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Line {
    tag: u64,
    sectors_valid: u8,
    sectors_dirty: u8,
    last_use: u64,
    valid: bool,
}

/// The outcome of a cache lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lookup {
    /// Data available at the given cycle.
    Hit {
        /// Cycle at which the data returns.
        ready_at: u64,
    },
    /// Sector must be fetched from the next level; an MSHR was allocated.
    Miss,
    /// Sector already being fetched; data ready when the earlier fill
    /// lands.
    MshrHit {
        /// Cycle the outstanding fill completes.
        ready_at: u64,
    },
}

/// A sectored, LRU, write-back (or write-through) cache.
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    mshrs: HashMap<u64, u64>, // sector addr → fill completion cycle
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    pub fn new(cfg: CacheConfig) -> Cache {
        Cache {
            cfg,
            sets: vec![
                vec![
                    Line {
                        tag: 0,
                        sectors_valid: 0,
                        sectors_dirty: 0,
                        last_use: 0,
                        valid: false
                    };
                    cfg.ways
                ];
                cfg.sets
            ],
            mshrs: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Outstanding fills.
    pub fn mshr_count(&self) -> usize {
        self.mshrs.len()
    }

    fn set_index(&self, addr: u64) -> usize {
        let line = addr / self.cfg.line_bytes;
        // Simple XOR-fold index hash to spread power-of-two strides.
        ((line ^ (line / self.cfg.sets as u64)) % self.cfg.sets as u64) as usize
    }

    fn sector_bit(&self, addr: u64) -> u8 {
        let within = (addr % self.cfg.line_bytes) / self.cfg.sector_bytes;
        1u8 << within
    }

    /// Probes the cache for the sector containing `addr` at cycle `now`.
    ///
    /// On `Miss` the caller must fetch from the next level and call
    /// [`Cache::fill`] with the completion time.
    pub fn lookup(&mut self, addr: u64, is_store: bool, now: u64) -> Lookup {
        let tag = addr / self.cfg.line_bytes;
        let sector = self.sector_bit(addr);
        let set = self.set_index(addr);
        for line in &mut self.sets[set] {
            if line.valid && line.tag == tag && line.sectors_valid & sector != 0 {
                line.last_use = now;
                if is_store {
                    if self.cfg.write_allocate {
                        line.sectors_dirty |= sector;
                    } else {
                        // Write-through no-allocate: a store hit updates
                        // data (functional state lives elsewhere) and
                        // invalidates nothing.
                    }
                }
                self.stats.hits += 1;
                return Lookup::Hit {
                    ready_at: now + self.cfg.hit_latency,
                };
            }
        }
        if is_store && !self.cfg.write_allocate {
            // Write-through no-allocate store miss: forwarded below without
            // an MSHR.
            self.stats.misses += 1;
            return Lookup::Miss;
        }
        let sector_addr = addr / self.cfg.sector_bytes * self.cfg.sector_bytes;
        if let Some(&fill) = self.mshrs.get(&sector_addr) {
            self.stats.mshr_merges += 1;
            return Lookup::MshrHit {
                ready_at: fill.max(now) + 1,
            };
        }
        self.stats.misses += 1;
        Lookup::Miss
    }

    /// Registers an outstanding fill for the sector containing `addr`,
    /// completing at `fill_at`.
    pub fn start_fill(&mut self, addr: u64, fill_at: u64) {
        let sector_addr = addr / self.cfg.sector_bytes * self.cfg.sector_bytes;
        self.mshrs.insert(sector_addr, fill_at);
    }

    /// Completes a fill: installs the sector, evicting an LRU victim if
    /// needed. Returns `true` if a dirty line was written back.
    pub fn fill(&mut self, addr: u64, now: u64, mark_dirty: bool) -> bool {
        let sector_addr = addr / self.cfg.sector_bytes * self.cfg.sector_bytes;
        self.mshrs.remove(&sector_addr);
        let tag = addr / self.cfg.line_bytes;
        let sector = self.sector_bit(addr);
        let set = self.set_index(addr);
        // Existing line: add the sector.
        for line in &mut self.sets[set] {
            if line.valid && line.tag == tag {
                line.sectors_valid |= sector;
                if mark_dirty {
                    line.sectors_dirty |= sector;
                }
                line.last_use = now;
                return false;
            }
        }
        // Victim: invalid way first, else LRU.
        let victim = {
            let lines = &self.sets[set];
            (0..lines.len())
                .min_by_key(|&i| (lines[i].valid, lines[i].last_use))
                .expect("non-zero associativity")
        };
        let evicted_dirty = {
            let v = &self.sets[set][victim];
            v.valid && v.sectors_dirty != 0
        };
        if evicted_dirty {
            self.stats.writebacks += 1;
        }
        self.sets[set][victim] = Line {
            tag,
            sectors_valid: sector,
            sectors_dirty: if mark_dirty { sector } else { 0 },
            last_use: now,
            valid: true,
        };
        evicted_dirty
    }

    /// Invalidates everything (kernel-launch boundary).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            for line in set {
                line.valid = false;
                line.sectors_valid = 0;
                line.sectors_dirty = 0;
            }
        }
        self.mshrs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        Cache::new(CacheConfig {
            sets: 4,
            ways: 2,
            line_bytes: 128,
            sector_bytes: 32,
            hit_latency: 10,
            write_allocate: true,
        })
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small();
        assert_eq!(c.lookup(0x100, false, 0), Lookup::Miss);
        c.start_fill(0x100, 50);
        c.fill(0x100, 50, false);
        match c.lookup(0x100, false, 60) {
            Lookup::Hit { ready_at } => assert_eq!(ready_at, 70),
            other => panic!("expected hit, got {other:?}"),
        }
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn sectors_fill_independently() {
        let mut c = small();
        assert_eq!(c.lookup(0x100, false, 0), Lookup::Miss);
        c.fill(0x100, 10, false);
        // Same line, different sector: still a miss.
        assert_eq!(c.lookup(0x120, false, 20), Lookup::Miss);
        c.fill(0x120, 30, false);
        assert!(matches!(c.lookup(0x120, false, 40), Lookup::Hit { .. }));
        assert!(matches!(c.lookup(0x100, false, 40), Lookup::Hit { .. }));
    }

    #[test]
    fn mshr_merges_outstanding_sector() {
        let mut c = small();
        assert_eq!(c.lookup(0x200, false, 0), Lookup::Miss);
        c.start_fill(0x200, 100);
        match c.lookup(0x208, false, 5) {
            Lookup::MshrHit { ready_at } => assert_eq!(ready_at, 101),
            other => panic!("expected MSHR hit, got {other:?}"),
        }
        assert_eq!(c.stats().mshr_merges, 1);
        assert_eq!(c.mshr_count(), 1);
        c.fill(0x200, 100, false);
        assert_eq!(c.mshr_count(), 0);
    }

    #[test]
    fn lru_eviction_prefers_oldest() {
        let mut c = small();
        // Fill both ways of one set, then a third line evicts the older.
        let set_stride = 128 * 4; // same set every 4 lines (before hashing)
        let a = 0u64;
        // Find three addresses in the same set under the hash.
        let mut same_set = vec![a];
        let set0 = c.set_index(a);
        let mut addr = a + set_stride;
        while same_set.len() < 3 {
            if c.set_index(addr) == set0 {
                same_set.push(addr);
            }
            addr += 128;
        }
        c.fill(same_set[0], 1, false);
        c.fill(same_set[1], 2, false);
        // Touch line 0 so line 1 is LRU.
        assert!(matches!(
            c.lookup(same_set[0], false, 3),
            Lookup::Hit { .. }
        ));
        c.fill(same_set[2], 4, false);
        assert!(matches!(
            c.lookup(same_set[0], false, 5),
            Lookup::Hit { .. }
        ));
        assert_eq!(
            c.lookup(same_set[1], false, 6),
            Lookup::Miss,
            "LRU line evicted"
        );
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        let set0 = c.set_index(0);
        let mut same_set = vec![0u64];
        let mut addr = 128;
        while same_set.len() < 3 {
            if c.set_index(addr) == set0 {
                same_set.push(addr);
            }
            addr += 128;
        }
        c.fill(same_set[0], 1, true); // dirty
        c.fill(same_set[1], 2, false);
        c.fill(same_set[2], 3, false); // evicts dirty victim
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_through_store_miss_does_not_allocate() {
        let mut c = Cache::new(CacheConfig {
            write_allocate: false,
            ..*small().config()
        });
        assert_eq!(c.lookup(0x100, true, 0), Lookup::Miss);
        // Still a miss for loads afterwards (no allocation).
        assert_eq!(c.lookup(0x100, false, 1), Lookup::Miss);
    }

    #[test]
    fn flush_invalidates() {
        let mut c = small();
        c.fill(0x100, 1, false);
        assert!(matches!(c.lookup(0x100, false, 2), Lookup::Hit { .. }));
        c.flush();
        assert_eq!(c.lookup(0x100, false, 3), Lookup::Miss);
    }

    #[test]
    fn capacity_math() {
        assert_eq!(CacheConfig::l1(128).capacity(), 128 * 1024);
        assert!(CacheConfig::l2_slice(768).capacity() >= 768 * 1024);
    }
}
