//! Per-CTA shared memory: backing storage plus the 32-bank conflict
//! model.
//!
//! Volta's shared memory has 32 banks of 4 bytes; a warp access that maps
//! two lanes to different 32-bit words in the same bank serializes into
//! multiple passes. The paper's WMMA-optimized GEMM kernels stage operand
//! tiles in shared memory to cut `wmma.load` latency by over 100× at
//! large matrix sizes (Fig 16) — the latency advantage this module models.

use tcsim_isa::exec::MemAccess;
use tcsim_isa::ByteMemory;

/// Number of shared-memory banks.
pub const NUM_BANKS: usize = 32;
/// Bytes per bank word.
pub const BANK_BYTES: u64 = 4;

/// Shared memory storage for one CTA.
#[derive(Clone, Debug)]
pub struct SharedMemory {
    bytes: Vec<u8>,
}

impl SharedMemory {
    /// Creates a CTA scratchpad of `size` bytes.
    pub fn new(size: u32) -> SharedMemory {
        SharedMemory {
            bytes: vec![0; size as usize],
        }
    }

    /// Capacity in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }
}

impl ByteMemory for SharedMemory {
    fn read_u8(&self, addr: u64) -> u8 {
        self.bytes.get(addr as usize).copied().unwrap_or(0)
    }

    fn write_u8(&mut self, addr: u64, value: u8) {
        let idx = addr as usize;
        if idx >= self.bytes.len() {
            // Out-of-bounds shared accesses would fault on hardware; the
            // simulator grows instead so malformed kernels fail tests via
            // wrong data, not UB.
            self.bytes.resize(idx + 1, 0);
        }
        self.bytes[idx] = value;
    }

    // Fast in-bounds paths (hot in shared-memory staged GEMMs).
    fn read_u16(&self, addr: u64) -> u16 {
        let i = addr as usize;
        match self.bytes.get(i..i + 2) {
            Some(b) => u16::from_le_bytes([b[0], b[1]]),
            None => u16::from_le_bytes([self.read_u8(addr), self.read_u8(addr + 1)]),
        }
    }

    fn read_u32(&self, addr: u64) -> u32 {
        let i = addr as usize;
        match self.bytes.get(i..i + 4) {
            Some(b) => u32::from_le_bytes([b[0], b[1], b[2], b[3]]),
            None => (self.read_u16(addr) as u32) | ((self.read_u16(addr + 2) as u32) << 16),
        }
    }

    fn write_u32(&mut self, addr: u64, value: u32) {
        let i = addr as usize;
        if i + 4 <= self.bytes.len() {
            self.bytes[i..i + 4].copy_from_slice(&value.to_le_bytes());
        } else {
            for (j, byte) in value.to_le_bytes().into_iter().enumerate() {
                self.write_u8(addr + j as u64, byte);
            }
        }
    }
}

/// Bank-conflict analysis of one warp shared-memory instruction: the
/// number of serialized passes (1 = conflict-free) computed exactly as the
/// hardware does — distinct 4-byte words wanted from the same bank
/// serialize; lanes reading the same word broadcast.
pub fn conflict_passes(accesses: &[MemAccess]) -> u32 {
    // Runs once per shared-memory instruction: gather every touched
    // word id into a reused scratch buffer, sort, then count distinct
    // words per bank — no per-call allocation, no quadratic `contains`.
    thread_local! {
        static WORDS: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
    }
    WORDS.with(|cell| {
        let mut words = cell.borrow_mut();
        words.clear();
        for a in accesses {
            let first = a.addr / BANK_BYTES;
            let last = (a.addr + a.bytes as u64 - 1) / BANK_BYTES;
            for w in first..=last {
                words.push(w);
            }
        }
        words.sort_unstable();
        let mut counts = [0u32; NUM_BANKS];
        let mut prev = u64::MAX;
        for &w in words.iter() {
            if w != prev {
                counts[(w as usize) % NUM_BANKS] += 1;
                prev = w;
            }
        }
        counts.iter().copied().max().unwrap_or(0).max(1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(lane: u8, addr: u64, bytes: u8) -> MemAccess {
        MemAccess { lane, addr, bytes }
    }

    #[test]
    fn storage_roundtrip() {
        let mut s = SharedMemory::new(1024);
        s.write_u32(100, 0xCAFEBABE);
        assert_eq!(s.read_u32(100), 0xCAFEBABE);
        assert_eq!(s.size(), 1024);
    }

    #[test]
    fn conflict_free_unit_stride() {
        let a: Vec<MemAccess> = (0..32).map(|l| acc(l, 4 * l as u64, 4)).collect();
        assert_eq!(conflict_passes(&a), 1);
    }

    #[test]
    fn broadcast_is_conflict_free() {
        let a: Vec<MemAccess> = (0..32).map(|l| acc(l, 64, 4)).collect();
        assert_eq!(conflict_passes(&a), 1);
    }

    #[test]
    fn stride_32_words_is_fully_serialized() {
        // All lanes hit bank 0 with distinct words: 32 passes.
        let a: Vec<MemAccess> = (0..32).map(|l| acc(l, 128 * l as u64, 4)).collect();
        assert_eq!(conflict_passes(&a), 32);
    }

    #[test]
    fn stride_2_words_is_two_way_conflict() {
        let a: Vec<MemAccess> = (0..32).map(|l| acc(l, 8 * l as u64, 4)).collect();
        assert_eq!(conflict_passes(&a), 2);
    }

    #[test]
    fn vector_access_counts_each_word() {
        // One lane reading 16B touches 4 banks, no conflict by itself.
        assert_eq!(conflict_passes(&[acc(0, 0, 16)]), 1);
        // Two lanes reading 128B apart with 16B each: words collide in 4
        // banks → 2 passes.
        assert_eq!(conflict_passes(&[acc(0, 0, 16), acc(1, 128, 16)]), 2);
    }

    #[test]
    fn empty_access_is_one_pass() {
        assert_eq!(conflict_passes(&[]), 1);
    }
}
