//! Device global memory: a sparse, paged, byte-addressable store with a
//! bump allocator standing in for `cudaMalloc`.

use std::collections::HashMap;
use tcsim_isa::ByteMemory;

const PAGE_SHIFT: u32 = 16;
const PAGE_BYTES: usize = 1 << PAGE_SHIFT;

/// Pages below this index (4 GiB of address space) live in a
/// direct-mapped table; the bump allocator hands out addresses from the
/// bottom, so every well-behaved workload stays in this range.
const DIRECT_PAGES: u64 = 1 << 16;

type Page = Box<[u8; PAGE_BYTES]>;

/// Sparse device memory. Pages materialize on first write; reads of
/// untouched memory return zero (deterministic, like a fresh allocation
/// in the simulator).
///
/// The page table is split: the bottom 4 GiB is a directly indexed
/// vector (the warp executor performs one table access per lane per
/// load/store, so this lookup must not hash), and stray far addresses —
/// fuzzed kernels computing wild pointers — fall back to a map instead
/// of materializing the gap.
#[derive(Default)]
pub struct DeviceMemory {
    direct: Vec<Option<Page>>,
    far: HashMap<u64, Page>,
    next_alloc: u64,
}

impl DeviceMemory {
    /// Creates an empty device memory. Allocations start at a non-zero
    /// base so that address 0 stays an obvious "null".
    pub fn new() -> DeviceMemory {
        DeviceMemory {
            direct: Vec::new(),
            far: HashMap::new(),
            next_alloc: 0x1_0000,
        }
    }

    /// Allocates `bytes` of device memory, 256-byte aligned (matching
    /// `cudaMalloc` alignment guarantees), returning the base address.
    pub fn alloc(&mut self, bytes: u64) -> u64 {
        let base = self.next_alloc.div_ceil(256) * 256;
        self.next_alloc = base + bytes.max(1);
        base
    }

    /// Number of materialized pages (for memory-footprint assertions).
    pub fn resident_pages(&self) -> usize {
        self.direct.iter().filter(|p| p.is_some()).count() + self.far.len()
    }

    /// Copies a byte slice into device memory ("host-to-device").
    pub fn copy_from_host(&mut self, addr: u64, data: &[u8]) {
        for (i, &b) in data.iter().enumerate() {
            self.write_u8(addr + i as u64, b);
        }
    }

    /// Copies device memory out to a byte vector ("device-to-host").
    pub fn copy_to_host(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len).map(|i| self.read_u8(addr + i as u64)).collect()
    }
}

impl DeviceMemory {
    #[inline]
    fn page(&self, addr: u64) -> Option<&[u8; PAGE_BYTES]> {
        let pg = addr >> PAGE_SHIFT;
        if pg < DIRECT_PAGES {
            match self.direct.get(pg as usize) {
                Some(Some(p)) => Some(p),
                _ => None,
            }
        } else {
            self.far.get(&pg).map(|p| &**p)
        }
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_BYTES] {
        let pg = addr >> PAGE_SHIFT;
        let new_page = || {
            vec![0u8; PAGE_BYTES]
                .into_boxed_slice()
                .try_into()
                .expect("page size")
        };
        if pg < DIRECT_PAGES {
            let idx = pg as usize;
            if self.direct.len() <= idx {
                self.direct.resize_with(idx + 1, || None);
            }
            self.direct[idx].get_or_insert_with(new_page)
        } else {
            self.far.entry(pg).or_insert_with(new_page)
        }
    }
}

impl ByteMemory for DeviceMemory {
    fn read_u8(&self, addr: u64) -> u8 {
        match self.page(addr) {
            Some(p) => p[(addr as usize) & (PAGE_BYTES - 1)],
            None => 0,
        }
    }

    fn write_u8(&mut self, addr: u64, value: u8) {
        self.page_mut(addr)[(addr as usize) & (PAGE_BYTES - 1)] = value;
    }

    // Fast paths: one page lookup per access when it does not straddle a
    // page boundary (the warp executor reads gigabytes through these).
    fn read_u16(&self, addr: u64) -> u16 {
        let off = (addr as usize) & (PAGE_BYTES - 1);
        if off + 2 <= PAGE_BYTES {
            match self.page(addr) {
                Some(p) => u16::from_le_bytes([p[off], p[off + 1]]),
                None => 0,
            }
        } else {
            u16::from_le_bytes([self.read_u8(addr), self.read_u8(addr + 1)])
        }
    }

    fn read_u32(&self, addr: u64) -> u32 {
        let off = (addr as usize) & (PAGE_BYTES - 1);
        if off + 4 <= PAGE_BYTES {
            match self.page(addr) {
                Some(p) => u32::from_le_bytes([p[off], p[off + 1], p[off + 2], p[off + 3]]),
                None => 0,
            }
        } else {
            u16::from_le_bytes([self.read_u8(addr), self.read_u8(addr + 1)]) as u32
                | ((u16::from_le_bytes([self.read_u8(addr + 2), self.read_u8(addr + 3)]) as u32)
                    << 16)
        }
    }

    fn write_u16(&mut self, addr: u64, value: u16) {
        let off = (addr as usize) & (PAGE_BYTES - 1);
        if off + 2 <= PAGE_BYTES {
            self.page_mut(addr)[off..off + 2].copy_from_slice(&value.to_le_bytes());
        } else {
            let b = value.to_le_bytes();
            self.write_u8(addr, b[0]);
            self.write_u8(addr + 1, b[1]);
        }
    }

    fn write_u32(&mut self, addr: u64, value: u32) {
        let off = (addr as usize) & (PAGE_BYTES - 1);
        if off + 4 <= PAGE_BYTES {
            self.page_mut(addr)[off..off + 4].copy_from_slice(&value.to_le_bytes());
        } else {
            for (i, byte) in value.to_le_bytes().into_iter().enumerate() {
                self.write_u8(addr + i as u64, byte);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let mut m = DeviceMemory::new();
        let a = m.alloc(100);
        let b = m.alloc(3000);
        let c = m.alloc(1);
        assert_eq!(a % 256, 0);
        assert_eq!(b % 256, 0);
        assert!(b >= a + 100);
        assert!(c >= b + 3000);
    }

    #[test]
    fn sparse_reads_are_zero() {
        let m = DeviceMemory::new();
        assert_eq!(m.read_u8(0xDEAD_BEEF), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn rw_across_page_boundary() {
        let mut m = DeviceMemory::new();
        let addr = (PAGE_BYTES as u64) - 2;
        m.write_u32(addr, 0xAABB_CCDD);
        assert_eq!(m.read_u32(addr), 0xAABB_CCDD);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn far_addresses_fall_back_to_the_map() {
        // A wild pointer far beyond the direct window must not
        // materialize the gap.
        let mut m = DeviceMemory::new();
        let far = (DIRECT_PAGES << PAGE_SHIFT) + 12345;
        m.write_u32(far, 0x1234_5678);
        assert_eq!(m.read_u32(far), 0x1234_5678);
        assert_eq!(m.resident_pages(), 1);
        assert!(m.direct.is_empty());
    }

    #[test]
    fn host_copies_roundtrip() {
        let mut m = DeviceMemory::new();
        let base = m.alloc(8);
        m.copy_from_host(base, &[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(m.copy_to_host(base, 8), vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(m.read_u64(base), 0x0807_0605_0403_0201);
    }
}
