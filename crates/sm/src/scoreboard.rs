//! Per-warp scoreboard tracking in-flight register writes (RAW/WAW
//! hazards), as the paper's GPGPU-Sim changes do for `wmma.mma` (§V-A:
//! "We updated the scoreboard to check for RAW and WAW hazard associated
//! with wmma.mma instructions").

use std::collections::HashMap;
use tcsim_isa::{Instr, Reg, UnitClass};

/// One in-flight register write.
#[derive(Clone, Copy, Debug)]
struct Pending {
    /// Cycle at which the value becomes readable.
    ready: u64,
    /// Whether the producing instruction went to the memory unit — this
    /// is what turns a scoreboard stall into a *memory* stall rather
    /// than a plain RAW dependency in the trace breakdown.
    from_mem: bool,
}

/// A blocking dependency found by [`Scoreboard::check`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hazard {
    /// Cycle at which the last blocking write completes.
    pub ready: u64,
    /// Whether any blocking write is an outstanding memory load.
    pub from_mem: bool,
}

/// In-flight write tracking for one warp.
#[derive(Clone, Debug, Default)]
pub struct Scoreboard {
    pending: HashMap<Reg, Pending>,
}

impl Scoreboard {
    /// Creates an empty scoreboard.
    pub fn new() -> Scoreboard {
        Scoreboard::default()
    }

    /// Releases completed writes at cycle `now`.
    pub fn retire(&mut self, now: u64) {
        self.pending.retain(|_, p| p.ready > now);
    }

    /// Whether `instr` can issue at `now`: all registers it reads (RAW)
    /// and writes (WAW) must be free of pending writes. Returns the
    /// blocking `Hazard` (latest completion cycle, memory-origin flag)
    /// if stalled.
    pub fn check(&self, instr: &Instr, volta_frag: bool, now: u64) -> Result<(), Hazard> {
        let mut block: Option<Hazard> = None;
        let mut consider = |p: Pending| {
            if p.ready > now {
                block = Some(match block {
                    None => Hazard {
                        ready: p.ready,
                        from_mem: p.from_mem,
                    },
                    Some(h) => Hazard {
                        ready: h.ready.max(p.ready),
                        from_mem: h.from_mem || p.from_mem,
                    },
                });
            }
        };
        for r in instr.use_regs(volta_frag) {
            if let Some(&p) = self.pending.get(&r) {
                consider(p);
            }
        }
        for r in instr.def_regs(volta_frag) {
            if let Some(&p) = self.pending.get(&r) {
                consider(p);
            }
        }
        match block {
            None => Ok(()),
            Some(h) => Err(h),
        }
    }

    /// Records the writes of an issued instruction completing at `ready`.
    pub fn issue(&mut self, instr: &Instr, volta_frag: bool, ready: u64) {
        let from_mem = instr.op.unit() == UnitClass::Mem;
        for r in instr.def_regs(volta_frag) {
            let slot = self.pending.entry(r).or_insert(Pending {
                ready: 0,
                from_mem: false,
            });
            if ready > slot.ready {
                slot.ready = ready;
                slot.from_mem = from_mem;
            } else if ready == slot.ready {
                slot.from_mem |= from_mem;
            }
        }
    }

    /// Number of registers with pending writes.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    /// Cycle when every pending write has completed (`now` if none).
    pub fn all_clear_at(&self, now: u64) -> u64 {
        self.pending
            .values()
            .map(|p| p.ready)
            .max()
            .unwrap_or(now)
            .max(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsim_isa::{Instr, MemSpace, MemWidth, Op, Operand};

    fn mov(dst: u16, src: u16) -> Instr {
        Instr::new(Op::Mov)
            .with_dst(Reg(dst))
            .with_srcs(vec![Operand::Reg(Reg(src))])
    }

    fn ld(dst: u16, addr: u16) -> Instr {
        Instr::new(Op::Ld {
            space: MemSpace::Global,
            width: MemWidth::B32,
        })
        .with_dst(Reg(dst))
        .with_srcs(vec![Operand::Reg(Reg(addr))])
    }

    fn alu_hazard(ready: u64) -> Hazard {
        Hazard {
            ready,
            from_mem: false,
        }
    }

    #[test]
    fn raw_hazard_blocks_until_write_completes() {
        let mut sb = Scoreboard::new();
        sb.issue(&mov(1, 0), true, 50);
        // r2 ← r1 must wait for r1.
        assert_eq!(sb.check(&mov(2, 1), true, 10), Err(alu_hazard(50)));
        sb.retire(50);
        assert_eq!(sb.check(&mov(2, 1), true, 50), Ok(()));
    }

    #[test]
    fn waw_hazard_blocks() {
        let mut sb = Scoreboard::new();
        sb.issue(&mov(3, 0), true, 80);
        assert_eq!(sb.check(&mov(3, 4), true, 20), Err(alu_hazard(80)));
    }

    #[test]
    fn independent_instructions_issue_freely() {
        let mut sb = Scoreboard::new();
        sb.issue(&mov(1, 0), true, 100);
        assert_eq!(sb.check(&mov(5, 6), true, 1), Ok(()));
        assert_eq!(sb.outstanding(), 1);
        assert_eq!(sb.all_clear_at(1), 100);
    }

    #[test]
    fn retire_frees_exactly_completed_writes() {
        let mut sb = Scoreboard::new();
        sb.issue(&mov(1, 0), true, 10);
        sb.issue(&mov(2, 0), true, 20);
        sb.retire(15);
        assert_eq!(sb.outstanding(), 1);
        assert_eq!(sb.check(&mov(4, 1), true, 15), Ok(()));
        assert_eq!(sb.check(&mov(4, 2), true, 15), Err(alu_hazard(20)));
    }

    #[test]
    fn multiple_writers_to_same_reg_keep_latest() {
        let mut sb = Scoreboard::new();
        sb.issue(&mov(1, 0), true, 30);
        sb.issue(&mov(1, 0), true, 10); // earlier completion must not mask
        assert_eq!(sb.check(&mov(2, 1), true, 15), Err(alu_hazard(30)));
    }

    #[test]
    fn load_dependency_reports_memory_origin() {
        let mut sb = Scoreboard::new();
        sb.issue(&ld(1, 0), true, 200);
        sb.issue(&mov(2, 0), true, 40);
        // Blocking on the load alone: a memory stall.
        assert_eq!(
            sb.check(&mov(3, 1), true, 10),
            Err(Hazard {
                ready: 200,
                from_mem: true
            })
        );
        // Blocking on both: the flag propagates even though the ALU
        // write is also outstanding.
        let mixed = Instr::new(Op::IAdd)
            .with_dst(Reg(4))
            .with_srcs(vec![Operand::Reg(Reg(1)), Operand::Reg(Reg(2))]);
        assert_eq!(
            sb.check(&mixed, true, 10),
            Err(Hazard {
                ready: 200,
                from_mem: true
            })
        );
        // Blocking on the ALU write alone: plain RAW.
        assert_eq!(sb.check(&mov(5, 2), true, 10), Err(alu_hazard(40)));
        // A later ALU overwrite of the load target clears the flag.
        sb.issue(&mov(1, 0), true, 300);
        assert_eq!(
            sb.check(&mov(6, 1), true, 10),
            Err(Hazard {
                ready: 300,
                from_mem: false
            })
        );
    }
}
