//! Per-warp scoreboard tracking in-flight register writes (RAW/WAW
//! hazards), as the paper's GPGPU-Sim changes do for `wmma.mma` (§V-A:
//! "We updated the scoreboard to check for RAW and WAW hazard associated
//! with wmma.mma instructions").

use std::collections::HashMap;
use tcsim_isa::{Instr, Reg};

/// In-flight write tracking for one warp.
#[derive(Clone, Debug, Default)]
pub struct Scoreboard {
    pending: HashMap<Reg, u64>,
}

impl Scoreboard {
    /// Creates an empty scoreboard.
    pub fn new() -> Scoreboard {
        Scoreboard::default()
    }

    /// Releases completed writes at cycle `now`.
    pub fn retire(&mut self, now: u64) {
        self.pending.retain(|_, &mut ready| ready > now);
    }

    /// Whether `instr` can issue at `now`: all registers it reads (RAW)
    /// and writes (WAW) must be free of pending writes. Returns the cycle
    /// at which the blocking write completes if stalled.
    pub fn check(&self, instr: &Instr, volta_frag: bool, now: u64) -> Result<(), u64> {
        let mut block: Option<u64> = None;
        let mut consider = |ready: u64| {
            if ready > now {
                block = Some(block.map_or(ready, |b: u64| b.max(ready)));
            }
        };
        for r in instr.use_regs(volta_frag) {
            if let Some(&ready) = self.pending.get(&r) {
                consider(ready);
            }
        }
        for r in instr.def_regs(volta_frag) {
            if let Some(&ready) = self.pending.get(&r) {
                consider(ready);
            }
        }
        match block {
            None => Ok(()),
            Some(cycle) => Err(cycle),
        }
    }

    /// Records the writes of an issued instruction completing at `ready`.
    pub fn issue(&mut self, instr: &Instr, volta_frag: bool, ready: u64) {
        for r in instr.def_regs(volta_frag) {
            let slot = self.pending.entry(r).or_insert(0);
            *slot = (*slot).max(ready);
        }
    }

    /// Number of registers with pending writes.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    /// Cycle when every pending write has completed (`now` if none).
    pub fn all_clear_at(&self, now: u64) -> u64 {
        self.pending.values().copied().max().unwrap_or(now).max(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsim_isa::{Instr, Op, Operand};

    fn mov(dst: u16, src: u16) -> Instr {
        Instr::new(Op::Mov)
            .with_dst(Reg(dst))
            .with_srcs(vec![Operand::Reg(Reg(src))])
    }

    #[test]
    fn raw_hazard_blocks_until_write_completes() {
        let mut sb = Scoreboard::new();
        sb.issue(&mov(1, 0), true, 50);
        // r2 ← r1 must wait for r1.
        assert_eq!(sb.check(&mov(2, 1), true, 10), Err(50));
        sb.retire(50);
        assert_eq!(sb.check(&mov(2, 1), true, 50), Ok(()));
    }

    #[test]
    fn waw_hazard_blocks() {
        let mut sb = Scoreboard::new();
        sb.issue(&mov(3, 0), true, 80);
        assert_eq!(sb.check(&mov(3, 4), true, 20), Err(80));
    }

    #[test]
    fn independent_instructions_issue_freely() {
        let mut sb = Scoreboard::new();
        sb.issue(&mov(1, 0), true, 100);
        assert_eq!(sb.check(&mov(5, 6), true, 1), Ok(()));
        assert_eq!(sb.outstanding(), 1);
        assert_eq!(sb.all_clear_at(1), 100);
    }

    #[test]
    fn retire_frees_exactly_completed_writes() {
        let mut sb = Scoreboard::new();
        sb.issue(&mov(1, 0), true, 10);
        sb.issue(&mov(2, 0), true, 20);
        sb.retire(15);
        assert_eq!(sb.outstanding(), 1);
        assert_eq!(sb.check(&mov(4, 1), true, 15), Ok(()));
        assert_eq!(sb.check(&mov(4, 2), true, 15), Err(20));
    }

    #[test]
    fn multiple_writers_to_same_reg_keep_latest() {
        let mut sb = Scoreboard::new();
        sb.issue(&mov(1, 0), true, 30);
        sb.issue(&mov(1, 0), true, 10); // earlier completion must not mask
        assert_eq!(sb.check(&mov(2, 1), true, 15), Err(30));
    }
}
