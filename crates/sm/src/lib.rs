#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Streaming-multiprocessor pipeline model: sub-cores, warp schedulers,
//! scoreboard, operand collection, execution units and the tensor-core
//! unit interface.
//!
//! Models the Volta SM of Fig 1 in the paper: four sub-cores, each with a
//! warp scheduler issuing one warp instruction per cycle, separate
//! FP32/INT/FP64/MUFU pipes, **two tensor cores**, and a shared MIO path
//! to the L1/shared-memory complex. `wmma.mma` instructions are issued to
//! the tensor-core unit after operand collection and occupy it per the
//! Fig 9 / Table I schedules (§V-A).
//!
//! # Example
//!
//! ```
//! use tcsim_sm::{Sm, SmConfig};
//!
//! let sm = Sm::new(SmConfig::volta());
//! assert!(sm.idle());
//! assert_eq!(sm.config().sub_cores, 4);
//! ```

mod config;
mod decode;
mod dense_scoreboard;
mod scoreboard;
mod sm;
mod stats;

pub use config::{SchedPolicy, SmConfig};
pub use decode::{DecodedKernel, UopTiming};
pub use dense_scoreboard::DenseScoreboard;
pub use scoreboard::{Hazard, Scoreboard};
pub use sm::{CtaRequirements, LaunchSpec, Sm};
pub use stats::{unit_index, SmStats, WmmaKind, WmmaSample};
