//! Structure-of-arrays scoreboard for the μop-driven issue path.
//!
//! Semantically identical to the `HashMap`-based [`crate::Scoreboard`],
//! restated over dense per-register arrays so the hot hazard check is a
//! slice walk with no hashing or allocation:
//!
//! * an entry is *pending* iff `ready[r] > now` — stale entries need no
//!   explicit `retire` pass, they are simply skipped;
//! * [`DenseScoreboard::issue`] keeps the **latest** completion per
//!   register (overwrite-if-greater, OR the memory flag on ties), exactly
//!   the map version's merge rule;
//! * completion times never decrease, so a running maximum is exact for
//!   [`DenseScoreboard::all_clear_at`]: if the max is in the past, every
//!   entry is.

use crate::scoreboard::Hazard;
use tcsim_isa::Reg;

/// Dense in-flight write tracking for one warp (indexed by register
/// number, sized to the kernel's register count).
#[derive(Clone, Debug)]
pub struct DenseScoreboard {
    /// Cycle each register's latest in-flight write completes (0 = never
    /// written, always ready).
    ready: Box<[u64]>,
    /// Whether that write came from the memory unit.
    from_mem: Box<[bool]>,
    /// Max over all completion times ever recorded.
    max_ready: u64,
}

impl DenseScoreboard {
    /// An empty scoreboard covering registers `0..num_regs`.
    pub fn new(num_regs: usize) -> DenseScoreboard {
        DenseScoreboard {
            ready: vec![0; num_regs].into_boxed_slice(),
            from_mem: vec![false; num_regs].into_boxed_slice(),
            max_ready: 0,
        }
    }

    /// Whether an instruction reading `uses` and writing `defs` can issue
    /// at `now`; returns the blocking [`Hazard`] (latest completion, OR of
    /// memory-origin flags) otherwise — the same RAW/WAW rule as
    /// [`crate::Scoreboard::check`].
    pub fn check(&self, uses: &[Reg], defs: &[Reg], now: u64) -> Result<(), Hazard> {
        let mut block: Option<Hazard> = None;
        for &r in uses.iter().chain(defs) {
            let ready = self.ready[r.0 as usize];
            if ready > now {
                let from_mem = self.from_mem[r.0 as usize];
                block = Some(match block {
                    None => Hazard { ready, from_mem },
                    Some(h) => Hazard {
                        ready: h.ready.max(ready),
                        from_mem: h.from_mem || from_mem,
                    },
                });
            }
        }
        match block {
            None => Ok(()),
            Some(h) => Err(h),
        }
    }

    /// Records an issued instruction's writes to `defs` completing at
    /// `ready`.
    pub fn issue(&mut self, defs: &[Reg], ready: u64, from_mem: bool) {
        // `max_ready` advances only on actual register writes: an
        // instruction without defs (e.g. a store) leaves no entry in the
        // map scoreboard and must not move the barrier fence here either.
        for &r in defs {
            let slot = &mut self.ready[r.0 as usize];
            if ready > *slot {
                *slot = ready;
                self.from_mem[r.0 as usize] = from_mem;
            } else if ready == *slot {
                self.from_mem[r.0 as usize] |= from_mem;
            }
            self.max_ready = self.max_ready.max(ready);
        }
    }

    /// Cycle when every pending write has completed (`now` if none) —
    /// the barrier-fence query.
    pub fn all_clear_at(&self, now: u64) -> u64 {
        self.max_ready.max(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoreboard::Scoreboard;
    use tcsim_isa::{Instr, MemSpace, MemWidth, Op, Operand};

    fn r(n: u16) -> Reg {
        Reg(n)
    }

    #[test]
    fn raw_and_waw_block_until_completion() {
        let mut sb = DenseScoreboard::new(8);
        sb.issue(&[r(1)], 50, false);
        assert_eq!(
            sb.check(&[r(1)], &[r(2)], 10),
            Err(Hazard {
                ready: 50,
                from_mem: false
            })
        );
        assert_eq!(
            sb.check(&[r(4)], &[r(1)], 20),
            Err(Hazard {
                ready: 50,
                from_mem: false
            })
        );
        assert_eq!(sb.check(&[r(1)], &[r(2)], 50), Ok(()));
    }

    #[test]
    fn latest_writer_wins_and_memory_flag_tracks_it() {
        let mut sb = DenseScoreboard::new(8);
        sb.issue(&[r(1)], 200, true);
        assert_eq!(
            sb.check(&[r(1)], &[], 10),
            Err(Hazard {
                ready: 200,
                from_mem: true
            })
        );
        // A later ALU overwrite clears the memory attribution.
        sb.issue(&[r(1)], 300, false);
        assert_eq!(
            sb.check(&[r(1)], &[], 10),
            Err(Hazard {
                ready: 300,
                from_mem: false
            })
        );
        // An *earlier* completion must not mask the pending one.
        sb.issue(&[r(1)], 250, true);
        assert_eq!(
            sb.check(&[r(1)], &[], 10),
            Err(Hazard {
                ready: 300,
                from_mem: false
            })
        );
    }

    #[test]
    fn all_clear_tracks_running_max() {
        let mut sb = DenseScoreboard::new(8);
        assert_eq!(sb.all_clear_at(7), 7);
        sb.issue(&[r(3)], 40, false);
        sb.issue(&[r(5)], 25, true);
        assert_eq!(sb.all_clear_at(10), 40);
        assert_eq!(sb.all_clear_at(90), 90);
    }

    /// Differential: drive the map scoreboard and the dense one with the
    /// same instruction sequence and compare every observation.
    #[test]
    fn matches_hashmap_scoreboard_on_a_mixed_sequence() {
        let mov = |dst: u16, src: u16| {
            Instr::new(Op::Mov)
                .with_dst(Reg(dst))
                .with_srcs(vec![Operand::Reg(Reg(src))])
        };
        let ld = |dst: u16, addr: u16| {
            Instr::new(Op::Ld {
                space: MemSpace::Global,
                width: MemWidth::B32,
            })
            .with_dst(Reg(dst))
            .with_srcs(vec![Operand::Reg(Reg(addr))])
        };
        let program = [
            (mov(1, 0), 50u64),
            (ld(2, 1), 180),
            (mov(3, 2), 60),
            (ld(1, 3), 300),
            (mov(4, 1), 310),
        ];
        let mut map = Scoreboard::new();
        let mut dense = DenseScoreboard::new(16);
        let mut now = 0u64;
        for (instr, ready) in &program {
            let uses = instr.use_regs(true);
            let defs = instr.def_regs(true);
            for probe in [now, now + 17, ready - 1, *ready] {
                map.retire(probe);
                assert_eq!(
                    map.check(instr, true, probe),
                    dense.check(&uses, &defs, probe),
                    "check at cycle {probe}"
                );
                assert_eq!(map.all_clear_at(probe), dense.all_clear_at(probe));
            }
            map.issue(instr, true, *ready);
            dense.issue(&defs, *ready, instr.op.unit() == tcsim_isa::UnitClass::Mem);
            now += 13;
        }
    }
}
