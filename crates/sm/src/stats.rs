//! Per-SM statistics: issue counts, unit utilization, and the WMMA
//! latency profile used by the Fig 15 / Fig 16 experiments.

use tcsim_isa::UnitClass;

/// The three profiled WMMA instruction kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WmmaKind {
    /// `wmma.load.{a,b,c}`.
    Load,
    /// `wmma.mma`.
    Mma,
    /// `wmma.store.d`.
    Store,
}

/// One profiled WMMA instruction execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WmmaSample {
    /// Which instruction.
    pub kind: WmmaKind,
    /// Cycle it issued.
    pub issue: u64,
    /// Issue-to-writeback latency in cycles.
    pub latency: u64,
}

/// Counters for one SM.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SmStats {
    /// Warp instructions issued.
    pub issued: u64,
    /// Issued per functional-unit class, indexed by [`unit_index`].
    pub issued_by_unit: [u64; UnitClass::COUNT],
    /// Cycles with at least one issue.
    pub active_cycles: u64,
    /// CTA barriers completed.
    pub barriers: u64,
    /// CTAs run to completion.
    pub ctas_completed: u64,
    /// Coalesced global-memory transactions generated.
    pub global_txns: u64,
    /// Shared-memory conflict passes beyond the first.
    pub shared_conflict_passes: u64,
    /// Register-bank conflict stall cycles added at operand collection.
    pub reg_bank_stalls: u64,
    /// Profiled WMMA instruction latencies (when profiling is enabled).
    pub wmma_samples: Vec<WmmaSample>,
}

/// Dense index of a [`UnitClass`] into `issued_by_unit`.
pub fn unit_index(u: UnitClass) -> usize {
    match u {
        UnitClass::Sp => 0,
        UnitClass::Int => 1,
        UnitClass::Fp64 => 2,
        UnitClass::Mufu => 3,
        UnitClass::Tensor => 4,
        UnitClass::Mem => 5,
        UnitClass::Control => 6,
    }
}

impl SmStats {
    /// Merges another SM's counters into this one (for GPU-wide totals).
    pub fn merge(&mut self, other: &SmStats) {
        self.issued += other.issued;
        for i in 0..UnitClass::COUNT {
            self.issued_by_unit[i] += other.issued_by_unit[i];
        }
        self.active_cycles += other.active_cycles;
        self.barriers += other.barriers;
        self.ctas_completed += other.ctas_completed;
        self.global_txns += other.global_txns;
        self.shared_conflict_passes += other.shared_conflict_passes;
        self.reg_bank_stalls += other.reg_bank_stalls;
        self.wmma_samples.extend(other.wmma_samples.iter().copied());
    }

    /// Counters accumulated since the `before` snapshot of the **same**
    /// SM — the per-launch delta on a long-lived SM. `wmma_samples` must
    /// only have grown by appending (they do: samples are pushed in issue
    /// order and never removed).
    pub fn delta_since(&self, before: &SmStats) -> SmStats {
        let mut issued_by_unit = self.issued_by_unit;
        for (d, b) in issued_by_unit.iter_mut().zip(&before.issued_by_unit) {
            *d -= b;
        }
        SmStats {
            issued: self.issued - before.issued,
            issued_by_unit,
            active_cycles: self.active_cycles - before.active_cycles,
            barriers: self.barriers - before.barriers,
            ctas_completed: self.ctas_completed - before.ctas_completed,
            global_txns: self.global_txns - before.global_txns,
            shared_conflict_passes: self.shared_conflict_passes - before.shared_conflict_passes,
            reg_bank_stalls: self.reg_bank_stalls - before.reg_bank_stalls,
            wmma_samples: self.wmma_samples[before.wmma_samples.len()..].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_indices_are_dense_and_distinct() {
        let all = [
            UnitClass::Sp,
            UnitClass::Int,
            UnitClass::Fp64,
            UnitClass::Mufu,
            UnitClass::Tensor,
            UnitClass::Mem,
            UnitClass::Control,
        ];
        let mut seen = [false; 7];
        for u in all {
            let i = unit_index(u);
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = SmStats {
            issued: 5,
            ..Default::default()
        };
        a.issued_by_unit[0] = 3;
        let mut b = SmStats {
            issued: 7,
            ..Default::default()
        };
        b.issued_by_unit[0] = 2;
        b.wmma_samples.push(WmmaSample {
            kind: WmmaKind::Mma,
            issue: 1,
            latency: 54,
        });
        a.merge(&b);
        assert_eq!(a.issued, 12);
        assert_eq!(a.issued_by_unit[0], 5);
        assert_eq!(a.wmma_samples.len(), 1);
    }
}
