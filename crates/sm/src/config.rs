//! Streaming-multiprocessor configuration (the Fig 1 sub-core resources).

/// Warp scheduling policy of each sub-core scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Greedy-then-oldest: keep issuing the same warp until it stalls,
    /// then fall back to the oldest ready warp (GPGPU-Sim's default).
    Gto,
    /// Loose round-robin over the sub-core's warps.
    RoundRobin,
}

/// Per-SM structural and latency parameters.
///
/// Defaults (via [`SmConfig::volta`]) model one Titan V SM as described in
/// §II-A and Fig 1: four sub-cores, each with one warp scheduler
/// (1 warp-inst/clk), 16 FP32 + 16 INT + 8 FP64 + 4 MUFU lanes, two
/// tensor cores, and a shared MIO path for memory operations.
#[derive(Clone, Copy, Debug)]
pub struct SmConfig {
    /// Processing blocks per SM (Volta: 4).
    pub sub_cores: usize,
    /// Maximum resident warps per SM (Volta: 64).
    pub max_warps: usize,
    /// Maximum resident CTAs per SM (Volta: 32).
    pub max_ctas: usize,
    /// 32-bit registers per SM (Volta: 64K).
    pub registers: u32,
    /// Shared memory capacity per SM in bytes (Volta: up to 96 KiB).
    pub shared_bytes: u32,
    /// L1 data cache size in KiB.
    pub l1_kib: usize,
    /// FP32 lanes per sub-core (FFMA/clk).
    pub fp32_lanes: usize,
    /// INT lanes per sub-core.
    pub int_lanes: usize,
    /// FP64 lanes per sub-core.
    pub fp64_lanes: usize,
    /// MUFU (transcendental) lanes per sub-core.
    pub mufu_lanes: usize,
    /// Tensor cores per sub-core (Volta: 2; a warp uses both, §IV).
    pub tensor_cores: usize,
    /// ALU result latency (FP32/INT).
    pub alu_latency: u64,
    /// FP64 result latency.
    pub fp64_latency: u64,
    /// MUFU result latency.
    pub mufu_latency: u64,
    /// Shared-memory access latency (conflict-free).
    pub shared_latency: u64,
    /// Cycles the MIO path is occupied per memory transaction.
    pub mio_cycles_per_txn: u64,
    /// Register operand collection latency added before issue-to-unit
    /// (operand collector stage).
    pub operand_collect: u64,
    /// Register-file banks per sub-core (bank conflicts add cycles).
    pub reg_banks: usize,
    /// Whether the tensor cores follow the Volta model (double-loaded
    /// fragments, Fig 9 timing) or Turing (Table I timing).
    pub volta_tensor: bool,
    /// Whether the tensor cores additionally accept the Ampere
    /// per-instruction `mma.sync` modes (m16n8 tiles, BF16/TF32
    /// multiplicands, 2:4 sparsity). Requires `volta_tensor == false`.
    pub ampere_mma_sync: bool,
    /// Warp scheduler policy.
    pub scheduler: SchedPolicy,
    /// Model the operand-reuse cache (`.reuse` flags, §III-C): when on,
    /// repeated source operands of consecutive tensor-core steps skip
    /// their register-bank fetch, avoiding bank-conflict stalls.
    pub operand_reuse_cache: bool,
}

impl SmConfig {
    /// One Volta (Titan V) SM.
    pub fn volta() -> SmConfig {
        SmConfig {
            sub_cores: 4,
            max_warps: 64,
            max_ctas: 32,
            registers: 65536,
            shared_bytes: 96 * 1024,
            l1_kib: 128,
            fp32_lanes: 16,
            int_lanes: 16,
            fp64_lanes: 8,
            mufu_lanes: 4,
            tensor_cores: 2,
            alu_latency: 4,
            fp64_latency: 16,
            mufu_latency: 21,
            shared_latency: 24,
            mio_cycles_per_txn: 2,
            operand_collect: 4,
            reg_banks: 8,
            volta_tensor: true,
            ampere_mma_sync: false,
            scheduler: SchedPolicy::Gto,
            operand_reuse_cache: true,
        }
    }

    /// One Turing (RTX 2080) SM: same sub-core structure, Turing tensor
    /// timing, 64 KiB shared carve-out.
    pub fn turing() -> SmConfig {
        SmConfig {
            shared_bytes: 64 * 1024,
            l1_kib: 96,
            volta_tensor: false,
            ..SmConfig::volta()
        }
    }

    /// An Ampere-generation SM: Turing structure plus the per-instruction
    /// `mma.sync` modes (a "mini-A100" for conformance testing — the
    /// paper's measured machines remain Volta and Turing).
    pub fn ampere() -> SmConfig {
        SmConfig {
            ampere_mma_sync: true,
            ..SmConfig::turing()
        }
    }

    /// The tensor-core generation this SM models.
    pub fn tensor_gen(&self) -> tcsim_isa::TensorGen {
        if self.volta_tensor {
            tcsim_isa::TensorGen::Volta
        } else if self.ampere_mma_sync {
            tcsim_isa::TensorGen::Ampere
        } else {
            tcsim_isa::TensorGen::Turing
        }
    }

    /// Issue interval in cycles for a 32-thread warp over `lanes` lanes.
    pub fn warp_ii(&self, lanes: usize) -> u64 {
        (tcsim_isa::WARP_SIZE as u64).div_ceil(lanes as u64)
    }

    /// Peak warp-instruction issue width of one SM in instructions per
    /// cycle: each sub-core scheduler issues at most one warp
    /// instruction per clock (§II-A), so the SM-level bound is the
    /// sub-core count. `IPC ≤ num_sms × issue_width()` is a hard
    /// invariant of any launch.
    pub fn issue_width(&self) -> u64 {
        self.sub_cores as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volta_matches_fig1_resources() {
        let c = SmConfig::volta();
        assert_eq!(c.sub_cores, 4);
        assert_eq!(c.tensor_cores, 2); // two per sub-core → 8 per SM
        assert_eq!(c.fp32_lanes, 16);
        assert_eq!(c.fp64_lanes, 8);
        assert_eq!(c.mufu_lanes, 4);
        assert_eq!(c.registers, 65536);
        assert_eq!(c.max_warps, 64);
    }

    #[test]
    fn issue_width_is_one_warp_instruction_per_sub_core() {
        // §II-A: each sub-core scheduler issues at most one warp
        // instruction per clock, so the SM bound equals the sub-core
        // count on both modeled architectures.
        assert_eq!(SmConfig::volta().issue_width(), 4);
        assert_eq!(SmConfig::turing().issue_width(), 4);
        let narrow = SmConfig {
            sub_cores: 2,
            ..SmConfig::volta()
        };
        assert_eq!(narrow.issue_width(), 2);
    }

    #[test]
    fn warp_issue_intervals() {
        let c = SmConfig::volta();
        assert_eq!(c.warp_ii(c.fp32_lanes), 2); // 16 FFMA/clk → 2 cycles/warp
        assert_eq!(c.warp_ii(c.fp64_lanes), 4);
        assert_eq!(c.warp_ii(c.mufu_lanes), 8);
        assert_eq!(c.warp_ii(32), 1);
    }

    #[test]
    fn turing_differs_in_tensor_model() {
        assert!(SmConfig::volta().volta_tensor);
        assert!(!SmConfig::turing().volta_tensor);
    }

    #[test]
    fn tensor_generation_classification() {
        use tcsim_isa::TensorGen;
        assert_eq!(SmConfig::volta().tensor_gen(), TensorGen::Volta);
        assert_eq!(SmConfig::turing().tensor_gen(), TensorGen::Turing);
        let ampere = SmConfig::ampere();
        assert_eq!(ampere.tensor_gen(), TensorGen::Ampere);
        // Ampere keeps the Turing structural parameters.
        assert!(!ampere.volta_tensor);
        assert_eq!(ampere.shared_bytes, SmConfig::turing().shared_bytes);
        assert_eq!(ampere.l1_kib, SmConfig::turing().l1_kib);
    }
}
