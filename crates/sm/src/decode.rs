//! Per-kernel decode-once timing tables for the μop issue path.
//!
//! [`DecodedKernel`] pairs a [`tcsim_isa::UopStream`] with per-μop timing
//! precomputed against one [`SmConfig`]: issue interval, result latency
//! and register-bank conflict cycles are all static per instruction, so
//! the per-cycle scheduler reads two small arrays instead of re-deriving
//! them from the `Instr` (and, for bank conflicts, re-counting operand
//! banks on every issue).
//!
//! Decoding is pure — it records exactly the values the cycle-stepped
//! [`crate::Sm::step`] path computes inline, which is what makes the two
//! issue paths cycle-identical.

use crate::config::SmConfig;
use tcsim_core::mma_timing;
use tcsim_isa::{Kernel, Op, UnitClass, UopStream};

/// Precomputed issue timing for one μop.
#[derive(Clone, Copy, Debug, Default)]
pub struct UopTiming {
    /// Functional-unit occupancy per issue (0 for memory/control, whose
    /// occupancy is dynamic or absent).
    pub ii: u64,
    /// Operand-collect-to-writeback latency (unused for memory/control).
    pub latency: u64,
    /// Register-bank conflict cycles added to operand collection (already
    /// zero where the operand-reuse cache absorbs them).
    pub bank_conflicts: u64,
}

/// One kernel decoded against one SM configuration: μop stream plus
/// per-μop timing, built once per launch and shared by every CTA.
#[derive(Clone, Debug)]
pub struct DecodedKernel {
    uops: UopStream,
    timing: Vec<UopTiming>,
}

impl DecodedKernel {
    /// Decodes `kernel` for SMs configured as `cfg`.
    pub fn decode(kernel: &Kernel, cfg: &SmConfig) -> DecodedKernel {
        let volta = cfg.volta_tensor;
        let uops = UopStream::decode(kernel, volta);
        let timing = kernel
            .instrs()
            .iter()
            .enumerate()
            .map(|(pc, instr)| {
                let unit = instr.op.unit();
                let bank_conflicts = if cfg.operand_reuse_cache && unit == UnitClass::Tensor {
                    0
                } else {
                    let mut bank_counts = vec![0u32; cfg.reg_banks];
                    for r in uops.uses(pc) {
                        bank_counts[r.0 as usize % cfg.reg_banks] += 1;
                    }
                    bank_counts
                        .iter()
                        .copied()
                        .max()
                        .unwrap_or(1)
                        .saturating_sub(1) as u64
                };
                let (ii, latency) = match unit {
                    UnitClass::Sp => (cfg.warp_ii(cfg.fp32_lanes), cfg.alu_latency),
                    UnitClass::Int => (cfg.warp_ii(cfg.int_lanes), cfg.alu_latency),
                    UnitClass::Fp64 => (cfg.warp_ii(cfg.fp64_lanes), cfg.fp64_latency),
                    UnitClass::Mufu => (cfg.warp_ii(cfg.mufu_lanes), cfg.mufu_latency),
                    UnitClass::Tensor => {
                        let Op::Wmma(dir) = &instr.op else {
                            unreachable!("tensor unit ⇒ wmma.mma")
                        };
                        let t = mma_timing(volta, dir);
                        // A warp normally drives two tensor cores (§IV).
                        let ii =
                            t.initiation_interval as u64 * 2 / (cfg.tensor_cores.max(1) as u64);
                        (ii, t.latency as u64)
                    }
                    UnitClass::Mem | UnitClass::Control => (0, 0),
                };
                UopTiming {
                    ii,
                    latency,
                    bank_conflicts,
                }
            })
            .collect();
        DecodedKernel { uops, timing }
    }

    /// The μop stream (unit classes, operand spans).
    pub fn uops(&self) -> &UopStream {
        &self.uops
    }

    /// Timing of the μop at `pc`.
    pub fn timing(&self, pc: usize) -> UopTiming {
        self.timing[pc]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsim_isa::{KernelBuilder, Operand};

    #[test]
    fn alu_timing_matches_config() {
        let mut b = KernelBuilder::new("t");
        let r = b.reg();
        b.mov(r, Operand::Imm(1));
        b.fadd(r, r, Operand::Reg(r));
        b.exit();
        let cfg = SmConfig::volta();
        let dk = DecodedKernel::decode(&b.build(), &cfg);
        // mov → Int: ii = warp_ii(int_lanes), latency = alu_latency.
        assert_eq!(dk.timing(0).ii, cfg.warp_ii(cfg.int_lanes));
        assert_eq!(dk.timing(0).latency, cfg.alu_latency);
        // fadd → Sp.
        assert_eq!(dk.timing(1).ii, cfg.warp_ii(cfg.fp32_lanes));
        assert_eq!(dk.timing(1).latency, cfg.alu_latency);
        // exit → Control: no static timing.
        assert_eq!(dk.timing(2).ii, 0);
    }

    #[test]
    fn bank_conflicts_count_same_bank_sources() {
        // Sources r0 and r8 share bank 0 (of 8) ⇒ one conflict cycle.
        let mut b = KernelBuilder::new("t");
        let r0 = b.reg_block(9); // r0..r8
        b.iadd(r0, r0, Operand::Reg(tcsim_isa::Reg(r0.0 + 8)));
        b.exit();
        let cfg = SmConfig::volta();
        let dk = DecodedKernel::decode(&b.build(), &cfg);
        assert_eq!(dk.timing(0).bank_conflicts, 1);
        assert_eq!(dk.timing(1).bank_conflicts, 0);
    }
}
