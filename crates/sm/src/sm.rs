//! The streaming-multiprocessor timing model.
//!
//! Follows GPGPU-Sim's structure, which the paper extends with a tensor
//! core unit interfaced to the operand collector (§V-A): each sub-core has
//! one warp scheduler issuing one warp instruction per cycle to its
//! functional units; instructions execute *functionally* at issue and the
//! timing model delays result visibility through the scoreboard. Memory
//! instructions coalesce into sector transactions serviced by the L1/L2/
//! DRAM hierarchy; `wmma.mma` occupies the sub-core's tensor-core pair
//! according to the Fig 9 / Table I schedules.

use crate::config::{SchedPolicy, SmConfig};
use crate::decode::DecodedKernel;
use crate::dense_scoreboard::DenseScoreboard;
use crate::scoreboard::Scoreboard;
use crate::stats::{unit_index, SmStats, WmmaKind, WmmaSample};
use std::sync::Arc;
use tcsim_core::{mma_timing, trace_mma, TensorCoreModel};
use tcsim_isa::exec::{ExecEnv, StepAction, WarpExec, FULL_MASK};
use tcsim_isa::{
    Dim3, Instr, Kernel, LaunchConfig, MemSpace, Op, Operand, UnitClass, WmmaDirective, WARP_SIZE,
};
use tcsim_mem::{coalesce, conflict_passes, DeviceMemory, L1Path, MemSystem, SharedMemory};
use tcsim_trace::{emit, EventKind, StallReason, TraceEvent, TraceUnit, Tracer};

/// Everything shared by all CTAs of one kernel launch.
#[derive(Clone)]
pub struct LaunchSpec {
    /// The kernel to run.
    pub kernel: Arc<Kernel>,
    /// Parameter buffer contents.
    pub params: Arc<Vec<u8>>,
    /// Grid/block geometry.
    pub launch: LaunchConfig,
    /// The kernel decoded once into μop/timing tables (see
    /// [`DecodedKernel`]), shared by every CTA of the launch. `None`
    /// makes each SM decode on first CTA placement — equivalent, just
    /// without the sharing.
    pub uops: Option<Arc<DecodedKernel>>,
}

impl LaunchSpec {
    /// Static resources one CTA of this launch occupies on an SM.
    pub fn cta_requirements(&self) -> CtaRequirements {
        CtaRequirements {
            warps: self.launch.warps_per_cta() as usize,
            registers: self.kernel.num_regs() * self.launch.threads_per_cta(),
            shared_bytes: self.kernel.shared_bytes() + self.launch.shared_bytes,
        }
    }
}

/// Static resources a CTA occupies (occupancy limiting).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CtaRequirements {
    /// Warp slots needed.
    pub warps: usize,
    /// Register-file allocation (registers × threads).
    pub registers: u32,
    /// Shared-memory allocation in bytes.
    pub shared_bytes: u32,
}

struct CtaSlot {
    cta_id: Dim3,
    shared: SharedMemory,
    warps_total: usize,
    warps_done: usize,
    warp_slots: Vec<usize>,
    requirements: CtaRequirements,
    spec: LaunchSpec,
    decoded: Arc<DecodedKernel>,
}

struct WarpSlot {
    exec: WarpExec,
    scoreboard: Scoreboard,
    dense: DenseScoreboard,
    cta: usize,
    age: u64,
    done: bool,
    at_barrier: bool,
    block_until: u64,
}

#[derive(Clone, Copy, Default)]
struct SubCore {
    last_issued: Option<usize>,
    unit_free: [u64; UnitClass::COUNT],
    rr_cursor: usize,
}

/// Warp is resident in its slot.
const WARP_LIVE: u8 = 1;
/// Warp has executed its exit.
const WARP_DONE: u8 = 2;
/// Warp is parked at a barrier.
const WARP_AT_BARRIER: u8 = 4;

/// Scheduling-visible warp state in structure-of-arrays form.
///
/// The candidate scan of the event-driven core touches only these three
/// compact arrays (one byte + two words per warp slot) instead of
/// dereferencing the multi-kilobyte [`WarpSlot`] (register file, two
/// scoreboards) per slot per cycle. The arrays mirror the authoritative
/// fields in [`WarpSlot`]; every site that mutates `done`, `at_barrier`
/// or `block_until` updates the mirror in the same statement block, and
/// the cycle-identity suite (`tests/core_differential.rs`) checks the
/// two views never diverge observably.
struct WarpMeta {
    /// `WARP_LIVE | WARP_DONE | WARP_AT_BARRIER` bits; 0 = empty slot.
    /// A warp is schedulable iff its flags are exactly `WARP_LIVE`.
    flags: Vec<u8>,
    /// Launch-order age (GTO tie-break), valid while live.
    age: Vec<u64>,
    /// Earliest cycle the warp could issue, valid while live.
    block_until: Vec<u64>,
}

impl WarpMeta {
    fn new(slots: usize) -> WarpMeta {
        WarpMeta {
            flags: vec![0; slots],
            age: vec![0; slots],
            block_until: vec![0; slots],
        }
    }
}

/// Maps an ISA unit class onto its trace-event counterpart (the trace
/// crate is a leaf and cannot depend on `tcsim-isa`).
fn trace_unit(u: UnitClass) -> TraceUnit {
    match u {
        UnitClass::Sp => TraceUnit::Sp,
        UnitClass::Int => TraceUnit::Int,
        UnitClass::Fp64 => TraceUnit::Fp64,
        UnitClass::Mufu => TraceUnit::Mufu,
        UnitClass::Tensor => TraceUnit::Tensor,
        UnitClass::Mem => TraceUnit::Mem,
        UnitClass::Control => TraceUnit::Control,
    }
}

/// One streaming multiprocessor.
pub struct Sm {
    cfg: SmConfig,
    id: u16,
    l1: L1Path,
    mio_free: u64,
    ctas: Vec<Option<CtaSlot>>,
    warps: Vec<Option<WarpSlot>>,
    sub: Vec<SubCore>,
    tensor: TensorCoreModel,
    regs_used: u32,
    shared_used: u32,
    warps_used: usize,
    age_counter: u64,
    stats: SmStats,
    profile_wmma: bool,
    meta: WarpMeta,
    /// Resident CTA count (`ctas` slots that are `Some`).
    live_ctas: usize,
    /// Warps currently parked at a barrier; the release pass is skipped
    /// by the event-driven core while this is zero (it would scan every
    /// CTA's warp list only to find nothing arrived).
    barrier_waiters: usize,
    /// A warp exited since the last retire pass, so a CTA may be
    /// complete; cleared when the pass runs.
    retire_check: bool,
}

impl Sm {
    /// Builds an idle SM (trace events carry SM id 0).
    pub fn new(cfg: SmConfig) -> Sm {
        Sm::with_id(cfg, 0)
    }

    /// Builds an idle SM whose trace events carry `id`.
    pub fn with_id(cfg: SmConfig, id: u16) -> Sm {
        Sm {
            cfg,
            id,
            l1: L1Path::new(cfg.l1_kib),
            mio_free: 0,
            ctas: Vec::new(),
            warps: (0..cfg.max_warps).map(|_| None).collect(),
            sub: vec![SubCore::default(); cfg.sub_cores],
            tensor: if cfg.volta_tensor {
                TensorCoreModel::volta()
            } else {
                TensorCoreModel::turing()
            },
            regs_used: 0,
            shared_used: 0,
            warps_used: 0,
            age_counter: 0,
            stats: SmStats::default(),
            profile_wmma: false,
            meta: WarpMeta::new(cfg.max_warps),
            live_ctas: 0,
            barrier_waiters: 0,
            retire_check: false,
        }
    }

    /// Enables recording of per-WMMA-instruction latencies (Fig 15/16).
    pub fn set_profile_wmma(&mut self, on: bool) {
        self.profile_wmma = on;
    }

    /// The SM's configuration.
    pub fn config(&self) -> &SmConfig {
        &self.cfg
    }

    /// Counter snapshot.
    pub fn stats(&self) -> &SmStats {
        &self.stats
    }

    /// L1 cache statistics.
    pub fn l1_stats(&self) -> tcsim_mem::CacheStats {
        self.l1.stats()
    }

    /// Number of resident CTAs.
    pub fn resident_ctas(&self) -> usize {
        self.ctas.iter().filter(|c| c.is_some()).count()
    }

    /// Whether the SM has no resident work.
    pub fn idle(&self) -> bool {
        self.live_ctas == 0
    }

    /// Whether a CTA with the given requirements can be accepted now.
    pub fn can_accept(&self, req: &CtaRequirements) -> bool {
        self.warps_used + req.warps <= self.cfg.max_warps
            && self.regs_used + req.registers <= self.cfg.registers
            && self.shared_used + req.shared_bytes <= self.cfg.shared_bytes
            && self.live_ctas < self.cfg.max_ctas
    }

    /// Places one CTA onto the SM.
    ///
    /// # Panics
    ///
    /// Panics if [`Sm::can_accept`] would return false.
    pub fn launch_cta(&mut self, spec: &LaunchSpec, cta_id: Dim3, now: u64) {
        let req = spec.cta_requirements();
        assert!(self.can_accept(&req), "CTA launched onto a full SM");
        let decoded = spec
            .uops
            .clone()
            .unwrap_or_else(|| Arc::new(DecodedKernel::decode(&spec.kernel, &self.cfg)));
        let threads = spec.launch.threads_per_cta();
        let mut warp_slots = Vec::new();
        let cta_index = self
            .ctas
            .iter()
            .position(|c| c.is_none())
            .unwrap_or_else(|| {
                self.ctas.push(None);
                self.ctas.len() - 1
            });
        for w in 0..req.warps {
            let live = threads.saturating_sub((w * WARP_SIZE) as u32).min(32);
            let mask = if live >= 32 {
                FULL_MASK
            } else {
                (1u32 << live) - 1
            };
            let slot = self
                .warps
                .iter()
                .position(|s| s.is_none())
                .expect("warp slot free (checked by can_accept)");
            self.warps[slot] = Some(WarpSlot {
                exec: WarpExec::new(spec.kernel.num_regs(), w as u32, mask),
                scoreboard: Scoreboard::new(),
                dense: DenseScoreboard::new(spec.kernel.num_regs() as usize),
                cta: cta_index,
                age: self.age_counter,
                done: false,
                at_barrier: false,
                block_until: now,
            });
            self.meta.flags[slot] = WARP_LIVE;
            self.meta.age[slot] = self.age_counter;
            self.meta.block_until[slot] = now;
            self.age_counter += 1;
            warp_slots.push(slot);
        }
        self.ctas[cta_index] = Some(CtaSlot {
            cta_id,
            shared: SharedMemory::new(req.shared_bytes.max(1)),
            warps_total: req.warps,
            warps_done: 0,
            warp_slots,
            requirements: req,
            spec: spec.clone(),
            decoded,
        });
        self.warps_used += req.warps;
        self.regs_used += req.registers;
        self.shared_used += req.shared_bytes;
        self.live_ctas += 1;
    }

    /// Advances the SM by one cycle. Returns `None` if at least one warp
    /// instruction issued, otherwise `Some(hint)` — the earliest future
    /// cycle at which something could issue (`u64::MAX` if the SM is
    /// fully idle), enabling event-skipping in the GPU loop.
    pub fn step(
        &mut self,
        now: u64,
        global: &mut DeviceMemory,
        sys: &mut MemSystem,
        tracer: &mut dyn Tracer,
    ) -> Option<u64> {
        self.step_inner(now, global, sys, tracer, false)
    }

    /// [`Sm::step`] for the event-driven core: identical scheduling
    /// decisions, trace events and statistics, but blocked issue attempts
    /// run against the decode-once μop tables and the dense scoreboard
    /// instead of re-expanding `Instr` operands — the per-attempt hot
    /// path allocates nothing.
    pub fn step_event(
        &mut self,
        now: u64,
        global: &mut DeviceMemory,
        sys: &mut MemSystem,
        tracer: &mut dyn Tracer,
    ) -> Option<u64> {
        self.step_inner(now, global, sys, tracer, true)
    }

    fn step_inner(
        &mut self,
        now: u64,
        global: &mut DeviceMemory,
        sys: &mut MemSystem,
        tracer: &mut dyn Tracer,
        fast: bool,
    ) -> Option<u64> {
        let mut issued_any = false;
        let mut hint = u64::MAX;

        for sc in 0..self.cfg.sub_cores {
            // Candidate warps live at slots sc, sc+S, sc+2S, … (static
            // sub-core assignment); at most max_warps / sub_cores of them.
            // Order on the stack: GTO tries the last-issued warp first,
            // then oldest-first; round-robin rotates.
            let mut cand = [(u64::MAX, usize::MAX); 64];
            let mut n = 0;
            let mut wi = sc;
            if fast {
                // The event-driven core scans the compact SoA mirror:
                // three small arrays instead of one multi-KiB WarpSlot
                // dereference per slot — this loop runs for every
                // sub-core of every awake SM on every visited cycle.
                while wi < self.meta.flags.len() {
                    if self.meta.flags[wi] == WARP_LIVE {
                        let until = self.meta.block_until[wi];
                        if until > now {
                            hint = hint.min(until);
                        } else {
                            cand[n] = (self.meta.age[wi], wi);
                            n += 1;
                        }
                    }
                    wi += self.cfg.sub_cores;
                }
            } else {
                while wi < self.warps.len() {
                    if let Some(w) = self.warps[wi].as_ref() {
                        if !w.done && !w.at_barrier {
                            if w.block_until > now {
                                hint = hint.min(w.block_until);
                            } else {
                                cand[n] = (w.age, wi);
                                n += 1;
                            }
                        }
                    }
                    wi += self.cfg.sub_cores;
                }
            }
            let cand = &mut cand[..n];
            match self.cfg.scheduler {
                SchedPolicy::Gto => {
                    cand.sort_unstable();
                    if let Some(last) = self.sub[sc].last_issued {
                        if let Some(pos) = cand.iter().position(|&(_, i)| i == last) {
                            cand[..=pos].rotate_right(1);
                        }
                    }
                }
                SchedPolicy::RoundRobin => {
                    // The cursor advances only on steps with candidates,
                    // so skipping the candidate-free steps (as the
                    // event-driven loop does) cannot desynchronize it.
                    if n > 0 {
                        cand.rotate_left(self.sub[sc].rr_cursor % n);
                        self.sub[sc].rr_cursor = self.sub[sc].rr_cursor.wrapping_add(1);
                    }
                }
            }

            let mut issued_here = false;
            for &(_, wi) in cand.iter() {
                let result = if fast {
                    self.try_issue_fast(sc, wi, now, global, sys, tracer)
                } else {
                    self.try_issue(sc, wi, now, global, sys, tracer)
                };
                match result {
                    IssueResult::Issued => {
                        self.sub[sc].last_issued = Some(wi);
                        issued_here = true;
                        break;
                    }
                    IssueResult::Blocked(until) => {
                        hint = hint.min(until.max(now + 1));
                    }
                }
            }
            if issued_here {
                issued_any = true;
            }
        }

        // Barrier release: a CTA whose live warps have all arrived. With
        // no warp parked at a barrier the pass cannot release anything,
        // so the event-driven core skips it outright.
        if !fast || self.barrier_waiters > 0 {
            for c in 0..self.ctas.len() {
                let Some(cta) = &self.ctas[c] else { continue };
                let arrived = cta
                    .warp_slots
                    .iter()
                    .filter(|&&wi| self.warps[wi].as_ref().is_some_and(|w| w.at_barrier))
                    .count();
                if arrived > 0 && arrived + cta.warps_done == cta.warps_total {
                    for &wi in &self.ctas[c].as_ref().expect("checked").warp_slots.clone() {
                        if let Some(w) = self.warps[wi].as_mut() {
                            if w.at_barrier {
                                w.at_barrier = false;
                                w.block_until = now + 1;
                                self.meta.flags[wi] &= !WARP_AT_BARRIER;
                                self.meta.block_until[wi] = now + 1;
                                self.barrier_waiters -= 1;
                            }
                        }
                    }
                    self.stats.barriers += 1;
                }
            }
        }

        // Retire completed CTAs and free their resources. `warps_done`
        // only advances when a warp issues its exit, which raises
        // `retire_check`; until then no CTA can newly complete and the
        // event-driven core skips the scan.
        if !fast || self.retire_check {
            for c in 0..self.ctas.len() {
                let done = self.ctas[c]
                    .as_ref()
                    .is_some_and(|cta| cta.warps_done == cta.warps_total);
                if done {
                    let cta = self.ctas[c].take().expect("checked");
                    for wi in cta.warp_slots {
                        self.warps[wi] = None;
                        self.meta.flags[wi] = 0;
                    }
                    self.warps_used -= cta.warps_total;
                    self.regs_used -= cta.requirements.registers;
                    self.shared_used -= cta.requirements.shared_bytes;
                    self.stats.ctas_completed += 1;
                    self.live_ctas -= 1;
                }
            }
            self.retire_check = false;
        }

        if issued_any {
            self.stats.active_cycles += 1;
            None
        } else {
            Some(hint)
        }
    }

    fn try_issue(
        &mut self,
        sc: usize,
        wi: usize,
        now: u64,
        global: &mut DeviceMemory,
        sys: &mut MemSystem,
        tracer: &mut dyn Tracer,
    ) -> IssueResult {
        let cta_idx = self.warps[wi].as_ref().expect("warp exists").cta;
        let sm_id = self.id;
        let volta = self.cfg.volta_tensor;

        // Peek the next instruction for hazard/unit checks. The kernel Arc
        // keeps the instruction reference alive without cloning it (this
        // is the per-attempt hot path).
        let (kernel, pc) = {
            let w = self.warps[wi].as_ref().expect("warp exists");
            let cta = self.ctas[cta_idx].as_ref().expect("cta exists");
            (Arc::clone(&cta.spec.kernel), w.exec.pc)
        };
        let instr = &kernel.instrs()[pc];

        // Functional-unit availability first (cheap). Unit-busy times are
        // monotone, so sleeping the warp until the observed free time is
        // exact, not just a heuristic.
        let unit = instr.op.unit();
        match unit {
            UnitClass::Mem => {
                if self.mio_free > now {
                    let until = self.mio_free;
                    self.warps[wi].as_mut().expect("warp exists").block_until = until;
                    self.meta.block_until[wi] = until;
                    emit(tracer, || TraceEvent {
                        cycle: now,
                        sm: sm_id,
                        kind: EventKind::Stall {
                            sub_core: sc as u8,
                            warp: wi as u16,
                            reason: StallReason::Structural,
                            until,
                        },
                    });
                    return IssueResult::Blocked(until);
                }
            }
            UnitClass::Control => {}
            u => {
                let free = self.sub[sc].unit_free[unit_index(u)];
                if free > now {
                    self.warps[wi].as_mut().expect("warp exists").block_until = free;
                    self.meta.block_until[wi] = free;
                    emit(tracer, || TraceEvent {
                        cycle: now,
                        sm: sm_id,
                        kind: EventKind::Stall {
                            sub_core: sc as u8,
                            warp: wi as u16,
                            reason: StallReason::Structural,
                            until: free,
                        },
                    });
                    return IssueResult::Blocked(free);
                }
            }
        }

        // Scoreboard: RAW/WAW on in-flight writes.
        {
            let w = self.warps[wi].as_mut().expect("warp exists");
            w.scoreboard.retire(now);
            if let Err(hazard) = w.scoreboard.check(instr, volta, now) {
                w.block_until = hazard.ready;
                self.meta.block_until[wi] = hazard.ready;
                // Attribute waits on outstanding loads to the memory
                // system rather than plain register dependence.
                let reason = if hazard.from_mem {
                    StallReason::Memory
                } else {
                    StallReason::Raw
                };
                emit(tracer, || TraceEvent {
                    cycle: now,
                    sm: sm_id,
                    kind: EventKind::Stall {
                        sub_core: sc as u8,
                        warp: wi as u16,
                        reason,
                        until: hazard.ready,
                    },
                });
                return IssueResult::Blocked(hazard.ready);
            }
            // Barriers act as execution fences: wait for outstanding
            // writes before arriving.
            if matches!(instr.op, Op::Bar) {
                let clear = w.scoreboard.all_clear_at(now);
                if clear > now {
                    w.block_until = clear;
                    self.meta.block_until[wi] = clear;
                    emit(tracer, || TraceEvent {
                        cycle: now,
                        sm: sm_id,
                        kind: EventKind::Stall {
                            sub_core: sc as u8,
                            warp: wi as u16,
                            reason: StallReason::Barrier,
                            until: clear,
                        },
                    });
                    return IssueResult::Blocked(clear);
                }
            }
        }

        // Only the params Arc and launch dims are needed past this point
        // — cloning the whole LaunchSpec per issue is measurable.
        let (params, block, grid) = {
            let cta = self.ctas[cta_idx].as_ref().expect("cta exists");
            (
                Arc::clone(&cta.spec.params),
                cta.spec.launch.block,
                cta.spec.launch.grid,
            )
        };

        // --- Issue: execute functionally, then account timing. ---
        let outcome = {
            let w = self.warps[wi].as_mut().expect("warp exists");
            let cta = self.ctas[cta_idx].as_mut().expect("cta exists");
            let mut env = ExecEnv {
                global,
                shared: &mut cta.shared,
                params: &params,
                block,
                grid,
                cta: cta.cta_id,
                clock: now,
            };
            tcsim_isa::exec::step(&mut w.exec, &kernel, &mut env, &self.tensor)
        };

        // Operand collection: register-bank conflicts among source reads.
        let mut collect = self.cfg.operand_collect;
        if !(self.cfg.operand_reuse_cache && unit == UnitClass::Tensor) {
            let mut bank_counts = vec![0u32; self.cfg.reg_banks];
            for r in instr.use_regs(volta) {
                bank_counts[r.0 as usize % self.cfg.reg_banks] += 1;
            }
            let conflicts = bank_counts
                .iter()
                .copied()
                .max()
                .unwrap_or(1)
                .saturating_sub(1) as u64;
            collect += conflicts;
            self.stats.reg_bank_stalls += conflicts;
        }

        // Timing by unit class.
        let ready = match unit {
            UnitClass::Sp => {
                let ii = self.cfg.warp_ii(self.cfg.fp32_lanes);
                self.sub[sc].unit_free[unit_index(unit)] = now + ii;
                now + collect + self.cfg.alu_latency + ii
            }
            UnitClass::Int => {
                let ii = self.cfg.warp_ii(self.cfg.int_lanes);
                self.sub[sc].unit_free[unit_index(unit)] = now + ii;
                now + collect + self.cfg.alu_latency + ii
            }
            UnitClass::Fp64 => {
                let ii = self.cfg.warp_ii(self.cfg.fp64_lanes);
                self.sub[sc].unit_free[unit_index(unit)] = now + ii;
                now + collect + self.cfg.fp64_latency + ii
            }
            UnitClass::Mufu => {
                let ii = self.cfg.warp_ii(self.cfg.mufu_lanes);
                self.sub[sc].unit_free[unit_index(unit)] = now + ii;
                now + collect + self.cfg.mufu_latency + ii
            }
            UnitClass::Tensor => {
                let Op::Wmma(dir) = &instr.op else {
                    unreachable!("tensor unit ⇒ wmma.mma")
                };
                let t = mma_timing(volta, dir);
                // A warp normally drives two tensor cores (§IV); with
                // fewer, its HMMA throughput scales down proportionally.
                let ii = t.initiation_interval as u64 * 2 / (self.cfg.tensor_cores.max(1) as u64);
                self.sub[sc].unit_free[unit_index(unit)] = now + ii;
                let ready = now + collect + t.latency as u64;
                if self.profile_wmma {
                    self.push_sample(WmmaKind::Mma, now, ready - now);
                }
                // The first HMMA enters the tensor core once operands are
                // collected, so step completions land at issue + collect +
                // the Fig 9 cumulative cycles.
                trace_mma(
                    tracer,
                    volta,
                    dir,
                    now + collect,
                    sm_id,
                    sc as u8,
                    wi as u16,
                );
                ready
            }
            UnitClass::Mem => self.account_memory(instr, &outcome, now, collect, sys, tracer),
            UnitClass::Control => now + 1,
        };

        emit(tracer, || TraceEvent {
            cycle: now,
            sm: sm_id,
            kind: EventKind::WarpIssue {
                sub_core: sc as u8,
                warp: wi as u16,
                unit: trace_unit(unit),
            },
        });

        {
            let w = self.warps[wi].as_mut().expect("warp exists");
            w.scoreboard.issue(instr, volta, ready);
            match outcome.action {
                StepAction::Exited => {
                    w.done = true;
                    self.meta.flags[wi] |= WARP_DONE;
                    self.retire_check = true;
                    let cta = self.ctas[cta_idx].as_mut().expect("cta exists");
                    cta.warps_done += 1;
                    emit(tracer, || TraceEvent {
                        cycle: now,
                        sm: sm_id,
                        kind: EventKind::WarpRetire {
                            sub_core: sc as u8,
                            warp: wi as u16,
                        },
                    });
                }
                StepAction::Barrier => {
                    w.at_barrier = true;
                    self.meta.flags[wi] |= WARP_AT_BARRIER;
                    self.barrier_waiters += 1;
                }
                StepAction::Continue => {}
            }
        }

        self.stats.issued += 1;
        self.stats.issued_by_unit[unit_index(unit)] += 1;
        IssueResult::Issued
    }

    /// [`Sm::try_issue`] over the decode-once tables: the blocked paths
    /// (unit busy, scoreboard hazard, barrier fence) read the μop's
    /// pre-expanded operand spans and the dense scoreboard — no `Arc`
    /// clone, no `Vec` expansion, no hashing. Stall decisions, emitted
    /// events and all statistics are identical to the legacy path.
    fn try_issue_fast(
        &mut self,
        sc: usize,
        wi: usize,
        now: u64,
        global: &mut DeviceMemory,
        sys: &mut MemSystem,
        tracer: &mut dyn Tracer,
    ) -> IssueResult {
        let (cta_idx, pc) = {
            let w = self.warps[wi].as_ref().expect("warp exists");
            (w.cta, w.exec.pc)
        };
        let sm_id = self.id;
        let volta = self.cfg.volta_tensor;
        let (uop, timing) = {
            let cta = self.ctas[cta_idx].as_ref().expect("cta exists");
            (cta.decoded.uops().uop(pc), cta.decoded.timing(pc))
        };

        // Functional-unit availability (same order and events as the
        // legacy path).
        let unit = uop.unit;
        match unit {
            UnitClass::Mem => {
                if self.mio_free > now {
                    let until = self.mio_free;
                    self.warps[wi].as_mut().expect("warp exists").block_until = until;
                    self.meta.block_until[wi] = until;
                    emit(tracer, || TraceEvent {
                        cycle: now,
                        sm: sm_id,
                        kind: EventKind::Stall {
                            sub_core: sc as u8,
                            warp: wi as u16,
                            reason: StallReason::Structural,
                            until,
                        },
                    });
                    return IssueResult::Blocked(until);
                }
            }
            UnitClass::Control => {}
            u => {
                let free = self.sub[sc].unit_free[unit_index(u)];
                if free > now {
                    self.warps[wi].as_mut().expect("warp exists").block_until = free;
                    self.meta.block_until[wi] = free;
                    emit(tracer, || TraceEvent {
                        cycle: now,
                        sm: sm_id,
                        kind: EventKind::Stall {
                            sub_core: sc as u8,
                            warp: wi as u16,
                            reason: StallReason::Structural,
                            until: free,
                        },
                    });
                    return IssueResult::Blocked(free);
                }
            }
        }

        // Scoreboard RAW/WAW over the pre-expanded spans.
        {
            let cta = self.ctas[cta_idx].as_ref().expect("cta exists");
            let uses = cta.decoded.uops().uses(pc);
            let defs = cta.decoded.uops().defs(pc);
            let w = self.warps[wi].as_mut().expect("warp exists");
            if let Err(hazard) = w.dense.check(uses, defs, now) {
                w.block_until = hazard.ready;
                self.meta.block_until[wi] = hazard.ready;
                let reason = if hazard.from_mem {
                    StallReason::Memory
                } else {
                    StallReason::Raw
                };
                emit(tracer, || TraceEvent {
                    cycle: now,
                    sm: sm_id,
                    kind: EventKind::Stall {
                        sub_core: sc as u8,
                        warp: wi as u16,
                        reason,
                        until: hazard.ready,
                    },
                });
                return IssueResult::Blocked(hazard.ready);
            }
            if uop.is_bar {
                let clear = w.dense.all_clear_at(now);
                if clear > now {
                    w.block_until = clear;
                    self.meta.block_until[wi] = clear;
                    emit(tracer, || TraceEvent {
                        cycle: now,
                        sm: sm_id,
                        kind: EventKind::Stall {
                            sub_core: sc as u8,
                            warp: wi as u16,
                            reason: StallReason::Barrier,
                            until: clear,
                        },
                    });
                    return IssueResult::Blocked(clear);
                }
            }
        }

        // --- Issue (off the hot path): exactly the legacy sequence. ---
        let (kernel, params, block, grid) = {
            let cta = self.ctas[cta_idx].as_ref().expect("cta exists");
            (
                Arc::clone(&cta.spec.kernel),
                Arc::clone(&cta.spec.params),
                cta.spec.launch.block,
                cta.spec.launch.grid,
            )
        };
        let instr = &kernel.instrs()[pc];

        let outcome = {
            let w = self.warps[wi].as_mut().expect("warp exists");
            let cta = self.ctas[cta_idx].as_mut().expect("cta exists");
            let mut env = ExecEnv {
                global,
                shared: &mut cta.shared,
                params: &params,
                block,
                grid,
                cta: cta.cta_id,
                clock: now,
            };
            tcsim_isa::exec::step(&mut w.exec, &kernel, &mut env, &self.tensor)
        };

        // Operand collection: the bank-conflict count was precomputed at
        // decode (zero where the reuse cache absorbs it).
        let collect = self.cfg.operand_collect + timing.bank_conflicts;
        self.stats.reg_bank_stalls += timing.bank_conflicts;

        let ready = match unit {
            UnitClass::Sp | UnitClass::Int | UnitClass::Fp64 | UnitClass::Mufu => {
                self.sub[sc].unit_free[unit_index(unit)] = now + timing.ii;
                now + collect + timing.latency + timing.ii
            }
            UnitClass::Tensor => {
                self.sub[sc].unit_free[unit_index(unit)] = now + timing.ii;
                let ready = now + collect + timing.latency;
                if self.profile_wmma {
                    self.push_sample(WmmaKind::Mma, now, ready - now);
                }
                let Op::Wmma(dir) = &instr.op else {
                    unreachable!("tensor unit ⇒ wmma.mma")
                };
                trace_mma(
                    tracer,
                    volta,
                    dir,
                    now + collect,
                    sm_id,
                    sc as u8,
                    wi as u16,
                );
                ready
            }
            UnitClass::Mem => self.account_memory(instr, &outcome, now, collect, sys, tracer),
            UnitClass::Control => now + 1,
        };

        emit(tracer, || TraceEvent {
            cycle: now,
            sm: sm_id,
            kind: EventKind::WarpIssue {
                sub_core: sc as u8,
                warp: wi as u16,
                unit: trace_unit(unit),
            },
        });

        {
            let cta = self.ctas[cta_idx].as_ref().expect("cta exists");
            let defs = cta.decoded.uops().defs(pc);
            let w = self.warps[wi].as_mut().expect("warp exists");
            w.dense.issue(defs, ready, unit == UnitClass::Mem);
            match outcome.action {
                StepAction::Exited => {
                    w.done = true;
                    self.meta.flags[wi] |= WARP_DONE;
                    self.retire_check = true;
                }
                StepAction::Barrier => {
                    w.at_barrier = true;
                    self.meta.flags[wi] |= WARP_AT_BARRIER;
                    self.barrier_waiters += 1;
                }
                StepAction::Continue => {}
            }
        }
        if matches!(outcome.action, StepAction::Exited) {
            self.ctas[cta_idx].as_mut().expect("cta exists").warps_done += 1;
            emit(tracer, || TraceEvent {
                cycle: now,
                sm: sm_id,
                kind: EventKind::WarpRetire {
                    sub_core: sc as u8,
                    warp: wi as u16,
                },
            });
        }

        self.stats.issued += 1;
        self.stats.issued_by_unit[unit_index(unit)] += 1;
        IssueResult::Issued
    }

    fn account_memory(
        &mut self,
        instr: &Instr,
        outcome: &tcsim_isa::exec::StepOutcome,
        now: u64,
        collect: u64,
        sys: &mut MemSystem,
        tracer: &mut dyn Tracer,
    ) -> u64 {
        let Some(trace) = &outcome.mem else {
            if matches!(instr.op, Op::Shfl { .. }) {
                // Warp shuffles route through the MIO/shared path on Volta.
                self.mio_free = now + self.cfg.mio_cycles_per_txn;
                return now + collect + self.cfg.shared_latency;
            }
            // Parameter-space loads: constant-cache hit.
            return now + collect + self.cfg.alu_latency;
        };
        let kind = match &instr.op {
            Op::Wmma(WmmaDirective::Load { .. }) => Some(WmmaKind::Load),
            Op::Wmma(WmmaDirective::Store { .. }) => Some(WmmaKind::Store),
            _ => None,
        };
        let ready = match trace.space {
            MemSpace::Shared => {
                let passes = conflict_passes(&trace.accesses) as u64;
                self.stats.shared_conflict_passes += passes - 1;
                self.mio_free = now + passes * self.cfg.mio_cycles_per_txn;
                now + collect + self.cfg.shared_latency + 2 * (passes - 1)
            }
            MemSpace::Param => now + collect + self.cfg.alu_latency,
            MemSpace::Global | MemSpace::Local => {
                let txns = coalesce(&trace.accesses);
                self.stats.global_txns += txns.len() as u64;
                self.mio_free = now + txns.len() as u64 * self.cfg.mio_cycles_per_txn;
                let mut done = now + collect + self.cfg.shared_latency;
                for (i, t) in txns.iter().enumerate() {
                    let start = now + collect + i as u64 * self.cfg.mio_cycles_per_txn;
                    let r = self
                        .l1
                        .access(t, trace.is_store, start, sys, self.id, tracer);
                    done = done.max(r);
                }
                if trace.is_store {
                    if instr.dst.is_some() {
                        // Atomics return the old value: the destination is
                        // not ready until the round trip completes.
                        return done;
                    }
                    // Plain stores retire at issue (no register
                    // writeback); the write-ack time still shows up in the
                    // profile below.
                    if let Some(k) = kind {
                        if self.profile_wmma {
                            self.push_sample(k, now, done - now);
                        }
                    }
                    return now + collect + 1;
                }
                done
            }
        };
        if let Some(k) = kind {
            if self.profile_wmma {
                self.push_sample(k, now, ready - now);
            }
        }
        ready
    }

    fn push_sample(&mut self, kind: WmmaKind, issue: u64, latency: u64) {
        if self.stats.wmma_samples.len() < 1_000_000 {
            self.stats.wmma_samples.push(WmmaSample {
                kind,
                issue,
                latency,
            });
        }
    }

    /// Flushes the L1 (kernel boundary).
    pub fn flush_l1(&mut self) {
        self.l1.flush();
    }

    /// Resets cycle-stamped scheduling state (functional-unit and MIO
    /// ready times, scheduler history) for a new launch whose cycle
    /// counter restarts at 0. Without this, ready-times from a previous
    /// launch sit in the new launch's future and stall its first cycles,
    /// making back-to-back launch timings history-dependent.
    ///
    /// # Panics
    ///
    /// Panics if the SM still has resident work.
    pub fn reset_clock(&mut self) {
        assert!(self.idle(), "clock reset with resident CTAs");
        self.mio_free = 0;
        for sc in &mut self.sub {
            *sc = SubCore::default();
        }
        self.age_counter = 0;
    }

    /// Reads a register of a resident warp (test/debug aid).
    ///
    /// # Panics
    ///
    /// Panics if the warp slot is empty.
    pub fn warp_reg(&self, slot: usize, lane: usize, reg: tcsim_isa::Reg) -> u32 {
        use tcsim_isa::WarpRegisters;
        self.warps[slot]
            .as_ref()
            .expect("warp resident")
            .exec
            .regs
            .read(lane, reg)
    }
}

enum IssueResult {
    Issued,
    Blocked(u64),
}

// `Operand` is referenced by kernels embedded in tests below.
#[allow(unused_imports)]
use Operand as _OperandForTests;

#[cfg(test)]
mod tests {
    use super::*;
    use tcsim_isa::{CmpOp, DataType, KernelBuilder, MemWidth, SpecialReg};
    use tcsim_mem::MemSystemConfig;

    use tcsim_trace::{NullTracer, RingTracer};

    fn run_to_completion(sm: &mut Sm, global: &mut DeviceMemory, sys: &mut MemSystem) -> u64 {
        run_traced(sm, global, sys, &mut NullTracer)
    }

    fn run_traced(
        sm: &mut Sm,
        global: &mut DeviceMemory,
        sys: &mut MemSystem,
        tracer: &mut dyn Tracer,
    ) -> u64 {
        let mut now = 0u64;
        let mut steps = 0u64;
        while !sm.idle() {
            match sm.step(now, global, sys, tracer) {
                None => now += 1,
                Some(hint) => now = hint.max(now + 1).min(now + 100_000),
            }
            steps += 1;
            assert!(steps < 10_000_000, "SM did not finish");
        }
        now
    }

    fn spec(kernel: Kernel, launch: LaunchConfig, params: Vec<u8>) -> LaunchSpec {
        LaunchSpec {
            kernel: Arc::new(kernel),
            params: Arc::new(params),
            launch,
            uops: None,
        }
    }

    fn tiny_sys() -> MemSystem {
        MemSystem::new(MemSystemConfig::titan_v())
    }

    #[test]
    fn sm_and_launch_spec_are_send() {
        // The parallel sweep engine moves whole `Sm`s (inside `Gpu`s) and
        // `LaunchSpec`s across worker threads; a compile-time guarantee.
        fn assert_send<T: Send>() {}
        assert_send::<Sm>();
        assert_send::<LaunchSpec>();
        assert_send::<CtaRequirements>();
    }

    #[test]
    fn single_warp_kernel_runs_and_counts_issues() {
        let mut b = KernelBuilder::new("t");
        let r = b.reg();
        b.mov(r, Operand::Special(SpecialReg::TidX));
        b.iadd(r, r, Operand::Imm(5));
        b.exit();
        let spec = spec(b.build(), LaunchConfig::new(1u32, 32u32), vec![]);

        let mut sm = Sm::new(SmConfig::volta());
        let mut global = DeviceMemory::new();
        let mut sys = tiny_sys();
        sm.launch_cta(&spec, Dim3::new(0, 0, 0), 0);
        assert_eq!(sm.resident_ctas(), 1);
        run_to_completion(&mut sm, &mut global, &mut sys);
        assert_eq!(sm.stats().issued, 3);
        assert_eq!(sm.stats().ctas_completed, 1);
        assert!(sm.idle());
    }

    #[test]
    fn dependent_alu_chain_respects_latency() {
        // mov r0; then a chain of 4 dependent iadds: each must wait for
        // the previous writeback (≥ alu_latency apart).
        let mut b = KernelBuilder::new("t");
        let r = b.reg();
        b.mov(r, Operand::Imm(1));
        for _ in 0..4 {
            b.iadd(r, r, Operand::Imm(1));
        }
        b.exit();
        let spec = spec(b.build(), LaunchConfig::new(1u32, 32u32), vec![]);
        let mut sm = Sm::new(SmConfig::volta());
        let mut global = DeviceMemory::new();
        let mut sys = tiny_sys();
        sm.launch_cta(&spec, Dim3::new(0, 0, 0), 0);
        let end = run_to_completion(&mut sm, &mut global, &mut sys);
        let min_expected = 4 * (SmConfig::volta().alu_latency);
        assert!(end >= min_expected, "end={end} min={min_expected}");
    }

    #[test]
    fn global_roundtrip_through_l1() {
        let mut b = KernelBuilder::new("t");
        let base = b.reg_pair();
        b.ld_param(MemWidth::B64, base, 0);
        let tid = b.reg();
        b.mov(tid, Operand::Special(SpecialReg::TidX));
        let addr = b.reg_pair();
        b.imad_wide(addr, tid, Operand::Imm(4), base);
        let v = b.reg();
        b.ld_global(MemWidth::B32, v, addr, 0);
        b.iadd(v, v, Operand::Imm(7));
        b.st_global(MemWidth::B32, addr, 0, v);
        b.exit();
        let kernel = b.build();

        let mut global = DeviceMemory::new();
        let buf = global.alloc(128);
        for i in 0..32u32 {
            use tcsim_isa::ByteMemory;
            global.write_u32(buf + 4 * i as u64, i);
        }
        let spec = spec(
            kernel,
            LaunchConfig::new(1u32, 32u32),
            buf.to_le_bytes().to_vec(),
        );
        let mut sm = Sm::new(SmConfig::volta());
        let mut sys = tiny_sys();
        sm.launch_cta(&spec, Dim3::new(0, 0, 0), 0);
        run_to_completion(&mut sm, &mut global, &mut sys);
        use tcsim_isa::ByteMemory;
        for i in 0..32u32 {
            assert_eq!(global.read_u32(buf + 4 * i as u64), i + 7);
        }
        // One coalesced warp load = 4 sector transactions (plus stores).
        assert!(sm.stats().global_txns >= 4);
        assert!(sm.l1_stats().misses >= 1);
    }

    #[test]
    fn barrier_synchronizes_two_warps() {
        // Warp 0 stores, both warps barrier, warp 1 reads warp 0's value.
        let mut b = KernelBuilder::new("t");
        let tid = b.reg();
        b.mov(tid, Operand::Special(SpecialReg::TidX));
        let a = b.reg();
        b.shl(a, tid, Operand::Imm(2));
        b.st_shared(MemWidth::B32, a, 0, tid);
        b.bar();
        // Read partner index (tid ^ 32) × 4.
        let pa = b.reg();
        b.xor(pa, tid, Operand::Imm(32));
        b.shl(pa, pa, Operand::Imm(2));
        let v = b.reg();
        b.ld_shared(MemWidth::B32, v, pa, 0);
        b.shared_alloc(256);
        b.exit();
        let spec = spec(b.build(), LaunchConfig::new(1u32, 64u32), vec![]);
        let mut sm = Sm::new(SmConfig::volta());
        let mut global = DeviceMemory::new();
        let mut sys = tiny_sys();
        sm.launch_cta(&spec, Dim3::new(0, 0, 0), 0);
        run_to_completion(&mut sm, &mut global, &mut sys);
        assert_eq!(sm.stats().barriers, 1);
        assert_eq!(sm.stats().ctas_completed, 1);
    }

    #[test]
    fn tracer_observes_issues_stalls_and_retires() {
        // The dependent-ALU-chain kernel: every iadd stalls on the
        // previous writeback, so the trace must show RAW stalls, one
        // WarpIssue per instruction, and a final retire.
        let mut b = KernelBuilder::new("t");
        let r = b.reg();
        b.mov(r, Operand::Imm(1));
        for _ in 0..4 {
            b.iadd(r, r, Operand::Imm(1));
        }
        b.exit();
        let spec = spec(b.build(), LaunchConfig::new(1u32, 32u32), vec![]);
        let mut sm = Sm::with_id(SmConfig::volta(), 5);
        let mut global = DeviceMemory::new();
        let mut sys = tiny_sys();
        sm.launch_cta(&spec, Dim3::new(0, 0, 0), 0);
        let mut tr = RingTracer::with_capacity(4096);
        run_traced(&mut sm, &mut global, &mut sys, &mut tr);
        let events = tr.snapshot();
        assert!(events.iter().all(|e| e.sm == 5), "events carry the SM id");
        let issues = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::WarpIssue { .. }))
            .count();
        assert_eq!(issues as u64, sm.stats().issued);
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::WarpRetire { .. }))
                .count(),
            1
        );
        let raw_stalls: Vec<&TraceEvent> = events
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    EventKind::Stall {
                        reason: StallReason::Raw,
                        ..
                    }
                )
            })
            .collect();
        assert!(!raw_stalls.is_empty(), "dependent chain must stall");
        for e in &raw_stalls {
            let EventKind::Stall { until, .. } = e.kind else {
                unreachable!()
            };
            assert!(until > e.cycle, "stalls resolve in the future");
        }
    }

    #[test]
    fn tracer_attributes_load_dependencies_to_memory() {
        // ld.global into r, then consume r immediately: the consumer's
        // scoreboard stall must be attributed to memory, not plain RAW.
        let mut b = KernelBuilder::new("t");
        let base = b.reg_pair();
        b.ld_param(MemWidth::B64, base, 0);
        let v = b.reg();
        b.ld_global(MemWidth::B32, v, base, 0);
        b.iadd(v, v, Operand::Imm(1));
        b.exit();
        let mut global = DeviceMemory::new();
        let buf = global.alloc(128);
        let spec = spec(
            b.build(),
            LaunchConfig::new(1u32, 32u32),
            buf.to_le_bytes().to_vec(),
        );
        let mut sm = Sm::new(SmConfig::volta());
        let mut sys = tiny_sys();
        sm.launch_cta(&spec, Dim3::new(0, 0, 0), 0);
        let mut tr = RingTracer::with_capacity(4096);
        run_traced(&mut sm, &mut global, &mut sys, &mut tr);
        let events = tr.snapshot();
        assert!(events.iter().any(|e| matches!(
            e.kind,
            EventKind::Stall {
                reason: StallReason::Memory,
                ..
            }
        )));
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::CacheAccess { .. })));
    }

    #[test]
    fn occupancy_limits_reject_oversized_ctas() {
        let sm = Sm::new(SmConfig::volta());
        assert!(!sm.can_accept(&CtaRequirements {
            warps: 65,
            registers: 0,
            shared_bytes: 0
        }));
        assert!(!sm.can_accept(&CtaRequirements {
            warps: 1,
            registers: 70_000,
            shared_bytes: 0
        }));
        assert!(!sm.can_accept(&CtaRequirements {
            warps: 1,
            registers: 0,
            shared_bytes: 100 * 1024
        }));
        assert!(sm.can_accept(&CtaRequirements {
            warps: 32,
            registers: 32768,
            shared_bytes: 48 * 1024
        }));
    }

    #[test]
    fn resources_are_freed_after_completion() {
        let mut b = KernelBuilder::new("t");
        b.exit();
        let spec = spec(
            b.build(),
            LaunchConfig::new(1u32, 1024u32).with_shared_bytes(32 * 1024),
            vec![],
        );
        let mut sm = Sm::new(SmConfig::volta());
        let mut global = DeviceMemory::new();
        let mut sys = tiny_sys();
        sm.launch_cta(&spec, Dim3::new(0, 0, 0), 0);
        let req = spec.cta_requirements();
        assert_eq!(req.warps, 32);
        // Second identical CTA still fits (64 warps total).
        assert!(sm.can_accept(&req));
        sm.launch_cta(&spec, Dim3::new(1, 0, 0), 0);
        assert!(!sm.can_accept(&req), "shared memory exhausted");
        run_to_completion(&mut sm, &mut global, &mut sys);
        assert!(sm.can_accept(&req));
        assert_eq!(sm.stats().ctas_completed, 2);
    }

    #[test]
    fn uniform_loop_executes_correct_iteration_count() {
        let mut b = KernelBuilder::new("t");
        let i = b.reg();
        b.mov(i, Operand::Imm(0));
        let top = b.label();
        b.place(top);
        b.iadd(i, i, Operand::Imm(1));
        let p = b.pred();
        b.setp(p, CmpOp::Lt, DataType::S32, i, Operand::Imm(10));
        b.bra_if(p, true, top);
        b.exit();
        let spec = spec(b.build(), LaunchConfig::new(1u32, 32u32), vec![]);
        let mut sm = Sm::new(SmConfig::volta());
        let mut global = DeviceMemory::new();
        let mut sys = tiny_sys();
        sm.launch_cta(&spec, Dim3::new(0, 0, 0), 0);
        run_to_completion(&mut sm, &mut global, &mut sys);
        // 1 mov + 10×(iadd+setp+bra) + exit = 32 issues.
        assert_eq!(sm.stats().issued, 32);
    }

    /// The μop-driven issue path must be indistinguishable from the
    /// legacy path: same trace events (order included), same statistics,
    /// same final cycle, same memory — across both scheduler policies and
    /// a kernel touching ALU chains, global/shared memory and barriers.
    #[test]
    fn step_event_is_cycle_identical_to_step() {
        let build = || {
            let mut b = KernelBuilder::new("t");
            let base = b.reg_pair();
            b.ld_param(MemWidth::B64, base, 0);
            let tid = b.reg();
            b.mov(tid, Operand::Special(SpecialReg::TidX));
            let addr = b.reg_pair();
            b.imad_wide(addr, tid, Operand::Imm(4), base);
            let v = b.reg();
            b.ld_global(MemWidth::B32, v, addr, 0);
            for _ in 0..3 {
                b.iadd(v, v, Operand::Imm(1));
            }
            b.st_shared(MemWidth::B32, addr, 0, v);
            b.bar();
            b.ld_shared(MemWidth::B32, v, addr, 0);
            b.st_global(MemWidth::B32, addr, 0, v);
            b.exit();
            b.build()
        };
        for policy in [SchedPolicy::Gto, SchedPolicy::RoundRobin] {
            let cfg = SmConfig {
                scheduler: policy,
                ..SmConfig::volta()
            };
            let mut runs = Vec::new();
            for event_driven in [false, true] {
                let mut global = DeviceMemory::new();
                let buf = global.alloc(4096);
                for i in 0..128u32 {
                    use tcsim_isa::ByteMemory;
                    global.write_u32(buf + 4 * i as u64, i * 3);
                }
                let spec = spec(
                    build(),
                    LaunchConfig::new(1u32, 128u32).with_shared_bytes(4096),
                    buf.to_le_bytes().to_vec(),
                );
                let mut sm = Sm::with_id(cfg, 3);
                let mut sys = tiny_sys();
                sm.launch_cta(&spec, Dim3::new(0, 0, 0), 0);
                let mut tr = RingTracer::with_capacity(1 << 16);
                let mut now = 0u64;
                while !sm.idle() {
                    let hint = if event_driven {
                        sm.step_event(now, &mut global, &mut sys, &mut tr)
                    } else {
                        sm.step(now, &mut global, &mut sys, &mut tr)
                    };
                    now = match hint {
                        None => now + 1,
                        Some(h) => h.max(now + 1),
                    };
                    assert!(now < 1_000_000, "SM did not finish");
                }
                let bytes: Vec<u32> = (0..128u32)
                    .map(|i| {
                        use tcsim_isa::ByteMemory;
                        global.read_u32(buf + 4 * i as u64)
                    })
                    .collect();
                runs.push((tr.snapshot().to_vec(), sm.stats().clone(), now, bytes));
            }
            let (legacy, fast) = (&runs[0], &runs[1]);
            if let Some(i) =
                (0..legacy.0.len().min(fast.0.len())).find(|&i| legacy.0[i] != fast.0[i])
            {
                let lo = i.saturating_sub(2);
                panic!(
                    "first event divergence at index {i} ({policy:?}):\n legacy: {:#?}\n fast: {:#?}",
                    &legacy.0[lo..(i + 2).min(legacy.0.len())],
                    &fast.0[lo..(i + 2).min(fast.0.len())],
                );
            }
            assert_eq!(
                legacy.0.len(),
                fast.0.len(),
                "event count differs ({policy:?})"
            );
            assert_eq!(legacy.1, fast.1, "stats differ ({policy:?})");
            assert_eq!(legacy.2, fast.2, "end cycle differs ({policy:?})");
            assert_eq!(legacy.3, fast.3, "memory differs ({policy:?})");
        }
    }

    #[test]
    fn gto_prefers_last_issued_warp() {
        // Two warps of independent ALU work: GTO should give long runs to
        // one warp; round-robin should interleave. We check GTO completes
        // with the same total issues (sanity) and that the policy knob
        // exists end-to-end.
        let build = || {
            let mut b = KernelBuilder::new("t");
            let r = b.reg();
            b.mov(r, Operand::Imm(0));
            for _ in 0..10 {
                let q = b.reg();
                b.mov(q, Operand::Imm(1));
            }
            b.exit();
            b.build()
        };
        for policy in [SchedPolicy::Gto, SchedPolicy::RoundRobin] {
            let cfg = SmConfig {
                scheduler: policy,
                ..SmConfig::volta()
            };
            let mut sm = Sm::new(cfg);
            let mut global = DeviceMemory::new();
            let mut sys = tiny_sys();
            let spec = spec(build(), LaunchConfig::new(1u32, 256u32), vec![]);
            sm.launch_cta(&spec, Dim3::new(0, 0, 0), 0);
            run_to_completion(&mut sm, &mut global, &mut sys);
            assert_eq!(sm.stats().issued, 8 * 12);
        }
    }
}
