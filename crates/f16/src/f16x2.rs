//! Packed pairs of binary16 values.
//!
//! Volta/Turing SASS manipulates half precision two-at-a-time in 32-bit
//! registers (`HADD2`, `HMUL2`, `HFMA2`). Fragments of WMMA operand matrices
//! are likewise stored as packed pairs in general-purpose registers
//! (§III-C of the paper: each HMMA register identifier names a pair of
//! 32-bit registers, each holding two FP16 elements). This module provides
//! the packed representation used by the register-file model and the
//! half-precision SIMD instruction semantics.

use crate::F16;
use std::fmt;

/// Two binary16 values packed into one 32-bit register.
///
/// The low half-word is lane 0 (the element at the lower memory address when
/// loaded from memory), matching little-endian packing on real hardware.
///
/// # Example
///
/// ```
/// use tcsim_f16::{F16, F16x2};
///
/// let v = F16x2::new(F16::ONE, F16::from_f32(2.0));
/// let w = v.hadd2(v);
/// assert_eq!(w.lo().to_f32(), 2.0);
/// assert_eq!(w.hi().to_f32(), 4.0);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct F16x2(u32);

impl F16x2 {
    /// Both lanes zero.
    pub const ZERO: F16x2 = F16x2(0);

    /// Packs two halves; `lo` occupies bits 0..16, `hi` bits 16..32.
    #[inline]
    pub fn new(lo: F16, hi: F16) -> F16x2 {
        F16x2((lo.to_bits() as u32) | ((hi.to_bits() as u32) << 16))
    }

    /// Broadcasts one half to both lanes.
    #[inline]
    pub fn splat(v: F16) -> F16x2 {
        F16x2::new(v, v)
    }

    /// Creates from the raw 32-bit register value.
    #[inline]
    pub const fn from_bits(bits: u32) -> F16x2 {
        F16x2(bits)
    }

    /// Returns the raw 32-bit register value.
    #[inline]
    pub const fn to_bits(self) -> u32 {
        self.0
    }

    /// Lane 0 (low half-word).
    #[inline]
    pub fn lo(self) -> F16 {
        F16::from_bits(self.0 as u16)
    }

    /// Lane 1 (high half-word).
    #[inline]
    pub fn hi(self) -> F16 {
        F16::from_bits((self.0 >> 16) as u16)
    }

    /// Returns both lanes as an array `[lo, hi]`.
    #[inline]
    pub fn to_array(self) -> [F16; 2] {
        [self.lo(), self.hi()]
    }

    /// Lane-wise addition (SASS `HADD2`).
    pub fn hadd2(self, rhs: F16x2) -> F16x2 {
        F16x2::new(self.lo() + rhs.lo(), self.hi() + rhs.hi())
    }

    /// Lane-wise multiplication (SASS `HMUL2`).
    pub fn hmul2(self, rhs: F16x2) -> F16x2 {
        F16x2::new(self.lo() * rhs.lo(), self.hi() * rhs.hi())
    }

    /// Lane-wise fused multiply-add `self * a + b` (SASS `HFMA2`), one
    /// rounding per lane.
    pub fn hfma2(self, a: F16x2, b: F16x2) -> F16x2 {
        F16x2::new(
            self.lo().mul_add(a.lo(), b.lo()),
            self.hi().mul_add(a.hi(), b.hi()),
        )
    }
}

impl From<[F16; 2]> for F16x2 {
    fn from(v: [F16; 2]) -> F16x2 {
        F16x2::new(v[0], v[1])
    }
}

impl From<F16x2> for [F16; 2] {
    fn from(v: F16x2) -> [F16; 2] {
        v.to_array()
    }
}

impl fmt::Debug for F16x2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F16x2({}, {})", self.lo(), self.hi())
    }
}

impl fmt::Display for F16x2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.lo(), self.hi())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let v = F16x2::new(F16::from_f32(1.5), F16::from_f32(-2.0));
        assert_eq!(v.lo().to_f32(), 1.5);
        assert_eq!(v.hi().to_f32(), -2.0);
        assert_eq!(F16x2::from_bits(v.to_bits()), v);
        assert_eq!(v.to_array()[0].to_f32(), 1.5);
    }

    #[test]
    fn splat_fills_both_lanes() {
        let v = F16x2::splat(F16::from_f32(3.0));
        assert_eq!(v.lo(), v.hi());
    }

    #[test]
    fn lane_wise_ops() {
        let a = F16x2::new(F16::from_f32(1.0), F16::from_f32(2.0));
        let b = F16x2::new(F16::from_f32(3.0), F16::from_f32(4.0));
        let c = a.hadd2(b);
        assert_eq!(c.lo().to_f32(), 4.0);
        assert_eq!(c.hi().to_f32(), 6.0);
        let d = a.hmul2(b);
        assert_eq!(d.lo().to_f32(), 3.0);
        assert_eq!(d.hi().to_f32(), 8.0);
        let e = a.hfma2(b, c);
        assert_eq!(e.lo().to_f32(), 7.0);
        assert_eq!(e.hi().to_f32(), 14.0);
    }

    #[test]
    fn lanes_are_independent() {
        let a = F16x2::new(F16::MAX, F16::MIN_POSITIVE_SUBNORMAL);
        let s = a.hadd2(a);
        assert_eq!(s.lo(), F16::INFINITY); // overflow confined to lane 0
        assert_eq!(s.hi().to_bits(), 0x0002);
    }
}
