#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! IEEE 754 binary16 ("half precision") arithmetic, built from scratch.
//!
//! The paper's GPGPU-Sim extension used the `half` C++ header-only library
//! to add 16-bit floating point support to the simulator (§V-A). This crate
//! is the equivalent substrate for the Rust reproduction: a bit-exact
//! binary16 type with correctly rounded arithmetic and conversions.
//!
//! # Correct rounding via binary64
//!
//! binary16 has precision p = 11. binary64 has p = 53 ≥ 2·11 + 2, so by the
//! classic double-rounding theorem (Figueroa, *When is double rounding
//! innocuous?*), computing `+ - * / sqrt` in binary64 and rounding the
//! result once to binary16 yields exactly the correctly rounded binary16
//! result. All arithmetic here goes through binary64 intermediates; the
//! final rounding is performed by [`F16::from_f64`], which implements
//! round-to-nearest-even directly on the bit pattern (including subnormals,
//! overflow to infinity, and NaN propagation).
//!
//! # Example
//!
//! ```
//! use tcsim_f16::F16;
//!
//! let a = F16::from_f32(1.5);
//! let b = F16::from_f32(2.25);
//! assert_eq!((a * b).to_f32(), 3.375);
//! assert_eq!(F16::ONE + F16::ONE, F16::from_f32(2.0));
//! ```

pub mod bf16;
mod f16x2;
pub mod tf32;

pub use bf16::Bf16;
pub use f16x2::F16x2;
pub use tf32::Tf32;

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::num::ParseFloatError;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// Number of significand bits stored in a binary16 (excluding hidden bit).
pub const MANTISSA_BITS: u32 = 10;
/// Number of exponent bits in a binary16.
pub const EXPONENT_BITS: u32 = 5;
/// Exponent bias of binary16.
pub const EXPONENT_BIAS: i32 = 15;

const SIGN_MASK: u16 = 0x8000;
const EXP_MASK: u16 = 0x7C00;
const MAN_MASK: u16 = 0x03FF;

/// An IEEE 754 binary16 floating-point number.
///
/// Stored as its raw bit pattern; all operations are performed with a single
/// correctly rounded step (see crate docs). `PartialEq`/`PartialOrd` follow
/// IEEE semantics: `NaN != NaN`, `-0.0 == +0.0`.
#[derive(Clone, Copy, Default)]
pub struct F16(u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0x0000);
    /// Negative zero.
    pub const NEG_ZERO: F16 = F16(0x8000);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Negative one.
    pub const NEG_ONE: F16 = F16(0xBC00);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xFC00);
    /// A quiet NaN.
    pub const NAN: F16 = F16(0x7E00);
    /// Largest finite value, 65504.
    pub const MAX: F16 = F16(0x7BFF);
    /// Smallest finite value, -65504.
    pub const MIN: F16 = F16(0xFBFF);
    /// Smallest positive normal value, 2^-14.
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Smallest positive subnormal value, 2^-24.
    pub const MIN_POSITIVE_SUBNORMAL: F16 = F16(0x0001);
    /// Machine epsilon (2^-10).
    pub const EPSILON: F16 = F16(0x1400);

    /// Creates an `F16` from its raw IEEE 754 binary16 bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> F16 {
        F16(bits)
    }

    /// Returns the raw IEEE 754 binary16 bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts a binary32 value to binary16 with round-to-nearest-even.
    ///
    /// Overflow produces an infinity of the same sign; values below half the
    /// smallest subnormal round to (signed) zero; NaN payload top bits are
    /// preserved, and signaling NaNs are quieted.
    pub fn from_f32(value: f32) -> F16 {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let man = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Infinity or NaN.
            return if man == 0 {
                F16(sign | EXP_MASK)
            } else {
                // Keep the top 10 payload bits; force quiet bit so the
                // result is never the infinity pattern.
                F16(sign | EXP_MASK | 0x0200 | (man >> 13) as u16)
            };
        }

        let unbiased = exp - 127;
        let half_exp = unbiased + EXPONENT_BIAS;

        if half_exp >= 0x1F {
            // Overflow region. The midpoint between MAX and the next binade
            // (65520) must round to infinity (ties-to-even: the candidate
            // above MAX is the infinity binade); anything below it rounds to
            // MAX and is handled by the normal path (half_exp == 0x1E with
            // mantissa carry). half_exp >= 0x1F means |value| >= 65536.
            return F16(sign | EXP_MASK);
        }

        if half_exp >= 1 {
            // Normal range: round 23-bit mantissa to 10 bits (RNE).
            let mut out = ((half_exp as u32) << 10) | (man >> 13);
            let round_bits = man & 0x1FFF;
            if round_bits > 0x1000 || (round_bits == 0x1000 && (out & 1) != 0) {
                out += 1; // May carry into the exponent (next binade or inf);
                          // that is the correctly rounded result.
            }
            return F16(sign | (out & 0x7FFF) as u16);
        }

        // Subnormal or underflow-to-zero range.
        if exp == 0 || half_exp < -10 {
            // f32 subnormals (< 2^-126) and anything below half the smallest
            // f16 subnormal round to signed zero. half_exp == -10
            // corresponds to magnitudes in [2^-25, 2^-24) which can round up.
            return F16(sign);
        }
        // Shift the hidden-bit-extended 24-bit significand right so the
        // result counts units of 2^-24 (f16 subnormal ulps), keeping the
        // remainder for rounding. value = full · 2^(unbiased − 23), so
        // units = full · 2^(unbiased − 23 + 24) = full >> (−1 − unbiased).
        let full = man | 0x0080_0000;
        let shift = (-1 - unbiased) as u32;
        debug_assert!((14..=24).contains(&shift));
        let sub = full >> shift;
        let rem = full & ((1u32 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let mut out = sub;
        if rem > halfway || (rem == halfway && (out & 1) != 0) {
            out += 1;
        }
        F16(sign | out as u16)
    }

    /// Converts a binary64 value to binary16 with round-to-nearest-even.
    ///
    /// This is the single-rounding step that makes f64-intermediate
    /// arithmetic correctly rounded (see crate docs).
    pub fn from_f64(value: f64) -> F16 {
        let bits = value.to_bits();
        let sign = ((bits >> 48) & 0x8000) as u16;
        let exp = ((bits >> 52) & 0x7FF) as i32;
        let man = bits & 0x000F_FFFF_FFFF_FFFF;

        if exp == 0x7FF {
            return if man == 0 {
                F16(sign | EXP_MASK)
            } else {
                F16(sign | EXP_MASK | 0x0200 | (man >> 42) as u16)
            };
        }

        let unbiased = exp - 1023;
        let half_exp = unbiased + EXPONENT_BIAS;

        if half_exp >= 0x1F {
            return F16(sign | EXP_MASK);
        }

        if half_exp >= 1 {
            let mut out = ((half_exp as u32) << 10) | (man >> 42) as u32;
            let round_bits = man & 0x3FF_FFFF_FFFF; // low 42 bits
            let halfway = 1u64 << 41;
            if round_bits > halfway || (round_bits == halfway && (out & 1) != 0) {
                out += 1;
            }
            return F16(sign | (out & 0x7FFF) as u16);
        }

        if exp == 0 || half_exp < -10 {
            return F16(sign);
        }
        // value = full · 2^(unbiased − 52); units of 2^-24:
        // units = full · 2^(unbiased − 52 + 24) = full >> (28 − unbiased).
        let full = man | 0x0010_0000_0000_0000;
        let shift = (28 - unbiased) as u32;
        debug_assert!((43..=53).contains(&shift));
        let sub = (full >> shift) as u32;
        let rem = full & ((1u64 << shift) - 1);
        let halfway = 1u64 << (shift - 1);
        let mut out = sub;
        if rem > halfway || (rem == halfway && (out & 1) != 0) {
            out += 1;
        }
        F16(sign | out as u16)
    }

    /// Converts to binary32. This conversion is exact.
    pub fn to_f32(self) -> f32 {
        let sign = (self.0 & SIGN_MASK) as u32;
        let exp = ((self.0 & EXP_MASK) >> 10) as u32;
        let man = (self.0 & MAN_MASK) as u32;

        let out = if exp == 0x1F {
            // Inf/NaN.
            (sign << 16) | (0xFFu32 << 23) | (man << 13)
        } else if exp == 0 {
            if man == 0 {
                sign << 16
            } else {
                // Subnormal: normalize into an f32 normal.
                let lz = man.leading_zeros() - 22; // zeros above the 10-bit field
                let shifted = (man << (lz + 1)) & MAN_MASK as u32;
                let e = (127 - 15 - (lz as i32)) as u32; // biased exp of 2^(-15-lz)
                (sign << 16) | (e << 23) | (shifted << 13)
            }
        } else {
            (sign << 16) | ((exp + 127 - 15) << 23) | (man << 13)
        };
        f32::from_bits(out)
    }

    /// Converts to binary64. This conversion is exact.
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    /// Returns `true` if this value is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MAN_MASK) != 0
    }

    /// Returns `true` if this value is positive or negative infinity.
    #[inline]
    pub fn is_infinite(self) -> bool {
        (self.0 & !SIGN_MASK) == EXP_MASK
    }

    /// Returns `true` if this value is neither infinite nor NaN.
    #[inline]
    pub fn is_finite(self) -> bool {
        (self.0 & EXP_MASK) != EXP_MASK
    }

    /// Returns `true` if this value is subnormal (nonzero with zero exponent).
    #[inline]
    pub fn is_subnormal(self) -> bool {
        (self.0 & EXP_MASK) == 0 && (self.0 & MAN_MASK) != 0
    }

    /// Returns `true` if this value is ±0.
    #[inline]
    pub fn is_zero(self) -> bool {
        (self.0 & !SIGN_MASK) == 0
    }

    /// Returns `true` if the sign bit is set (including -0.0 and NaNs with a
    /// negative sign).
    #[inline]
    pub fn is_sign_negative(self) -> bool {
        (self.0 & SIGN_MASK) != 0
    }

    /// Absolute value (clears the sign bit; preserves NaN payload).
    #[inline]
    pub fn abs(self) -> F16 {
        F16(self.0 & !SIGN_MASK)
    }

    /// Correctly rounded square root.
    pub fn sqrt(self) -> F16 {
        F16::from_f64(self.to_f64().sqrt())
    }

    /// Fused multiply-add `self * a + b` with a **single** rounding.
    ///
    /// The exact product of two binary16 values fits in 22 significand bits
    /// and the subsequent binary64 addition of a binary16 addend is exact
    /// (aligned sum always fits 53 bits), so the only rounding is the final
    /// conversion back to binary16.
    pub fn mul_add(self, a: F16, b: F16) -> F16 {
        F16::from_f64(self.to_f64() * a.to_f64() + b.to_f64())
    }

    /// IEEE 754 `minNum`: returns the smaller value, preferring a number
    /// over a NaN.
    pub fn min(self, other: F16) -> F16 {
        if self.is_nan() {
            return other;
        }
        if other.is_nan() {
            return self;
        }
        if self <= other {
            self
        } else {
            other
        }
    }

    /// IEEE 754 `maxNum`: returns the larger value, preferring a number
    /// over a NaN.
    pub fn max(self, other: F16) -> F16 {
        if self.is_nan() {
            return other;
        }
        if other.is_nan() {
            return self;
        }
        if self >= other {
            self
        } else {
            other
        }
    }

    /// IEEE 754-2008 totalOrder key: orders −NaN < −Inf < … < +Inf < +NaN.
    ///
    /// Useful for deterministic sorting in tests and workload generators.
    pub fn total_order_key(self) -> i32 {
        let bits = self.0 as i32;
        if bits & (SIGN_MASK as i32) != 0 {
            // Negative: larger magnitude sorts first.
            -(bits & 0x7FFF) - 1
        } else {
            bits
        }
    }
}

impl PartialEq for F16 {
    fn eq(&self, other: &F16) -> bool {
        if self.is_nan() || other.is_nan() {
            return false;
        }
        if self.is_zero() && other.is_zero() {
            return true;
        }
        self.0 == other.0
    }
}

impl PartialOrd for F16 {
    fn partial_cmp(&self, other: &F16) -> Option<Ordering> {
        if self.is_nan() || other.is_nan() {
            return None;
        }
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl Neg for F16 {
    type Output = F16;
    fn neg(self) -> F16 {
        F16(self.0 ^ SIGN_MASK)
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $assign_trait:ident, $assign_method:ident, $op:tt) => {
        impl $trait for F16 {
            type Output = F16;
            fn $method(self, rhs: F16) -> F16 {
                F16::from_f64(self.to_f64() $op rhs.to_f64())
            }
        }
        impl $assign_trait for F16 {
            fn $assign_method(&mut self, rhs: F16) {
                *self = *self $op rhs;
            }
        }
    };
}

impl_binop!(Add, add, AddAssign, add_assign, +);
impl_binop!(Sub, sub, SubAssign, sub_assign, -);
impl_binop!(Mul, mul, MulAssign, mul_assign, *);
impl_binop!(Div, div, DivAssign, div_assign, /);

impl Sum for F16 {
    fn sum<I: Iterator<Item = F16>>(iter: I) -> F16 {
        iter.fold(F16::ZERO, |acc, x| acc + x)
    }
}

impl From<F16> for f32 {
    fn from(value: F16) -> f32 {
        value.to_f32()
    }
}

impl From<F16> for f64 {
    fn from(value: F16) -> f64 {
        value.to_f64()
    }
}

impl From<f32> for F16 {
    fn from(value: f32) -> F16 {
        F16::from_f32(value)
    }
}

impl From<i8> for F16 {
    fn from(value: i8) -> F16 {
        F16::from_f32(value as f32)
    }
}

impl From<u8> for F16 {
    fn from(value: u8) -> F16 {
        F16::from_f32(value as f32)
    }
}

impl FromStr for F16 {
    type Err = ParseFloatError;
    fn from_str(s: &str) -> Result<F16, ParseFloatError> {
        Ok(F16::from_f64(s.parse::<f64>()?))
    }
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F16({})", self.to_f32())
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

impl fmt::LowerHex for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(v: f32) -> F16 {
        F16::from_f32(v)
    }

    #[test]
    fn constants_have_expected_bit_patterns() {
        assert_eq!(F16::ZERO.to_bits(), 0x0000);
        assert_eq!(F16::ONE.to_bits(), 0x3C00);
        assert_eq!(F16::INFINITY.to_bits(), 0x7C00);
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert_eq!(F16::MIN_POSITIVE.to_f32(), 2.0f32.powi(-14));
        assert_eq!(F16::MIN_POSITIVE_SUBNORMAL.to_f32(), 2.0f32.powi(-24));
        assert_eq!(F16::EPSILON.to_f32(), 2.0f32.powi(-10));
    }

    #[test]
    fn f32_roundtrip_is_exact_for_all_bit_patterns() {
        for bits in 0u16..=u16::MAX {
            let h = F16::from_bits(bits);
            if h.is_nan() {
                assert!(F16::from_f32(h.to_f32()).is_nan());
            } else {
                assert_eq!(
                    F16::from_f32(h.to_f32()).to_bits(),
                    bits,
                    "bits {bits:#06x}"
                );
            }
        }
    }

    #[test]
    fn f64_roundtrip_is_exact_for_all_bit_patterns() {
        for bits in 0u16..=u16::MAX {
            let h = F16::from_bits(bits);
            if h.is_nan() {
                assert!(F16::from_f64(h.to_f64()).is_nan());
            } else {
                assert_eq!(
                    F16::from_f64(h.to_f64()).to_bits(),
                    bits,
                    "bits {bits:#06x}"
                );
            }
        }
    }

    #[test]
    fn rounding_is_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1 and 1+2^-10: ties to even (1).
        assert_eq!(F16::from_f32(1.0 + 2f32.powi(-11)).to_bits(), 0x3C00);
        // 1 + 3·2^-11 is halfway between 1+2^-10 and 1+2^-9: ties to even (1+2^-9).
        assert_eq!(F16::from_f32(1.0 + 3.0 * 2f32.powi(-11)).to_bits(), 0x3C02);
        // Just above halfway rounds up.
        assert_eq!(
            F16::from_f32(1.0 + 2f32.powi(-11) + 2f32.powi(-20)).to_bits(),
            0x3C01
        );
    }

    #[test]
    fn overflow_rounds_to_infinity() {
        // 65520 is the midpoint between MAX (65504) and 65536: ties-to-even → inf.
        assert_eq!(F16::from_f32(65520.0), F16::INFINITY);
        assert_eq!(F16::from_f32(1e6), F16::INFINITY);
        assert_eq!(F16::from_f32(-1e6), F16::NEG_INFINITY);
        assert_eq!(F16::from_f32(65519.0).to_bits(), 0x7BFF); // below the tie → MAX
    }

    #[test]
    fn underflow_rounds_to_zero_or_subnormal() {
        assert_eq!(F16::from_f32(2f32.powi(-25)).to_bits(), 0x0000); // tie with 0: even
        assert_eq!(F16::from_f32(2f32.powi(-25) * 1.0001).to_bits(), 0x0001);
        assert_eq!(F16::from_f32(2f32.powi(-24)).to_bits(), 0x0001);
        assert_eq!(F16::from_f32(-2f32.powi(-24)).to_bits(), 0x8001);
        assert_eq!(F16::from_f32(2f32.powi(-30)).to_bits(), 0x0000);
        assert_eq!(F16::from_f32(-2f32.powi(-30)).to_bits(), 0x8000);
        // f32 subnormals collapse to signed zero.
        assert_eq!(F16::from_f32(f32::from_bits(1)).to_bits(), 0x0000);
    }

    #[test]
    fn subnormal_f16_to_f32_is_exact() {
        for man in 1u16..=MAN_MASK {
            let h = F16::from_bits(man);
            let expect = man as f32 * 2f32.powi(-24);
            assert_eq!(h.to_f32(), expect, "man {man:#06x}");
        }
    }

    #[test]
    fn nan_propagates_and_is_quieted() {
        let snan32 = f32::from_bits(0x7F80_0001);
        let h = F16::from_f32(snan32);
        assert!(h.is_nan());
        assert!(h.to_bits() & 0x0200 != 0, "quiet bit set");
        assert!((F16::NAN + F16::ONE).is_nan());
        assert!((F16::NAN * F16::ZERO).is_nan());
        assert!(F16::NAN != F16::NAN);
    }

    #[test]
    fn arithmetic_basics() {
        assert_eq!(f(1.5) + f(2.5), f(4.0));
        assert_eq!(f(1.5) - f(2.5), f(-1.0));
        assert_eq!(f(1.5) * f(2.0), f(3.0));
        assert_eq!(f(3.0) / f(2.0), f(1.5));
        assert_eq!(-f(1.5), f(-1.5));
        assert_eq!(f(4.0).sqrt(), f(2.0));
    }

    #[test]
    fn addition_rounds_correctly_at_precision_edge() {
        // ulp at 2048 is 2: 2048 + 1 ties to even 2048.
        assert_eq!(f(2048.0) + f(1.0), f(2048.0));
        // 2051 ties between 2050 (odd mantissa) and 2052 (even): → 2052.
        assert_eq!(f(2048.0) + f(3.0), f(2052.0));
        assert_eq!(f(2048.0) + f(4.0), f(2052.0));
        assert_eq!(F16::ONE + F16::from_f32(2f32.powi(-11)), F16::ONE);
    }

    #[test]
    fn mul_add_matches_exact_single_rounding() {
        let a = f(1.0 + 2f32.powi(-10));
        let b = f(1.0 + 2f32.powi(-10));
        let c = f(2f32.powi(-11));
        let fused = a.mul_add(b, c);
        let exact = a.to_f64() * b.to_f64() + c.to_f64();
        assert_eq!(fused, F16::from_f64(exact));
        let unfused = a * b + c;
        let ulp = 2f64.powi(-10);
        assert!((unfused.to_f64() - exact).abs() <= ulp);
    }

    #[test]
    fn zero_signs_compare_equal_but_differ_in_bits() {
        assert_eq!(F16::ZERO, F16::NEG_ZERO);
        assert_ne!(F16::ZERO.to_bits(), F16::NEG_ZERO.to_bits());
        assert!(F16::NEG_ZERO.is_sign_negative());
    }

    #[test]
    fn comparisons_follow_ieee() {
        assert!(f(1.0) < f(2.0));
        assert!(f(-1.0) < f(1.0));
        assert!(F16::NEG_INFINITY < F16::MIN);
        assert!(F16::MAX < F16::INFINITY);
        assert_eq!(F16::NAN.partial_cmp(&F16::ONE), None);
        assert_eq!(f(1.0).min(f(2.0)), f(1.0));
        assert_eq!(f(1.0).max(f(2.0)), f(2.0));
        assert_eq!(F16::NAN.min(f(2.0)), f(2.0));
        assert_eq!(F16::NAN.max(f(2.0)), f(2.0));
    }

    #[test]
    fn total_order_key_sorts_all_values() {
        let vals = [
            F16::NEG_INFINITY,
            f(-2.0),
            F16::NEG_ZERO,
            F16::ZERO,
            F16::MIN_POSITIVE_SUBNORMAL,
            f(1.0),
            F16::MAX,
            F16::INFINITY,
        ];
        let mut sorted = vals;
        sorted.sort_by_key(|v| v.total_order_key());
        assert_eq!(
            vals.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            sorted.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn classification_predicates() {
        assert!(F16::INFINITY.is_infinite());
        assert!(!F16::INFINITY.is_finite());
        assert!(!F16::INFINITY.is_nan());
        assert!(F16::MIN_POSITIVE_SUBNORMAL.is_subnormal());
        assert!(!F16::MIN_POSITIVE.is_subnormal());
        assert!(F16::ZERO.is_zero());
        assert!(F16::NEG_ZERO.is_zero());
        assert!(F16::MAX.is_finite());
    }

    #[test]
    fn display_and_parse_roundtrip() {
        let x = f(1.5);
        assert_eq!(x.to_string(), "1.5");
        assert_eq!("1.5".parse::<F16>().unwrap(), x);
        assert_eq!(format!("{x:?}"), "F16(1.5)");
        assert_eq!(format!("{:04x}", F16::ONE), "3c00");
    }

    #[test]
    fn infinity_arithmetic() {
        assert_eq!(F16::INFINITY + F16::ONE, F16::INFINITY);
        assert!((F16::INFINITY - F16::INFINITY).is_nan());
        assert!((F16::ZERO * F16::INFINITY).is_nan());
        assert_eq!(F16::ONE / F16::ZERO, F16::INFINITY);
        assert_eq!(F16::NEG_ONE / F16::ZERO, F16::NEG_INFINITY);
    }

    #[test]
    fn sum_saturates_at_precision_limit() {
        // 2048 + 1 rounds back to 2048, so a running f16 sum of ones sticks.
        let s: F16 = std::iter::repeat_n(F16::ONE, 4096).sum();
        assert_eq!(s, f(2048.0));
    }
}
