//! Software TensorFloat-32 (TF32) operand type.
//!
//! TF32 is not a storage format: Ampere keeps TF32 operands in full 32-bit
//! registers using the binary32 layout, but the tensor-core datapath only
//! consumes the sign, the 8 exponent bits and the top **10** mantissa bits
//! (binary16 precision at binary32 range). This module models that as a
//! binary32 bit pattern whose low 13 mantissa bits are always zero —
//! [`Tf32::to_f32`] is exact and [`Tf32::from_f32`] rounds the mantissa
//! 23 → 10 bits with round-to-nearest-even, the conversion the datapath
//! applies when an `mma.sync` A/B fragment is fed to the FEDP trees.

use core::cmp::Ordering;
use core::fmt;
use core::ops::Neg;

/// Number of mantissa bits the TF32 datapath keeps.
pub const MANTISSA_BITS: u32 = 10;
/// Number of exponent bits (the full binary32 exponent range).
pub const EXPONENT_BITS: u32 = 8;
/// Exponent bias (same as binary32).
pub const EXPONENT_BIAS: i32 = 127;

const SIGN_MASK: u32 = 0x8000_0000;
const EXP_MASK: u32 = 0x7F80_0000;
const MAN_MASK: u32 = 0x007F_FFFF;
/// Mantissa bits below the TF32 precision cut (23 − 10 = 13 bits).
const DROP_BITS: u32 = 13;
const DROP_MASK: u32 = (1 << DROP_BITS) - 1;

/// A TF32 value stored as a binary32 bit pattern with the low 13 mantissa
/// bits zero.
///
/// Equality and ordering follow IEEE semantics (`NaN != NaN`, `-0 == +0`);
/// use [`Tf32::to_bits`] for bitwise comparisons.
#[derive(Clone, Copy, Default)]
pub struct Tf32(u32);

impl Tf32 {
    /// Positive zero.
    pub const ZERO: Tf32 = Tf32(0x0000_0000);
    /// Negative zero.
    pub const NEG_ZERO: Tf32 = Tf32(0x8000_0000);
    /// One.
    pub const ONE: Tf32 = Tf32(0x3F80_0000);
    /// Negative one.
    pub const NEG_ONE: Tf32 = Tf32(0xBF80_0000);
    /// Positive infinity.
    pub const INFINITY: Tf32 = Tf32(0x7F80_0000);
    /// Negative infinity.
    pub const NEG_INFINITY: Tf32 = Tf32(0xFF80_0000);
    /// A canonical quiet NaN.
    pub const NAN: Tf32 = Tf32(0x7FC0_0000);
    /// Largest finite value (`(2 - 2^-10) * 2^127`).
    pub const MAX: Tf32 = Tf32(0x7F7F_E000);
    /// Smallest finite value (`-MAX`).
    pub const MIN: Tf32 = Tf32(0xFF7F_E000);
    /// Smallest positive normal value (`2^-126`, same as binary32).
    pub const MIN_POSITIVE: Tf32 = Tf32(0x0080_0000);
    /// Smallest positive subnormal value (`2^-136`).
    pub const MIN_POSITIVE_SUBNORMAL: Tf32 = Tf32(0x0000_2000);
    /// Machine epsilon (`2^-10`).
    pub const EPSILON: Tf32 = Tf32(0x3A80_0000);

    /// Constructs a value from a raw binary32 bit pattern.
    ///
    /// The low 13 mantissa bits are cleared so every `Tf32` is a canonical
    /// TF32 pattern; NaN payloads living entirely in the dropped bits are
    /// re-quieted to keep the value a NaN.
    #[inline]
    pub fn from_bits(bits: u32) -> Tf32 {
        if (bits & EXP_MASK) == EXP_MASK
            && (bits & MAN_MASK) != 0
            && (bits & MAN_MASK & !DROP_MASK) == 0
        {
            return Tf32((bits & !DROP_MASK) | 0x0040_0000);
        }
        Tf32(bits & !DROP_MASK)
    }

    /// Returns the raw binary32 bit pattern (low 13 mantissa bits zero).
    #[inline]
    pub const fn to_bits(self) -> u32 {
        self.0
    }

    /// Converts a binary32 value to TF32 with round-to-nearest-even.
    ///
    /// Rounds the 23-bit mantissa to 10 bits by adding the RNE increment
    /// below the cut and clearing the dropped bits; a mantissa carry rolls
    /// into the exponent (and into infinity past [`Tf32::MAX`]), which is
    /// the correctly rounded result. Subnormals round the same way since
    /// the exponent range is unchanged. NaNs are quieted and keep the
    /// surviving payload bits.
    pub fn from_f32(value: f32) -> Tf32 {
        let bits = value.to_bits();
        if value.is_nan() {
            return Tf32((bits | 0x0040_0000) & !DROP_MASK);
        }
        let round_bit = (bits >> DROP_BITS) & 1;
        Tf32((bits + (DROP_MASK >> 1) + round_bit) & !DROP_MASK)
    }

    /// Converts to binary32. This conversion is exact: every TF32 value is
    /// a binary32 value.
    #[inline]
    pub fn to_f32(self) -> f32 {
        f32::from_bits(self.0)
    }

    /// Converts to binary64. This conversion is exact.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    /// Returns `true` if this value is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MAN_MASK) != 0
    }

    /// Returns `true` if this value is positive or negative infinity.
    #[inline]
    pub fn is_infinite(self) -> bool {
        (self.0 & !SIGN_MASK) == EXP_MASK
    }

    /// Returns `true` if this value is neither infinite nor NaN.
    #[inline]
    pub fn is_finite(self) -> bool {
        (self.0 & EXP_MASK) != EXP_MASK
    }

    /// Returns `true` if this value is subnormal (nonzero with zero exponent).
    #[inline]
    pub fn is_subnormal(self) -> bool {
        (self.0 & EXP_MASK) == 0 && (self.0 & MAN_MASK) != 0
    }

    /// Returns `true` if this value is ±0.
    #[inline]
    pub fn is_zero(self) -> bool {
        (self.0 & !SIGN_MASK) == 0
    }

    /// Returns `true` if the sign bit is set (including -0.0 and NaNs with a
    /// negative sign).
    #[inline]
    pub fn is_sign_negative(self) -> bool {
        (self.0 & SIGN_MASK) != 0
    }

    /// Absolute value (clears the sign bit; preserves NaN payload).
    #[inline]
    pub fn abs(self) -> Tf32 {
        Tf32(self.0 & !SIGN_MASK)
    }
}

impl PartialEq for Tf32 {
    fn eq(&self, other: &Tf32) -> bool {
        if self.is_nan() || other.is_nan() {
            return false;
        }
        if self.is_zero() && other.is_zero() {
            return true;
        }
        self.0 == other.0
    }
}

impl PartialOrd for Tf32 {
    fn partial_cmp(&self, other: &Tf32) -> Option<Ordering> {
        if self.is_nan() || other.is_nan() {
            return None;
        }
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl Neg for Tf32 {
    type Output = Tf32;
    fn neg(self) -> Tf32 {
        Tf32(self.0 ^ SIGN_MASK)
    }
}

impl From<Tf32> for f32 {
    fn from(value: Tf32) -> f32 {
        value.to_f32()
    }
}

impl From<f32> for Tf32 {
    fn from(value: f32) -> Tf32 {
        Tf32::from_f32(value)
    }
}

impl fmt::Debug for Tf32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tf32({})", self.to_f32())
    }
}

impl fmt::Display for Tf32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

impl fmt::LowerHex for Tf32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Narrowing an already-TF32 value is the identity: exhaustive over all
    /// 65536 (sign, exponent, top-8-mantissa) upper halves crossed with the
    /// two interesting kept-bit tails, covering every exponent and every
    /// rounding-relevant mantissa pattern.
    #[test]
    fn conversion_is_idempotent_for_all_upper_halves() {
        for upper in 0..=u16::MAX {
            for tail in [0u32, 0x6000] {
                let bits = ((upper as u32) << 16) | tail;
                let x = Tf32::from_bits(bits);
                let back = Tf32::from_f32(x.to_f32());
                if x.is_nan() {
                    assert!(back.is_nan(), "NaN {bits:#010x} must stay NaN");
                    assert_eq!(
                        back.to_bits(),
                        x.to_bits() | 0x0040_0000,
                        "NaN quieting for {bits:#010x}"
                    );
                } else {
                    assert_eq!(back.to_bits(), x.to_bits(), "idempotence for {bits:#010x}");
                }
            }
        }
    }

    /// `from_bits` canonicalizes: dropped bits cleared, and a NaN whose
    /// payload lived entirely in the dropped bits stays NaN.
    #[test]
    fn from_bits_canonicalizes() {
        assert_eq!(Tf32::from_bits(0x3F80_1FFF).to_bits(), 0x3F80_0000);
        let nan = Tf32::from_bits(0x7F80_0001); // payload only in dropped bits
        assert!(nan.is_nan());
        assert_eq!(nan.to_bits(), 0x7FC0_0000);
        // Infinity is not mistaken for such a NaN.
        assert_eq!(Tf32::from_bits(0x7F80_0000).to_bits(), 0x7F80_0000);
    }

    /// Narrowing is RNE at the 13-bit cut: ties go to the even kept
    /// mantissa, checked for every exponent via a midpoint sweep.
    #[test]
    fn rounding_is_nearest_even() {
        let one = 0x3F80_0000u32;
        // 1.0 + ulp/2 ties to even (stays 1.0); a sticky bit rounds up.
        assert_eq!(Tf32::from_f32(f32::from_bits(one | 0x1000)).to_bits(), one);
        assert_eq!(
            Tf32::from_f32(f32::from_bits(one | 0x1001)).to_bits(),
            one | 0x2000
        );
        // 1.0 + 3*ulp/2 ties up to even.
        assert_eq!(
            Tf32::from_f32(f32::from_bits(one | 0x3000)).to_bits(),
            one | 0x4000
        );
        // Just below half rounds down.
        assert_eq!(Tf32::from_f32(f32::from_bits(one | 0x0FFF)).to_bits(), one);
        // Sweep every kept-mantissa pattern across a few exponents: the
        // midpoint above each value must round to the even neighbour.
        for exp in [0u32, 1, 64, 127, 128, 253] {
            for kept in 0..(1u32 << MANTISSA_BITS) {
                let base = (exp << 23) | (kept << DROP_BITS);
                let mid = base | (1 << (DROP_BITS - 1));
                let rounded = Tf32::from_f32(f32::from_bits(mid)).to_bits();
                let even = if kept & 1 == 0 {
                    base
                } else {
                    base + (1 << DROP_BITS)
                };
                assert_eq!(rounded, even, "midpoint above {base:#010x}");
            }
        }
    }

    /// Values at or beyond the MAX/∞ midpoint round to infinity.
    #[test]
    fn overflow_rounds_to_infinity() {
        let max_mid = Tf32::MAX.to_bits() | (1 << (DROP_BITS - 1));
        assert_eq!(
            Tf32::from_f32(f32::from_bits(max_mid - 1)).to_bits(),
            Tf32::MAX.to_bits()
        );
        // MAX has an odd kept mantissa, so the tie rounds up to infinity.
        assert!(Tf32::from_f32(f32::from_bits(max_mid)).is_infinite());
        assert!(Tf32::from_f32(f32::MAX).is_infinite());
        assert!(Tf32::from_f32(f32::NEG_INFINITY).is_infinite());
        assert!(Tf32::from_f32(f32::NEG_INFINITY).is_sign_negative());
    }

    /// TF32 keeps the binary32 exponent range, so only the bottom 13 bits
    /// of the subnormal range are lost: tiny values round to TF32
    /// subnormals or to zero.
    #[test]
    fn underflow_rounds_to_zero_or_subnormal() {
        // Smallest f32 subnormal (2^-149) is below half of 2^-136: +0.
        assert_eq!(Tf32::from_f32(f32::from_bits(1)).to_bits(), 0x0000_0000);
        assert_eq!(Tf32::from_f32(-f32::from_bits(1)).to_bits(), 0x8000_0000);
        // 2^-136 (f32 bits 0x2000) is exactly the smallest TF32 subnormal.
        let tiny = Tf32::from_f32(f32::from_bits(0x0000_2000));
        assert_eq!(tiny.to_bits(), Tf32::MIN_POSITIVE_SUBNORMAL.to_bits());
        assert!(tiny.is_subnormal());
        // Half of it (2^-137) ties to even (zero); three halves ties up to
        // 2 ulps.
        assert_eq!(Tf32::from_f32(f32::from_bits(0x0000_1000)).to_bits(), 0);
        assert_eq!(
            Tf32::from_f32(f32::from_bits(0x0000_3000)).to_bits(),
            0x0000_4000
        );
    }

    /// NaNs stay NaN through both directions and are quieted on narrowing.
    #[test]
    fn nan_propagates_and_is_quieted() {
        assert!(Tf32::NAN.is_nan());
        assert!(Tf32::NAN.to_f32().is_nan());
        assert!(Tf32::from_f32(f32::NAN).is_nan());
        let snan = f32::from_bits(0x7F80_0001);
        assert!(snan.is_nan());
        let narrowed = Tf32::from_f32(snan);
        assert!(narrowed.is_nan());
        assert_eq!(
            narrowed.to_bits() & 0x0040_0000,
            0x0040_0000,
            "quiet bit forced"
        );
    }

    /// Constants have the documented values and classifications.
    #[test]
    fn constants_are_consistent() {
        assert_eq!(Tf32::ONE.to_f32(), 1.0);
        assert_eq!(Tf32::NEG_ONE.to_f32(), -1.0);
        assert_eq!(Tf32::MAX.to_f32().to_bits(), 0x7F7F_E000);
        assert_eq!(Tf32::MIN_POSITIVE.to_f32(), f32::MIN_POSITIVE);
        assert_eq!(Tf32::EPSILON.to_f64(), 1.0 / 1024.0);
        assert!(Tf32::NAN.is_nan());
        assert!(Tf32::INFINITY.is_infinite());
        assert_eq!(Tf32::ZERO, Tf32::NEG_ZERO);
        assert_ne!(Tf32::ZERO.to_bits(), Tf32::NEG_ZERO.to_bits());
        assert_eq!(-Tf32::ONE, Tf32::NEG_ONE);
        assert_eq!((-Tf32::INFINITY).to_bits(), Tf32::NEG_INFINITY.to_bits());
        assert_eq!(Tf32::NEG_ONE.abs(), Tf32::ONE);
        // Every constant is canonical (dropped bits zero).
        for c in [
            Tf32::ZERO,
            Tf32::NEG_ZERO,
            Tf32::ONE,
            Tf32::NEG_ONE,
            Tf32::INFINITY,
            Tf32::NEG_INFINITY,
            Tf32::NAN,
            Tf32::MAX,
            Tf32::MIN,
            Tf32::MIN_POSITIVE,
            Tf32::MIN_POSITIVE_SUBNORMAL,
            Tf32::EPSILON,
        ] {
            assert_eq!(c.to_bits() & DROP_MASK, 0);
        }
    }
}
