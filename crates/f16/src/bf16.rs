//! Software bfloat16 (brain floating point) arithmetic type.
//!
//! `bf16` is the 16-bit operand format Ampere `mma.sync` adds alongside
//! binary16: 1 sign bit, 8 exponent bits (the full binary32 exponent range,
//! bias 127) and 7 explicit mantissa bits. Because the exponent field is
//! identical to binary32's, a bfloat16 value is exactly the upper half of a
//! binary32 bit pattern and [`Bf16::to_f32`] is a pure shift. Conversion
//! *from* binary32 rounds the 23-bit mantissa to 7 bits with
//! round-to-nearest-even, matching the `cvt.rn.bf16.f32` semantics the
//! tensor-core datapath uses when packing operands.

use core::cmp::Ordering;
use core::fmt;
use core::ops::Neg;

/// Number of explicit mantissa bits in the bfloat16 format.
pub const MANTISSA_BITS: u32 = 7;
/// Number of exponent bits in the bfloat16 format.
pub const EXPONENT_BITS: u32 = 8;
/// Exponent bias (same as binary32: the exponent field stores `e + 127`).
pub const EXPONENT_BIAS: i32 = 127;

const SIGN_MASK: u16 = 0x8000;
const EXP_MASK: u16 = 0x7F80;
const MAN_MASK: u16 = 0x007F;

/// A bfloat16 value stored as its raw 16-bit pattern.
///
/// Equality and ordering follow IEEE semantics (`NaN != NaN`, `-0 == +0`);
/// use [`Bf16::to_bits`] for bitwise comparisons.
#[derive(Clone, Copy, Default)]
pub struct Bf16(u16);

impl Bf16 {
    /// Positive zero.
    pub const ZERO: Bf16 = Bf16(0x0000);
    /// Negative zero.
    pub const NEG_ZERO: Bf16 = Bf16(0x8000);
    /// One.
    pub const ONE: Bf16 = Bf16(0x3F80);
    /// Negative one.
    pub const NEG_ONE: Bf16 = Bf16(0xBF80);
    /// Positive infinity.
    pub const INFINITY: Bf16 = Bf16(0x7F80);
    /// Negative infinity.
    pub const NEG_INFINITY: Bf16 = Bf16(0xFF80);
    /// A canonical quiet NaN.
    pub const NAN: Bf16 = Bf16(0x7FC0);
    /// Largest finite value (`(2 - 2^-7) * 2^127` ≈ 3.39e38).
    pub const MAX: Bf16 = Bf16(0x7F7F);
    /// Smallest finite value (`-MAX`).
    pub const MIN: Bf16 = Bf16(0xFF7F);
    /// Smallest positive normal value (`2^-126`).
    pub const MIN_POSITIVE: Bf16 = Bf16(0x0080);
    /// Smallest positive subnormal value (`2^-133`).
    pub const MIN_POSITIVE_SUBNORMAL: Bf16 = Bf16(0x0001);
    /// Machine epsilon (`2^-7`).
    pub const EPSILON: Bf16 = Bf16(0x3C00);

    /// Constructs a value from its raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Bf16 {
        Bf16(bits)
    }

    /// Returns the raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts a binary32 value to bfloat16 with round-to-nearest-even.
    ///
    /// The two formats share exponent layout, so rounding reduces to adding
    /// the RNE increment below bit 16 of the binary32 pattern and keeping
    /// the top half; a mantissa carry rolls into the exponent (and into
    /// infinity past [`Bf16::MAX`]), which is exactly the correctly rounded
    /// result. NaNs are quieted and keep the upper payload bits.
    pub fn from_f32(value: f32) -> Bf16 {
        let bits = value.to_bits();
        if value.is_nan() {
            // Quiet the NaN (set the top mantissa bit) and keep whatever of
            // the payload survives the truncation.
            return Bf16(((bits >> 16) as u16) | 0x0040);
        }
        let round_bit = (bits >> 16) & 1;
        Bf16(((bits + 0x7FFF + round_bit) >> 16) as u16)
    }

    /// Converts a binary64 value to bfloat16 with a single rounding.
    ///
    /// Uses the binary64→binary32 conversion (correctly rounded) followed by
    /// [`Bf16::from_f32`]; because 7 + 2 < 24 significand bits, the
    /// double rounding coincides with direct RNE for all inputs produced by
    /// bfloat16-operand arithmetic (same argument as the `F16` operators).
    pub fn from_f64(value: f64) -> Bf16 {
        Bf16::from_f32(value as f32)
    }

    /// Converts to binary32. This conversion is exact.
    #[inline]
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// Converts to binary64. This conversion is exact.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    /// Returns `true` if this value is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MAN_MASK) != 0
    }

    /// Returns `true` if this value is positive or negative infinity.
    #[inline]
    pub fn is_infinite(self) -> bool {
        (self.0 & !SIGN_MASK) == EXP_MASK
    }

    /// Returns `true` if this value is neither infinite nor NaN.
    #[inline]
    pub fn is_finite(self) -> bool {
        (self.0 & EXP_MASK) != EXP_MASK
    }

    /// Returns `true` if this value is subnormal (nonzero with zero exponent).
    #[inline]
    pub fn is_subnormal(self) -> bool {
        (self.0 & EXP_MASK) == 0 && (self.0 & MAN_MASK) != 0
    }

    /// Returns `true` if this value is ±0.
    #[inline]
    pub fn is_zero(self) -> bool {
        (self.0 & !SIGN_MASK) == 0
    }

    /// Returns `true` if the sign bit is set (including -0.0 and NaNs with a
    /// negative sign).
    #[inline]
    pub fn is_sign_negative(self) -> bool {
        (self.0 & SIGN_MASK) != 0
    }

    /// Absolute value (clears the sign bit; preserves NaN payload).
    #[inline]
    pub fn abs(self) -> Bf16 {
        Bf16(self.0 & !SIGN_MASK)
    }
}

impl PartialEq for Bf16 {
    fn eq(&self, other: &Bf16) -> bool {
        if self.is_nan() || other.is_nan() {
            return false;
        }
        if self.is_zero() && other.is_zero() {
            return true;
        }
        self.0 == other.0
    }
}

impl PartialOrd for Bf16 {
    fn partial_cmp(&self, other: &Bf16) -> Option<Ordering> {
        if self.is_nan() || other.is_nan() {
            return None;
        }
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl Neg for Bf16 {
    type Output = Bf16;
    fn neg(self) -> Bf16 {
        Bf16(self.0 ^ SIGN_MASK)
    }
}

impl From<Bf16> for f32 {
    fn from(value: Bf16) -> f32 {
        value.to_f32()
    }
}

impl From<f32> for Bf16 {
    fn from(value: f32) -> Bf16 {
        Bf16::from_f32(value)
    }
}

impl fmt::Debug for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bf16({})", self.to_f32())
    }
}

impl fmt::Display for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

impl fmt::LowerHex for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every one of the 65536 bfloat16 bit patterns widens to binary32 and
    /// narrows back to the identical pattern — except signalling NaNs, which
    /// come back quieted (top mantissa bit forced) with payload preserved.
    #[test]
    fn f32_roundtrip_is_exact_for_all_bit_patterns() {
        for bits in 0..=u16::MAX {
            let x = Bf16::from_bits(bits);
            let back = Bf16::from_f32(x.to_f32());
            if x.is_nan() {
                assert!(back.is_nan(), "NaN {bits:#06x} must stay NaN");
                assert_eq!(
                    back.to_bits(),
                    bits | 0x0040,
                    "NaN quieting for {bits:#06x}"
                );
            } else {
                assert_eq!(back.to_bits(), bits, "roundtrip of {bits:#06x}");
            }
        }
    }

    /// Narrowing is the RNE rounding of the binary32 mantissa: checked
    /// exhaustively over every bfloat16 pattern with every 16-bit tail,
    /// sampled on the tails that matter (below half, half, above half) and
    /// in full for the tie cases.
    #[test]
    fn rounding_is_nearest_even() {
        // 1.0 + ulp/2 ties to even (stays 1.0); next representable up
        // rounds away.
        let one = 0x3F80_0000u32; // 1.0f32
        assert_eq!(
            Bf16::from_f32(f32::from_bits(one | 0x8000)).to_bits(),
            0x3F80
        );
        assert_eq!(
            Bf16::from_f32(f32::from_bits(one | 0x8001)).to_bits(),
            0x3F81
        );
        // 1.0 + 3*ulp/2 ties up to even (0x3F82).
        assert_eq!(
            Bf16::from_f32(f32::from_bits(one | 0x1_8000)).to_bits(),
            0x3F82
        );
        // Just below half rounds down.
        assert_eq!(
            Bf16::from_f32(f32::from_bits(one | 0x7FFF)).to_bits(),
            0x3F80
        );
        // Sweep: for every finite bf16 x, the binary32 midpoint between x
        // and the next pattern must round to the even neighbour.
        for bits in 0..0x7F7Fu16 {
            let mid = ((bits as u32) << 16) | 0x8000;
            let rounded = Bf16::from_f32(f32::from_bits(mid)).to_bits();
            let even = if bits & 1 == 0 { bits } else { bits + 1 };
            assert_eq!(rounded, even, "midpoint above {bits:#06x}");
        }
    }

    /// Values at or beyond the MAX/∞ midpoint round to infinity; below it
    /// they round to MAX.
    #[test]
    fn overflow_rounds_to_infinity() {
        let max_mid = ((Bf16::MAX.to_bits() as u32) << 16) | 0x8000;
        assert_eq!(
            Bf16::from_f32(f32::from_bits(max_mid - 1)).to_bits(),
            0x7F7F
        );
        // Midpoint ties toward the (odd-mantissa) infinity candidate's even
        // neighbour: MAX has odd mantissa, so the tie rounds up to infinity.
        assert!(Bf16::from_f32(f32::from_bits(max_mid)).is_infinite());
        assert!(Bf16::from_f32(f32::MAX).is_infinite());
        assert!(Bf16::from_f32(f32::NEG_INFINITY).is_infinite());
        assert!(Bf16::from_f32(f32::NEG_INFINITY).is_sign_negative());
    }

    /// The formats share the exponent range, so tiny binary32 values narrow
    /// to bfloat16 subnormals (or zero) with RNE on the mantissa.
    #[test]
    fn underflow_rounds_to_zero_or_subnormal() {
        // Smallest f32 subnormal (2^-149) is far below bf16's smallest
        // subnormal ulp (2^-133): rounds to +0.
        assert_eq!(Bf16::from_f32(f32::from_bits(1)).to_bits(), 0x0000);
        assert_eq!(Bf16::from_f32(-f32::from_bits(1)).to_bits(), 0x8000);
        // 2^-133 (f32 bits 0x0001_0000) is exactly the smallest bf16
        // subnormal.
        assert_eq!(
            Bf16::from_f32(f32::from_bits(0x0001_0000)).to_bits(),
            0x0001
        );
        assert!(Bf16::MIN_POSITIVE_SUBNORMAL.is_subnormal());
        // Half of it (2^-134) ties to even (zero).
        assert_eq!(
            Bf16::from_f32(f32::from_bits(0x0000_8000)).to_bits(),
            0x0000
        );
        // Three halves of it ties up to 2 ulps.
        assert_eq!(
            Bf16::from_f32(f32::from_bits(0x0001_8000)).to_bits(),
            0x0002
        );
    }

    /// NaNs stay NaN through both directions and are quieted on narrowing.
    #[test]
    fn nan_propagates_and_is_quieted() {
        assert!(Bf16::NAN.is_nan());
        assert!(Bf16::NAN.to_f32().is_nan());
        assert!(Bf16::from_f32(f32::NAN).is_nan());
        // A signalling binary32 NaN whose payload dies in truncation must
        // still narrow to a NaN.
        let snan = f32::from_bits(0x7F80_0001);
        assert!(snan.is_nan());
        let narrowed = Bf16::from_f32(snan);
        assert!(narrowed.is_nan());
        assert_eq!(narrowed.to_bits() & 0x0040, 0x0040, "quiet bit forced");
    }

    /// Constants have the documented bit patterns and classifications.
    #[test]
    fn constants_are_consistent() {
        assert_eq!(Bf16::ONE.to_f32(), 1.0);
        assert_eq!(Bf16::NEG_ONE.to_f32(), -1.0);
        assert_eq!(Bf16::MAX.to_f32().to_bits(), 0x7F7F_0000);
        assert_eq!(Bf16::MIN_POSITIVE.to_f32(), f32::MIN_POSITIVE);
        assert_eq!(Bf16::MIN_POSITIVE_SUBNORMAL.to_f32().to_bits(), 0x0001_0000);
        assert_eq!(Bf16::EPSILON.to_f64(), 1.0 / 128.0);
        assert!(Bf16::NAN.is_nan());
        assert!(Bf16::INFINITY.is_infinite());
        assert_eq!(Bf16::ZERO, Bf16::NEG_ZERO);
        assert_ne!(Bf16::ZERO.to_bits(), Bf16::NEG_ZERO.to_bits());
        assert_eq!(-Bf16::ONE, Bf16::NEG_ONE);
        assert_eq!((-Bf16::INFINITY).to_bits(), Bf16::NEG_INFINITY.to_bits());
        assert_eq!(Bf16::NEG_ONE.abs(), Bf16::ONE);
    }
}
