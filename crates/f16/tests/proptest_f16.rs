//! Property-based tests for the binary16 implementation.

use proptest::prelude::*;
use tcsim_f16::{F16, F16x2};

/// Strategy producing arbitrary f16 bit patterns (including NaN/inf/subnormal).
fn any_f16() -> impl Strategy<Value = F16> {
    any::<u16>().prop_map(F16::from_bits)
}

/// Strategy producing finite, non-NaN f16 values.
fn finite_f16() -> impl Strategy<Value = F16> {
    any::<u16>()
        .prop_map(F16::from_bits)
        .prop_filter("finite", |v| v.is_finite())
}

proptest! {
    #[test]
    fn to_f32_roundtrip(h in any_f16()) {
        let back = F16::from_f32(h.to_f32());
        if h.is_nan() {
            prop_assert!(back.is_nan());
        } else {
            prop_assert_eq!(back.to_bits(), h.to_bits());
        }
    }

    #[test]
    fn from_f32_matches_f64_path(x in any::<f32>()) {
        // Rounding f32→f16 must agree with the f64→f16 path, since
        // f32→f64 is exact.
        let a = F16::from_f32(x);
        let b = F16::from_f64(x as f64);
        if a.is_nan() {
            prop_assert!(b.is_nan());
        } else {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn addition_is_commutative(a in any_f16(), b in any_f16()) {
        let x = a + b;
        let y = b + a;
        if x.is_nan() {
            prop_assert!(y.is_nan());
        } else {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn multiplication_is_commutative(a in any_f16(), b in any_f16()) {
        let x = a * b;
        let y = b * a;
        if x.is_nan() {
            prop_assert!(y.is_nan());
        } else {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn add_zero_is_identity(a in finite_f16()) {
        prop_assert_eq!((a + F16::ZERO).to_f32(), a.to_f32());
    }

    #[test]
    fn mul_one_is_identity(a in finite_f16()) {
        prop_assert_eq!((a * F16::ONE).to_f32(), a.to_f32());
    }

    #[test]
    fn subtraction_of_self_is_zero(a in finite_f16()) {
        prop_assert!((a - a).is_zero());
    }

    #[test]
    fn negation_flips_sign_bit_only(a in any_f16()) {
        prop_assert_eq!((-a).to_bits(), a.to_bits() ^ 0x8000);
    }

    #[test]
    fn result_is_correctly_rounded_add(a in finite_f16(), b in finite_f16()) {
        // The f16 sum must be one of the two f16 values bracketing the exact
        // sum, specifically the nearest (checked against exact f64 math,
        // which is exact for f16 inputs).
        let exact = a.to_f64() + b.to_f64();
        let got = (a + b).to_f64();
        if got.is_finite() {
            // Nearest: no other representable f16 may be strictly closer.
            let err = (got - exact).abs();
            let up = F16::from_bits((a + b).to_bits().wrapping_add(1));
            let dn = F16::from_bits((a + b).to_bits().wrapping_sub(1));
            for n in [up, dn] {
                if n.is_finite() {
                    prop_assert!((n.to_f64() - exact).abs() >= err);
                }
            }
        }
    }

    #[test]
    fn result_is_correctly_rounded_mul(a in finite_f16(), b in finite_f16()) {
        let exact = a.to_f64() * b.to_f64();
        let got = (a * b).to_f64();
        if got.is_finite() && exact.is_finite() {
            let err = (got - exact).abs();
            let up = F16::from_bits((a * b).to_bits().wrapping_add(1));
            let dn = F16::from_bits((a * b).to_bits().wrapping_sub(1));
            for n in [up, dn] {
                if n.is_finite() {
                    prop_assert!((n.to_f64() - exact).abs() >= err);
                }
            }
        }
    }

    #[test]
    fn abs_clears_sign(a in any_f16()) {
        prop_assert!(!a.abs().is_sign_negative());
    }

    #[test]
    fn min_max_bracket(a in finite_f16(), b in finite_f16()) {
        let lo = a.min(b);
        let hi = a.max(b);
        prop_assert!(lo <= hi);
        prop_assert!(lo == a || lo == b || (lo.is_zero() && (a.is_zero() || b.is_zero())));
    }

    #[test]
    fn total_order_is_consistent_with_partial_order(a in finite_f16(), b in finite_f16()) {
        if a < b {
            prop_assert!(a.total_order_key() < b.total_order_key()
                || (a.is_zero() && b.is_zero()));
        }
    }

    #[test]
    fn f16x2_pack_unpack(lo in any_f16(), hi in any_f16()) {
        let v = F16x2::new(lo, hi);
        prop_assert_eq!(v.lo().to_bits(), lo.to_bits());
        prop_assert_eq!(v.hi().to_bits(), hi.to_bits());
    }

    #[test]
    fn f16x2_hfma2_matches_scalar(
        a0 in finite_f16(), a1 in finite_f16(),
        b0 in finite_f16(), b1 in finite_f16(),
        c0 in finite_f16(), c1 in finite_f16(),
    ) {
        let r = F16x2::new(a0, a1).hfma2(F16x2::new(b0, b1), F16x2::new(c0, c1));
        let s0 = a0.mul_add(b0, c0);
        let s1 = a1.mul_add(b1, c1);
        if !s0.is_nan() { prop_assert_eq!(r.lo().to_bits(), s0.to_bits()); }
        if !s1.is_nan() { prop_assert_eq!(r.hi().to_bits(), s1.to_bits()); }
    }
}
